package ulba_test

import (
	"reflect"
	"strings"
	"testing"

	"ulba"
)

func TestPlannerRegistryLookup(t *testing.T) {
	for _, name := range []string{"sigma+", "menon", "periodic", "anneal"} {
		pl, err := ulba.NewPlanner(name)
		if err != nil {
			t.Fatalf("NewPlanner(%q): %v", name, err)
		}
		if pl.Name() != name {
			t.Errorf("planner %q reports name %q", name, pl.Name())
		}
	}
	names := ulba.PlannerNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("PlannerNames not sorted: %v", names)
		}
	}
}

func TestPlannerRegistryUnknown(t *testing.T) {
	_, err := ulba.NewPlanner("no-such-planner")
	if err == nil {
		t.Fatal("unknown planner accepted")
	}
	if !strings.Contains(err.Error(), "no-such-planner") || !strings.Contains(err.Error(), "sigma+") {
		t.Errorf("error should name the request and the registered planners: %v", err)
	}
}

func TestPlannerRegistryDuplicateAndInvalid(t *testing.T) {
	// The registry is process-global, so under -count > 1 the first
	// registration may already be in place from the previous run.
	if err := ulba.RegisterPlanner("dup-test-planner", func() ulba.Planner { return ulba.SigmaPlusPlanner{} }); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatalf("first registration: %v", err)
	}
	if err := ulba.RegisterPlanner("dup-test-planner", func() ulba.Planner { return ulba.MenonPlanner{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := ulba.RegisterPlanner("", func() ulba.Planner { return ulba.MenonPlanner{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := ulba.RegisterPlanner("nil-factory-planner", nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestTriggerRegistry(t *testing.T) {
	for _, name := range []string{"degradation", "menon", "periodic", "never"} {
		tr, err := ulba.NewTrigger(name)
		if err != nil {
			t.Fatalf("NewTrigger(%q): %v", name, err)
		}
		if tr.Name() != name {
			t.Errorf("trigger %q reports name %q", name, tr.Name())
		}
		if tr.New() == nil {
			t.Errorf("trigger %q built a nil runtime trigger", name)
		}
	}
	if _, err := ulba.NewTrigger("no-such-trigger"); err == nil {
		t.Error("unknown trigger accepted")
	}
	if err := ulba.RegisterTrigger("degradation", func() ulba.Trigger { return ulba.DegradationTrigger{} }); err == nil {
		t.Error("duplicate trigger registration accepted")
	}
}

// The deprecated schedule shims must stay exact aliases of the planners.
func TestShimsMatchPlanners(t *testing.T) {
	p := ulba.SampleInstances(7, 1)[0]

	fromPlanner, err := ulba.MenonPlanner{}.Plan(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ulba.MenonSchedule(p), fromPlanner) {
		t.Error("MenonSchedule shim diverged from MenonPlanner")
	}

	fromPlanner, err = ulba.SigmaPlusPlanner{}.Plan(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ulba.SigmaPlusSchedule(p), fromPlanner) {
		t.Error("SigmaPlusSchedule shim diverged from SigmaPlusPlanner")
	}

	fromPlanner, err = ulba.AnnealPlanner{Steps: 2000, Seed: 11}.Plan(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ulba.AnnealSchedule(p, 2000, 11), fromPlanner) {
		t.Error("AnnealSchedule shim diverged from AnnealPlanner")
	}
}

func TestPlannerGammaOverride(t *testing.T) {
	p := ulba.SampleInstances(7, 1)[0]
	short, err := ulba.SigmaPlusPlanner{}.Plan(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := short.Validate(10); err != nil {
		t.Errorf("gamma override not honored: %v", err)
	}
}

func TestPeriodicPlannerValidation(t *testing.T) {
	p := ulba.SampleInstances(7, 1)[0]
	if _, err := (ulba.PeriodicPlanner{}).Plan(p, 0); err == nil {
		t.Error("periodic planner with Every=0 accepted")
	}
	s, err := ulba.PeriodicPlanner{Every: 7}.Plan(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, gap := range s.Intervals() {
		if gap != 7 {
			t.Fatalf("interval %d = %d, want 7", i, gap)
		}
	}
}
