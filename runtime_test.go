package ulba_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"ulba"
	"ulba/internal/cli"
)

func mustRuntime(t *testing.T, p int, opts ...ulba.Option) *ulba.RuntimeExperiment {
	t.Helper()
	e, err := ulba.NewRuntime(p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRuntimeDefaults(t *testing.T) {
	e := mustRuntime(t, 4)
	cfg := e.Config()
	if cfg.P != 4 || cfg.Iterations != 200 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.Cost != ulba.DefaultCostModel() {
		t.Fatalf("unexpected cost model: %+v", cfg.Cost)
	}
	if e.Workload().Name() != "linear" {
		t.Fatalf("default workload = %q, want linear", e.Workload().Name())
	}
	if e.Trigger() != nil || e.PlannedSchedule() != nil {
		t.Fatalf("default experiment should use the built-in degradation rule")
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	cases := []struct {
		name string
		p    int
		opts []ulba.Option
	}{
		{"non-positive PEs", 0, nil},
		{"nil workload", 4, []ulba.Option{ulba.WithWorkload(nil)}},
		{"zero option", 4, []ulba.Option{{}}},
		{"experiment-only option", 4, []ulba.Option{ulba.WithAlpha(0.4)}},
		{"sweep-only option", 4, []ulba.Option{ulba.WithAlphaGrid(10)}},
		{"non-positive iterations", 4, []ulba.Option{ulba.WithIterations(-1)}},
		{"planner and trigger", 4, []ulba.Option{
			ulba.WithPlanner(ulba.SigmaPlusPlanner{}), ulba.WithTrigger(ulba.NeverTrigger{})}},
		{"planner without model on unmodeled workload", 4, []ulba.Option{
			ulba.WithWorkload(ulba.BurstyWorkload{}), ulba.WithPlanner(ulba.SigmaPlusPlanner{})}},
		{"periodic trigger without interval", 4, []ulba.Option{
			ulba.WithTrigger(ulba.PeriodicTrigger{})}},
		{"workload that fails to instantiate", 2, []ulba.Option{
			ulba.WithWorkload(ulba.TraceWorkload{})}},
	}
	for _, tc := range cases {
		if _, err := ulba.NewRuntime(tc.p, tc.opts...); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestRuntimeSingleIterationRun(t *testing.T) {
	// WithIterations documents any positive count as valid: a
	// one-iteration run must drop the (internal) warmup call rather than
	// fail its validation.
	res, err := mustRuntime(t, 4, ulba.WithIterations(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline.IterTimes) != 1 || res.Timeline.LBCount() != 0 {
		t.Fatalf("one-iteration run: %+v", res.Timeline)
	}
}

func TestRuntimeRunDeterministicReplay(t *testing.T) {
	// The same scenario run twice yields identical per-iteration
	// timelines, bit for bit — the acceptance contract of the engine.
	build := func() *ulba.RuntimeExperiment {
		return mustRuntime(t, 4,
			ulba.WithWorkload(ulba.LinearWorkload{Seed: 7}),
			ulba.WithIterations(80))
	}
	ctx := context.Background()
	a, err := build().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical scenario runs disagree:\n%+v\n%+v", a, b)
	}
}

func TestRuntimeRunWorkersInvariant(t *testing.T) {
	// WithWorkers only changes whether the scenario and its no-LB
	// baseline run concurrently, never the result.
	ctx := context.Background()
	seq, err := mustRuntime(t, 4, ulba.WithIterations(60), ulba.WithWorkers(1)).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mustRuntime(t, 4, ulba.WithIterations(60), ulba.WithWorkers(4)).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("worker count changed the run result")
	}
}

func TestRuntimeBaselineOrdering(t *testing.T) {
	res, err := mustRuntime(t, 4, ulba.WithIterations(80)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.PerfectTime <= 0 {
		t.Fatalf("PerfectTime = %g", res.PerfectTime)
	}
	if res.Timeline.TotalTime < res.PerfectTime {
		t.Fatalf("measured %.6f beat the perfect-knowledge bound %.6f",
			res.Timeline.TotalTime, res.PerfectTime)
	}
	if res.NoLBTime < res.PerfectTime {
		t.Fatalf("no-LB %.6f beat the perfect-knowledge bound %.6f",
			res.NoLBTime, res.PerfectTime)
	}
	if res.Efficiency() <= 0 || res.Efficiency() > 1 {
		t.Fatalf("Efficiency = %g", res.Efficiency())
	}
}

func TestRuntimeStationaryBarelyBalances(t *testing.T) {
	// A correct adaptive trigger pays only the forced warmup call on a
	// stationary load.
	res, err := mustRuntime(t, 4,
		ulba.WithWorkload(ulba.StationaryWorkload{}),
		ulba.WithIterations(100)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Timeline.LBCount(); got != 1 {
		t.Fatalf("stationary load balanced %d times, want the warmup call only (LB at %v)",
			got, res.Timeline.LBIters)
	}
}

func TestRuntimeNeverTriggerMatchesBaseline(t *testing.T) {
	res, err := mustRuntime(t, 4,
		ulba.WithTrigger(ulba.NeverTrigger{}),
		ulba.WithIterations(60)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.LBCount() != 0 {
		t.Fatalf("never trigger balanced %d times", res.Timeline.LBCount())
	}
	if res.Timeline.TotalTime != res.NoLBTime || res.Gain() != 0 {
		t.Fatalf("never-trigger run (%.6f) differs from its own baseline (%.6f)",
			res.Timeline.TotalTime, res.NoLBTime)
	}
}

func TestRuntimePlannerReplaysPlan(t *testing.T) {
	e := mustRuntime(t, 4,
		ulba.WithWorkload(ulba.LinearWorkload{Seed: 3}),
		ulba.WithIterations(100),
		ulba.WithPlanner(ulba.PeriodicPlanner{Every: 25}))
	want := ulba.Schedule{25, 50, 75}
	if !reflect.DeepEqual(e.PlannedSchedule(), want) {
		t.Fatalf("planned schedule = %v, want %v", e.PlannedSchedule(), want)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A plan entry k re-partitions before iteration k executes, so the
	// balancer runs right after iteration k-1 and is recorded there.
	if !reflect.DeepEqual(res.Timeline.LBIters, []int{24, 49, 74}) {
		t.Fatalf("runtime LB iterations %v did not replay the plan %v",
			res.Timeline.LBIters, want)
	}
}

func TestRuntimeScheduleTriggerReplaysExactly(t *testing.T) {
	// A ScheduleTrigger installed directly through WithTrigger gets the
	// same no-warmup treatment as the planner path: the balancer fires
	// exactly at the plan's iterations, with no forced warmup call.
	res, err := mustRuntime(t, 4,
		ulba.WithWorkload(ulba.LinearWorkload{Seed: 3}),
		ulba.WithIterations(100),
		ulba.WithTrigger(ulba.ScheduleTrigger{Schedule: ulba.Schedule{25, 50}}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Timeline.LBIters, []int{24, 49}) {
		t.Fatalf("LB iterations %v, want exactly the plan [24 49]", res.Timeline.LBIters)
	}
	// The registered default carries an empty plan: truly never fires.
	trig, err := ulba.NewTrigger("schedule")
	if err != nil {
		t.Fatal(err)
	}
	res, err = mustRuntime(t, 4, ulba.WithIterations(60),
		ulba.WithTrigger(trig)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.LBCount() != 0 {
		t.Fatalf("empty-plan schedule trigger balanced %d times", res.Timeline.LBCount())
	}
}

func TestRuntimePlannerWithExplicitModel(t *testing.T) {
	// An explicit WithModel overrides the workload's own description, so
	// planners work on workloads that cannot model themselves.
	mp := ulba.ModelParams{
		P: 4, N: 1, Gamma: 100, W0: 4e9, A: 1e6, M: 4e7,
		Omega: 1e9, C: 0.05,
	}
	mp.DeltaW = mp.A*float64(mp.P) + mp.M*float64(mp.N)
	e := mustRuntime(t, 4,
		ulba.WithWorkload(ulba.BurstyWorkload{}),
		ulba.WithIterations(100),
		ulba.WithModel(mp),
		ulba.WithPlanner(ulba.SigmaPlusPlanner{}))
	if len(e.PlannedSchedule()) == 0 {
		t.Fatalf("expected a non-empty planned schedule")
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mustRuntime(t, 4).Run(ctx); err != context.Canceled {
		t.Fatalf("cancelled run returned %v", err)
	}
}

// pinnedScenarios samples the pinned scenario mix shared with the
// benchmark harness.
func pinnedScenarios(t *testing.T, n int) []*ulba.RuntimeExperiment {
	t.Helper()
	exps, _, err := cli.BuildScenarios(2019, n)
	if err != nil {
		t.Fatal(err)
	}
	return exps
}

func TestRuntimeSweepWorkerCountInvariant(t *testing.T) {
	// The acceptance golden test: on a pinned seed, the sweep aggregation
	// is bit-identical for workers 1, 4, and GOMAXPROCS.
	ctx := context.Background()
	exps := pinnedScenarios(t, 8)

	var refSum ulba.RuntimeSweepSummary
	var refResults []ulba.RuntimeResult
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		sweep, err := ulba.NewRuntimeSweep(ulba.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		sum, results, err := sweep.Run(ctx, exps)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refSum, refResults = sum, results
			continue
		}
		if sum != refSum {
			t.Fatalf("workers=%d summary differs:\n%+v\n%+v", workers, sum, refSum)
		}
		if !reflect.DeepEqual(results, refResults) {
			t.Fatalf("workers=%d per-scenario results differ", workers)
		}
	}
	if refSum.Scenarios != 8 || refSum.MeanLBCalls <= 0 {
		t.Fatalf("suspicious summary: %+v", refSum)
	}
}

func TestRuntimeSweepStreamDeliversAll(t *testing.T) {
	ctx := context.Background()
	exps := pinnedScenarios(t, 6)
	sweep, err := ulba.NewRuntimeSweep(ulba.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for r := range sweep.Stream(ctx, exps) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
	}
	if len(seen) != len(exps) {
		t.Fatalf("delivered %d of %d scenarios", len(seen), len(exps))
	}
}

func TestRuntimeSweepNilScenarioError(t *testing.T) {
	// The reported error must be the nil scenario's own error — not a
	// context cancellation leaking from the early-stop of the dispatch —
	// and identical for every worker count: a sibling's failure must not
	// corrupt the scenarios already in flight.
	for _, workers := range []int{1, 2, 8} {
		exps := pinnedScenarios(t, 5)
		exps[3] = nil
		sweep, err := ulba.NewRuntimeSweep(ulba.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = sweep.Run(context.Background(), exps)
		if err == nil {
			t.Fatal("expected an error for the nil scenario")
		}
		if want := "ulba: runtime sweep scenario 3 is nil"; err.Error() != want {
			t.Fatalf("workers=%d reported %q, want %q", workers, err, want)
		}
	}
}

func TestRuntimeSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sweep, err := ulba.NewRuntimeSweep()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sweep.Run(ctx, pinnedScenarios(t, 4)); err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v", err)
	}
}

func TestRuntimeSweepRejectsForeignOptions(t *testing.T) {
	for _, opt := range []ulba.Option{
		ulba.WithAlphaGrid(10),
		ulba.WithWorkload(ulba.LinearWorkload{}),
		ulba.WithPlanner(ulba.SigmaPlusPlanner{}),
	} {
		if _, err := ulba.NewRuntimeSweep(opt); err == nil {
			t.Fatal("expected a scope error")
		}
	}
}

func TestRuntimeSweepEmpty(t *testing.T) {
	sweep, err := ulba.NewRuntimeSweep()
	if err != nil {
		t.Fatal(err)
	}
	sum, results, err := sweep.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scenarios != 0 || len(results) != 0 {
		t.Fatalf("empty sweep produced %+v", sum)
	}
}
