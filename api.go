package ulba

import (
	"context"

	"ulba/internal/erosion"
	"ulba/internal/instance"
	"ulba/internal/lb"
	"ulba/internal/model"
	"ulba/internal/mpisim"
	"ulba/internal/schedule"
	"ulba/internal/simulate"
)

// Analytic model (Section II, III of the paper).

// ModelParams are the application parameters of Table I. Methods provide
// the paper's equations: Wtot (Eq. 1), StdIterTime (Eq. 2), ULBAIterTime
// (Eq. 5), SigmaMinus (Eq. 8), SigmaPlus (Eq. 12), MenonTau, CostImbalance
// (Eq. 10) and CostOverhead (Eq. 11).
type ModelParams = model.Params

// Schedule is a strictly increasing list of iterations at which the load
// balancer runs.
type Schedule = schedule.Schedule

// ErrNoOverload is returned by interval computations when no PE overloads
// (m = 0 or N = 0): the optimal LB interval is unbounded.
var ErrNoOverload = model.ErrNoOverload

// StandardTotalTime evaluates the standard LB method on its Menon schedule:
// Eq. 2 in Eqs. 3-4, with LB steps every sqrt(2*C*omega/m^) iterations.
func StandardTotalTime(p ModelParams) float64 {
	return simulate.StandardTime(p)
}

// ULBATotalTime evaluates ULBA at the given alpha on its sigma+ schedule:
// Eq. 5 in Eqs. 3-4, with LB steps every sigma+ iterations.
func ULBATotalTime(p ModelParams, alpha float64) float64 {
	return simulate.ULBATimeAt(p, alpha)
}

// BestAlpha scans gridSize alphas uniformly spread over [0, 1] and returns
// the one minimizing the ULBA total time, together with that time. The grid
// always contains 0, so the result can never lose to the standard method.
func BestAlpha(p ModelParams, gridSize int) (alpha, totalTime float64) {
	return simulate.BestAlpha(p, simulate.AlphaGrid(gridSize))
}

// EvaluateSchedule returns the total parallel time of an arbitrary schedule
// under ULBA semantics (alpha = 0 recovers the standard method exactly).
func EvaluateSchedule(p ModelParams, s Schedule) float64 {
	return schedule.TotalTimeULBA(p, s)
}

// SampleInstances draws n random application instances following Table II.
func SampleInstances(seed uint64, n int) []ModelParams {
	return instance.NewGenerator(seed).SampleMany(n)
}

// SigmaPlusSchedule builds the paper's proposed LB schedule: after each LB
// step, the next one happens sigma+ iterations later.
//
// Deprecated: use SigmaPlusPlanner (or NewPlanner("sigma+")) and Plan.
func SigmaPlusSchedule(p ModelParams) Schedule {
	if s, err := (SigmaPlusPlanner{}).Plan(p, 0); err == nil {
		return s
	}
	// Plan validates the parameters; the legacy function did not. Keep
	// the old unvalidated behavior for callers with off-model params.
	return schedule.EverySigmaPlus(p)
}

// MenonSchedule builds the standard method's schedule (sigma+ at alpha = 0).
//
// Deprecated: use MenonPlanner (or NewPlanner("menon")) and Plan.
func MenonSchedule(p ModelParams) Schedule {
	if s, err := (MenonPlanner{}).Plan(p, 0); err == nil {
		return s
	}
	return schedule.Menon(p)
}

// AnnealSchedule searches for a near-optimal schedule with simulated
// annealing over all 2^gamma LB schedules, the heuristic the paper validates
// sigma+ against (Fig. 2).
//
// Deprecated: use AnnealPlanner (or NewPlanner("anneal")) and Plan.
func AnnealSchedule(p ModelParams, steps int, seed uint64) Schedule {
	if s, err := (AnnealPlanner{Steps: steps, Seed: seed}).Plan(p, 0); err == nil {
		return s
	}
	return simulate.AnnealSchedule(p, steps, seed)
}

// Application runtime (Section IV-B).

// AppConfig describes one fluid-with-erosion application instance.
type AppConfig = erosion.Config

// CostModel fixes the virtual-time costs of the simulated cluster.
type CostModel = mpisim.CostModel

// RunConfig parameterizes one application run under a LB method.
type RunConfig = lb.Config

// RunResult is the measured outcome of one application run.
type RunResult = lb.Result

// Method selects the LB method.
type Method = lb.Method

// Methods.
const (
	// Standard is the standard LB method with the adaptive trigger of
	// Zhai et al.
	Standard = lb.Standard
	// ULBA underloads the PEs that anticipate overload.
	ULBA = lb.ULBA
)

// Runtime scenario engine (the Section IV runtime generalized beyond the
// erosion application; see workload.go and runtime.go).

// RuntimeConfig parameterizes one synthetic scenario run: the runtime
// counterpart of RunConfig, driven by a pure per-item weight function
// instead of the erosion physics. Built by NewRuntime from a Workload;
// exposed for inspection and for ModeledWorkload implementations.
type RuntimeConfig = lb.SynthConfig

// RuntimeTimeline is the measured per-iteration outcome of one scenario
// run: total wall time, iteration times, PE usage, and the LB call record.
type RuntimeTimeline = lb.SynthResult

// DefaultAppConfig returns a laptop-scale erosion instance for p PEs with
// the paper's geometry ratios.
func DefaultAppConfig(p int) AppConfig {
	return erosion.DefaultConfig(p)
}

// DefaultCostModel returns the reference cluster cost model.
func DefaultCostModel() CostModel {
	return mpisim.DefaultCostModel()
}

// DefaultRunConfig assembles a ready-to-run configuration for p PEs under
// the given method with the paper's hyper-parameters (alpha = 0.4, z-score
// threshold 3.0, adaptive degradation trigger).
//
// Deprecated: use New(p, WithMethod(m), ...); with no further options the
// Experiment carries exactly this configuration.
func DefaultRunConfig(p int, m Method) RunConfig {
	return RunConfig{
		App:             DefaultAppConfig(p),
		Iterations:      120,
		Cost:            DefaultCostModel(),
		Method:          m,
		Alpha:           0.4,
		IncludeOverhead: true,
	}
}

// Run executes the erosion application on simulated PEs under the
// configured method. Runs are deterministic: same config, same result.
//
// Deprecated: build an Experiment with New and call its Run method, which
// adds eager validation and context cancellation.
func Run(cfg RunConfig) (RunResult, error) {
	return lb.Run(cfg)
}

// RunContext is Run with cancellation, for callers holding a raw RunConfig.
// New code should prefer the Experiment builder.
func RunContext(ctx context.Context, cfg RunConfig) (RunResult, error) {
	e := &Experiment{cfg: cfg.Normalized()}
	if err := e.cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	return e.Run(ctx)
}
