package ulba

import (
	"fmt"
	"sort"
	"sync"

	"ulba/internal/schedule"
	"ulba/internal/simulate"
)

// A Planner decides *when to balance* ahead of time: given the analytic
// application model of Section II, it produces the full LB schedule for a
// run. Planners are the policy axis the paper studies — Menon's reactive
// optimum versus the anticipating sigma+ rule (Eqs. 8-12) — made pluggable
// so new criteria can be compared under the same harness.
//
// Implementations must be deterministic: the same parameters must always
// produce the same schedule, so that sweeps are reproducible and
// bit-identical across worker counts.
type Planner interface {
	// Name identifies the planner, matching its registry key.
	Name() string
	// Plan builds the LB schedule for the instance. gamma > 0 overrides
	// p.Gamma as the run length; gamma <= 0 keeps p.Gamma. An instance
	// with no overloading PEs yields an empty schedule (never balance),
	// not an error: errors are reserved for invalid parameters or
	// planner configuration.
	Plan(p ModelParams, gamma int) (Schedule, error)
}

// planParams validates and applies the gamma override shared by all
// planners.
func planParams(p ModelParams, gamma int) (ModelParams, error) {
	if gamma > 0 {
		p.Gamma = gamma
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// SigmaPlusPlanner is the paper's proposal (Section III-B): after each LB
// step at iteration i, the next step happens sigma+(i) iterations later,
// where sigma+ is the largest interval for which balancing still pays off
// under ULBA (Eq. 12).
type SigmaPlusPlanner struct{}

// Name returns "sigma+".
func (SigmaPlusPlanner) Name() string { return "sigma+" }

// Plan builds the every-sigma+ schedule.
func (SigmaPlusPlanner) Plan(p ModelParams, gamma int) (Schedule, error) {
	p, err := planParams(p, gamma)
	if err != nil {
		return nil, err
	}
	return schedule.EverySigmaPlus(p), nil
}

// MenonPlanner is the standard method's schedule: LB steps every
// tau = sqrt(2*C*omega/m^) iterations, the analytic optimum of Menon et
// al. [6]. It is exactly the sigma+ plan at alpha = 0.
type MenonPlanner struct{}

// Name returns "menon".
func (MenonPlanner) Name() string { return "menon" }

// Plan builds Menon's tau schedule (ignoring the instance's alpha).
func (MenonPlanner) Plan(p ModelParams, gamma int) (Schedule, error) {
	p, err := planParams(p, gamma)
	if err != nil {
		return nil, err
	}
	return schedule.Menon(p), nil
}

// PeriodicPlanner balances every Every iterations, the classic
// fixed-interval policy the paper dismisses; kept as an ablation baseline.
type PeriodicPlanner struct {
	Every int // interval in iterations; must be positive
}

// Name returns "periodic".
func (PeriodicPlanner) Name() string { return "periodic" }

// Plan builds the every-k schedule.
func (pl PeriodicPlanner) Plan(p ModelParams, gamma int) (Schedule, error) {
	if pl.Every <= 0 {
		return nil, fmt.Errorf("ulba: periodic planner needs Every > 0, got %d", pl.Every)
	}
	p, err := planParams(p, gamma)
	if err != nil {
		return nil, err
	}
	return schedule.Periodic(p.Gamma, pl.Every), nil
}

// AnnealPlanner searches for a near-optimal schedule with simulated
// annealing over all 2^gamma LB schedules, the heuristic the paper validates
// sigma+ against (Fig. 2). It is deterministic for a fixed Seed.
type AnnealPlanner struct {
	Steps int    // annealing proposals; <= 0 selects 20000 (the Fig. 2 default)
	Seed  uint64 // RNG seed for the search
}

// Name returns "anneal".
func (AnnealPlanner) Name() string { return "anneal" }

// Plan runs the annealing search and returns the best schedule found.
func (pl AnnealPlanner) Plan(p ModelParams, gamma int) (Schedule, error) {
	p, err := planParams(p, gamma)
	if err != nil {
		return nil, err
	}
	steps := pl.Steps
	if steps <= 0 {
		steps = 20000
	}
	return simulate.AnnealSchedule(p, steps, pl.Seed), nil
}

// PlannerFactory constructs a planner with its default configuration.
// Callers that need a non-default configuration (a periodic interval, an
// annealing budget) type-assert the result or construct the planner
// directly.
type PlannerFactory func() Planner

var (
	plannerMu  sync.RWMutex
	plannerReg = map[string]PlannerFactory{}
)

// RegisterPlanner makes a planner selectable by name, e.g. from the
// -planner flag of the CLIs. It errors on the empty name, a nil factory, or
// a duplicate registration; third-party planners should pick unique names.
func RegisterPlanner(name string, f PlannerFactory) error {
	if name == "" {
		return fmt.Errorf("ulba: planner name must not be empty")
	}
	if f == nil {
		return fmt.Errorf("ulba: planner %q: nil factory", name)
	}
	plannerMu.Lock()
	defer plannerMu.Unlock()
	if _, dup := plannerReg[name]; dup {
		return fmt.Errorf("ulba: planner %q already registered", name)
	}
	plannerReg[name] = f
	return nil
}

// NewPlanner constructs the registered planner with the given name.
func NewPlanner(name string) (Planner, error) {
	plannerMu.RLock()
	f, ok := plannerReg[name]
	plannerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ulba: unknown planner %q (registered: %v)", name, PlannerNames())
	}
	return f(), nil
}

// PlannerNames lists the registered planners in sorted order.
func PlannerNames() []string {
	plannerMu.RLock()
	defer plannerMu.RUnlock()
	names := make([]string, 0, len(plannerReg))
	for n := range plannerReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func mustRegisterPlanner(name string, f PlannerFactory) {
	if err := RegisterPlanner(name, f); err != nil {
		panic(err)
	}
}

func init() {
	mustRegisterPlanner("sigma+", func() Planner { return SigmaPlusPlanner{} })
	mustRegisterPlanner("menon", func() Planner { return MenonPlanner{} })
	mustRegisterPlanner("periodic", func() Planner { return PeriodicPlanner{Every: 10} })
	mustRegisterPlanner("anneal", func() Planner { return AnnealPlanner{} })
}
