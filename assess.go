package ulba

import (
	"context"
	"fmt"
)

// The assessment engine, after Boulmier et al.'s follow-up on the optimal
// [de]centralized load-balancing sequence and the assessment of existing LB
// criteria against it (arXiv:2104.01688): every criterion under test — a
// registered trigger or planner, with its knobs — runs the same scenario
// set on the simulated cluster, and its mean efficiency is compared against
// the perfect-knowledge bound (RuntimeResult.Efficiency is already
// PerfectTime / TotalTime, the paper's metric) and against the best
// criterion of the set (the regret column). The cell grid reuses the
// RuntimeSweep machinery wholesale: an Assessment is a criteria x scenarios
// batch of RuntimeExperiments with a per-criterion aggregation on top.

// Criterion is one load-balancing criterion under assessment: exactly one
// of Trigger or Planner names the policy, with its spec knobs. Name labels
// the criterion in the summary; when empty, the policy's registry name is
// used (planner criteria prefixed "plan:", so a trigger and a planner
// sharing a registry name — e.g. menon, periodic — stay distinguishable).
type Criterion struct {
	Name    string       `json:"name,omitempty"`
	Trigger *TriggerSpec `json:"trigger,omitempty"`
	Planner *PlannerSpec `json:"planner,omitempty"`
}

// DisplayName is the label the criterion scores under.
func (c Criterion) DisplayName() string {
	switch {
	case c.Name != "":
		return c.Name
	case c.Trigger != nil:
		return c.Trigger.Name
	case c.Planner != nil:
		return "plan:" + c.Planner.Name
	default:
		return ""
	}
}

// DefaultCriteria is the standard assessment panel: every registered
// trigger at its registry defaults, except the schedule trigger (it replays
// an externally supplied plan, so it is meaningless without one). Planner
// criteria are opt-in: a planner needs an analytic model, which not every
// scenario workload provides.
func DefaultCriteria() []Criterion {
	var crits []Criterion
	for _, name := range TriggerNames() {
		if name == "schedule" {
			continue
		}
		crits = append(crits, Criterion{Trigger: &TriggerSpec{Name: name}})
	}
	return crits
}

// AssessmentScenario is one cell column: a workload scenario every
// criterion runs under identical conditions. The zero Iterations keeps the
// RuntimeExperiment default; Model is required only for planner criteria
// whose workload is not a ModeledWorkload.
type AssessmentScenario struct {
	P          int           `json:"p"`
	Iterations int           `json:"iterations,omitempty"`
	Workload   *WorkloadSpec `json:"workload,omitempty"`
	Model      *ModelParams  `json:"model,omitempty"`
	Speeds     []float64     `json:"speeds,omitempty"`
}

// Assessment scores a set of LB criteria over a shared scenario set. Build
// it with NewAssessment; the cell grid is criteria-major (cell index =
// criterion*Scenarios() + scenario), and every result surface — Run,
// Stream, StreamCells — reports cells in that indexing.
type Assessment struct {
	criteria  []Criterion
	scenarios int
	cells     []*RuntimeExperiment
	sweep     *RuntimeSweep
}

// NewAssessment builds the criteria x scenarios cell grid eagerly, so every
// invalid spec — an unknown policy name, a dead knob, a planner without a
// model — fails here, never mid-run. Each cell is a single-worker
// RuntimeExperiment; WithWorkers (the only accepted option) bounds how many
// cells run concurrently.
func NewAssessment(criteria []Criterion, scenarios []AssessmentScenario, opts ...Option) (*Assessment, error) {
	if len(criteria) == 0 {
		return nil, fmt.Errorf("ulba: assessment needs at least one criterion")
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("ulba: assessment needs at least one scenario")
	}
	var st settings
	if err := applyOptions(&st, scopeAssessment, "Assessment", opts); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(criteria))
	for i, c := range criteria {
		if (c.Trigger == nil) == (c.Planner == nil) {
			return nil, fmt.Errorf("ulba: assessment criterion %d needs exactly one of trigger or planner", i)
		}
		name := c.DisplayName()
		if seen[name] {
			return nil, fmt.Errorf("ulba: duplicate assessment criterion %q", name)
		}
		seen[name] = true
	}
	cells := make([]*RuntimeExperiment, 0, len(criteria)*len(scenarios))
	for _, c := range criteria {
		for si, sc := range scenarios {
			exp, err := buildAssessmentCell(c, sc)
			if err != nil {
				return nil, fmt.Errorf("assessment criterion %q, scenario %d: %w", c.DisplayName(), si, err)
			}
			cells = append(cells, exp)
		}
	}
	sweep, err := NewRuntimeSweep(WithWorkers(st.workers))
	if err != nil {
		return nil, err
	}
	return &Assessment{
		criteria:  append([]Criterion(nil), criteria...),
		scenarios: len(scenarios),
		cells:     cells,
		sweep:     sweep,
	}, nil
}

// buildAssessmentCell resolves one criterion x scenario pair into its
// RuntimeExperiment. Cells run single-worker: the Assessment's own pool is
// the concurrency knob, and per-cell results must not depend on it anyway.
func buildAssessmentCell(c Criterion, sc AssessmentScenario) (*RuntimeExperiment, error) {
	opts := []Option{WithWorkers(1)}
	if sc.Iterations != 0 {
		opts = append(opts, WithIterations(sc.Iterations))
	}
	if len(sc.Speeds) > 0 {
		opts = append(opts, WithSpeeds(sc.Speeds))
	}
	if sc.Workload != nil {
		w, err := sc.Workload.Workload()
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithWorkload(w))
	}
	if c.Trigger != nil {
		t, err := c.Trigger.Trigger()
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithTrigger(t))
	}
	if c.Planner != nil {
		pl, err := c.Planner.Planner()
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithPlanner(pl))
	}
	if sc.Model != nil {
		opts = append(opts, WithModel(*sc.Model))
	}
	return NewRuntime(sc.P, opts...)
}

// Criteria returns the assessed criteria in cell-grid order.
func (a *Assessment) Criteria() []Criterion {
	return append([]Criterion(nil), a.criteria...)
}

// Scenarios is the number of scenario columns; Cells is criteria x
// scenarios, the grid size every result surface indexes into.
func (a *Assessment) Scenarios() int { return a.scenarios }

// Cells is the total cell count of the grid.
func (a *Assessment) Cells() int { return len(a.cells) }

// Run executes every cell and returns the per-criterion scores with the
// cell-ordered results. The RuntimeSweep contract carries over: output is
// worker-count invariant and the lowest-index cell error wins.
func (a *Assessment) Run(ctx context.Context) (AssessmentSummary, []RuntimeResult, error) {
	_, results, err := a.sweep.Run(ctx, a.cells)
	if err != nil {
		return AssessmentSummary{}, nil, err
	}
	return a.Summarize(results), results, nil
}

// Stream runs every cell and delivers per-cell results in completion order
// (Index is the cell index). Delivery after cancellation is best-effort.
func (a *Assessment) Stream(ctx context.Context) <-chan RuntimeSweepResult {
	return a.sweep.Stream(ctx, a.cells)
}

// StreamCells runs exactly the listed cells — the resumable-runner
// primitive: a checkpointed job streams only its missing cells. The
// delivered Index is the position in indices, not the cell index.
func (a *Assessment) StreamCells(ctx context.Context, indices []int) <-chan RuntimeSweepResult {
	sub := make([]*RuntimeExperiment, len(indices))
	for i, idx := range indices {
		sub[i] = a.cells[idx]
	}
	return a.sweep.Stream(ctx, sub)
}

// CriterionScore is one criterion's row of the assessment: scenario means
// of the runtime figures of merit, plus the regret against the best
// criterion of the panel.
type CriterionScore struct {
	// Name is the criterion's display name.
	Name string `json:"name"`
	// MeanEfficiency averages PerfectTime/TotalTime over the scenarios —
	// the distance to the perfect-knowledge bound (1 is optimal).
	MeanEfficiency float64 `json:"mean_efficiency"`
	// MeanGain averages the relative improvement over the never-balancing
	// baseline.
	MeanGain float64 `json:"mean_gain"`
	// MeanLBCalls averages how many balancing steps the criterion spent.
	MeanLBCalls float64 `json:"mean_lb_calls"`
	// MeanWLI averages the workload-imbalance metric over the runs.
	MeanWLI float64 `json:"mean_wli"`
	// Regret is the best panel MeanEfficiency minus this criterion's.
	Regret float64 `json:"regret"`
}

// AssessmentSummary ranks the criteria of one assessment run.
type AssessmentSummary struct {
	// Scenarios is the number of scenario columns each score averages over.
	Scenarios int `json:"scenarios"`
	// Best names the criterion with the highest mean efficiency (first
	// declared wins ties).
	Best string `json:"best"`
	// Criteria holds one score per criterion, in declaration order.
	Criteria []CriterionScore `json:"criteria"`
}

// Summarize aggregates cell-ordered results (as returned by Run, or
// collected from Stream) into per-criterion scores. It is a pure function
// of the results, so a resumed job summarizing restored cells reports
// exactly what an uninterrupted run would.
func (a *Assessment) Summarize(results []RuntimeResult) AssessmentSummary {
	sum := AssessmentSummary{Scenarios: a.scenarios}
	bestEff := 0.0
	for ci, c := range a.criteria {
		score := CriterionScore{Name: c.DisplayName()}
		var eff, gain, calls, wli float64
		for si := 0; si < a.scenarios; si++ {
			r := results[ci*a.scenarios+si]
			eff += r.Efficiency()
			gain += r.Gain()
			calls += float64(r.Timeline.LBCount())
			wli += r.Timeline.MeanWLI()
		}
		n := float64(a.scenarios)
		score.MeanEfficiency = eff / n
		score.MeanGain = gain / n
		score.MeanLBCalls = calls / n
		score.MeanWLI = wli / n
		if sum.Best == "" || score.MeanEfficiency > bestEff {
			sum.Best = score.Name
			bestEff = score.MeanEfficiency
		}
		sum.Criteria = append(sum.Criteria, score)
	}
	for i := range sum.Criteria {
		sum.Criteria[i].Regret = bestEff - sum.Criteria[i].MeanEfficiency
	}
	return sum
}
