package ulba

import (
	"fmt"
	"sort"
	"sync"

	"ulba/internal/lb"
	"ulba/internal/schedule"
)

// RuntimeTrigger is the per-run trigger state machine the load-balancing
// runner drives: it observes each iteration's wall time and decides, against
// the measured LB-cost threshold, when the balancer fires. Implementations
// must be deterministic functions of the observed values — LB calls are
// collective, so every PE must reach the same decision.
type RuntimeTrigger = lb.Trigger

// A Trigger decides *at runtime* when to balance. It is the reactive
// counterpart of a Planner: instead of precomputing a schedule from the
// analytic model, it watches the measured iteration times. A Trigger value
// is a factory: every rank of a run calls New once for a fresh, independent
// state machine.
type Trigger interface {
	// Name identifies the trigger, matching its registry key.
	Name() string
	// New returns a fresh runtime state machine.
	New() RuntimeTrigger
}

// DegradationTrigger is the paper's adaptive rule (the default): the exact
// accumulated degradation of Zhai et al. [7] compared against the average
// measured LB cost (Algorithm 1).
type DegradationTrigger struct{}

// Name returns "degradation".
func (DegradationTrigger) Name() string { return "degradation" }

// New returns a fresh degradation accumulator.
func (DegradationTrigger) New() RuntimeTrigger { return lb.NewDegradation() }

// MenonTrigger fires at the fitted analytic optimum of Menon et al. [6]:
// tau = sqrt(2*C*omega/m^) with the growth rate fitted from the observed
// iteration times.
type MenonTrigger struct{}

// Name returns "menon".
func (MenonTrigger) Name() string { return "menon" }

// New returns a fresh Menon trigger.
func (MenonTrigger) New() RuntimeTrigger { return lb.NewMenonTau() }

// PeriodicTrigger fires every Every iterations regardless of the measured
// times, the fixed-interval baseline.
type PeriodicTrigger struct {
	Every int // interval in iterations; must be positive
}

// Name returns "periodic".
func (PeriodicTrigger) Name() string { return "periodic" }

// New returns a fresh periodic counter.
func (t PeriodicTrigger) New() RuntimeTrigger { return &lb.Periodic{K: t.Every} }

// NeverTrigger disables load balancing entirely (the static baseline).
type NeverTrigger struct{}

// Name returns "never".
func (NeverTrigger) Name() string { return "never" }

// New returns the inert trigger.
func (NeverTrigger) New() RuntimeTrigger { return lb.Never{} }

// ScheduleTrigger replays a precomputed plan at runtime: the balancer fires
// exactly at the schedule's iterations. It is the bridge from a Planner to
// the application runtime — plan on the model, execute on the simulated
// cluster.
type ScheduleTrigger struct {
	Schedule Schedule
}

// Name returns "schedule".
func (ScheduleTrigger) Name() string { return "schedule" }

// New returns a fresh replay cursor over the schedule.
func (t ScheduleTrigger) New() RuntimeTrigger {
	return &lb.FixedSchedule{Iters: t.Schedule}
}

// ImbalanceObserver is optionally implemented by runtime trigger state
// machines that consume the per-iteration weighted load imbalance
// WLI = (max-avg)/avg of the per-PE compute times. The runner feeds
// ObserveImbalance right after Observe on every iteration; triggers that
// do not implement it are unaffected — the WLI is computed out-of-band
// from the pure weight function and costs no simulated time.
type ImbalanceObserver = lb.ImbalanceObserver

// WLITrigger fires when the weighted load imbalance WLI = (max-avg)/avg of
// the per-PE compute times exceeds Threshold — the redistribute-on-tolerance
// policy of GAMER's LB_EstimateLoadImbalance. Unlike the time-based triggers
// it reacts to the *shape* of the load, not its cost: a perfectly overlapped
// but skewed iteration fires it, and a uniformly slow one never does. The
// WLI of every iteration is also recorded on the result timeline, trigger or
// not, so runs can report imbalance without balancing on it.
type WLITrigger struct {
	Threshold float64 // fire when WLI exceeds this; must be positive
}

// Name returns "wli".
func (WLITrigger) Name() string { return "wli" }

// New returns a fresh WLI comparator.
func (t WLITrigger) New() RuntimeTrigger { return &lb.WLIThreshold{Threshold: t.Threshold} }

// TriggerFactory constructs a trigger with its default configuration.
type TriggerFactory func() Trigger

var (
	triggerMu  sync.RWMutex
	triggerReg = map[string]TriggerFactory{}
)

// RegisterTrigger makes a trigger selectable by name, e.g. from the
// -trigger flag of the CLIs. It errors on the empty name, a nil factory, or
// a duplicate registration.
func RegisterTrigger(name string, f TriggerFactory) error {
	if name == "" {
		return fmt.Errorf("ulba: trigger name must not be empty")
	}
	if f == nil {
		return fmt.Errorf("ulba: trigger %q: nil factory", name)
	}
	triggerMu.Lock()
	defer triggerMu.Unlock()
	if _, dup := triggerReg[name]; dup {
		return fmt.Errorf("ulba: trigger %q already registered", name)
	}
	triggerReg[name] = f
	return nil
}

// NewTrigger constructs the registered trigger with the given name.
func NewTrigger(name string) (Trigger, error) {
	triggerMu.RLock()
	f, ok := triggerReg[name]
	triggerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ulba: unknown trigger %q (registered: %v)", name, TriggerNames())
	}
	return f(), nil
}

// TriggerNames lists the registered triggers in sorted order.
func TriggerNames() []string {
	triggerMu.RLock()
	defer triggerMu.RUnlock()
	names := make([]string, 0, len(triggerReg))
	for n := range triggerReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func mustRegisterTrigger(name string, f TriggerFactory) {
	if err := RegisterTrigger(name, f); err != nil {
		panic(err)
	}
}

func init() {
	mustRegisterTrigger("degradation", func() Trigger { return DegradationTrigger{} })
	mustRegisterTrigger("menon", func() Trigger { return MenonTrigger{} })
	mustRegisterTrigger("periodic", func() Trigger { return PeriodicTrigger{Every: 10} })
	mustRegisterTrigger("never", func() Trigger { return NeverTrigger{} })
	mustRegisterTrigger("wli", func() Trigger { return WLITrigger{Threshold: 0.25} })
	// The replay trigger registers with an empty plan (it then never
	// fires); callers configure the schedule, typically through
	// WithPlanner, which installs it automatically.
	mustRegisterTrigger("schedule", func() Trigger { return ScheduleTrigger{} })
}

// normalizeSchedule clamps an arbitrary iteration list into a valid
// schedule for a gamma-iteration run.
func normalizeSchedule(iters []int, gamma int) Schedule {
	return schedule.Normalize(iters, gamma)
}

// dropsWarmup reports whether an installed trigger makes the forced warmup
// LB call wrong rather than helpful: the static baseline must stay free of
// LB calls, and a schedule replay already encodes its (possibly absent)
// first step — a forced warmup call would distort the plan.
func dropsWarmup(t Trigger) bool {
	switch t.(type) {
	case NeverTrigger, ScheduleTrigger:
		return true
	default:
		return false
	}
}
