package ulba

import "fmt"

// The spec types are the wire-format counterpart of the functional options:
// plain data structs (JSON-taggable, comparable where possible) that name a
// registered policy and carry its configuration knobs, resolved into live
// Planner / Trigger / Workload values on demand. They are what lets a
// config-driven frontend — the HTTP service (internal/server), its async
// job submissions (POST /v1/jobs wraps the same request bodies), a CLI
// flag set, a stored experiment description — construct the same engines
// the in-process builders do, from nothing but serializable data. Because
// a spec marshals deterministically, it is also what the service hashes
// into the content address under which results are cached, persisted, and
// resumed (see DESIGN.md, "Service layer").

// PlannerSpec names a registered planner together with its configuration
// knobs. The zero knobs keep the registry defaults (periodic: every 10,
// anneal: 20000 proposals at seed 0).
type PlannerSpec struct {
	// Name is the planner's registry key (see PlannerNames).
	Name string `json:"name"`
	// Every overrides the interval of the periodic planner. Setting it
	// on any other planner is an error: the knob would be silently dead.
	Every int `json:"every,omitempty"`
	// AnnealSteps overrides the proposal budget of the annealing planner.
	// Like Every, it is rejected on planners without that knob.
	AnnealSteps int `json:"anneal_steps,omitempty"`
	// AnnealSeed sets the annealing planner's search seed.
	AnnealSeed uint64 `json:"anneal_seed,omitempty"`
}

// Planner resolves the spec against the planner registry and applies its
// knobs. Knobs that the named planner does not have are an error, so a
// misdirected configuration cannot silently evaluate the wrong policy.
func (sp PlannerSpec) Planner() (Planner, error) {
	pl, err := NewPlanner(sp.Name)
	if err != nil {
		return nil, err
	}
	switch p := pl.(type) {
	case PeriodicPlanner:
		if sp.AnnealSteps != 0 || sp.AnnealSeed != 0 {
			return nil, fmt.Errorf("ulba: planner %q has no annealing knobs", sp.Name)
		}
		if sp.Every > 0 {
			p.Every = sp.Every
		} else if sp.Every < 0 {
			return nil, fmt.Errorf("ulba: planner %q needs every > 0, got %d", sp.Name, sp.Every)
		}
		return p, nil
	case AnnealPlanner:
		if sp.Every != 0 {
			return nil, fmt.Errorf("ulba: planner %q has no every knob", sp.Name)
		}
		if sp.AnnealSteps < 0 {
			return nil, fmt.Errorf("ulba: planner %q needs anneal_steps > 0, got %d", sp.Name, sp.AnnealSteps)
		}
		p.Steps = sp.AnnealSteps
		p.Seed = sp.AnnealSeed
		return p, nil
	}
	if sp.Every != 0 || sp.AnnealSteps != 0 || sp.AnnealSeed != 0 {
		return nil, fmt.Errorf("ulba: planner %q takes no configuration knobs", sp.Name)
	}
	return pl, nil
}

// TriggerSpec names a registered trigger together with its configuration
// knobs. The zero knobs keep the registry defaults (periodic: every 10).
type TriggerSpec struct {
	// Name is the trigger's registry key (see TriggerNames).
	Name string `json:"name"`
	// Every overrides the interval of the periodic trigger. Setting it
	// on any other trigger is an error.
	Every int `json:"every,omitempty"`
	// Threshold overrides the firing threshold of the wli trigger. Setting
	// it on any other trigger is an error.
	Threshold float64 `json:"threshold,omitempty"`
}

// Trigger resolves the spec against the trigger registry and applies its
// knobs, rejecting knobs the named trigger does not have.
func (sp TriggerSpec) Trigger() (Trigger, error) {
	t, err := NewTrigger(sp.Name)
	if err != nil {
		return nil, err
	}
	if pt, ok := t.(PeriodicTrigger); ok {
		if sp.Threshold != 0 {
			return nil, fmt.Errorf("ulba: trigger %q takes no threshold knob", sp.Name)
		}
		if sp.Every > 0 {
			pt.Every = sp.Every
		} else if sp.Every < 0 {
			return nil, fmt.Errorf("ulba: trigger %q needs every > 0, got %d", sp.Name, sp.Every)
		}
		return pt, nil
	}
	if wt, ok := t.(WLITrigger); ok {
		if sp.Every != 0 {
			return nil, fmt.Errorf("ulba: trigger %q takes no every knob", sp.Name)
		}
		if sp.Threshold > 0 {
			wt.Threshold = sp.Threshold
		} else if sp.Threshold != 0 {
			return nil, fmt.Errorf("ulba: trigger %q needs threshold > 0, got %g", sp.Name, sp.Threshold)
		}
		return wt, nil
	}
	if sp.Every != 0 {
		return nil, fmt.Errorf("ulba: trigger %q takes no every knob", sp.Name)
	}
	if sp.Threshold != 0 {
		return nil, fmt.Errorf("ulba: trigger %q takes no threshold knob", sp.Name)
	}
	return t, nil
}

// WorkloadSpec names a registered workload together with the knobs shared
// across the generator family. The zero knobs keep each generator's
// documented defaults.
type WorkloadSpec struct {
	// Name is the workload's registry key (see WorkloadNames).
	Name string `json:"name"`
	// Seed re-seeds the generator workloads. The trace workload has no
	// seed; setting one there is an error.
	Seed uint64 `json:"seed,omitempty"`
	// Rows replaces the trace workload's recording with an inline weight
	// matrix (one row per iteration, one column per item) — the wire
	// equivalent of LoadTraceWorkload. It is rejected on any other
	// workload.
	Rows [][]float64 `json:"rows,omitempty"`
	// Target overrides the target workload's exact imbalance max/avg.
	// Setting it on any other workload is an error.
	Target float64 `json:"target,omitempty"`
	// Levels overrides the amr workload's refinement depth. Setting it on
	// any other workload is an error.
	Levels int `json:"levels,omitempty"`
	// Grid overrides the minife workload's global grid as [nx, ny, nz].
	// Setting it on any other workload is an error.
	Grid []int `json:"grid,omitempty"`
}

// Workload resolves the spec against the workload registry and applies its
// knobs, rejecting knobs the named workload does not have.
func (sp WorkloadSpec) Workload() (Workload, error) {
	w, err := NewWorkload(sp.Name)
	if err != nil {
		return nil, err
	}
	if sp.Target != 0 {
		if _, ok := w.(TargetImbalanceWorkload); !ok {
			return nil, fmt.Errorf("ulba: workload %q takes no target knob; only the target workload dials in an imbalance", sp.Name)
		}
	}
	if sp.Levels != 0 {
		if _, ok := w.(AMRWorkload); !ok {
			return nil, fmt.Errorf("ulba: workload %q takes no levels knob; only the amr workload refines", sp.Name)
		}
	}
	if len(sp.Grid) > 0 {
		if _, ok := w.(MiniFEWorkload); !ok {
			return nil, fmt.Errorf("ulba: workload %q takes no grid knob; only the minife workload decomposes a grid", sp.Name)
		}
		if len(sp.Grid) != 3 {
			return nil, fmt.Errorf("ulba: minife grid knob needs [nx, ny, nz], got %d entries", len(sp.Grid))
		}
	}
	if len(sp.Rows) > 0 {
		if _, ok := w.(TraceWorkload); !ok {
			return nil, fmt.Errorf("ulba: workload %q takes no rows; only the trace workload replays a matrix", sp.Name)
		}
		if sp.Seed != 0 {
			return nil, fmt.Errorf("ulba: the trace workload has no seed knob")
		}
		return TraceWorkload{Rows: sp.Rows}, nil
	}
	switch wl := w.(type) {
	case StationaryWorkload:
		wl.Seed = sp.Seed
		return wl, nil
	case LinearWorkload:
		wl.Seed = sp.Seed
		return wl, nil
	case ExponentialWorkload:
		wl.Seed = sp.Seed
		return wl, nil
	case BurstyWorkload:
		wl.Seed = sp.Seed
		return wl, nil
	case OutlierWorkload:
		wl.Seed = sp.Seed
		return wl, nil
	case MiniFEWorkload:
		wl.Seed = sp.Seed
		if len(sp.Grid) == 3 {
			wl.Nx, wl.Ny, wl.Nz = sp.Grid[0], sp.Grid[1], sp.Grid[2]
		}
		return wl, nil
	case AMRWorkload:
		wl.Seed = sp.Seed
		wl.Levels = sp.Levels
		return wl, nil
	case TargetImbalanceWorkload:
		wl.Seed = sp.Seed
		wl.Target = sp.Target
		return wl, nil
	case TraceWorkload:
		if sp.Seed != 0 {
			return nil, fmt.Errorf("ulba: the trace workload has no seed knob")
		}
		return wl, nil
	default:
		if sp.Seed != 0 {
			return nil, fmt.Errorf("ulba: workload %q takes no seed knob", sp.Name)
		}
		return w, nil
	}
}
