// Package ulba reproduces "On the Benefits of Anticipating Load Imbalance
// for Performance Optimization of Parallel Applications" (Boulmier, Raynaud,
// Abdennadher, Chopard; IEEE CLUSTER 2019; arXiv:1909.07168) and grows it
// into a composable, servable experimentation harness for load-balancing
// policies.
//
// ULBA — the Underloading Load Balancing Approach — anticipates load
// imbalance instead of merely reacting to it: processing elements whose
// workload increase rate (WIR) is a statistical outlier receive less than
// the even share at each load-balancing step, so the application rebalances
// itself through its own dynamics before imbalance degrades performance
// again.
//
// # Policy axes and registries
//
// The public API is organized around the policy axes the paper studies,
// all pluggable and registry-backed so new policies compose with the
// existing harness:
//
//   - Planner — when to balance, decided ahead of time on the analytic
//     model (Eqs. 1-12): SigmaPlusPlanner (the paper's proposal, registry
//     name "sigma+"), MenonPlanner ("menon"), PeriodicPlanner ("periodic"),
//     AnnealPlanner ("anneal", the heuristic baseline of Fig. 2).
//     RegisterPlanner / NewPlanner / PlannerNames select planners by name.
//   - Trigger — when to balance, decided at runtime from the measured
//     iteration times: DegradationTrigger (the adaptive rule of Zhai et
//     al., the default; "degradation"), MenonTrigger ("menon"),
//     PeriodicTrigger ("periodic"), NeverTrigger ("never"), and
//     ScheduleTrigger ("schedule"), which replays a planned schedule on
//     the simulated cluster. RegisterTrigger / NewTrigger / TriggerNames
//     mirror the planner registry.
//   - Workload — what the runtime scenario engine executes: a registry of
//     synthetic load dynamics ("stationary", "linear" and "exponential"
//     drift, "bursty", heavy-tailed "outlier" WIR, recorded-"trace"
//     replay) whose pure weight functions make every policy comparison
//     noise-free. RegisterWorkload / NewWorkload / WorkloadNames complete
//     the registry trio.
//
// The registry names above are the exact vocabulary of the CLI flags
// (-planner, -trigger, -workload), of the DESIGN.md tables, and of the
// HTTP service's GET /v1/registries endpoint; a test pins the three views
// against each other.
//
// PlannerSpec, TriggerSpec, and WorkloadSpec are the wire-format
// counterpart of the policy values: serializable structs that name a
// registered policy plus its configuration knobs and resolve into live
// values. They are how config-driven frontends — the HTTP service, stored
// experiment descriptions — construct the same engines the in-process
// builders do.
//
// # Engines
//
// Four engines share one option vocabulary (functional options, eagerly
// validated, scope-checked per builder):
//
//   - Experiment (New): one fluid-with-erosion application run on the
//     simulated distributed-memory cluster, with Compare for the
//     standard-method baseline on identical physics.
//   - Sweep (NewSweep): the concurrent batch engine over model instances
//     behind the paper's Fig. 3 — streams per-instance Comparison results
//     and aggregates them bit-identically for every worker count.
//   - RuntimeExperiment (NewRuntime): one synthetic scenario (any Workload
//     under any Trigger or Planner) executed on the simulated cluster and
//     measured against the no-LB baseline and the perfect-knowledge bound.
//   - RuntimeSweep (NewRuntimeSweep): the batch engine over scenarios,
//     sharing the worker pool and aggregation contracts with Sweep.
//
// SummarizeSweep and SummarizeRuntimeSweep expose the engines' input-order
// aggregation to Stream consumers that collect results themselves.
//
// # Service layer
//
// internal/server and cmd/ulba-serve put the four engines behind an
// HTTP/JSON service. The synchronous endpoints — POST /v1/experiment,
// /v1/sweep, /v1/runtime, /v1/runtime-sweep — map requests onto the
// builders through the spec types, accept batched instance sets, and can
// stream NDJSON results as they complete. A deterministic
// content-addressed result cache (LRU by byte budget, single-flight
// deduplication of concurrent identical requests) serves repeated work
// without recomputing — sound because every engine result is a pure
// function of its request.
//
// The /v1/jobs family (internal/jobs) is the asynchronous alternative for
// work too large to hold a connection open: POST /v1/jobs submits any of
// the four request types and returns a job id immediately; GET
// /v1/jobs/{id} reports the queued/running/done/failed/cancelled state
// machine with per-instance progress counters, GET /v1/jobs/{id}/stream
// follows the as-completed NDJSON lines live, GET /v1/jobs/{id}/result
// serves the final body — bit-identical to the synchronous endpoint's
// response for the same request — and DELETE cancels. With a store
// directory configured (ulba-serve -store-dir), rendered bodies persist in
// an append-only content-addressed log that is replayed into the cache on
// startup, so identical requests are served across restarts without
// recomputation; running sweep jobs additionally checkpoint every
// completed instance, so a server killed mid-job resumes — rather than
// recomputes — when the identical request is resubmitted. Anticipation
// applied to the serving layer itself: plan the work, survive the
// interruption, never redo what is already known.
//
// See API.md for the HTTP reference (including the job state machine and
// curl examples) and DESIGN.md ("Service layer") for the cache-key,
// single-flight, streaming, and persistence/resume contracts.
//
// # Evaluation core
//
// The hot loop of the synthetic experiments — one instance scanned over a
// 100-point alpha grid — runs on an allocation-free incremental evaluator
// (internal/schedule.Evaluator). It walks the sigma+ schedule on the fly
// instead of materializing a Schedule per grid point, prunes grid alphas
// whose partial total already exceeds the best seen (the running sum is
// monotone), and keeps every floating-point operation in the same order as
// the materialized slow path, so its totals are bit-identical, not merely
// close. Sweep dispatches to this fast path for the default sigma+ policy
// (planner omitted, or SigmaPlusPlanner installed explicitly) and falls
// back to the general Planner.Plan path only for custom planners; a golden
// test pins the two paths to identical SweepSummary output.
//
// # Determinism
//
// Four guarantees compose: per-instance evaluations and scenario runs are
// pure functions of their parameters; both sweep engines aggregate in
// input order regardless of completion order, so summaries are
// bit-identical for every worker count; the evaluator fast path is
// bit-identical to the slow path, so enabling the optimization is
// unobservable in results; and therefore a served response is bit-identical
// to the in-process result, which is what makes the service's result cache
// sound — and, extended across time, what makes the persistent store and
// the job subsystem sound: an async job's result bytes equal the
// synchronous response, and a checkpoint-resumed job's bytes equal an
// uninterrupted run's. Run cmd/ulba-bench to verify the fast/slow
// agreement and record throughput (model sweep, runtime sweep,
// served-request, and async-job entries).
//
// Quick start:
//
//	exp, err := ulba.New(32,
//	        ulba.WithMethod(ulba.ULBA),
//	        ulba.WithAlpha(0.4),
//	        ulba.WithTrigger(ulba.DegradationTrigger{}),
//	)
//	if err != nil { ... }
//	res, err := exp.Run(ctx)
//	// res.TotalTime, res.Usage, res.LBIters ...
//
//	cmp, err := exp.Compare(ctx) // same instance under the standard method too
//	// cmp.Gain(), cmp.CallsAvoided()
//
// A model-side batch sweep (the engine behind Fig. 3):
//
//	sweep, err := ulba.NewSweep(ulba.WithWorkers(8))
//	summary, comps, err := sweep.Run(ctx, ulba.SampleInstances(seed, 1000))
//	// summary.Gains.Median, summary.MeanBestAlpha ...
//
// And a runtime scenario — execute a workload instead of evaluating the
// model:
//
//	rexp, err := ulba.NewRuntime(8,
//	        ulba.WithWorkload(ulba.BurstyWorkload{}),
//	        ulba.WithIterations(200),
//	)
//	rres, err := rexp.Run(ctx)
//	// rres.Gain(), rres.Efficiency(), rres.Timeline.LBCount() ...
//
// The package remains a facade over the internal building blocks:
//
//   - the analytic application model of the paper (Eqs. 1-12): per-iteration
//     times under the standard method and under ULBA, the LB-interval bounds
//     sigma- and sigma+, and Menon's optimal interval tau;
//   - LB schedules and their total-time evaluation (Eq. 4), plus a
//     simulated-annealing schedule search (the paper's heuristic baseline);
//   - the Table II random-instance generator and the synthetic experiment
//     drivers of Figs. 2 and 3;
//   - a simulated distributed-memory runtime (goroutine ranks, virtual
//     clocks, Hockney cost model) standing in for MPI;
//   - the fluid-with-erosion application of Section IV-B with its
//     centralized stripe partitioner, gossip WIR dissemination, z-score
//     overload detection, and the adaptive degradation trigger, runnable
//     under the standard method or ULBA;
//   - the synthetic runtime-scenario runner (internal/lb.RunSynth) behind
//     the Workload engine, with its no-LB and perfect-knowledge reference
//     points.
//
// The pre-builder entry points (Run, DefaultRunConfig, MenonSchedule,
// SigmaPlusSchedule, AnnealSchedule) remain as deprecated shims delegating
// to the new API.
//
// See the examples directory for complete programs, DESIGN.md for the API
// surface and the per-experiment index, and API.md for the HTTP service
// reference.
package ulba
