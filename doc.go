// Package ulba reproduces "On the Benefits of Anticipating Load Imbalance
// for Performance Optimization of Parallel Applications" (Boulmier, Raynaud,
// Abdennadher, Chopard; IEEE CLUSTER 2019; arXiv:1909.07168).
//
// ULBA — the Underloading Load Balancing Approach — anticipates load
// imbalance instead of merely reacting to it: processing elements whose
// workload increase rate (WIR) is a statistical outlier receive less than
// the even share at each load-balancing step, so the application rebalances
// itself through its own dynamics before imbalance degrades performance
// again.
//
// The public API is organized around the two policy axes the paper studies,
// both pluggable and registry-backed so new policies compose with the
// existing harness:
//
//   - Planner — when to balance, decided ahead of time on the analytic
//     model (Eqs. 1-12): SigmaPlusPlanner (the paper's proposal),
//     MenonPlanner (the standard method), PeriodicPlanner, AnnealPlanner
//     (the heuristic baseline of Fig. 2). RegisterPlanner / NewPlanner
//     select planners by name, e.g. from a -planner CLI flag.
//   - Trigger — when to balance, decided at runtime from the measured
//     iteration times: DegradationTrigger (the adaptive rule of Zhai et
//     al., the default), MenonTrigger, PeriodicTrigger, NeverTrigger, and
//     ScheduleTrigger, which replays a planned schedule on the simulated
//     cluster. RegisterTrigger / NewTrigger mirror the planner registry.
//   - Workload — what the runtime scenario engine executes: a registry of
//     synthetic load dynamics (stationary, linear and exponential drift,
//     bursty, heavy-tailed outlier WIR, recorded-trace replay) whose pure
//     weight functions make every policy comparison noise-free.
//     RegisterWorkload / NewWorkload complete the registry trio.
//
// Single runs are built with the Experiment builder and executed with
// context cancellation; batch evaluations over many model instances go
// through the concurrent Sweep engine, which streams per-instance
// Comparison results and aggregates them bit-identically for every worker
// count. On the runtime side, NewRuntime builds one scenario (any
// Workload x any Trigger or Planner, executed over the simulated cluster
// and measured against the no-LB baseline and the perfect-knowledge lower
// bound) and NewRuntimeSweep batches scenarios over the same worker pool
// with the same bit-identical aggregation contract.
//
// # Evaluation core
//
// The hot loop of the synthetic experiments — one instance scanned over a
// 100-point alpha grid — runs on an allocation-free incremental evaluator
// (internal/schedule.Evaluator). It walks the sigma+ schedule on the fly
// instead of materializing a Schedule per grid point, prunes grid alphas
// whose partial total already exceeds the best seen (the running sum is
// monotone), and keeps every floating-point operation in the same order as
// the materialized slow path, so its totals are bit-identical, not merely
// close. Sweep dispatches to this fast path for the default sigma+ policy
// (planner omitted, or SigmaPlusPlanner installed explicitly) and falls
// back to the general Planner.Plan path only for custom planners; a golden
// test pins the two paths to identical SweepSummary output.
//
// # Determinism
//
// Three guarantees compose: per-instance evaluations are pure functions of
// their parameters; Sweep aggregates in input order regardless of
// completion order, so summaries are bit-identical for every worker count;
// and the fast path is bit-identical to the slow path, so enabling the
// optimization is unobservable in results. Run cmd/ulba-bench to verify
// the fast/slow agreement on your hardware while recording throughput.
//
// Quick start:
//
//	exp, err := ulba.New(32,
//	        ulba.WithMethod(ulba.ULBA),
//	        ulba.WithAlpha(0.4),
//	        ulba.WithTrigger(ulba.DegradationTrigger{}),
//	)
//	if err != nil { ... }
//	res, err := exp.Run(ctx)
//	// res.TotalTime, res.Usage, res.LBIters ...
//
//	cmp, err := exp.Compare(ctx) // same instance under the standard method too
//	// cmp.Gain(), cmp.CallsAvoided()
//
// And a model-side batch sweep (the engine behind Fig. 3):
//
//	sweep, err := ulba.NewSweep(ulba.WithWorkers(8))
//	summary, comps, err := sweep.Run(ctx, ulba.SampleInstances(seed, 1000))
//	// summary.Gains.Median, summary.MeanBestAlpha ...
//
// The package remains a facade over the internal building blocks:
//
//   - the analytic application model of the paper (Eqs. 1-12): per-iteration
//     times under the standard method and under ULBA, the LB-interval bounds
//     sigma- and sigma+, and Menon's optimal interval tau;
//   - LB schedules and their total-time evaluation (Eq. 4), plus a
//     simulated-annealing schedule search (the paper's heuristic baseline);
//   - the Table II random-instance generator and the synthetic experiment
//     drivers of Figs. 2 and 3;
//   - a simulated distributed-memory runtime (goroutine ranks, virtual
//     clocks, Hockney cost model) standing in for MPI;
//   - the fluid-with-erosion application of Section IV-B with its
//     centralized stripe partitioner, gossip WIR dissemination, z-score
//     overload detection, and the adaptive degradation trigger, runnable
//     under the standard method or ULBA.
//
// The pre-builder entry points (Run, DefaultRunConfig, MenonSchedule,
// SigmaPlusSchedule, AnnealSchedule) remain as deprecated shims delegating
// to the new API.
//
// See the examples directory for complete programs and DESIGN.md for the
// API surface and the per-experiment index.
package ulba
