// Package ulba reproduces "On the Benefits of Anticipating Load Imbalance
// for Performance Optimization of Parallel Applications" (Boulmier, Raynaud,
// Abdennadher, Chopard; IEEE CLUSTER 2019; arXiv:1909.07168).
//
// ULBA — the Underloading Load Balancing Approach — anticipates load
// imbalance instead of merely reacting to it: processing elements whose
// workload increase rate (WIR) is a statistical outlier receive less than
// the even share at each load-balancing step, so the application rebalances
// itself through its own dynamics before imbalance degrades performance
// again.
//
// The package is a facade over the internal building blocks:
//
//   - the analytic application model of the paper (Eqs. 1-12): per-iteration
//     times under the standard method and under ULBA, the LB-interval bounds
//     sigma- and sigma+, and Menon's optimal interval tau;
//   - LB schedules and their total-time evaluation (Eq. 4), plus a
//     simulated-annealing schedule search (the paper's heuristic baseline);
//   - the Table II random-instance generator and the synthetic experiment
//     drivers of Figs. 2 and 3;
//   - a simulated distributed-memory runtime (goroutine ranks, virtual
//     clocks, Hockney cost model) standing in for MPI;
//   - the fluid-with-erosion application of Section IV-B with its
//     centralized stripe partitioner, gossip WIR dissemination, z-score
//     overload detection, and the adaptive degradation trigger, runnable
//     under the standard method or ULBA.
//
// Quick start:
//
//	cfg := ulba.DefaultRunConfig(32, ulba.ULBA)
//	res, err := ulba.Run(cfg)
//	// res.TotalTime, res.Usage, res.LBIters ...
//
// See the examples directory for complete programs and DESIGN.md for the
// per-experiment index.
package ulba
