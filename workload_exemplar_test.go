package ulba_test

import (
	"context"
	"math"
	"testing"

	"ulba"
	"ulba/internal/imbalance"
)

// Tests for the three exemplar-derived workloads (minife, amr, target) and
// the heterogeneous-cluster behaviour they exercise: stationarity, skew,
// exact target imbalance, the WLI channel through the public Timeline, and
// the non-uniform optimum a speed vector induces.

// blockLoads sums weight over p equal blocks at iteration iter.
func blockLoads(p, items int, weight func(int, int) float64, iter int) []float64 {
	loads := make([]float64, p)
	perPE := items / p
	for j := 0; j < items; j++ {
		loads[j/perPE] += weight(j, iter)
	}
	return loads
}

func TestMiniFEWorkloadIsStationarySkew(t *testing.T) {
	const p = 8
	w := ulba.MiniFEWorkload{Seed: 11}
	items, weight, err := w.Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	if items%p != 0 {
		t.Fatalf("items %d not a multiple of p", items)
	}
	// Stationary: the weight of every item is iteration-independent.
	for j := 0; j < items; j += 7 {
		if weight(j, 0) != weight(j, 50) {
			t.Fatalf("item %d weight changed across iterations", j)
		}
	}
	// The box decomposition of the default 61^3 grid across 8 PEs is
	// uneven: the block loads must not all be equal, and the mean item
	// weight stays at Base.
	loads := blockLoads(p, items, weight, 0)
	if imbalance.WLI(loads) <= 0 {
		t.Fatal("61^3 over 8 PEs decomposed with zero imbalance")
	}
	sum := 0.0
	for j := 0; j < items; j++ {
		sum += weight(j, 0)
	}
	if mean := sum / float64(items); math.Abs(mean-1) > 1e-9 {
		t.Fatalf("mean item weight %v, want Base=1", mean)
	}
	// Same seed, same decomposition; different seed permutes blocks.
	_, weight2, err := ulba.MiniFEWorkload{Seed: 11}.Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	if weight(0, 0) != weight2(0, 0) {
		t.Fatal("same seed produced a different decomposition")
	}
}

func TestMiniFEWorkloadRejectsTinyGrid(t *testing.T) {
	w := ulba.MiniFEWorkload{Nx: 2, Ny: 2, Nz: 2}
	if _, _, err := w.Instantiate(64); err == nil {
		t.Fatal("2^3 grid over 64 PEs accepted")
	}
}

func TestAMRWorkloadFrontMoves(t *testing.T) {
	const p = 8
	w := ulba.AMRWorkload{Seed: 3}
	items, weight, err := w.Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	// The refinement front concentrates load: some block dominates.
	if imbalance.WLI(blockLoads(p, items, weight, 0)) <= 0 {
		t.Fatal("refinement front produced a flat load")
	}
	// The front drifts: the load distribution at a distant iteration
	// differs from iteration 0.
	l0, l1 := blockLoads(p, items, weight, 0), blockLoads(p, items, weight, 400)
	moved := false
	for r := range l0 {
		if math.Abs(l0[r]-l1[r]) > 1e-9 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("refinement front never moved")
	}
	// Total work is conserved... not exactly (levels shift), but every
	// weight stays positive and finite.
	for j := 0; j < items; j++ {
		if v := weight(j, 123); !(v > 0) || math.IsInf(v, 0) {
			t.Fatalf("item %d iter 123: weight %v", j, v)
		}
	}
}

func TestTargetImbalanceWorkloadHitsTargetExactly(t *testing.T) {
	for _, target := range []float64{1.0, 1.25, 1.5, 2.0, 3.5} {
		const p = 4
		w := ulba.TargetImbalanceWorkload{Target: target, Seed: 9}
		items, weight, err := w.Instantiate(p)
		if err != nil {
			t.Fatal(err)
		}
		// Within each period the block loads are constant and their
		// max/avg equals the requested target exactly (to fp tolerance).
		for _, iter := range []int{0, 31, 32, 100} {
			loads := blockLoads(p, items, weight, iter)
			maxL, avg := 0.0, 0.0
			for _, l := range loads {
				avg += l
				if l > maxL {
					maxL = l
				}
			}
			avg /= float64(p)
			if got := maxL / avg; math.Abs(got-target) > 1e-9 {
				t.Fatalf("target %g iter %d: max/avg = %v", target, iter, got)
			}
		}
		// The draw redraws at the period boundary (for target > 1 the
		// permutation or pieces almost surely change) but stays constant
		// within a period.
		if weight(0, 0) != weight(0, 31) {
			t.Fatalf("target %g: weights changed within a period", target)
		}
	}
}

func TestTargetImbalanceWorkloadRejectsBadTarget(t *testing.T) {
	if _, _, err := (ulba.TargetImbalanceWorkload{Target: 9}).Instantiate(4); err == nil {
		t.Fatal("target 9 on 4 PEs accepted")
	}
	if _, _, err := (ulba.TargetImbalanceWorkload{Target: 0.5}).Instantiate(4); err == nil {
		t.Fatal("target below 1 accepted")
	}
}

// The public Timeline must expose the WLI trace, and on a never-balanced
// run it must equal the brute-force (max-avg)/avg of the block loads.
func TestRuntimeTimelineWLIMatchesBruteForce(t *testing.T) {
	const p, iters = 4, 30
	w := ulba.AMRWorkload{Seed: 5}
	exp, err := ulba.NewRuntime(p,
		ulba.WithWorkload(w), ulba.WithIterations(iters),
		ulba.WithTrigger(ulba.NeverTrigger{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if len(tl.WLI) != iters {
		t.Fatalf("WLI trace has %d entries, want %d", len(tl.WLI), iters)
	}
	items, weight, err := w.Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		want := imbalance.WLI(blockLoads(p, items, weight, i))
		if math.Abs(tl.WLI[i]-want) > 1e-12*(1+want) {
			t.Fatalf("iter %d: timeline WLI %v, want %v", i, tl.WLI[i], want)
		}
	}
	if tl.MeanWLI() <= 0 {
		t.Fatal("AMR run reported zero mean WLI")
	}
}

// A heterogeneous cluster has a deliberately non-uniform optimum: the LB
// step gives the fast PE speed-proportionally more items, and the perfect-
// knowledge bound beats the homogeneous cluster's.
func TestHeterogeneousSpeedsShiftOptimum(t *testing.T) {
	const p, iters = 4, 40
	run := func(speeds []float64) ulba.RuntimeResult {
		opts := []ulba.Option{
			ulba.WithWorkload(ulba.StationaryWorkload{Spread: 0.05, Seed: 2}),
			ulba.WithIterations(iters),
		}
		if speeds != nil {
			opts = append(opts, ulba.WithSpeeds(speeds))
		}
		exp, err := ulba.NewRuntime(p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	het := run([]float64{1, 1, 1, 3})
	hom := run(nil)
	if het.PerfectTime >= hom.PerfectTime {
		t.Fatalf("heterogeneous bound %v not below homogeneous %v", het.PerfectTime, hom.PerfectTime)
	}
	b := het.Timeline.FinalBounds
	counts := make([]int, p)
	for r := 0; r < p; r++ {
		counts[r] = b[r+1] - b[r]
	}
	if counts[3] <= counts[0] || counts[3] <= counts[1] || counts[3] <= counts[2] {
		t.Fatalf("fast PE did not get the largest share: %v", counts)
	}
}

func TestNewRuntimeRejectsBadSpeeds(t *testing.T) {
	if _, err := ulba.NewRuntime(4, ulba.WithWorkload(ulba.StationaryWorkload{}),
		ulba.WithSpeeds([]float64{1, 2})); err == nil {
		t.Fatal("2 speeds for 4 PEs accepted")
	}
}

// The wli trigger must be rejected without a positive threshold and must
// work end to end through the public runtime when configured.
func TestWLITriggerThroughRuntime(t *testing.T) {
	if _, err := ulba.NewRuntime(4, ulba.WithWorkload(ulba.LinearWorkload{}),
		ulba.WithTrigger(ulba.WLITrigger{})); err == nil {
		t.Fatal("wli trigger with zero threshold accepted")
	}
	exp, err := ulba.NewRuntime(4,
		ulba.WithWorkload(ulba.LinearWorkload{Seed: 7}),
		ulba.WithIterations(80),
		ulba.WithTrigger(ulba.WLITrigger{Threshold: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.LBCount() == 0 {
		t.Fatal("wli trigger never fired on a drifting load")
	}
}
