package ulba_test

import (
	"fmt"

	"ulba"
)

// ExampleModelParams demonstrates the analytic model on a hand-built
// instance: 256 PEs of which 25 overload, with the LB cost worth half an
// iteration of compute.
func ExampleModelParams() {
	p := ulba.ModelParams{
		P: 256, N: 25, Gamma: 100,
		W0: 2.56e11, Omega: 1e9, Alpha: 0.5,
	}
	p.DeltaW = 0.1 * p.W0 / float64(p.P)
	p.A = p.DeltaW * 0.1 / float64(p.P)
	p.M = p.DeltaW * 0.9 / float64(p.N)
	p.C = 0.5 * p.W0 / (float64(p.P) * p.Omega)

	sm, _ := p.SigmaMinus(0)
	sp, _ := p.SigmaPlus(0)
	tau, _ := p.WithAlpha(0).MenonTau()
	fmt.Printf("sigma- = %d iterations\n", sm)
	fmt.Printf("sigma+ = %.1f iterations\n", sp)
	fmt.Printf("tau    = %.1f iterations\n", tau)
	// Output:
	// sigma- = 153 iterations
	// sigma+ = 171.5 iterations
	// tau    = 17.5 iterations
}

// ExampleBestAlpha shows that ULBA with a tuned alpha never loses to the
// standard method on the analytic model (Fig. 3's headline invariant).
func ExampleBestAlpha() {
	p := ulba.SampleInstances(2019, 1)[0]
	std := ulba.StandardTotalTime(p)
	_, best := ulba.BestAlpha(p, 100)
	fmt.Println("ULBA at its best alpha is at least as fast:", best <= std)
	// Output:
	// ULBA at its best alpha is at least as fast: true
}

// ExampleMenonSchedule builds the standard method's LB schedule for a
// sampled instance and shows it is valid and non-empty.
func ExampleMenonSchedule() {
	p := ulba.SampleInstances(7, 1)[0]
	s := ulba.MenonSchedule(p)
	fmt.Println("valid:", s.Validate(p.Gamma) == nil)
	fmt.Println("has LB calls:", s.Count() > 0)
	// Output:
	// valid: true
	// has LB calls: true
}

// ExampleRun executes the erosion application under ULBA on a small
// instance and prints invariants every run satisfies.
func ExampleRun() {
	cfg := ulba.DefaultRunConfig(8, ulba.ULBA)
	cfg.App.StripeWidth = 48
	cfg.App.Height = 100
	cfg.App.Radius = 12
	cfg.Iterations = 30
	res, err := ulba.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed iterations:", len(res.IterTimes) == cfg.Iterations)
	fmt.Println("made progress:", res.TotalTime > 0 && res.Eroded > 0)
	fmt.Println("balancer ran:", res.LBCount() >= 1)
	// Output:
	// completed iterations: true
	// made progress: true
	// balancer ran: true
}
