package ulba_test

import (
	"context"
	"fmt"

	"ulba"
)

// ExampleModelParams demonstrates the analytic model on a hand-built
// instance: 256 PEs of which 25 overload, with the LB cost worth half an
// iteration of compute.
func ExampleModelParams() {
	p := ulba.ModelParams{
		P: 256, N: 25, Gamma: 100,
		W0: 2.56e11, Omega: 1e9, Alpha: 0.5,
	}
	p.DeltaW = 0.1 * p.W0 / float64(p.P)
	p.A = p.DeltaW * 0.1 / float64(p.P)
	p.M = p.DeltaW * 0.9 / float64(p.N)
	p.C = 0.5 * p.W0 / (float64(p.P) * p.Omega)

	sm, _ := p.SigmaMinus(0)
	sp, _ := p.SigmaPlus(0)
	tau, _ := p.WithAlpha(0).MenonTau()
	fmt.Printf("sigma- = %d iterations\n", sm)
	fmt.Printf("sigma+ = %.1f iterations\n", sp)
	fmt.Printf("tau    = %.1f iterations\n", tau)
	// Output:
	// sigma- = 153 iterations
	// sigma+ = 171.5 iterations
	// tau    = 17.5 iterations
}

// ExampleBestAlpha shows that ULBA with a tuned alpha never loses to the
// standard method on the analytic model (Fig. 3's headline invariant).
func ExampleBestAlpha() {
	p := ulba.SampleInstances(2019, 1)[0]
	std := ulba.StandardTotalTime(p)
	_, best := ulba.BestAlpha(p, 100)
	fmt.Println("ULBA at its best alpha is at least as fast:", best <= std)
	// Output:
	// ULBA at its best alpha is at least as fast: true
}

// ExampleNewSweep evaluates a batch of Table II instances under both
// methods with the concurrent sweep engine — the paper's Fig. 3 loop. The
// summary is aggregated in input order, so it is bit-identical for every
// worker count.
func ExampleNewSweep() {
	sweep, err := ulba.NewSweep(ulba.WithWorkers(4), ulba.WithAlphaGrid(21))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	summary, comps, err := sweep.Run(context.Background(), ulba.SampleInstances(2019, 100))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("instances evaluated:", summary.Instances)
	fmt.Println("per-instance comparisons:", len(comps))
	fmt.Println("median gain positive:", summary.Gains.Median > 0)
	fmt.Println("mean best alpha in (0, 1):", summary.MeanBestAlpha > 0 && summary.MeanBestAlpha < 1)
	// Output:
	// instances evaluated: 100
	// per-instance comparisons: 100
	// median gain positive: true
	// mean best alpha in (0, 1): true
}

// ExampleSweep_Stream consumes per-instance results as they complete.
// Results arrive in completion order; the Index field restores input order.
func ExampleSweep_Stream() {
	sweep, err := ulba.NewSweep(ulba.WithWorkers(2), ulba.WithAlphaGrid(11))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Cancel before abandoning the stream early (as on the error path
	// below): cancellation is what releases the sweep's workers.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	params := ulba.SampleInstances(7, 8)
	gains := make([]float64, len(params))
	for r := range sweep.Stream(ctx, params) {
		if r.Err != nil {
			fmt.Println("error:", r.Err)
			return
		}
		gains[r.Index] = r.Comparison.Gain
	}
	allNonNegative := true
	for _, g := range gains {
		if g < 0 {
			allNonNegative = false
		}
	}
	fmt.Println("instances streamed:", len(gains))
	fmt.Println("all gains non-negative:", allNonNegative)
	// Output:
	// instances streamed: 8
	// all gains non-negative: true
}

// ExampleNewPlanner selects policies by registry name, as the CLIs'
// -planner and -trigger flags do, and plans a LB schedule on the analytic
// model.
func ExampleNewPlanner() {
	// PlannerNames() and TriggerNames() list every registered name; the
	// built-ins are always present.
	registered := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	fmt.Println("sigma+ planner registered:", registered(ulba.PlannerNames(), "sigma+"))
	fmt.Println("degradation trigger registered:", registered(ulba.TriggerNames(), "degradation"))

	planner, err := ulba.NewPlanner("menon")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("selected planner:", planner.Name())
	p := ulba.SampleInstances(7, 1)[0]
	s, err := planner.Plan(p, 0)
	fmt.Println("plan valid:", err == nil && s.Validate(p.Gamma) == nil)
	fmt.Println("has LB calls:", s.Count() > 0)
	// Output:
	// sigma+ planner registered: true
	// degradation trigger registered: true
	// selected planner: menon
	// plan valid: true
	// has LB calls: true
}

// ExampleNew executes the erosion application under ULBA on a small
// instance with the Experiment builder and prints invariants every run
// satisfies.
func ExampleNew() {
	app := ulba.DefaultAppConfig(8)
	app.StripeWidth = 48
	app.Height = 100
	app.Radius = 12
	exp, err := ulba.New(8,
		ulba.WithMethod(ulba.ULBA),
		ulba.WithApp(app),
		ulba.WithIterations(30),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed iterations:", len(res.IterTimes) == 30)
	fmt.Println("made progress:", res.TotalTime > 0 && res.Eroded > 0)
	fmt.Println("balancer ran:", res.LBCount() >= 1)
	// Output:
	// completed iterations: true
	// made progress: true
	// balancer ran: true
}
