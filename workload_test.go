package ulba_test

import (
	"context"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ulba"
)

// TestEveryRegisteredWorkloadRuns is the registry-coverage contract of the
// acceptance criteria: every workload selectable by name instantiates,
// produces sane weights, and completes a scenario run.
func TestEveryRegisteredWorkloadRuns(t *testing.T) {
	names := ulba.WorkloadNames()
	if len(names) < 6 {
		t.Fatalf("expected at least 6 registered workloads, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			w, err := ulba.NewWorkload(name)
			if err != nil {
				t.Fatal(err)
			}
			if w.Name() != name {
				t.Fatalf("workload %q reports Name() = %q", name, w.Name())
			}
			items, weight, err := w.Instantiate(4)
			if err != nil {
				t.Fatal(err)
			}
			if items < 4 {
				t.Fatalf("%d items for 4 PEs", items)
			}
			for _, iter := range []int{0, 1, 17, 59} {
				for item := 0; item < items; item++ {
					v := weight(item, iter)
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("weight(%d, %d) = %g", item, iter, v)
					}
				}
			}
			res, err := mustRuntime(t, 4,
				ulba.WithWorkload(w), ulba.WithIterations(60)).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Timeline.TotalTime <= 0 {
				t.Fatalf("run produced no time: %+v", res.Timeline)
			}
		})
	}
}

func TestWorkloadWeightFunctionsArePure(t *testing.T) {
	for _, name := range ulba.WorkloadNames() {
		w, err := ulba.NewWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		items, wa, err := w.Instantiate(4)
		if err != nil {
			t.Fatal(err)
		}
		_, wb, err := w.Instantiate(4)
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 40; iter += 7 {
			for item := 0; item < items; item += 3 {
				x, y, z := wa(item, iter), wa(item, iter), wb(item, iter)
				if x != y || x != z {
					t.Fatalf("%s: weight(%d, %d) not pure: %g, %g, %g", name, item, iter, x, y, z)
				}
			}
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	cases := []struct {
		name string
		w    ulba.Workload
		p    int
	}{
		{"stationary non-positive PEs", ulba.StationaryWorkload{}, 0},
		{"stationary negative base", ulba.StationaryWorkload{Base: -1}, 4},
		{"stationary spread out of range", ulba.StationaryWorkload{Spread: 1.5}, 4},
		{"linear negative drift", ulba.LinearWorkload{A: -1}, 4},
		{"linear hot fraction out of range", ulba.LinearWorkload{HotFrac: 2}, 4},
		{"exponential negative growth", ulba.ExponentialWorkload{Growth: -1}, 4},
		{"exponential hot fraction out of range", ulba.ExponentialWorkload{HotFrac: -0.5}, 4},
		{"bursty negative amplitude", ulba.BurstyWorkload{Amplitude: -2}, 4},
		{"bursty duty out of range", ulba.BurstyWorkload{Duty: 1.5}, 4},
		{"outlier probability out of range", ulba.OutlierWorkload{Prob: 2}, 4},
		{"outlier negative scale", ulba.OutlierWorkload{Scale: -1}, 4},
		{"trace empty", ulba.TraceWorkload{}, 4},
		{"trace ragged", ulba.TraceWorkload{Rows: [][]float64{{1, 2}, {1}}}, 2},
		{"trace negative weight", ulba.TraceWorkload{Rows: [][]float64{{1, -2}}}, 2},
		{"trace fewer items than PEs", ulba.TraceWorkload{Rows: [][]float64{{1, 2}}}, 4},
		{"trace non-positive PEs", ulba.TraceWorkload{Rows: [][]float64{{1, 2}}}, 0},
	}
	for _, tc := range cases {
		if _, _, err := tc.w.Instantiate(tc.p); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestTraceWorkloadClampsBeyondRecording(t *testing.T) {
	w := ulba.TraceWorkload{Rows: [][]float64{{1, 2}, {3, 4}}}
	items, weight, err := w.Instantiate(2)
	if err != nil {
		t.Fatal(err)
	}
	if items != 2 {
		t.Fatalf("items = %d", items)
	}
	if weight(0, 5) != 3 || weight(1, 99) != 4 {
		t.Fatalf("iterations beyond the trace should clamp to the last row")
	}
}

func TestLoadTraceWorkload(t *testing.T) {
	csv := "a,b,c\n1,2,3\n4,5,6\n"
	w, err := ulba.LoadTraceWorkload(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2, 3}, {4, 5, 6}}
	if !reflect.DeepEqual(w.Rows, want) {
		t.Fatalf("rows = %v", w.Rows)
	}
	if _, err := ulba.LoadTraceWorkload(strings.NewReader("a,b\n1,oops\n")); err == nil {
		t.Fatal("expected a parse error")
	}
}

func TestDemoTraceWorkload(t *testing.T) {
	w := ulba.DemoTraceWorkload()
	items, _, err := w.Instantiate(8)
	if err != nil {
		t.Fatal(err)
	}
	if items != 16 || len(w.Rows) != 48 {
		t.Fatalf("demo trace is %d items x %d iterations, want 16 x 48", items, len(w.Rows))
	}
}

func TestLinearWorkloadModel(t *testing.T) {
	w := ulba.LinearWorkload{Seed: 11}
	e := mustRuntime(t, 8, ulba.WithWorkload(w), ulba.WithIterations(120))
	mp, err := w.Model(e.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(); err != nil {
		t.Fatalf("derived model invalid: %v", err)
	}
	if mp.P != 8 || mp.Gamma != 120 {
		t.Fatalf("model scale: %+v", mp)
	}
	// Default HotFrac 0.125 over 8 PEs: exactly one overloading PE.
	if mp.N != 1 {
		t.Fatalf("N = %d, want 1", mp.N)
	}
	if mp.C <= 0 || mp.M <= 0 || mp.A <= 0 || mp.W0 <= 0 {
		t.Fatalf("degenerate model: %+v", mp)
	}

	// The derived model feeds the planner path end to end.
	planned := mustRuntime(t, 8,
		ulba.WithWorkload(w),
		ulba.WithIterations(120),
		ulba.WithPlanner(ulba.SigmaPlusPlanner{}))
	if len(planned.PlannedSchedule()) == 0 {
		t.Fatal("sigma+ planned an empty schedule on a drifting workload")
	}
}

func TestRegisterWorkloadErrors(t *testing.T) {
	if err := ulba.RegisterWorkload("", func() ulba.Workload { return ulba.LinearWorkload{} }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := ulba.RegisterWorkload("x-nil", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := ulba.RegisterWorkload("linear", func() ulba.Workload { return ulba.LinearWorkload{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := ulba.NewWorkload("no-such-workload"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestRegistryNamesAreSortedCopies pins the registry-listing contract for
// all three registries: the returned slices are sorted, and they are fresh
// copies — a caller scribbling over one cannot corrupt later listings.
func TestRegistryNamesAreSortedCopies(t *testing.T) {
	listings := map[string]func() []string{
		"planners":  ulba.PlannerNames,
		"triggers":  ulba.TriggerNames,
		"workloads": ulba.WorkloadNames,
	}
	for kind, list := range listings {
		first := list()
		if len(first) == 0 {
			t.Fatalf("%s: empty registry", kind)
		}
		if !sort.StringsAreSorted(first) {
			t.Fatalf("%s: listing not sorted: %v", kind, first)
		}
		want := append([]string(nil), first...)
		for i := range first {
			first[i] = "corrupted"
		}
		if got := list(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: mutating the returned slice changed the registry: %v", kind, got)
		}
	}
}
