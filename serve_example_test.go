package ulba_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"ulba"
	"ulba/internal/server"
)

// Example_server runs the HTTP service layer in-process and drives one
// cached sweep through it: the first request computes, the identical
// second request is served from the deterministic result cache with
// bit-identical bytes. cmd/ulba-serve wraps the same handler into a
// deployable binary; see API.md for the full endpoint reference.
func Example_server() {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	const req = `{"sample": {"seed": 2019, "n": 100}, "alpha_grid": 21}`
	post := func() (cache string, body []byte, err error) {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			return "", nil, err
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(resp.Body)
		return resp.Header.Get("X-Ulba-Cache"), body, err
	}

	cache1, body1, err1 := post()
	cache2, body2, err2 := post()
	if err1 != nil || err2 != nil {
		fmt.Println("error:", err1, err2)
		return
	}

	var decoded struct {
		Summary ulba.SweepSummary `json:"summary"`
	}
	if err := json.Unmarshal(body1, &decoded); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("first request:", cache1)
	fmt.Println("second request:", cache2)
	fmt.Println("identical bytes:", string(body1) == string(body2))
	fmt.Println("instances evaluated:", decoded.Summary.Instances)
	fmt.Println("ULBA never loses:", decoded.Summary.Gains.Min >= 0)
	// Output:
	// first request: miss
	// second request: hit
	// identical bytes: true
	// instances evaluated: 100
	// ULBA never loses: true
}
