package ulba_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"ulba"
	"ulba/internal/jobs"
	"ulba/internal/server"
)

// mustServer builds a standalone server for the examples; with no cluster
// configured, construction cannot fail.
func mustServer() *server.Server {
	srv, err := server.New(server.Config{})
	if err != nil {
		panic(err)
	}
	return srv
}

// Example_server runs the HTTP service layer in-process and drives one
// cached sweep through it: the first request computes, the identical
// second request is served from the deterministic result cache with
// bit-identical bytes. cmd/ulba-serve wraps the same handler into a
// deployable binary; see API.md for the full endpoint reference.
func Example_server() {
	ts := httptest.NewServer(mustServer().Handler())
	defer ts.Close()

	const req = `{"sample": {"seed": 2019, "n": 100}, "alpha_grid": 21}`
	post := func() (cache string, body []byte, err error) {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			return "", nil, err
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(resp.Body)
		return resp.Header.Get("X-Ulba-Cache"), body, err
	}

	cache1, body1, err1 := post()
	cache2, body2, err2 := post()
	if err1 != nil || err2 != nil {
		fmt.Println("error:", err1, err2)
		return
	}

	var decoded struct {
		Summary ulba.SweepSummary `json:"summary"`
	}
	if err := json.Unmarshal(body1, &decoded); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("first request:", cache1)
	fmt.Println("second request:", cache2)
	fmt.Println("identical bytes:", string(body1) == string(body2))
	fmt.Println("instances evaluated:", decoded.Summary.Instances)
	fmt.Println("ULBA never loses:", decoded.Summary.Gains.Min >= 0)
	// Output:
	// first request: miss
	// second request: hit
	// identical bytes: true
	// instances evaluated: 100
	// ULBA never loses: true
}

// Example_serverJobs drives the asynchronous flow end to end: submit a
// sweep as a job, poll its state machine to completion, and fetch the
// result — which is bit-identical to the synchronous endpoint's response
// for the same request. With a store directory (ulba-serve -store-dir)
// the result would additionally survive a restart, and an interrupted
// job's checkpoint would let a resubmission resume; see API.md.
func Example_serverJobs() {
	ts := httptest.NewServer(mustServer().Handler())
	defer ts.Close()

	const request = `{"sample": {"seed": 2019, "n": 100}, "alpha_grid": 21}`

	// Submit: the response returns immediately with the job's identity.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type": "sweep", "request": `+request+`}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var st jobs.Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	fmt.Println("accepted:", resp.StatusCode, "total units:", st.Progress.Total)

	// Poll until the state machine reaches a terminal state.
	for !st.State.Terminal() {
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
	}
	fmt.Println("final state:", st.State, "completed:", st.Progress.Completed)

	// Fetch the result and compare with the synchronous endpoint.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	jobBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(request))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	syncBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("job result == synchronous bytes:", string(jobBody) == string(syncBody))
	// Output:
	// accepted: 202 total units: 100
	// final state: done completed: 100
	// job result == synchronous bytes: true
}
