package ulba

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ulba/internal/schedule"
	"ulba/internal/simulate"
	"ulba/internal/stats"
)

// Comparison is the outcome of evaluating one instance under both methods:
// the standard method on its Menon schedule versus ULBA at its best
// grid-alpha on the planner's schedule.
type Comparison = simulate.Comparison

// FiveNum is a five-number summary (min, quartiles, max) plus the mean.
type FiveNum = stats.FiveNum

// Sweep is the batch engine for model-side experiments: it evaluates many
// application instances concurrently over a bounded worker pool, streaming
// per-instance Comparison results and aggregating them deterministically.
// It is the engine behind the paper's Fig. 3 ("1000 instances per bucket")
// promoted to the public surface. With the default sigma+ policy each
// instance runs on the allocation-free incremental evaluator (see
// DESIGN.md, "Evaluation core"); custom planners take the general
// Planner.Plan path. Build it with NewSweep; a constructed Sweep is
// immutable and safe for concurrent use.
type Sweep struct {
	workers int
	grid    []float64 // alpha grid, built once and shared read-only
	planner Planner
}

// NewSweep builds a sweep engine. Defaults: GOMAXPROCS workers, the paper's
// 100-point alpha grid, and the sigma+ planner (the paper's proposal).
// WithPlanner swaps the schedule policy ULBA is evaluated on — e.g.
// AnnealPlanner reproduces the Fig. 2 comparison basis.
func NewSweep(opts ...Option) (*Sweep, error) {
	s := settings{alphaGrid: 100}
	if err := applyOptions(&s, scopeSweep, "Sweep", opts); err != nil {
		return nil, err
	}
	if pl, ok := s.planner.(PeriodicPlanner); ok && pl.Every <= 0 {
		return nil, fmt.Errorf("ulba: periodic planner needs Every > 0, got %d", pl.Every)
	}
	return &Sweep{workers: s.workers, grid: simulate.AlphaGrid(s.alphaGrid), planner: s.planner}, nil
}

// SweepResult is one streamed instance outcome. Index is the instance's
// position in the input slice, so consumers can restore input order
// regardless of completion order.
type SweepResult struct {
	Index      int
	Comparison Comparison
	Err        error
}

// SweepSummary aggregates a completed sweep. Aggregation happens in input
// order over deterministic per-instance evaluations, so the summary is
// bit-identical for every worker count.
type SweepSummary struct {
	Instances     int
	Gains         FiveNum // distribution of per-instance fractional gains
	MeanBestAlpha float64
	ULBAWins      int // instances where ULBA strictly beat the standard method
}

// compare evaluates one instance. The default (sigma+) planner — installed
// as nil, or explicitly as SigmaPlusPlanner — dispatches to the fast path:
// the allocation-free incremental evaluator of internal/schedule, which
// scans the alpha grid without materializing a Schedule per grid point and
// prunes alphas whose partial total already exceeds the best seen. Custom
// planners fall back to the general path, planning and evaluating a
// schedule at each grid alpha. Both paths are bit-identical for the sigma+
// policy; a golden test pins it.
func (s *Sweep) compare(ev *schedule.Evaluator, p ModelParams) (Comparison, error) {
	switch s.planner.(type) {
	case nil:
		return simulate.CompareWith(ev, p, s.grid), nil
	case SigmaPlusPlanner:
		// Keep the general path's eager validation: an explicit planner
		// rejects invalid instances instead of evaluating them. The
		// general path validates the instance at each grid alpha — never
		// the raw Alpha field, which the grid overrides — so validate at
		// the first grid alpha to match it exactly.
		if err := p.WithAlpha(s.grid[0]).Validate(); err != nil {
			return Comparison{}, fmt.Errorf("ulba: planner %q on instance %v: %w", s.planner.Name(), p, err)
		}
		return simulate.CompareWith(ev, p, s.grid), nil
	}
	std := simulate.StandardTime(p)
	best, bestAlpha := -1.0, 0.0
	for _, a := range s.grid {
		pa := p.WithAlpha(a)
		sched, err := s.planner.Plan(pa, 0)
		if err != nil {
			return Comparison{}, fmt.Errorf("ulba: planner %q on instance %v: %w", s.planner.Name(), p, err)
		}
		t := schedule.TotalTimeULBA(pa, sched)
		if best < 0 || t < best {
			best, bestAlpha = t, a
		}
	}
	return Comparison{
		Params:    p,
		StdTime:   std,
		ULBATime:  best,
		BestAlpha: bestAlpha,
		Gain:      (std - best) / std,
	}, nil
}

// Stream evaluates the instances over the worker pool and sends one
// SweepResult per instance as soon as it completes (not in input order).
// The channel is closed when every instance has been delivered or the
// context is cancelled, whichever comes first; after a cancellation,
// delivery of the instances already in flight is best-effort, so a
// consumer may cancel and walk away without leaking the workers. Run wraps
// Stream with a guaranteed-delivery contract instead (it always drains),
// which is what makes its lowest-index error reporting deterministic.
func (s *Sweep) Stream(ctx context.Context, params []ModelParams) <-chan SweepResult {
	return s.stream(ctx, params, false)
}

// stream is Stream with an explicit delivery mode. guaranteed delivery
// (used by Run) sends every dispatched instance's result with a blocking
// send — safe only for consumers that drain the channel until it closes,
// and the property Run's deterministic error reporting rests on: instances
// are dispatched in input order, so the dispatched set is a prefix of the
// input, and with delivery guaranteed the lowest erroring index always
// reaches the collector. Best-effort mode keeps the select against
// ctx.Done, trading that determinism for tolerance of consumers that stop
// receiving after cancellation.
func (s *Sweep) stream(ctx context.Context, params []ModelParams, guaranteed bool) <-chan SweepResult {
	return fanOut(ctx, len(params), s.workers, guaranteed, func() func(int) SweepResult {
		// One evaluator per worker. The fast-path methods are stateless
		// today, but evaluator state (the SigmaPlus scratch buffer, any
		// future memoization) must stay per-goroutine, so the plumbing
		// is per-worker.
		var ev schedule.Evaluator
		return func(i int) SweepResult {
			c, err := s.compare(&ev, params[i])
			return SweepResult{Index: i, Comparison: c, Err: err}
		}
	})
}

// fanOut is the bounded worker pool shared by the batch engines (Sweep and
// RuntimeSweep): it dispatches indices 0..n-1 in input order over workers
// goroutines and streams one result per dispatched index. newWorker is
// called once per worker goroutine to build its eval function, giving each
// worker private scratch state (e.g. a schedule.Evaluator). guaranteed
// selects the delivery contract documented on Sweep.stream: blocking sends
// (every dispatched result lands, consumers must drain until close) versus
// best-effort sends racing ctx.Done.
func fanOut[R any](ctx context.Context, n, workers int, guaranteed bool, newWorker func() func(i int) R) <-chan R {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// A workers-sized buffer decouples completion from consumption without
	// growing with the batch: memory stays O(workers) however many
	// instances stream through.
	out := make(chan R, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval := newWorker()
			for i := range idx {
				r := eval(i)
				if guaranteed {
					// The consumer drains until close, so this always
					// lands; a select against ctx.Done here could drop
					// the result when both cases are ready at once.
					out <- r
					continue
				}
				select {
				case out <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(out)
	dispatch:
		for i := 0; i < n; i++ {
			// The Err pre-check makes cancellation deterministic: once
			// the context reports done, no further instance is
			// dispatched, even if the select below could still win the
			// race against a closed Done channel.
			if ctx.Err() != nil {
				break dispatch
			}
			select {
			case idx <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(idx)
		wg.Wait()
	}()
	return out
}

// Run evaluates every instance and returns the input-ordered comparisons
// with their aggregate summary. Cancelling the context mid-sweep abandons
// the remaining instances and returns ctx.Err(). For a fixed instance set
// the output is bit-identical regardless of the worker count.
func (s *Sweep) Run(ctx context.Context, params []ModelParams) (SweepSummary, []Comparison, error) {
	// A per-run child context lets the first instance error stop the
	// dispatch of the remaining instances instead of evaluating a doomed
	// sweep to completion.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	return collectSweep(ctx, cancel, s.stream(runCtx, params, true), len(params))
}

// collectSweep drains a result stream of n expected instances into
// input-ordered comparisons and their summary.
func collectSweep(ctx context.Context, cancel context.CancelFunc, results <-chan SweepResult, n int) (SweepSummary, []Comparison, error) {
	comps := make([]Comparison, n)
	err := collectIndexed(ctx, cancel, results, n, "instances",
		func(r SweepResult) (int, error) { return r.Index, r.Err },
		func(r SweepResult) { comps[r.Index] = r.Comparison })
	if err != nil {
		return SweepSummary{}, nil, err
	}
	return summarizeSweep(comps), comps, nil
}

// collectIndexed is the collector shared by the batch engines: it drains a
// guaranteed-delivery result stream of n expected indexed results, storing
// successes via store. cancel stops the producing stream on the first
// per-item error; when several items error, the one with the lowest input
// index wins, so the reported error does not depend on completion order. A
// stream that closes short of n results without an error reports either
// the caller's context error or the delivered/expected mismatch (noun
// names the items in that message).
func collectIndexed[R any](ctx context.Context, cancel context.CancelFunc, results <-chan R, n int,
	noun string, examine func(R) (index int, err error), store func(R)) error {
	got := 0
	var firstErr error
	firstErrIdx := -1
	for r := range results {
		idx, err := examine(r)
		if err != nil {
			if firstErrIdx < 0 || idx < firstErrIdx {
				firstErr, firstErrIdx = err, idx
			}
			cancel()
			continue
		}
		store(r)
		got++
	}
	if firstErr != nil {
		return firstErr
	}
	if got < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("ulba: sweep delivered %d of %d %s", got, n, noun)
	}
	return nil
}

// SummarizeSweep aggregates comparisons in slice order into the same
// SweepSummary Run reports for that result set. It is the aggregation half
// of Run made standalone for Stream consumers (including the HTTP service's
// NDJSON streaming), which collect per-instance results themselves and
// still want the deterministic input-order summary.
func SummarizeSweep(comps []Comparison) SweepSummary { return summarizeSweep(comps) }

// summarizeSweep aggregates comparisons in slice order.
func summarizeSweep(comps []Comparison) SweepSummary {
	sum := SweepSummary{Instances: len(comps)}
	if len(comps) == 0 {
		return sum
	}
	gains := make([]float64, len(comps))
	var alphaSum float64
	for i, c := range comps {
		gains[i] = c.Gain
		alphaSum += c.BestAlpha
		if c.Gain > 0 {
			sum.ULBAWins++
		}
	}
	sum.Gains = stats.Summarize(gains)
	sum.MeanBestAlpha = alphaSum / float64(len(comps))
	return sum
}
