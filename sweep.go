package ulba

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ulba/internal/schedule"
	"ulba/internal/simulate"
	"ulba/internal/stats"
)

// Comparison is the outcome of evaluating one instance under both methods:
// the standard method on its Menon schedule versus ULBA at its best
// grid-alpha on the planner's schedule.
type Comparison = simulate.Comparison

// FiveNum is a five-number summary (min, quartiles, max) plus the mean.
type FiveNum = stats.FiveNum

// Sweep is the batch engine for model-side experiments: it evaluates many
// application instances concurrently over a bounded worker pool, streaming
// per-instance Comparison results and aggregating them deterministically.
// It is the engine behind the paper's Fig. 3 ("1000 instances per bucket")
// promoted to the public surface. Build it with NewSweep; a constructed
// Sweep is immutable and safe for concurrent use.
type Sweep struct {
	workers int
	grid    []float64 // alpha grid, built once and shared read-only
	planner Planner
}

// NewSweep builds a sweep engine. Defaults: GOMAXPROCS workers, the paper's
// 100-point alpha grid, and the sigma+ planner (the paper's proposal).
// WithPlanner swaps the schedule policy ULBA is evaluated on — e.g.
// AnnealPlanner reproduces the Fig. 2 comparison basis.
func NewSweep(opts ...Option) (*Sweep, error) {
	s := settings{alphaGrid: 100}
	if err := applyOptions(&s, scopeSweep, "Sweep", opts); err != nil {
		return nil, err
	}
	if pl, ok := s.planner.(PeriodicPlanner); ok && pl.Every <= 0 {
		return nil, fmt.Errorf("ulba: periodic planner needs Every > 0, got %d", pl.Every)
	}
	return &Sweep{workers: s.workers, grid: simulate.AlphaGrid(s.alphaGrid), planner: s.planner}, nil
}

// SweepResult is one streamed instance outcome. Index is the instance's
// position in the input slice, so consumers can restore input order
// regardless of completion order.
type SweepResult struct {
	Index      int
	Comparison Comparison
	Err        error
}

// SweepSummary aggregates a completed sweep. Aggregation happens in input
// order over deterministic per-instance evaluations, so the summary is
// bit-identical for every worker count.
type SweepSummary struct {
	Instances     int
	Gains         FiveNum // distribution of per-instance fractional gains
	MeanBestAlpha float64
	ULBAWins      int // instances where ULBA strictly beat the standard method
}

// compare evaluates one instance. With the default (sigma+) planner this is
// exactly the paper's comparison; with a custom planner the ULBA side is
// evaluated on that planner's schedule at each grid alpha.
func (s *Sweep) compare(p ModelParams) (Comparison, error) {
	if s.planner == nil {
		return simulate.Compare(p, s.grid), nil
	}
	std := simulate.StandardTime(p)
	best, bestAlpha := -1.0, 0.0
	for _, a := range s.grid {
		pa := p.WithAlpha(a)
		sched, err := s.planner.Plan(pa, 0)
		if err != nil {
			return Comparison{}, fmt.Errorf("ulba: planner %q on instance %v: %w", s.planner.Name(), p, err)
		}
		t := schedule.TotalTimeULBA(pa, sched)
		if best < 0 || t < best {
			best, bestAlpha = t, a
		}
	}
	return Comparison{
		Params:    p,
		StdTime:   std,
		ULBATime:  best,
		BestAlpha: bestAlpha,
		Gain:      (std - best) / std,
	}, nil
}

// Stream evaluates the instances over the worker pool and sends one
// SweepResult per instance as soon as it completes (not in input order).
// The channel is closed when every instance has been delivered or the
// context is cancelled, whichever comes first.
func (s *Sweep) Stream(ctx context.Context, params []ModelParams) <-chan SweepResult {
	out := make(chan SweepResult)
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(params) {
		workers = len(params)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c, err := s.compare(params[i])
				select {
				case out <- SweepResult{Index: i, Comparison: c, Err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(out)
	dispatch:
		for i := range params {
			select {
			case idx <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(idx)
		wg.Wait()
	}()
	return out
}

// Run evaluates every instance and returns the input-ordered comparisons
// with their aggregate summary. Cancelling the context mid-sweep abandons
// the remaining instances and returns ctx.Err(). For a fixed instance set
// the output is bit-identical regardless of the worker count.
func (s *Sweep) Run(ctx context.Context, params []ModelParams) (SweepSummary, []Comparison, error) {
	// A per-run child context lets the first instance error stop the
	// dispatch of the remaining instances instead of evaluating a doomed
	// sweep to completion.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	comps := make([]Comparison, len(params))
	got := 0
	var firstErr error
	firstErrIdx := -1
	for r := range s.Stream(runCtx, params) {
		if r.Err != nil {
			if firstErrIdx < 0 || r.Index < firstErrIdx {
				firstErr, firstErrIdx = r.Err, r.Index
			}
			cancel()
			continue
		}
		comps[r.Index] = r.Comparison
		got++
	}
	if firstErr != nil {
		return SweepSummary{}, nil, firstErr
	}
	if got < len(params) {
		if err := ctx.Err(); err != nil {
			return SweepSummary{}, nil, err
		}
		return SweepSummary{}, nil, fmt.Errorf("ulba: sweep delivered %d of %d instances", got, len(params))
	}
	return summarizeSweep(comps), comps, nil
}

// summarizeSweep aggregates comparisons in slice order.
func summarizeSweep(comps []Comparison) SweepSummary {
	sum := SweepSummary{Instances: len(comps)}
	if len(comps) == 0 {
		return sum
	}
	gains := make([]float64, len(comps))
	var alphaSum float64
	for i, c := range comps {
		gains[i] = c.Gain
		alphaSum += c.BestAlpha
		if c.Gain > 0 {
			sum.ULBAWins++
		}
	}
	sum.Gains = stats.Summarize(gains)
	sum.MeanBestAlpha = alphaSum / float64(len(comps))
	return sum
}
