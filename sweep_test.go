package ulba_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"ulba"
)

// Sweeps must be bit-identical across worker counts: same instances, same
// comparisons, same aggregate, regardless of scheduling order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	params := ulba.SampleInstances(2019, 60)

	run := func(workers int) (ulba.SweepSummary, []ulba.Comparison) {
		s, err := ulba.NewSweep(ulba.WithWorkers(workers), ulba.WithAlphaGrid(21))
		if err != nil {
			t.Fatal(err)
		}
		sum, comps, err := s.Run(context.Background(), params)
		if err != nil {
			t.Fatal(err)
		}
		return sum, comps
	}

	sum1, comps1 := run(1)
	sumN, compsN := run(8)
	if !reflect.DeepEqual(comps1, compsN) {
		t.Error("per-instance comparisons differ between 1 and 8 workers")
	}
	if sum1 != sumN {
		t.Errorf("aggregates differ:\n 1 worker: %+v\n 8 workers: %+v", sum1, sumN)
	}
	if sum1.Instances != len(params) {
		t.Errorf("summary counts %d instances, want %d", sum1.Instances, len(params))
	}
	// The alpha grid contains 0, so ULBA can never lose.
	for i, c := range comps1 {
		if c.Gain < 0 {
			t.Errorf("instance %d: negative gain %v", i, c.Gain)
		}
	}
}

// The default sweep must agree with the deprecated free functions.
func TestSweepMatchesFacadeEvaluation(t *testing.T) {
	params := ulba.SampleInstances(7, 10)
	s, err := ulba.NewSweep(ulba.WithAlphaGrid(21))
	if err != nil {
		t.Fatal(err)
	}
	_, comps, err := s.Run(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range comps {
		if want := ulba.StandardTotalTime(params[i]); c.StdTime != want {
			t.Errorf("instance %d: StdTime %v != facade %v", i, c.StdTime, want)
		}
		alpha, best := ulba.BestAlpha(params[i], 21)
		if c.ULBATime != best || c.BestAlpha != alpha {
			t.Errorf("instance %d: ULBA (%v at %v) != facade (%v at %v)",
				i, c.ULBATime, c.BestAlpha, best, alpha)
		}
	}
}

// A sweep over a custom planner evaluates ULBA on that planner's schedules.
func TestSweepWithPlanner(t *testing.T) {
	params := ulba.SampleInstances(3, 8)
	s, err := ulba.NewSweep(
		ulba.WithPlanner(ulba.PeriodicPlanner{Every: 10}),
		ulba.WithAlphaGrid(11),
		ulba.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, comps, err := s.Run(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range comps {
		pa := params[i].WithAlpha(c.BestAlpha)
		sched, err := ulba.PeriodicPlanner{Every: 10}.Plan(pa, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := ulba.EvaluateSchedule(pa, sched); c.ULBATime != want {
			t.Errorf("instance %d: ULBATime %v != periodic-schedule evaluation %v", i, c.ULBATime, want)
		}
	}
}

func TestSweepOptionValidation(t *testing.T) {
	if _, err := ulba.NewSweep(ulba.WithAlphaGrid(0)); err == nil {
		t.Error("alpha grid 0 accepted")
	}
	if _, err := ulba.NewSweep(ulba.WithPlanner(ulba.PeriodicPlanner{})); err == nil {
		t.Error("periodic planner without interval accepted")
	}
	if _, err := ulba.NewSweep(ulba.WithMethod(ulba.ULBA)); err == nil {
		t.Error("experiment-only option accepted by NewSweep")
	}
}

func TestSweepCancelledMidway(t *testing.T) {
	// A large batch with an expensive planner so cancellation lands while
	// instances are still pending.
	params := ulba.SampleInstances(11, 500)
	s, err := ulba.NewSweep(ulba.WithWorkers(2), ulba.WithPlanner(ulba.AnnealPlanner{Steps: 4000, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, err = s.Run(ctx, params)
	if err != context.Canceled {
		t.Errorf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

// failingPlanner errors on every instance; the sweep must surface the
// error for the lowest input index and abort the remaining dispatch.
type failingPlanner struct{}

func (failingPlanner) Name() string { return "failing" }

func (failingPlanner) Plan(p ulba.ModelParams, gamma int) (ulba.Schedule, error) {
	return nil, errors.New("synthetic plan failure")
}

func TestSweepPlannerErrorAbortsRun(t *testing.T) {
	params := ulba.SampleInstances(13, 40)
	s, err := ulba.NewSweep(ulba.WithWorkers(4), ulba.WithAlphaGrid(5), ulba.WithPlanner(failingPlanner{}))
	if err != nil {
		t.Fatal(err)
	}
	sum, comps, err := s.Run(context.Background(), params)
	if err == nil {
		t.Fatal("sweep with a failing planner returned no error")
	}
	if !strings.Contains(err.Error(), `planner "failing"`) || !strings.Contains(err.Error(), "synthetic plan failure") {
		t.Errorf("error %q does not identify the planner and cause", err)
	}
	// Deterministic reporting: with every instance failing, the surfaced
	// error belongs to input index 0 regardless of worker scheduling.
	if !strings.Contains(err.Error(), params[0].String()) {
		t.Errorf("error %q is not the lowest-index instance's", err)
	}
	if sum.Instances != 0 || comps != nil {
		t.Errorf("failed sweep leaked results: %+v, %d comps", sum, len(comps))
	}
}

// Cancelling the consumer's context mid-stream stops dispatch: the stream
// delivers the instances already in flight, then closes without touching
// the rest. The planner is expensive so that dispatch is still in progress
// when the cancellation lands.
func TestSweepStreamCancelledMidConsumption(t *testing.T) {
	params := ulba.SampleInstances(17, 100)
	s, err := ulba.NewSweep(
		ulba.WithWorkers(2),
		ulba.WithAlphaGrid(5),
		ulba.WithPlanner(ulba.AnnealPlanner{Steps: 2000, Seed: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	for r := range s.Stream(ctx, params) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		delivered++
		cancel()
	}
	if delivered == 0 {
		t.Error("stream closed without delivering the in-flight instances")
	}
	if delivered >= len(params) {
		t.Errorf("stream delivered all %d instances despite cancellation", delivered)
	}
}

func TestSweepStreamIndexesComplete(t *testing.T) {
	params := ulba.SampleInstances(5, 20)
	s, err := ulba.NewSweep(ulba.WithWorkers(4), ulba.WithAlphaGrid(11))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for r := range s.Stream(context.Background(), params) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
	}
	if len(seen) != len(params) {
		t.Errorf("stream delivered %d of %d instances", len(seen), len(params))
	}
}

func TestSweepEmptyInput(t *testing.T) {
	s, err := ulba.NewSweep()
	if err != nil {
		t.Fatal(err)
	}
	sum, comps, err := s.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Instances != 0 || len(comps) != 0 {
		t.Errorf("empty sweep produced %+v", sum)
	}
}
