package ulba_test

import (
	"context"
	"reflect"
	"testing"

	"ulba"
)

// slowSigmaPlanner plans the identical sigma+ schedules as SigmaPlusPlanner
// but, being a distinct (custom) type, forces the Sweep onto the general
// Planner.Plan path: materialize a Schedule per grid alpha and evaluate it
// — the pre-evaluator slow path.
type slowSigmaPlanner struct{}

func (slowSigmaPlanner) Name() string { return "sigma+slow" }

func (slowSigmaPlanner) Plan(p ulba.ModelParams, gamma int) (ulba.Schedule, error) {
	return ulba.SigmaPlusPlanner{}.Plan(p, gamma)
}

// Golden test for the evaluation core: the fast path (incremental
// evaluator, no per-alpha Schedule) must produce a SweepSummary and
// per-instance Comparisons bit-identical to the slow path. Any ulp of
// drift — re-association, fused multiply-add, different tie-breaking in the
// alpha scan — fails this test.
func TestSweepFastPathGoldenVsSlowPath(t *testing.T) {
	params := ulba.SampleInstances(2019, 300)

	run := func(opts ...ulba.Option) (ulba.SweepSummary, []ulba.Comparison) {
		t.Helper()
		s, err := ulba.NewSweep(append([]ulba.Option{ulba.WithAlphaGrid(100), ulba.WithWorkers(4)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		sum, comps, err := s.Run(context.Background(), params)
		if err != nil {
			t.Fatal(err)
		}
		return sum, comps
	}

	fastSum, fastComps := run()
	slowSum, slowComps := run(ulba.WithPlanner(slowSigmaPlanner{}))

	if fastSum != slowSum {
		t.Errorf("SweepSummary differs between fast and slow path:\nfast: %+v\nslow: %+v", fastSum, slowSum)
	}
	for i := range fastComps {
		if fastComps[i] != slowComps[i] {
			t.Fatalf("instance %d differs:\nfast: %+v\nslow: %+v", i, fastComps[i], slowComps[i])
		}
	}

	// An explicit SigmaPlusPlanner dispatches to the same fast path.
	explicitSum, explicitComps := run(ulba.WithPlanner(ulba.SigmaPlusPlanner{}))
	if explicitSum != fastSum || !reflect.DeepEqual(explicitComps, fastComps) {
		t.Error("explicit SigmaPlusPlanner sweep differs from the default fast path")
	}
}

// The explicit sigma+ fast path must validate exactly as loosely as the
// general Plan path: the instance's raw Alpha field is overridden by every
// grid alpha, so an out-of-range value there is not an error on either
// path.
func TestSweepExplicitSigmaPlusIgnoresRawAlpha(t *testing.T) {
	params := ulba.SampleInstances(31, 5)
	for i := range params {
		params[i].Alpha = 1.5 // out of [0,1]; overridden by the grid
	}
	run := func(pl ulba.Planner) ulba.SweepSummary {
		t.Helper()
		s, err := ulba.NewSweep(ulba.WithAlphaGrid(11), ulba.WithPlanner(pl))
		if err != nil {
			t.Fatal(err)
		}
		sum, _, err := s.Run(context.Background(), params)
		if err != nil {
			t.Fatalf("planner %q rejected an instance whose Alpha the grid overrides: %v", pl.Name(), err)
		}
		return sum
	}
	if fast, slow := run(ulba.SigmaPlusPlanner{}), run(slowSigmaPlanner{}); fast != slow {
		t.Errorf("paths disagree on raw-alpha instances:\nfast: %+v\nslow: %+v", fast, slow)
	}
}

// The facade free functions and the fast path share one evaluation core, so
// they must agree exactly, not just within tolerance.
func TestFacadeMatchesEvaluatorExactly(t *testing.T) {
	for i, p := range ulba.SampleInstances(42, 50) {
		pa := p.WithAlpha(0.37)
		if got, want := ulba.ULBATotalTime(p, 0.37), ulba.EvaluateSchedule(pa, ulba.SigmaPlusSchedule(pa)); got != want {
			t.Errorf("instance %d: ULBATotalTime %v != schedule evaluation %v", i, got, want)
		}
	}
}
