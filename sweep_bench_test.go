// Benchmarks of the Sweep evaluation core: the allocation-free incremental
// fast path against the materialize-a-Schedule-per-alpha slow path it
// replaced, and the end-to-end engine throughput. `go test -bench Sweep`
// regenerates the comparison; cmd/ulba-bench records it as BENCH_sweep.json.
package ulba_test

import (
	"context"
	"testing"

	"ulba"
	"ulba/internal/instance"
	"ulba/internal/model"
	"ulba/internal/schedule"
	"ulba/internal/simulate"
)

// slowCompare is the pre-evaluator per-instance comparison: the standard
// method on its materialized Menon schedule, plus a full alpha-grid scan
// that builds and walks a sigma+ Schedule per grid point. Kept as the
// benchmark baseline and as the reference side of the golden tests.
func slowCompare(p model.Params, grid []float64) simulate.Comparison {
	p0 := p.WithAlpha(0)
	std := schedule.TotalTimeStd(p0, schedule.EverySigmaPlus(p0))
	best, bestAlpha := -1.0, 0.0
	for _, a := range grid {
		pa := p.WithAlpha(a)
		t := schedule.TotalTimeULBA(pa, schedule.EverySigmaPlus(pa))
		if best < 0 || t < best {
			best, bestAlpha = t, a
		}
	}
	return simulate.Comparison{
		Params:    p,
		StdTime:   std,
		ULBATime:  best,
		BestAlpha: bestAlpha,
		Gain:      (std - best) / std,
	}
}

// BenchmarkSweepFastPath measures the Sweep fast path's per-instance
// kernel: one Table II instance against the paper's 100-point alpha grid on
// the incremental evaluator. The acceptance bar is ~0 allocs/op and >= 3x
// the slow path's throughput.
func BenchmarkSweepFastPath(b *testing.B) {
	p := instance.NewGenerator(5).Sample()
	grid := simulate.AlphaGrid(100)
	var ev schedule.Evaluator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = simulate.CompareWith(&ev, p, grid)
	}
}

// BenchmarkSweepSlowPath measures the identical comparison the
// pre-evaluator way, for the speedup trajectory.
func BenchmarkSweepSlowPath(b *testing.B) {
	p := instance.NewGenerator(5).Sample()
	grid := simulate.AlphaGrid(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = slowCompare(p, grid)
	}
}

// BenchmarkSweepEngine measures end-to-end Sweep.Run throughput — worker
// pool, streaming, and aggregation included — in instances per second.
func BenchmarkSweepEngine(b *testing.B) {
	params := ulba.SampleInstances(2019, 256)
	s, err := ulba.NewSweep(ulba.WithAlphaGrid(100))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Run(context.Background(), params); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(params))*float64(b.N)/b.Elapsed().Seconds(), "instances/sec")
}

// The benchmark baseline must stay honest: slowCompare and the fast path
// must agree bit for bit (the same contract the golden sweep test pins).
func TestSlowCompareMatchesFastPath(t *testing.T) {
	grid := simulate.AlphaGrid(100)
	for i, p := range ulba.SampleInstances(23, 50) {
		if fast, slow := simulate.Compare(p, grid), slowCompare(p, grid); fast != slow {
			t.Errorf("instance %d: fast %+v != slow %+v", i, fast, slow)
		}
	}
}
