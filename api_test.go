package ulba_test

import (
	"math"
	"testing"

	"ulba"
)

func sampleParams(t *testing.T) ulba.ModelParams {
	t.Helper()
	ps := ulba.SampleInstances(7, 1)
	if len(ps) != 1 {
		t.Fatal("sampling failed")
	}
	return ps[0]
}

func TestFacadeModelRoundTrip(t *testing.T) {
	p := sampleParams(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("sampled instance invalid: %v", err)
	}
	std := ulba.StandardTotalTime(p)
	ul := ulba.ULBATotalTime(p, 0)
	if math.Abs(std-ul) > 1e-9*std {
		t.Errorf("alpha=0 ULBA %v != standard %v", ul, std)
	}
	alpha, best := ulba.BestAlpha(p, 21)
	if best > std*(1+1e-12) {
		t.Errorf("best alpha %v gives %v worse than standard %v", alpha, best, std)
	}
}

func TestFacadeSchedules(t *testing.T) {
	p := sampleParams(t)
	sp := ulba.SigmaPlusSchedule(p)
	if err := sp.Validate(p.Gamma); err != nil {
		t.Fatalf("sigma+ schedule invalid: %v", err)
	}
	menon := ulba.MenonSchedule(p)
	if err := menon.Validate(p.Gamma); err != nil {
		t.Fatalf("Menon schedule invalid: %v", err)
	}
	// Evaluating the sigma+ schedule must match the facade total.
	if got := ulba.EvaluateSchedule(p, sp); math.Abs(got-ulba.ULBATotalTime(p, p.Alpha)) > 1e-9*got {
		t.Errorf("EvaluateSchedule %v != ULBATotalTime %v", got, ulba.ULBATotalTime(p, p.Alpha))
	}
	annealed := ulba.AnnealSchedule(p, 3000, 1)
	if err := annealed.Validate(p.Gamma); err != nil {
		t.Fatalf("annealed schedule invalid: %v", err)
	}
}

func TestFacadeIntervalBounds(t *testing.T) {
	p := sampleParams(t)
	sm, err := p.SigmaMinus(0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.SigmaPlus(0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(sm) >= sp {
		t.Errorf("sigma- %d not below sigma+ %v", sm, sp)
	}
	tau, err := p.WithAlpha(0).MenonTau()
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Errorf("Menon tau = %v", tau)
	}
}

func TestFacadeRunBothMethods(t *testing.T) {
	app := ulba.DefaultAppConfig(8)
	app.StripeWidth = 48
	app.Height = 100
	app.Radius = 12
	cfg := ulba.RunConfig{
		App:             app,
		Iterations:      40,
		Cost:            ulba.DefaultCostModel(),
		Method:          ulba.Standard,
		Alpha:           0.4,
		ZThreshold:      2.0,
		IncludeOverhead: true,
	}
	std, err := ulba.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Method = ulba.ULBA
	ul, err := ulba.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if std.TotalTime <= 0 || ul.TotalTime <= 0 {
		t.Error("runs did not progress")
	}
	if std.Eroded != ul.Eroded {
		t.Errorf("physics differ across methods: %d vs %d", std.Eroded, ul.Eroded)
	}
}

func TestDefaultRunConfigValid(t *testing.T) {
	for _, m := range []ulba.Method{ulba.Standard, ulba.ULBA} {
		cfg := ulba.DefaultRunConfig(16, m).Normalized()
		if err := cfg.Validate(); err != nil {
			t.Errorf("default config for %v invalid: %v", m, err)
		}
	}
}

func TestSampleInstancesCount(t *testing.T) {
	ps := ulba.SampleInstances(3, 25)
	if len(ps) != 25 {
		t.Fatalf("got %d instances", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
