// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations of the design choices called out in
// DESIGN.md. Custom metrics attach the quantities the paper reports (gain
// percentages, LB call counts, usage) to the benchmark output, so
// `go test -bench . -benchmem` regenerates the evaluation at bench scale.
package ulba_test

import (
	"fmt"
	"testing"

	"ulba/internal/experiments"
	"ulba/internal/instance"
	"ulba/internal/lb"
	"ulba/internal/simulate"
	"ulba/internal/stats"
)

// BenchmarkTable1_ModelEvaluation measures one full evaluation of the
// analytic model (Table I quantities: a^, m^, sigma-, sigma+, tau and the
// two total times) on a Table II instance.
func BenchmarkTable1_ModelEvaluation(b *testing.B) {
	p := instance.NewGenerator(1).Sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = p.SigmaMinus(0)
		_, _ = p.SigmaPlus(0)
		_, _ = p.MenonTau()
		_ = simulate.StandardTime(p)
		_ = simulate.ULBATimeAt(p, p.Alpha)
	}
}

// BenchmarkTable2_InstanceSampling measures the Table II generator.
func BenchmarkTable2_InstanceSampling(b *testing.B) {
	g := instance.NewGenerator(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := g.Sample()
		if p.P == 0 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkFig2_UpperBoundVsAnneal runs a reduced Fig. 2 experiment per
// iteration: sigma+ schedules versus simulated annealing on Table II
// instances. The mean gain (paper: -0.83%) is attached as a metric.
func BenchmarkFig2_UpperBoundVsAnneal(b *testing.B) {
	var last simulate.Fig2Result
	for i := 0; i < b.N; i++ {
		last = simulate.RunFig2(simulate.Fig2Config{
			Instances:   5,
			AnnealSteps: 4000,
			Seed:        uint64(i),
		})
	}
	b.ReportMetric(last.Mean*100, "meanGain%")
	b.ReportMetric(last.Worst*100, "worstGain%")
}

// BenchmarkFig3_GainVsOverloadingPct runs a reduced Fig. 3 bucket pair per
// iteration and reports the median gains at 1% and 20% overloading PEs
// (paper: large gains at 1%, small at 20%).
func BenchmarkFig3_GainVsOverloadingPct(b *testing.B) {
	var buckets []simulate.Fig3Bucket
	for i := 0; i < b.N; i++ {
		buckets = simulate.RunFig3(simulate.Fig3Config{
			Buckets:            []float64{0.01, 0.20},
			InstancesPerBucket: 20,
			AlphaGridSize:      21,
			Seed:               uint64(i),
		})
	}
	b.ReportMetric(buckets[0].Gains.Median*100, "gain@1%%")
	b.ReportMetric(buckets[1].Gains.Median*100, "gain@20%%")
	b.ReportMetric(buckets[0].MeanBestAlpha, "alpha@1%")
}

// BenchmarkFig4a_ErosionPerformance runs the erosion application once per
// iteration for every cell of the Fig. 4a grid (method x PEs x strong
// rocks) at bench scale. The LB call count is attached as a metric.
func BenchmarkFig4a_ErosionPerformance(b *testing.B) {
	s := experiments.BenchScale()
	for _, method := range []lb.Method{lb.Standard, lb.ULBA} {
		for _, rocks := range []int{1, 2, 3} {
			for _, p := range []int{16, 32} {
				name := fmt.Sprintf("%s/rocks=%d/P=%d", method, rocks, p)
				b.Run(name, func(b *testing.B) {
					var res lb.Result
					for i := 0; i < b.N; i++ {
						var err error
						res, err = lb.Run(s.LBConfig(p, rocks, 1, method, 0.4))
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(res.LBCount()), "LBcalls")
					b.ReportMetric(res.MeanUsage()*100, "usage%")
					b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
				})
			}
		}
	}
}

// BenchmarkFig4b_UsageTrace runs the standard/ULBA usage-trace pair of
// Fig. 4b and reports the call reduction (paper: 62.5%).
func BenchmarkFig4b_UsageTrace(b *testing.B) {
	s := experiments.BenchScale()
	var r experiments.Fig4bResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig4b(s, 16, 0.4)
	}
	b.ReportMetric(r.CallReduction()*100, "callsAvoided%")
	b.ReportMetric(r.Std.MeanUsage()*100, "stdUsage%")
	b.ReportMetric(r.ULBA.MeanUsage()*100, "ulbaUsage%")
}

// BenchmarkFig5_AlphaSweep runs ULBA at each alpha of the Fig. 5 sweep.
func BenchmarkFig5_AlphaSweep(b *testing.B) {
	s := experiments.BenchScale()
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			var res lb.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = lb.Run(s.LBConfig(16, 1, 1, lb.ULBA, alpha))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
			b.ReportMetric(float64(res.LBCount()), "LBcalls")
		})
	}
}

// Ablation benches: design choices DESIGN.md calls out.

// BenchmarkAblation_Trigger compares the adaptive degradation trigger
// against periodic and static baselines under the standard method.
func BenchmarkAblation_Trigger(b *testing.B) {
	s := experiments.BenchScale()
	cases := []struct {
		name string
		mut  func(*lb.Config)
	}{
		{"degradation", func(c *lb.Config) {}},
		{"menon-tau", func(c *lb.Config) { c.Trigger = lb.TriggerMenon }},
		{"periodic=10", func(c *lb.Config) {
			c.Trigger = lb.TriggerPeriodic
			c.PeriodicInterval = 10
			c.WarmupLB = -1
		}},
		{"never", func(c *lb.Config) {
			c.Trigger = lb.TriggerNever
			c.WarmupLB = -1
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var res lb.Result
			for i := 0; i < b.N; i++ {
				cfg := s.LBConfig(16, 1, 1, lb.Standard, 0)
				tc.mut(&cfg)
				var err error
				res, err = lb.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
			b.ReportMetric(float64(res.LBCount()), "LBcalls")
		})
	}
}

// BenchmarkAblation_Partitioner compares the stripe prefix-sum partitioner
// with 1D recursive bisection (standard method).
func BenchmarkAblation_Partitioner(b *testing.B) {
	s := experiments.BenchScale()
	for _, useRCB := range []bool{false, true} {
		name := "stripes"
		if useRCB {
			name = "rcb"
		}
		b.Run(name, func(b *testing.B) {
			var res lb.Result
			for i := 0; i < b.N; i++ {
				cfg := s.LBConfig(16, 1, 1, lb.Standard, 0)
				cfg.UseRCB = useRCB
				var err error
				res, err = lb.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
		})
	}
}

// BenchmarkAblation_OverheadTerm toggles the Eq. 11 overhead term in the
// ULBA trigger threshold (Section III-C versus plain Algorithm 1).
func BenchmarkAblation_OverheadTerm(b *testing.B) {
	s := experiments.BenchScale()
	for _, include := range []bool{true, false} {
		name := "with-overhead"
		if !include {
			name = "without-overhead"
		}
		b.Run(name, func(b *testing.B) {
			var res lb.Result
			for i := 0; i < b.N; i++ {
				cfg := s.LBConfig(16, 1, 1, lb.ULBA, 0.4)
				cfg.IncludeOverhead = include
				var err error
				res, err = lb.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
			b.ReportMetric(float64(res.LBCount()), "LBcalls")
		})
	}
}

// BenchmarkAblation_AdaptiveAlpha compares fixed alpha with the
// adaptive-alpha extension (the paper's future work).
func BenchmarkAblation_AdaptiveAlpha(b *testing.B) {
	s := experiments.BenchScale()
	for _, adaptive := range []bool{false, true} {
		name := "fixed=0.4"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var res lb.Result
			for i := 0; i < b.N; i++ {
				cfg := s.LBConfig(16, 1, 1, lb.ULBA, 0.4)
				cfg.AdaptiveAlpha = adaptive
				var err error
				res, err = lb.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
		})
	}
}

// BenchmarkAblation_ZThreshold sweeps the overload-detection threshold.
func BenchmarkAblation_ZThreshold(b *testing.B) {
	s := experiments.BenchScale()
	for _, z := range []float64{2.0, 3.0, 4.0} {
		b.Run(fmt.Sprintf("z=%.1f", z), func(b *testing.B) {
			var res lb.Result
			for i := 0; i < b.N; i++ {
				cfg := s.LBConfig(16, 1, 1, lb.ULBA, 0.4)
				cfg.ZThreshold = z
				var err error
				res, err = lb.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
			b.ReportMetric(float64(res.LBCount()), "LBcalls")
		})
	}
}

// BenchmarkAblation_OSNoise measures robustness to injected system noise
// (one of the paper's cited sources of imbalance): both methods under
// per-iteration jitter comparable to 20% of an iteration.
func BenchmarkAblation_OSNoise(b *testing.B) {
	s := experiments.BenchScale()
	for _, method := range []lb.Method{lb.Standard, lb.ULBA} {
		b.Run(method.String(), func(b *testing.B) {
			var res lb.Result
			for i := 0; i < b.N; i++ {
				cfg := s.LBConfig(16, 1, 1, method, 0.4)
				cfg.OSNoise = 2e-4
				var err error
				res, err = lb.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalTime*1e3, "virtual_ms")
			b.ReportMetric(res.MeanUsage()*100, "usage%")
		})
	}
}

// BenchmarkAnnealer measures the simulated-annealing schedule search alone.
func BenchmarkAnnealer(b *testing.B) {
	p := instance.NewGenerator(3).Sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = simulate.AnnealSchedule(p, 2000, uint64(i))
	}
}

// BenchmarkScheduleEvaluation measures one Eq. 4 total-time evaluation, the
// inner loop of every synthetic experiment.
func BenchmarkScheduleEvaluation(b *testing.B) {
	p := instance.NewGenerator(4).Sample()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = simulate.ULBATimeAt(p, 0.5)
	}
	_ = sink
}

// BenchmarkBestAlphaGrid measures the 100-alpha scan used per instance in
// the Fig. 3 experiment.
func BenchmarkBestAlphaGrid(b *testing.B) {
	p := instance.NewGenerator(5).Sample()
	grid := simulate.AlphaGrid(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = simulate.BestAlpha(p, grid)
	}
}

// BenchmarkGainStats measures the five-number summarization of a Fig. 3
// bucket.
func BenchmarkGainStats(b *testing.B) {
	rng := stats.NewRNG(6)
	gains := make([]float64, 1000)
	for i := range gains {
		gains[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = stats.Summarize(gains)
	}
}
