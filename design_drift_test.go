package ulba_test

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ulba"
)

// TestDesignTablesMatchRegistries parses the policy tables of DESIGN.md and
// pins their registry-name columns to the live PlannerNames / TriggerNames /
// WorkloadNames output, so the documentation cannot drift from the code: a
// registration without a table row (or a stale row) fails here.
func TestDesignTablesMatchRegistries(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	// Table rows look like: | `SigmaPlusPlanner` | `sigma+` | ... — the
	// implementation type's suffix says which registry the row documents.
	row := regexp.MustCompile("^\\| `([A-Za-z]+)` +\\| `([a-z+]+)` ")
	documented := map[string][]string{}
	for _, line := range strings.Split(string(data), "\n") {
		m := row.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, kind := range []string{"Planner", "Trigger", "Workload"} {
			if strings.HasSuffix(m[1], kind) {
				documented[kind] = append(documented[kind], m[2])
			}
		}
	}
	for kind, registered := range map[string][]string{
		"Planner":  ulba.PlannerNames(),
		"Trigger":  ulba.TriggerNames(),
		"Workload": ulba.WorkloadNames(),
	} {
		docs := append([]string(nil), documented[kind]...)
		sort.Strings(docs)
		if strings.Join(docs, ",") != strings.Join(registered, ",") {
			t.Errorf("%s registry %v does not match the DESIGN.md table %v", kind, registered, docs)
		}
	}
}
