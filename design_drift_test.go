package ulba_test

import (
	"context"
	"os"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ulba"
	"ulba/internal/engine"
	"ulba/internal/server"
)

// TestDesignTablesMatchRegistries parses the policy tables of DESIGN.md and
// pins their registry-name columns to the live PlannerNames / TriggerNames /
// WorkloadNames output, so the documentation cannot drift from the code: a
// registration without a table row (or a stale row) fails here.
func TestDesignTablesMatchRegistries(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	// Table rows look like: | `SigmaPlusPlanner` | `sigma+` | ... — the
	// implementation type's suffix says which registry the row documents.
	row := regexp.MustCompile("^\\| `([A-Za-z]+)` +\\| `([a-z+]+)` ")
	documented := map[string][]string{}
	for _, line := range strings.Split(string(data), "\n") {
		m := row.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, kind := range []string{"Planner", "Trigger", "Workload"} {
			if strings.HasSuffix(m[1], kind) {
				documented[kind] = append(documented[kind], m[2])
			}
		}
	}
	for kind, registered := range map[string][]string{
		"Planner":  ulba.PlannerNames(),
		"Trigger":  ulba.TriggerNames(),
		"Workload": ulba.WorkloadNames(),
	} {
		docs := append([]string(nil), documented[kind]...)
		sort.Strings(docs)
		if strings.Join(docs, ",") != strings.Join(registered, ",") {
			t.Errorf("%s registry %v does not match the DESIGN.md table %v", kind, registered, docs)
		}
	}
}

// TestWorkloadTablePinsParameters parses the workload-registry table of
// DESIGN.md — rows of the form | `TypeWorkload` | `name` | `F1, F2` | ... —
// and checks the parameters column against the exported struct fields of
// the registered implementation, in declaration order. A new workload knob
// (or a renamed one) cannot land without its documentation row following.
func TestWorkloadTablePinsParameters(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\| `([A-Za-z]+Workload)` +\\| `([a-z+]+)` +\\| `([^`]+)` ")
	tabled := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			tabled[m[2]] = m[3]
		}
	}
	for _, name := range ulba.WorkloadNames() {
		params, ok := tabled[name]
		if !ok {
			t.Errorf("DESIGN.md workload table has no parameters row for %q", name)
			continue
		}
		w, err := ulba.NewWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		typ := reflect.TypeOf(w)
		var fields []string
		for i := 0; i < typ.NumField(); i++ {
			if f := typ.Field(i); f.IsExported() {
				fields = append(fields, f.Name)
			}
		}
		if want := strings.Join(fields, ", "); params != want {
			t.Errorf("DESIGN.md parameters for %q are `%s`, struct %s has `%s`", name, params, typ.Name(), want)
		}
	}
}

// TestAPIRegistriesListingMatchesCode pins the GET /v1/registries example
// response in API.md to the live registries: the documented vocabulary of
// planner/trigger/workload names must be exactly what the server serves.
func TestAPIRegistriesListingMatchesCode(t *testing.T) {
	data, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile(`^\s*"(planners|triggers|workloads|engines)": \[([^\]]*)\]`)
	documented := map[string][]string{}
	for _, line := range strings.Split(string(data), "\n") {
		m := row.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range strings.Split(m[2], ",") {
			documented[m[1]] = append(documented[m[1]], strings.Trim(strings.TrimSpace(q), `"`))
		}
	}
	for kind, registered := range map[string][]string{
		"planners":  ulba.PlannerNames(),
		"triggers":  ulba.TriggerNames(),
		"workloads": ulba.WorkloadNames(),
		"engines":   engine.TypeNames(),
	} {
		if !reflect.DeepEqual(documented[kind], registered) {
			t.Errorf("API.md registries example lists %s %v, registry has %v", kind, documented[kind], registered)
		}
	}
}

// TestDesignEngineTableMatchesRegistry pins DESIGN.md's engine table —
// rows of the form | `type` | `POST /endpoint` | ... — to the live engine
// registry: every registered engine needs a row with its exact endpoint,
// and the table may not describe an engine that does not exist. An engine
// registration cannot land without its documentation row following.
func TestDesignEngineTableMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\| `([a-z-]+)` +\\| `POST ([^`]+)` ")
	documented := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			documented[m[1]] = m[2]
		}
	}
	for _, d := range engine.Engines() {
		endpoint, ok := documented[d.Type]
		if !ok {
			t.Errorf("DESIGN.md engine table has no row for registered engine %q", d.Type)
			continue
		}
		if endpoint != d.Endpoint {
			t.Errorf("DESIGN.md engine table maps %q to %q, registry serves it at %q", d.Type, endpoint, d.Endpoint)
		}
		delete(documented, d.Type)
	}
	for stale := range documented {
		t.Errorf("DESIGN.md engine table documents %q, which is not a registered engine", stale)
	}
}

// TestEndpointDocsMatchRoutes pins the HTTP documentation to the routes the
// server actually registers (server.Routes is recorded at registration
// time, so it cannot lie): every registered route must appear as a
// backticked `METHOD /path` row in DESIGN.md's endpoint table and as a
// `## METHOD /path` section heading in API.md, and neither document may
// describe an endpoint that does not exist. Adding or removing a route
// without the docs pass fails here.
func TestEndpointDocsMatchRoutes(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	registered := srv.Routes()
	sort.Strings(registered)

	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\| `((?:GET|POST|PUT|DELETE|PATCH) [^`]+)`")
	var tabled []string
	for _, line := range strings.Split(string(design), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			tabled = append(tabled, m[1])
		}
	}
	sort.Strings(tabled)
	if strings.Join(tabled, "\n") != strings.Join(registered, "\n") {
		t.Errorf("DESIGN.md endpoint table %v does not match the registered routes %v", tabled, registered)
	}

	api, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	headings := map[string]bool{}
	heading := regexp.MustCompile(`^## ((?:GET|POST|PUT|DELETE|PATCH) /\S+)$`)
	for _, line := range strings.Split(string(api), "\n") {
		if m := heading.FindStringSubmatch(line); m != nil {
			headings[m[1]] = true
		}
	}
	for _, route := range registered {
		if !headings[route] {
			t.Errorf("API.md has no `## %s` section for the registered route", route)
		}
		delete(headings, route)
	}
	for stale := range headings {
		t.Errorf("API.md documents %q, which is not a registered route", stale)
	}
}
