package ulba_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ulba"
)

// TestUnknownNamesListRegistrySorted pins the error contract for unknown
// policy names: the message must carry the full registered-name list in
// sorted order, so a typo at any entry point (spec, CLI flag, HTTP
// request) comes back with the valid vocabulary attached.
func TestUnknownNamesListRegistrySorted(t *testing.T) {
	cases := []struct {
		kind    string
		names   []string
		resolve func(name string) error
	}{
		{"workload", ulba.WorkloadNames(), func(n string) error {
			_, err := ulba.WorkloadSpec{Name: n}.Workload()
			return err
		}},
		{"trigger", ulba.TriggerNames(), func(n string) error {
			_, err := ulba.TriggerSpec{Name: n}.Trigger()
			return err
		}},
		{"planner", ulba.PlannerNames(), func(n string) error {
			_, err := ulba.PlannerSpec{Name: n}.Planner()
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			if !sort.StringsAreSorted(c.names) {
				t.Fatalf("%s registry listing not sorted: %v", c.kind, c.names)
			}
			for _, bogus := range []string{"nope", "", "Linear", "wli "} {
				err := c.resolve(bogus)
				if err == nil {
					t.Fatalf("%s name %q resolved", c.kind, bogus)
				}
				want := fmt.Sprintf("unknown %s %q (registered: %v)", c.kind, bogus, c.names)
				if !strings.Contains(err.Error(), want) {
					t.Errorf("%s %q: error %q does not carry the sorted registry %q",
						c.kind, bogus, err.Error(), want)
				}
			}
		})
	}
}

func TestPlannerSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    ulba.PlannerSpec
		want    ulba.Planner // nil means an error is expected
		errPart string
	}{
		{"default sigma+", ulba.PlannerSpec{Name: "sigma+"}, ulba.SigmaPlusPlanner{}, ""},
		{"default menon", ulba.PlannerSpec{Name: "menon"}, ulba.MenonPlanner{}, ""},
		{"periodic default", ulba.PlannerSpec{Name: "periodic"}, ulba.PeriodicPlanner{Every: 10}, ""},
		{"periodic every", ulba.PlannerSpec{Name: "periodic", Every: 7}, ulba.PeriodicPlanner{Every: 7}, ""},
		{"anneal configured", ulba.PlannerSpec{Name: "anneal", AnnealSteps: 500, AnnealSeed: 3},
			ulba.AnnealPlanner{Steps: 500, Seed: 3}, ""},
		{"unknown name", ulba.PlannerSpec{Name: "nope"}, nil, "unknown planner"},
		{"every on sigma+", ulba.PlannerSpec{Name: "sigma+", Every: 5}, nil, "no configuration knobs"},
		{"anneal knobs on periodic", ulba.PlannerSpec{Name: "periodic", AnnealSteps: 5}, nil, "no annealing knobs"},
		{"every on anneal", ulba.PlannerSpec{Name: "anneal", Every: 5}, nil, "no every knob"},
		{"negative every", ulba.PlannerSpec{Name: "periodic", Every: -1}, nil, "every > 0"},
		{"negative anneal steps", ulba.PlannerSpec{Name: "anneal", AnnealSteps: -1}, nil, "anneal_steps > 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.spec.Planner()
			if c.want == nil {
				if err == nil || !strings.Contains(err.Error(), c.errPart) {
					t.Fatalf("err = %v, want mention of %q", err, c.errPart)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("Planner() = %#v, want %#v", got, c.want)
			}
		})
	}
}

func TestTriggerSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    ulba.TriggerSpec
		want    ulba.Trigger
		errPart string
	}{
		{"degradation", ulba.TriggerSpec{Name: "degradation"}, ulba.DegradationTrigger{}, ""},
		{"periodic every", ulba.TriggerSpec{Name: "periodic", Every: 4}, ulba.PeriodicTrigger{Every: 4}, ""},
		{"never", ulba.TriggerSpec{Name: "never"}, ulba.NeverTrigger{}, ""},
		{"wli default", ulba.TriggerSpec{Name: "wli"}, ulba.WLITrigger{Threshold: 0.25}, ""},
		{"wli threshold", ulba.TriggerSpec{Name: "wli", Threshold: 0.4}, ulba.WLITrigger{Threshold: 0.4}, ""},
		{"unknown name", ulba.TriggerSpec{Name: "nope"}, nil, "unknown trigger"},
		{"every on menon", ulba.TriggerSpec{Name: "menon", Every: 4}, nil, "no every knob"},
		{"negative every", ulba.TriggerSpec{Name: "periodic", Every: -2}, nil, "every > 0"},
		{"threshold on periodic", ulba.TriggerSpec{Name: "periodic", Every: 4, Threshold: 0.2}, nil, "no threshold knob"},
		{"every on wli", ulba.TriggerSpec{Name: "wli", Every: 4}, nil, "no every knob"},
		{"negative threshold", ulba.TriggerSpec{Name: "wli", Threshold: -0.5}, nil, "threshold > 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.spec.Trigger()
			if c.want == nil {
				if err == nil || !strings.Contains(err.Error(), c.errPart) {
					t.Fatalf("err = %v, want mention of %q", err, c.errPart)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("Trigger() = %#v, want %#v", got, c.want)
			}
		})
	}
}

func TestWorkloadSpec(t *testing.T) {
	t.Run("seeds every generator", func(t *testing.T) {
		for _, name := range []string{"stationary", "linear", "exponential", "bursty", "outlier"} {
			w, err := ulba.WorkloadSpec{Name: name, Seed: 42}.Workload()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if w.Name() != name {
				t.Errorf("workload %q resolved to %q", name, w.Name())
			}
			// The seed must land: instantiating the seeded and unseeded
			// variants of the same generator must differ somewhere.
			w0, err := ulba.WorkloadSpec{Name: name}.Workload()
			if err != nil {
				t.Fatal(err)
			}
			if w == w0 {
				t.Errorf("workload %q ignored the seed", name)
			}
		}
	})
	t.Run("exemplar knobs", func(t *testing.T) {
		w, err := ulba.WorkloadSpec{Name: "target", Seed: 5, Target: 2.5}.Workload()
		if err != nil {
			t.Fatal(err)
		}
		if got := w.(ulba.TargetImbalanceWorkload); got.Target != 2.5 || got.Seed != 5 {
			t.Errorf("target knobs not applied: %+v", got)
		}
		w, err = ulba.WorkloadSpec{Name: "amr", Levels: 7}.Workload()
		if err != nil {
			t.Fatal(err)
		}
		if got := w.(ulba.AMRWorkload); got.Levels != 7 {
			t.Errorf("levels knob not applied: %+v", got)
		}
		w, err = ulba.WorkloadSpec{Name: "minife", Grid: []int{20, 30, 40}}.Workload()
		if err != nil {
			t.Fatal(err)
		}
		if got := w.(ulba.MiniFEWorkload); got.Nx != 20 || got.Ny != 30 || got.Nz != 40 {
			t.Errorf("grid knob not applied: %+v", got)
		}
	})
	t.Run("inline trace rows", func(t *testing.T) {
		w, err := ulba.WorkloadSpec{Name: "trace", Rows: [][]float64{{1, 2}, {3, 4}}}.Workload()
		if err != nil {
			t.Fatal(err)
		}
		items, weight, err := w.Instantiate(2)
		if err != nil {
			t.Fatal(err)
		}
		if items != 2 || weight(1, 1) != 4 {
			t.Errorf("inline trace not replayed: items=%d w(1,1)=%g", items, weight(1, 1))
		}
	})
	t.Run("errors", func(t *testing.T) {
		cases := []struct {
			name    string
			spec    ulba.WorkloadSpec
			errPart string
		}{
			{"unknown name", ulba.WorkloadSpec{Name: "nope"}, "unknown workload"},
			{"rows on generator", ulba.WorkloadSpec{Name: "linear", Rows: [][]float64{{1}}}, "takes no rows"},
			{"seed on trace", ulba.WorkloadSpec{Name: "trace", Seed: 1}, "no seed knob"},
			{"seed and rows on trace", ulba.WorkloadSpec{Name: "trace", Seed: 1, Rows: [][]float64{{1}}}, "no seed knob"},
			{"target on generator", ulba.WorkloadSpec{Name: "linear", Target: 1.5}, "no target knob"},
			{"levels on generator", ulba.WorkloadSpec{Name: "linear", Levels: 3}, "no levels knob"},
			{"grid on generator", ulba.WorkloadSpec{Name: "linear", Grid: []int{1, 2, 3}}, "no grid knob"},
			{"grid wrong arity", ulba.WorkloadSpec{Name: "minife", Grid: []int{10, 10}}, "[nx, ny, nz]"},
			{"target on amr", ulba.WorkloadSpec{Name: "amr", Target: 1.5}, "no target knob"},
		}
		for _, c := range cases {
			if _, err := c.spec.Workload(); err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.errPart)
			}
		}
	})
}

// TestSummarizeSweepMatchesRun pins the exported aggregation helpers to the
// engines' own summaries.
func TestSummarizeSweepMatchesRun(t *testing.T) {
	sweep, err := ulba.NewSweep(ulba.WithAlphaGrid(11))
	if err != nil {
		t.Fatal(err)
	}
	summary, comps, err := sweep.Run(t.Context(), ulba.SampleInstances(21, 40))
	if err != nil {
		t.Fatal(err)
	}
	if got := ulba.SummarizeSweep(comps); got != summary {
		t.Errorf("SummarizeSweep = %+v, want Run's %+v", got, summary)
	}
	if got := ulba.SummarizeSweep(nil); got.Instances != 0 {
		t.Errorf("SummarizeSweep(nil) = %+v, want zero instances", got)
	}
}
