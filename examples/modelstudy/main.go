// Modelstudy explores the paper's analytic model on a randomly sampled
// Table II instance: it computes the LB-interval bounds (sigma-, sigma+,
// Menon's tau), evaluates the standard method and ULBA across alphas, and
// checks the proposed sigma+ plan against a simulated-annealing search —
// all through the Planner interface, with a Sweep over fresh instances as a
// finale (a one-command tour of the Fig. 2 and Fig. 3 experiments).
//
//	go run ./examples/modelstudy
package main

import (
	"context"
	"fmt"
	"log"

	"ulba"
)

func main() {
	ctx := context.Background()
	p := ulba.SampleInstances(42, 1)[0]
	fmt.Println("sampled Table II instance:")
	fmt.Printf("  %v\n\n", p)

	sm, err := p.SigmaMinus(0)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := p.SigmaPlus(0)
	if err != nil {
		log.Fatal(err)
	}
	tau, err := p.WithAlpha(0).MenonTau()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LB interval bounds after the initial balance:\n")
	fmt.Printf("  sigma- = %4d iterations   (no benefit from balancing before this)\n", sm)
	fmt.Printf("  sigma+ = %7.2f iterations (the paper's proposed LB step)\n", sp)
	fmt.Printf("  tau    = %7.2f iterations (Menon's interval = sigma+ at alpha 0)\n\n", tau)

	std := ulba.StandardTotalTime(p)
	fmt.Printf("standard method total time: %.4f s\n\n", std)

	fmt.Printf("%8s %14s %8s\n", "alpha", "ULBA time [s]", "gain %")
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		t := ulba.ULBATotalTime(p, alpha)
		fmt.Printf("%8.2f %14.4f %+8.2f\n", alpha, t, 100*(std-t)/std)
	}
	bestAlpha, bestTime := ulba.BestAlpha(p, 100)
	fmt.Printf("\nbest of a 100-alpha grid: alpha=%.3f -> %.4f s (gain %+.2f%%)\n",
		bestAlpha, bestTime, 100*(std-bestTime)/std)

	// Validate the sigma+ plan against the heuristic search of Section
	// III-B (simulated annealing over all 2^gamma schedules), both
	// obtained through the planner registry.
	pa := p.WithAlpha(bestAlpha)
	sigmaPlanner, err := ulba.NewPlanner("sigma+")
	if err != nil {
		log.Fatal(err)
	}
	sigmaSched, err := sigmaPlanner.Plan(pa, 0)
	if err != nil {
		log.Fatal(err)
	}
	annealed, err := ulba.AnnealPlanner{Steps: 20000, Seed: 7}.Plan(pa, 0)
	if err != nil {
		log.Fatal(err)
	}
	sigmaTime := ulba.EvaluateSchedule(pa, sigmaSched)
	annealTime := ulba.EvaluateSchedule(pa, annealed)
	fmt.Printf("\nschedule comparison at alpha=%.3f:\n", bestAlpha)
	fmt.Printf("  every sigma+        : %d calls, %.4f s\n", sigmaSched.Count(), sigmaTime)
	fmt.Printf("  simulated annealing : %d calls, %.4f s\n", annealed.Count(), annealTime)
	fmt.Printf("  sigma+ vs annealed  : %+.2f%% (paper Fig. 2: mean -0.83%%)\n",
		100*(annealTime-sigmaTime)/annealTime)

	// Finally, a batch view: sweep 50 fresh instances through the engine
	// behind the Fig. 3 experiment.
	sweep, err := ulba.NewSweep(ulba.WithAlphaGrid(50))
	if err != nil {
		log.Fatal(err)
	}
	sum, _, err := sweep.Run(ctx, ulba.SampleInstances(43, 50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsweep of %d fresh instances: median gain %+.2f%%, mean best alpha %.3f, ULBA wins %d/%d\n",
		sum.Instances, 100*sum.Gains.Median, sum.MeanBestAlpha, sum.ULBAWins, sum.Instances)
}
