// Runtime scenarios: run every registered workload through the runtime
// scenario engine under the paper's adaptive degradation trigger, and — for
// workloads that can describe themselves in the analytic model — under a
// sigma+-planned schedule, reporting each policy against the no-LB baseline
// and the perfect-knowledge lower bound.
//
// This is the scenario-diversity axis in one screen: the same harness
// (trigger, simulated cluster, centralized re-partitioning) exercised on
// stationary, drifting, bursty, heavy-tailed, and recorded-trace loads.
//
//	go run ./examples/runtimescenarios
package main

import (
	"context"
	"fmt"
	"log"

	"ulba"
)

func main() {
	const (
		pes   = 8
		iters = 150
	)
	ctx := context.Background()

	fmt.Printf("runtime scenario engine, %d PEs, %d iterations\n\n", pes, iters)
	fmt.Printf("%-12s %-10s %10s %10s %10s %8s %9s\n",
		"workload", "policy", "total [s]", "no-LB [s]", "perfect", "gain %", "LB calls")

	for _, name := range ulba.WorkloadNames() {
		w, err := ulba.NewWorkload(name)
		if err != nil {
			log.Fatal(err)
		}

		// Reactive: the degradation trigger watches measured iteration
		// times and fires when the accumulated slowdown exceeds the
		// average LB cost.
		exp, err := ulba.NewRuntime(pes,
			ulba.WithWorkload(w),
			ulba.WithIterations(iters),
			ulba.WithWorkers(2), // scenario and its no-LB baseline run concurrently
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := exp.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		printRow(name, "trigger", res)

		// Anticipating: if the workload can express itself as Table I
		// model parameters, plan the whole schedule ahead of time on the
		// model (the paper's sigma+ rule) and replay it at runtime.
		if _, ok := w.(ulba.ModeledWorkload); !ok {
			continue
		}
		planned, err := ulba.NewRuntime(pes,
			ulba.WithWorkload(w),
			ulba.WithIterations(iters),
			ulba.WithPlanner(ulba.SigmaPlusPlanner{}),
			ulba.WithWorkers(2),
		)
		if err != nil {
			log.Fatal(err)
		}
		pres, err := planned.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		printRow(name, "sigma+", pres)
	}
}

func printRow(workload, policy string, r ulba.RuntimeResult) {
	fmt.Printf("%-12s %-10s %10.4f %10.4f %10.4f %+8.2f %9d\n",
		workload, policy, r.Timeline.TotalTime, r.NoLBTime, r.PerfectTime,
		100*r.Gain(), r.Timeline.LBCount())
}
