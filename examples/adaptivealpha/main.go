// Adaptivealpha demonstrates the paper's announced future work, implemented
// here as an extension: choosing alpha at runtime from the estimated
// fraction of overloading PEs instead of fixing it by hand. The adaptive
// policy caps the projected ULBA overhead ratio alpha*N/(P-N) (Eq. 11), so
// alpha is aggressive when few PEs overload and conservative when many do —
// the relationship the paper extracts from Figs. 3 and 5.
//
//	go run ./examples/adaptivealpha
package main

import (
	"context"
	"fmt"
	"log"

	"ulba"
)

func main() {
	const pes = 32
	ctx := context.Background()

	app := ulba.DefaultAppConfig(pes)
	app.StripeWidth = 128
	app.Height = 256
	app.Radius = 32

	// Every policy shares the same instance; only the alpha choice (and,
	// for the reference row, the method) differs.
	run := func(label string, policy ulba.Option, method ulba.Method) {
		exp, err := ulba.New(pes,
			ulba.WithMethod(method),
			ulba.WithApp(app),
			ulba.WithIterations(100),
			policy,
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := exp.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.4f %12.3f %9d\n",
			label, res.TotalTime, res.MeanUsage(), res.LBCount())
	}

	fmt.Printf("erosion application, %d PEs, %d strongly erodible rocks\n\n", pes, app.StrongRocks)
	fmt.Printf("%-22s %12s %12s %9s\n", "policy", "time [s]", "mean usage", "LB calls")

	for _, fixed := range []float64{0.1, 0.4, 0.9} {
		run(fmt.Sprintf("fixed alpha = %.1f", fixed), ulba.WithAlpha(fixed), ulba.ULBA)
	}
	run("adaptive (extension)", ulba.WithAdaptiveAlpha(), ulba.ULBA)
	run("standard (reference)", ulba.WithAlpha(0), ulba.Standard)
}
