// Adaptivealpha demonstrates the paper's announced future work, implemented
// here as an extension: choosing alpha at runtime from the estimated
// fraction of overloading PEs instead of fixing it by hand. The adaptive
// policy caps the projected ULBA overhead ratio alpha*N/(P-N) (Eq. 11), so
// alpha is aggressive when few PEs overload and conservative when many do —
// the relationship the paper extracts from Figs. 3 and 5.
//
//	go run ./examples/adaptivealpha
package main

import (
	"fmt"
	"log"

	"ulba"
)

func main() {
	const pes = 32

	base := ulba.DefaultRunConfig(pes, ulba.ULBA)
	base.App.StripeWidth = 128
	base.App.Height = 256
	base.App.Radius = 32
	base.Iterations = 100

	fmt.Printf("erosion application, %d PEs, %d strongly erodible rocks\n\n", pes, base.App.StrongRocks)
	fmt.Printf("%-22s %12s %12s %9s\n", "policy", "time [s]", "mean usage", "LB calls")

	for _, fixed := range []float64{0.1, 0.4, 0.9} {
		cfg := base
		cfg.Alpha = fixed
		res, err := ulba.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.4f %12.3f %9d\n",
			fmt.Sprintf("fixed alpha = %.1f", fixed), res.TotalTime, res.MeanUsage(), res.LBCount())
	}

	cfg := base
	cfg.AdaptiveAlpha = true
	res, err := ulba.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12.4f %12.3f %9d\n",
		"adaptive (extension)", res.TotalTime, res.MeanUsage(), res.LBCount())

	stdRes, err := ulba.Run(func() ulba.RunConfig {
		c := base
		c.Method = ulba.Standard
		return c
	}())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12.4f %12.3f %9d\n",
		"standard (reference)", stdRes.TotalTime, stdRes.MeanUsage(), stdRes.LBCount())
}
