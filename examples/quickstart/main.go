// Quickstart: run the fluid-with-erosion application under the standard
// load-balancing method and under ULBA on the same instance, and compare
// wall time, PE usage, and the number of LB calls.
//
// The two runs share identical physics (the erosion randomness is a pure
// function of cell coordinates and time), so every difference comes from
// the load-balancing decisions alone.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ulba"
)

func main() {
	const pes = 32

	// One builder call configures the ULBA run; Compare executes it next
	// to the standard-method baseline on the identical instance.
	exp, err := ulba.New(pes,
		ulba.WithMethod(ulba.ULBA),
		ulba.WithAlpha(0.4),
		ulba.WithWorkers(2), // run both methods concurrently
	)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := exp.Compare(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	std, anticipating := cmp.Baseline, cmp.Result

	fmt.Printf("fluid-with-erosion, %d PEs, %d iterations, one strongly erodible rock\n\n",
		pes, exp.Config().Iterations)
	fmt.Printf("%-10s %12s %12s %9s\n", "method", "time [s]", "mean usage", "LB calls")
	fmt.Printf("%-10s %12.4f %12.3f %9d\n", "standard", std.TotalTime, std.MeanUsage(), std.LBCount())
	fmt.Printf("%-10s %12.4f %12.3f %9d\n", "ulba", anticipating.TotalTime, anticipating.MeanUsage(), anticipating.LBCount())

	fmt.Printf("\nULBA gain: %+.2f%% with %d fewer LB calls\n",
		100*cmp.Gain(), std.LBCount()-anticipating.LBCount())
	fmt.Printf("(identical physics: both runs eroded %d cells)\n", std.Eroded)
}
