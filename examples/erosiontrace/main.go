// Erosiontrace reproduces the Fig. 4b experiment as a terminal plot: the
// average-PE-usage traces of the standard method and ULBA on the erosion
// application, with markers at every LB call. ULBA sustains higher usage and
// calls the balancer less often because the PEs feeding on the strongly
// erodible rock were pre-emptively underloaded.
//
//	go run ./examples/erosiontrace
package main

import (
	"fmt"
	"log"

	"ulba"
	"ulba/internal/trace"
)

func main() {
	const pes = 32

	run := func(m ulba.Method) ulba.RunResult {
		cfg := ulba.DefaultRunConfig(pes, m)
		cfg.App.StripeWidth = 192
		cfg.App.Height = 400
		cfg.App.Radius = 48
		cfg.Iterations = 120
		res, err := ulba.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	std := run(ulba.Standard)
	anticipating := run(ulba.ULBA)

	fmt.Printf("average PE usage, %d PEs, 1 strongly erodible rock (cf. paper Fig. 4b)\n\n", pes)
	fmt.Print(trace.UsagePlot(
		fmt.Sprintf("standard: mean usage %.3f, %d LB calls at %v",
			std.MeanUsage(), std.LBCount(), std.LBIters),
		std.Usage, std.LBIters, 100))
	fmt.Println()
	fmt.Print(trace.UsagePlot(
		fmt.Sprintf("ULBA:     mean usage %.3f, %d LB calls at %v",
			anticipating.MeanUsage(), anticipating.LBCount(), anticipating.LBIters),
		anticipating.Usage, anticipating.LBIters, 100))

	saved := 0.0
	if std.LBCount() > 0 {
		saved = 100 * (1 - float64(anticipating.LBCount())/float64(std.LBCount()))
	}
	fmt.Printf("\nULBA avoided %.1f%% of the LB calls (paper: 62.5%%)\n", saved)
	fmt.Printf("wall time: standard %.4f s, ULBA %.4f s (gain %+.2f%%)\n",
		std.TotalTime, anticipating.TotalTime,
		100*(std.TotalTime-anticipating.TotalTime)/std.TotalTime)
}
