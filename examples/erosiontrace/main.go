// Erosiontrace reproduces the Fig. 4b experiment as a terminal plot: the
// average-PE-usage traces of the standard method and ULBA on the erosion
// application, with markers at every LB call. ULBA sustains higher usage and
// calls the balancer less often because the PEs feeding on the strongly
// erodible rock were pre-emptively underloaded.
//
//	go run ./examples/erosiontrace
package main

import (
	"context"
	"fmt"
	"log"

	"ulba"
	"ulba/internal/trace"
)

func main() {
	const pes = 32

	app := ulba.DefaultAppConfig(pes)
	app.StripeWidth = 192
	app.Height = 400
	app.Radius = 48

	exp, err := ulba.New(pes,
		ulba.WithMethod(ulba.ULBA),
		ulba.WithApp(app),
		ulba.WithIterations(120),
		ulba.WithTrigger(ulba.DegradationTrigger{}), // the paper's adaptive rule, explicit
		ulba.WithWorkers(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := exp.Compare(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	std, anticipating := cmp.Baseline, cmp.Result

	fmt.Printf("average PE usage, %d PEs, 1 strongly erodible rock (cf. paper Fig. 4b)\n\n", pes)
	fmt.Print(trace.UsagePlot(
		fmt.Sprintf("standard: mean usage %.3f, %d LB calls at %v",
			std.MeanUsage(), std.LBCount(), std.LBIters),
		std.Usage, std.LBIters, 100))
	fmt.Println()
	fmt.Print(trace.UsagePlot(
		fmt.Sprintf("ULBA:     mean usage %.3f, %d LB calls at %v",
			anticipating.MeanUsage(), anticipating.LBCount(), anticipating.LBIters),
		anticipating.Usage, anticipating.LBIters, 100))

	fmt.Printf("\nULBA avoided %.1f%% of the LB calls (paper: 62.5%%)\n", 100*cmp.CallsAvoided())
	fmt.Printf("wall time: standard %.4f s, ULBA %.4f s (gain %+.2f%%)\n",
		std.TotalTime, anticipating.TotalTime, 100*cmp.Gain())
}
