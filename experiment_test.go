package ulba_test

import (
	"context"
	"reflect"
	"testing"

	"ulba"
)

// smallApp shrinks the default instance so runtime tests stay fast.
func smallApp(p int) ulba.AppConfig {
	app := ulba.DefaultAppConfig(p)
	app.StripeWidth = 48
	app.Height = 100
	app.Radius = 12
	return app
}

// The zero-option Experiment must carry exactly the configuration the
// deprecated DefaultRunConfig produced: alpha 0.4, z-threshold 3.0 (after
// normalization), adaptive degradation trigger, overhead term included.
func TestExperimentDefaultsMatchDefaultRunConfig(t *testing.T) {
	e, err := ulba.New(16)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Config()
	want := ulba.DefaultRunConfig(16, ulba.Standard).Normalized()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("defaults diverged:\n got %+v\nwant %+v", got, want)
	}
	if got.Alpha != 0.4 {
		t.Errorf("default alpha = %g, want 0.4", got.Alpha)
	}
	if got.ZThreshold != 3.0 {
		t.Errorf("default z-threshold = %g, want 3.0", got.ZThreshold)
	}
	if got.TriggerFactory != nil || got.Trigger != 0 {
		t.Error("default experiment should use the degradation trigger kind")
	}
	if e.Trigger() != nil || e.PlannedSchedule() != nil {
		t.Error("zero-option experiment should have no explicit policy attached")
	}
}

func TestExperimentEagerValidation(t *testing.T) {
	cases := []struct {
		name string
		p    int
		opts []ulba.Option
	}{
		{"bad PE count", 0, nil},
		{"bad alpha", 8, []ulba.Option{ulba.WithAlpha(1.5)}},
		{"bad iterations", 8, []ulba.Option{ulba.WithIterations(-1)}},
		{"bad z", 8, []ulba.Option{ulba.WithZThreshold(-2)}},
		{"periodic without interval", 8, []ulba.Option{ulba.WithTrigger(ulba.PeriodicTrigger{})}},
		{"planner without model", 8, []ulba.Option{ulba.WithPlanner(ulba.SigmaPlusPlanner{})}},
		{"planner and trigger", 8, []ulba.Option{
			ulba.WithModel(ulba.SampleInstances(1, 1)[0]),
			ulba.WithPlanner(ulba.SigmaPlusPlanner{}),
			ulba.WithTrigger(ulba.DegradationTrigger{}),
		}},
		{"sweep-only option", 8, []ulba.Option{ulba.WithAlphaGrid(10)}},
		{"zero option", 8, []ulba.Option{{}}},
	}
	for _, tc := range cases {
		if _, err := ulba.New(tc.p, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestExperimentRunMatchesDeprecatedRun(t *testing.T) {
	e, err := ulba.New(8,
		ulba.WithMethod(ulba.ULBA),
		ulba.WithApp(smallApp(8)),
		ulba.WithIterations(40),
		ulba.WithZThreshold(2.0),
		ulba.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cfg := ulba.DefaultRunConfig(8, ulba.ULBA)
	cfg.App = smallApp(8)
	cfg.App.Seed = 5
	cfg.Iterations = 40
	cfg.ZThreshold = 2.0
	old, err := ulba.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != old.TotalTime || res.Eroded != old.Eroded || res.LBCount() != old.LBCount() {
		t.Errorf("builder run diverged from deprecated Run: %+v vs %+v", res, old)
	}
}

func TestExperimentRunCancelled(t *testing.T) {
	e, err := ulba.New(8, ulba.WithApp(smallApp(8)), ulba.WithIterations(40))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx); err != context.Canceled {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
}

// A planner-driven experiment replays the planned schedule exactly: one LB
// call per plan entry, regardless of the measured iteration times.
func TestExperimentPlannedSchedule(t *testing.T) {
	mp := ulba.SampleInstances(7, 1)[0]
	e, err := ulba.New(8,
		ulba.WithMethod(ulba.ULBA),
		ulba.WithApp(smallApp(8)),
		ulba.WithIterations(40),
		ulba.WithModel(mp),
		ulba.WithPlanner(ulba.PeriodicPlanner{Every: 9}),
	)
	if err != nil {
		t.Fatal(err)
	}
	planned := e.PlannedSchedule()
	if planned.Count() == 0 {
		t.Fatal("empty planned schedule")
	}
	if err := planned.Validate(40); err != nil {
		t.Fatalf("planned schedule invalid: %v", err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() != planned.Count() {
		t.Errorf("run made %d LB calls, plan has %d", res.LBCount(), planned.Count())
	}
}

// PlannedTotalTime is the evaluator-backed model prediction: it must equal
// evaluating the planned schedule on the model exactly, exist only for
// planner-driven experiments, and for sigma+ match the public facade.
func TestExperimentPlannedTotalTime(t *testing.T) {
	mp := ulba.SampleInstances(9, 1)[0]

	e, err := ulba.New(8, ulba.WithApp(smallApp(8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.PlannedTotalTime(); ok {
		t.Error("trigger-driven experiment reports a planned total time")
	}

	for _, pl := range []ulba.Planner{ulba.SigmaPlusPlanner{}, ulba.PeriodicPlanner{Every: 9}} {
		// ULBA experiment: predicted at the run's alpha (0.55 here), not
		// the model's.
		e, err := ulba.New(8,
			ulba.WithMethod(ulba.ULBA),
			ulba.WithAlpha(0.55),
			ulba.WithApp(smallApp(8)),
			ulba.WithIterations(40),
			ulba.WithModel(mp),
			ulba.WithPlanner(pl),
		)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := e.PlannedTotalTime()
		if !ok {
			t.Fatalf("planner %q: no planned total time", pl.Name())
		}
		mp40 := mp
		mp40.Gamma = 40
		if want := ulba.EvaluateSchedule(mp40.WithAlpha(0.55), e.PlannedSchedule()); got != want {
			t.Errorf("planner %q: PlannedTotalTime %v != schedule evaluation %v", pl.Name(), got, want)
		}

		// Standard-method experiment on the same plan: predicted with
		// Eq. 2, which EvaluateSchedule at alpha = 0 recovers exactly.
		es, err := ulba.New(8,
			ulba.WithApp(smallApp(8)),
			ulba.WithIterations(40),
			ulba.WithModel(mp),
			ulba.WithPlanner(pl),
		)
		if err != nil {
			t.Fatal(err)
		}
		gotStd, ok := es.PlannedTotalTime()
		if !ok {
			t.Fatalf("planner %q: standard experiment has no planned total time", pl.Name())
		}
		if want := ulba.EvaluateSchedule(mp40.WithAlpha(0), es.PlannedSchedule()); gotStd != want {
			t.Errorf("planner %q: standard PlannedTotalTime %v != alpha-0 evaluation %v", pl.Name(), gotStd, want)
		}
	}
}

func TestExperimentTriggerByName(t *testing.T) {
	trig, err := ulba.NewTrigger("never")
	if err != nil {
		t.Fatal(err)
	}
	e, err := ulba.New(8,
		ulba.WithApp(smallApp(8)),
		ulba.WithIterations(30),
		ulba.WithTrigger(trig),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() != 0 {
		t.Errorf("never trigger made %d LB calls", res.LBCount())
	}
}

func TestExperimentCompareWorkersIrrelevant(t *testing.T) {
	build := func(workers int) ulba.MethodComparison {
		e, err := ulba.New(8,
			ulba.WithMethod(ulba.ULBA),
			ulba.WithApp(smallApp(8)),
			ulba.WithIterations(40),
			ulba.WithZThreshold(2.0),
			ulba.WithWorkers(workers),
		)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := e.Compare(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	seq := build(1)
	par := build(4)
	if seq.Baseline.TotalTime != par.Baseline.TotalTime || seq.Result.TotalTime != par.Result.TotalTime {
		t.Error("Compare results depend on the worker count")
	}
	if seq.Baseline.Eroded != seq.Result.Eroded {
		t.Errorf("physics differ across methods: %d vs %d", seq.Baseline.Eroded, seq.Result.Eroded)
	}
	if g := seq.Gain(); g != (seq.Baseline.TotalTime-seq.Result.TotalTime)/seq.Baseline.TotalTime {
		t.Errorf("Gain() = %v inconsistent", g)
	}
}
