// Command ulba-bench runs a pinned sweep workload and records the
// performance trajectory of the evaluation core as BENCH_sweep.json:
// instances per second, nanoseconds and heap allocations per instance on
// the fast path, and the speedup over the materialize-a-Schedule-per-alpha
// slow path. CI runs it in -short mode on every PR and uploads the JSON as
// an artifact, so regressions in the hot path show up as a broken
// trajectory rather than an anecdote.
//
// The output file is a JSON array and every run appends one timestamped
// entry (a legacy single-object file is wrapped on first append), so the
// trajectory accumulates instead of overwriting itself. The workload is
// pinned (seed, instance count, alpha grid), and the summary block of each
// entry is bit-deterministic: any change there means the evaluation
// semantics moved, not just the clock. The tool exits non-zero if the fast
// and slow paths disagree, or if -against finds the deterministic fields
// drifted from a baseline trajectory's latest entry.
//
// Examples:
//
//	ulba-bench                          # full workload, appends to BENCH_sweep.json
//	ulba-bench -short                   # CI-sized workload
//	ulba-bench -instances 5000 -out /tmp/bench.json
//	ulba-bench -short -out /tmp/bench.json -against BENCH_sweep.json
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/jobs"
	"ulba/internal/loadgen"
	"ulba/internal/schedule"
	"ulba/internal/server"
)

// slowSigmaPlanner plans the same sigma+ schedules as the built-in planner
// but through a distinct type, which forces the Sweep onto the general
// Planner.Plan path — the pre-evaluator slow baseline.
type slowSigmaPlanner struct{}

func (slowSigmaPlanner) Name() string { return "sigma+slow" }

func (slowSigmaPlanner) Plan(p ulba.ModelParams, gamma int) (ulba.Schedule, error) {
	return ulba.SigmaPlusPlanner{}.Plan(p, gamma)
}

// summaryRecord is the deterministic part of the trajectory: identical
// whenever the evaluation semantics (not the hardware) are identical.
type summaryRecord struct {
	MedianGain    float64 `json:"median_gain"`
	MeanGain      float64 `json:"mean_gain"`
	MeanBestAlpha float64 `json:"mean_best_alpha"`
	ULBAWins      int     `json:"ulba_wins"`
}

// benchRecord is one BENCH_sweep.json entry.
type benchRecord struct {
	Name      string `json:"name"`
	Timestamp string `json:"timestamp"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Short     bool   `json:"short"`

	Instances int    `json:"instances"`
	AlphaGrid int    `json:"alpha_grid"`
	Workers   int    `json:"workers"`
	Seed      uint64 `json:"seed"`

	FastSeconds       float64 `json:"fast_seconds"`
	InstancesPerSec   float64 `json:"instances_per_sec"`
	NsPerInstance     float64 `json:"ns_per_instance"`
	AllocsPerInstance float64 `json:"allocs_per_instance"`

	SlowSeconds   float64       `json:"slow_seconds,omitempty"`
	SlowNsPerInst float64       `json:"slow_ns_per_instance,omitempty"`
	Speedup       float64       `json:"speedup,omitempty"`
	MeanLBSteps   float64       `json:"mean_lb_steps"`
	Summary       summaryRecord `json:"summary"`

	Runtime *runtimeRecord `json:"runtime,omitempty"`
	Matrix  *matrixRecord  `json:"matrix,omitempty"`
	Server  *serverRecord  `json:"server,omitempty"`
	Jobs    *jobsRecord    `json:"jobs,omitempty"`
	Loadgen *loadgenRecord `json:"loadgen,omitempty"`
}

// matrixRecord is the exemplar-matrix entry of the trajectory: a pinned
// planner x trigger matrix over the exemplar-derived workloads (minife,
// amr, target), each cell run homogeneous and with a heterogeneous speed
// vector. The matrix is fully pinned — it does not scale with -short — so
// its deterministic fields participate in every -against diff: the
// SHA-256 covers the marshaled result of every cell, and any change there
// means the scenario engine's semantics moved.
type matrixRecord struct {
	Cells       int     `json:"cells"`
	Workloads   int     `json:"workloads"`
	Policies    int     `json:"policies"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`

	MeanGain      float64 `json:"mean_gain"`
	MeanWLI       float64 `json:"mean_wli"`
	ResultsSHA256 string  `json:"results_sha256"`
}

// loadgenRecord is the sustained-traffic entry of the trajectory: an
// in-process ulba-serve under cmd/ulba-loadgen's open-loop Poisson ramp
// (internal/loadgen.FindMaxRate). MaxSustainedRPS is the highest offered
// rate the server held with clean responses, bounded shedding, and >= 90%
// completion; the endpoint blocks carry the tail latencies of that stage.
// Everything here is the clock — none of it participates in -against.
type loadgenRecord struct {
	Clients         int     `json:"clients"`
	StageSeconds    float64 `json:"stage_seconds"`
	MaxSustainedRPS float64 `json:"max_sustained_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	Completed       uint64  `json:"completed"`
	Shed            uint64  `json:"shed"`

	Endpoints []loadgen.EndpointReport `json:"endpoints"`
}

// jobsRecord is the async entry of the trajectory: the job subsystem
// (internal/jobs + the /v1/jobs endpoints) under a pinned submission mix
// against a store-backed server, then the same mix resubmitted after a
// simulated restart — measuring both cold job throughput and the
// persistent store's serve-without-recompute rate. ResponseSHA256 hashes
// the first job's result body and must equal the synchronous path's hash
// for the same request family: async results are bit-identical by
// contract.
type jobsRecord struct {
	Jobs            int     `json:"jobs"`
	Distinct        int     `json:"distinct"`
	InstancesPerJob int     `json:"instances_per_job"`
	Seconds         float64 `json:"seconds"`
	JobsPerSec      float64 `json:"jobs_per_sec"`
	EngineRuns      uint64  `json:"engine_runs"`

	// The restart leg: a fresh server over the same store directory,
	// identical submissions. RestartEngineRuns is 0 when persistence works.
	RestartSeconds    float64 `json:"restart_seconds"`
	RestartEngineRuns uint64  `json:"restart_engine_runs"`

	StoreEntries   int    `json:"store_entries"`
	StoreBytes     int64  `json:"store_bytes"`
	ResponseSHA256 string `json:"response_sha256"`
}

// serverRecord is the service-layer entry of the trajectory: the HTTP
// server (internal/server) under a pinned request mix of distinct and
// repeated sweep calls, so both cold-path throughput and the cache's
// hit-serving rate are on the record. ResponseSHA256 hashes the body of
// the first pinned request and is bit-deterministic like the summary
// blocks: any change there means served results moved, not just the clock.
type serverRecord struct {
	Requests          int     `json:"requests"`
	Distinct          int     `json:"distinct"`
	Clients           int     `json:"clients"`
	InstancesPerReq   int     `json:"instances_per_request"`
	Seconds           float64 `json:"seconds"`
	RequestsPerSec    float64 `json:"requests_per_sec"`
	CacheHits         uint64  `json:"cache_hits"`
	CacheMisses       uint64  `json:"cache_misses"`
	SingleFlightJoins uint64  `json:"single_flight_joins"`
	EngineRuns        uint64  `json:"engine_runs"`
	ResponseSHA256    string  `json:"response_sha256"`
}

// runtimeRecord is the runtime-sweep entry of the trajectory: the scenario
// engine running a pinned mix of every registered workload over the
// simulated cluster. The summary block is bit-deterministic like the model
// sweep's; the throughput numbers are the clock.
type runtimeRecord struct {
	Scenarios        int     `json:"scenarios"`
	Workloads        int     `json:"workloads"`
	Seconds          float64 `json:"seconds"`
	ScenariosPerSec  float64 `json:"scenarios_per_sec"`
	AllocsPerInst    float64 `json:"allocs_per_scenario"`
	MedianGain       float64 `json:"median_gain"`
	MeanGain         float64 `json:"mean_gain"`
	MedianEfficiency float64 `json:"median_efficiency"`
	MeanLBCalls      float64 `json:"mean_lb_calls"`
	MeanUsage        float64 `json:"mean_usage"`
	MeanWLI          float64 `json:"mean_wli"`
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, args...)
	os.Exit(1)
}

func main() {
	var (
		instances  = flag.Int("instances", 2000, "number of Table II instances in the pinned workload")
		alphas     = flag.Int("alphas", 100, "alpha grid size (paper: 100)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "sweep workers")
		seed       = flag.Uint64("seed", 2019, "instance-sampling seed (pinned: changing it forks the trajectory)")
		short      = flag.Bool("short", false, "CI-sized workload (200 instances and 12 runtime scenarios unless set explicitly)")
		noSlow     = flag.Bool("noslow", false, "skip the slow-path baseline (no speedup field)")
		scenarios  = flag.Int("runtime-scenarios", 24, "pinned runtime-sweep scenarios (0 skips the runtime entry)")
		matrix     = flag.Bool("matrix", true, "run the pinned planner x trigger matrix over the exemplar workloads")
		serverReqs = flag.Int("server-requests", 64, "pinned HTTP sweep requests against an in-process ulba-serve (0 skips the server entry)")
		jobReqs    = flag.Int("job-requests", 32, "pinned async job submissions against a store-backed ulba-serve (0 skips the jobs entry)")
		lgStage    = flag.Duration("loadgen-stage", 2*time.Second, "measurement window per load-ramp stage (0 skips the loadgen entry)")
		lgClients  = flag.Int("loadgen-clients", 256, "loadgen client pool for the rate ramp")
		against    = flag.String("against", "", "baseline trajectory to diff the deterministic fields of this run against (its latest entry); exit non-zero on drift")
		out        = flag.String("out", "BENCH_sweep.json", "trajectory file to append this run's entry to; - prints the entry to stdout")
	)
	flag.Parse()
	instancesSet, scenariosSet, serverReqsSet, jobReqsSet, lgStageSet, lgClientsSet := false, false, false, false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "instances":
			instancesSet = true
		case "runtime-scenarios":
			scenariosSet = true
		case "server-requests":
			serverReqsSet = true
		case "job-requests":
			jobReqsSet = true
		case "loadgen-stage":
			lgStageSet = true
		case "loadgen-clients":
			lgClientsSet = true
		}
	})
	if *short && !instancesSet {
		*instances = 200
	}
	if *short && !scenariosSet {
		*scenarios = 12
	}
	if *short && !serverReqsSet {
		*serverReqs = 32
	}
	if *short && !jobReqsSet {
		*jobReqs = 16
	}
	if *short && !lgStageSet {
		*lgStage = time.Second
	}
	if *short && !lgClientsSet {
		*lgClients = 64
	}
	if *instances <= 0 {
		fatal(fmt.Sprintf("-instances must be positive, got %d", *instances))
	}
	ctx := context.Background()

	params := ulba.SampleInstances(*seed, *instances)

	fast, err := ulba.NewSweep(ulba.WithAlphaGrid(*alphas), ulba.WithWorkers(*workers))
	if err != nil {
		fatal(err)
	}

	// Warm up once so one-time costs (scheduler, page faults) stay out of
	// the measured run, then measure wall time and heap allocations.
	if _, _, err := fast.Run(ctx, params[:min(len(params), 32)]); err != nil {
		fatal("warmup:", err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fastSum, fastComps, err := fast.Run(ctx, params)
	fastDur := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		fatal("fast sweep:", err)
	}

	rec := benchRecord{
		Name:      "sweep",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Short:     *short,
		Instances: *instances,
		AlphaGrid: *alphas,
		Workers:   *workers,
		Seed:      *seed,

		FastSeconds:       fastDur.Seconds(),
		InstancesPerSec:   float64(len(params)) / fastDur.Seconds(),
		NsPerInstance:     float64(fastDur.Nanoseconds()) / float64(len(params)),
		AllocsPerInstance: float64(after.Mallocs-before.Mallocs) / float64(len(params)),
		Summary: summaryRecord{
			MedianGain:    fastSum.Gains.Median,
			MeanGain:      fastSum.Gains.Mean,
			MeanBestAlpha: fastSum.MeanBestAlpha,
			ULBAWins:      fastSum.ULBAWins,
		},
	}

	// Mean sigma+ schedule length at each instance's best alpha, via the
	// evaluator's scratch buffer (no per-instance schedule allocations).
	var ev schedule.Evaluator
	steps := 0
	for _, c := range fastComps {
		steps += len(ev.SigmaPlus(c.Params.WithAlpha(c.BestAlpha)))
	}
	rec.MeanLBSteps = float64(steps) / float64(len(fastComps))

	if !*noSlow {
		slow, err := ulba.NewSweep(ulba.WithAlphaGrid(*alphas), ulba.WithWorkers(*workers),
			ulba.WithPlanner(slowSigmaPlanner{}))
		if err != nil {
			fatal(err)
		}
		start = time.Now()
		slowSum, _, err := slow.Run(ctx, params)
		slowDur := time.Since(start)
		if err != nil {
			fatal("slow sweep:", err)
		}
		if slowSum != fastSum {
			fatal(fmt.Sprintf("fast and slow paths disagree — evaluator bug:\nfast: %+v\nslow: %+v", fastSum, slowSum))
		}
		rec.SlowSeconds = slowDur.Seconds()
		rec.SlowNsPerInst = float64(slowDur.Nanoseconds()) / float64(len(params))
		rec.Speedup = slowDur.Seconds() / fastDur.Seconds()
	}

	if *scenarios > 0 {
		rt, err := measureRuntimeSweep(ctx, *scenarios, *seed, *workers)
		if err != nil {
			fatal("runtime sweep:", err)
		}
		rec.Runtime = rt
	}

	if *matrix {
		mr, err := measureMatrix(ctx, *seed, *workers)
		if err != nil {
			fatal("matrix:", err)
		}
		rec.Matrix = mr
	}

	if *serverReqs > 0 {
		sr, err := measureServer(*serverReqs, *seed, *workers)
		if err != nil {
			fatal("server:", err)
		}
		rec.Server = sr
	}

	if *jobReqs > 0 {
		jr, err := measureJobs(*jobReqs, *seed)
		if err != nil {
			fatal("jobs:", err)
		}
		rec.Jobs = jr
	}

	if *lgStage > 0 {
		lr, err := measureLoadgen(ctx, *lgClients, *lgStage)
		if err != nil {
			fatal("loadgen:", err)
		}
		rec.Loadgen = lr
	}

	if *against != "" {
		if err := diffAgainst(*against, rec); err != nil {
			fatal("baseline drift:", err)
		}
		fmt.Fprintf(os.Stderr, "deterministic fields match the latest %s entry\n", *against)
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := appendEntry(*out, rec); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "sweep: %d instances x %d alphas, %d workers: %.0f instances/sec, %.0f ns/instance, %.2f allocs/instance",
		rec.Instances, rec.AlphaGrid, rec.Workers, rec.InstancesPerSec, rec.NsPerInstance, rec.AllocsPerInstance)
	if rec.Speedup > 0 {
		fmt.Fprintf(os.Stderr, ", %.1fx over slow path", rec.Speedup)
	}
	fmt.Fprintln(os.Stderr)
	if rec.Runtime != nil {
		fmt.Fprintf(os.Stderr, "runtime: %d scenarios x %d workloads: %.1f scenarios/sec, %.0f allocs/scenario, mean gain %+.2f%%\n",
			rec.Runtime.Scenarios, rec.Runtime.Workloads, rec.Runtime.ScenariosPerSec,
			rec.Runtime.AllocsPerInst, rec.Runtime.MeanGain*100)
	}
	if rec.Matrix != nil {
		fmt.Fprintf(os.Stderr, "matrix: %d cells (%d workloads x %d policies x 2 clusters): %.0f cells/sec, mean gain %+.2f%%, mean WLI %.3f, sha %.12s\n",
			rec.Matrix.Cells, rec.Matrix.Workloads, rec.Matrix.Policies, rec.Matrix.CellsPerSec,
			rec.Matrix.MeanGain*100, rec.Matrix.MeanWLI, rec.Matrix.ResultsSHA256)
	}
	if rec.Server != nil {
		fmt.Fprintf(os.Stderr, "server: %d requests (%d distinct, %d clients): %.0f requests/sec, %d hits + %d joins over %d engine runs\n",
			rec.Server.Requests, rec.Server.Distinct, rec.Server.Clients, rec.Server.RequestsPerSec,
			rec.Server.CacheHits, rec.Server.SingleFlightJoins, rec.Server.EngineRuns)
	}
	if rec.Jobs != nil {
		fmt.Fprintf(os.Stderr, "jobs: %d submissions (%d distinct): %.1f jobs/sec cold (%d engine runs), resubmit after restart %.0f ms (%d engine runs)\n",
			rec.Jobs.Jobs, rec.Jobs.Distinct, rec.Jobs.JobsPerSec, rec.Jobs.EngineRuns,
			rec.Jobs.RestartSeconds*1000, rec.Jobs.RestartEngineRuns)
	}
	if rec.Loadgen != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %d clients, %gs stages: %.0f req/s max sustained (%.0f achieved, %d shed)\n",
			rec.Loadgen.Clients, rec.Loadgen.StageSeconds, rec.Loadgen.MaxSustainedRPS,
			rec.Loadgen.AchievedRPS, rec.Loadgen.Shed)
	}
}

// loadTrajectory reads a trajectory file: a JSON array of entries, or (the
// legacy format) one bare entry object, wrapped into a one-element slice.
// A missing or empty file is an empty trajectory.
func loadTrajectory(path string) ([]json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	data = bytes.TrimSpace(data)
	if len(data) == 0 {
		return nil, nil
	}
	if data[0] == '[' {
		var entries []json.RawMessage
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return entries, nil
	}
	var one json.RawMessage
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return []json.RawMessage{one}, nil
}

// appendEntry appends rec to the trajectory at path, preserving every
// earlier entry (a legacy single-object file becomes the first element).
func appendEntry(path string, rec benchRecord) error {
	entries, err := loadTrajectory(path)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	entries = append(entries, raw)
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// diffAgainst compares this run's deterministic fields against the latest
// entry of a baseline trajectory. Clock-dependent fields never participate;
// workload-shaped fields (the sweep summary, the runtime summary) only
// participate when both runs pinned the same workload, so a -short CI run
// can still diff its response hashes against a full-size committed
// baseline.
func diffAgainst(path string, rec benchRecord) error {
	entries, err := loadTrajectory(path)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s has no entries", path)
	}
	var base benchRecord
	if err := json.Unmarshal(entries[len(entries)-1], &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.Seed != rec.Seed {
		return fmt.Errorf("baseline seed %d != %d — different trajectories", base.Seed, rec.Seed)
	}
	if base.Instances == rec.Instances && base.AlphaGrid == rec.AlphaGrid {
		if base.Summary != rec.Summary {
			return fmt.Errorf("sweep summary moved:\nbaseline: %+v\nthis run: %+v", base.Summary, rec.Summary)
		}
		if base.MeanLBSteps != rec.MeanLBSteps {
			return fmt.Errorf("mean_lb_steps moved: %v -> %v", base.MeanLBSteps, rec.MeanLBSteps)
		}
	}
	if base.Runtime != nil && rec.Runtime != nil && base.Runtime.Scenarios == rec.Runtime.Scenarios {
		checks := []struct {
			name       string
			base, this float64
		}{
			{"runtime median_gain", base.Runtime.MedianGain, rec.Runtime.MedianGain},
			{"runtime mean_gain", base.Runtime.MeanGain, rec.Runtime.MeanGain},
			{"runtime median_efficiency", base.Runtime.MedianEfficiency, rec.Runtime.MedianEfficiency},
			{"runtime mean_lb_calls", base.Runtime.MeanLBCalls, rec.Runtime.MeanLBCalls},
			{"runtime mean_usage", base.Runtime.MeanUsage, rec.Runtime.MeanUsage},
			{"runtime mean_wli", base.Runtime.MeanWLI, rec.Runtime.MeanWLI},
		}
		for _, c := range checks {
			if c.base != c.this {
				return fmt.Errorf("%s moved: %v -> %v", c.name, c.base, c.this)
			}
		}
		// Perf gates on the runtime leg. Throughput is clock-dependent and
		// allocation counts shift with the Go version, so these are wide
		// ratio gates rather than equalities: they only catch a fast path
		// that quietly fell off a cliff (an accidental O(n) regression or a
		// reintroduced per-iteration allocation), not machine-to-machine
		// noise.
		if base.Runtime.AllocsPerInst > 0 && rec.Runtime.AllocsPerInst > base.Runtime.AllocsPerInst*1.5 {
			return fmt.Errorf("runtime allocs_per_scenario regressed: %.0f -> %.0f (limit %.0f)",
				base.Runtime.AllocsPerInst, rec.Runtime.AllocsPerInst, base.Runtime.AllocsPerInst*1.5)
		}
		if base.Runtime.ScenariosPerSec > 0 && rec.Runtime.ScenariosPerSec < base.Runtime.ScenariosPerSec/3 {
			return fmt.Errorf("runtime scenarios_per_sec regressed: %.1f -> %.1f (floor %.1f)",
				base.Runtime.ScenariosPerSec, rec.Runtime.ScenariosPerSec, base.Runtime.ScenariosPerSec/3)
		}
	}
	if base.Matrix != nil && rec.Matrix != nil && base.Matrix.Cells == rec.Matrix.Cells {
		if base.Matrix.ResultsSHA256 != rec.Matrix.ResultsSHA256 {
			return fmt.Errorf("matrix results hash moved: %s -> %s — scenario engine semantics changed",
				base.Matrix.ResultsSHA256, rec.Matrix.ResultsSHA256)
		}
		if base.Matrix.MeanGain != rec.Matrix.MeanGain {
			return fmt.Errorf("matrix mean_gain moved: %v -> %v", base.Matrix.MeanGain, rec.Matrix.MeanGain)
		}
		if base.Matrix.MeanWLI != rec.Matrix.MeanWLI {
			return fmt.Errorf("matrix mean_wli moved: %v -> %v", base.Matrix.MeanWLI, rec.Matrix.MeanWLI)
		}
	}
	if base.Server != nil && rec.Server != nil && base.Server.ResponseSHA256 != rec.Server.ResponseSHA256 {
		return fmt.Errorf("server response hash moved: %s -> %s — served bytes changed",
			base.Server.ResponseSHA256, rec.Server.ResponseSHA256)
	}
	if base.Jobs != nil && rec.Jobs != nil && base.Jobs.ResponseSHA256 != rec.Jobs.ResponseSHA256 {
		return fmt.Errorf("jobs response hash moved: %s -> %s — async results changed",
			base.Jobs.ResponseSHA256, rec.Jobs.ResponseSHA256)
	}
	return nil
}

// measureLoadgen boots an in-process ulba-serve on a real TCP listener and
// ramps cmd/ulba-loadgen's open-loop Poisson arrival process against it
// until the server stops sustaining the rate, recording the highest
// sustained rate and that stage's per-endpoint tail latencies.
func measureLoadgen(ctx context.Context, clients int, stage time.Duration) (*loadgenRecord, error) {
	srv, err := server.New(server.Config{})
	if err != nil {
		return nil, err
	}
	defer srv.Close(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	defer httpSrv.Close()
	go httpSrv.Serve(ln)

	cfg := loadgen.Config{
		Targets: []string{"http://" + ln.Addr().String()},
		Clients: clients,
		Warmup:  stage / 4,
		Timeout: 30 * time.Second,
	}
	rate, rep, err := loadgen.FindMaxRate(ctx, cfg, 50, stage, 0.01)
	if err != nil {
		return nil, err
	}
	return &loadgenRecord{
		Clients:         rep.Clients,
		StageSeconds:    stage.Seconds(),
		MaxSustainedRPS: rate,
		AchievedRPS:     rep.AchievedRPS,
		Completed:       rep.Completed,
		Shed:            rep.Shed,
		Endpoints:       rep.Endpoints,
	}, nil
}

// measureJobs drives the asynchronous surface end to end over a real TCP
// listener: a pinned mix of sweep job submissions (distinct bodies cycled,
// so dedup matters) against a store-backed server, polled to completion;
// then a fresh server over the same store directory replays the identical
// submissions — the restart leg, which persistence must serve with zero
// engine runs. Every repeated body is verified bit-identical before the
// first one's hash goes on the record.
func measureJobs(count int, seed uint64) (*jobsRecord, error) {
	const (
		distinct        = 4
		instancesPerJob = 200
	)
	dir, err := os.MkdirTemp("", "ulba-bench-jobs")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	body := func(i int) string {
		return fmt.Sprintf(`{"type":"sweep","request":{"sample":{"seed":%d,"n":%d},"alpha_grid":50}}`,
			seed+uint64(i%distinct), instancesPerJob)
	}

	// runMix boots a server over dir, submits every job, polls them all to
	// completion, and returns the result bodies with the elapsed time and
	// the engine-run counter.
	runMix := func() (bodies [][]byte, seconds float64, engineRuns uint64, storeEntries int, storeBytes int64, err error) {
		store, err := jobs.Open(dir)
		if err != nil {
			return nil, 0, 0, 0, 0, err
		}
		srv, err := server.New(server.Config{Store: store})
		if err != nil {
			return nil, 0, 0, 0, 0, err
		}
		defer srv.Close(context.Background())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, 0, 0, 0, 0, err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		defer httpSrv.Close()
		go httpSrv.Serve(ln)
		base := "http://" + ln.Addr().String()

		start := time.Now()
		ids := make([]string, count)
		for i := range ids {
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body(i)))
			if err != nil {
				return nil, 0, 0, 0, 0, err
			}
			var st struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil || st.ID == "" {
				return nil, 0, 0, 0, 0, fmt.Errorf("job submission %d: %v", i, err)
			}
			ids[i] = st.ID
		}
		for _, id := range ids {
			for {
				resp, err := http.Get(base + "/v1/jobs/" + id)
				if err != nil {
					return nil, 0, 0, 0, 0, err
				}
				var st struct {
					State string `json:"state"`
					Error string `json:"error"`
				}
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					return nil, 0, 0, 0, 0, err
				}
				if st.State == "done" {
					break
				}
				if st.State == "failed" || st.State == "cancelled" {
					return nil, 0, 0, 0, 0, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		bodies = make([][]byte, count)
		for i, id := range ids {
			resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
			if err != nil {
				return nil, 0, 0, 0, 0, err
			}
			buf, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, 0, 0, 0, 0, err
			}
			if resp.StatusCode != http.StatusOK {
				return nil, 0, 0, 0, 0, fmt.Errorf("job %s result: status %d: %s", id, resp.StatusCode, buf)
			}
			bodies[i] = buf
		}
		seconds = time.Since(start).Seconds()
		stats := srv.Stats()
		storeEntries, storeBytes = 0, 0
		if stats.Store != nil {
			storeEntries, storeBytes = stats.Store.Entries, stats.Store.Bytes
		}
		return bodies, seconds, stats.EngineRuns, storeEntries, storeBytes, nil
	}

	cold, coldSecs, coldRuns, _, _, err := runMix()
	if err != nil {
		return nil, err
	}
	warm, warmSecs, warmRuns, entries, bytesOnDisk, err := runMix()
	if err != nil {
		return nil, err
	}

	// Determinism check across jobs and across the restart: every body of
	// a distinct family must be bit-identical to its first occurrence.
	first := make(map[int][]byte, distinct)
	for i := 0; i < count; i++ {
		d := i % distinct
		if prev, ok := first[d]; !ok {
			first[d] = cold[i]
		} else if !bytes.Equal(prev, cold[i]) {
			return nil, fmt.Errorf("job %d served different bytes than an identical earlier job", i)
		}
		if !bytes.Equal(first[d], warm[i]) {
			return nil, fmt.Errorf("post-restart job %d served different bytes than before the restart", i)
		}
	}

	return &jobsRecord{
		Jobs:              count,
		Distinct:          min(distinct, count),
		InstancesPerJob:   instancesPerJob,
		Seconds:           coldSecs,
		JobsPerSec:        float64(count) / coldSecs,
		EngineRuns:        coldRuns,
		RestartSeconds:    warmSecs,
		RestartEngineRuns: warmRuns,
		StoreEntries:      entries,
		StoreBytes:        bytesOnDisk,
		ResponseSHA256:    fmt.Sprintf("%x", sha256.Sum256(first[0])),
	}, nil
}

// measureServer drives an in-process ulba-serve over a real TCP listener
// with a pinned request mix: `distinct` different sweep bodies cycled by
// concurrent clients, so most requests repeat a body some other client
// computes — the cache-and-dedup regime the service exists for. It records
// throughput, the cache counters, and the SHA-256 of the first body (every
// repetition of a body is verified bit-identical against its first
// occurrence before the hash goes on the record).
func measureServer(requests int, seed uint64, clients int) (*serverRecord, error) {
	const (
		distinct        = 8
		instancesPerReq = 200
	)
	srv, err := server.New(server.Config{})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	defer httpSrv.Close()
	go httpSrv.Serve(ln)
	url := "http://" + ln.Addr().String() + "/v1/sweep"

	body := func(i int) string {
		return fmt.Sprintf(`{"sample":{"seed":%d,"n":%d},"alpha_grid":50}`, seed+uint64(i%distinct), instancesPerReq)
	}
	if clients < 1 {
		clients = 1
	}
	post := func(i int) ([]byte, error) {
		resp, err := http.Post(url, "application/json", strings.NewReader(body(i)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		buf, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, buf)
		}
		return buf, nil
	}

	// Warm nothing: the first round's misses are part of the measurement.
	bodies := make([][]byte, requests)
	errs := make([]error, clients)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				buf, err := post(i)
				if err != nil {
					errs[c] = err
					return
				}
				bodies[i] = buf
			}
		}(c)
	}
	wg.Wait()
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Determinism check: every repetition of a body must be bit-identical
	// to its first occurrence, whether it was computed, joined, or hit.
	first := make(map[int][]byte, distinct)
	for i, buf := range bodies {
		d := i % distinct
		if prev, ok := first[d]; !ok {
			first[d] = buf
		} else if !bytes.Equal(prev, buf) {
			return nil, fmt.Errorf("request %d served different bytes than an identical earlier request", i)
		}
	}

	stats := srv.Stats()
	return &serverRecord{
		Requests:          requests,
		Distinct:          min(distinct, requests),
		Clients:           clients,
		InstancesPerReq:   instancesPerReq,
		Seconds:           dur.Seconds(),
		RequestsPerSec:    float64(requests) / dur.Seconds(),
		CacheHits:         stats.Cache.Hits,
		CacheMisses:       stats.Cache.Misses,
		SingleFlightJoins: stats.Cache.Joins,
		EngineRuns:        stats.EngineRuns,
		ResponseSHA256:    fmt.Sprintf("%x", sha256.Sum256(first[0])),
	}, nil
}

// measureMatrix runs the pinned exemplar matrix: every combination of
// workload in {minife, amr, target}, policy in {degradation, wli,
// periodic triggers; sigma+, periodic planners}, and cluster in
// {homogeneous, heterogeneous [1, 2.5, 1, 4]}. Cell order is fixed, so
// the SHA-256 over the marshaled results pins every timeline bit.
func measureMatrix(ctx context.Context, seed uint64, workers int) (*matrixRecord, error) {
	workloads := []ulba.WorkloadSpec{
		{Name: "minife", Seed: seed},
		{Name: "amr", Seed: seed},
		{Name: "target", Seed: seed, Target: 2},
	}
	policies := []struct {
		trigger *ulba.TriggerSpec
		planner *ulba.PlannerSpec
	}{
		{trigger: &ulba.TriggerSpec{Name: "degradation"}},
		{trigger: &ulba.TriggerSpec{Name: "wli", Threshold: 0.2}},
		{trigger: &ulba.TriggerSpec{Name: "periodic", Every: 8}},
		{planner: &ulba.PlannerSpec{Name: "sigma+"}},
		{planner: &ulba.PlannerSpec{Name: "periodic", Every: 10}},
	}
	speedSets := [][]float64{nil, {1, 2.5, 1, 4}}

	exps := make([]*ulba.RuntimeExperiment, 0, len(workloads)*len(policies)*len(speedSets))
	for _, ws := range workloads {
		w, err := ws.Workload()
		if err != nil {
			return nil, err
		}
		for _, pol := range policies {
			for _, speeds := range speedSets {
				opts := []ulba.Option{
					ulba.WithWorkload(w), ulba.WithIterations(60), ulba.WithWorkers(1),
				}
				if speeds != nil {
					opts = append(opts, ulba.WithSpeeds(speeds))
				}
				if pol.trigger != nil {
					t, err := pol.trigger.Trigger()
					if err != nil {
						return nil, err
					}
					opts = append(opts, ulba.WithTrigger(t))
				}
				if pol.planner != nil {
					pl, err := pol.planner.Planner()
					if err != nil {
						return nil, err
					}
					opts = append(opts, ulba.WithPlanner(pl))
				}
				exp, err := ulba.NewRuntime(4, opts...)
				if err != nil {
					return nil, fmt.Errorf("%s cell: %w", ws.Name, err)
				}
				exps = append(exps, exp)
			}
		}
	}

	sweep, err := ulba.NewRuntimeSweep(ulba.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sum, results, err := sweep.Run(ctx, exps)
	dur := time.Since(start)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(results)
	if err != nil {
		return nil, err
	}
	return &matrixRecord{
		Cells:         len(exps),
		Workloads:     len(workloads),
		Policies:      len(policies),
		Seconds:       dur.Seconds(),
		CellsPerSec:   float64(len(exps)) / dur.Seconds(),
		MeanGain:      sum.Gains.Mean,
		MeanWLI:       sum.MeanWLI,
		ResultsSHA256: fmt.Sprintf("%x", sha256.Sum256(raw)),
	}, nil
}

// measureRuntimeSweep runs the pinned runtime-scenario mix through the
// RuntimeSweep engine and records its throughput and deterministic summary.
// The scenario set is a pure function of the seed and the registered
// workload names, so the summary block is part of the bit-deterministic
// trajectory.
func measureRuntimeSweep(ctx context.Context, n int, seed uint64, workers int) (*runtimeRecord, error) {
	exps, scens, err := cli.BuildScenarios(seed, n)
	if err != nil {
		return nil, err
	}
	distinct := make(map[string]bool, len(scens))
	for _, sc := range scens {
		distinct[sc.Workload] = true
	}
	sweep, err := ulba.NewRuntimeSweep(ulba.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	// Warm up on a prefix, then measure wall time and heap allocations.
	if _, _, err := sweep.Run(ctx, exps[:min(len(exps), 4)]); err != nil {
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	sum, _, err := sweep.Run(ctx, exps)
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, err
	}
	return &runtimeRecord{
		Scenarios:        n,
		Workloads:        len(distinct),
		Seconds:          dur.Seconds(),
		ScenariosPerSec:  float64(n) / dur.Seconds(),
		AllocsPerInst:    float64(after.Mallocs-before.Mallocs) / float64(n),
		MedianGain:       sum.Gains.Median,
		MeanGain:         sum.Gains.Mean,
		MedianEfficiency: sum.Efficiencies.Median,
		MeanLBCalls:      sum.MeanLBCalls,
		MeanUsage:        sum.MeanUsage,
		MeanWLI:          sum.MeanWLI,
	}, nil
}
