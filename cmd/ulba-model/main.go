// Command ulba-model evaluates the paper's analytic application model for a
// given parameter set: the LB interval bounds sigma- and sigma+, Menon's
// tau, the LB schedules built by a registry-selected planner, and the
// resulting total parallel times of the standard method and ULBA.
//
// The planner is selected by registry name (see ulba.PlannerNames):
// sigma+ (default), menon, periodic, anneal.
//
// Example:
//
//	ulba-model -P 256 -N 25 -gamma 100 -w0 2.56e11 -growth 0.1 -skew 0.9 \
//	           -alpha 0.5 -costfrac 0.5 -planner anneal
package main

import (
	"flag"
	"fmt"
	"os"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/experiments"
	"ulba/internal/trace"
)

func main() {
	var (
		p           = flag.Int("P", 256, "number of PEs")
		n           = flag.Int("N", 25, "number of overloading PEs")
		gamma       = flag.Int("gamma", 100, "iterations")
		w0          = flag.Float64("w0", 2.56e11, "initial total workload (FLOP)")
		growth      = flag.Float64("growth", 0.1, "workload growth per iteration as a fraction of W0/P")
		skew        = flag.Float64("skew", 0.9, "fraction y of the growth concentrated on overloading PEs")
		alpha       = flag.Float64("alpha", 0.5, "ULBA underloading fraction")
		omega       = flag.Float64("omega", 1e9, "PE speed (FLOP/s)")
		costfrac    = flag.Float64("costfrac", 0.5, "LB cost as a fraction of one iteration's compute time")
		grid        = flag.Int("bestalpha", 0, "if > 0, also scan this many alphas for the best one")
		plannerName = flag.String("planner", "sigma+", fmt.Sprintf("LB schedule planner for the ULBA side, one of %v", ulba.PlannerNames()))
		period      = flag.Int("period", 10, "interval for -planner periodic")
		annealSteps = flag.Int("annealsteps", 20000, "proposals for -planner anneal")
		seed        = flag.Uint64("seed", 7, "seed for -planner anneal")
		table1      = flag.Bool("table1", false, "print Table I (parameter glossary) and exit")
	)
	flag.Parse()

	if *table1 {
		fmt.Print(experiments.RenderTable1())
		return
	}

	params := ulba.ModelParams{
		P: *p, N: *n, Gamma: *gamma, W0: *w0, Omega: *omega, Alpha: *alpha,
	}
	params.DeltaW = *growth * params.W0 / float64(params.P)
	params.A = params.DeltaW * (1 - *skew) / float64(params.P)
	if *n > 0 {
		params.M = params.DeltaW * *skew / float64(params.N)
	}
	params.C = *costfrac * params.W0 / (float64(params.P) * params.Omega)
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid parameters:", err)
		os.Exit(1)
	}

	planner, err := ulba.NewPlanner(*plannerName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	planner = cli.ConfigurePlanner(planner, *period, *annealSteps, *seed)

	fmt.Println("parameters:", params)
	fmt.Println()

	tb := trace.NewTable("quantity", "value")
	tb.AddStringRow("a^ (avg WIR)", fmt.Sprintf("%.6g FLOP/iter", params.AHat()))
	tb.AddStringRow("m^ (extra WIR of most loaded)", fmt.Sprintf("%.6g FLOP/iter", params.MHat()))
	if sm, err := params.SigmaMinus(0); err == nil {
		tb.AddStringRow("sigma-(0)", fmt.Sprintf("%d iterations", sm))
	} else {
		tb.AddStringRow("sigma-(0)", err.Error())
	}
	if sp, err := params.SigmaPlus(0); err == nil {
		tb.AddStringRow("sigma+(0)", fmt.Sprintf("%.2f iterations", sp))
	} else {
		tb.AddStringRow("sigma+(0)", err.Error())
	}
	if tau, err := params.WithAlpha(0).MenonTau(); err == nil {
		tb.AddStringRow("Menon tau", fmt.Sprintf("%.2f iterations", tau))
	}
	tb.Render(os.Stdout)
	fmt.Println()

	stdSched, err := ulba.MenonPlanner{}.Plan(params, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "standard planner:", err)
		os.Exit(1)
	}
	ulbaSched, err := planner.Plan(params, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planner:", err)
		os.Exit(1)
	}
	fmt.Printf("standard schedule (%d calls): %v\n", stdSched.Count(), stdSched)
	fmt.Printf("%-8s schedule (%d calls): %v\n", planner.Name(), ulbaSched.Count(), ulbaSched)
	if ivs := ulbaSched.Intervals(); len(ivs) > 0 {
		fmt.Printf("%-8s intervals: %v\n", planner.Name(), ivs)
	}
	fmt.Println()

	std := ulba.StandardTotalTime(params)
	ul := ulba.EvaluateSchedule(params, ulbaSched)
	fmt.Printf("standard method total time: %.6f s\n", std)
	fmt.Printf("ULBA (alpha=%.2f, %s plan) total time: %.6f s  (gain %+.2f%%)\n",
		params.Alpha, planner.Name(), ul, 100*(std-ul)/std)

	if *grid > 0 {
		a, best := ulba.BestAlpha(params, *grid)
		fmt.Printf("best alpha of %d-grid: %.3f -> %.6f s (gain %+.2f%%)\n",
			*grid, a, best, 100*(std-best)/std)
	}
}
