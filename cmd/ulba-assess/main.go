// Command ulba-assess ranks load-balancing criteria — runtime triggers and
// model-planned schedules — against the perfect-knowledge bound over a
// sampled scenario set, after the assessment methodology of
// arXiv:2104.01688: every criterion runs the exact same scenarios, and the
// ranking orders them by mean efficiency (perfect time / achieved time),
// with regret measured against the panel's best.
//
// With no -criteria, the default panel is every registered trigger at its
// registry defaults. A criterion spelled plan:NAME plans the schedule on
// the analytic model with the named planner instead of reacting at runtime.
//
// Examples:
//
//	ulba-assess -n 32
//	ulba-assess -criteria degradation,menon,wli,plan:sigma+
//	ulba-assess -n 64 -workers 8 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/trace"
)

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, args...)
	os.Exit(1)
}

func usageErr(args ...any) {
	fmt.Fprintln(os.Stderr, args...)
	os.Exit(2)
}

func main() {
	var (
		n        = flag.Int("n", 16, "sampled scenarios per criterion")
		seed     = flag.Uint64("seed", 2019, "scenario-sampling seed")
		criteria = flag.String("criteria", "", "comma-separated criteria: trigger names and plan:PLANNER entries (empty: every registered trigger)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel assessment-cell workers")
		list     = flag.Bool("list-criteria", false, "print the default criteria panel and exit")
		jsonOut  = flag.Bool("json", false, "print one JSON object per criterion on stdout")
	)
	flag.Parse()

	if *list {
		for _, c := range ulba.DefaultCriteria() {
			fmt.Println(c.DisplayName())
		}
		return
	}

	panel, err := parseCriteria(*criteria)
	if err != nil {
		usageErr(err)
	}
	scenarios := cli.BuildAssessmentScenarios(*seed, *n)
	a, err := ulba.NewAssessment(panel, scenarios, ulba.WithWorkers(*workers))
	if err != nil {
		usageErr(err)
	}

	start := time.Now()
	summary, _, err := a.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	// Rank by mean efficiency, best first; ties keep declaration order,
	// matching the summary's Best rule.
	ranked := append([]ulba.CriterionScore(nil), summary.Criteria...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].MeanEfficiency > ranked[j].MeanEfficiency
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, row := range ranked {
			if err := enc.Encode(row); err != nil {
				fatal("json:", err)
			}
		}
		fmt.Fprintf(os.Stderr, "assessment: %d criteria x %d scenarios, best %s (%.2fs real)\n",
			len(summary.Criteria), summary.Scenarios, summary.Best, elapsed.Seconds())
		return
	}

	fmt.Printf("Criteria assessment: %d criteria x %d scenarios, %d workers (%.2fs real)\n\n",
		len(summary.Criteria), summary.Scenarios, *workers, elapsed.Seconds())
	tab := trace.NewTable("criterion", "efficiency", "gain", "LB calls", "WLI", "regret")
	for _, row := range ranked {
		tab.AddRow(row.Name,
			fmt.Sprintf("%.1f%%", row.MeanEfficiency*100),
			fmt.Sprintf("%+.2f%%", row.MeanGain*100),
			fmt.Sprintf("%.1f", row.MeanLBCalls),
			fmt.Sprintf("%.3f", row.MeanWLI),
			fmt.Sprintf("%.4f", row.Regret))
	}
	tab.Render(os.Stdout)
	fmt.Printf("\nbest: %s (highest mean efficiency against the perfect-knowledge bound)\n", summary.Best)
}

// parseCriteria turns the -criteria flag into a panel: each entry is a
// registered trigger name, or plan:NAME for a model-planned schedule under
// the named planner. Empty selects the default panel.
func parseCriteria(s string) ([]ulba.Criterion, error) {
	if strings.TrimSpace(s) == "" {
		return ulba.DefaultCriteria(), nil
	}
	var out []ulba.Criterion
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if planner, ok := strings.CutPrefix(name, "plan:"); ok {
			out = append(out, ulba.Criterion{Planner: &ulba.PlannerSpec{Name: planner}})
			continue
		}
		out = append(out, ulba.Criterion{Trigger: &ulba.TriggerSpec{Name: name}})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-criteria %q names no criteria", s)
	}
	return out, nil
}
