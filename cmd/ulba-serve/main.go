// Command ulba-serve exposes the four engines of package ulba — Experiment,
// Sweep, RuntimeExperiment, RuntimeSweep — as an HTTP/JSON service with a
// deterministic, content-addressed result cache, single-flight
// deduplication of concurrent identical requests, an asynchronous job queue
// (POST /v1/jobs: submit now, poll/stream/fetch later), and an optional
// persistent result store that survives restarts (see internal/server and
// API.md for the endpoint reference).
//
//	ulba-serve                         # listen on :8383, results in memory
//	ulba-serve -addr 127.0.0.1:0      # ephemeral port, printed on startup
//	ulba-serve -store-dir /var/lib/ulba   # persist results + job checkpoints
//	curl localhost:8383/v1/registries
//	curl -d '{"sample":{"seed":2019,"n":100}}' localhost:8383/v1/sweep
//	curl -d '{"type":"sweep","request":{"sample":{"seed":2019,"n":100000}}}' \
//	     localhost:8383/v1/jobs        # async: returns a job id immediately
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests and running jobs get -shutdown-timeout to finish
// (their contexts are cancelled when it expires), and the exit is clean.
// With -store-dir, interrupted sweep jobs leave their per-instance
// checkpoints on disk, so resubmitting the identical request after a
// restart resumes instead of recomputing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ulba/internal/cluster"
	"ulba/internal/jobs"
	"ulba/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8383", "listen address (host:port; port 0 picks an ephemeral port)")
		cacheMB         = flag.Int64("cache-mb", 64, "result-cache budget in MiB; 0 disables storage (single-flight dedup stays on)")
		maxConcurrent   = flag.Int("max-concurrent", 0, "max requests running engine work at once; <= 0 selects GOMAXPROCS")
		maxBodyMB       = flag.Int64("max-body-mb", 32, "request-body size limit in MiB")
		storeDir        = flag.String("store-dir", "", "directory for the persistent result store and job checkpoints; empty keeps results in memory only")
		jobWorkers      = flag.Int("job-workers", 0, "max jobs running concurrently; <= 0 selects GOMAXPROCS")
		jobRetention    = flag.Duration("job-retention", time.Hour, "how long finished jobs stay listable; 0 keeps them forever")
		maxInflight     = flag.Int("max-inflight", 0, "admission control: max engine-bound requests admitted at once before shedding with 429 (cache hits bypass); 0 selects 64x -max-concurrent, negative disables")
		maxQueuedJobs   = flag.Int("max-queued-jobs", 256, "admission control: max queued jobs before POST /v1/jobs sheds with 429 (cached submissions bypass); 0 leaves the queue unbounded")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After hint sent with every 429, rounded up to whole seconds")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests and running jobs on SIGINT/SIGTERM")
		peers           = flag.String("peers", "", "comma-separated base URLs of every cluster member including this one (e.g. http://10.0.0.1:8383,http://10.0.0.2:8383); empty serves standalone")
		selfURL         = flag.String("self", "", "this node's base URL as peers reach it; required with -peers")
		replication     = flag.Int("replication", 2, "how many replicas own each result key; clamped to the cluster size")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // Config: negative disables, 0 means default
	}
	retention := *jobRetention
	if retention <= 0 {
		retention = -1 // Config: negative keeps forever, 0 means default
	}
	cfg := server.Config{
		CacheBytes:    cacheBytes,
		MaxConcurrent: *maxConcurrent,
		MaxBodyBytes:  *maxBodyMB << 20,
		JobWorkers:    *jobWorkers,
		JobRetention:  retention,
		MaxInflight:   *maxInflight,
		MaxQueuedJobs: *maxQueuedJobs,
		RetryAfter:    *retryAfter,
	}
	if *storeDir != "" {
		store, err := jobs.Open(*storeDir)
		if err != nil {
			log.Fatalf("ulba-serve: %v", err)
		}
		cfg.Store = store
	}
	if *peers != "" {
		if *selfURL == "" {
			log.Fatalf("ulba-serve: -peers requires -self (this node's URL as peers reach it)")
		}
		cfg.Cluster = &cluster.Options{
			Self:        *selfURL,
			Peers:       strings.Split(*peers, ","),
			Replication: *replication,
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("ulba-serve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ulba-serve: %v", err)
	}
	workers := *maxConcurrent
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The startup line is load-bearing: the CI smoke test and scripted
	// clients parse the address from it (port 0 binds an ephemeral port).
	fmt.Printf("ulba-serve listening on %s (cache %d MiB, %d concurrent engine requests)\n",
		ln.Addr(), *cacheMB, workers)
	if st := srv.Stats().Store; st != nil {
		fmt.Printf("ulba-serve store %s: %d results (%d bytes) on disk, %d warm-loaded into the cache\n",
			*storeDir, st.Entries, st.Bytes, st.Seeded)
	}
	if ns := srv.Stats().Node; ns != nil && ns.Cluster != nil {
		fmt.Printf("ulba-serve cluster node %s: %d members, replication %d\n",
			ns.ID, ns.Cluster.Size, ns.Cluster.Replication)
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("ulba-serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	// One grace period covers both halves of the drain: in-flight HTTP
	// requests first, then running jobs — whose checkpoints are already on
	// disk, so even a forced cancellation loses no completed instance.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	clean := true
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The grace period expired: cancel the stragglers' contexts and
		// close their connections rather than hanging forever.
		httpSrv.Close()
		log.Printf("ulba-serve: forced connection shutdown after %s: %v", *shutdownTimeout, err)
		clean = false
	}
	if err := srv.Close(shutdownCtx); err != nil {
		log.Printf("ulba-serve: forced job shutdown: %v", err)
		clean = false
	}
	if !clean {
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ulba-serve: %v", err)
	}
	fmt.Println("ulba-serve: graceful shutdown complete")
}
