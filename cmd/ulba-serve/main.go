// Command ulba-serve exposes the four engines of package ulba — Experiment,
// Sweep, RuntimeExperiment, RuntimeSweep — as an HTTP/JSON service with a
// deterministic, content-addressed result cache and single-flight
// deduplication of concurrent identical requests (see internal/server and
// API.md for the endpoint reference).
//
//	ulba-serve                         # listen on :8383
//	ulba-serve -addr 127.0.0.1:0      # ephemeral port, printed on startup
//	curl localhost:8383/v1/registries
//	curl -d '{"sample":{"seed":2019,"n":100}}' localhost:8383/v1/sweep
//	curl -d '{"sample":{"seed":1,"n":8},"stream":true}' localhost:8383/v1/runtime-sweep
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests get -shutdown-timeout to finish (their contexts are
// cancelled when it expires), and the exit is clean.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ulba/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8383", "listen address (host:port; port 0 picks an ephemeral port)")
		cacheMB         = flag.Int64("cache-mb", 64, "result-cache budget in MiB; 0 disables storage (single-flight dedup stays on)")
		maxConcurrent   = flag.Int("max-concurrent", 0, "max requests running engine work at once; <= 0 selects GOMAXPROCS")
		maxBodyMB       = flag.Int64("max-body-mb", 32, "request-body size limit in MiB")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // Config: negative disables, 0 means default
	}
	srv := server.New(server.Config{
		CacheBytes:    cacheBytes,
		MaxConcurrent: *maxConcurrent,
		MaxBodyBytes:  *maxBodyMB << 20,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ulba-serve: %v", err)
	}
	workers := *maxConcurrent
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The startup line is load-bearing: the CI smoke test and scripted
	// clients parse the address from it (port 0 binds an ephemeral port).
	fmt.Printf("ulba-serve listening on %s (cache %d MiB, %d concurrent engine requests)\n",
		ln.Addr(), *cacheMB, workers)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("ulba-serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The grace period expired: cancel the stragglers' contexts and
		// close their connections rather than hanging forever.
		httpSrv.Close()
		log.Printf("ulba-serve: forced shutdown after %s: %v", *shutdownTimeout, err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ulba-serve: %v", err)
	}
	fmt.Println("ulba-serve: graceful shutdown complete")
}
