// Command ulba-experiments regenerates every table and figure of the
// paper's evaluation section at a chosen scale and prints them in the order
// they appear in the paper. The output of this command is the source of the
// measured numbers recorded in EXPERIMENTS.md.
//
// The LB policies are selected by registry name: -planner picks the
// schedule planner the Fig. 3 sweep evaluates ULBA on (see
// ulba.PlannerNames), -trigger picks the runtime trigger the Fig. 4
// erosion runs and the -runtime scenarios use (see ulba.TriggerNames),
// and -workload picks the scenario(s) of the -runtime section (see
// ulba.WorkloadNames). With -json, per-instance and per-cell results are
// printed as one JSON object per line on stdout so BENCH_*.json
// trajectories can be collected across runs.
//
// Examples:
//
//	ulba-experiments -all                 # default scale, everything
//	ulba-experiments -fig4a -scale bench  # quick shape check
//	ulba-experiments -fig2 -instances 1000
//	ulba-experiments -fig3 -planner anneal -instances 50 -json
//	ulba-experiments -fig4a -trigger periodic -period 15
//	ulba-experiments -runtime -workload all
//	ulba-experiments -runtime -workload bursty,outlier -trigger menon
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/experiments"
	"ulba/internal/simulate"
)

func main() {
	var (
		all          = flag.Bool("all", false, "run every experiment")
		table1       = flag.Bool("table1", false, "print Table I")
		table2       = flag.Bool("table2", false, "print Table II")
		fig2         = flag.Bool("fig2", false, "run Fig. 2 (sigma+ vs annealing)")
		fig3         = flag.Bool("fig3", false, "run Fig. 3 (gain vs overloading %)")
		fig4a        = flag.Bool("fig4a", false, "run Fig. 4a (erosion performance grid)")
		fig4b        = flag.Bool("fig4b", false, "run Fig. 4b (usage traces)")
		fig5         = flag.Bool("fig5", false, "run Fig. 5 (alpha sweep)")
		runtimeSec   = flag.Bool("runtime", false, "run the runtime scenario section (trigger vs workloads beyond erosion)")
		workload     = flag.String("workload", "all", fmt.Sprintf("workload(s) for -runtime: comma-separated names or \"all\", from %v", ulba.WorkloadNames()))
		runtimePEs   = flag.Int("runtime-pes", 8, "PE count for the runtime scenario section")
		runtimeIter  = flag.Int("runtime-iters", 150, "iterations for the runtime scenario section")
		scaleName    = flag.String("scale", "default", "erosion experiment scale: bench | default | paper")
		instances    = flag.Int("instances", 200, "instances for Fig. 2 / per bucket for Fig. 3 (paper: 1000)")
		alphaGrid    = flag.Int("alphas", 100, "alpha grid size for Fig. 3")
		pes          = flag.String("pes", "16,32,64", "comma-separated PE counts for Fig. 4a/5 (paper: 32,64,128,256)")
		fig4bPE      = flag.Int("fig4b-pes", 32, "PE count for Fig. 4b (paper: 32)")
		alpha        = flag.Float64("alpha", 0.4, "ULBA alpha for Fig. 4 (paper: 0.4)")
		plannerName  = flag.String("planner", "sigma+", fmt.Sprintf("Fig. 3 schedule planner, one of %v", ulba.PlannerNames()))
		trigName     = flag.String("trigger", "degradation", fmt.Sprintf("Fig. 4 runtime trigger, one of %v", ulba.TriggerNames()))
		period       = flag.Int("period", 10, "interval for -planner/-trigger periodic")
		wliThreshold = flag.Float64("wli-threshold", 0, "firing threshold for -trigger wli (0 keeps the default)")
		annealSteps  = flag.Int("annealsteps", 20000, "proposals for -planner anneal and Fig. 2")
		seed         = flag.Uint64("seed", 2019, "seed for the synthetic experiments")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for the synthetic experiments")
		jsonOut      = flag.Bool("json", false, "print one JSON object per instance/cell on stdout (summaries go to stderr)")
	)
	flag.Parse()
	ctx := context.Background()

	if *all {
		*table1, *table2, *fig2, *fig3, *fig4a, *fig4b, *fig5 = true, true, true, true, true, true, true
		*runtimeSec = true
	}
	if !(*table1 || *table2 || *fig2 || *fig3 || *fig4a || *fig4b || *fig5 || *runtimeSec) {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all or individual experiment flags")
		flag.Usage()
		os.Exit(2)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "bench":
		scale = experiments.BenchScale()
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *trigName != "degradation" {
		trig, err := ulba.NewTrigger(*trigName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		trig = cli.ConfigureTrigger(trig, *period, *wliThreshold)
		scale.TriggerFactory = trig.New
		if cli.WarmupDisabled(trig) {
			// No forced warmup call: the static baseline stays LB-free
			// and a replay plan must not be distorted.
			scale.WarmupLB = -1
		}
	}
	planner, err := ulba.NewPlanner(*plannerName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	planner = cli.ConfigurePlanner(planner, *period, *annealSteps, *seed)
	ps, err := parseInts(*pes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -pes:", err)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(v any) {
		if err := enc.Encode(v); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
	}
	out := os.Stdout
	if *jsonOut {
		out = os.Stderr // keep stdout machine-readable
	}
	section := func(name string, run func()) {
		start := time.Now()
		fmt.Fprintf(out, "==== %s ====\n", name)
		run()
		fmt.Fprintf(out, "(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *table1 {
		section("Table I: model parameters", func() {
			fmt.Fprint(out, experiments.RenderTable1())
		})
	}
	if *table2 {
		section("Table II: random application parameter distributions", func() {
			fmt.Fprint(out, experiments.RenderTable2())
		})
	}
	if *fig2 {
		section(fmt.Sprintf("Fig. 2: sigma+ vs simulated annealing (%d instances)", *instances), func() {
			res := simulate.RunFig2(simulate.Fig2Config{
				Instances: *instances, AnnealSteps: *annealSteps, Seed: *seed, Workers: *workers,
			})
			if *jsonOut {
				for i, g := range res.Gains {
					emit(map[string]any{"experiment": "fig2", "instance": i, "gain": g})
				}
			}
			fmt.Fprint(out, experiments.RenderFig2(res))
		})
	}
	if *fig3 {
		section(fmt.Sprintf("Fig. 3: ULBA vs standard on the model (%d instances/bucket, planner %s)",
			*instances, planner.Name()), func() {
			var visit func(frac float64, i int, c ulba.Comparison)
			if *jsonOut {
				visit = func(frac float64, i int, c ulba.Comparison) {
					emit(map[string]any{
						"experiment": "fig3", "planner": planner.Name(), "fraction": frac,
						"instance": i, "std_time": c.StdTime, "ulba_time": c.ULBATime,
						"best_alpha": c.BestAlpha, "gain": c.Gain,
					})
				}
			}
			buckets, err := cli.RunFig3Sweep(ctx, planner, *instances, *alphaGrid, *seed, *workers, visit)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			fmt.Fprint(out, experiments.RenderFig3(buckets))
		})
	}
	if *fig4a {
		section(fmt.Sprintf("Fig. 4a: erosion application, standard vs ULBA (scale %s, trigger %s)",
			*scaleName, *trigName), func() {
			cells := experiments.RunFig4a(scale, ps, []int{1, 2, 3}, *alpha)
			if *jsonOut {
				for _, c := range cells {
					emit(map[string]any{
						"experiment": "fig4a", "trigger": *trigName, "pes": c.P, "rocks": c.Rocks,
						"std_time": c.StdTime, "ulba_time": c.ULBATime,
						"std_calls": c.StdCalls, "ulba_calls": c.ULBACall, "gain": c.Gain,
					})
				}
			}
			fmt.Fprint(out, experiments.RenderFig4a(cells))
		})
	}
	if *fig4b {
		section(fmt.Sprintf("Fig. 4b: PE usage traces, %d PEs, 1 strong rock", *fig4bPE), func() {
			res := experiments.RunFig4b(scale, *fig4bPE, *alpha)
			if *jsonOut {
				emit(map[string]any{
					"experiment": "fig4b", "trigger": *trigName, "pes": *fig4bPE,
					"std_calls": res.Std.LBCount(), "ulba_calls": res.ULBA.LBCount(),
					"calls_avoided": res.CallReduction(),
					"std_usage":     res.Std.MeanUsage(), "ulba_usage": res.ULBA.MeanUsage(),
				})
			}
			fmt.Fprint(out, experiments.RenderFig4b(res, 100))
		})
	}
	if *runtimeSec {
		names := ulba.WorkloadNames()
		if *workload != "all" {
			names = strings.Split(*workload, ",")
		}
		section(fmt.Sprintf("Runtime scenarios: trigger %s over %d workloads (%d PEs, %d iters)",
			*trigName, len(names), *runtimePEs, *runtimeIter), func() {
			tab := experiments.RuntimeScenarioTable()
			for _, name := range names {
				name = strings.TrimSpace(name)
				w, err := ulba.NewWorkload(name)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				w, err = cli.ConfigureWorkload(w, *seed, "")
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				trig, err := ulba.NewTrigger(*trigName)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				exp, err := ulba.NewRuntime(*runtimePEs,
					ulba.WithWorkload(w),
					ulba.WithIterations(*runtimeIter),
					ulba.WithTrigger(cli.ConfigureTrigger(trig, *period, *wliThreshold)))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				res, err := exp.Run(ctx)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if *jsonOut {
					emit(map[string]any{
						"experiment": "runtime", "workload": name, "trigger": *trigName,
						"pes": *runtimePEs, "iters": *runtimeIter,
						"total_time": res.Timeline.TotalTime, "no_lb_time": res.NoLBTime,
						"perfect_time": res.PerfectTime, "gain": res.Gain(),
						"efficiency": res.Efficiency(), "lb_calls": res.Timeline.LBCount(),
					})
				}
				experiments.AddRuntimeScenarioRow(tab, name, res.Timeline,
					res.NoLBTime, res.PerfectTime, res.Gain(), res.Efficiency())
			}
			tab.Render(out)
		})
	}
	if *fig5 {
		section("Fig. 5: ULBA total time vs alpha (1 strong rock)", func() {
			points := experiments.RunFig5(scale, ps, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
			if *jsonOut {
				for _, pt := range points {
					emit(map[string]any{
						"experiment": "fig5", "pes": pt.P, "alpha": pt.Alpha, "time": pt.Time,
					})
				}
			}
			fmt.Fprint(out, experiments.RenderFig5(points))
		})
	}
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
