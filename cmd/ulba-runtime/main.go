// Command ulba-runtime drives the runtime scenario engine: a registered
// workload (see -list-workloads) runs on simulated PEs under a runtime
// trigger or a planner-precomputed schedule, and the measured timeline is
// reported against the no-LB baseline and the perfect-knowledge lower
// bound.
//
// With -json, per-iteration records are printed as one JSON object per
// line on stdout (machine-readable; the summary goes to stderr). With
// -sweep N, N random scenarios are sampled and run through the
// RuntimeSweep engine instead, reporting the aggregate.
//
// Examples:
//
//	ulba-runtime -workload linear -pes 8 -iters 200
//	ulba-runtime -workload bursty -trigger menon
//	ulba-runtime -workload linear -planner sigma+        # plan on the model, replay at runtime
//	ulba-runtime -workload trace -trace-file run.csv
//	ulba-runtime -sweep 32 -workers 4
//	ulba-runtime -list-workloads
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/trace"
)

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, args...)
	os.Exit(1)
}

// usageErr reports a configuration problem (unknown registry name, bad
// flag combination) with exit code 2, matching the other CLIs.
func usageErr(args ...any) {
	fmt.Fprintln(os.Stderr, args...)
	os.Exit(2)
}

func main() {
	var (
		workloadName = flag.String("workload", "linear", fmt.Sprintf("scenario workload, one of %v", ulba.WorkloadNames()))
		list         = flag.Bool("list-workloads", false, "print the registered workloads and exit")
		pes          = flag.Int("pes", 8, "number of simulated PEs")
		iters        = flag.Int("iters", 200, "iterations per scenario")
		trigName     = flag.String("trigger", "degradation", fmt.Sprintf("runtime trigger, one of %v", ulba.TriggerNames()))
		plannerName  = flag.String("planner", "", fmt.Sprintf("plan the LB schedule on the analytic model instead of reacting (one of %v); needs a modeled workload", ulba.PlannerNames()))
		period       = flag.Int("period", 10, "interval for -trigger/-planner periodic")
		wliThreshold = flag.Float64("wli-threshold", 0, "firing threshold for -trigger wli (0 keeps the default)")
		speedsFlag   = flag.String("speeds", "", "comma-separated per-PE speed factors for a heterogeneous cluster, e.g. 1,1,2,4 (empty: homogeneous)")
		annealSteps  = flag.Int("annealsteps", 20000, "proposals for -planner anneal")
		seed         = flag.Uint64("seed", 2019, "workload seed (and scenario-sampling seed for -sweep)")
		traceFile    = flag.String("trace-file", "", "CSV weight matrix for -workload trace (default: the built-in demo trace)")
		sweepN       = flag.Int("sweep", 0, "run N sampled scenarios through the RuntimeSweep engine instead of one")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel scenario workers for -sweep")
		width        = flag.Int("width", 100, "usage plot width in characters")
		jsonOut      = flag.Bool("json", false, "print one JSON object per iteration (or per sweep scenario) on stdout")
	)
	flag.Parse()
	ctx := context.Background()

	if *list {
		for _, n := range ulba.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}
	if *sweepN > 0 {
		// Sweep mode samples its own workload mix under the default
		// trigger; reject per-scenario policy flags instead of silently
		// ignoring them.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workload", "trigger", "planner", "iters", "pes", "trace-file":
				usageErr(fmt.Sprintf("-%s does not apply to -sweep: sweep scenarios are sampled over every registered workload under the default trigger", f.Name))
			}
		})
		runSweep(ctx, *sweepN, *seed, *workers, *jsonOut)
		return
	}

	w, err := ulba.NewWorkload(*workloadName)
	if err != nil {
		usageErr(err)
	}
	w, err = cli.ConfigureWorkload(w, *seed, *traceFile)
	if err != nil {
		usageErr(err)
	}
	opts := []ulba.Option{ulba.WithWorkload(w), ulba.WithIterations(*iters)}
	if *speedsFlag != "" {
		speeds, err := parseSpeeds(*speedsFlag)
		if err != nil {
			usageErr(err)
		}
		opts = append(opts, ulba.WithSpeeds(speeds))
	}
	if *plannerName != "" {
		planner, err := ulba.NewPlanner(*plannerName)
		if err != nil {
			usageErr(err)
		}
		opts = append(opts, ulba.WithPlanner(cli.ConfigurePlanner(planner, *period, *annealSteps, *seed)))
	} else {
		trig, err := ulba.NewTrigger(*trigName)
		if err != nil {
			usageErr(err)
		}
		opts = append(opts, ulba.WithTrigger(cli.ConfigureTrigger(trig, *period, *wliThreshold)))
	}
	exp, err := ulba.NewRuntime(*pes, opts...)
	if err != nil {
		usageErr(err)
	}

	start := time.Now()
	res, err := exp.Run(ctx)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	tl := res.Timeline

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		lb := make(map[int]bool, len(tl.LBIters))
		for _, it := range tl.LBIters {
			lb[it] = true
		}
		for i, t := range tl.IterTimes {
			rec := map[string]any{"iter": i, "time": t, "usage": tl.Usage[i], "wli": tl.WLI[i], "lb": lb[i]}
			if err := enc.Encode(rec); err != nil {
				fatal("json:", err)
			}
		}
		fmt.Fprintf(os.Stderr, "runtime: %s x %d PEs x %d iters: total %.4fs, no-LB %.4fs, perfect %.4fs, gain %+.2f%%, %d LB calls (%.2fs real)\n",
			*workloadName, *pes, *iters, tl.TotalTime, res.NoLBTime, res.PerfectTime,
			res.Gain()*100, tl.LBCount(), elapsed.Seconds())
		return
	}

	policy := "trigger " + *trigName
	if *plannerName != "" {
		policy = fmt.Sprintf("planner %s (%d planned steps)", *plannerName, len(exp.PlannedSchedule()))
	}
	fmt.Printf("Runtime scenario: workload %s, %d PEs, %d iterations, %s (%.2fs real)\n\n",
		*workloadName, *pes, *iters, policy, elapsed.Seconds())
	tab := trace.NewTable("quantity", "value")
	tab.AddRow("total time [s]", tl.TotalTime)
	tab.AddRow("no-LB baseline [s]", res.NoLBTime)
	tab.AddRow("perfect-knowledge bound [s]", res.PerfectTime)
	tab.AddRow("gain over no-LB", fmt.Sprintf("%+.2f%%", res.Gain()*100))
	tab.AddRow("efficiency (perfect/total)", fmt.Sprintf("%.1f%%", res.Efficiency()*100))
	tab.AddRow("LB calls", tl.LBCount())
	tab.AddRow("avg LB cost [s]", tl.AvgLBCost)
	tab.AddRow("mean PE usage", fmt.Sprintf("%.1f%%", tl.MeanUsage()*100))
	tab.AddRow("mean WLI (max-avg)/avg", fmt.Sprintf("%.3f", tl.MeanWLI()))
	tab.Render(os.Stdout)
	fmt.Println()
	fmt.Print(trace.UsagePlot(fmt.Sprintf("%s / %s", *workloadName, policy), tl.Usage, tl.LBIters, *width))
}

// runSweep samples n scenarios over the registered workloads and runs them
// through the RuntimeSweep engine.
func runSweep(ctx context.Context, n int, seed uint64, workers int, jsonOut bool) {
	names := ulba.WorkloadNames()
	exps, scens, err := cli.BuildScenarios(seed, n)
	if err != nil {
		fatal(err)
	}
	sweep, err := ulba.NewRuntimeSweep(ulba.WithWorkers(workers))
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	sum, results, err := sweep.Run(ctx, exps)
	if err != nil {
		fatal("sweep:", err)
	}
	elapsed := time.Since(start)

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for i, r := range results {
			rec := map[string]any{
				"scenario": i, "workload": scens[i].Workload, "pes": scens[i].P,
				"iters": scens[i].Iterations, "total_time": r.Timeline.TotalTime,
				"no_lb_time": r.NoLBTime, "perfect_time": r.PerfectTime,
				"gain": r.Gain(), "efficiency": r.Efficiency(), "lb_calls": r.Timeline.LBCount(),
			}
			if err := enc.Encode(rec); err != nil {
				fatal("json:", err)
			}
		}
		fmt.Fprintf(os.Stderr, "runtime sweep: %d scenarios over %s, %.1f scenarios/sec\n",
			n, strings.Join(names, ","), float64(n)/elapsed.Seconds())
		return
	}
	fmt.Printf("Runtime sweep: %d scenarios over %d workloads, %d workers (%.2fs, %.1f scenarios/sec)\n\n",
		n, len(names), workers, elapsed.Seconds(), float64(n)/elapsed.Seconds())
	tab := trace.NewTable("quantity", "value")
	tab.AddRow("scenarios", sum.Scenarios)
	tab.AddRow("median gain over no-LB", fmt.Sprintf("%+.2f%%", sum.Gains.Median*100))
	tab.AddRow("mean gain over no-LB", fmt.Sprintf("%+.2f%%", sum.Gains.Mean*100))
	tab.AddRow("median efficiency", fmt.Sprintf("%.1f%%", sum.Efficiencies.Median*100))
	tab.AddRow("mean LB calls", sum.MeanLBCalls)
	tab.AddRow("mean PE usage", fmt.Sprintf("%.1f%%", sum.MeanUsage*100))
	tab.AddRow("mean WLI (max-avg)/avg", fmt.Sprintf("%.3f", sum.MeanWLI))
	tab.Render(os.Stdout)
}

// parseSpeeds parses the -speeds flag: comma-separated positive floats, one
// per PE.
func parseSpeeds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	speeds := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-speeds entry %d: %v", i, err)
		}
		speeds[i] = v
	}
	return speeds, nil
}
