// Command ulba-synth runs the paper's synthetic model experiments:
//
//   - Fig. 2: the sigma+ schedule versus a simulated-annealing search over
//     LB schedules, on random Table II instances;
//   - Fig. 3: the theoretical gain of ULBA over the standard method as a
//     function of the percentage of overloading PEs, driven by the public
//     Sweep engine with a registry-selected planner;
//   - Table II: the random-instance distributions.
//
// With -json, per-instance results are printed as one JSON object per line
// (machine-readable; summaries go to stderr), so result trajectories can be
// collected across runs.
//
// Examples:
//
//	ulba-synth -fig2 -instances 1000
//	ulba-synth -fig3 -instances 1000 -alphas 100
//	ulba-synth -fig3 -planner anneal -instances 50 -json
//	ulba-synth -table2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/experiments"
	"ulba/internal/simulate"
)

// fig3Line is the one-line-per-instance JSON record of the Fig. 3 sweep.
// Every numeric field is always emitted: best_alpha == 0 is a legitimate
// value (ULBA degenerates to the standard method) and must not disappear
// from the stream.
type fig3Line struct {
	Experiment string  `json:"experiment"`
	Planner    string  `json:"planner"`
	Fraction   float64 `json:"fraction"` // Fig. 3 bucket: N/P
	Instance   int     `json:"instance"`
	StdTime    float64 `json:"std_time"`
	ULBATime   float64 `json:"ulba_time"`
	BestAlpha  float64 `json:"best_alpha"`
	Gain       float64 `json:"gain"`
}

// fig2Line is the one-line-per-instance JSON record of the Fig. 2
// experiment: the relative gain of the sigma+ schedule over annealing.
type fig2Line struct {
	Experiment string  `json:"experiment"`
	Instance   int     `json:"instance"`
	Gain       float64 `json:"gain"`
}

func emit(enc *json.Encoder, line any) {
	if err := enc.Encode(line); err != nil {
		fmt.Fprintln(os.Stderr, "json:", err)
		os.Exit(1)
	}
}

func main() {
	var (
		fig2        = flag.Bool("fig2", false, "run the Fig. 2 experiment (sigma+ vs simulated annealing)")
		fig3        = flag.Bool("fig3", false, "run the Fig. 3 experiment (gain vs overloading percentage)")
		table2      = flag.Bool("table2", false, "print Table II")
		instances   = flag.Int("instances", 200, "instances per experiment (Fig. 2) or per bucket (Fig. 3); paper: 1000")
		alphas      = flag.Int("alphas", 100, "alpha grid size for Fig. 3")
		steps       = flag.Int("annealsteps", 20000, "simulated annealing steps per instance (Fig. 2, and -planner anneal)")
		plannerName = flag.String("planner", "sigma+", fmt.Sprintf("Fig. 3 schedule planner for the ULBA side, one of %v", ulba.PlannerNames()))
		period      = flag.Int("period", 10, "interval for -planner periodic")
		seed        = flag.Uint64("seed", 2019, "random seed")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		jsonOut     = flag.Bool("json", false, "print one JSON object per instance on stdout (summaries go to stderr)")
	)
	flag.Parse()
	ctx := context.Background()

	if !*fig2 && !*fig3 && !*table2 {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -fig2, -fig3 and/or -table2")
		flag.Usage()
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)

	if *table2 {
		fmt.Println("Table II: random application parameter distributions")
		fmt.Print(experiments.RenderTable2())
		fmt.Println()
	}

	if *fig2 {
		start := time.Now()
		res := simulate.RunFig2(simulate.Fig2Config{
			Instances:   *instances,
			AnnealSteps: *steps,
			Seed:        *seed,
			Workers:     *workers,
		})
		if *jsonOut {
			for i, g := range res.Gains {
				emit(enc, fig2Line{Experiment: "fig2", Instance: i, Gain: g})
			}
			fmt.Fprintf(os.Stderr, "fig2: %d instances, mean gain %+.4f%%, %.1fs\n",
				*instances, res.Mean*100, time.Since(start).Seconds())
		} else {
			fmt.Printf("Fig. 2 (%d instances, %d annealing steps, %.1fs)\n",
				*instances, *steps, time.Since(start).Seconds())
			fmt.Print(experiments.RenderFig2(res))
			fmt.Println()
		}
	}

	if *fig3 {
		planner, err := ulba.NewPlanner(*plannerName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		planner = cli.ConfigurePlanner(planner, *period, *steps, *seed)

		start := time.Now()
		var visit func(frac float64, i int, c ulba.Comparison)
		if *jsonOut {
			visit = func(frac float64, i int, c ulba.Comparison) {
				emit(enc, fig3Line{
					Experiment: "fig3", Planner: planner.Name(), Fraction: frac,
					Instance: i, StdTime: c.StdTime, ULBATime: c.ULBATime,
					BestAlpha: c.BestAlpha, Gain: c.Gain,
				})
			}
		}
		buckets, err := cli.RunFig3Sweep(ctx, planner, *instances, *alphas, *seed, *workers, visit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if *jsonOut {
			fmt.Fprintf(os.Stderr, "fig3: %d buckets x %d instances, planner %s, %.1fs\n",
				len(buckets), *instances, planner.Name(), time.Since(start).Seconds())
		} else {
			fmt.Printf("Fig. 3 (%d instances/bucket, %d-alpha grid, planner %s, %.1fs)\n",
				*instances, *alphas, planner.Name(), time.Since(start).Seconds())
			fmt.Print(experiments.RenderFig3(buckets))
		}
	}
}
