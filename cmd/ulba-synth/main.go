// Command ulba-synth runs the paper's synthetic model experiments:
//
//   - Fig. 2: the sigma+ schedule versus a simulated-annealing search over
//     LB schedules, on random Table II instances;
//   - Fig. 3: the theoretical gain of ULBA over the standard method as a
//     function of the percentage of overloading PEs;
//   - Table II: the random-instance distributions.
//
// Examples:
//
//	ulba-synth -fig2 -instances 1000
//	ulba-synth -fig3 -instances 1000 -alphas 100
//	ulba-synth -table2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ulba/internal/experiments"
	"ulba/internal/simulate"
)

func main() {
	var (
		fig2      = flag.Bool("fig2", false, "run the Fig. 2 experiment (sigma+ vs simulated annealing)")
		fig3      = flag.Bool("fig3", false, "run the Fig. 3 experiment (gain vs overloading percentage)")
		table2    = flag.Bool("table2", false, "print Table II")
		instances = flag.Int("instances", 200, "instances per experiment (Fig. 2) or per bucket (Fig. 3); paper: 1000")
		alphas    = flag.Int("alphas", 100, "alpha grid size for Fig. 3")
		steps     = flag.Int("annealsteps", 20000, "simulated annealing steps per instance (Fig. 2)")
		seed      = flag.Uint64("seed", 2019, "random seed")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
	)
	flag.Parse()

	if !*fig2 && !*fig3 && !*table2 {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -fig2, -fig3 and/or -table2")
		flag.Usage()
		os.Exit(2)
	}

	if *table2 {
		fmt.Println("Table II: random application parameter distributions")
		fmt.Print(experiments.RenderTable2())
		fmt.Println()
	}

	if *fig2 {
		start := time.Now()
		res := simulate.RunFig2(simulate.Fig2Config{
			Instances:   *instances,
			AnnealSteps: *steps,
			Seed:        *seed,
			Workers:     *workers,
		})
		fmt.Printf("Fig. 2 (%d instances, %d annealing steps, %.1fs)\n",
			*instances, *steps, time.Since(start).Seconds())
		fmt.Print(experiments.RenderFig2(res))
		fmt.Println()
	}

	if *fig3 {
		start := time.Now()
		buckets := simulate.RunFig3(simulate.Fig3Config{
			InstancesPerBucket: *instances,
			AlphaGridSize:      *alphas,
			Seed:               *seed,
			Workers:            *workers,
		})
		fmt.Printf("Fig. 3 (%d instances/bucket, %d-alpha grid, %.1fs)\n",
			*instances, *alphas, time.Since(start).Seconds())
		fmt.Print(experiments.RenderFig3(buckets))
	}
}
