// Command ulba-erosion runs the fluid-with-erosion application (Section
// IV-B of the paper) on the simulated distributed-memory runtime under a
// chosen load-balancing method and trigger, and prints the measured
// timings, the LB call history, and a terminal rendering of the PE-usage
// trace. With -compare it runs both the standard method and the configured
// one on the identical instance (the counter-based physics guarantee the
// same erosion either way) and reports the gain.
//
// The trigger is selected by registry name (see ulba.TriggerNames):
// degradation (default), menon, periodic, never.
//
// Examples:
//
//	ulba-erosion -P 32 -rocks 1 -alpha 0.4 -compare
//	ulba-erosion -P 64 -method ulba -iters 200 -csv usage.csv
//	ulba-erosion -P 32 -trigger periodic -period 15
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/experiments"
	"ulba/internal/trace"
)

func main() {
	var (
		p            = flag.Int("P", 32, "number of PEs (= stripes = rocks)")
		rocks        = flag.Int("rocks", 1, "number of strongly erodible rocks")
		alpha        = flag.Float64("alpha", 0.4, "ULBA underloading fraction")
		method       = flag.String("method", "ulba", "lb method: standard | ulba | none")
		trigName     = flag.String("trigger", "degradation", fmt.Sprintf("runtime trigger, one of %v", ulba.TriggerNames()))
		period       = flag.Int("period", 10, "interval for -trigger periodic")
		wliThreshold = flag.Float64("wli-threshold", 0, "firing threshold for -trigger wli (0 keeps the default)")
		iters        = flag.Int("iters", 120, "iterations")
		width        = flag.Int("stripewidth", 192, "columns per initial stripe")
		height       = flag.Int("height", 400, "rows")
		radius       = flag.Int("radius", 48, "rock disc radius (cells)")
		seed         = flag.Uint64("seed", 1, "random seed")
		zthr         = flag.Float64("z", 3.0, "overload z-score threshold")
		compare      = flag.Bool("compare", false, "run standard AND the chosen method, report the gain")
		rcb          = flag.Bool("rcb", false, "use recursive bisection (standard method only)")
		csvPath      = flag.String("csv", "", "write per-iteration time/usage series to this CSV file")
		plotW        = flag.Int("plotwidth", 100, "terminal width of the usage plots")
	)
	flag.Parse()
	ctx := context.Background()

	scale := experiments.DefaultScale()
	scale.StripeWidth = *width
	scale.Height = *height
	scale.Radius = *radius
	scale.Iterations = *iters

	var m ulba.Method
	noLB := false
	switch *method {
	case "standard":
		m = ulba.Standard
	case "ulba":
		m = ulba.ULBA
	case "none":
		m = ulba.Standard
		noLB = true
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	// The -trigger flag drives the configured run (and the -compare
	// baseline); -method none overrides the run's trigger to never but
	// leaves the baseline reactive, so the comparison stays
	// static-vs-standard.
	trig, err := ulba.NewTrigger(*trigName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	trig = cli.ConfigureTrigger(trig, *period, *wliThreshold)
	runTrig := trig
	if noLB {
		runTrig = ulba.NeverTrigger{}
	}

	build := func(m ulba.Method, t ulba.Trigger) *ulba.Experiment {
		exp, err := ulba.New(*p,
			ulba.WithMethod(m),
			ulba.WithAlpha(*alpha),
			ulba.WithApp(scale.App(*p, *rocks, *seed)),
			ulba.WithCostModel(experiments.Cost()),
			ulba.WithIterations(*iters),
			ulba.WithZThreshold(*zthr),
			ulba.WithRCB(*rcb && m == ulba.Standard),
			ulba.WithTrigger(t),
			ulba.WithWorkers(2),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "invalid experiment:", err)
			os.Exit(2)
		}
		return exp
	}
	exp := build(m, runTrig)

	// With -compare, one Compare call yields both runs; otherwise run the
	// configured method alone. A -method none comparison needs its own
	// baseline experiment, since the baseline must keep load balancing.
	var res ulba.RunResult
	var cmp ulba.MethodComparison
	switch {
	case *compare && noLB:
		cmp.Baseline, err = build(ulba.Standard, trig).Run(ctx)
		if err == nil {
			cmp.Result, err = exp.Run(ctx)
		}
		res = cmp.Result
	case *compare:
		cmp, err = exp.Compare(ctx)
		res = cmp.Result
	default:
		res, err = exp.Run(ctx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}

	cfg := exp.Config()
	fmt.Printf("%s (trigger %s): P=%d rocks=%d alpha=%.2f iters=%d domain=%dx%d\n",
		*method, runTrig.Name(), *p, *rocks, *alpha, *iters, cfg.App.Width(), cfg.App.Height)
	fmt.Printf("total time      : %.6f s (virtual)\n", res.TotalTime)
	fmt.Printf("mean PE usage   : %.3f\n", res.MeanUsage())
	fmt.Printf("LB calls        : %d at %v\n", res.LBCount(), res.LBIters)
	fmt.Printf("overloading/call: %v\n", res.LBOverloading)
	fmt.Printf("avg LB cost     : %.6f s\n", res.AvgLBCost)
	fmt.Printf("cells eroded    : %d (final workload %.0f units)\n", res.Eroded, res.FinalWorkload)
	fmt.Println()
	fmt.Print(trace.UsagePlot(*method, res.Usage, res.LBIters, *plotW))

	if *compare {
		std := cmp.Baseline
		fmt.Println()
		fmt.Print(trace.UsagePlot("standard", std.Usage, std.LBIters, *plotW))
		fmt.Printf("\nstandard: %.6f s with %d LB calls\n", std.TotalTime, std.LBCount())
		fmt.Printf("%-8s: %.6f s with %d LB calls\n", *method, cmp.Result.TotalTime, cmp.Result.LBCount())
		fmt.Printf("gain: %+.2f%% (%.1f%% of LB calls avoided)\n", 100*cmp.Gain(), 100*cmp.CallsAvoided())
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func writeCSV(path string, res ulba.RunResult) error {
	tb := trace.NewTable("iteration", "time_s", "usage")
	for i := range res.IterTimes {
		tb.AddStringRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%.9f", res.IterTimes[i]),
			fmt.Sprintf("%.6f", res.Usage[i]),
		)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}
