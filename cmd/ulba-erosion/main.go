// Command ulba-erosion runs the fluid-with-erosion application (Section
// IV-B of the paper) on the simulated distributed-memory runtime under a
// chosen load-balancing method and prints the measured timings, the LB call
// history, and a terminal rendering of the PE-usage trace. With -compare it
// runs both the standard method and ULBA on the identical instance (the
// counter-based physics guarantee the same erosion either way) and reports
// the gain.
//
// Examples:
//
//	ulba-erosion -P 32 -rocks 1 -alpha 0.4 -compare
//	ulba-erosion -P 64 -method ulba -iters 200 -csv usage.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ulba/internal/experiments"
	"ulba/internal/lb"
	"ulba/internal/trace"
)

func main() {
	var (
		p       = flag.Int("P", 32, "number of PEs (= stripes = rocks)")
		rocks   = flag.Int("rocks", 1, "number of strongly erodible rocks")
		alpha   = flag.Float64("alpha", 0.4, "ULBA underloading fraction")
		method  = flag.String("method", "ulba", "lb method: standard | ulba | none")
		iters   = flag.Int("iters", 120, "iterations")
		width   = flag.Int("stripewidth", 192, "columns per initial stripe")
		height  = flag.Int("height", 400, "rows")
		radius  = flag.Int("radius", 48, "rock disc radius (cells)")
		seed    = flag.Uint64("seed", 1, "random seed")
		zthr    = flag.Float64("z", 3.0, "overload z-score threshold")
		compare = flag.Bool("compare", false, "run standard AND the chosen method, report the gain")
		rcb     = flag.Bool("rcb", false, "use recursive bisection (standard method only)")
		csvPath = flag.String("csv", "", "write per-iteration time/usage series to this CSV file")
		plotW   = flag.Int("plotwidth", 100, "terminal width of the usage plots")
	)
	flag.Parse()

	scale := experiments.DefaultScale()
	scale.StripeWidth = *width
	scale.Height = *height
	scale.Radius = *radius
	scale.Iterations = *iters

	build := func(m lb.Method) lb.Config {
		cfg := scale.LBConfig(*p, *rocks, *seed, m, *alpha)
		cfg.ZThreshold = *zthr
		cfg.UseRCB = *rcb && m == lb.Standard
		return cfg
	}

	var m lb.Method
	noLB := false
	switch *method {
	case "standard":
		m = lb.Standard
	case "ulba":
		m = lb.ULBA
	case "none":
		m = lb.Standard
		noLB = true
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	cfg := build(m)
	if noLB {
		cfg.Trigger = lb.TriggerNever
		cfg.WarmupLB = -1
	}
	res, err := lb.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: P=%d rocks=%d alpha=%.2f iters=%d domain=%dx%d\n",
		*method, *p, *rocks, *alpha, *iters, cfg.App.Width(), cfg.App.Height)
	fmt.Printf("total time      : %.6f s (virtual)\n", res.TotalTime)
	fmt.Printf("mean PE usage   : %.3f\n", res.MeanUsage())
	fmt.Printf("LB calls        : %d at %v\n", res.LBCount(), res.LBIters)
	fmt.Printf("overloading/call: %v\n", res.LBOverloading)
	fmt.Printf("avg LB cost     : %.6f s\n", res.AvgLBCost)
	fmt.Printf("cells eroded    : %d (final workload %.0f units)\n", res.Eroded, res.FinalWorkload)
	fmt.Println()
	fmt.Print(trace.UsagePlot(*method, res.Usage, res.LBIters, *plotW))

	if *compare {
		stdRes, err := lb.Run(build(lb.Standard))
		if err != nil {
			fmt.Fprintln(os.Stderr, "standard run failed:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(trace.UsagePlot("standard", stdRes.Usage, stdRes.LBIters, *plotW))
		fmt.Printf("\nstandard: %.6f s with %d LB calls\n", stdRes.TotalTime, stdRes.LBCount())
		fmt.Printf("%-8s: %.6f s with %d LB calls\n", *method, res.TotalTime, res.LBCount())
		fmt.Printf("gain: %+.2f%%\n", 100*(stdRes.TotalTime-res.TotalTime)/stdRes.TotalTime)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func writeCSV(path string, res lb.Result) error {
	tb := trace.NewTable("iteration", "time_s", "usage")
	for i := range res.IterTimes {
		tb.AddStringRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%.9f", res.IterTimes[i]),
			fmt.Sprintf("%.6f", res.Usage[i]),
		)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}
