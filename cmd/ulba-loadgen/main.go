// Command ulba-loadgen drives sustained traffic at one or more ulba-serve
// instances and reports what the servers actually did: an open-loop Poisson
// (or constant-rate, or closed) arrival process over a weighted mix of
// engine requests, thousands of concurrent clients, warmup and measurement
// windows, and a JSON report with per-endpoint p50/p99/p999 latencies,
// status breakdowns, and error rates (see internal/loadgen).
//
//	ulba-loadgen -targets http://localhost:8383 -rate 200 -duration 30s
//	ulba-loadgen -targets http://a:8383,http://b:8383 -clients 2000 \
//	    -arrival poisson -rate 1500 -warmup 5s -duration 60s -out report.json
//	ulba-loadgen -targets http://localhost:8383 -find-max -rate 100
//
// Every response is verified for byte identity: the first 200 body seen for
// a request becomes golden, and any later 200 for the same request must be
// bit-identical — the determinism contract the result cache rests on. With
// -check the exit status enforces a clean run: any transport error, any
// status outside {2xx, 429}, any byte-identity mismatch, or (single target)
// any disagreement between the generator's counts and the server's
// /metrics histograms fails the process.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ulba/internal/loadgen"
)

func main() {
	var (
		targets     = flag.String("targets", "http://localhost:8383", "comma-separated base URLs traffic round-robins over")
		arrival     = flag.String("arrival", loadgen.ArrivalPoisson, "arrival process: poisson, constant, or closed")
		rate        = flag.Float64("rate", 100, "offered arrival rate per second (open-loop modes)")
		clients     = flag.Int("clients", 256, "concurrent client pool; open-loop arrivals finding every client busy are dropped, not delayed")
		warmup      = flag.Duration("warmup", 2*time.Second, "warmup window: requests are issued and verified but excluded from the latency report")
		duration    = flag.Duration("duration", 30*time.Second, "measurement window after warmup")
		maxRequests = flag.Int("max-requests", 0, "stop after this many arrivals instead of after -duration (deterministic accounting mode)")
		seed        = flag.Uint64("seed", 1, "arrival-schedule seed; equal seeds offer equal schedules")
		mixSpec     = flag.String("mix", "", "request mix as endpoint:weight:distinct:size CSV (e.g. sweep:6:8:50,runtime:3:6:30); empty uses the default sweep-heavy blend")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout; 0 disables")
		out         = flag.String("out", "", "write the JSON report here instead of stdout")
		check       = flag.Bool("check", false, "exit non-zero unless the run was clean (only 2xx/429, no transport errors, no byte mismatches) and, with one target, its /metrics histogram counts equal the observed responses")
		findMax     = flag.Bool("find-max", false, "ramp mode: double the rate from -rate until the target stops sustaining it, report the best stage")
		stage       = flag.Duration("stage", 5*time.Second, "measurement window per ramp stage (with -find-max)")
		maxShedFrac = flag.Float64("max-shed-frac", 0.01, "ramp stages shedding more than this fraction of completions do not count as sustained (with -find-max)")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Targets:     splitTargets(*targets),
		Arrival:     *arrival,
		Rate:        *rate,
		Clients:     *clients,
		Warmup:      *warmup,
		Duration:    *duration,
		MaxRequests: *maxRequests,
		Seed:        *seed,
		Timeout:     *timeout,
	}
	if *mixSpec != "" {
		mix, err := parseMix(*mixSpec)
		if err != nil {
			log.Fatalf("ulba-loadgen: %v", err)
		}
		cfg.Mix = mix
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		rep     *loadgen.Report
		maxRate float64
		err     error
	)
	if *findMax {
		maxRate, rep, err = loadgen.FindMaxRate(ctx, cfg, *rate, *stage, *maxShedFrac)
	} else {
		rep, err = loadgen.Run(ctx, cfg)
	}
	if err != nil {
		log.Fatalf("ulba-loadgen: %v", err)
	}

	clean := true
	if err := rep.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "ulba-loadgen: %v\n", err)
		clean = false
	}
	// Cross-check the server's books against ours. Only sound against a
	// single target we were the only client of, so it gates the exit status
	// just in that shape; multi-target runs settle for the local verify.
	if *check && len(cfg.Targets) == 1 {
		if err := crossCheck(ctx, cfg.Targets[0], rep); err != nil {
			fmt.Fprintf(os.Stderr, "ulba-loadgen: %v\n", err)
			clean = false
		}
	}

	report := struct {
		*loadgen.Report
		MaxSustainedRPS float64 `json:"max_sustained_rps,omitempty"`
	}{Report: rep, MaxSustainedRPS: maxRate}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("ulba-loadgen: %v", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatalf("ulba-loadgen: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if *check && !clean {
		os.Exit(1)
	}
}

// splitTargets splits the -targets CSV, trimming blanks and trailing
// slashes so "http://x:1/," round-trips to one usable base URL.
func splitTargets(s string) []string {
	var targets []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimRight(strings.TrimSpace(t), "/")
		if t != "" {
			targets = append(targets, t)
		}
	}
	return targets
}

// parseMix parses the endpoint:weight:distinct:size CSV of -mix. Distinct
// and size may be omitted (":" separators are still required up to the last
// field given): "sweep:4" weights sweeps 4 with defaults for the rest.
func parseMix(spec string) ([]loadgen.MixEntry, error) {
	var mix []loadgen.MixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) > 4 {
			return nil, fmt.Errorf("mix entry %q: want endpoint:weight[:distinct[:size]]", part)
		}
		e := loadgen.MixEntry{Endpoint: fields[0], Weight: 1, Distinct: 1}
		for i, name := range []string{"weight", "distinct", "size"} {
			if len(fields) <= i+1 {
				break
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return nil, fmt.Errorf("mix entry %q: bad %s: %v", part, name, err)
			}
			switch i {
			case 0:
				e.Weight = n
			case 1:
				e.Distinct = n
			case 2:
				e.Size = n
			}
		}
		mix = append(mix, e)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("mix %q is empty", spec)
	}
	return mix, nil
}

// crossCheck scrapes the target's /metrics and verifies its per-endpoint
// histogram counts equal the responses this run observed.
func crossCheck(ctx context.Context, target string, rep *loadgen.Report) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("scraping %s/metrics: %v", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scraping %s/metrics: status %d", target, resp.StatusCode)
	}
	counts, err := loadgen.ScrapeEndpointCounts(resp.Body)
	if err != nil {
		return err
	}
	return rep.VerifyServerCounts(counts)
}
