module ulba

go 1.24
