package ulba

import (
	"context"
	"fmt"

	"ulba/internal/lb"
	"ulba/internal/stats"
)

// RuntimeExperiment is one fully validated runtime scenario: a Workload
// bound to p simulated PEs, executed under a when-to-balance policy (a
// runtime Trigger or a planner-precomputed Schedule). It is the runtime
// counterpart of Experiment — instead of evaluating the analytic model, it
// actually runs the scenario over the simulated message-passing cluster and
// measures the per-iteration timeline. Build it with NewRuntime; a
// constructed RuntimeExperiment is immutable and safe for concurrent use.
type RuntimeExperiment struct {
	cfg      RuntimeConfig
	workload Workload
	trigger  Trigger
	planner  Planner
	planned  Schedule
	workers  int
	perfect  float64
}

// NewRuntime builds a runtime scenario for p PEs. With no options it runs
// the linear-drift workload for 200 iterations under the paper's adaptive
// degradation trigger on the reference cluster cost model. Every option is
// validated eagerly, so a non-nil *RuntimeExperiment is always runnable.
//
// WithPlanner replaces the reactive trigger with a precomputed schedule:
// the planner plans on the analytic model (from WithModel, or derived from
// the workload when it implements ModeledWorkload) and the run replays the
// plan — the paper's anticipation move, executed on the simulated cluster.
func NewRuntime(p int, opts ...Option) (*RuntimeExperiment, error) {
	if p <= 0 {
		return nil, fmt.Errorf("ulba: runtime experiment needs a positive PE count, got %d", p)
	}
	s := settings{}
	if err := applyOptions(&s, scopeRuntime, "RuntimeExperiment", opts); err != nil {
		return nil, err
	}
	if s.workload == nil {
		s.workload = LinearWorkload{}
	}
	iterations := s.cfg.Iterations
	if iterations == 0 {
		iterations = 200
	}
	cost := s.cfg.Cost
	if cost.FLOPS == 0 {
		cost = DefaultCostModel()
	}

	if s.speeds != nil && len(s.speeds) != p {
		return nil, fmt.Errorf("ulba: WithSpeeds got %d speeds for %d PEs", len(s.speeds), p)
	}
	items, weight, err := s.workload.Instantiate(p)
	if err != nil {
		return nil, err
	}
	e := &RuntimeExperiment{
		workload: s.workload,
		trigger:  s.trigger,
		planner:  s.planner,
		workers:  s.workers,
		cfg: RuntimeConfig{
			P:          p,
			Items:      items,
			Iterations: iterations,
			Weight:     weight,
			Cost:       cost,
			Speeds:     s.speeds,
		},
	}
	e.cfg = e.cfg.Normalized()
	// The forced warmup call defaults to iteration 1; a one-iteration run
	// has no room for it, so drop the warmup rather than rejecting an
	// iteration count WithIterations documents as valid.
	if e.cfg.WarmupLB >= e.cfg.Iterations {
		e.cfg.WarmupLB = -1
	}

	if s.planner != nil && s.trigger != nil {
		return nil, fmt.Errorf("ulba: WithPlanner and WithTrigger are mutually exclusive: both decide when to balance")
	}
	switch {
	case s.planner != nil:
		mp, err := e.plannerModel(s.model)
		if err != nil {
			return nil, err
		}
		sched, err := s.planner.Plan(mp, iterations)
		if err != nil {
			return nil, fmt.Errorf("ulba: planner %q: %w", s.planner.Name(), err)
		}
		e.planned = normalizeSchedule(sched, iterations)
		e.trigger = ScheduleTrigger{Schedule: e.planned}
		e.cfg.TriggerFactory = e.trigger.New
		// The plan already contains the (possibly absent) first step; a
		// forced warmup call would distort it.
		e.cfg.WarmupLB = -1
	case s.trigger != nil:
		if pt, ok := s.trigger.(PeriodicTrigger); ok && pt.Every <= 0 {
			return nil, fmt.Errorf("ulba: periodic trigger needs Every > 0, got %d", pt.Every)
		}
		if wt, ok := s.trigger.(WLITrigger); ok && !(wt.Threshold > 0) {
			return nil, fmt.Errorf("ulba: wli trigger needs Threshold > 0, got %g", wt.Threshold)
		}
		e.cfg.TriggerFactory = s.trigger.New
		if dropsWarmup(s.trigger) {
			e.cfg.WarmupLB = -1
		}
	}

	if err := e.cfg.Validate(); err != nil {
		return nil, err
	}
	// Pre-evaluate the weight function over the scenario grid so every run
	// (the configured one, the no-LB baseline, and repeated Run calls) reads
	// the table instead of re-invoking the closure per item per iteration.
	// The values are the exact float64s the function returns, so results
	// are bit-for-bit unchanged; the guard keeps pathological grids from
	// pinning memory (the table is an optimization, never a requirement).
	const maxTableCells = 4 << 20
	if e.cfg.Items*e.cfg.Iterations <= maxTableCells {
		e.cfg.Table = lb.BuildWeightTable(e.cfg.Items, e.cfg.Iterations, e.cfg.Weight)
	}
	e.perfect = lb.PerfectTime(e.cfg)
	return e, nil
}

// plannerModel resolves the model parameters a planner-driven scenario
// plans against: the explicit WithModel parameters when given, otherwise
// the workload's own ModeledWorkload description.
func (e *RuntimeExperiment) plannerModel(explicit *ModelParams) (ModelParams, error) {
	if explicit != nil {
		return *explicit, nil
	}
	mw, ok := e.workload.(ModeledWorkload)
	if !ok {
		return ModelParams{}, fmt.Errorf(
			"ulba: WithPlanner on workload %q requires WithModel: the workload does not implement ModeledWorkload",
			e.workload.Name())
	}
	mp, err := mw.Model(e.cfg)
	if err != nil {
		return ModelParams{}, fmt.Errorf("ulba: workload %q model: %w", e.workload.Name(), err)
	}
	return mp, nil
}

// Config returns a copy of the underlying scenario configuration.
func (e *RuntimeExperiment) Config() RuntimeConfig { return e.cfg }

// Workload returns the scenario's workload.
func (e *RuntimeExperiment) Workload() Workload { return e.workload }

// Trigger returns the installed trigger, or nil when the run uses the
// default degradation rule.
func (e *RuntimeExperiment) Trigger() Trigger { return e.trigger }

// PlannedSchedule returns the LB schedule precomputed by WithPlanner, or
// nil for reactive (trigger-driven) scenarios. The slice is a copy:
// mutating it cannot change the plan the experiment replays.
func (e *RuntimeExperiment) PlannedSchedule() Schedule {
	if e.planned == nil {
		return nil
	}
	return append(Schedule(nil), e.planned...)
}

// RuntimeResult is the outcome of one scenario run together with its two
// reference points: the same scenario with load balancing disabled, and the
// perfect-knowledge lower bound (every iteration's workload spread evenly
// at zero cost — unreachable, but the natural efficiency denominator).
type RuntimeResult struct {
	Timeline    RuntimeTimeline // the configured run's measured timeline
	NoLBTime    float64         // total time of the no-LB baseline run
	PerfectTime float64         // perfect-knowledge lower bound, seconds
}

// Gain is the fractional improvement of the configured policy over running
// without any load balancing: (noLB - total) / noLB. Negative means the
// policy paid more in LB cost than it recovered in balance.
func (r RuntimeResult) Gain() float64 {
	if r.NoLBTime == 0 {
		return 0
	}
	return (r.NoLBTime - r.Timeline.TotalTime) / r.NoLBTime
}

// Efficiency is the fraction of the perfect-knowledge bound the run
// achieved: perfect / measured, in (0, 1] for any real run.
func (r RuntimeResult) Efficiency() float64 {
	if r.Timeline.TotalTime == 0 {
		return 0
	}
	return r.PerfectTime / r.Timeline.TotalTime
}

// Run executes the scenario and its no-LB baseline on the simulated cluster
// and returns the measured timeline with both reference points. Runs are
// deterministic: the same RuntimeExperiment always produces the same
// RuntimeResult, bit for bit. With WithWorkers(n >= 2) the scenario and its
// baseline execute concurrently; the outcome is identical either way.
// Cancelling the context abandons the runs and returns ctx.Err(); the
// simulated ranks finish in the background and are discarded.
func (e *RuntimeExperiment) Run(ctx context.Context) (RuntimeResult, error) {
	if err := ctx.Err(); err != nil {
		return RuntimeResult{}, err
	}
	baseCfg := e.cfg
	baseCfg.TriggerFactory = NeverTrigger{}.New
	baseCfg.WarmupLB = -1

	res := RuntimeResult{PerfectTime: e.perfect}
	if e.workers == 1 {
		main, err := runSynthCtx(ctx, e.cfg)
		if err != nil {
			return RuntimeResult{}, err
		}
		base, err := runSynthCtx(ctx, baseCfg)
		if err != nil {
			return RuntimeResult{}, err
		}
		res.Timeline, res.NoLBTime = main, base.TotalTime
		return res, nil
	}

	var main, base RuntimeTimeline
	var mainErr, baseErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		base, baseErr = runSynthCtx(ctx, baseCfg)
	}()
	main, mainErr = runSynthCtx(ctx, e.cfg)
	<-done
	if mainErr != nil {
		return RuntimeResult{}, mainErr
	}
	if baseErr != nil {
		return RuntimeResult{}, baseErr
	}
	res.Timeline, res.NoLBTime = main, base.TotalTime
	return res, nil
}

// runSynthCtx is lb.RunSynth with context cancellation, mirroring
// Experiment.Run's contract.
func runSynthCtx(ctx context.Context, cfg RuntimeConfig) (RuntimeTimeline, error) {
	type outcome struct {
		res RuntimeTimeline
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := lb.RunSynth(cfg)
		done <- outcome{res, err}
	}()
	select {
	case <-ctx.Done():
		return RuntimeTimeline{}, ctx.Err()
	case o := <-done:
		return o.res, o.err
	}
}

// RuntimeSweep is the batch engine for runtime scenarios: it runs many
// RuntimeExperiments concurrently over the same bounded worker pool the
// model-side Sweep uses, streaming per-scenario results and aggregating
// them deterministically — the summary is bit-identical for every worker
// count. Build it with NewRuntimeSweep; a constructed RuntimeSweep is
// immutable and safe for concurrent use.
type RuntimeSweep struct {
	workers int
}

// NewRuntimeSweep builds a runtime sweep engine. The only accepted option
// is WithWorkers; the default is GOMAXPROCS workers. Note each scenario run
// itself spawns its PE-count goroutines (mostly blocked on virtual-time
// synchronization), so the worker bound governs scenario-level parallelism.
func NewRuntimeSweep(opts ...Option) (*RuntimeSweep, error) {
	s := settings{}
	if err := applyOptions(&s, scopeRuntimeSweep, "RuntimeSweep", opts); err != nil {
		return nil, err
	}
	return &RuntimeSweep{workers: s.workers}, nil
}

// RuntimeSweepResult is one streamed scenario outcome. Index is the
// scenario's position in the input slice, so consumers can restore input
// order regardless of completion order.
type RuntimeSweepResult struct {
	Index  int
	Result RuntimeResult
	Err    error
}

// RuntimeSweepSummary aggregates a completed runtime sweep. Aggregation
// happens in input order over deterministic per-scenario runs, so the
// summary is bit-identical for every worker count.
type RuntimeSweepSummary struct {
	Scenarios    int
	Gains        FiveNum // distribution of per-scenario gains over no-LB
	Efficiencies FiveNum // distribution of perfect/measured ratios
	MeanLBCalls  float64 // mean LB invocations per scenario
	MeanUsage    float64 // mean of per-scenario mean PE usage
	MeanWLI      float64 // mean of per-scenario mean weighted load imbalance
}

// Stream runs the scenarios over the worker pool and sends one
// RuntimeSweepResult per scenario as soon as it completes (not in input
// order). The channel is closed when every scenario has been delivered or
// the context is cancelled, whichever comes first; after a cancellation,
// delivery of the scenarios already in flight is best-effort, so a consumer
// may cancel and walk away without leaking the workers. Run wraps Stream
// with a guaranteed-delivery contract instead (it always drains), which is
// what makes its lowest-index error reporting deterministic.
func (s *RuntimeSweep) Stream(ctx context.Context, exps []*RuntimeExperiment) <-chan RuntimeSweepResult {
	return s.stream(ctx, ctx, exps, false)
}

// stream separates the dispatch context from the per-scenario run context:
// Run cancels dispatch on the first error but lets the scenarios already in
// flight observe only the caller's context, so a sibling's failure cannot
// corrupt their results into context errors — which is what keeps Run's
// lowest-index error reporting independent of the worker count.
func (s *RuntimeSweep) stream(dispatchCtx, runCtx context.Context, exps []*RuntimeExperiment, guaranteed bool) <-chan RuntimeSweepResult {
	return fanOut(dispatchCtx, len(exps), s.workers, guaranteed, func() func(int) RuntimeSweepResult {
		return func(i int) RuntimeSweepResult {
			if exps[i] == nil {
				return RuntimeSweepResult{Index: i, Err: fmt.Errorf("ulba: runtime sweep scenario %d is nil", i)}
			}
			r, err := exps[i].Run(runCtx)
			return RuntimeSweepResult{Index: i, Result: r, Err: err}
		}
	})
}

// Run executes every scenario and returns the input-ordered results with
// their aggregate summary. Cancelling the context mid-sweep abandons the
// remaining scenarios and returns ctx.Err(). For a fixed scenario set the
// output is bit-identical regardless of the worker count, and so is the
// reported error: the first scenario error stops the dispatch of the
// remaining scenarios, in-flight scenarios still complete, and the error
// of the lowest input index wins.
func (s *RuntimeSweep) Run(ctx context.Context, exps []*RuntimeExperiment) (RuntimeSweepSummary, []RuntimeResult, error) {
	dispatchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := s.stream(dispatchCtx, ctx, exps, true)

	out := make([]RuntimeResult, len(exps))
	err := collectIndexed(ctx, cancel, results, len(exps), "scenarios",
		func(r RuntimeSweepResult) (int, error) { return r.Index, r.Err },
		func(r RuntimeSweepResult) { out[r.Index] = r.Result })
	if err != nil {
		return RuntimeSweepSummary{}, nil, err
	}
	return summarizeRuntimeSweep(out), out, nil
}

// SummarizeRuntimeSweep aggregates scenario results in slice order into the
// same RuntimeSweepSummary Run reports for that result set — the runtime
// counterpart of SummarizeSweep, for Stream consumers that collect results
// themselves.
func SummarizeRuntimeSweep(results []RuntimeResult) RuntimeSweepSummary {
	return summarizeRuntimeSweep(results)
}

// summarizeRuntimeSweep aggregates scenario results in slice order.
func summarizeRuntimeSweep(results []RuntimeResult) RuntimeSweepSummary {
	sum := RuntimeSweepSummary{Scenarios: len(results)}
	if len(results) == 0 {
		return sum
	}
	gains := make([]float64, len(results))
	effs := make([]float64, len(results))
	var calls, usage, wli float64
	for i, r := range results {
		gains[i] = r.Gain()
		effs[i] = r.Efficiency()
		calls += float64(r.Timeline.LBCount())
		usage += r.Timeline.MeanUsage()
		wli += r.Timeline.MeanWLI()
	}
	sum.Gains = stats.Summarize(gains)
	sum.Efficiencies = stats.Summarize(effs)
	sum.MeanLBCalls = calls / float64(len(results))
	sum.MeanUsage = usage / float64(len(results))
	sum.MeanWLI = wli / float64(len(results))
	return sum
}
