// Package cluster is the membership and placement layer of a multi-replica
// ulba-serve deployment. Every replica runs the same engines over the same
// content-addressed key space (DESIGN.md's determinism contract), so the
// cluster's job is not correctness — any node can compute any request — but
// placement: a consistent-hash ring over the canonical request hashes
// decides which replicas own (cache, persist, replicate) each key, liveness
// decides who is worth forwarding to, and queued-job work stealing drains
// load imbalances between replicas.
//
// Membership is static — the peer list comes from the -peers flag and every
// node must be started with the same list — while liveness and per-node
// load are disseminated with the same doubling-ring gossip core
// (internal/gossip) the paper's simulated runtime uses, pointed at HTTP
// instead of the simulated MPI transport. Each gossip tick a node refreshes
// its own entry (value = queued-job depth, iteration = heartbeat sequence)
// and exchanges full databases with its doubling-ring partner; the
// deterministic merge makes every node converge on the same view regardless
// of exchange interleaving.
//
// The package owns the client half of the cluster protocol (forward,
// replicate, gossip exchange, steal) and the background loops; the HTTP
// handlers serving /v1/cluster/* live in internal/server, which wires the
// two together through Hooks.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ulba/internal/gossip"
)

// Cluster protocol endpoints, registered by internal/server and dialed by
// this package's client half.
const (
	PathGossip    = "/v1/cluster/gossip"
	PathSteal     = "/v1/cluster/steal"
	PathReplicate = "/v1/cluster/replicate"
	PathStatus    = "/v1/cluster"
)

// Cluster protocol headers.
const (
	// HeaderNode is the response header naming the node that served a
	// request — on a forwarded request, the owner that computed it, not
	// the node the client dialed.
	HeaderNode = "X-Ulba-Node"
	// HeaderFrom carries the sender's node ID on intra-cluster requests.
	HeaderFrom = "X-Ulba-From"
	// HeaderForwarded marks a request as already forwarded once; a node
	// receiving it always serves locally, so routing loops are impossible.
	HeaderForwarded = "X-Ulba-Forwarded"
	// HeaderKey carries the content address of a replicated body.
	HeaderKey = "X-Ulba-Key"
)

// GossipExchange is the body of POST /v1/cluster/gossip — one half of a
// push-pull exchange. The response body is the receiver's GossipExchange.
type GossipExchange struct {
	From    string         `json:"from"`
	Entries []gossip.Entry `json:"entries"`
}

// StealRequest is the body of POST /v1/cluster/steal: an idle node asking a
// loaded peer for one queued job.
type StealRequest struct {
	From string `json:"from"`
}

// StolenJob is one leased queued job: the exact submission the victim
// accepted plus its content address.
type StolenJob struct {
	Type    string          `json:"type"`
	Request json.RawMessage `json:"request"`
	Key     string          `json:"key"`
}

// StealResponse is the body answering a steal: a leased job, or nothing
// when the victim has no eligible queued work.
type StealResponse struct {
	Job *StolenJob `json:"job,omitempty"`
}

// Options configures a Node. Self and Peers are required; everything else
// has serviceable defaults.
type Options struct {
	// Self is this node's base URL as peers reach it (e.g.
	// "http://10.0.0.1:8383"). It must appear in Peers.
	Self string
	// Peers lists every cluster member's base URL, self included. Order
	// does not matter — the list is canonicalized by sorting — but every
	// node must be started with the same set.
	Peers []string
	// Replication is how many distinct nodes own each key; <= 0 selects 2.
	// Values beyond the cluster size are clamped.
	Replication int
	// VirtualNodes is the points-per-member granularity of the hash ring;
	// <= 0 selects 64.
	VirtualNodes int
	// GossipInterval paces the heartbeat/load dissemination loop; <= 0
	// selects 250ms.
	GossipInterval time.Duration
	// StealInterval paces the work-stealing loop; <= 0 selects 500ms.
	StealInterval time.Duration
	// Client overrides the intra-cluster HTTP client (tests); nil builds
	// one with a short dial timeout so dead peers fail fast.
	Client *http.Client
}

// Hooks is the serving layer's half of the contract: the cluster loops need
// to know the local load and how to execute a stolen submission.
type Hooks struct {
	// Load returns the local queued-job depth, gossiped so idle peers can
	// pick steal victims.
	Load func() int
	// RunStolen executes one stolen submission through the local cache /
	// engine path and returns the key and fully rendered body. The node
	// pushes the body back to the victim (owners already received it
	// through the server's persist hook).
	RunStolen func(ctx context.Context, typ string, request json.RawMessage) (key string, body []byte, err error)
}

// Member is one cluster node in the canonical (sorted-URL) order.
type Member struct {
	// ID is the stable node name ("n0".."n{P-1}") in canonical order.
	ID string `json:"id"`
	// Index is the member's rank in canonical order — the gossip rank.
	Index int `json:"index"`
	// URL is the member's base URL.
	URL string `json:"url"`
	// Self marks the local node.
	Self bool `json:"self,omitempty"`
}

// Node is one replica's view of the cluster: the immutable member ring plus
// the gossiped liveness/load state and the background loops. Build it with
// New, start the loops with Start, and Close on shutdown. All methods are
// safe for concurrent use.
type Node struct {
	members     []Member
	self        int
	ring        ring
	replication int
	gossipEvery time.Duration
	stealEvery  time.Duration
	client      *http.Client
	hooks       Hooks

	mu        sync.Mutex
	db        *gossip.DB
	alive     []bool
	heartbeat int
	step      int

	gossipExchanges, gossipFailures atomic.Uint64
	forwards, forwardFailures       atomic.Uint64
	forwardsShed                    atomic.Uint64
	replicasSent, replicaFailures   atomic.Uint64
	stealsRun, stealFailures        atomic.Uint64

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// normalizeURL canonicalizes one peer URL: scheme+host only, no trailing
// slash, no path (the cluster protocol owns the full path space).
func normalizeURL(raw string) (string, error) {
	u, err := url.Parse(strings.TrimSuffix(strings.TrimSpace(raw), "/"))
	if err != nil {
		return "", fmt.Errorf("cluster: invalid peer URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: peer URL %q must use http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: peer URL %q has no host", raw)
	}
	if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("cluster: peer URL %q must be a bare scheme://host[:port]", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// New validates the options into a Node. The member list is the sorted,
// deduplicated peer set; node IDs ("n0"..) index into it, so every replica
// given the same -peers flag derives the same IDs, the same gossip ranks,
// and the same ring.
func New(opts Options, hooks Hooks) (*Node, error) {
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("cluster: peer list must not be empty")
	}
	self, err := normalizeURL(opts.Self)
	if err != nil {
		return nil, err
	}
	urls := make([]string, 0, len(opts.Peers))
	seen := map[string]bool{}
	for _, p := range opts.Peers {
		u, err := normalizeURL(p)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	sort.Strings(urls)
	selfIdx := sort.SearchStrings(urls, self)
	if selfIdx == len(urls) || urls[selfIdx] != self {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, urls)
	}

	replication := opts.Replication
	if replication <= 0 {
		replication = 2
	}
	if replication > len(urls) {
		replication = len(urls)
	}
	virtual := opts.VirtualNodes
	if virtual <= 0 {
		virtual = 64
	}
	gossipEvery := opts.GossipInterval
	if gossipEvery <= 0 {
		gossipEvery = 250 * time.Millisecond
	}
	stealEvery := opts.StealInterval
	if stealEvery <= 0 {
		stealEvery = 500 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
				MaxIdleConnsPerHost: 4,
			},
		}
	}

	members := make([]Member, len(urls))
	alive := make([]bool, len(urls))
	for i, u := range urls {
		members[i] = Member{ID: fmt.Sprintf("n%d", i), Index: i, URL: u, Self: i == selfIdx}
		alive[i] = true // optimistic: a peer is presumed up until contact fails
	}
	n := &Node{
		members:     members,
		self:        selfIdx,
		ring:        buildRing(urls, virtual),
		replication: replication,
		gossipEvery: gossipEvery,
		stealEvery:  stealEvery,
		client:      client,
		hooks:       hooks,
		db:          gossip.NewDB(selfIdx, len(urls)),
	}
	n.alive = alive
	n.mu.Lock()
	n.refreshSelfLocked()
	n.mu.Unlock()
	return n, nil
}

// ID returns the local node's stable name ("n3").
func (n *Node) ID() string { return n.members[n.self].ID }

// Self returns the local member.
func (n *Node) Self() Member { return n.members[n.self] }

// Members returns the canonical member list (a copy).
func (n *Node) Members() []Member {
	return append([]Member(nil), n.members...)
}

// Size returns the cluster size.
func (n *Node) Size() int { return len(n.members) }

// Replication returns the effective replication factor.
func (n *Node) Replication() int { return n.replication }

// Owners returns key's replica set in ring order: the primary first, then
// the failover replicas.
func (n *Node) Owners(key string) []Member {
	idxs := n.ring.owners(key, n.replication)
	out := make([]Member, len(idxs))
	for i, idx := range idxs {
		out[i] = n.members[idx]
	}
	return out
}

// IsOwner reports whether the local node is in key's replica set.
func (n *Node) IsOwner(key string) bool {
	for _, idx := range n.ring.owners(key, n.replication) {
		if idx == n.self {
			return true
		}
	}
	return false
}

// Alive reports the liveness belief about a member.
func (n *Node) Alive(idx int) bool {
	if idx < 0 || idx >= len(n.members) {
		return false
	}
	if idx == n.self {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive[idx]
}

// Observe records direct evidence that the named node is up — the server
// calls it for every intra-cluster request it receives.
func (n *Node) Observe(id string) {
	if idx, ok := n.memberByID(id); ok {
		n.markAlive(idx)
	}
}

// MarkDead records a failed direct contact; the peer stays skipped until
// new evidence (an incoming request, a gossip advance, a successful retry)
// revives it. The gossip loop keeps dialing dead partners on its fixed
// rotation, so a restarted replica is re-discovered without manual action.
func (n *Node) MarkDead(idx int) {
	if idx < 0 || idx >= len(n.members) || idx == n.self {
		return
	}
	n.mu.Lock()
	n.alive[idx] = false
	n.mu.Unlock()
}

func (n *Node) markAlive(idx int) {
	if idx < 0 || idx >= len(n.members) || idx == n.self {
		return
	}
	n.mu.Lock()
	n.alive[idx] = true
	n.mu.Unlock()
}

func (n *Node) memberByID(id string) (int, bool) {
	for i, m := range n.members {
		if m.ID == id {
			return i, true
		}
	}
	return 0, false
}

// refreshSelfLocked re-stamps the local gossip entry with the current load.
// Callers hold n.mu.
func (n *Node) refreshSelfLocked() {
	load := 0.0
	if n.hooks.Load != nil {
		load = float64(n.hooks.Load())
	}
	n.heartbeat++
	n.db.Update(n.self, load, n.heartbeat)
}

// HandleGossip is the server half of a push-pull exchange: merge the
// sender's entries (tracking which ranks advanced, indirect evidence that
// those nodes are alive), refresh the local entry, and return the merged
// snapshot for the response.
func (n *Node) HandleGossip(from string, entries []gossip.Entry) []gossip.Entry {
	n.mu.Lock()
	before := make([]int, len(n.members))
	for i := range n.members {
		if e, ok := n.db.Get(i); ok {
			before[i] = e.Iter
		} else {
			before[i] = -1
		}
	}
	n.db.Merge(entries)
	n.refreshSelfLocked()
	advanced := make([]int, 0, len(n.members))
	for i := range n.members {
		if e, ok := n.db.Get(i); ok && i != n.self && e.Iter > before[i] {
			advanced = append(advanced, i)
		}
	}
	snap := n.db.Snapshot()
	n.mu.Unlock()
	for _, idx := range advanced {
		n.markAlive(idx)
	}
	n.Observe(from)
	return snap
}

// Start launches the gossip and steal loops. A singleton cluster has
// nothing to disseminate or steal, so Start is a no-op there.
func (n *Node) Start() {
	if len(n.members) == 1 || n.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(2)
	go n.loop(ctx, n.gossipEvery, n.gossipTick)
	go n.loop(ctx, n.stealEvery, n.stealTick)
}

// Close stops the background loops and waits for them.
func (n *Node) Close() {
	if n.cancel == nil {
		return
	}
	n.cancel()
	n.wg.Wait()
	n.cancel = nil
}

func (n *Node) loop(ctx context.Context, every time.Duration, tick func(ctx context.Context)) {
	defer n.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			tick(ctx)
		}
	}
}

// gossipTick refreshes the local entry and exchanges databases with the
// current doubling-ring partner. Dead partners are still dialed on their
// turn — the fixed rotation doubles as the failure-recovery probe.
func (n *Node) gossipTick(ctx context.Context) {
	n.mu.Lock()
	n.refreshSelfLocked()
	dst, _ := gossip.Partner(n.self, n.step, len(n.members))
	n.step++
	snap := n.db.Snapshot()
	n.mu.Unlock()
	if dst == n.self {
		return
	}
	reqBody, err := json.Marshal(GossipExchange{From: n.ID(), Entries: snap})
	if err != nil {
		return
	}
	callCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	resp, err := n.post(callCtx, n.members[dst], PathGossip, "application/json", nil, reqBody)
	if err != nil {
		n.gossipFailures.Add(1)
		if ctx.Err() == nil {
			n.MarkDead(dst)
		}
		return
	}
	defer resp.Body.Close()
	var theirs GossipExchange
	if resp.StatusCode != http.StatusOK || json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&theirs) != nil {
		n.gossipFailures.Add(1)
		return
	}
	n.gossipExchanges.Add(1)
	n.HandleGossip(theirs.From, theirs.Entries)
	n.markAlive(dst)
}

// stealTick pulls one queued job from the most loaded live peer when the
// local queue is idle, runs it locally, and pushes the rendered body back
// to the victim (whose queued copy then completes as a cache hit). The
// victim's lease guarantees a key is handed to at most one thief, and the
// local cache's single-flight keeps the computation deduplicated against
// concurrent local traffic — cluster-wide single flight by owner-side
// dedup.
func (n *Node) stealTick(ctx context.Context) {
	if n.hooks.Load == nil || n.hooks.RunStolen == nil || n.hooks.Load() > 0 {
		return
	}
	victim := -1
	best := 0.0
	n.mu.Lock()
	for i := range n.members {
		if i == n.self || !n.alive[i] {
			continue
		}
		if e, ok := n.db.Get(i); ok && e.Value > best {
			best, victim = e.Value, i
		}
	}
	n.mu.Unlock()
	if victim < 0 {
		return
	}
	reqBody, err := json.Marshal(StealRequest{From: n.ID()})
	if err != nil {
		return
	}
	callCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	resp, err := n.post(callCtx, n.members[victim], PathSteal, "application/json", nil, reqBody)
	if err != nil {
		cancel()
		n.stealFailures.Add(1)
		if ctx.Err() == nil {
			n.MarkDead(victim)
		}
		return
	}
	var stolen StealResponse
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(&stolen)
	resp.Body.Close()
	cancel()
	if resp.StatusCode != http.StatusOK || decodeErr != nil || stolen.Job == nil {
		return
	}
	key, body, err := n.hooks.RunStolen(ctx, stolen.Job.Type, stolen.Job.Request)
	if err != nil {
		n.stealFailures.Add(1)
		return
	}
	n.stealsRun.Add(1)
	// Owners received the body through the compute path's replication;
	// the victim — who holds the leased job — may not be one of them.
	n.replicateTo(ctx, n.members[victim], key, body)
}

// post issues one intra-cluster POST with the sender identity attached.
func (n *Node) post(ctx context.Context, m Member, path, contentType string, extra http.Header, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(HeaderFrom, n.ID())
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	return n.client.Do(req)
}

// Forward relays a client request body to m and returns the raw response.
// The HeaderForwarded mark makes the receiver serve locally, so a forward
// can never loop. A transport failure marks the member dead (unless the
// caller's context died first) so the next request skips it.
func (n *Node) Forward(ctx context.Context, m Member, endpoint string, body []byte) (*http.Response, error) {
	extra := http.Header{HeaderForwarded: []string{n.ID()}}
	resp, err := n.post(ctx, m, endpoint, "application/json", extra, body)
	if err != nil {
		n.forwardFailures.Add(1)
		if ctx.Err() == nil {
			n.MarkDead(m.Index)
		}
		return nil, err
	}
	n.forwards.Add(1)
	if resp.StatusCode == http.StatusTooManyRequests {
		// The owner admitted the relay but shed it: count separately, so
		// an overloaded owner is visible from the forwarding side too.
		n.forwardsShed.Add(1)
	}
	n.markAlive(m.Index)
	return resp, nil
}

// ReplicateAsync pushes a completed body to every other member of key's
// replica set, in the background. Replication is an availability
// optimization, never a correctness requirement — a lost push only costs a
// recomputation after a failure — so failures are counted, not retried.
func (n *Node) ReplicateAsync(key string, body []byte) {
	for _, m := range n.Owners(key) {
		if m.Index == n.self {
			continue
		}
		m := m
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			n.replicateTo(ctx, m, key, body)
		}()
	}
}

// replicateTo pushes one (key, body) record to m.
func (n *Node) replicateTo(ctx context.Context, m Member, key string, body []byte) {
	extra := http.Header{HeaderKey: []string{key}}
	resp, err := n.post(ctx, m, PathReplicate, "application/json", extra, body)
	if err != nil {
		n.replicaFailures.Add(1)
		if ctx.Err() == nil {
			n.MarkDead(m.Index)
		}
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.replicaFailures.Add(1)
		return
	}
	n.replicasSent.Add(1)
	n.markAlive(m.Index)
}

// PeerStatus is one member's row in the cluster status block.
type PeerStatus struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Self  bool   `json:"self,omitempty"`
	Alive bool   `json:"alive"`
	// Load and Heartbeat are the member's last gossiped queue depth and
	// heartbeat sequence (zero until first heard from).
	Load      float64 `json:"load"`
	Heartbeat int     `json:"heartbeat"`
}

// Stats is the cluster block of GET /v1/stats and GET /v1/cluster.
type Stats struct {
	Size        int          `json:"size"`
	Replication int          `json:"replication"`
	Live        int          `json:"live"`
	Peers       []PeerStatus `json:"peers"`

	GossipExchanges uint64 `json:"gossip_exchanges"`
	GossipFailures  uint64 `json:"gossip_failures"`
	Forwards        uint64 `json:"forwards"`
	ForwardFailures uint64 `json:"forward_failures"`
	// ForwardsShed counts forwards the owner answered with 429 — relayed
	// admission-control rejections, as opposed to transport failures.
	ForwardsShed    uint64 `json:"forwards_shed"`
	ReplicasSent    uint64 `json:"replicas_sent"`
	ReplicaFailures uint64 `json:"replica_failures"`
	StealsRun       uint64 `json:"steals_run"`
	StealFailures   uint64 `json:"steal_failures"`
}

// Stats snapshots the membership view and protocol counters.
func (n *Node) Stats() Stats {
	st := Stats{
		Size:            len(n.members),
		Replication:     n.replication,
		Peers:           make([]PeerStatus, len(n.members)),
		GossipExchanges: n.gossipExchanges.Load(),
		GossipFailures:  n.gossipFailures.Load(),
		Forwards:        n.forwards.Load(),
		ForwardFailures: n.forwardFailures.Load(),
		ForwardsShed:    n.forwardsShed.Load(),
		ReplicasSent:    n.replicasSent.Load(),
		ReplicaFailures: n.replicaFailures.Load(),
		StealsRun:       n.stealsRun.Load(),
		StealFailures:   n.stealFailures.Load(),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, m := range n.members {
		ps := PeerStatus{ID: m.ID, URL: m.URL, Self: m.Self, Alive: n.alive[i] || m.Self}
		if e, ok := n.db.Get(i); ok {
			ps.Load, ps.Heartbeat = e.Value, e.Iter
		}
		st.Peers[i] = ps
		if ps.Alive {
			st.Live++
		}
	}
	return st
}
