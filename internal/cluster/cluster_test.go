package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"ulba/internal/gossip"
)

func testPeers(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://10.0.0.%d:8383", i+1)
	}
	return urls
}

func newTestNode(t *testing.T, self int, n int, opts Options, hooks Hooks) *Node {
	t.Helper()
	peers := testPeers(n)
	opts.Self = peers[self]
	opts.Peers = peers
	node, err := New(opts, hooks)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return node
}

func TestNewValidation(t *testing.T) {
	peers := testPeers(3)
	cases := []struct {
		name string
		opts Options
	}{
		{"empty peers", Options{Self: peers[0]}},
		{"self not a peer", Options{Self: "http://10.9.9.9:1", Peers: peers}},
		{"duplicate peer", Options{Self: peers[0], Peers: append(peers, peers[1])}},
		{"bad scheme", Options{Self: peers[0], Peers: []string{peers[0], "ftp://x:1"}}},
		{"url with path", Options{Self: peers[0], Peers: []string{peers[0], "http://x:1/v1"}}},
		{"no host", Options{Self: peers[0], Peers: []string{peers[0], "http://"}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts, Hooks{}); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

// Node identity, ranks, and placement must be a pure function of the peer
// SET: every replica is started with the same -peers flag but possibly in a
// different order, and they must all agree without coordination.
func TestMembershipOrderIndependent(t *testing.T) {
	peers := testPeers(5)
	ref, err := New(Options{Self: peers[2], Peers: peers}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		node, err := New(Options{Self: peers[2], Peers: shuffled}, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(node.Members(), ref.Members()) {
			t.Fatalf("members differ for order %v", shuffled)
		}
		for k := 0; k < 50; k++ {
			key := fmt.Sprintf("key-%d", k)
			if !reflect.DeepEqual(node.Owners(key), ref.Owners(key)) {
				t.Fatalf("owners(%s) differ for order %v", key, shuffled)
			}
		}
	}
}

func TestOwnersDistinctAndStable(t *testing.T) {
	node := newTestNode(t, 0, 5, Options{Replication: 3}, Hooks{})
	counts := make([]int, node.Size())
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("req-%d", k)
		owners := node.Owners(key)
		if len(owners) != 3 {
			t.Fatalf("owners(%s) = %d members, want 3", key, len(owners))
		}
		seen := map[int]bool{}
		for _, m := range owners {
			if seen[m.Index] {
				t.Fatalf("owners(%s) repeats member %d", key, m.Index)
			}
			seen[m.Index] = true
		}
		counts[owners[0].Index]++
		ownerSelf := false
		for _, m := range owners {
			if m.Index == 0 {
				ownerSelf = true
			}
		}
		if node.IsOwner(key) != ownerSelf {
			t.Fatalf("IsOwner(%s) = %v disagrees with Owners", key, !ownerSelf)
		}
	}
	// Placement should not degenerate: every member is primary for
	// something over 200 keys.
	for i, c := range counts {
		if c == 0 {
			t.Errorf("member %d is primary for no keys", i)
		}
	}
}

func TestReplicationClamped(t *testing.T) {
	node := newTestNode(t, 0, 3, Options{Replication: 9}, Hooks{})
	if node.Replication() != 3 {
		t.Fatalf("replication = %d, want clamped to 3", node.Replication())
	}
	node = newTestNode(t, 0, 3, Options{}, Hooks{})
	if node.Replication() != 2 {
		t.Fatalf("default replication = %d, want 2", node.Replication())
	}
}

func TestLivenessTransitions(t *testing.T) {
	node := newTestNode(t, 0, 3, Options{}, Hooks{})
	for i := 0; i < 3; i++ {
		if !node.Alive(i) {
			t.Fatalf("member %d should start alive", i)
		}
	}
	node.MarkDead(1)
	if node.Alive(1) {
		t.Fatal("member 1 should be dead after MarkDead")
	}
	node.Observe("n1")
	if !node.Alive(1) {
		t.Fatal("Observe should revive member 1")
	}
	node.MarkDead(0) // self is never dead
	if !node.Alive(0) {
		t.Fatal("self must stay alive")
	}
	if node.Alive(-1) || node.Alive(99) {
		t.Fatal("out-of-range members must read dead")
	}
}

func TestHandleGossipMergesAndRevives(t *testing.T) {
	load := 4
	node := newTestNode(t, 0, 3, Options{}, Hooks{Load: func() int { return load }})
	node.MarkDead(2)
	snap := node.HandleGossip("n1", []gossip.Entry{
		{Rank: 1, Value: 7, Iter: 3}, // rank 1: load 7, heartbeat 3
		{Rank: 2, Value: 1, Iter: 5}, // rank 2 advanced => indirect liveness evidence
	})
	if !node.Alive(1) || !node.Alive(2) {
		t.Fatal("gossip evidence should mark 1 (direct) and 2 (advance) alive")
	}
	got := map[int][2]float64{}
	for _, e := range snap {
		got[e.Rank] = [2]float64{e.Value, float64(e.Iter)}
	}
	if got[1] != [2]float64{7, 3} || got[2] != [2]float64{1, 5} {
		t.Fatalf("snapshot missing merged entries: %v", got)
	}
	if got[0][0] != float64(load) {
		t.Fatalf("snapshot self load = %v, want %d", got[0][0], load)
	}
	st := node.Stats()
	if st.Live != 3 || st.Size != 3 {
		t.Fatalf("stats live=%d size=%d, want 3/3", st.Live, st.Size)
	}
	if st.Peers[1].Load != 7 || st.Peers[1].Heartbeat != 3 {
		t.Fatalf("peer 1 status = %+v", st.Peers[1])
	}
}

// twoNodeHarness stands up two real Nodes whose URLs point at live HTTP
// servers wired to each other's protocol handlers — the same
// listener-first trick the server integration tests use.
func twoNodeHarness(t *testing.T, hooks0, hooks1 Hooks) (*Node, *Node, *http.ServeMux, *http.ServeMux) {
	t.Helper()
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	opts := Options{Peers: urls, Client: &http.Client{Timeout: 2 * time.Second}}
	opts.Self = urls[0]
	n0, err := New(opts, hooks0)
	if err != nil {
		t.Fatal(err)
	}
	opts.Self = urls[1]
	n1, err := New(opts, hooks1)
	if err != nil {
		t.Fatal(err)
	}
	muxes := []*http.ServeMux{http.NewServeMux(), http.NewServeMux()}
	for i := range lns {
		srv := httptest.NewUnstartedServer(muxes[i])
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		t.Cleanup(srv.Close)
	}
	return n0, n1, muxes[0], muxes[1]
}

func registerGossipHandler(mux *http.ServeMux, node *Node) {
	mux.HandleFunc(PathGossip, func(w http.ResponseWriter, r *http.Request) {
		var ex GossipExchange
		if err := json.NewDecoder(r.Body).Decode(&ex); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(GossipExchange{From: node.ID(), Entries: node.HandleGossip(ex.From, ex.Entries)})
	})
}

func TestGossipTickExchangesState(t *testing.T) {
	load0, load1 := 2, 9
	n0, n1, _, mux1 := twoNodeHarness(t,
		Hooks{Load: func() int { return load0 }},
		Hooks{Load: func() int { return load1 }})
	registerGossipHandler(mux1, n1)

	n0.gossipTick(context.Background())
	st0, st1 := n0.Stats(), n1.Stats()
	if st0.GossipExchanges != 1 {
		t.Fatalf("n0 exchanges = %d, want 1", st0.GossipExchanges)
	}
	// Push-pull: each side now holds the other's load.
	i0, i1 := n0.self, n1.self
	if st0.Peers[i1].Load != float64(load1) {
		t.Fatalf("n0 sees n1 load %v, want %d", st0.Peers[i1].Load, load1)
	}
	if st1.Peers[i0].Load != float64(load0) {
		t.Fatalf("n1 sees n0 load %v, want %d", st1.Peers[i0].Load, load0)
	}
}

func TestGossipTickFailureMarksDead(t *testing.T) {
	// No handler registered on the partner: the POST gets a 404 served,
	// so instead close the partner's listener by pointing n0 at a dead
	// port via a fresh node pair where the partner server never starts.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	liveURL := "http://" + ln2.Addr().String()
	n0, err := New(Options{
		Self:   liveURL,
		Peers:  []string{liveURL, deadURL},
		Client: &http.Client{Timeout: 500 * time.Millisecond},
	}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	var partner int
	for i := range n0.members {
		if i != n0.self {
			partner = i
		}
	}
	n0.gossipTick(context.Background())
	if n0.Alive(partner) {
		t.Fatal("unreachable partner should be marked dead")
	}
	if n0.Stats().GossipFailures != 1 {
		t.Fatalf("gossip failures = %d, want 1", n0.Stats().GossipFailures)
	}
}

func TestStealTickRunsVictimJob(t *testing.T) {
	idle := 0
	var mu sync.Mutex
	var ranType string
	var pushedKey string
	n0, n1, _, mux1 := twoNodeHarness(t,
		Hooks{
			Load: func() int { return idle },
			RunStolen: func(ctx context.Context, typ string, req json.RawMessage) (string, []byte, error) {
				mu.Lock()
				ranType = typ
				mu.Unlock()
				return "k123", []byte(`{"ok":true}`), nil
			},
		},
		Hooks{Load: func() int { return 5 }})
	mux1.HandleFunc(PathSteal, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(StealResponse{Job: &StolenJob{
			Type: "sweep", Request: json.RawMessage(`{"x":1}`), Key: "k123",
		}})
	})
	mux1.HandleFunc(PathReplicate, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		pushedKey = r.Header.Get(HeaderKey)
		mu.Unlock()
	})

	// Teach n0 that n1 is loaded (via a manual gossip merge), then tick.
	n0.HandleGossip(n1.ID(), []gossip.Entry{{Rank: n1.self, Value: 5, Iter: 1}})
	n0.stealTick(context.Background())

	mu.Lock()
	defer mu.Unlock()
	if ranType != "sweep" {
		t.Fatalf("stolen job type = %q, want sweep", ranType)
	}
	if pushedKey != "k123" {
		t.Fatalf("push-back key = %q, want k123", pushedKey)
	}
	if n0.Stats().StealsRun != 1 {
		t.Fatalf("steals run = %d, want 1", n0.Stats().StealsRun)
	}
}

func TestStealTickSkipsWhenBusy(t *testing.T) {
	n0 := newTestNode(t, 0, 3, Options{}, Hooks{
		Load: func() int { return 3 }, // busy: never steal
		RunStolen: func(ctx context.Context, typ string, req json.RawMessage) (string, []byte, error) {
			panic("must not run")
		},
	})
	n0.HandleGossip("n1", []gossip.Entry{{Rank: 1, Value: 10, Iter: 1}})
	n0.stealTick(context.Background())
	if got := n0.Stats().StealsRun; got != 0 {
		t.Fatalf("steals run = %d, want 0", got)
	}
}

func TestStartCloseSingleton(t *testing.T) {
	node, err := New(Options{Self: "http://127.0.0.1:1", Peers: []string{"http://127.0.0.1:1"}}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	node.Start() // no-op for size 1
	node.Close()
}

func TestStartCloseLoops(t *testing.T) {
	n0, n1, mux0, mux1 := twoNodeHarness(t,
		Hooks{Load: func() int { return 0 }},
		Hooks{Load: func() int { return 0 }})
	registerGossipHandler(mux0, n0)
	registerGossipHandler(mux1, n1)
	n0.gossipEvery, n1.gossipEvery = 5*time.Millisecond, 5*time.Millisecond
	n0.stealEvery, n1.stealEvery = 5*time.Millisecond, 5*time.Millisecond
	n0.Start()
	n1.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n0.Stats().GossipExchanges > 0 && n1.Stats().GossipExchanges > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	n0.Close()
	n1.Close()
	if n0.Stats().GossipExchanges == 0 || n1.Stats().GossipExchanges == 0 {
		t.Fatal("gossip loops never exchanged")
	}
}

func TestRingCollisionDeterminism(t *testing.T) {
	// Degenerate ring inputs must not panic and stay deterministic.
	r := buildRing(nil, 64)
	if got := r.owners("k", 2); got != nil {
		t.Fatalf("owners on empty ring = %v, want nil", got)
	}
	r = buildRing([]string{"http://a:1"}, 0)
	if got := r.owners("k", 2); got != nil {
		t.Fatalf("owners with zero vnodes = %v, want nil", got)
	}
}
