package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over the member list: every member owns
// VirtualNodes points on a 64-bit circle, and a key's replica set is the
// first Replication distinct members clockwise from the key's hash. The
// ring is a pure function of the sorted peer URLs, so every node — given
// the same -peers flag — computes the same placement without coordination;
// gossip only has to agree on liveness, not on the map itself.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	member int
}

// hash64 hashes s onto the ring circle. Raw FNV-1a clusters nearby inputs
// (strings differing only in a trailing counter land within ~2^44 of each
// other, a sliver of a 2^64 circle), which would pile all of a member's
// virtual nodes into a few clumps; the splitmix64 finalizer avalanches the
// FNV sum so points spread uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// buildRing places virtualNodes points per member, sorted by hash (ties
// broken by member index so the ring is deterministic even on collisions).
func buildRing(urls []string, virtualNodes int) ring {
	points := make([]ringPoint, 0, len(urls)*virtualNodes)
	for i, u := range urls {
		for v := 0; v < virtualNodes; v++ {
			points = append(points, ringPoint{hash: hash64(u + "|" + strconv.Itoa(v)), member: i})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].member < points[b].member
	})
	return ring{points: points}
}

// owners returns the indices of the first n distinct members clockwise from
// key's hash, in ring order: owners(key)[0] is the primary, the rest are
// the replicas that take over (in order) when it is unreachable.
func (r ring) owners(key string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, p.member)
	}
	return out
}
