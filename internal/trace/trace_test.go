package trace

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 0.4)
	tb.AddRow("long-name-here", 123456.789)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule missing: %q", lines[1])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "0.4") {
		t.Errorf("row content missing:\n%s", out)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// Column b must start at the same offset in every data row.
	posY := strings.Index(lines[2], "y")
	posZ := strings.Index(lines[3], "z")
	if posY != posZ {
		t.Errorf("columns misaligned: %d vs %d\n%s", posY, posZ, tb.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddStringRow("plain", "1")
	tb.AddStringRow(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "k,v\n") {
		t.Errorf("CSV header wrong: %s", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
	s := Sparkline([]float64{0, 0.5, 1})
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("extremes wrong: %s", s)
	}
	// Constant series: all minimum level.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render at level 0: %s", string(flat))
		}
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{1, 1, 3, 3, 5, 5}
	out := Downsample(xs, 3)
	want := []float64{1, 3, 5}
	if len(out) != 3 {
		t.Fatalf("length = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Downsample = %v, want %v", out, want)
		}
	}
	// No-op cases copy.
	same := Downsample(xs, 100)
	if len(same) != len(xs) {
		t.Error("upsample should copy")
	}
	same[0] = 99
	if xs[0] == 99 {
		t.Error("Downsample aliases input")
	}
	if got := Downsample(xs, 0); len(got) != len(xs) {
		t.Error("n=0 should copy")
	}
}

func TestUsagePlot(t *testing.T) {
	usage := make([]float64, 100)
	for i := range usage {
		usage[i] = 0.5
	}
	out := UsagePlot("standard", usage, []int{0, 50, 99}, 50)
	if !strings.Contains(out, "standard") {
		t.Error("label missing")
	}
	if !strings.Contains(out, "^") {
		t.Error("LB markers missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	// Marker row has carets at start, middle, end.
	markers := lines[2]
	if !strings.Contains(markers, "^") {
		t.Error("no carets rendered")
	}
	// Zero width falls back to default.
	if UsagePlot("x", usage, nil, 0) == "" {
		t.Error("zero width should still render")
	}
}

func TestParseCSVMatrixWithHeader(t *testing.T) {
	header, rows, err := ParseCSVMatrix(strings.NewReader("a, b ,c\n1,2,3\n\n4.5, 5 ,6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 3 || header[0] != "a" || header[1] != "b" || header[2] != "c" {
		t.Fatalf("header = %v", header)
	}
	if len(rows) != 2 || rows[0][0] != 1 || rows[1][0] != 4.5 || rows[1][2] != 6 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestParseCSVMatrixWithoutHeader(t *testing.T) {
	header, rows, err := ParseCSVMatrix(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Fatalf("header = %v, want nil", header)
	}
	if len(rows) != 2 || rows[1][1] != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestParseCSVMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":                 "",
		"header only":           "a,b,c\n",
		"ragged data":           "1,2\n1,2,3\n",
		"non-numeric data row":  "1,2\n1,x\n",
		"header width mismatch": "a,b,c\n1,2\n",
	}
	for name, in := range cases {
		if _, _, err := ParseCSVMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestParseCSVMatrixRoundTripsWriteCSV(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow(1.5, 2.5)
	tb.AddRow(3.0, 4.0)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	header, rows, err := ParseCSVMatrix(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "x" {
		t.Fatalf("header = %v", header)
	}
	if len(rows) != 2 || rows[0][0] != 1.5 || rows[1][1] != 4 {
		t.Fatalf("rows = %v", rows)
	}
}
