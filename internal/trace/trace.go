// Package trace renders experiment results for terminals and files: aligned
// text tables, CSV series, and ASCII sparkline plots of time series such as
// the PE-usage traces of Fig. 4b. It is presentation-only; all measurement
// lives in the runner and experiment drivers.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddStringRow appends a pre-formatted row.
func (t *Table) AddStringRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table with padded columns and a header rule.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(t.header))
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table as comma-separated values. Cells containing
// commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// ParseCSVMatrix parses a rectangular numeric CSV matrix: one row per line,
// comma-separated float64 cells. A first line whose cells do not all parse
// as numbers is treated as a header and returned separately (nil when the
// file starts directly with data). Blank lines are skipped. Every data row
// must have the same width; a ragged or non-numeric data row is an error.
// It is the read-side counterpart of Table.WriteCSV and the loader behind
// trace-replay workloads: row i holds the per-item weights of iteration i.
func ParseCSVMatrix(r io.Reader) (header []string, rows [][]float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cells := strings.Split(line, ",")
		row := make([]float64, len(cells))
		ok := true
		for i, c := range cells {
			v, perr := strconv.ParseFloat(strings.TrimSpace(c), 64)
			if perr != nil {
				ok = false
				break
			}
			row[i] = v
		}
		switch {
		case !ok && header == nil && len(rows) == 0:
			header = make([]string, len(cells))
			for i, c := range cells {
				header[i] = strings.TrimSpace(c)
			}
		case !ok:
			return nil, nil, fmt.Errorf("trace: line %d: non-numeric cell in data row", lineNo)
		case len(rows) > 0 && len(row) != len(rows[0]):
			return nil, nil, fmt.Errorf("trace: line %d: %d cells, want %d (ragged matrix)",
				lineNo, len(row), len(rows[0]))
		default:
			rows = append(rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("trace: no data rows")
	}
	if header != nil && len(header) != len(rows[0]) {
		return nil, nil, fmt.Errorf("trace: header has %d cells, data rows have %d", len(header), len(rows[0]))
	}
	return header, rows, nil
}

// sparkLevels are the eight block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a one-line block-character plot scaled to
// [min, max] of the data. Empty input renders as an empty string.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		level := 0
		if max > min {
			level = int((x - min) / (max - min) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}

// Downsample reduces a series to at most n points by averaging buckets,
// keeping sparkline plots terminal-width friendly.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(xs) / n
		hi := (i + 1) * len(xs) / n
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range xs[lo:hi] {
			sum += x
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// UsagePlot renders a labeled PE-usage trace (values in [0,1]) with LB-call
// markers, the terminal analogue of Fig. 4b: one sparkline row for the
// usage, one marker row with '^' under iterations where the balancer ran.
func UsagePlot(label string, usage []float64, lbIters []int, width int) string {
	if width <= 0 {
		width = 80
	}
	ds := Downsample(usage, width)
	markers := make([]rune, len(ds))
	for i := range markers {
		markers[i] = ' '
	}
	for _, it := range lbIters {
		pos := it * len(ds) / len(usage)
		if pos >= len(ds) {
			pos = len(ds) - 1
		}
		markers[pos] = '^'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  usage |%s|\n  LB    |%s|\n", label, Sparkline(ds), string(markers))
	return b.String()
}
