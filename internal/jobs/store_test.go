package jobs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok, err := s.Get("missing"); ok || err != nil {
		t.Fatalf("Get(missing) = ok=%v err=%v, want absent", ok, err)
	}
	bodies := map[string][]byte{
		"aaaa": []byte(`{"x":1}` + "\n"),
		"bbbb": []byte("raw bytes with\nnewlines\x00and nulls"),
		"cccc": {},
	}
	for k, b := range bodies {
		if err := s.Put(k, b); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	for k, want := range bodies {
		got, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%s) = %q ok=%v err=%v, want %q", k, got, ok, err, want)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}

	// Re-putting a known key is a no-op (determinism: same key, same body).
	if err := s.Put("aaaa", bodies["aaaa"]); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len after duplicate Put = %d, want 3", s.Len())
	}

	if err := s.Put("bad key", nil); err == nil {
		t.Fatal("Put with a whitespace key should fail")
	}
}

func TestStoreReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := range 10 {
		k := fmt.Sprintf("key%02d", i)
		b := bytes.Repeat([]byte{byte('a' + i)}, i*7)
		want[k] = b
		if err := s.Put(k, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reloaded Len = %d, want %d", s2.Len(), len(want))
	}
	seen := map[string][]byte{}
	var prev string
	s2.Range(func(k string, b []byte) bool {
		if k < prev {
			t.Errorf("Range out of key order: %q after %q", k, prev)
		}
		prev = k
		seen[k] = b
		return true
	})
	for k, b := range want {
		if !bytes.Equal(seen[k], b) {
			t.Errorf("reloaded %s = %q, want %q", k, seen[k], b)
		}
	}

	// Early stop: a false return ends the walk.
	calls := 0
	s2.Range(func(string, []byte) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("Range after early stop made %d calls, want 1", calls)
	}
}

// TestStoreTornTail pins crash tolerance: a record torn mid-append (the
// only damage a single-write append can suffer) is truncated away on the
// next Open, and every record before it survives.
func TestStoreTornTail(t *testing.T) {
	for _, cut := range []int{1, 5, 20} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("good", []byte("intact body")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("torn", bytes.Repeat([]byte("x"), 100)); err != nil {
				t.Fatal(err)
			}
			s.Close()

			path := filepath.Join(dir, resultsLog)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("Open after torn tail: %v", err)
			}
			defer s2.Close()
			if s2.Len() != 1 {
				t.Fatalf("Len after torn tail = %d, want 1", s2.Len())
			}
			body, ok, err := s2.Get("good")
			if err != nil || !ok || string(body) != "intact body" {
				t.Fatalf("Get(good) = %q ok=%v err=%v", body, ok, err)
			}
			// The torn key is recomputable and re-storable.
			if err := s2.Put("torn", bytes.Repeat([]byte("x"), 100)); err != nil {
				t.Fatal(err)
			}
			if got, ok, _ := s2.Get("torn"); !ok || len(got) != 100 {
				t.Fatalf("re-stored torn key = %d bytes ok=%v, want 100", len(got), ok)
			}
		})
	}
}

func TestCheckpointAppendLoadClear(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const key = "feedbeef"
	if lines, err := s.LoadCheckpoint(key); err != nil || lines != nil {
		t.Fatalf("empty checkpoint = %v, %v", lines, err)
	}
	want := [][]byte{
		[]byte(`{"index":2,"comparison":{"Gain":0.5}}`),
		[]byte(`{"index":0,"comparison":{"Gain":0.1}}`),
	}
	for _, l := range want {
		if err := s.AppendCheckpoint(key, l); err != nil {
			t.Fatal(err)
		}
	}
	lines, err := s.LoadCheckpoint(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(want) {
		t.Fatalf("loaded %d lines, want %d", len(lines), len(want))
	}
	for i := range want {
		if !bytes.Equal(lines[i], want[i]) {
			t.Errorf("line %d = %s, want %s", i, lines[i], want[i])
		}
	}

	// A torn final line (no newline) is dropped, earlier lines survive.
	path := s.checkpointPath(key)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":5,"compar`)
	f.Close()
	lines, err = s.LoadCheckpoint(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(want) {
		t.Fatalf("after torn line: %d lines, want %d", len(lines), len(want))
	}

	if err := s.ClearCheckpoint(key); err != nil {
		t.Fatal(err)
	}
	if lines, _ := s.LoadCheckpoint(key); lines != nil {
		t.Fatalf("checkpoint survived Clear: %v", lines)
	}
	if err := s.ClearCheckpoint(key); err != nil {
		t.Fatalf("double Clear: %v", err)
	}
}
