package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// wait polls a job until cond holds or the deadline passes.
func wait(t *testing.T, j *Job, what string, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, st, watch := j.EventsSince(0)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; job %+v", what, st)
		}
		select {
		case <-watch:
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(2, 0)
	defer m.Close(context.Background())

	j, err := m.Submit("sweep", "deadbeef", 3, "meta", func(ctx context.Context, j *Job) error {
		j.Begin(3, 1)
		for i := 0; i < 2; i++ {
			j.Event([]byte(fmt.Sprintf(`{"index":%d}`, i)))
			j.Advance()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.Meta() != "meta" || j.Key() != "deadbeef" {
		t.Fatalf("meta/key = %v/%s", j.Meta(), j.Key())
	}
	st := wait(t, j, "done", func(s Status) bool { return s.State == StateDone })
	if st.Progress != (Progress{Completed: 3, Resumed: 1, Total: 3}) {
		t.Fatalf("progress = %+v", st.Progress)
	}
	if st.Started == nil || st.Finished == nil || st.Error != "" {
		t.Fatalf("status = %+v", st)
	}
	lines, _, _ := j.EventsSince(0)
	if len(lines) != 2 {
		t.Fatalf("events = %d, want 2", len(lines))
	}
	if lines, _, _ = j.EventsSince(1); len(lines) != 1 || string(lines[0]) != `{"index":1}` {
		t.Fatalf("EventsSince(1) = %q", lines)
	}

	got, ok := m.Get(j.ID())
	if !ok || got != j {
		t.Fatal("Get did not return the submitted job")
	}
	if list := m.List(); len(list) != 1 || list[0].ID != j.ID() {
		t.Fatalf("List = %+v", list)
	}
}

func TestJobFailureAndPanic(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close(context.Background())

	boom := errors.New("boom")
	j1, _ := m.Submit("sweep", "k1", 1, nil, func(ctx context.Context, j *Job) error { return boom })
	j2, _ := m.Submit("sweep", "k2", 1, nil, func(ctx context.Context, j *Job) error { panic("kaput") })
	j3, _ := m.Submit("sweep", "k3", 1, nil, func(ctx context.Context, j *Job) error { return nil })

	if st := wait(t, j1, "failure", func(s Status) bool { return s.State.Terminal() }); st.State != StateFailed || st.Error != "boom" {
		t.Fatalf("j1 = %+v", st)
	}
	if st := wait(t, j2, "panic failure", func(s Status) bool { return s.State.Terminal() }); st.State != StateFailed {
		t.Fatalf("j2 = %+v", st)
	}
	// The worker survived the panic and still runs the next job.
	if st := wait(t, j3, "post-panic job", func(s Status) bool { return s.State.Terminal() }); st.State != StateDone {
		t.Fatalf("j3 = %+v", st)
	}
	stats := m.Stats()
	if stats.Submitted != 3 || stats.Failed != 2 || stats.Done != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCancelRunningAndQueued(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close(context.Background())

	started := make(chan struct{})
	j1, _ := m.Submit("sweep", "k1", 1, nil, func(ctx context.Context, j *Job) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	j2, _ := m.Submit("sweep", "k2", 1, nil, func(ctx context.Context, j *Job) error { return nil })
	<-started

	// j2 is queued behind the single worker: cancelling it finishes it
	// immediately, without ever running.
	if st, ok := m.Cancel(j2.ID()); !ok || st.State != StateCancelled {
		t.Fatalf("queued cancel = %+v ok=%v", st, ok)
	}
	// Cancelling the running job cancels its context; it transitions when
	// the runner returns.
	if _, ok := m.Cancel(j1.ID()); !ok {
		t.Fatal("running cancel not found")
	}
	st := wait(t, j1, "running cancel", func(s Status) bool { return s.State.Terminal() })
	if st.State != StateCancelled {
		t.Fatalf("j1 = %+v", st)
	}
	// Cancelling a finished job leaves it alone.
	if st, ok := m.Cancel(j1.ID()); !ok || st.State != StateCancelled {
		t.Fatalf("finished cancel = %+v", st)
	}
	if _, ok := m.Cancel("j999999"); ok {
		t.Fatal("Cancel of unknown id reported found")
	}
}

func TestRetentionPrune(t *testing.T) {
	m := NewManager(1, time.Hour)
	defer m.Close(context.Background())
	clock := time.Now()
	m.now = func() time.Time { return clock }

	j, _ := m.Submit("sweep", "k", 1, nil, func(ctx context.Context, j *Job) error { return nil })
	wait(t, j, "done", func(s Status) bool { return s.State == StateDone })

	clock = clock.Add(30 * time.Minute)
	if _, ok := m.Get(j.ID()); !ok {
		t.Fatal("job pruned before retention expired")
	}
	clock = clock.Add(2 * time.Hour)
	if _, ok := m.Get(j.ID()); ok {
		t.Fatal("job survived past retention")
	}
	if st := m.Stats(); st.Submitted != 1 || st.Done != 0 {
		t.Fatalf("stats after prune = %+v", st)
	}
}

func TestWorkerBound(t *testing.T) {
	const workers = 2
	m := NewManager(workers, 0)
	defer m.Close(context.Background())

	var running, peak atomic.Int32
	block := make(chan struct{})
	jobs := make([]*Job, 6)
	for i := range jobs {
		jobs[i], _ = m.Submit("sweep", fmt.Sprintf("k%d", i), 1, nil, func(ctx context.Context, j *Job) error {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-block
			running.Add(-1)
			return nil
		})
	}
	time.Sleep(100 * time.Millisecond)
	close(block)
	for _, j := range jobs {
		wait(t, j, "done", func(s Status) bool { return s.State == StateDone })
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrent jobs = %d, want <= %d", got, workers)
	}
}

func TestCloseGracefulAndForced(t *testing.T) {
	m := NewManager(1, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	jRun, _ := m.Submit("sweep", "run", 1, nil, func(ctx context.Context, j *Job) error {
		close(started)
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	jQueued, _ := m.Submit("sweep", "queued", 1, nil, func(ctx context.Context, j *Job) error { return nil })
	<-started

	// Graceful path: the running job finishes inside the grace period; the
	// queued one is cancelled immediately.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := jRun.Status(); st.State != StateDone {
		t.Fatalf("running job after graceful close = %+v", st)
	}
	if st := jQueued.Status(); st.State != StateCancelled {
		t.Fatalf("queued job after close = %+v", st)
	}
	if _, err := m.Submit("sweep", "late", 1, nil, nil); err == nil {
		t.Fatal("Submit after Close should fail")
	}

	// Forced path: the grace period expires, the job's context is cancelled.
	m2 := NewManager(1, 0)
	started2 := make(chan struct{})
	j2, _ := m2.Submit("sweep", "stuck", 1, nil, func(ctx context.Context, j *Job) error {
		close(started2)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started2
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m2.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Close = %v, want deadline exceeded", err)
	}
	if st := j2.Status(); st.State != StateCancelled {
		t.Fatalf("stuck job after forced close = %+v", st)
	}
}

// TestQueueLimit pins the admission-control contract of the job queue:
// cold submissions beyond the configured depth fail with ErrQueueFull (and
// count as shed), while SubmitHot both bypasses the limit and jumps the
// queue, so already-computed work is never shed behind a cold backlog.
func TestQueueLimit(t *testing.T) {
	m := NewManager(1, 0)
	defer m.Close(context.Background())
	m.SetQueueLimit(2)

	started := make(chan struct{})
	release := make(chan struct{})
	blocker, _ := m.Submit("sweep", "blocker", 1, nil, func(ctx context.Context, j *Job) error {
		close(started)
		<-release
		return nil
	})
	<-started // the single worker is now occupied; the queue is empty

	var ranMu sync.Mutex
	var ran []string
	runner := func(name string) RunFunc {
		return func(ctx context.Context, j *Job) error {
			ranMu.Lock()
			ran = append(ran, name)
			ranMu.Unlock()
			return nil
		}
	}
	cold1, err := m.Submit("sweep", "cold1", 1, nil, runner("cold1"))
	if err != nil {
		t.Fatalf("cold1: %v", err)
	}
	cold2, err := m.Submit("sweep", "cold2", 1, nil, runner("cold2"))
	if err != nil {
		t.Fatalf("cold2: %v", err)
	}
	// Boundary: the queue holds exactly limit jobs; the next cold submit
	// sheds without creating a job.
	if _, err := m.Submit("sweep", "cold3", 1, nil, runner("cold3")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-limit Submit = %v, want ErrQueueFull", err)
	}
	// A hot submission is exempt from the limit and runs before the
	// queued cold jobs.
	hot, err := m.SubmitHot("sweep", "hot", 1, nil, runner("hot"))
	if err != nil {
		t.Fatalf("SubmitHot: %v", err)
	}
	if st := m.Stats(); st.Shed != 1 || st.QueueLimit != 2 || st.Queued != 3 {
		t.Fatalf("stats = %+v, want shed=1 limit=2 queued=3", st)
	}

	close(release)
	wait(t, blocker, "blocker done", func(s Status) bool { return s.State == StateDone })
	wait(t, hot, "hot done", func(s Status) bool { return s.State == StateDone })
	wait(t, cold1, "cold1 done", func(s Status) bool { return s.State == StateDone })
	wait(t, cold2, "cold2 done", func(s Status) bool { return s.State == StateDone })

	ranMu.Lock()
	defer ranMu.Unlock()
	if len(ran) != 3 || ran[0] != "hot" {
		t.Fatalf("run order = %v, want hot first of three", ran)
	}
}
