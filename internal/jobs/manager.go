package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// State is one stage of the job lifecycle. The machine is linear with two
// exits: Queued -> Running -> Done | Failed, and Cancelled can preempt from
// Queued or Running. Finished states (Done, Failed, Cancelled) are terminal.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a finished state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress counts a job's completed units. Resumed is how many of them were
// recovered from a persisted checkpoint rather than computed by this job —
// the observable difference between resuming and recomputing.
type Progress struct {
	Completed int `json:"completed"`
	Resumed   int `json:"resumed"`
	Total     int `json:"total"`
}

// Status is a point-in-time snapshot of one job, JSON-shaped for the HTTP
// surface.
type Status struct {
	ID       string     `json:"id"`
	Type     string     `json:"type"`
	Key      string     `json:"key"`
	State    State      `json:"state"`
	Progress Progress   `json:"progress"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// RunFunc computes one job. It reports progress and as-completed events
// through j (Begin, Event, Advance) and must honor ctx — cancellation is
// how DELETE and server shutdown stop a running job. The result body does
// not pass through the manager: runners deliver it to the result cache and
// store under the job's key.
type RunFunc func(ctx context.Context, j *Job) error

// Job is one submitted computation. All exported methods are safe for
// concurrent use.
type Job struct {
	id   string
	typ  string
	key  string
	meta any
	run  RunFunc

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	leased    bool // handed to a work-stealing peer while queued
	completed int
	resumed   int
	total     int
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	events    [][]byte
	watch     chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the content address the job computes — the same canonical
// request hash the result cache and store use.
func (j *Job) Key() string { return j.key }

// Meta returns the opaque submitter-attached value (the server stashes the
// parsed request here so GET .../result can recompute after eviction).
func (j *Job) Meta() any { return j.meta }

// bumpLocked wakes every watcher. Callers hold j.mu.
func (j *Job) bumpLocked() {
	close(j.watch)
	j.watch = make(chan struct{})
}

// Begin declares the job's real unit count and how many units a checkpoint
// already supplied. Runners call it once computation actually starts; a job
// served whole from the cache or store never does (Done then snaps
// completed to total).
func (j *Job) Begin(total, resumed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total = total
	j.resumed = resumed
	j.completed = resumed
	j.bumpLocked()
}

// Event appends one as-completed NDJSON line to the job's event log, which
// GET /v1/jobs/{id}/stream replays and follows.
func (j *Job) Event(line []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, append([]byte(nil), line...))
	j.bumpLocked()
}

// Advance counts one freshly computed unit.
func (j *Job) Advance() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed++
	j.bumpLocked()
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	st := Status{
		ID:       j.id,
		Type:     j.typ,
		Key:      j.key,
		State:    j.state,
		Progress: Progress{Completed: j.completed, Resumed: j.resumed, Total: j.total},
		Error:    j.errMsg,
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// EventsSince returns the event lines from index i on, the current status,
// and a channel that closes on the next change — the follow primitive of
// the job stream endpoint.
func (j *Job) EventsSince(i int) ([][]byte, Status, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var lines [][]byte
	if i < len(j.events) {
		lines = j.events[i:len(j.events):len(j.events)]
	}
	return lines, j.statusLocked(), j.watch
}

// finish records the run outcome. Context-shaped errors mean the job was
// stopped (DELETE or shutdown), not that it is wrong — they land in
// Cancelled; everything else is Failed.
func (j *Job) finish(now time.Time, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = now
	switch {
	case err == nil:
		j.state = StateDone
		j.completed = j.total
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.bumpLocked()
}

// Manager owns the job table and the bounded worker pool that drains it.
// Build it with NewManager; a Manager is safe for concurrent use.
type Manager struct {
	retention time.Duration
	now       func() time.Time

	ctx       context.Context
	cancelAll context.CancelFunc

	mu         sync.Mutex
	cond       *sync.Cond
	jobs       map[string]*Job
	order      []*Job // submission order; List reports newest first
	queue      []*Job // FIFO of jobs awaiting a worker
	queueLimit int    // 0 = unbounded; Submit sheds beyond it
	seq        int
	closed     bool
	submitted  uint64
	stolen     uint64
	shed       uint64

	wg sync.WaitGroup
}

// NewManager starts a manager with the given worker count (<= 0 selects
// GOMAXPROCS, the repo-wide convention) and retention: finished jobs older
// than retention are pruned from the table on the next access (0 keeps them
// forever).
func NewManager(workers int, retention time.Duration) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		retention: retention,
		now:       time.Now,
		ctx:       ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
	}
	m.cond = sync.NewCond(&m.mu)
	for range workers {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// ErrQueueFull rejects a submission when the queue has reached the
// configured depth limit — the admission-control signal the server maps to
// 429 Too Many Requests. The job was never created; resubmitting later is
// safe and free (determinism makes retries idempotent by content address).
var ErrQueueFull = errors.New("jobs: queue is full")

// SetQueueLimit bounds how many jobs may wait for a worker at once; 0 (the
// default) is unbounded. Submissions beyond the bound fail with
// ErrQueueFull; SubmitHot is exempt. Set it before serving traffic.
func (m *Manager) SetQueueLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueLimit = n
}

// Submit enqueues a job. total is the declared unit count for progress
// reporting (Begin may refine it); meta rides along for the submitter.
// When a queue limit is set and reached, Submit fails with ErrQueueFull.
func (m *Manager) Submit(typ, key string, total int, meta any, run RunFunc) (*Job, error) {
	return m.submit(typ, key, total, meta, run, false)
}

// SubmitHot is Submit for a job whose result already exists (the
// submitter has the key cached): it bypasses the queue-depth limit and
// jumps to the front of the queue, so a hot-key job completes promptly no
// matter how deep the cold backlog is — the job-surface half of the
// cache-hit fast path that keeps admission control from shedding work
// that costs nothing.
func (m *Manager) SubmitHot(typ, key string, total int, meta any, run RunFunc) (*Job, error) {
	return m.submit(typ, key, total, meta, run, true)
}

func (m *Manager) submit(typ, key string, total int, meta any, run RunFunc, hot bool) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("jobs: manager is shut down")
	}
	m.pruneLocked()
	if !hot && m.queueLimit > 0 && len(m.queue) >= m.queueLimit {
		m.shed++
		return nil, ErrQueueFull
	}
	m.seq++
	m.submitted++
	ctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		id:      fmt.Sprintf("j%06d", m.seq),
		typ:     typ,
		key:     key,
		meta:    meta,
		run:     run,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		total:   total,
		created: m.now(),
		watch:   make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	if hot {
		m.queue = append([]*Job{j}, m.queue...)
	} else {
		m.queue = append(m.queue, j)
	}
	m.cond.Signal()
	return j, nil
}

// Get looks a job up by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every retained job, newest submission first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	m.pruneLocked()
	jobsCopy := make([]*Job, len(m.order))
	copy(jobsCopy, m.order)
	m.mu.Unlock()
	out := make([]Status, 0, len(jobsCopy))
	for i := len(jobsCopy) - 1; i >= 0; i-- {
		out = append(out, jobsCopy[i].Status())
	}
	return out
}

// Cancel requests cancellation: a queued job finishes immediately as
// Cancelled, a running job has its context cancelled and transitions when
// its runner returns, a finished job is left as it is. The returned Status
// is the job's state after the request.
func (m *Manager) Cancel(id string) (Status, bool) {
	j, ok := m.Get(id)
	if !ok {
		return Status{}, false
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = m.now()
		j.errMsg = "cancelled before start"
		j.bumpLocked()
	}
	st := j.statusLocked()
	j.mu.Unlock()
	// Cancel the context outside the job lock (the runner may be
	// mid-Event). For a job that never ran — cancelled while queued — this
	// is also what releases its context from the manager's tree.
	if st.State == StateCancelled || st.State == StateRunning {
		j.cancel()
	}
	return st, true
}

// Stats is the manager's counter snapshot for GET /v1/stats.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	// Stolen counts queued jobs leased to work-stealing cluster peers.
	// A stolen job still runs locally — the lease only means a peer is
	// (probably) turning it into a cache hit.
	Stolen uint64 `json:"stolen"`
	// Shed counts submissions rejected by the queue-depth limit
	// (ErrQueueFull); QueueLimit is the configured bound (0 = unbounded).
	Shed       uint64 `json:"shed"`
	QueueLimit int    `json:"queue_limit"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Cancelled  int    `json:"cancelled"`
}

// Stats counts the retained jobs by state (plus the cumulative submission
// counter, which pruning never decreases).
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	m.pruneLocked()
	jobsCopy := make([]*Job, len(m.order))
	copy(jobsCopy, m.order)
	st := Stats{Submitted: m.submitted, Stolen: m.stolen, Shed: m.shed, QueueLimit: m.queueLimit}
	m.mu.Unlock()
	for _, j := range jobsCopy {
		switch j.Status().State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// QueuedLen reports how many jobs are awaiting a worker — the load figure
// the cluster layer gossips so idle peers can pick steal victims.
func (m *Manager) QueuedLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// StealQueued leases the oldest eligible queued job to a work-stealing
// peer and returns its submission. A lease does not dequeue the job — it
// still runs on a local worker, where it typically completes instantly once
// the thief pushes the computed body back — it only guarantees each job is
// handed to at most one thief, the owner-side half of the cluster-wide
// single-flight contract. eligible (may be nil for "all") filters by key;
// the server passes "not already cached locally".
func (m *Manager) StealQueued(eligible func(key string) bool) (typ, key string, meta any, ok bool) {
	m.mu.Lock()
	queue := make([]*Job, len(m.queue))
	copy(queue, m.queue)
	m.mu.Unlock()
	for _, j := range queue {
		j.mu.Lock()
		if j.state != StateQueued || j.leased || (eligible != nil && !eligible(j.key)) {
			j.mu.Unlock()
			continue
		}
		j.leased = true
		typ, key, meta = j.typ, j.key, j.meta
		j.mu.Unlock()
		m.mu.Lock()
		m.stolen++
		m.mu.Unlock()
		return typ, key, meta, true
	}
	return "", "", nil, false
}

// pruneLocked drops finished jobs older than the retention window. Callers
// hold m.mu.
func (m *Manager) pruneLocked() {
	if m.retention <= 0 {
		return
	}
	cutoff := m.now().Add(-m.retention)
	kept := m.order[:0]
	for _, j := range m.order {
		j.mu.Lock()
		stale := j.state.Terminal() && !j.finished.IsZero() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if stale {
			delete(m.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// worker drains the queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()

		j.mu.Lock()
		if j.state != StateQueued { // cancelled while waiting
			j.mu.Unlock()
			j.cancel() // idempotent: release the context resources
			continue
		}
		j.state = StateRunning
		j.started = m.now()
		j.bumpLocked()
		j.mu.Unlock()

		err := runJob(j)
		j.finish(m.now(), err)
		j.cancel() // release the context resources
	}
}

// runJob invokes the runner with panic containment: a panicking job fails
// alone instead of taking the worker (and every queued job) with it.
func runJob(j *Job) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("jobs: job panicked: %v", p)
		}
	}()
	return j.run(j.ctx, j)
}

// Close shuts the manager down: no new submissions, queued jobs are
// cancelled immediately, and running jobs get until ctx expires to finish —
// after that their contexts are cancelled and their (continuously
// checkpointed) partial state is what a resubmission resumes from. Close
// returns once every worker has exited.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	queued := m.queue
	m.queue = nil
	m.cond.Broadcast()
	m.mu.Unlock()

	now := m.now()
	for _, j := range queued {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCancelled
			j.finished = now
			j.errMsg = "server shutting down"
			j.bumpLocked()
		}
		j.mu.Unlock()
		j.cancel()
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.cancelAll()
		<-done
	}
	m.cancelAll()
	return err
}
