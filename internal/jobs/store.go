// Package jobs is the asynchronous half of the service layer: a persistent
// content-addressed result store and a bounded-worker job queue with a
// queued → running → done/failed/cancelled state machine, per-job progress
// counters, and an as-completed event log.
//
// The package is deliberately engine-agnostic — it moves opaque keys and
// byte slices. internal/server supplies the semantics: keys are the same
// canonical SHA-256 request hashes its result cache computes, bodies are
// fully rendered response bodies, and checkpoint lines are the NDJSON
// stream lines of the sweep engines. The determinism contract (DESIGN.md)
// is what makes persistence sound: a stored body is bit-identical to what
// recomputing the request would produce, so serving it — across restarts —
// is unobservable except in latency and counters.
package jobs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is the on-disk half of the result cache: an append-only log of
// (key, body) records plus per-key checkpoint files for partially computed
// batches. A Store survives process crashes by construction — every record
// and checkpoint line is appended with a single write, and loading discards
// a torn tail instead of refusing the file. Open builds one; a Store is
// safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	log     *os.File
	offsets map[string]recordAt // key -> latest record position
	size    int64               // current append offset of results.log
	bytes   int64               // sum of stored body lengths (latest records)
}

// recordAt locates one stored body inside results.log.
type recordAt struct {
	off int64
	len int64
}

const (
	resultsLog    = "results.log"
	checkpointDir = "checkpoints"
	// recordMagic guards each record header so a scan can tell a torn tail
	// from a format change.
	recordMagic = "ulba1"
)

// Open opens (creating if needed) the store rooted at dir and scans the
// result log into the in-memory key index. A torn final record — the
// signature of a crash mid-append — is truncated away; everything before it
// is served. Duplicate keys keep the latest record (determinism makes the
// bodies identical anyway, so this is bookkeeping, not semantics).
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: store directory must not be empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, checkpointDir), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store: %w", err)
	}
	path := filepath.Join(dir, resultsLog)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening %s: %w", resultsLog, err)
	}
	s := &Store{dir: dir, log: f, offsets: make(map[string]recordAt)}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan walks the log from the start, indexing every complete record and
// truncating the file at the first torn or corrupt one.
func (s *Store) scan() error {
	rd := bufio.NewReaderSize(io.NewSectionReader(s.log, 0, 1<<62), 1<<16)
	var off int64
	for {
		header, err := rd.ReadString('\n')
		if err == io.EOF && header == "" {
			break // clean end
		}
		key, n, ok := parseHeader(header, err == nil)
		if !ok {
			break // torn or corrupt tail: truncate below
		}
		bodyOff := off + int64(len(header))
		if _, err := io.CopyN(io.Discard, rd, n+1); err != nil {
			break // body (or its trailing newline) torn
		}
		if prev, dup := s.offsets[key]; dup {
			s.bytes -= prev.len
		}
		s.offsets[key] = recordAt{off: bodyOff, len: n}
		s.bytes += n
		off = bodyOff + n + 1
	}
	if err := s.log.Truncate(off); err != nil {
		return fmt.Errorf("jobs: truncating torn tail of %s: %w", resultsLog, err)
	}
	s.size = off
	return nil
}

// parseHeader validates one "ulba1 <key> <len>\n" record header. complete
// reports whether the line ended in a newline (an unterminated final line is
// a torn write, never an error).
func parseHeader(line string, complete bool) (key string, bodyLen int64, ok bool) {
	if !complete || !strings.HasSuffix(line, "\n") {
		return "", 0, false
	}
	fields := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(fields) != 3 || fields[0] != recordMagic || fields[1] == "" {
		return "", 0, false
	}
	n, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || n < 0 {
		return "", 0, false
	}
	return fields[1], n, true
}

// Get reads the stored body for key, if any.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	rec, ok := s.offsets[key]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	body := make([]byte, rec.len)
	if _, err := s.log.ReadAt(body, rec.off); err != nil {
		return nil, false, fmt.Errorf("jobs: reading stored result: %w", err)
	}
	return body, true, nil
}

// Put appends a (key, body) record. The whole record — header, body,
// trailing newline — goes down in one write, so a crash can tear at most
// the final record, which the next Open truncates away. Re-putting a known
// key is a no-op: determinism makes the bodies identical.
func (s *Store) Put(key string, body []byte) error {
	if strings.ContainsAny(key, " \n") {
		return fmt.Errorf("jobs: store key %q contains whitespace", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.offsets[key]; ok {
		return nil
	}
	rec := make([]byte, 0, len(key)+len(body)+32)
	rec = append(rec, recordMagic...)
	rec = append(rec, ' ')
	rec = append(rec, key...)
	rec = fmt.Appendf(rec, " %d\n", len(body))
	headerLen := int64(len(rec))
	rec = append(rec, body...)
	rec = append(rec, '\n')
	// WriteAt against the tracked size keeps the in-memory offset
	// authoritative: a short write (disk full) leaves junk past s.size,
	// which the next successful Put simply overwrites — the file offset
	// can never silently desync from the index.
	if _, err := s.log.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("jobs: appending result: %w", err)
	}
	s.offsets[key] = recordAt{off: s.size + headerLen, len: int64(len(body))}
	s.size += int64(len(rec))
	s.bytes += int64(len(body))
	return nil
}

// Len is the number of distinct stored keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.offsets)
}

// Bytes is the total size of the stored bodies (latest record per key).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Range calls fn for every stored (key, body) pair in key order (sorted so
// iteration — and anything seeded from it, like the server's warm cache —
// is deterministic), stopping early when fn returns false. A read error
// skips the record.
func (s *Store) Range(fn func(key string, body []byte) bool) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.offsets))
	for k := range s.offsets {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if body, ok, err := s.Get(k); ok && err == nil {
			if !fn(k, body) {
				return
			}
		}
	}
}

// checkpointPath is the per-key checkpoint file. Keys are hex SHA-256
// digests, so they are always safe path components.
func (s *Store) checkpointPath(key string) string {
	return filepath.Join(s.dir, checkpointDir, key+".ndjson")
}

// Checkpoint is an open append handle on one key's checkpoint file. A job
// opens it once and appends a line per completed unit; each line goes down
// in a single O_APPEND write, so a crash tears at most the final line,
// which LoadCheckpoint discards.
type Checkpoint struct {
	f *os.File
}

// OpenCheckpoint opens (creating if needed) key's checkpoint file for
// appending.
func (s *Store) OpenCheckpoint(key string) (*Checkpoint, error) {
	f, err := os.OpenFile(s.checkpointPath(key), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening checkpoint: %w", err)
	}
	return &Checkpoint{f: f}, nil
}

// Append durably appends one completed-unit line (NDJSON, no trailing
// newline required).
func (c *Checkpoint) Append(line []byte) error {
	rec := make([]byte, 0, len(line)+1)
	rec = append(rec, bytes.TrimRight(line, "\n")...)
	rec = append(rec, '\n')
	if _, err := c.f.Write(rec); err != nil {
		return fmt.Errorf("jobs: appending checkpoint: %w", err)
	}
	return nil
}

// Close closes the handle (the file itself stays until ClearCheckpoint).
func (c *Checkpoint) Close() error { return c.f.Close() }

// AppendCheckpoint is the one-shot convenience form of OpenCheckpoint +
// Append + Close.
func (s *Store) AppendCheckpoint(key string, line []byte) error {
	c, err := s.OpenCheckpoint(key)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.Append(line)
}

// LoadCheckpoint returns the complete lines of key's checkpoint file, in
// append order, dropping an unterminated (torn) final line. A missing file
// is an empty checkpoint, not an error.
func (s *Store) LoadCheckpoint(key string) ([][]byte, error) {
	data, err := os.ReadFile(s.checkpointPath(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: reading checkpoint: %w", err)
	}
	var lines [][]byte
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn final line
		}
		if line := data[:nl]; len(line) > 0 {
			lines = append(lines, append([]byte(nil), line...))
		}
		data = data[nl+1:]
	}
	return lines, nil
}

// ClearCheckpoint removes key's checkpoint file, typically after the final
// body landed in the result log and the partial state has nothing left to
// protect.
func (s *Store) ClearCheckpoint(key string) error {
	err := os.Remove(s.checkpointPath(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Close closes the result log. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}
