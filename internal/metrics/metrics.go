// Package metrics provides the lock-cheap instrumentation primitives the
// serving tier records on every request: monotonic counters, a log-linear
// latency histogram, and a registry of per-endpoint families rendered in
// Prometheus text exposition format.
//
// Everything on the hot path is a single atomic add — no locks, no
// allocation — so instrumentation stays honest under the very load it is
// meant to measure. Reads (quantiles, rendering) take a point-in-time
// snapshot of the atomics; they are monotone but not transactionally
// consistent with concurrent writers, which is the standard contract for
// scrape-style metrics.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (HDR-style): values are bucketed by their
// power-of-two octave, and each octave is split into 2^subBits linear
// sub-buckets, bounding the relative quantile error by 2^-subBits (6.25%).
// Values are nanoseconds; the covered range is [0, 2^(subBits+octaves)),
// about nine minutes, beyond which values clamp into the top bucket.
const (
	subBits    = 4
	subCount   = 1 << subBits
	octaves    = 36
	numBuckets = subCount + octaves*subCount
)

// Histogram is a fixed-size log-linear latency histogram safe for
// concurrent use. The zero value is ready to record.
type Histogram struct {
	count atomic.Uint64
	sumNs atomic.Uint64
	// buckets[i] counts values whose nanosecond magnitude falls in
	// bucket i; see bucketIndex for the layout.
	buckets [numBuckets]atomic.Uint64
}

// bucketIndex maps a nanosecond value to its bucket. The first subCount
// buckets are exact (one per integer nanosecond); after that, bucket
// subCount + (exp-subBits)*subCount + sub covers the sub-th sixteenth of
// the octave [2^exp, 2^(exp+1)).
func bucketIndex(ns uint64) int {
	if ns < subCount {
		return int(ns)
	}
	exp := bits.Len64(ns) - 1
	if exp >= subBits+octaves {
		return numBuckets - 1
	}
	sub := (ns >> (uint(exp) - subBits)) & (subCount - 1)
	return subCount + (exp-subBits)*subCount + int(sub)
}

// bucketUpperNs returns the largest nanosecond value bucket i can hold.
func bucketUpperNs(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	g := (i - subCount) / subCount
	sub := uint64((i - subCount) % subCount)
	exp := uint(subBits + g)
	lower := uint64(1)<<exp + sub<<(exp-subBits)
	return lower + uint64(1)<<(exp-subBits) - 1
}

// Record adds one observation. Negative durations clamp to zero rather
// than corrupting the counts.
func (h *Histogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(uint64(ns))].Add(1)
	h.sumNs.Add(uint64(ns))
	h.count.Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all recorded observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Snapshot copies the histogram's atomics into an immutable value for
// quantile math and rendering.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sumNs.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.buckets = append(s.buckets, bucketCount{index: i, count: n})
		}
	}
	return s
}

// Quantile is shorthand for Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) time.Duration { return h.Snapshot().Quantile(q) }

type bucketCount struct {
	index int
	count uint64
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	SumNs   uint64
	buckets []bucketCount // non-empty buckets, ascending index
}

// Quantile returns an upper bound on the q-th quantile (0 <= q <= 1) of
// the recorded values, within the histogram's 6.25% relative error. An
// empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we want.
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for _, b := range s.buckets {
		seen += b.count
		if seen >= rank {
			return time.Duration(bucketUpperNs(b.index))
		}
	}
	return time.Duration(bucketUpperNs(numBuckets - 1))
}

// maxStatus bounds the per-family status-code table; HTTP status codes
// are three digits, so 600 atomic slots cover them all with zero locking.
const maxStatus = 600

// Family couples the latency histogram and status-code counters of one
// labeled series (an endpoint, in the server's use).
type Family struct {
	name     string
	latency  Histogram
	statuses [maxStatus]atomic.Uint64
}

// Name returns the label the family was registered under.
func (f *Family) Name() string { return f.name }

// Observe records one completed request: its status code and latency.
// Codes outside [0, 600) count under 0 so nothing is silently dropped.
func (f *Family) Observe(status int, d time.Duration) {
	f.latency.Record(d)
	if status < 0 || status >= maxStatus {
		status = 0
	}
	f.statuses[status].Add(1)
}

// Latency exposes the family's histogram for quantile reads.
func (f *Family) Latency() *Histogram { return &f.latency }

// Count returns the total observations across all status codes.
func (f *Family) Count() uint64 { return f.latency.Count() }

// StatusCount returns the observations recorded with the given code.
func (f *Family) StatusCount(code int) uint64 {
	if code < 0 || code >= maxStatus {
		code = 0
	}
	return f.statuses[code].Load()
}

// StatusCounts returns the non-zero status-code counters, keyed by code.
func (f *Family) StatusCounts() map[int]uint64 {
	out := map[int]uint64{}
	for code := range f.statuses {
		if n := f.statuses[code].Load(); n > 0 {
			out[code] = n
		}
	}
	return out
}

// Registry holds the per-endpoint families. Family registration takes a
// lock; observation does not.
type Registry struct {
	mu       sync.Mutex
	names    []string // registration order, for deterministic rendering
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*Family{}}
}

// Family returns the family registered under name, creating it on first
// use.
func (r *Registry) Family(name string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f := &Family{name: name}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// Families returns the registered families in registration order.
func (r *Registry) Families() []*Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Family, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.families[name])
	}
	return out
}

// WritePrometheus renders every family as two Prometheus metrics under
// the given prefix: <prefix>_requests_total{<label>,code} counters and a
// <prefix>_request_duration_seconds{<label>} histogram. Only non-empty
// buckets are emitted (plus the mandatory +Inf), which is valid
// exposition format and keeps the page proportional to observed traffic.
func (r *Registry) WritePrometheus(w io.Writer, prefix, label string) {
	families := r.Families()

	fmt.Fprintf(w, "# HELP %s_requests_total Requests completed, by %s and status code.\n", prefix, label)
	fmt.Fprintf(w, "# TYPE %s_requests_total counter\n", prefix)
	for _, f := range families {
		counts := f.StatusCounts()
		codes := make([]int, 0, len(counts))
		for code := range counts {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "%s_requests_total{%s=%q,code=\"%d\"} %d\n", prefix, label, f.name, code, counts[code])
		}
	}

	fmt.Fprintf(w, "# HELP %s_request_duration_seconds Request latency, by %s.\n", prefix, label)
	fmt.Fprintf(w, "# TYPE %s_request_duration_seconds histogram\n", prefix)
	for _, f := range families {
		s := f.latency.Snapshot()
		var cum uint64
		for _, b := range s.buckets {
			cum += b.count
			le := strconv.FormatFloat(float64(bucketUpperNs(b.index))/1e9, 'g', -1, 64)
			fmt.Fprintf(w, "%s_request_duration_seconds_bucket{%s=%q,le=%q} %d\n", prefix, label, f.name, le, cum)
		}
		fmt.Fprintf(w, "%s_request_duration_seconds_bucket{%s=%q,le=\"+Inf\"} %d\n", prefix, label, f.name, s.Count)
		fmt.Fprintf(w, "%s_request_duration_seconds_sum{%s=%q} %s\n", prefix, label, f.name,
			strconv.FormatFloat(float64(s.SumNs)/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "%s_request_duration_seconds_count{%s=%q} %d\n", prefix, label, f.name, s.Count)
	}
}

// WriteGauge renders one unlabeled gauge line in exposition format.
func WriteGauge(w io.Writer, name string, value float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name,
		strconv.FormatFloat(value, 'g', -1, 64))
}

// WriteCounter renders one unlabeled counter line in exposition format.
func WriteCounter(w io.Writer, name string, value uint64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, value)
}
