package metrics

import (
	"math"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketLayout proves the log-linear mapping is a partition: every
// value lands in a bucket whose bounds actually contain it, and the upper
// bounds are strictly increasing so cumulative rendering is monotone.
func TestBucketLayout(t *testing.T) {
	for i := 1; i < numBuckets; i++ {
		if bucketUpperNs(i) <= bucketUpperNs(i-1) {
			t.Fatalf("bucket %d upper %d not above bucket %d upper %d",
				i, bucketUpperNs(i), i-1, bucketUpperNs(i-1))
		}
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(40))
		i := bucketIndex(v)
		if v > bucketUpperNs(i) && i != numBuckets-1 {
			t.Fatalf("value %d above its bucket %d upper %d", v, i, bucketUpperNs(i))
		}
		if i > 0 && v <= bucketUpperNs(i-1) {
			t.Fatalf("value %d not above previous bucket %d upper %d", v, i-1, bucketUpperNs(i-1))
		}
	}
}

// TestQuantileRelativeError checks the advertised 6.25% bound: the
// reported quantile of a known distribution is an upper bound within one
// sub-bucket of the true order statistic.
func TestQuantileRelativeError(t *testing.T) {
	var h Histogram
	values := make([]int64, 0, 10000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		// Log-uniform over ~1us..1s to exercise many octaves.
		v := int64(math.Exp(rng.Float64()*math.Log(1e9/1e3))) * 1e3
		values = append(values, v)
		h.Record(time.Duration(v))
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d, want 10000", h.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(q*float64(len(values))+0.5) - 1
		sorted := append([]int64(nil), values...)
		sortInt64(sorted)
		truth := float64(sorted[idx])
		got := float64(h.Quantile(q))
		if got < truth {
			t.Errorf("q=%g: estimate %g below true value %g", q, got, truth)
		}
		if got > truth*(1+2.0/subCount) {
			t.Errorf("q=%g: estimate %g exceeds error bound around %g", q, got, truth)
		}
	}
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)   // clamps to 0
	h.Record(0)              //
	h.Record(24 * time.Hour) // clamps into the top bucket
	h.Record(time.Duration(1 << 62))
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if q := h.Quantile(0.25); q != 0 {
		t.Errorf("q0.25 = %v, want 0", q)
	}
	if q := h.Quantile(1); q < time.Duration(bucketUpperNs(numBuckets-1)) {
		t.Errorf("q1 = %v, below top bucket", q)
	}
}

// TestFamilyCountsAgree pins the core soak-harness invariant: a family's
// histogram count always equals the sum of its status counters.
func TestFamilyCountsAgree(t *testing.T) {
	r := NewRegistry()
	f := r.Family("POST /v1/sweep")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				status := 200
				if i%7 == 0 {
					status = 429
				}
				f.Observe(status, time.Duration(i)*time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	var sum uint64
	for _, n := range f.StatusCounts() {
		sum += n
	}
	if sum != f.Count() || f.Count() != 8000 {
		t.Fatalf("status sum %d, histogram count %d, want 8000", sum, f.Count())
	}
	if f.StatusCount(429) == 0 || f.StatusCount(200) == 0 {
		t.Fatalf("expected both 200 and 429 counts, got %v", f.StatusCounts())
	}
	if f.Observe(1234, time.Millisecond); f.StatusCount(0) != 1 {
		t.Errorf("out-of-range status not folded into code 0")
	}
}

func TestRegistryOrderStable(t *testing.T) {
	r := NewRegistry()
	names := []string{"b", "a", "c", "a", "b"}
	for _, n := range names {
		r.Family(n)
	}
	var got []string
	for _, f := range r.Families() {
		got = append(got, f.Name())
	}
	if strings.Join(got, ",") != "b,a,c" {
		t.Fatalf("families = %v, want registration order b,a,c", got)
	}
	if r.Family("a") != r.Family("a") {
		t.Fatal("Family is not idempotent")
	}
}

// TestWritePrometheus parses the rendered page back and checks the
// exposition-format invariants the scrapers (and our own loadgen -check
// mode) rely on: cumulative non-decreasing buckets ending in +Inf, and a
// _count line equal to the +Inf bucket and to the requests_total sum.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	f := r.Family("POST /v1/sweep")
	for i := 0; i < 500; i++ {
		status := 200
		if i%10 == 0 {
			status = 429
		}
		f.Observe(status, time.Duration(i)*time.Millisecond)
	}
	var b strings.Builder
	r.WritePrometheus(&b, "ulba_http", "endpoint")
	page := b.String()

	bucketRe := regexp.MustCompile(`^ulba_http_request_duration_seconds_bucket\{endpoint="POST /v1/sweep",le="([^"]+)"\} (\d+)$`)
	var lastCum uint64
	var lastLe float64 = -1
	var sawInf bool
	var infCount uint64
	for _, line := range strings.Split(page, "\n") {
		m := bucketRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		cum, _ := strconv.ParseUint(m[2], 10, 64)
		if cum < lastCum {
			t.Fatalf("cumulative bucket decreased: %s", line)
		}
		lastCum = cum
		if m[1] == "+Inf" {
			sawInf, infCount = true, cum
			continue
		}
		le, err := strconv.ParseFloat(m[1], 64)
		if err != nil || le <= lastLe {
			t.Fatalf("le bounds not increasing: %s", line)
		}
		lastLe = le
	}
	if !sawInf || infCount != 500 {
		t.Fatalf("+Inf bucket = %d (seen=%v), want 500", infCount, sawInf)
	}
	if !strings.Contains(page, `ulba_http_request_duration_seconds_count{endpoint="POST /v1/sweep"} 500`) {
		t.Fatalf("missing _count line in page:\n%s", page)
	}
	if !strings.Contains(page, `ulba_http_requests_total{endpoint="POST /v1/sweep",code="429"} 50`) {
		t.Fatalf("missing 429 counter in page:\n%s", page)
	}
	if !strings.Contains(page, `ulba_http_requests_total{endpoint="POST /v1/sweep",code="200"} 450`) {
		t.Fatalf("missing 200 counter in page:\n%s", page)
	}
}

func TestGaugeAndCounterHelpers(t *testing.T) {
	var b strings.Builder
	WriteGauge(&b, "ulba_inflight", 3)
	WriteCounter(&b, "ulba_shed_total", 42)
	out := b.String()
	for _, want := range []string{
		"# TYPE ulba_inflight gauge\nulba_inflight 3\n",
		"# TYPE ulba_shed_total counter\nulba_shed_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}
