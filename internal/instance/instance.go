// Package instance samples random application instances following Table II
// of the paper. The distributions model a 2D/3D computational-fluid-dynamics
// application with 1e7 cells per PE at 52..1165 FLOP per cell (after Tomczak
// & Szafran), an application-level workload increase rate of 1-30% of the
// per-PE workload, 80-100% of that increase concentrated on the overloading
// PEs, and a LB cost of 0.1-3x one iteration's compute time.
package instance

import (
	"ulba/internal/model"
	"ulba/internal/stats"
)

// Table II constants.
var (
	// PChoices is the set of PE counts sampled uniformly.
	PChoices = []int{256, 512, 1024, 2048}
)

const (
	// Gamma is the fixed number of iterations of every instance.
	Gamma = 100
	// Omega is the fixed PE speed: one GFLOPS, as in the paper.
	Omega = 1e9
	// W0PerPELo and W0PerPEHi bound the initial workload per PE in FLOP:
	// 1e7 cells x (52 .. 1165) FLOP/cell.
	W0PerPELo = 52e7
	W0PerPEHi = 1165e7
	// OverloadFracLo/Hi bound v in N = P*v.
	OverloadFracLo = 0.01
	OverloadFracHi = 0.2
	// GrowthFracLo/Hi bound x in DeltaW = (W0/P)*x.
	GrowthFracLo = 0.01
	GrowthFracHi = 0.3
	// SkewLo/Hi bound y: the share of DeltaW concentrated on overloading
	// PEs (m = DeltaW*y/N) versus spread evenly (a = DeltaW*(1-y)/P).
	SkewLo = 0.8
	SkewHi = 1.0
	// CostFracLo/Hi bound z in C = (W0/P)*z / omega seconds.
	CostFracLo = 0.1
	CostFracHi = 3.0
)

// Fig3Buckets lists the percentages of overloading PEs on the x-axis of
// Fig. 3 of the paper (log-spaced from 1% to 20%).
var Fig3Buckets = []float64{0.010, 0.016, 0.024, 0.034, 0.048, 0.065, 0.087, 0.115, 0.152, 0.200}

// Generator draws Table II instances deterministically from a seed.
type Generator struct {
	rng *stats.RNG
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed uint64) *Generator {
	return &Generator{rng: stats.NewRNG(seed)}
}

// Sample draws one complete instance with every parameter from Table II,
// including a random alpha (used by the Fig. 2 experiment, where alpha is an
// instance property rather than a tuned knob).
func (g *Generator) Sample() model.Params {
	p := g.SampleAt(g.rng.Uniform(OverloadFracLo, OverloadFracHi))
	p.Alpha = g.rng.Float64()
	return p
}

// SampleAt draws an instance with the fraction of overloading PEs pinned to
// overloadFrac and alpha left at zero, as needed by the Fig. 3 sweep where
// alpha is optimized per instance.
func (g *Generator) SampleAt(overloadFrac float64) model.Params {
	r := g.rng
	p := model.Params{
		P:     PChoices[r.Intn(len(PChoices))],
		Gamma: Gamma,
		Omega: Omega,
	}
	p.N = int(float64(p.P) * overloadFrac)
	if p.N < 1 {
		p.N = 1
	}
	if p.N >= p.P {
		p.N = p.P - 1
	}
	p.W0 = r.Uniform(W0PerPELo, W0PerPEHi) * float64(p.P)
	p.DeltaW = p.W0 / float64(p.P) * r.Uniform(GrowthFracLo, GrowthFracHi)
	y := r.Uniform(SkewLo, SkewHi)
	p.A = p.DeltaW * (1 - y) / float64(p.P)
	p.M = p.DeltaW * y / float64(p.N)
	p.C = p.W0 / float64(p.P) * r.Uniform(CostFracLo, CostFracHi) / p.Omega
	return p
}

// SampleMany draws n complete instances.
func (g *Generator) SampleMany(n int) []model.Params {
	out := make([]model.Params, n)
	for i := range out {
		out[i] = g.Sample()
	}
	return out
}

// Split derives an independent generator, for deterministic parallel
// experiment workers.
func (g *Generator) Split() *Generator {
	return &Generator{rng: g.rng.Split()}
}

// SynthScenario names one randomly drawn runtime scenario for the runtime
// sweep harness: which registered workload to run, at what scale, under
// which per-workload seed. The workload names come from the caller (the
// public registry lives above this package); the generator only draws the
// combination deterministically.
type SynthScenario struct {
	Workload   string
	P          int
	Iterations int
	Seed       uint64
}

// SynthPChoices is the set of PE counts runtime scenarios are sampled
// over. Runtime scenarios actually execute every rank as a goroutine, so
// the scale is laptop-sized rather than Table II's cluster-sized.
var SynthPChoices = []int{4, 8, 16}

// SampleSynthScenarios draws n runtime scenarios cycling deterministically
// through the given workload names: scenario i runs names[i%len(names)] on
// a sampled PE count for 60-160 iterations with a fresh workload seed.
// Cycling (rather than sampling) the names guarantees every workload
// appears whenever n >= len(names).
func (g *Generator) SampleSynthScenarios(names []string, n int) []SynthScenario {
	if len(names) == 0 {
		return nil
	}
	out := make([]SynthScenario, n)
	for i := range out {
		out[i] = SynthScenario{
			Workload:   names[i%len(names)],
			P:          SynthPChoices[g.rng.Intn(len(SynthPChoices))],
			Iterations: 60 + g.rng.Intn(101),
			Seed:       g.rng.Uint64(),
		}
	}
	return out
}

// TableIIRow describes one row of Table II for the table-reproduction
// harness.
type TableIIRow struct {
	Name         string
	Distribution string
}

// TableII returns the rows of Table II exactly as the generator implements
// them, so the printed table doubles as living documentation.
func TableII() []TableIIRow {
	return []TableIIRow{
		{"P", "Uniformly sampled on [256, 512, 1024, 2048]"},
		{"N", "P*v, v ~ Uniform(0.01, 0.2)"},
		{"gamma", "100"},
		{"Wtot(0)", "Uniform(52e7*P, 1165e7*P) FLOP"},
		{"DeltaW", "(Wtot(0)/P)*x, x ~ Uniform(0.01, 0.3)"},
		{"a", "(DeltaW/P)*(1-y), y ~ Uniform(0.8, 1.0)"},
		{"m", "(DeltaW/N)*y"},
		{"alpha", "Uniform(0.0, 1.0)"},
		{"C", "(Wtot(0)/P)*z / omega, z ~ Uniform(0.1, 3.0)"},
	}
}
