package instance

import (
	"testing"
	"testing/quick"
)

func TestSampleValid(t *testing.T) {
	g := NewGenerator(1)
	for i := 0; i < 500; i++ {
		p := g.Sample()
		if err := p.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v\n%v", i, err, p)
		}
	}
}

func TestSampleRanges(t *testing.T) {
	g := NewGenerator(2)
	seenP := map[int]bool{}
	for i := 0; i < 2000; i++ {
		p := g.Sample()
		seenP[p.P] = true
		frac := float64(p.N) / float64(p.P)
		// N = floor(P*v) with v >= 0.01 can round to slightly below 1%
		// of P only via the >=1 clamp; allow the floor effect.
		if frac > OverloadFracHi {
			t.Fatalf("N/P = %v out of range", frac)
		}
		if p.N < 1 || p.N >= p.P {
			t.Fatalf("N = %d out of range for P = %d", p.N, p.P)
		}
		perPE := p.W0 / float64(p.P)
		if perPE < W0PerPELo || perPE >= W0PerPEHi {
			t.Fatalf("W0/P = %g out of range", perPE)
		}
		growth := p.DeltaW / perPE
		if growth < GrowthFracLo || growth >= GrowthFracHi {
			t.Fatalf("DeltaW fraction = %g out of range", growth)
		}
		if p.Alpha < 0 || p.Alpha >= 1 {
			t.Fatalf("alpha = %g out of range", p.Alpha)
		}
		costFrac := p.C * p.Omega / perPE
		if costFrac < CostFracLo || costFrac >= CostFracHi {
			t.Fatalf("C fraction = %g out of range", costFrac)
		}
		if p.Gamma != Gamma || p.Omega != Omega {
			t.Fatalf("fixed parameters drifted: %+v", p)
		}
	}
	for _, want := range PChoices {
		if !seenP[want] {
			t.Errorf("P = %d never sampled in 2000 draws", want)
		}
	}
	if len(seenP) != len(PChoices) {
		t.Errorf("unexpected P values: %v", seenP)
	}
}

func TestSampleAtPinsFraction(t *testing.T) {
	g := NewGenerator(3)
	for _, frac := range Fig3Buckets {
		p := g.SampleAt(frac)
		want := int(float64(p.P) * frac)
		if want < 1 {
			want = 1
		}
		if p.N != want {
			t.Errorf("frac %v: N = %d, want %d (P=%d)", frac, p.N, want, p.P)
		}
		if p.Alpha != 0 {
			t.Errorf("SampleAt should leave alpha at 0, got %g", p.Alpha)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("frac %v: invalid: %v", frac, err)
		}
	}
}

func TestSampleAtExtremes(t *testing.T) {
	g := NewGenerator(4)
	p := g.SampleAt(0) // clamps N to 1
	if p.N != 1 {
		t.Errorf("N = %d, want clamp to 1", p.N)
	}
	p = g.SampleAt(1) // clamps N to P-1
	if p.N != p.P-1 {
		t.Errorf("N = %d, want clamp to P-1 = %d", p.N, p.P-1)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(42).SampleMany(50)
	b := NewGenerator(42).SampleMany(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instance %d differs between identical seeds", i)
		}
	}
	c := NewGenerator(43).SampleMany(50)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical instance streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewGenerator(7)
	s := g.Split()
	a := g.Sample()
	b := s.Sample()
	if a == b {
		t.Error("split generator mirrors parent")
	}
	// Split streams must also be reproducible.
	g2 := NewGenerator(7)
	s2 := g2.Split()
	g2.Sample()
	if got := s2.Sample(); got != b {
		t.Error("split stream is not reproducible")
	}
}

func TestFig3BucketsShape(t *testing.T) {
	if len(Fig3Buckets) != 10 {
		t.Fatalf("Fig. 3 has 10 buckets, got %d", len(Fig3Buckets))
	}
	if Fig3Buckets[0] != 0.01 || Fig3Buckets[len(Fig3Buckets)-1] != 0.20 {
		t.Errorf("bucket endpoints wrong: %v", Fig3Buckets)
	}
	for i := 1; i < len(Fig3Buckets); i++ {
		if Fig3Buckets[i] <= Fig3Buckets[i-1] {
			t.Errorf("buckets must increase: %v", Fig3Buckets)
		}
	}
}

func TestTableII(t *testing.T) {
	rows := TableII()
	if len(rows) != 9 {
		t.Fatalf("Table II has 9 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Name == "" || r.Distribution == "" {
			t.Errorf("empty row: %+v", r)
		}
	}
}

// Property: every sampled instance satisfies DeltaW = a*P + m*N exactly
// (workload bookkeeping identity) and has a positive Menon interval.
func TestInstanceIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGenerator(seed)
		p := g.Sample()
		if err := p.Validate(); err != nil {
			return false
		}
		tau, err := p.MenonTau()
		return err == nil && tau > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleSynthScenariosCyclesWorkloads(t *testing.T) {
	names := []string{"a", "b", "c"}
	scens := NewGenerator(7).SampleSynthScenarios(names, 7)
	if len(scens) != 7 {
		t.Fatalf("got %d scenarios", len(scens))
	}
	for i, sc := range scens {
		if sc.Workload != names[i%len(names)] {
			t.Fatalf("scenario %d runs %q, want %q", i, sc.Workload, names[i%len(names)])
		}
		okP := false
		for _, p := range SynthPChoices {
			if sc.P == p {
				okP = true
			}
		}
		if !okP {
			t.Fatalf("scenario %d has P = %d outside %v", i, sc.P, SynthPChoices)
		}
		if sc.Iterations < 60 || sc.Iterations > 160 {
			t.Fatalf("scenario %d has %d iterations", i, sc.Iterations)
		}
	}
	// Same seed, same scenarios — the pinned-trajectory contract.
	again := NewGenerator(7).SampleSynthScenarios(names, 7)
	for i := range scens {
		if scens[i] != again[i] {
			t.Fatalf("sampling is not deterministic at %d: %+v vs %+v", i, scens[i], again[i])
		}
	}
	if got := NewGenerator(7).SampleSynthScenarios(nil, 5); got != nil {
		t.Fatalf("no names should sample nothing, got %v", got)
	}
}
