package stats

import "math"

// LinearFit is the result of an ordinary least squares fit y = Slope*x +
// Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
}

// LinearRegression fits y = a*x + b to the paired samples by ordinary least
// squares. It returns a zero fit when fewer than two points are supplied or
// when all x values coincide. The ULBA runtime uses the slope of
// (iteration, workload) pairs as the workload increase rate (WIR) estimate.
func LinearRegression(xs, ys []float64) LinearFit {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinearFit{}
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{Intercept: my}
	}
	slope := sxy / sxx
	return LinearFit{Slope: slope, Intercept: my - slope*mx}
}

// SlopeOverIndex fits ys against their indices 0..n-1 and returns the slope.
// This is the WIR of a workload series sampled once per iteration.
func SlopeOverIndex(ys []float64) float64 {
	n := len(ys)
	if n < 2 {
		return 0
	}
	// x = 0..n-1, so mean(x) = (n-1)/2 and sxx has a closed form:
	// sum((i-mx)^2) = n*(n^2-1)/12.
	mx := float64(n-1) / 2
	my := Mean(ys)
	var sxy float64
	for i, y := range ys {
		sxy += (float64(i) - mx) * (y - my)
	}
	sxx := float64(n) * (float64(n)*float64(n) - 1) / 12
	if sxx == 0 {
		return 0
	}
	return sxy / sxx
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Slope*x + f.Intercept }

// Valid reports whether the fit contains finite coefficients.
func (f LinearFit) Valid() bool {
	return !math.IsNaN(f.Slope) && !math.IsInf(f.Slope, 0) &&
		!math.IsNaN(f.Intercept) && !math.IsInf(f.Intercept, 0)
}
