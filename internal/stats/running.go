package stats

import "math"

// Running accumulates mean and variance online using Welford's algorithm.
// The zero value is ready to use. It is the bookkeeping behind the runtime's
// average-LB-cost estimate (the C of the paper's trigger) and the WIR
// database statistics.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or NaN before any observation.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance, or NaN before any
// observation.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// Window is a fixed-capacity sliding window of float64 observations.
// It backs the median-of-last-three iteration-time smoothing of Algorithm 1
// and the sliding-window WIR regression.
type Window struct {
	buf  []float64
	head int
	full bool
}

// NewWindow returns a window holding at most capacity observations.
// It panics if capacity is not positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("stats: window capacity must be positive")
	}
	return &Window{buf: make([]float64, 0, capacity)}
}

// Push appends an observation, evicting the oldest if the window is full.
func (w *Window) Push(x float64) {
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, x)
		return
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % cap(w.buf)
	w.full = true
}

// Len returns the number of observations currently held.
func (w *Window) Len() int { return len(w.buf) }

// Values returns the observations in insertion order (oldest first).
// The returned slice is freshly allocated.
func (w *Window) Values() []float64 {
	out := make([]float64, 0, len(w.buf))
	for i := 0; i < len(w.buf); i++ {
		out = append(out, w.buf[(w.head+i)%len(w.buf)])
	}
	return out
}

// Median returns the median of the current window contents.
func (w *Window) Median() float64 { return Median(w.buf) }

// Mean returns the mean of the current window contents.
func (w *Window) Mean() float64 { return Mean(w.buf) }

// Reset empties the window without releasing its storage.
func (w *Window) Reset() {
	w.buf = w.buf[:0]
	w.head = 0
	w.full = false
}
