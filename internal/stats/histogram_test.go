package stats

import (
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1.9, 2, 5, 9.99, 10})
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10]
	want := []int{2, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
}

func TestHistogramOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-0.5)
	h.Add(2)
	h.Add(0.5)
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Errorf("outliers = (%d,%d), want (1,1)", under, over)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
}

func TestHistogramProbabilitySumsToOne(t *testing.T) {
	h := NewHistogram(-1, 1, 8)
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		h.Add(r.Uniform(-1, 1))
	}
	var sum float64
	for i := range h.Counts {
		sum += h.Probability(i)
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(-0.06, 0.02, 4)
	h.AddAll([]float64{-0.05, -0.01, -0.01, 0.01, 0.5})
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Error("render should contain bars")
	}
	if !strings.Contains(out, "outliers") {
		t.Error("render should mention outliers")
	}
	if lines := strings.Count(out, "\n"); lines < 4 {
		t.Errorf("render has %d lines, want >= 4", lines)
	}
	// Zero-width falls back to a default.
	if !strings.Contains(NewHistogram(0, 1, 1).Render(0), "|") {
		t.Error("render with width 0 should still work")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
		func() { NewHistogram(2, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramEmptyProbability(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Probability(0) != 0 {
		t.Error("empty histogram probability should be 0")
	}
}
