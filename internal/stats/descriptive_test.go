package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSumMean(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum = %v, want 6.5", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := SampleVariance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7.0)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance single = %v, want 0", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of one element should be NaN")
	}
}

func TestZScoreUniformPopulation(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	if got := ZScore(5, xs); got != 0 {
		t.Errorf("ZScore in constant population = %v, want 0", got)
	}
}

func TestZScoreSingleOutlier(t *testing.T) {
	// One outlier among P equal values has z-score sqrt(P-1): the closed
	// form the paper's threshold of 3.0 relies on (sqrt(31) ~ 5.57 > 3
	// for P=32).
	for _, p := range []int{8, 32, 128} {
		xs := make([]float64, p)
		for i := range xs {
			xs[i] = 1
		}
		xs[0] = 2
		want := math.Sqrt(float64(p - 1))
		if got := ZScore(xs[0], xs); !almostEqual(got, want, 1e-9) {
			t.Errorf("P=%d: outlier z = %v, want %v", p, got, want)
		}
		// The non-outliers must sit below the threshold.
		if z := ZScore(1, xs); z >= 3 {
			t.Errorf("P=%d: inlier z = %v, should be small", p, z)
		}
	}
}

func TestZScoresMatchesZScore(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 2}
	zs := ZScores(xs)
	for i, x := range xs {
		if got := ZScore(x, xs); !almostEqual(got, zs[i], 1e-12) {
			t.Errorf("ZScores[%d] = %v, ZScore = %v", i, zs[i], got)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{7}, 7},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{9, 1, 2}, 2},
		{[]float64{1, 9, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5, 5}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3, 9, 0}
	Median(xs)
	want := []float64{5, 1, 4, 2, 3, 9, 0}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Median mutated its input: %v", xs)
		}
	}
}

func TestMedian3AllOrderings(t *testing.T) {
	vals := []float64{1, 2, 3}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		in := []float64{vals[p[0]], vals[p[1]], vals[p[2]]}
		if got := Median(in); got != 2 {
			t.Errorf("Median(%v) = %v, want 2", in, got)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("P50 = %v, want 2.5", got)
	}
	if got := Percentile(xs, 25); !almostEqual(got, 1.75, 1e-12) {
		t.Errorf("P25 = %v, want 1.75", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	if got := Percentile([]float64{42}, 73); got != 42 {
		t.Errorf("Percentile singleton = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{7, 15, 36, 39, 40, 41}
	f := Summarize(xs)
	if f.Min != 7 || f.Max != 41 || f.N != 6 {
		t.Errorf("Summarize extremes wrong: %+v", f)
	}
	if !almostEqual(f.Median, 37.5, 1e-12) {
		t.Errorf("median = %v, want 37.5", f.Median)
	}
	if f.Q1 > f.Median || f.Median > f.Q3 {
		t.Errorf("quartiles out of order: %+v", f)
	}
	if s := f.String(); s == "" {
		t.Error("String should not be empty")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

// Property: median lies between min and max and is order-independent.
func TestMedianProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Bound magnitude so averaging two middle elements of an
			// even-length slice cannot overflow.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		min, max := MinMax(xs)
		if m < min || m > max {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Median(sorted) == m || almostEqual(Median(sorted), m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: z-scores of any population have (near) zero mean.
func TestZScoresZeroMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		zs := ZScores(xs)
		return math.Abs(Mean(zs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Variance is translation invariant and scales quadratically.
func TestVarianceScalingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		zs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
			ys[i] = xs[i] + 17
			zs[i] = 3 * xs[i]
		}
		v := Variance(xs)
		return almostEqual(Variance(ys), v, 1e-9) && almostEqual(Variance(zs), 9*v, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
