package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d, want %d", r.N(), len(xs))
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-12) {
		t.Errorf("running mean %v != batch %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.Variance(), Variance(xs), 1e-12) {
		t.Errorf("running variance %v != batch %v", r.Variance(), Variance(xs))
	}
	if !almostEqual(r.StdDev(), StdDev(xs), 1e-12) {
		t.Errorf("running stddev %v != batch %v", r.StdDev(), StdDev(xs))
	}
}

func TestRunningEmptyAndReset(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) {
		t.Error("empty Running should report NaN")
	}
	r.Add(5)
	r.Reset()
	if r.N() != 0 || !math.IsNaN(r.Mean()) {
		t.Error("Reset did not clear the accumulator")
	}
}

func TestRunningMatchesBatchProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.Uniform(-1e3, 1e3)
			r.Add(xs[i])
		}
		return almostEqual(r.Mean(), Mean(xs), 1e-9) &&
			almostEqual(r.Variance(), Variance(xs), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for i := 1; i <= 5; i++ {
		w.Push(float64(i))
	}
	got := w.Values()
	want := []float64{3, 4, 5}
	if len(got) != 3 {
		t.Fatalf("window length = %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Values = %v, want %v", got, want)
			break
		}
	}
	if w.Median() != 4 {
		t.Errorf("Median = %v, want 4", w.Median())
	}
	if w.Mean() != 4 {
		t.Errorf("Mean = %v, want 4", w.Mean())
	}
}

func TestWindowPartial(t *testing.T) {
	w := NewWindow(5)
	w.Push(10)
	w.Push(20)
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
	vals := w.Values()
	if len(vals) != 2 || vals[0] != 10 || vals[1] != 20 {
		t.Errorf("Values = %v", vals)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset did not empty window")
	}
}

func TestWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) should panic")
		}
	}()
	NewWindow(0)
}

// Property: a window of capacity c always holds the last min(c, pushes)
// values in order.
func TestWindowOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		c := 1 + rng.Intn(10)
		n := rng.Intn(50)
		w := NewWindow(c)
		all := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := rng.Float64()
			all = append(all, x)
			w.Push(x)
		}
		want := all
		if len(all) > c {
			want = all[len(all)-c:]
		}
		got := w.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
