// Package stats provides the small statistical toolkit used throughout the
// ULBA reproduction: descriptive statistics, z-scores, five-number summaries
// for box plots, histograms, linear regression for workload-increase-rate
// estimation, and deterministic counter-based random number generation.
//
// Everything here is dependency-free and allocation-conscious; the functions
// are used both by the synthetic experiment drivers (Figs. 2 and 3 of the
// paper) and by the simulated runtime on the hot path (per-iteration WIR
// estimation and overload detection).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sum returns the sum of xs. It returns 0 for an empty slice.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by len(xs)).
// It returns NaN for an empty slice and 0 for a single element.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// SampleVariance returns the Bessel-corrected variance (dividing by n-1).
// It returns NaN for slices with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// ZScore returns (x - mean) / stddev over the population xs.
// If the standard deviation is zero it returns 0: in a perfectly uniform
// population no element is an outlier, which is exactly the semantics the
// ULBA overload detector needs (no PE overloads when all WIRs are equal).
func ZScore(x float64, xs []float64) float64 {
	sd := StdDev(xs)
	if sd == 0 || math.IsNaN(sd) {
		return 0
	}
	return (x - Mean(xs)) / sd
}

// ZScores returns the z-score of every element of xs within xs.
func ZScores(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 || math.IsNaN(sd) {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// Median returns the median of xs without modifying it.
// It returns NaN for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	switch n {
	case 0:
		return math.NaN()
	case 1:
		return xs[0]
	case 2:
		return (xs[0] + xs[1]) / 2
	case 3:
		// Hot path: Algorithm 1 takes the median of the last three
		// iteration times every iteration.
		return median3(xs[0], xs[1], xs[2])
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks (the same convention as numpy's
// default). It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return percentileSorted(cp, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the minimum and maximum of xs.
// It returns (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// FiveNum is a five-number summary plus the mean: the statistics needed to
// draw one box of a box plot, as in Fig. 3 of the paper.
type FiveNum struct {
	Min    float64 // lower whisker (true minimum)
	Q1     float64 // first quartile
	Median float64
	Q3     float64 // third quartile
	Max    float64 // upper whisker (true maximum)
	Mean   float64
	N      int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) FiveNum {
	if len(xs) == 0 {
		nan := math.NaN()
		return FiveNum{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return FiveNum{
		Min:    cp[0],
		Q1:     percentileSorted(cp, 25),
		Median: percentileSorted(cp, 50),
		Q3:     percentileSorted(cp, 75),
		Max:    cp[len(cp)-1],
		Mean:   Mean(cp),
		N:      len(cp),
	}
}

// String renders the summary on one line, suitable for experiment tables.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g n=%d",
		f.Min, f.Q1, f.Median, f.Q3, f.Max, f.Mean, f.N)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
