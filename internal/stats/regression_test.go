package stats

import (
	"testing"
	"testing/quick"
)

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 7
	}
	fit := LinearRegression(xs, ys)
	if !almostEqual(fit.Slope, 2.5, 1e-12) || !almostEqual(fit.Intercept, -7, 1e-12) {
		t.Errorf("fit = %+v, want slope 2.5 intercept -7", fit)
	}
	if !fit.Valid() {
		t.Error("fit should be valid")
	}
	if got := fit.At(10); !almostEqual(got, 18, 1e-12) {
		t.Errorf("At(10) = %v, want 18", got)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	if fit := LinearRegression([]float64{1}, []float64{2}); fit.Slope != 0 {
		t.Error("single point should give zero fit")
	}
	if fit := LinearRegression([]float64{1, 2}, []float64{2}); fit.Slope != 0 {
		t.Error("mismatched lengths should give zero fit")
	}
	// All x equal: slope undefined, return horizontal line through mean.
	fit := LinearRegression([]float64{3, 3, 3}, []float64{1, 2, 3})
	if fit.Slope != 0 || !almostEqual(fit.Intercept, 2, 1e-12) {
		t.Errorf("vertical data fit = %+v, want slope 0 intercept 2", fit)
	}
}

func TestSlopeOverIndexMatchesRegression(t *testing.T) {
	ys := []float64{10, 12, 15, 15, 19, 22}
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	want := LinearRegression(xs, ys).Slope
	if got := SlopeOverIndex(ys); !almostEqual(got, want, 1e-12) {
		t.Errorf("SlopeOverIndex = %v, want %v", got, want)
	}
}

func TestSlopeOverIndexShort(t *testing.T) {
	if SlopeOverIndex(nil) != 0 || SlopeOverIndex([]float64{5}) != 0 {
		t.Error("short series should have zero slope")
	}
}

// Property: the WIR estimator recovers the rate of any noiseless linear
// workload series, which is the principle-of-persistence assumption the
// paper builds on.
func TestSlopeRecoversRateProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(60)
		rate := rng.Uniform(-1e4, 1e4)
		w0 := rng.Uniform(0, 1e6)
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = w0 + rate*float64(i)
		}
		return almostEqual(SlopeOverIndex(ys), rate, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: regression slope is invariant under y-translation and scales
// linearly with y-scaling.
func TestRegressionLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Uniform(-50, 50)
			ys[i] = rng.Uniform(-50, 50)
		}
		base := LinearRegression(xs, ys).Slope
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i := range ys {
			shifted[i] = ys[i] + 123
			scaled[i] = -2 * ys[i]
		}
		s1 := LinearRegression(xs, shifted).Slope
		s2 := LinearRegression(xs, scaled).Slope
		return almostEqual(s1, base, 1e-6) && almostEqual(s2, -2*base, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
