package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	diff := false
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should give different streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(7)
	lo, hi := -3.5, 12.25
	for i := 0; i < 10000; i++ {
		x := r.Uniform(lo, hi)
		if x < lo || x >= hi {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestUniformMeanApprox(t *testing.T) {
	r := NewRNG(99)
	var run Running
	for i := 0; i < 100000; i++ {
		run.Add(r.Uniform(0, 10))
	}
	if math.Abs(run.Mean()-5) > 0.1 {
		t.Errorf("uniform(0,10) mean = %v, want ~5", run.Mean())
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(4)
		if v < 0 || v >= 4 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("Intn(4) did not hit all values: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestHashUniformDeterministicAndUniform(t *testing.T) {
	if HashUniform(1, 2, 3) != HashUniform(1, 2, 3) {
		t.Error("HashUniform must be deterministic")
	}
	if HashUniform(1, 2, 3) == HashUniform(1, 2, 4) {
		t.Error("HashUniform should differ on different inputs")
	}
	// Uniformity smoke test over a grid of cells.
	var run Running
	for x := uint64(0); x < 100; x++ {
		for y := uint64(0); y < 100; y++ {
			u := HashUniform(12345, 7, x, y)
			if u < 0 || u >= 1 {
				t.Fatalf("HashUniform out of range: %v", u)
			}
			run.Add(u)
		}
	}
	if math.Abs(run.Mean()-0.5) > 0.02 {
		t.Errorf("HashUniform mean = %v, want ~0.5", run.Mean())
	}
	// Variance of U(0,1) is 1/12.
	if math.Abs(run.Variance()-1.0/12) > 0.01 {
		t.Errorf("HashUniform variance = %v, want ~%v", run.Variance(), 1.0/12)
	}
}

func TestHashUniformOrderSensitivity(t *testing.T) {
	// (x, y) must not collide with (y, x) in general.
	if HashUniform(9, 2, 5) == HashUniform(9, 5, 2) {
		t.Error("HashUniform should be order sensitive")
	}
}

func TestSplitDerivesIndependentStream(t *testing.T) {
	r := NewRNG(1234)
	s := r.Split()
	equal := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("split stream tracks parent: %d collisions", equal)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(2024)
	var run Running
	for i := 0; i < 50000; i++ {
		run.Add(r.NormFloat64())
	}
	if math.Abs(run.Mean()) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", run.Mean())
	}
	if math.Abs(run.StdDev()-1) > 0.03 {
		t.Errorf("normal stddev = %v, want ~1", run.StdDev())
	}
}

// Property: HashUniform depends on every argument.
func TestHashUniformArgSensitivityProperty(t *testing.T) {
	f := func(a, b, c uint64) bool {
		base := HashUniform(a, b, c)
		return base != HashUniform(a+1, b, c) ||
			base != HashUniform(a, b+1, c) ||
			base != HashUniform(a, b, c+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMix64AvalancheSmoke(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	var total int
	const trials = 256
	for i := 0; i < trials; i++ {
		x := NewRNG(uint64(i)).Uint64()
		d := Mix64(x) ^ Mix64(x^1)
		total += popcount(d)
	}
	avg := float64(total) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average bit flips = %v, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
