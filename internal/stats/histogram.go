package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval, used to render
// the gain distribution of Fig. 2 in the terminal and in EXPERIMENTS.md.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
	under  int // observations below Lo
	over   int // observations above Hi
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
// It panics if bins is not positive or the interval is empty.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic("stats: histogram interval must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation. Observations outside [Lo, Hi] are tallied in
// the under/overflow counters rather than dropped silently.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.under++
		return
	}
	if x > h.Hi {
		h.over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i == len(h.Counts) { // x == Hi lands in the last bin
		i--
	}
	h.Counts[i]++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded, including outliers.
func (h *Histogram) Total() int { return h.total }

// Outliers returns the number of observations below Lo and above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Probability returns the fraction of all observations falling in bin i.
func (h *Histogram) Probability(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Render draws the histogram as rows of "center  count  bar" with bars scaled
// so the fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%+8.2f%% | %-*s %d (p=%.3f)\n",
			h.BinCenter(i)*100, width, strings.Repeat("#", bar), c, h.Probability(i))
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "(outliers: %d below %.3g, %d above %.3g)\n", h.under, h.Lo, h.over, h.Hi)
	}
	return b.String()
}
