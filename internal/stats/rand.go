package stats

import "math"

// SplitMix64 advances the SplitMix64 generator state and returns the next
// 64-bit output. It is the mixing core behind both the stream RNG and the
// counter-based per-cell RNG of the erosion application.
func SplitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes an arbitrary 64-bit value through the SplitMix64 finalizer.
func Mix64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashUniform maps an arbitrary tuple of integers to a uniform float64 in
// [0, 1) deterministically. The erosion application calls it as
// HashUniform(seed, iteration, x, y): the outcome for a cell depends only on
// the global seed and the cell's coordinates in space and time, never on
// which PE owns the cell. This makes the physical dynamics bit-identical
// across partitionings and load balancing policies.
func HashUniform(parts ...uint64) float64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, p := range parts {
		h = Mix64(h ^ p)
	}
	// 53 random bits -> uniform double in [0,1).
	return float64(h>>11) / (1 << 53)
}

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64
// stream). It intentionally mirrors the subset of math/rand used by the
// experiment drivers so seeds fully determine every sampled instance.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Choice returns a uniformly chosen element of xs. It panics on empty input.
func (r *RNG) Choice(xs []int) int {
	return xs[r.Intn(len(xs))]
}

// Perm returns a random permutation of 0..n-1 (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform. Used only by test helpers and the annealer's restarts.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Split derives an independent generator from this one. Deriving rather than
// sharing keeps parallel experiment workers deterministic regardless of
// scheduling order.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}
