package anneal

import (
	"math"
	"testing"

	"ulba/internal/stats"
)

// quadratic is a trivial continuous test problem: minimize (x-3)^2 with
// moves that perturb x.
func quadraticProblem(cfg Config) Result[float64] {
	energy := func(x float64) float64 { return (x - 3) * (x - 3) }
	move := func(x float64, rng *stats.RNG) float64 { return x + rng.Uniform(-0.5, 0.5) }
	clone := func(x float64) float64 { return x }
	return Minimize(cfg, -10, energy, move, clone)
}

func TestMinimizeQuadratic(t *testing.T) {
	res := quadraticProblem(Config{Steps: 20000, Seed: 1})
	if math.Abs(res.Best-3) > 0.2 {
		t.Errorf("Best = %v, want ~3 (energy %v)", res.Best, res.BestEnergy)
	}
	if res.BestEnergy > 0.05 {
		t.Errorf("BestEnergy = %v, want ~0", res.BestEnergy)
	}
	if res.Accepted == 0 || res.Evaluations == 0 {
		t.Error("statistics not recorded")
	}
	if res.TMax <= res.TMin {
		t.Errorf("temperatures not ordered: %v <= %v", res.TMax, res.TMin)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	a := quadraticProblem(Config{Steps: 5000, Seed: 42})
	b := quadraticProblem(Config{Steps: 5000, Seed: 42})
	if a.Best != b.Best || a.BestEnergy != b.BestEnergy || a.Accepted != b.Accepted {
		t.Error("same seed must reproduce the identical run")
	}
	c := quadraticProblem(Config{Steps: 5000, Seed: 43})
	if a.Best == c.Best && a.Accepted == c.Accepted {
		t.Error("different seeds should explore differently")
	}
}

func TestMinimizeRespectsExplicitTemperatures(t *testing.T) {
	res := quadraticProblem(Config{Steps: 2000, Seed: 7, TMax: 100, TMin: 0.001})
	if res.TMax != 100 || res.TMin != 0.001 {
		t.Errorf("explicit temperatures overridden: %v %v", res.TMax, res.TMin)
	}
}

func TestMinimizeZeroStepsUsesDefault(t *testing.T) {
	res := quadraticProblem(Config{Seed: 9})
	if res.Evaluations < DefaultConfig(9).Steps {
		t.Errorf("zero Steps should fall back to default, got %d evaluations", res.Evaluations)
	}
}

func TestBestNeverWorseThanInitial(t *testing.T) {
	energy := func(x float64) float64 { return x * x }
	move := func(x float64, rng *stats.RNG) float64 { return x + rng.Uniform(-1, 1) }
	clone := func(x float64) float64 { return x }
	for seed := uint64(0); seed < 10; seed++ {
		res := Minimize(Config{Steps: 300, Seed: seed}, 5, energy, move, clone)
		if res.BestEnergy > 25 {
			t.Errorf("seed %d: best energy %v worse than initial 25", seed, res.BestEnergy)
		}
	}
}

func TestFlatLandscape(t *testing.T) {
	// All states have identical energy: must terminate and return a state.
	energy := func(x float64) float64 { return 1 }
	move := func(x float64, rng *stats.RNG) float64 { return x + 1 }
	clone := func(x float64) float64 { return x }
	res := Minimize(Config{Steps: 100, Seed: 3}, 0, energy, move, clone)
	if res.BestEnergy != 1 {
		t.Errorf("flat landscape energy = %v", res.BestEnergy)
	}
}

// onemax: minimize the number of true bits. Global optimum is all-false
// (except index 0 which is never touched).
func TestMinimizeBoolsOneMax(t *testing.T) {
	n := 60
	initial := make([]bool, n)
	for i := range initial {
		initial[i] = true
	}
	energy := func(s []bool) float64 {
		e := 0.0
		for _, b := range s[1:] {
			if b {
				e++
			}
		}
		return e
	}
	res := MinimizeBools(Config{Steps: 30000, Seed: 5}, initial, energy)
	if res.BestEnergy > 2 {
		t.Errorf("onemax best = %v, want near 0", res.BestEnergy)
	}
	if res.Best[0] != true {
		t.Error("index 0 must never be flipped")
	}
}

// A deceptive objective with local minima: pairs of adjacent bits are
// rewarded, making single-flip moves climb through worse states.
func TestMinimizeBoolsEscapesLocalMinima(t *testing.T) {
	n := 30
	energy := func(s []bool) float64 {
		// count of set bits, minus large bonus for bit pairs (2i, 2i+1)
		// both set; optimum sets all pairs.
		e := 0.0
		for i := 1; i < n; i++ {
			if s[i] {
				e += 1
			}
		}
		for i := 2; i+1 < n; i += 2 {
			if s[i] && s[i+1] {
				e -= 3
			}
		}
		return e
	}
	initial := make([]bool, n)
	res := MinimizeBools(Config{Steps: 60000, Seed: 11}, initial, energy)
	// Perfect pairing achieves e = 14 pairs * (2 - 3) = -14 (plus bit 1 if
	// unset contributes 0). Accept anything close.
	if res.BestEnergy > -10 {
		t.Errorf("failed to escape local minima: best = %v, want <= -10", res.BestEnergy)
	}
}

func TestMinimizeBoolsTinyState(t *testing.T) {
	res := MinimizeBools(Config{Steps: 10, Seed: 1}, []bool{false}, func(s []bool) float64 { return 0 })
	if len(res.Best) != 1 || res.BestEnergy != 0 {
		t.Errorf("tiny state mishandled: %+v", res)
	}
}

func TestMoveDoesNotMutateCurrent(t *testing.T) {
	// The MinimizeBools move must copy; verify indirectly by checking
	// that rejected moves do not corrupt the walk: with temperature ~0
	// and an energy that penalizes any change, the initial state must
	// survive identically.
	initial := []bool{false, true, false, true}
	want := append([]bool(nil), initial...)
	energy := func(s []bool) float64 {
		e := 0.0
		for i := range s {
			if s[i] != want[i] {
				e += 100
			}
		}
		return e
	}
	res := MinimizeBools(Config{Steps: 500, Seed: 2, TMax: 1e-9, TMin: 1e-12}, initial, energy)
	for i := range want {
		if res.Best[i] != want[i] {
			t.Fatalf("best state drifted: %v, want %v", res.Best, want)
		}
	}
	if res.BestEnergy != 0 {
		t.Errorf("BestEnergy = %v, want 0", res.BestEnergy)
	}
}
