// Package anneal provides a small, deterministic simulated-annealing
// minimizer equivalent in spirit to the Python "simanneal" module the paper
// used to search for near-optimal load-balancing schedules (Section III-B,
// Fig. 2): geometric cooling between TMax and TMin, single-move neighborhood,
// Metropolis acceptance, and best-state tracking.
//
// The minimizer is generic over the state type. Moves produce fresh states
// (value semantics); for the paper's boolean LB-schedule states this costs a
// gamma-byte copy per step, which is negligible.
package anneal

import (
	"math"

	"ulba/internal/stats"
)

// Config tunes the annealing schedule.
type Config struct {
	// TMax and TMin bound the geometric cooling schedule. If both are
	// zero, Minimize calibrates them automatically from the energy
	// landscape (sampling random moves, like simanneal's auto mode).
	TMax, TMin float64
	// Steps is the number of annealing steps (move proposals).
	Steps int
	// Seed makes the run reproducible.
	Seed uint64
}

// DefaultConfig mirrors the scale of the paper's searches: enough steps to
// converge on a gamma=100 schedule in well under a second of CPU.
func DefaultConfig(seed uint64) Config {
	return Config{Steps: 20000, Seed: seed}
}

// Result reports the outcome of a minimization.
type Result[S any] struct {
	Best       S       // best state encountered
	BestEnergy float64 // energy of Best
	// Accepted and Improved count accepted moves and strict improvements;
	// Evaluations counts energy evaluations (including calibration).
	Accepted, Improved, Evaluations int
	TMax, TMin                      float64 // temperatures actually used
}

// Minimize runs simulated annealing from the initial state.
//
// energy must return the objective to minimize. move must return a neighbor
// of the given state without mutating it, drawing randomness only from rng
// so runs are reproducible. clone deep-copies a state.
func Minimize[S any](cfg Config, initial S, energy func(S) float64,
	move func(S, *stats.RNG) S, clone func(S) S) Result[S] {

	rng := stats.NewRNG(cfg.Seed)
	if cfg.Steps <= 0 {
		cfg.Steps = DefaultConfig(cfg.Seed).Steps
	}

	res := Result[S]{}
	cur := clone(initial)
	curE := energy(cur)
	res.Evaluations++
	res.Best = clone(cur)
	res.BestEnergy = curE

	tmax, tmin := cfg.TMax, cfg.TMin
	if tmax == 0 && tmin == 0 {
		tmax, tmin = calibrate(cur, curE, energy, move, rng, &res)
	}
	if tmin <= 0 {
		tmin = tmax * 1e-6
	}
	if tmax <= 0 {
		// Degenerate landscape (all moves iso-energetic): hill climb.
		tmax, tmin = 1e-12, 1e-13
	}
	res.TMax, res.TMin = tmax, tmin

	// Geometric cooling: T(k) = TMax * (TMin/TMax)^(k/Steps).
	ratio := math.Log(tmin / tmax)
	for k := 0; k < cfg.Steps; k++ {
		temp := tmax * math.Exp(ratio*float64(k)/float64(cfg.Steps))
		cand := move(cur, rng)
		candE := energy(cand)
		res.Evaluations++
		dE := candE - curE
		if dE <= 0 || rng.Float64() < math.Exp(-dE/temp) {
			cur = cand
			curE = candE
			res.Accepted++
			if curE < res.BestEnergy {
				res.Best = clone(cur)
				res.BestEnergy = curE
				res.Improved++
			}
		}
	}
	return res
}

// calibrate estimates sensible temperatures by sampling random moves from
// the initial state: TMax at ~2x the standard deviation of energy changes
// (so almost everything is accepted initially), TMin at a small fraction
// (so the walk freezes at the end).
func calibrate[S any](cur S, curE float64, energy func(S) float64,
	move func(S, *stats.RNG) S, rng *stats.RNG, res *Result[S]) (tmax, tmin float64) {

	const samples = 50
	var run stats.Running
	for i := 0; i < samples; i++ {
		cand := move(cur, rng)
		run.Add(math.Abs(energy(cand) - curE))
		res.Evaluations++
	}
	scale := run.Mean() + run.StdDev()
	if scale == 0 || math.IsNaN(scale) {
		return 0, 0
	}
	return 2 * scale, 2e-5 * scale
}

// MinimizeBools is a convenience wrapper for boolean-vector states (the LB
// schedule representation of the paper: one flag per iteration). The move
// flips a uniformly random flag, excluding index 0 (the initial balance is
// free and fixed).
func MinimizeBools(cfg Config, initial []bool, energy func([]bool) float64) Result[[]bool] {
	if len(initial) < 2 {
		cp := append([]bool(nil), initial...)
		return Result[[]bool]{Best: cp, BestEnergy: energy(cp), Evaluations: 1}
	}
	move := func(s []bool, rng *stats.RNG) []bool {
		n := append([]bool(nil), s...)
		i := 1 + rng.Intn(len(s)-1)
		n[i] = !n[i]
		return n
	}
	clone := func(s []bool) []bool { return append([]bool(nil), s...) }
	return Minimize(cfg, initial, energy, move, clone)
}
