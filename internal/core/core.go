// Package core implements the paper's primary contribution: the ULBA
// (Underloading Load Balancing Approach) controller of Section III.
//
// Each PE continuously monitors its workload increase rate (WIR), shares it
// through the gossip database, and, at a LB step, classifies itself as
// overloading when the z-score of its WIR within the WIR population exceeds
// a threshold (3.0 in the paper). Overloading PEs request to be underloaded
// by a fraction alpha of the perfectly balanced share; the freed workload
// is spread evenly over the other PEs (Algorithm 2, realized by
// partition.Targets). The controller also provides the runtime estimate of
// the ULBA overhead (Eq. 11) that the adaptive trigger adds to the LB cost
// (Section III-C), and an adaptive-alpha policy — the paper's announced
// future work — that shrinks alpha as the fraction of overloading PEs
// grows, following the overhead law alpha*N/(P-N) identified in Section IV.
package core

import (
	"fmt"
	"math"

	"ulba/internal/gossip"
	"ulba/internal/stats"
)

// DefaultZThreshold is the paper's overload-detection threshold: a PE is
// overloading if the z-score of its WIR exceeds 3.0. Note that a single
// outlier among P identical values has z-score sqrt(P-1), so with fewer
// than 11 PEs nothing can cross 3.0; small worlds need a lower threshold.
const DefaultZThreshold = 3.0

// Monitor estimates a PE's workload increase rate from a sliding window of
// (iteration, workload) samples by least-squares slope, the "monitoring"
// half of ULBA's monitoring-and-anticipation mechanism. The window must be
// reset after every LB step: migration changes the workload discontinuously
// and would corrupt the slope, while the WIR of interest is the
// application-intrinsic growth that persists across LB steps (principle of
// persistence).
type Monitor struct {
	iters []float64
	loads []float64
	cap   int
}

// NewMonitor creates a monitor with the given window capacity (minimum 2).
func NewMonitor(window int) *Monitor {
	if window < 2 {
		window = 2
	}
	return &Monitor{cap: window}
}

// Record adds one (iteration, workload) sample.
func (m *Monitor) Record(iter int, workload float64) {
	m.iters = append(m.iters, float64(iter))
	m.loads = append(m.loads, workload)
	if len(m.iters) > m.cap {
		m.iters = m.iters[1:]
		m.loads = m.loads[1:]
	}
}

// WIR returns the current workload-increase-rate estimate in work units per
// iteration, and false when fewer than two samples are available.
func (m *Monitor) WIR() (float64, bool) {
	if len(m.iters) < 2 {
		return 0, false
	}
	fit := stats.LinearRegression(m.iters, m.loads)
	if !fit.Valid() {
		return 0, false
	}
	return fit.Slope, true
}

// Reset clears the window (call right after every LB step).
func (m *Monitor) Reset() {
	m.iters = m.iters[:0]
	m.loads = m.loads[:0]
}

// Samples returns the number of samples currently in the window.
func (m *Monitor) Samples() int { return len(m.iters) }

// Detector classifies PEs as overloading from the WIR database.
type Detector struct {
	// ZThreshold is the z-score above which a PE is overloading.
	ZThreshold float64
	// MinKnown is the minimum number of database entries required before
	// any detection: with too few WIRs the z-score is meaningless.
	MinKnown int
}

// NewDetector returns a detector with the paper's defaults: threshold 3.0,
// and at least half the world known.
func NewDetector(worldSize int) Detector {
	minKnown := worldSize/2 + 1
	if minKnown < 2 {
		minKnown = 2
	}
	return Detector{ZThreshold: DefaultZThreshold, MinKnown: minKnown}
}

// Overloading reports whether rank's WIR is an outlier in the database
// population.
func (d Detector) Overloading(db *gossip.DB, rank int) bool {
	if db.KnownCount() < d.MinKnown {
		return false
	}
	z, ok := db.ZScoreOf(rank)
	return ok && z > d.ZThreshold
}

// CountOverloading returns how many known ranks the detector classifies as
// overloading — the controller's runtime estimate of the paper's N.
func (d Detector) CountOverloading(db *gossip.DB) int {
	if db.KnownCount() < d.MinKnown {
		return 0
	}
	wirs := db.Values()
	n := 0
	for _, e := range db.Snapshot() {
		if stats.ZScore(e.Value, wirs) > d.ZThreshold {
			n++
		}
	}
	return n
}

// AlphaPolicy decides the alpha an overloading PE requests at a LB step.
type AlphaPolicy interface {
	// Alpha returns the fraction to shed given the current estimates of
	// the world size and the number of overloading PEs.
	Alpha(p, n int) float64
}

// FixedAlpha is the paper's user-defined constant alpha (Section III-A:
// "alpha is constant and user defined for all overloading PEs").
type FixedAlpha float64

// Alpha returns the constant value regardless of estimates.
func (f FixedAlpha) Alpha(p, n int) float64 { return float64(f) }

// AdaptiveAlpha implements the future-work extension the paper motivates in
// Section IV-B: "for a given overhead, alpha can be set higher whether
// N/(P-N) is small". It chooses the largest alpha whose projected overhead
// ratio alpha*N/(P-N) stays within Budget, clamped to [0, Max].
type AdaptiveAlpha struct {
	// Budget bounds alpha*N/(P-N), the per-PE overhead fraction of
	// Eq. 11. The Fig. 3 fit (alpha ~ 0.93 at 1% overloading, ~ 0.08 at
	// 20%) corresponds to a budget of roughly 0.01-0.02.
	Budget float64
	// Max caps alpha (the paper observes diminishing returns above 0.4
	// at small P).
	Max float64
}

// DefaultAdaptiveAlpha returns the tuning used by the ablation experiments.
func DefaultAdaptiveAlpha() AdaptiveAlpha {
	return AdaptiveAlpha{Budget: 0.015, Max: 0.9}
}

// Alpha returns min(Max, Budget*(P-N)/N) for n > 0, and Max when no
// overloading estimate is available (n <= 0).
func (a AdaptiveAlpha) Alpha(p, n int) float64 {
	if n <= 0 || n >= p {
		return a.Max
	}
	v := a.Budget * float64(p-n) / float64(n)
	return stats.Clamp(v, 0, a.Max)
}

// OverheadSeconds is the runtime counterpart of Eq. 11: the extra time a
// single non-overloading PE will spend on the workload gathered from the n
// overloading PEs, given the total workload in FLOP, the per-PE speed
// omega, and the alpha the overloading PEs will request. It is the term
// added to the average LB cost in the ULBA trigger (Section III-C).
func OverheadSeconds(alpha float64, p, n int, wtotFlop, omega float64) float64 {
	if n <= 0 || n >= p || alpha <= 0 {
		return 0
	}
	return alpha * float64(n) / float64(p-n) * wtotFlop / (omega * float64(p))
}

// Controller bundles the per-PE pieces of ULBA: the WIR monitor, the gossip
// database, the overload detector, and the alpha policy. It is the object
// Algorithm 1 manipulates.
type Controller struct {
	rank     int
	size     int
	monitor  *Monitor
	db       *gossip.DB
	detector Detector
	policy   AlphaPolicy
}

// NewController creates the controller for one PE.
func NewController(rank, size int, window int, detector Detector, policy AlphaPolicy) *Controller {
	if policy == nil {
		panic("core: nil alpha policy")
	}
	return &Controller{
		rank:     rank,
		size:     size,
		monitor:  NewMonitor(window),
		db:       gossip.NewDB(rank, size),
		detector: detector,
		policy:   policy,
	}
}

// DB exposes the gossip database for dissemination steps.
func (c *Controller) DB() *gossip.DB { return c.db }

// Record folds one post-iteration workload sample into the monitor and
// refreshes this PE's database entry.
func (c *Controller) Record(iter int, workload float64) {
	c.monitor.Record(iter, workload)
	if wir, ok := c.monitor.WIR(); ok {
		c.db.Update(c.rank, wir, iter)
	}
}

// WIR returns the current local estimate (0 if not yet available).
func (c *Controller) WIR() float64 {
	wir, _ := c.monitor.WIR()
	return wir
}

// Overloading reports whether this PE currently classifies itself as
// overloading.
func (c *Controller) Overloading() bool {
	return c.detector.Overloading(c.db, c.rank)
}

// OverloadingCount estimates N from the local database.
func (c *Controller) OverloadingCount() int {
	return c.detector.CountOverloading(c.db)
}

// AlphaForLB returns the alpha this PE submits to the load balancer: the
// policy value if it detects itself overloading, 0 otherwise (Algorithm 1,
// lines 17-23).
func (c *Controller) AlphaForLB() float64 {
	if !c.Overloading() {
		return 0
	}
	a := c.policy.Alpha(c.size, c.OverloadingCount())
	if a < 0 || a > 1 || math.IsNaN(a) {
		panic(fmt.Sprintf("core: alpha policy returned invalid %g", a))
	}
	return a
}

// AfterLB resets the monitor window: post-migration workloads are
// discontinuous with the pre-LB series.
func (c *Controller) AfterLB() {
	c.monitor.Reset()
}
