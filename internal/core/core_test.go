package core

import (
	"math"
	"testing"
	"testing/quick"

	"ulba/internal/gossip"
	"ulba/internal/stats"
)

func TestMonitorLinearWIR(t *testing.T) {
	m := NewMonitor(8)
	if _, ok := m.WIR(); ok {
		t.Error("empty monitor should have no WIR")
	}
	for i := 0; i < 10; i++ {
		m.Record(i, 100+3.5*float64(i))
	}
	wir, ok := m.WIR()
	if !ok || math.Abs(wir-3.5) > 1e-9 {
		t.Errorf("WIR = %v (ok=%v), want 3.5", wir, ok)
	}
	if m.Samples() != 8 {
		t.Errorf("window holds %d samples, want 8 (capacity)", m.Samples())
	}
}

func TestMonitorSlidingWindowTracksChange(t *testing.T) {
	m := NewMonitor(5)
	// Rate 1 for a while, then rate 10: the window must converge to 10.
	it := 0
	load := 0.0
	for ; it < 20; it++ {
		load += 1
		m.Record(it, load)
	}
	for ; it < 40; it++ {
		load += 10
		m.Record(it, load)
	}
	wir, _ := m.WIR()
	if math.Abs(wir-10) > 1e-9 {
		t.Errorf("windowed WIR = %v, want 10", wir)
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(4)
	m.Record(0, 1)
	m.Record(1, 2)
	m.Reset()
	if m.Samples() != 0 {
		t.Error("Reset did not clear samples")
	}
	if _, ok := m.WIR(); ok {
		t.Error("WIR available after reset")
	}
}

func TestMonitorMinimumWindow(t *testing.T) {
	m := NewMonitor(0) // clamps to 2
	m.Record(0, 5)
	m.Record(1, 7)
	wir, ok := m.WIR()
	if !ok || math.Abs(wir-2) > 1e-9 {
		t.Errorf("WIR = %v, want 2", wir)
	}
}

func fillDB(size int, outlier int, outlierWIR float64) *gossip.DB {
	db := gossip.NewDB(0, size)
	for r := 0; r < size; r++ {
		wir := 1.0
		if r == outlier {
			wir = outlierWIR
		}
		db.Update(r, wir, 0)
	}
	return db
}

func TestDetectorFindsOutlier(t *testing.T) {
	det := NewDetector(32)
	db := fillDB(32, 5, 50)
	if !det.Overloading(db, 5) {
		t.Error("outlier not detected")
	}
	if det.Overloading(db, 0) {
		t.Error("inlier misclassified")
	}
	if got := det.CountOverloading(db); got != 1 {
		t.Errorf("CountOverloading = %d, want 1", got)
	}
}

func TestDetectorRequiresEnoughEntries(t *testing.T) {
	det := NewDetector(32) // MinKnown = 17
	db := gossip.NewDB(0, 32)
	for r := 0; r < 10; r++ { // only 10 known
		db.Update(r, 1, 0)
	}
	db.Update(3, 100, 0)
	if det.Overloading(db, 3) {
		t.Error("detector fired with an immature database")
	}
	if det.CountOverloading(db) != 0 {
		t.Error("count should be 0 with immature database")
	}
}

func TestDetectorUniformPopulation(t *testing.T) {
	det := NewDetector(16)
	db := fillDB(16, -1, 0) // all equal
	for r := 0; r < 16; r++ {
		if det.Overloading(db, r) {
			t.Fatalf("uniform population flagged rank %d", r)
		}
	}
}

func TestFixedAlpha(t *testing.T) {
	if FixedAlpha(0.4).Alpha(100, 3) != 0.4 {
		t.Error("fixed alpha should ignore estimates")
	}
}

func TestAdaptiveAlphaShrinksWithN(t *testing.T) {
	a := DefaultAdaptiveAlpha()
	few := a.Alpha(256, 3)   // ~1% overloading
	many := a.Alpha(256, 51) // ~20%
	if few <= many {
		t.Errorf("adaptive alpha should shrink with N: %v vs %v", few, many)
	}
	if few > a.Max || many < 0 {
		t.Errorf("alpha out of range: %v, %v", few, many)
	}
	// Degenerate estimates fall back to Max.
	if a.Alpha(10, 0) != a.Max || a.Alpha(10, 10) != a.Max {
		t.Error("degenerate N should return Max")
	}
	// The overhead law: alpha*N/(P-N) <= Budget (when below the cap).
	p, n := 256, 51
	if got := a.Alpha(p, n) * float64(n) / float64(p-n); got > a.Budget+1e-12 {
		t.Errorf("overhead ratio %v exceeds budget %v", got, a.Budget)
	}
}

func TestOverheadSeconds(t *testing.T) {
	// Eq. 11 with the paper's symbols: alpha*N/(P-N) * Wtot/(omega*P).
	got := OverheadSeconds(0.5, 256, 25, 2.56e11, 1e9)
	want := 0.5 * 25.0 / 231.0 * 2.56e11 / (1e9 * 256)
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("overhead = %v, want %v", got, want)
	}
	if OverheadSeconds(0, 256, 25, 1e11, 1e9) != 0 {
		t.Error("alpha=0 must have zero overhead")
	}
	if OverheadSeconds(0.5, 256, 0, 1e11, 1e9) != 0 {
		t.Error("n=0 must have zero overhead")
	}
	if OverheadSeconds(0.5, 4, 4, 1e11, 1e9) != 0 {
		t.Error("n=p must have zero overhead")
	}
}

func TestControllerLifecycle(t *testing.T) {
	const size = 16
	ctrl := NewController(3, size, 8, NewDetector(size), FixedAlpha(0.4))
	if ctrl.DB().Self() != 3 {
		t.Error("controller DB mis-owned")
	}
	// Feed a fast-growing workload into rank 3 and slow entries into the
	// database for everyone else.
	for i := 0; i < 10; i++ {
		ctrl.Record(i, 1000+50*float64(i))
	}
	for r := 0; r < size; r++ {
		if r != 3 {
			ctrl.DB().Update(r, 1.0, 9)
		}
	}
	if !ctrl.Overloading() {
		t.Fatalf("controller should detect itself overloading (WIR=%v)", ctrl.WIR())
	}
	if got := ctrl.AlphaForLB(); got != 0.4 {
		t.Errorf("AlphaForLB = %v, want 0.4", got)
	}
	if got := ctrl.OverloadingCount(); got != 1 {
		t.Errorf("OverloadingCount = %d, want 1", got)
	}
	ctrl.AfterLB()
	if ctrl.WIR() != 0 {
		t.Error("WIR should be unavailable right after LB reset")
	}
	// Not overloading => alpha 0.
	ctrl2 := NewController(0, size, 8, NewDetector(size), FixedAlpha(0.4))
	for i := 0; i < 10; i++ {
		ctrl2.Record(i, 1000+1*float64(i))
	}
	for r := 1; r < size; r++ {
		ctrl2.DB().Update(r, 1.0, 9)
	}
	if got := ctrl2.AlphaForLB(); got != 0 {
		t.Errorf("non-overloading PE requested alpha %v", got)
	}
}

func TestControllerPanicsOnNilPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil policy should panic")
		}
	}()
	NewController(0, 4, 8, NewDetector(4), nil)
}

func TestControllerPanicsOnBadPolicyValue(t *testing.T) {
	ctrl := NewController(0, 12, 4, Detector{ZThreshold: 0.5, MinKnown: 2}, FixedAlpha(1.5))
	for i := 0; i < 6; i++ {
		ctrl.Record(i, float64(100*i)) // strong growth
	}
	for r := 1; r < 12; r++ {
		ctrl.DB().Update(r, 0, 5)
	}
	if !ctrl.Overloading() {
		t.Skip("detector did not fire; cannot exercise policy validation")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid policy alpha should panic")
		}
	}()
	ctrl.AlphaForLB()
}

// Property: the monitor recovers the exact rate of any linear series
// regardless of window size and offset.
func TestMonitorRecoversRateProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		window := 2 + rng.Intn(20)
		rate := rng.Uniform(-100, 100)
		w0 := rng.Uniform(0, 1e6)
		m := NewMonitor(window)
		for i := 0; i < window+rng.Intn(30); i++ {
			m.Record(i, w0+rate*float64(i))
		}
		wir, ok := m.WIR()
		return ok && math.Abs(wir-rate) < 1e-6*(1+math.Abs(rate))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: adaptive alpha never exceeds Max nor goes negative, and its
// overhead ratio never exceeds Budget when n is in (0, p).
func TestAdaptiveAlphaBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		a := AdaptiveAlpha{Budget: rng.Uniform(0.001, 0.1), Max: rng.Uniform(0.1, 1)}
		p := 2 + rng.Intn(2048)
		n := 1 + rng.Intn(p-1)
		v := a.Alpha(p, n)
		if v < 0 || v > a.Max {
			return false
		}
		return v*float64(n)/float64(p-n) <= a.Budget+1e-9 || v == a.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
