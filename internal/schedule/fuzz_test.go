package schedule

import (
	"math"
	"testing"

	"ulba/internal/instance"
	"ulba/internal/model"
)

// fuzzParams builds a Table-II-shaped model instance from raw fuzz inputs.
// Every float is first collapsed to a finite value in [0, 1) and then
// scaled into its Table II range, mirroring instance.Generator.SampleAt —
// so arbitrary fuzz bytes always map to a structurally valid instance
// (bool ok reports the rare remainder the model still rejects).
func fuzzParams(pSel, gammaSel uint8, nFrac, w0Frac, growth, skew, costFrac, alpha float64) (model.Params, bool) {
	unit := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		x = math.Abs(x)
		return x - math.Floor(x) // fractional part: always in [0, 1)
	}
	ps := []int{4, 16, 64, instance.PChoices[0], instance.PChoices[1], instance.PChoices[2], instance.PChoices[3]}
	p := model.Params{
		P:     ps[int(pSel)%len(ps)],
		Gamma: 1 + int(gammaSel)%200,
		Omega: instance.Omega,
		Alpha: unit(alpha),
	}
	// N spans [0, P): N = 0 exercises the no-overload (ErrNoOverload)
	// branches the Fig. 3 buckets never reach.
	p.N = int(float64(p.P) * unit(nFrac))
	if p.N >= p.P {
		p.N = p.P - 1
	}
	p.W0 = (instance.W0PerPELo + unit(w0Frac)*(instance.W0PerPEHi-instance.W0PerPELo)) * float64(p.P)
	perPE := p.W0 / float64(p.P)
	p.DeltaW = perPE * 0.5 * unit(growth)
	y := instance.SkewLo + unit(skew)*(instance.SkewHi-instance.SkewLo)
	if p.N == 0 {
		y = 0 // all growth must be the even share when nobody overloads
	}
	p.A = p.DeltaW * (1 - y) / float64(p.P)
	if p.N > 0 {
		p.M = p.DeltaW * y / float64(p.N)
	}
	p.C = perPE * (5 * unit(costFrac)) / p.Omega
	if err := p.Validate(); err != nil {
		return p, false
	}
	return p, true
}

// fuzzGrid replicates simulate.AlphaGrid without importing the higher
// layer: size points uniformly over [0, 1], always containing 0.
func fuzzGrid(size int) []float64 {
	if size < 1 {
		size = 1
	}
	grid := make([]float64, size)
	if size == 1 {
		return grid
	}
	for i := range grid {
		grid[i] = float64(i) / float64(size-1)
	}
	return grid
}

// FuzzEvaluatorMatchesSlowPath is the generative extension of the golden
// equivalence tests: for arbitrary Table-II-shaped instances and alpha
// grids, every Evaluator fast path must be bit-identical (==, not within
// epsilon) to the materialize-a-Schedule slow path it replaces. Any
// re-association, hoisting mistake, or pruning bug in the incremental
// evaluator shows up here as a one-ULP drift.
//
// Run the generative search locally with:
//
//	go test -fuzz=FuzzEvaluatorMatchesSlowPath -fuzztime=30s ./internal/schedule
//
// The checked-in corpus under testdata/fuzz seeds it with the paper's
// Fig. 2-3 parameter regimes (each Fig. 3 overloading bucket, the Fig. 2
// random-alpha setting, and the no-overload edge).
func FuzzEvaluatorMatchesSlowPath(f *testing.F) {
	// Seed the corpus from the Fig. 3 buckets (log-spaced overloading
	// fractions), cycling PE counts and LB-cost regimes across buckets.
	for i, frac := range instance.Fig3Buckets {
		f.Add(uint8(3+i), uint8(99), frac, 0.5, 0.3, 0.5, float64(i)/10, 0.4)
	}
	// Fig. 2 regime: random alpha as an instance property.
	f.Add(uint8(4), uint8(99), 0.1, 0.25, 0.8, 0.9, 0.6, 0.77)
	// The no-overload edge (N = 0) and the tiny-P, short-run corner.
	f.Add(uint8(0), uint8(0), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

	f.Fuzz(func(t *testing.T, pSel, gammaSel uint8, nFrac, w0Frac, growth, skew, costFrac, alpha float64) {
		p, ok := fuzzParams(pSel, gammaSel, nFrac, w0Frac, growth, skew, costFrac, alpha)
		if !ok {
			t.Skip("model rejects the instance")
		}
		var ev Evaluator

		slowSched := EverySigmaPlus(p)
		if fast := ev.SigmaPlus(p); !equalSchedules(fast, slowSched) {
			t.Fatalf("SigmaPlus schedules differ: fast %v, slow %v (params %+v)", fast, slowSched, p)
		}
		if fast, slow := ev.TotalTimeULBA(p), TotalTimeULBA(p, slowSched); fast != slow {
			t.Fatalf("TotalTimeULBA: fast %v != slow %v (params %+v)", fast, slow, p)
		}
		if fast, slow := ev.TotalTimeStd(p), TotalTimeStd(p, slowSched); fast != slow {
			t.Fatalf("TotalTimeStd: fast %v != slow %v (params %+v)", fast, slow, p)
		}

		// The grid size derives from the instance, keeping the arg list
		// small: 2..33 points spanning degenerate and paper-like grids.
		grid := fuzzGrid(2 + int(pSel)%32)
		fastAlpha, fastBest := ev.BestAlphaIncremental(p, grid)
		slowAlpha, slowBest := -1.0, -1.0
		for _, a := range grid {
			pa := p.WithAlpha(a)
			if tt := TotalTimeULBA(pa, EverySigmaPlus(pa)); slowBest < 0 || tt < slowBest {
				slowBest, slowAlpha = tt, a
			}
		}
		if fastAlpha != slowAlpha || fastBest != slowBest {
			t.Fatalf("BestAlpha: fast (%v, %v) != slow (%v, %v) (params %+v)",
				fastAlpha, fastBest, slowAlpha, slowBest, p)
		}
	})
}

func equalSchedules(a, b Schedule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
