package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"ulba/internal/model"
	"ulba/internal/stats"
)

func refParams() model.Params {
	p := model.Params{
		P:     256,
		N:     25,
		Gamma: 100,
		W0:    2.56e11,
		Omega: 1e9,
		Alpha: 0.5,
	}
	p.DeltaW = 0.1 * p.W0 / float64(p.P)
	y := 0.9
	p.A = p.DeltaW * (1 - y) / float64(p.P)
	p.M = p.DeltaW * y / float64(p.N)
	p.C = 0.5 * p.W0 / (float64(p.P) * p.Omega)
	return p
}

func randomParams(seed uint64) model.Params {
	r := stats.NewRNG(seed)
	ps := []int{256, 512, 1024, 2048}
	p := model.Params{P: ps[r.Intn(len(ps))], Gamma: 100, Omega: 1e9}
	p.N = int(float64(p.P) * r.Uniform(0.01, 0.2))
	if p.N < 1 {
		p.N = 1
	}
	p.W0 = r.Uniform(52e7, 1165e7) * float64(p.P)
	p.DeltaW = p.W0 / float64(p.P) * r.Uniform(0.01, 0.3)
	y := r.Uniform(0.8, 1.0)
	p.A = p.DeltaW * (1 - y) / float64(p.P)
	p.M = p.DeltaW * y / float64(p.N)
	p.Alpha = r.Float64()
	p.C = p.W0 / float64(p.P) * r.Uniform(0.1, 3.0) / p.Omega
	return p
}

func TestValidate(t *testing.T) {
	if err := (Schedule{5, 10, 20}).Validate(100); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := (Schedule{0, 10}).Validate(100); err == nil {
		t.Error("schedule containing iteration 0 should be invalid")
	}
	if err := (Schedule{10, 10}).Validate(100); err == nil {
		t.Error("non-increasing schedule should be invalid")
	}
	if err := (Schedule{10, 100}).Validate(100); err == nil {
		t.Error("schedule reaching gamma should be invalid")
	}
	if err := (Schedule{}).Validate(1); err != nil {
		t.Errorf("empty schedule rejected: %v", err)
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	s := Schedule{3, 7, 42}
	flags := s.Bools(100)
	got := FromBools(flags)
	if len(got) != len(s) {
		t.Fatalf("round trip changed length: %v vs %v", got, s)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Errorf("round trip mismatch: %v vs %v", got, s)
		}
	}
	// Index 0 is always ignored.
	flags2 := []bool{true, false, true}
	if got := FromBools(flags2); len(got) != 1 || got[0] != 2 {
		t.Errorf("FromBools ignores index 0: got %v", got)
	}
}

func TestNormalize(t *testing.T) {
	s := Normalize([]int{42, 3, 7, 3, 0, -5, 200}, 100)
	want := Schedule{3, 7, 42}
	if len(s) != len(want) {
		t.Fatalf("Normalize = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("Normalize = %v, want %v", s, want)
		}
	}
	if err := s.Validate(100); err != nil {
		t.Errorf("normalized schedule invalid: %v", err)
	}
}

func TestPeriodic(t *testing.T) {
	s := Periodic(100, 30)
	want := Schedule{30, 60, 90}
	if len(s) != 3 {
		t.Fatalf("Periodic = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("Periodic = %v, want %v", s, want)
		}
	}
	if got := Periodic(10, 100); len(got) != 0 {
		t.Errorf("period beyond gamma should be empty, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Periodic with k=0 should panic")
		}
	}()
	Periodic(10, 0)
}

func TestTotalTimeNoLB(t *testing.T) {
	// Without LB steps the standard total is the closed-form sum:
	// sum_{t=0}^{gamma-1} [W0/P + (m+a) t] / omega.
	p := refParams()
	g := float64(p.Gamma)
	want := (g*p.W0/float64(p.P) + (p.M+p.A)*g*(g-1)/2) / p.Omega
	got := TotalTimeStd(p, nil)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("TotalTimeStd(no LB) = %g, want %g", got, want)
	}
}

func TestTotalTimeCountsLBCost(t *testing.T) {
	p := refParams()
	t0 := TotalTimeStd(p, nil)
	t1 := TotalTimeStd(p, Schedule{50})
	// One LB step adds C and resets the per-iteration ramp; with the
	// reference parameters the reset saves more than C for late halves.
	// At minimum the difference must include the cost C exactly when we
	// zero out the benefit, so verify accounting directly instead:
	// evaluating a schedule at gamma-1 (last iteration) yields exactly
	// +C - savings for one iteration.
	if t1 >= t0 {
		t.Logf("schedule at 50 did not pay off (t1=%g t0=%g) — acceptable, depends on C", t1, t0)
	}
	// Make LB free: then balancing mid-run can only help (or tie).
	p2 := p
	p2.C = 0
	if TotalTimeStd(p2, Schedule{50}) > TotalTimeStd(p2, nil) {
		t.Error("free LB step should never hurt the standard method")
	}
	// And an absurdly expensive LB must hurt.
	p3 := p
	p3.C = 1e9
	if TotalTimeStd(p3, Schedule{50}) <= TotalTimeStd(p3, nil) {
		t.Error("an expensive LB step must increase total time")
	}
}

func TestPerIterationTimes(t *testing.T) {
	p := refParams()
	s := Schedule{10}
	times := PerIterationTimes(p, s, model.Params.StdIterTime)
	if len(times) != p.Gamma {
		t.Fatalf("length = %d, want %d", len(times), p.Gamma)
	}
	// Iteration 9 is the 9th since start; iteration 10 resets to a larger
	// base workload but zero ramp. The drop must be visible.
	if times[10] >= times[9] {
		t.Errorf("LB at 10 should reduce iteration time: t9=%g t10=%g", times[9], times[10])
	}
	// The sum plus LB costs equals TotalTime.
	sum := stats.Sum(times) + p.C*float64(len(s))
	if !almostEqual(sum, TotalTimeStd(p, s), 1e-9) {
		t.Errorf("per-iteration sum %g != total %g", sum, TotalTimeStd(p, s))
	}
}

func TestEverySigmaPlusMatchesManualIteration(t *testing.T) {
	p := refParams()
	s := EverySigmaPlus(p)
	if err := s.Validate(p.Gamma); err != nil {
		t.Fatalf("EverySigmaPlus produced invalid schedule: %v", err)
	}
	// Rebuild manually.
	var want Schedule
	lbp := 0
	for {
		sp, err := p.SigmaPlus(lbp)
		if err != nil {
			break
		}
		next := lbp + int(math.Floor(sp))
		if int(math.Floor(sp)) < 1 {
			next = lbp + 1
		}
		if next >= p.Gamma {
			break
		}
		want = append(want, next)
		lbp = next
	}
	if len(s) != len(want) {
		t.Fatalf("schedule = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("schedule = %v, want %v", s, want)
		}
	}
}

func TestMenonIsAlphaZeroSigmaPlus(t *testing.T) {
	p := refParams()
	m := Menon(p)
	z := EverySigmaPlus(p.WithAlpha(0))
	if len(m) != len(z) {
		t.Fatalf("Menon %v != sigma+(alpha=0) %v", m, z)
	}
	for i := range m {
		if m[i] != z[i] {
			t.Errorf("Menon %v != sigma+(alpha=0) %v", m, z)
		}
	}
	if len(m) == 0 {
		t.Error("Menon schedule should have at least one LB step for the reference params")
	}
}

func TestEverySigmaPlusNoOverload(t *testing.T) {
	p := refParams()
	p.N = 0
	p.M = 0
	p.DeltaW = p.A * float64(p.P)
	if s := EverySigmaPlus(p); len(s) != 0 {
		t.Errorf("no-overload schedule should be empty, got %v", s)
	}
}

func TestAlphaZeroTotalsAgree(t *testing.T) {
	p := refParams().WithAlpha(0)
	s := Menon(p)
	std := TotalTimeStd(p, s)
	ul := TotalTimeULBA(p, s)
	if !almostEqual(std, ul, 1e-12) {
		t.Errorf("alpha=0: std %g != ulba %g", std, ul)
	}
}

func TestCountAndString(t *testing.T) {
	s := Schedule{5, 6}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

// Property: for any random instance and any valid schedule, ULBA at the best
// of a small alpha grid is never worse than the standard method on the SAME
// schedule-building rule (each method uses its own sigma+ schedule). This is
// the paper's headline claim ("always performs at least as good"), testable
// because alpha = 0 reproduces the standard method exactly.
func TestULBABestAlphaNeverWorseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomParams(seed)
		pStd := p.WithAlpha(0)
		std := TotalTimeStd(pStd, EverySigmaPlus(pStd))
		best := math.Inf(1)
		for i := 0; i <= 10; i++ {
			pa := p.WithAlpha(float64(i) / 10)
			tt := TotalTimeULBA(pa, EverySigmaPlus(pa))
			if tt < best {
				best = tt
			}
		}
		return best <= std+1e-9*std
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: total time is strictly increasing when appending LB calls whose
// cost exceeds any possible savings (C huge).
func TestExpensiveLBMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomParams(seed)
		p.C = 1e12
		t0 := TotalTimeStd(p, nil)
		t1 := TotalTimeStd(p, Schedule{p.Gamma / 2})
		t2 := TotalTimeStd(p, Schedule{p.Gamma / 3, p.Gamma / 2})
		return t0 < t1 && t1 < t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
