// Package schedule represents load-balancing schedules over the lifetime of
// an application instance and evaluates the total parallel time of Eq. (4)
// of the paper for either the standard method (Eq. 2 in Eq. 3) or ULBA
// (Eq. 5 in Eq. 3). It also builds the schedules the paper compares:
// periodic, Menon's tau, and the paper's "LB step every sigma+" proposal.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"ulba/internal/model"
)

// Schedule is the strictly increasing list of iterations at which the load
// balancer is called. Iteration 0 is never part of a schedule: the workload
// starts balanced and the initial partitioning is free (it happens before
// the run). Each listed iteration pays the LB cost C and re-partitions the
// workload before that iteration executes.
type Schedule []int

// Validate checks that the schedule is strictly increasing and within
// (0, gamma).
func (s Schedule) Validate(gamma int) error {
	prev := 0
	for k, it := range s {
		if it <= prev {
			return fmt.Errorf("schedule: entry %d = %d not strictly increasing (previous %d)", k, it, prev)
		}
		if it >= gamma {
			return fmt.Errorf("schedule: entry %d = %d outside (0, %d)", k, it, gamma)
		}
		prev = it
	}
	return nil
}

// FromBools converts Algorithm-state form (one flag per iteration, as used by
// the simulated-annealing search) to a Schedule. Index 0 is ignored: the
// initial balance is free.
func FromBools(flags []bool) Schedule {
	var s Schedule
	for i := 1; i < len(flags); i++ {
		if flags[i] {
			s = append(s, i)
		}
	}
	return s
}

// Bools converts the schedule to one flag per iteration over [0, gamma).
func (s Schedule) Bools(gamma int) []bool {
	flags := make([]bool, gamma)
	for _, it := range s {
		if it > 0 && it < gamma {
			flags[it] = true
		}
	}
	return flags
}

// Normalize sorts and deduplicates an arbitrary iteration list into a valid
// schedule for a gamma-iteration run.
func Normalize(iters []int, gamma int) Schedule {
	cp := append([]int(nil), iters...)
	sort.Ints(cp)
	var s Schedule
	for _, it := range cp {
		if it <= 0 || it >= gamma {
			continue
		}
		if len(s) > 0 && s[len(s)-1] == it {
			continue
		}
		s = append(s, it)
	}
	return s
}

// IterTimeFunc is the per-iteration time model plugged into Eq. (3):
// the time of the t-th iteration after a LB step at iteration lbp.
// model.Params.StdIterTime and model.Params.ULBAIterTime both satisfy it.
type IterTimeFunc func(p model.Params, lbp, t int) float64

// TotalTime evaluates Eq. (4): the sum over all LB intervals of Eq. (3),
// using iter as the per-iteration time (Eq. 2 for the standard method,
// Eq. 5 for ULBA). Each LB step in the schedule contributes the cost C.
func TotalTime(p model.Params, s Schedule, iter IterTimeFunc) float64 {
	total := 0.0
	lbp := 0
	k := 0
	for i := 0; i < p.Gamma; i++ {
		if k < len(s) && s[k] == i {
			total += p.C
			lbp = i
			k++
		}
		total += iter(p, lbp, i-lbp)
	}
	return total
}

// TotalTimeStd evaluates the schedule under the standard LB method.
func TotalTimeStd(p model.Params, s Schedule) float64 {
	return TotalTime(p, s, model.Params.StdIterTime)
}

// TotalTimeULBA evaluates the schedule under ULBA. The initial partition
// (iteration 0) is assumed to already apply the ULBA weighting, consistent
// with substituting Eq. (5) into Eq. (3) for every interval; with alpha = 0
// this is identical to the standard method.
func TotalTimeULBA(p model.Params, s Schedule) float64 {
	return TotalTime(p, s, model.Params.ULBAIterTime)
}

// PerIterationTimes returns the individual iteration times (without LB
// costs) under the given schedule, for traces and plots.
func PerIterationTimes(p model.Params, s Schedule, iter IterTimeFunc) []float64 {
	out := make([]float64, p.Gamma)
	lbp := 0
	k := 0
	for i := 0; i < p.Gamma; i++ {
		if k < len(s) && s[k] == i {
			lbp = i
			k++
		}
		out[i] = iter(p, lbp, i-lbp)
	}
	return out
}

// Periodic returns a schedule calling the balancer every k iterations
// (at k, 2k, ... < gamma). It panics if k <= 0.
func Periodic(gamma, k int) Schedule {
	if k <= 0 {
		panic("schedule: period must be positive")
	}
	var s Schedule
	for i := k; i < gamma; i += k {
		s = append(s, i)
	}
	return s
}

// EverySigmaPlus builds the paper's proposed schedule: after a LB step at
// iteration i, the next step happens sigma+(i) iterations later (Section
// III-B: "we propose to use sigma+ as the LB steps"). With alpha = 0 this
// degenerates to Menon's tau schedule. When the model has no overloading
// PEs, the schedule is empty.
func EverySigmaPlus(p model.Params) Schedule {
	var s Schedule
	lbp := 0
	for {
		sp, err := p.SigmaPlus(lbp)
		if err != nil || math.IsInf(sp, 1) {
			return s
		}
		step := int(math.Floor(sp))
		if step < 1 {
			step = 1
		}
		next := lbp + step
		if next >= p.Gamma {
			return s
		}
		s = append(s, next)
		lbp = next
	}
}

// Menon builds the schedule of the standard method with Menon's optimal
// interval: LB steps every tau = sqrt(2*C*omega/m^) iterations. It is the
// alpha = 0 special case of EverySigmaPlus and is provided for clarity.
func Menon(p model.Params) Schedule {
	return EverySigmaPlus(p.WithAlpha(0))
}

// Count returns the number of LB calls in the schedule.
func (s Schedule) Count() int { return len(s) }

// Intervals returns the gap, in iterations, before each LB call: the first
// entry is the distance from iteration 0 to the first call, each following
// entry the distance from the previous call. Useful to inspect how a planner
// spaces its steps (a periodic plan has constant intervals; a sigma+ plan
// stretches them as the workload grows).
func (s Schedule) Intervals() []int {
	out := make([]int, len(s))
	prev := 0
	for i, it := range s {
		out[i] = it - prev
		prev = it
	}
	return out
}

// String renders the schedule compactly.
func (s Schedule) String() string {
	return fmt.Sprintf("LB@%v", []int(s))
}
