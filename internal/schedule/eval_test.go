package schedule

import (
	"math"
	"testing"

	"ulba/internal/instance"
	"ulba/internal/model"
)

// slowULBA is the pre-evaluator composition the fast path must reproduce
// bit for bit.
func slowULBA(p model.Params) float64 {
	return TotalTimeULBA(p, EverySigmaPlus(p))
}

func slowStd(p model.Params) float64 {
	return TotalTimeStd(p, EverySigmaPlus(p))
}

// The evaluator's ULBA total must be bit-identical (==, not within-epsilon)
// to evaluating the materialized sigma+ schedule, across instances and the
// whole alpha range.
func TestEvaluatorULBABitIdentical(t *testing.T) {
	gen := instance.NewGenerator(101)
	var ev Evaluator
	for i := 0; i < 200; i++ {
		p := gen.Sample()
		for _, a := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			pa := p.WithAlpha(a)
			fast := ev.TotalTimeULBA(pa)
			slow := slowULBA(pa)
			if fast != slow {
				t.Fatalf("instance %d alpha %g: evaluator %.17g != slow path %.17g (diff %g)\n%v",
					i, a, fast, slow, fast-slow, pa)
			}
		}
	}
}

// Same contract for the standard method on the sigma+/Menon schedule.
func TestEvaluatorStdBitIdentical(t *testing.T) {
	gen := instance.NewGenerator(102)
	var ev Evaluator
	for i := 0; i < 200; i++ {
		p := gen.Sample().WithAlpha(0)
		fast := ev.TotalTimeStd(p)
		slow := slowStd(p)
		if fast != slow {
			t.Fatalf("instance %d: evaluator %.17g != slow path %.17g\n%v", i, fast, slow, p)
		}
	}
}

// BestAlphaIncremental must return exactly what the unpruned scan returns:
// same argmin (first minimum wins ties) and the bit-identical time.
func TestBestAlphaIncrementalMatchesFullScan(t *testing.T) {
	gen := instance.NewGenerator(103)
	grid := make([]float64, 100)
	for i := range grid {
		grid[i] = float64(i) / float64(len(grid)-1)
	}
	var ev Evaluator
	for i := 0; i < 100; i++ {
		p := gen.Sample()
		fastAlpha, fastBest := ev.BestAlphaIncremental(p, grid)

		slowAlpha, slowBest := 0.0, -1.0
		for _, a := range grid {
			tt := slowULBA(p.WithAlpha(a))
			if slowBest < 0 || tt < slowBest {
				slowBest, slowAlpha = tt, a
			}
		}
		if fastAlpha != slowAlpha || fastBest != slowBest {
			t.Fatalf("instance %d: incremental (%g, %.17g) != full scan (%g, %.17g)\n%v",
				i, fastAlpha, fastBest, slowAlpha, slowBest, p)
		}
	}
}

// The scratch-buffer schedule must equal EverySigmaPlus element-wise.
func TestEvaluatorSigmaPlusMatchesEverySigmaPlus(t *testing.T) {
	gen := instance.NewGenerator(104)
	var ev Evaluator
	for i := 0; i < 100; i++ {
		p := gen.Sample()
		got := ev.SigmaPlus(p)
		want := EverySigmaPlus(p)
		if len(got) != len(want) {
			t.Fatalf("instance %d: len %d != %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("instance %d: step %d: %d != %d", i, k, got[k], want[k])
			}
		}
	}
}

// No overloading PEs: the schedule is empty and both paths agree.
func TestEvaluatorNoOverload(t *testing.T) {
	p := model.Params{
		P: 64, N: 0, Gamma: 50,
		W0: 1e10, DeltaW: 64 * 1e5, A: 1e5, M: 0,
		Alpha: 0.3, Omega: 1e9, C: 1,
	}
	var ev Evaluator
	if got, want := ev.TotalTimeULBA(p), slowULBA(p); got != want {
		t.Errorf("ULBA no-overload: %g != %g", got, want)
	}
	if got, want := ev.TotalTimeStd(p), slowStd(p); got != want {
		t.Errorf("std no-overload: %g != %g", got, want)
	}
	if s := ev.SigmaPlus(p); len(s) != 0 {
		t.Errorf("no-overload schedule not empty: %v", s)
	}
}

// A degenerate instance whose totals overflow to +Inf at every grid alpha
// must match the full scan — (grid[0], +Inf) — not leak the -1 "nothing
// found" sentinel. (Alpha = 1 is excluded: there the (1-alpha) term zeroes
// the overflowing share and the total is legitimately finite.)
func TestBestAlphaIncrementalInfiniteTotals(t *testing.T) {
	p := instance.NewGenerator(107).Sample()
	p.W0 = 1e308
	p.Omega = 1e-10
	grid := []float64{0, 0.5, 0.9}
	for _, a := range grid {
		if slow := slowULBA(p.WithAlpha(a)); !math.IsInf(slow, 1) {
			t.Fatalf("test premise broken: alpha %g total %g is finite", a, slow)
		}
	}
	alpha, best := new(Evaluator).BestAlphaIncremental(p, grid)
	if alpha != grid[0] || !math.IsInf(best, 1) {
		t.Errorf("infinite-total instance: got (%g, %g), want (%g, +Inf)", alpha, best, grid[0])
	}
}

// The aborted-evaluation contract: a partial sum is a lower bound, and an
// evaluation aborted against a bound would have ended at or above it.
func TestULBATimeBoundedAborts(t *testing.T) {
	p := instance.NewGenerator(105).Sample().WithAlpha(0.5)
	full, complete := ulbaSigmaPlusTime(p, math.Inf(1))
	if !complete {
		t.Fatal("unbounded evaluation reported as aborted")
	}
	partial, complete := ulbaSigmaPlusTime(p, full/2)
	if complete {
		t.Fatal("evaluation bounded at half the total reported complete")
	}
	if partial < full/2 || partial > full {
		t.Errorf("partial sum %g outside [bound, total] = [%g, %g]", partial, full/2, full)
	}
}

// The evaluation core must not allocate: one instance times a 100-point
// grid, zero heap allocations.
func TestEvaluatorZeroAllocs(t *testing.T) {
	p := instance.NewGenerator(106).Sample()
	grid := make([]float64, 100)
	for i := range grid {
		grid[i] = float64(i) / float64(len(grid)-1)
	}
	var ev Evaluator
	ev.SigmaPlus(p) // warm the scratch buffer once

	if n := testing.AllocsPerRun(50, func() {
		ev.TotalTimeULBA(p)
	}); n != 0 {
		t.Errorf("TotalTimeULBA allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		ev.TotalTimeStd(p)
	}); n != 0 {
		t.Errorf("TotalTimeStd allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		ev.BestAlphaIncremental(p, grid)
	}); n != 0 {
		t.Errorf("BestAlphaIncremental allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		ev.SigmaPlus(p)
	}); n != 0 {
		t.Errorf("SigmaPlus allocates %v times per run after warmup", n)
	}
}
