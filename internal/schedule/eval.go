package schedule

import (
	"math"

	"ulba/internal/model"
)

// Evaluator evaluates the sigma+ schedule family incrementally, without
// materializing a Schedule per evaluation. It is the allocation-free core
// behind the alpha-grid scans of the Figs. 2-3 experiments and the public
// Sweep fast path: one instance times one 100-point alpha grid costs zero
// heap allocations instead of the ~2 per grid point of the slow path
// (EverySigmaPlus followed by TotalTimeULBA).
//
// Bit-identicality contract: every total returned by an Evaluator method is
// the result of the same floating-point operations, applied in the same
// order, as the corresponding slow-path composition — TotalTimeULBA (or
// TotalTimeStd) over EverySigmaPlus. The incremental loops hoist only
// already-rounded interval constants (the balanced share, sigma-, the
// overloading ratio) and keep each per-iteration expression term-for-term
// identical to model.Params.ULBAIterTime / StdIterTime, so no re-association
// or fused-multiply-add difference can creep in. Golden tests in this
// package and the SweepSummary golden test in the root package pin the
// equivalence.
//
// An Evaluator additionally owns a scratch buffer reused by SigmaPlus for
// callers that do need the materialized schedule. The zero value is ready to
// use. An Evaluator is NOT safe for concurrent use; give each worker
// goroutine its own.
type Evaluator struct {
	buf Schedule
}

// nextSigmaPlusStep returns the iteration of the LB step following a step at
// lbp under the every-sigma+ policy, or p.Gamma when the schedule ends. It
// reproduces one step of EverySigmaPlus exactly, including the floor and the
// minimum step of one iteration.
func nextSigmaPlusStep(p model.Params, lbp int) int {
	sp, err := p.SigmaPlus(lbp)
	if err != nil || math.IsInf(sp, 1) {
		return p.Gamma
	}
	step := int(math.Floor(sp))
	if step < 1 {
		step = 1
	}
	next := lbp + step
	if next >= p.Gamma {
		return p.Gamma
	}
	return next
}

// ulbaSigmaPlusTime accumulates Eq. (4) under ULBA (Eq. 5 per iteration) for
// the every-sigma+ schedule of p, walking the schedule on the fly. The
// running total is monotone non-decreasing (iteration times and the LB cost
// C are non-negative for valid parameters), so the scan aborts as soon as
// the partial sum reaches bound: the full total could then never be strictly
// below it. It returns the accumulated total and whether the evaluation ran
// to completion; an aborted evaluation's total is a partial sum and only
// meaningful as a lower bound on the true total.
func ulbaSigmaPlusTime(p model.Params, bound float64) (float64, bool) {
	// Only a finite bound prunes: with bound = +Inf a degenerate instance
	// whose running total overflows to +Inf must still evaluate to
	// completion and return (+Inf, true), exactly like the full scan —
	// otherwise the +Inf >= +Inf comparison would mark it aborted.
	prune := !math.IsInf(bound, 1)
	total := 0.0
	lbp := 0
	for {
		next := nextSigmaPlusStep(p, lbp)
		// Interval constants, hoisted once per LB interval. Each is the
		// identical rounded value ULBAIterTime computes per call.
		share := p.Wtot(lbp) / float64(p.P)
		sm, err := p.SigmaMinus(lbp)
		if err != nil {
			// No overloading PEs: the underloaded branch never ends.
			sm = math.MaxInt64
		}
		over := p.Alpha * float64(p.N) / float64(p.P-p.N)
		oneMinusAlpha := 1 - p.Alpha
		ma := p.M + p.A
		for i := lbp; i < next; i++ {
			t := i - lbp
			ft := float64(t)
			if t <= sm {
				total += ((1+over)*share + p.A*ft) / p.Omega
			} else {
				total += (oneMinusAlpha*share + ma*ft) / p.Omega
			}
			if prune && total >= bound {
				return total, false
			}
		}
		if next >= p.Gamma {
			return total, true
		}
		total += p.C
		lbp = next
	}
}

// TotalTimeULBA returns TotalTimeULBA(p, EverySigmaPlus(p)) — the ULBA total
// parallel time of the paper's proposed schedule at p.Alpha — without
// materializing the schedule. The result is bit-identical to the slow path.
func (e *Evaluator) TotalTimeULBA(p model.Params) float64 {
	total, _ := ulbaSigmaPlusTime(p, math.Inf(1))
	return total
}

// TotalTimeStd returns TotalTimeStd(p, EverySigmaPlus(p)) — the standard
// method's total parallel time (Eq. 2 in Eqs. 3-4) on the every-sigma+
// schedule of p — without materializing the schedule. Callers evaluating the
// paper's standard baseline pass p.WithAlpha(0), which turns the schedule
// into Menon's tau plan. The result is bit-identical to the slow path.
func (e *Evaluator) TotalTimeStd(p model.Params) float64 {
	total := 0.0
	lbp := 0
	for {
		next := nextSigmaPlusStep(p, lbp)
		share := p.Wtot(lbp) / float64(p.P)
		ma := p.M + p.A
		for i := lbp; i < next; i++ {
			ft := float64(i - lbp)
			total += (share + ma*ft) / p.Omega
		}
		if next >= p.Gamma {
			return total
		}
		total += p.C
		lbp = next
	}
}

// BestAlphaIncremental scans the alpha grid and returns the alpha minimizing
// the ULBA total time on the every-sigma+ schedule, with that time. It
// returns exactly what a full scan (TotalTimeULBA at every grid point,
// first-minimum-wins ties) returns, but prunes most grid points early: the
// partial total is monotone in the iteration index, so an alpha whose
// running sum reaches the best total seen so far is abandoned mid-schedule —
// it can no longer be the strict minimum. The winning alpha is always
// evaluated to completion, so the returned time is bit-identical to the
// slow-path scan.
func (e *Evaluator) BestAlphaIncremental(p model.Params, grid []float64) (alpha, best float64) {
	best = -1
	for _, a := range grid {
		bound := best
		if best < 0 {
			bound = math.Inf(1)
		}
		t, complete := ulbaSigmaPlusTime(p.WithAlpha(a), bound)
		if complete && (best < 0 || t < best) {
			best, alpha = t, a
		}
	}
	return alpha, best
}

// SigmaPlus returns the EverySigmaPlus schedule of p, reusing the
// evaluator's scratch buffer across calls: after the first call on a given
// Evaluator, building a schedule allocates only when it outgrows every
// previous one. The returned slice aliases the buffer and is valid until the
// next SigmaPlus call on the same Evaluator; callers that retain it must
// copy. An empty schedule is returned as a zero-length slice.
func (e *Evaluator) SigmaPlus(p model.Params) Schedule {
	s := e.buf[:0]
	lbp := 0
	for {
		next := nextSigmaPlusStep(p, lbp)
		if next >= p.Gamma {
			e.buf = s
			return s
		}
		s = append(s, next)
		lbp = next
	}
}
