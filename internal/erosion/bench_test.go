package erosion

import (
	"fmt"
	"testing"
)

func BenchmarkStep(b *testing.B) {
	for _, size := range []struct{ w, h, r int }{
		{64, 64, 16},
		{192, 400, 48},
	} {
		b.Run(fmt.Sprintf("%dx%d", size.w, size.h), func(b *testing.B) {
			cfg := Config{
				P: 4, StripeWidth: size.w, Height: size.h, Radius: size.r,
				StrongRocks: 1, ProbStrong: 0.4, ProbWeak: 0.02,
				Seed: 1, FlopPerUnit: 100,
			}
			d := NewDomain(cfg, 0, cfg.Width())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Step(i, nil, nil)
			}
			b.ReportMetric(float64(d.RockCount()), "rocksLeft")
		})
	}
}

func BenchmarkNewDomain(b *testing.B) {
	cfg := DefaultConfig(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewDomain(cfg, 0, cfg.StripeWidth) // one stripe
	}
}

func BenchmarkRebuildMigration(b *testing.B) {
	cfg := DefaultConfig(4)
	d := NewDomain(cfg, 0, cfg.Width())
	for i := 0; i < 20; i++ {
		d.Step(i, nil, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk := d.CopyRange(10, 30)
		shrunk := d.Rebuild(30, d.Hi(), nil)
		_ = shrunk.Rebuild(10, d.Hi(), map[int][][]Cell{10: chunk})
	}
}

func BenchmarkPackCells(b *testing.B) {
	cfg := DefaultConfig(4)
	d := NewDomain(cfg, 0, 64)
	cols := d.CopyRange(0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := PackCells(cols)
		_ = UnpackCells(buf, cfg.Height)
	}
}
