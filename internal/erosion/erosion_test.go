package erosion

import (
	"math"
	"testing"
	"testing/quick"
)

func testConfig(p int) Config {
	return Config{
		P:           p,
		StripeWidth: 24,
		Height:      24,
		Radius:      6,
		StrongRocks: 1,
		ProbStrong:  0.4,
		ProbWeak:    0.02,
		Seed:        7,
		FlopPerUnit: 100,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(4).Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	if err := DefaultConfig(8).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := map[string]func(*Config){
		"P=0":          func(c *Config) { c.P = 0 },
		"width":        func(c *Config) { c.StripeWidth = 0 },
		"height":       func(c *Config) { c.Height = 0 },
		"radius0":      func(c *Config) { c.Radius = 0 },
		"radiusTooBig": func(c *Config) { c.Radius = c.StripeWidth / 2 },
		"strongNeg":    func(c *Config) { c.StrongRocks = -1 },
		"strongMany":   func(c *Config) { c.StrongRocks = c.P + 1 },
		"probHigh":     func(c *Config) { c.ProbStrong = 1.5 },
		"probNeg":      func(c *Config) { c.ProbWeak = -0.1 },
		"flop0":        func(c *Config) { c.FlopPerUnit = 0 },
	}
	for name, mutate := range bad {
		c := testConfig(4)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestCellSemantics(t *testing.T) {
	if Rock.IsFluid() || Rock.Weight() != 0 {
		t.Error("rock misclassified")
	}
	if !Fluid.IsFluid() || Fluid.Weight() != 1 {
		t.Error("fluid misclassified")
	}
	if !Refined.IsFluid() || Refined.Weight() != 4 {
		t.Error("refined misclassified")
	}
}

func TestStrongSetDeterministicAndSized(t *testing.T) {
	c := testConfig(8)
	c.StrongRocks = 3
	a := c.StrongSet()
	b := c.StrongSet()
	countA := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("strong set not deterministic")
		}
		if a[i] {
			countA++
		}
	}
	if countA != 3 {
		t.Errorf("strong count = %d, want 3", countA)
	}
	c2 := c
	c2.Seed = 12345
	d := c2.StrongSet()
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
		}
	}
	if same {
		t.Log("warning: different seed chose the same strong set (possible but unlikely)")
	}
}

func TestDiscGeometry(t *testing.T) {
	c := testConfig(3)
	d := NewDomain(c, 0, c.Width())
	// Disc centers are inside stripes: the center cell of stripe 1 is
	// rock, the stripe corner is fluid.
	cx := c.StripeWidth + c.StripeWidth/2
	cy := c.Height / 2
	if d.Cell(cx, cy) != Rock {
		t.Error("disc center should be rock")
	}
	if d.Cell(c.StripeWidth, 0) != Fluid {
		t.Error("stripe corner should be fluid")
	}
	// Rock count per stripe ~ pi*r^2 within 15%.
	want := math.Pi * float64(c.Radius) * float64(c.Radius)
	per := float64(d.RockCount()) / float64(c.P)
	if math.Abs(per-want)/want > 0.15 {
		t.Errorf("rock cells per disc = %v, want ~%v", per, want)
	}
	// Discs do not touch stripe boundaries.
	for x := 0; x < c.Width(); x += c.StripeWidth {
		for y := 0; y < c.Height; y++ {
			if d.Cell(x, y) == Rock {
				t.Fatalf("rock at stripe boundary column %d row %d", x, y)
			}
		}
	}
}

func TestInitialWorkload(t *testing.T) {
	c := testConfig(2)
	d := NewDomain(c, 0, c.Width())
	cells := c.Width() * c.Height
	rocks := d.RockCount()
	if got := d.Workload(); got != float64(cells-rocks) {
		t.Errorf("initial workload = %v, want fluid cells %d", got, cells-rocks)
	}
	if got := d.Flop(); got != d.Workload()*c.FlopPerUnit {
		t.Errorf("Flop = %v", got)
	}
}

func TestStepConservesCellsAndGrowsWeight(t *testing.T) {
	c := testConfig(2)
	d := NewDomain(c, 0, c.Width())
	initialRocks := d.RockCount()
	initialWork := d.Workload()
	totalEroded := 0
	for i := 0; i < 30; i++ {
		totalEroded += d.Step(i, nil, nil)
	}
	if totalEroded == 0 {
		t.Fatal("no erosion after 30 iterations of a strong disc")
	}
	if got := d.RockCount(); got != initialRocks-totalEroded {
		t.Errorf("rock accounting: %d remaining, want %d", got, initialRocks-totalEroded)
	}
	if got := d.Workload(); got != initialWork+4*float64(totalEroded) {
		t.Errorf("workload = %v, want %v", got, initialWork+4*float64(totalEroded))
	}
}

func TestOnlyBoundaryRocksErode(t *testing.T) {
	c := testConfig(1)
	d := NewDomain(c, 0, c.Width())
	d.Step(0, nil, nil)
	// After one step, the disc interior (well within the radius) must be
	// intact: interior rocks have no fluid neighbors.
	cx := c.StripeWidth / 2
	cy := c.Height / 2
	if d.Cell(cx, cy) != Rock {
		t.Error("disc core eroded in one step")
	}
	// Every eroded cell is Refined, never Fluid.
	for x := 0; x < c.Width(); x++ {
		for y := 0; y < c.Height; y++ {
			cell := d.Cell(x, y)
			if cell != Rock && cell != Fluid && cell != Refined {
				t.Fatalf("unexpected cell state %d at (%d,%d)", cell, x, y)
			}
		}
	}
}

func TestStrongDiscErodesFaster(t *testing.T) {
	c := testConfig(4)
	c.StrongRocks = 1
	strong := c.StrongSet()
	strongIdx := -1
	for i, s := range strong {
		if s {
			strongIdx = i
		}
	}
	d := NewDomain(c, 0, c.Width())
	for i := 0; i < 40; i++ {
		d.Step(i, nil, nil)
	}
	// Accumulated fluid weight per stripe.
	gains := make([]float64, c.P)
	for s := 0; s < c.P; s++ {
		for x := s * c.StripeWidth; x < (s+1)*c.StripeWidth; x++ {
			gains[s] += d.ColWeight(x)
		}
	}
	for s := 0; s < c.P; s++ {
		if s != strongIdx && gains[s] >= gains[strongIdx] {
			t.Errorf("weak stripe %d (%v) caught up with strong stripe %d (%v)",
				s, gains[s], strongIdx, gains[strongIdx])
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := testConfig(2)
	run := func() float64 {
		d := NewDomain(c, 0, c.Width())
		for i := 0; i < 20; i++ {
			d.Step(i, nil, nil)
		}
		return d.Workload()
	}
	if run() != run() {
		t.Error("identical runs diverged")
	}
}

// The critical substrate property: stepping a partitioned domain with halo
// exchange is bit-identical to stepping the full domain.
func TestPartitionIndependence(t *testing.T) {
	c := testConfig(3)
	width := c.Width()
	ref := NewDomain(c, 0, width)

	// Three parts with uneven cuts crossing disc areas.
	cuts := []int{0, c.StripeWidth/2 + 3, 2*c.StripeWidth - 5, width}
	parts := make([]*Domain, 3)
	for i := range parts {
		parts[i] = NewDomain(c, cuts[i], cuts[i+1])
	}

	const iters = 25
	for it := 0; it < iters; it++ {
		ref.Step(it, nil, nil)

		// Snapshot halos before stepping any part.
		lefts := make([][]Cell, 3)
		rights := make([][]Cell, 3)
		for i := range parts {
			if i > 0 {
				lefts[i] = parts[i-1].BoundaryColumn(false)
			}
			if i < 2 {
				rights[i] = parts[i+1].BoundaryColumn(true)
			}
		}
		for i := range parts {
			parts[i].Step(it, lefts[i], rights[i])
		}
	}

	for i, part := range parts {
		for x := part.Lo(); x < part.Hi(); x++ {
			for y := 0; y < c.Height; y++ {
				if part.Cell(x, y) != ref.Cell(x, y) {
					t.Fatalf("part %d diverged from reference at (%d,%d): %d vs %d",
						i, x, y, part.Cell(x, y), ref.Cell(x, y))
				}
			}
			if part.ColWeight(x) != ref.ColWeight(x) {
				t.Fatalf("column %d weight diverged: %v vs %v", x, part.ColWeight(x), ref.ColWeight(x))
			}
		}
	}
}

func TestCopyRangeAndRebuildRoundTrip(t *testing.T) {
	c := testConfig(2)
	d := NewDomain(c, 0, c.Width())
	for i := 0; i < 10; i++ {
		d.Step(i, nil, nil)
	}
	// Simulate migrating columns [10, 20) from this domain to another
	// owner and back: rebuild with a narrower range, then restore.
	chunk := d.CopyRange(10, 20)
	shrunk := d.Rebuild(20, d.Hi(), nil) // keep only [20, hi)
	if shrunk.Lo() != 20 || shrunk.Hi() != d.Hi() {
		t.Fatalf("shrunk range [%d,%d)", shrunk.Lo(), shrunk.Hi())
	}
	restored := shrunk.Rebuild(10, d.Hi(), map[int][][]Cell{10: chunk})
	for x := 10; x < d.Hi(); x++ {
		for y := 0; y < c.Height; y++ {
			if restored.Cell(x, y) != d.Cell(x, y) {
				t.Fatalf("restored cell (%d,%d) differs", x, y)
			}
		}
		if restored.ColWeight(x) != d.ColWeight(x) {
			t.Fatalf("restored weight %d differs", x)
		}
	}
	if restored.RockCount() != d.RockCount()-countRocks(chunkRows(d, 0, 10)) {
		// restored dropped columns [0,10): rock accounting must match.
		t.Fatalf("rock counts diverged after rebuild")
	}
}

func chunkRows(d *Domain, a, b int) [][]Cell { return d.CopyRange(a, b) }

func countRocks(cols [][]Cell) int {
	n := 0
	for _, col := range cols {
		for _, c := range col {
			if c == Rock {
				n++
			}
		}
	}
	return n
}

func TestRebuildPanicsOnBadTiling(t *testing.T) {
	c := testConfig(1)
	d := NewDomain(c, 0, c.Width())
	for name, f := range map[string]func(){
		"missing": func() { d.Rebuild(0, c.Width()+0, map[int][][]Cell{}) }, // fine: full overlap, no panic
		"overlap": func() {
			d.Rebuild(0, c.Width(), map[int][][]Cell{0: d.CopyRange(0, 1)})
		},
	} {
		if name == "missing" {
			continue // covered below with a real gap
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
	// A real gap: new range extends beyond owned with no received chunk.
	half := NewDomain(c, 0, c.Width()/2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("gap should panic")
			}
		}()
		half.Rebuild(0, c.Width(), nil)
	}()
}

func TestPackUnpackCells(t *testing.T) {
	c := testConfig(1)
	d := NewDomain(c, 0, 5)
	cols := d.CopyRange(0, 5)
	rt := UnpackCells(PackCells(cols), c.Height)
	if len(rt) != 5 {
		t.Fatalf("round trip count = %d", len(rt))
	}
	for i := range cols {
		for y := range cols[i] {
			if rt[i][y] != cols[i][y] {
				t.Fatalf("cell (%d,%d) corrupted", i, y)
			}
		}
	}
	if PackCells(nil) != nil {
		t.Error("empty pack should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("corrupt payload should panic")
		}
	}()
	UnpackCells(make([]byte, 7), 3)
}

func TestPackUnpackHalo(t *testing.T) {
	col := []Cell{Rock, Fluid, Refined}
	rt := UnpackHalo(PackHalo(col))
	for i := range col {
		if rt[i] != col[i] {
			t.Fatal("halo round trip corrupted")
		}
	}
	if UnpackHalo(nil) != nil || PackHalo(nil) != nil {
		t.Error("nil halo should round trip to nil")
	}
}

func TestBoundaryColumn(t *testing.T) {
	c := testConfig(1)
	d := NewDomain(c, 3, 8)
	left := d.BoundaryColumn(true)
	right := d.BoundaryColumn(false)
	for y := 0; y < c.Height; y++ {
		if left[y] != d.Cell(3, y) {
			t.Fatal("left boundary wrong")
		}
		if right[y] != d.Cell(7, y) {
			t.Fatal("right boundary wrong")
		}
	}
	// Mutating the copy must not affect the domain.
	left[0] = Refined
	if d.Cell(3, 0) == Refined && c.InitialCell(3, 0) != Refined {
		t.Error("BoundaryColumn aliases internal state")
	}
	empty := NewDomain(c, 5, 5)
	if empty.BoundaryColumn(true) != nil {
		t.Error("empty domain boundary should be nil")
	}
}

func TestEventualErosionOfStrongDisc(t *testing.T) {
	c := testConfig(1)
	c.StrongRocks = 1 // the only disc is strong
	d := NewDomain(c, 0, c.Width())
	initial := d.RockCount()
	for i := 0; i < 400 && d.RockCount() > 0; i++ {
		d.Step(i, nil, nil)
	}
	if d.RockCount() > initial/10 {
		t.Errorf("strong disc should mostly erode: %d of %d rocks left", d.RockCount(), initial)
	}
	// Workload must reflect every conversion.
	cells := float64(c.Width() * c.Height)
	want := cells - float64(initial) + 4*float64(initial-d.RockCount())
	if d.Workload() != want {
		t.Errorf("workload = %v, want %v", d.Workload(), want)
	}
}

// Property: a no-fluid-neighbor rock never erodes; probability 0 discs never
// erode at all.
func TestNoErosionWithZeroProbabilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := testConfig(2)
		c.Seed = seed
		c.ProbStrong = 0
		c.ProbWeak = 0
		d := NewDomain(c, 0, c.Width())
		before := d.RockCount()
		for i := 0; i < 5; i++ {
			if d.Step(i, nil, nil) != 0 {
				return false
			}
		}
		return d.RockCount() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: with probability 1, every rock with at least one fluid neighbor
// erodes every step — the erosion front advances one cell per iteration.
func TestCertainErosionProperty(t *testing.T) {
	c := testConfig(1)
	c.ProbStrong = 1
	c.ProbWeak = 1
	d := NewDomain(c, 0, c.Width())
	for i := 0; i < 3; i++ {
		eroded := d.Step(i, nil, nil)
		if eroded == 0 && d.RockCount() > 0 {
			t.Fatalf("iteration %d: no erosion despite probability 1", i)
		}
	}
}

// AppendBoundary must produce exactly the bytes of the copying halo send
// path it replaces, appended to the caller's buffer.
func TestAppendBoundaryMatchesPackHalo(t *testing.T) {
	c := testConfig(2)
	d := NewDomain(c, 0, c.Width())
	for i := 0; i < 6; i++ {
		d.Step(i, nil, nil)
	}
	for _, left := range []bool{true, false} {
		want := PackHalo(d.BoundaryColumn(left))
		buf := make([]byte, 0, c.Height)
		got := d.AppendBoundary(buf, left)
		if string(got) != string(want) {
			t.Fatalf("AppendBoundary(left=%v) diverged from PackHalo", left)
		}
		if &got[:1][0] != &buf[:1][0] {
			t.Fatalf("AppendBoundary(left=%v) reallocated despite capacity", left)
		}
	}
	empty := NewDomain(c, 3, 3)
	if out := empty.AppendBoundary(nil, true); out != nil {
		t.Fatalf("empty domain boundary = %v, want nil", out)
	}
}

// AppendRange must produce exactly the bytes of PackCells(CopyRange(a, b)),
// and panic on out-of-range requests like CopyRange does.
func TestAppendRangeMatchesPackCells(t *testing.T) {
	c := testConfig(2)
	d := NewDomain(c, 0, c.Width())
	for i := 0; i < 6; i++ {
		d.Step(i, nil, nil)
	}
	want := PackCells(d.CopyRange(10, 20))
	got := d.AppendRange(nil, 10, 20)
	if string(got) != string(want) {
		t.Fatal("AppendRange diverged from PackCells(CopyRange)")
	}
	if out := d.AppendRange(nil, 5, 5); len(out) != 0 {
		t.Fatalf("empty range encoded %d bytes", len(out))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRange outside owned range should panic")
		}
	}()
	d.AppendRange(nil, -1, 3)
}

// UnpackHaloInto must decode the same cells as UnpackHalo while reusing the
// caller's scratch.
func TestUnpackHaloInto(t *testing.T) {
	c := testConfig(1)
	d := NewDomain(c, 0, c.Width())
	wire := PackHalo(d.BoundaryColumn(true))
	want := UnpackHalo(wire)
	scratch := make([]Cell, 0, c.Height)
	got := UnpackHaloInto(scratch, wire)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
	if &got[:1][0] != &scratch[:1][0] {
		t.Fatal("UnpackHaloInto reallocated despite capacity")
	}
	if out := UnpackHaloInto(nil, nil); len(out) != 0 {
		t.Fatal("empty payload should decode to an empty halo")
	}
}

// A domain's weight and rock bookkeeping must stay exact through a rebuild
// that both keeps and receives columns, and the rebuilt domain must keep
// stepping bit-identically to a domain that never migrated (the carry-over
// of kept columns' indices is an optimization, not a semantic change).
func TestRebuildCarriesIndicesExactly(t *testing.T) {
	c := testConfig(2)
	ref := NewDomain(c, 0, c.Width())
	d := NewDomain(c, 0, c.Width())
	for i := 0; i < 5; i++ {
		ref.Step(i, nil, nil)
		d.Step(i, nil, nil)
	}
	// Round-trip columns [0, 8) out and back, forcing a mixed rebuild.
	chunk := d.CopyRange(0, 8)
	d = d.Rebuild(8, d.Hi(), nil)
	d = d.Rebuild(0, d.Hi(), map[int][][]Cell{0: chunk})
	if d.RockCount() != ref.RockCount() || d.Workload() != ref.Workload() {
		t.Fatalf("rebuild bookkeeping diverged: rocks %d vs %d, work %v vs %v",
			d.RockCount(), ref.RockCount(), d.Workload(), ref.Workload())
	}
	for i := 5; i < 15; i++ {
		er := ref.Step(i, nil, nil)
		ed := d.Step(i, nil, nil)
		if er != ed {
			t.Fatalf("iteration %d: rebuilt domain eroded %d, reference %d", i, ed, er)
		}
	}
	for x := 0; x < c.Width(); x++ {
		if d.ColWeight(x) != ref.ColWeight(x) {
			t.Fatalf("column %d weight diverged after rebuild", x)
		}
		for y := 0; y < c.Height; y++ {
			if d.Cell(x, y) != ref.Cell(x, y) {
				t.Fatalf("cell (%d,%d) diverged after rebuild", x, y)
			}
		}
	}
}
