// Package erosion implements the numerical-study application of Section IV-B
// of the paper: a 2D fluid model with non-uniform erosion of immersed rocks.
//
// The domain is a (P * StripeWidth) x Height mesh of cells. Each of the P
// stripes initially contains one rock: a disc of rock cells. A small number
// of discs are strongly erodible (erosion probability 0.4), the rest weakly
// (0.02); which discs are strong is chosen from the seed and is "not known
// in advance" by the partitioning. Fluid cells carry computational work
// (FlopPerUnit FLOP per weight unit per iteration), rock cells none. When a
// rock cell is eroded it converts into four fluid cells of smaller size — a
// mesh-refinement step modeled as one cell of weight 4 — so workload grows
// fastest around strongly erodible rocks and the PEs owning those stripes
// overload.
//
// All randomness is counter-based: the erosion decision for cell (x, y) at
// iteration i is a pure function of (seed, i, x, y). The physical evolution
// is therefore bit-identical no matter how the domain is partitioned or
// which LB policy moves columns between PEs, which makes policy comparisons
// noise-free and enables an exact distributed-versus-sequential test.
package erosion

import (
	"fmt"

	"ulba/internal/stats"
)

// Cell encodes the state of one mesh cell: Rock carries no workload; a
// fluid cell's value is its workload weight (1 for original fluid, 4 for
// the four refined cells born from an eroded rock cell).
type Cell uint8

// Cell states.
const (
	Rock    Cell = 0
	Fluid   Cell = 1
	Refined Cell = 4
)

// IsFluid reports whether the cell carries fluid (and thus workload).
func (c Cell) IsFluid() bool { return c != Rock }

// Weight returns the cell's workload weight in work units.
func (c Cell) Weight() float64 { return float64(c) }

// Config describes one application instance.
type Config struct {
	P           int     // number of stripes (and discs); the paper uses one per PE
	StripeWidth int     // columns per initial stripe (paper: 1000)
	Height      int     // rows (paper: 1000)
	Radius      int     // disc radius in cells (paper: 250)
	StrongRocks int     // number of strongly erodible discs (paper: 1..3)
	ProbStrong  float64 // erosion probability of strong discs (paper: 0.4)
	ProbWeak    float64 // erosion probability of weak discs (paper: 0.02)
	Seed        uint64
	FlopPerUnit float64 // FLOP per fluid weight unit per iteration
	// CellBytes is the wire size of one cell's state in bytes, used to
	// charge halo exchanges and migrations realistically: the in-memory
	// representation is one byte per cell, but the modeled CFD cell
	// carries a full state vector (the paper's fluid cells compute a
	// fluid model, so tens of bytes each). Zero defaults to 1.
	CellBytes int
}

// WireBytesPerCell returns the modeled wire size of one cell.
func (c Config) WireBytesPerCell() int {
	if c.CellBytes <= 0 {
		return 1
	}
	return c.CellBytes
}

// DefaultConfig returns a laptop-scale instance preserving the paper's
// geometry ratios (radius = width/4, square-ish stripes, probabilities 0.4
// and 0.02). The paper's full scale is StripeWidth = Height = 1000,
// Radius = 250.
func DefaultConfig(p int) Config {
	return Config{
		P:           p,
		StripeWidth: 192,
		Height:      400,
		Radius:      48,
		StrongRocks: 1,
		ProbStrong:  0.4,
		ProbWeak:    0.02,
		Seed:        2,
		FlopPerUnit: 100,
		CellBytes:   8,
	}
}

// Validate checks geometric and probabilistic sanity.
func (c Config) Validate() error {
	switch {
	case c.P <= 0:
		return fmt.Errorf("erosion: P = %d must be positive", c.P)
	case c.StripeWidth <= 0 || c.Height <= 0:
		return fmt.Errorf("erosion: empty domain %dx%d", c.StripeWidth, c.Height)
	case c.Radius <= 0:
		return fmt.Errorf("erosion: radius %d must be positive", c.Radius)
	case 2*c.Radius >= c.StripeWidth || 2*c.Radius >= c.Height:
		return fmt.Errorf("erosion: disc (r=%d) does not fit inside a %dx%d stripe",
			c.Radius, c.StripeWidth, c.Height)
	case c.StrongRocks < 0 || c.StrongRocks > c.P:
		return fmt.Errorf("erosion: StrongRocks = %d out of [0, %d]", c.StrongRocks, c.P)
	case c.ProbStrong < 0 || c.ProbStrong > 1 || c.ProbWeak < 0 || c.ProbWeak > 1:
		return fmt.Errorf("erosion: probabilities out of range: %g, %g", c.ProbStrong, c.ProbWeak)
	case c.FlopPerUnit <= 0:
		return fmt.Errorf("erosion: FlopPerUnit = %g must be positive", c.FlopPerUnit)
	case c.CellBytes < 0:
		return fmt.Errorf("erosion: CellBytes = %d must be non-negative", c.CellBytes)
	}
	return nil
}

// Width returns the total number of columns, P * StripeWidth.
func (c Config) Width() int { return c.P * c.StripeWidth }

// StrongSet returns, per disc index, whether the disc is strongly erodible.
// The choice is a seeded permutation: deterministic, but "not known in
// advance" to the partitioning logic (it never reads this).
func (c Config) StrongSet() []bool {
	strong := make([]bool, c.P)
	rng := stats.NewRNG(c.Seed ^ 0x5bd1e995)
	perm := rng.Perm(c.P)
	for i := 0; i < c.StrongRocks && i < c.P; i++ {
		strong[perm[i]] = true
	}
	return strong
}

// DiscOf returns the disc (stripe) index containing column x.
func (c Config) DiscOf(x int) int { return x / c.StripeWidth }

// InDisc reports whether cell (x, y) lies inside its stripe's rock disc.
func (c Config) InDisc(x, y int) bool {
	s := c.DiscOf(x)
	cx := float64(s)*float64(c.StripeWidth) + float64(c.StripeWidth)/2 - 0.5
	cy := float64(c.Height)/2 - 0.5
	dx := float64(x) - cx
	dy := float64(y) - cy
	r := float64(c.Radius)
	return dx*dx+dy*dy <= r*r
}

// InitialCell returns the state of cell (x, y) at iteration 0.
func (c Config) InitialCell(x, y int) Cell {
	if c.InDisc(x, y) {
		return Rock
	}
	return Fluid
}

// erodes reports the counter-based erosion decision for rock cell (x, y)
// with k fluid neighbors at iteration iter, where prob is its disc's
// per-neighbor erosion probability. Each fluid neighbor independently
// attempts to erode the cell: P(erode) = 1 - (1-prob)^k.
func (c Config) erodes(iter, x, y, k int, prob float64) bool {
	if k <= 0 {
		return false
	}
	q := 1.0
	for i := 0; i < k; i++ {
		q *= 1 - prob
	}
	return stats.HashUniform(c.Seed, uint64(iter), uint64(x), uint64(y)) < 1-q
}

// Domain holds the contiguous column range [Lo, Hi) of one PE, with
// incremental per-column workload weights and rock-cell indices so an
// iteration costs O(rock cells) rather than O(all cells).
type Domain struct {
	cfg      Config
	strong   []bool
	probs    []float64 // per-disc erosion probability
	lo, hi   int
	cols     [][]Cell
	weights  []float64 // per local column: sum of fluid weights
	rockRows [][]int32 // per local column: sorted rows of remaining rock cells
	erode    []colRow  // Step scratch: cells to erode this iteration
}

// colRow addresses one cell by local column index and row.
type colRow struct {
	ci int
	y  int32
}

// NewDomain builds the initial state of columns [lo, hi). A full-domain
// instance (lo = 0, hi = cfg.Width()) doubles as the sequential reference.
func NewDomain(cfg Config, lo, hi int) *Domain {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if lo < 0 || hi > cfg.Width() || lo > hi {
		panic(fmt.Sprintf("erosion: column range [%d, %d) outside domain of width %d", lo, hi, cfg.Width()))
	}
	d := &Domain{cfg: cfg, strong: cfg.StrongSet(), lo: lo, hi: hi}
	d.probs = make([]float64, cfg.P)
	for s := range d.probs {
		if d.strong[s] {
			d.probs[s] = cfg.ProbStrong
		} else {
			d.probs[s] = cfg.ProbWeak
		}
	}
	n := hi - lo
	d.cols = make([][]Cell, n)
	d.weights = make([]float64, n)
	d.rockRows = make([][]int32, n)
	for ci := 0; ci < n; ci++ {
		x := lo + ci
		col := make([]Cell, cfg.Height)
		for y := 0; y < cfg.Height; y++ {
			col[y] = cfg.InitialCell(x, y)
		}
		d.cols[ci] = col
		d.reindexColumn(ci)
	}
	return d
}

// reindexColumn recomputes the weight and rock index of local column ci.
func (d *Domain) reindexColumn(ci int) {
	col := d.cols[ci]
	w := 0.0
	rocks := d.rockRows[ci][:0]
	for y, cell := range col {
		if cell == Rock {
			rocks = append(rocks, int32(y))
		} else {
			w += cell.Weight()
		}
	}
	d.weights[ci] = w
	d.rockRows[ci] = rocks
}

// Config returns the instance configuration.
func (d *Domain) Config() Config { return d.cfg }

// Lo returns the first owned column.
func (d *Domain) Lo() int { return d.lo }

// Hi returns one past the last owned column.
func (d *Domain) Hi() int { return d.hi }

// NumCols returns the number of owned columns.
func (d *Domain) NumCols() int { return d.hi - d.lo }

// Cell returns the state of (x, y); x must be owned.
func (d *Domain) Cell(x, y int) Cell {
	return d.cols[x-d.lo][y]
}

// ColWeight returns the fluid workload weight of owned column x.
func (d *Domain) ColWeight(x int) float64 { return d.weights[x-d.lo] }

// Weights returns a copy of the per-column weights of the owned range.
func (d *Domain) Weights() []float64 {
	return append([]float64(nil), d.weights...)
}

// Workload returns the total fluid weight of the owned range, in work units.
func (d *Domain) Workload() float64 {
	return stats.Sum(d.weights)
}

// Flop returns the computational cost of one iteration over the owned
// range: FlopPerUnit per fluid weight unit.
func (d *Domain) Flop() float64 {
	return d.cfg.FlopPerUnit * d.Workload()
}

// RockCount returns the number of remaining rock cells in the owned range.
func (d *Domain) RockCount() int {
	n := 0
	for _, rocks := range d.rockRows {
		n += len(rocks)
	}
	return n
}

// BoundaryColumn returns a copy of the first (left = true) or last owned
// column, the payload of a halo exchange.
func (d *Domain) BoundaryColumn(left bool) []Cell {
	if d.NumCols() == 0 {
		return nil
	}
	var src []Cell
	if left {
		src = d.cols[0]
	} else {
		src = d.cols[len(d.cols)-1]
	}
	return append([]Cell(nil), src...)
}

// AppendBoundary appends the wire encoding of the first (left = true) or
// last owned column to dst and returns the extended buffer — the halo send
// path without the intermediate column copy of BoundaryColumn + PackHalo.
func (d *Domain) AppendBoundary(dst []byte, left bool) []byte {
	if d.NumCols() == 0 {
		return dst
	}
	var src []Cell
	if left {
		src = d.cols[0]
	} else {
		src = d.cols[len(d.cols)-1]
	}
	for _, c := range src {
		dst = append(dst, byte(c))
	}
	return dst
}

// AppendRange appends the wire encoding of owned columns [a, b) to dst and
// returns the extended buffer — the migration send path without the deep
// copy of CopyRange + PackCells.
func (d *Domain) AppendRange(dst []byte, a, b int) []byte {
	if a < d.lo || b > d.hi || a > b {
		panic(fmt.Sprintf("erosion: AppendRange [%d,%d) outside owned [%d,%d)", a, b, d.lo, d.hi))
	}
	for x := a; x < b; x++ {
		for _, c := range d.cols[x-d.lo] {
			dst = append(dst, byte(c))
		}
	}
	return dst
}

// Step advances the owned range by one erosion iteration. left and right
// are the halo columns (lo-1 and hi), nil at physical domain boundaries
// (outside cells are treated as non-fluid). It returns the number of rock
// cells eroded. Decisions read only the pre-step state, so stepping the
// stripes of a partition in any order is equivalent to stepping the whole
// domain at once.
func (d *Domain) Step(iter int, left, right []Cell) int {
	erodeList := d.erode[:0]
	h := d.cfg.Height
	for ci, rocks := range d.rockRows {
		if len(rocks) == 0 {
			continue
		}
		x := d.lo + ci
		prob := d.probs[d.cfg.DiscOf(x)]
		col := d.cols[ci]
		var lcol, rcol []Cell
		if ci > 0 {
			lcol = d.cols[ci-1]
		} else {
			lcol = left
		}
		if ci+1 < len(d.cols) {
			rcol = d.cols[ci+1]
		} else {
			rcol = right
		}
		for _, y := range rocks {
			k := 0
			if lcol != nil && lcol[y].IsFluid() {
				k++
			}
			if rcol != nil && rcol[y].IsFluid() {
				k++
			}
			if y > 0 && col[y-1].IsFluid() {
				k++
			}
			if int(y) < h-1 && col[y+1].IsFluid() {
				k++
			}
			if k > 0 && d.cfg.erodes(iter, x, int(y), k, prob) {
				erodeList = append(erodeList, colRow{ci: ci, y: y})
			}
		}
	}
	// Apply after the full scan: double-buffer semantics. The scan emits
	// hits in ascending ci order, so consecutive-duplicate skipping visits
	// each touched column exactly once — no set needed.
	for _, e := range erodeList {
		d.cols[e.ci][e.y] = Refined
		d.weights[e.ci] += Refined.Weight()
	}
	prev := -1
	for _, e := range erodeList {
		if e.ci == prev {
			continue
		}
		prev = e.ci
		rocks := d.rockRows[e.ci][:0]
		for _, y := range d.rockRows[e.ci] {
			if d.cols[e.ci][y] == Rock {
				rocks = append(rocks, y)
			}
		}
		d.rockRows[e.ci] = rocks
	}
	d.erode = erodeList[:0]
	return len(erodeList)
}

// CopyRange deep-copies columns [a, b), which must be owned.
func (d *Domain) CopyRange(a, b int) [][]Cell {
	if a < d.lo || b > d.hi || a > b {
		panic(fmt.Sprintf("erosion: CopyRange [%d,%d) outside owned [%d,%d)", a, b, d.lo, d.hi))
	}
	out := make([][]Cell, b-a)
	for i := range out {
		out[i] = append([]Cell(nil), d.cols[a-d.lo+i]...)
	}
	return out
}

// Rebuild constructs the post-migration domain for the new owned range
// [newLo, newHi) from the current state plus received column chunks keyed
// by their absolute starting column. Kept columns are reused; received
// chunks must exactly tile the part of the new range the old range does not
// cover.
func (d *Domain) Rebuild(newLo, newHi int, received map[int][][]Cell) *Domain {
	cols := make([][]Cell, newHi-newLo)
	for x := newLo; x < newHi; x++ {
		if x >= d.lo && x < d.hi {
			cols[x-newLo] = d.cols[x-d.lo]
		}
	}
	for start, chunk := range received {
		for i, col := range chunk {
			x := start + i
			if x < newLo || x >= newHi {
				panic(fmt.Sprintf("erosion: received column %d outside new range [%d,%d)", x, newLo, newHi))
			}
			if cols[x-newLo] != nil {
				panic(fmt.Sprintf("erosion: received column %d overlaps kept state", x))
			}
			cols[x-newLo] = col
		}
	}
	for i, col := range cols {
		if col == nil {
			panic(fmt.Sprintf("erosion: column %d missing after migration", newLo+i))
		}
	}
	// Kept columns carry their weight and rock index over unchanged; only
	// received columns are scanned. The disc tables are immutable after
	// construction, so they are shared rather than recomputed.
	nd := &Domain{
		cfg:      d.cfg,
		strong:   d.strong,
		probs:    d.probs,
		lo:       newLo,
		hi:       newHi,
		cols:     cols,
		weights:  make([]float64, len(cols)),
		rockRows: make([][]int32, len(cols)),
	}
	for ci := range cols {
		x := newLo + ci
		if x >= d.lo && x < d.hi {
			nd.weights[ci] = d.weights[x-d.lo]
			nd.rockRows[ci] = d.rockRows[x-d.lo]
			continue
		}
		if len(cols[ci]) != d.cfg.Height {
			panic(fmt.Sprintf("erosion: column %d has height %d, want %d", x, len(cols[ci]), d.cfg.Height))
		}
		nd.reindexColumn(ci)
	}
	return nd
}

// PackCells serializes columns for the wire: Height bytes per column.
func PackCells(cols [][]Cell) []byte {
	if len(cols) == 0 {
		return nil
	}
	h := len(cols[0])
	b := make([]byte, 0, len(cols)*h)
	for _, col := range cols {
		if len(col) != h {
			panic("erosion: ragged columns")
		}
		for _, c := range col {
			b = append(b, byte(c))
		}
	}
	return b
}

// UnpackCells reverses PackCells given the column height.
func UnpackCells(b []byte, height int) [][]Cell {
	if height <= 0 || len(b)%height != 0 {
		panic(fmt.Sprintf("erosion: corrupt cell payload: %d bytes, height %d", len(b), height))
	}
	n := len(b) / height
	out := make([][]Cell, n)
	for i := 0; i < n; i++ {
		col := make([]Cell, height)
		for y := 0; y < height; y++ {
			col[y] = Cell(b[i*height+y])
		}
		out[i] = col
	}
	return out
}

// PackHalo serializes one halo column (possibly nil).
func PackHalo(col []Cell) []byte {
	if col == nil {
		return nil
	}
	b := make([]byte, len(col))
	for i, c := range col {
		b[i] = byte(c)
	}
	return b
}

// UnpackHalo reverses PackHalo; an empty payload decodes to nil.
func UnpackHalo(b []byte) []Cell {
	if len(b) == 0 {
		return nil
	}
	return UnpackHaloInto(make([]Cell, 0, len(b)), b)
}

// UnpackHaloInto appends the decoded halo column to dst and returns the
// extended slice; an empty payload yields dst unchanged (callers must treat
// a zero-length result as the nil halo of a physical boundary).
func UnpackHaloInto(dst []Cell, b []byte) []Cell {
	for _, v := range b {
		dst = append(dst, Cell(v))
	}
	return dst
}
