// Package loadgen is the open-loop load generator behind cmd/ulba-loadgen
// and the in-process soak harness: it fires a Poisson or constant arrival
// process of mixed engine requests (drawn from the live workload/planner
// registries) at one or more ulba-serve targets through a bounded client
// pool, and reports per-endpoint latency quantiles, status counts, and
// byte-identity violations.
//
// Open-loop means arrivals do not wait for responses: when every client is
// busy, excess arrivals are counted as dropped instead of silently slowing
// the offered rate — the difference between measuring the server and
// measuring the generator. A third arrival mode, "closed", saturates the
// pool back-to-back (each client fires as soon as its previous response
// lands); the soak tests use it for exact request accounting.
package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ulba"
	"ulba/internal/metrics"
)

// Arrival processes.
const (
	ArrivalPoisson  = "poisson"  // exponential inter-arrival gaps at Rate/s
	ArrivalConstant = "constant" // fixed 1/Rate gaps
	ArrivalClosed   = "closed"   // no schedule: each client fires back-to-back
)

// MixEntry weights one endpoint family in the request mix.
type MixEntry struct {
	// Endpoint is the family name: "sweep", "runtime", "runtime-sweep",
	// or "experiment" (the four engine endpoints).
	Endpoint string `json:"endpoint"`
	// Weight is the family's share of arrivals (integer odds).
	Weight int `json:"weight"`
	// Distinct is how many distinct request bodies the family cycles
	// through — the cache-hit ratio knob: requests beyond the first
	// Distinct arrivals repeat earlier bodies.
	Distinct int `json:"distinct"`
	// Size scales one request: sweep sample.n, runtime/experiment
	// iterations, runtime-sweep sample.n.
	Size int `json:"size"`
}

// DefaultMix is a sweep-heavy blend of the engine endpoints.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{Endpoint: "sweep", Weight: 6, Distinct: 8, Size: 50},
		{Endpoint: "runtime", Weight: 3, Distinct: 6, Size: 30},
		{Endpoint: "runtime-sweep", Weight: 1, Distinct: 2, Size: 4},
	}
}

// Config parameterizes one load-generation run.
type Config struct {
	// Targets are the base URLs traffic round-robins over.
	Targets []string
	// Client issues the requests; nil builds a pooled transport sized to
	// Clients connections.
	Client *http.Client
	// Arrival selects the arrival process (default ArrivalPoisson).
	Arrival string
	// Rate is the offered arrival rate per second (open-loop modes).
	Rate float64
	// Clients bounds concurrent in-flight requests (default 64).
	Clients int
	// Warmup requests (those arriving before the warmup window closes)
	// are issued and verified but excluded from the latency report.
	Warmup time.Duration
	// Duration is the measurement window after warmup. Ignored when
	// MaxRequests is set.
	Duration time.Duration
	// MaxRequests, when positive, ends the run after that many arrivals
	// instead of after Duration — the deterministic-count mode the soak
	// tests use.
	MaxRequests int
	// Seed drives the arrival process; equal seeds give equal schedules.
	Seed uint64
	// Mix is the endpoint blend (default DefaultMix).
	Mix []MixEntry
	// Timeout bounds one request; 0 means no per-request timeout.
	Timeout time.Duration
}

// endpointPath maps a mix family to its route.
func endpointPath(family string) string { return "/v1/" + family }

// buildBody renders the variant-th distinct request body of a mix family.
// Bodies draw planner, trigger, and workload names from the live
// registries, so the mix exercises the same policy surface the paper's
// experiments do. Equal (family, variant, Size) always render equal bytes —
// the determinism the byte-identity verification leans on.
func buildBody(e MixEntry, variant int) ([]byte, error) {
	type m = map[string]any
	size := e.Size
	switch e.Endpoint {
	case "sweep":
		if size <= 0 {
			size = 50
		}
		body := m{
			"sample":     m{"seed": uint64(variant + 1), "n": size},
			"alpha_grid": 25,
		}
		// Cycle the cheap planners (annealing is a search, not a serving
		// workload) with the default left in rotation.
		planners := []string{"", "periodic", "menon"}
		switch p := planners[variant%len(planners)]; p {
		case "":
		case "periodic":
			body["planner"] = m{"name": p, "every": 10}
		default:
			body["planner"] = m{"name": p}
		}
		return json.Marshal(body)
	case "runtime":
		if size <= 0 {
			size = 30
		}
		workloads := generatorWorkloads()
		triggers := []string{"degradation", "menon", "periodic", "never"}
		body := m{
			"p":          4,
			"iterations": size,
			"workload":   m{"name": workloads[variant%len(workloads)], "seed": uint64(variant + 1)},
		}
		switch tr := triggers[variant%len(triggers)]; tr {
		case "periodic":
			body["trigger"] = m{"name": tr, "every": 8}
		default:
			body["trigger"] = m{"name": tr}
		}
		return json.Marshal(body)
	case "runtime-sweep":
		if size <= 0 {
			size = 4
		}
		return json.Marshal(m{"sample": m{"seed": uint64(variant + 1), "n": size}})
	case "experiment":
		if size <= 0 {
			size = 20
		}
		return json.Marshal(m{"p": 4, "iterations": size, "seed": uint64(variant + 1)})
	default:
		return nil, fmt.Errorf("loadgen: unknown mix endpoint %q", e.Endpoint)
	}
}

// generatorWorkloads lists the registered workloads that synthesize their
// own weights (everything but the trace replay, which needs rows).
func generatorWorkloads() []string {
	var names []string
	for _, n := range ulba.WorkloadNames() {
		if n != "trace" {
			names = append(names, n)
		}
	}
	return names
}

// endpointState accumulates one family's observations.
type endpointState struct {
	entry    MixEntry
	path     string
	label    string // "POST /v1/sweep", matching the server's metric label
	bodies   [][]byte
	measured metrics.Family
	warmup   metrics.Family

	transportErrors atomic.Uint64
	mismatches      atomic.Uint64

	mu     sync.Mutex
	golden map[int][32]byte // variant -> SHA-256 of the first 200 body
}

// EndpointReport is the per-endpoint block of a Report.
type EndpointReport struct {
	Endpoint string `json:"endpoint"`
	// Requests counts completed responses in the measurement window;
	// RequestsTotal adds the warmup window — the number the server-side
	// histogram for this endpoint must equal when the generator is the
	// only client.
	Requests      uint64 `json:"requests"`
	RequestsTotal uint64 `json:"requests_total"`
	// Status is the measurement-window status-code breakdown.
	Status map[string]uint64 `json:"status"`
	// TransportErrors are requests that never got an HTTP response
	// (connection refused/reset); they appear in no histogram.
	TransportErrors uint64 `json:"transport_errors"`
	// Mismatches counts 200 bodies that differed from the first body seen
	// for the same request — determinism violations; always 0.
	Mismatches uint64 `json:"mismatches"`
	// Latency quantiles over the measurement window, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// ErrorRate is the measurement-window share of responses that were
	// neither 2xx nor 429.
	ErrorRate float64 `json:"error_rate"`
}

// Report is the JSON result of one run.
type Report struct {
	Arrival string  `json:"arrival"`
	Rate    float64 `json:"rate_per_sec,omitempty"`
	Clients int     `json:"clients"`
	Seed    uint64  `json:"seed"`

	// Offered counts scheduled arrivals; Dropped the arrivals that found
	// every client busy (open-loop overload at the generator itself);
	// Completed the requests that got an HTTP response; TransportErrors
	// the requests that did not. Offered = Dropped + Completed +
	// TransportErrors always — no request is lost. OfferedMeasured is the
	// arrivals of the measurement window alone — the realized (not
	// nominal) offered load the sustained-rate criterion compares
	// completions against, so Poisson noise cancels out of the ratio.
	Offered         uint64 `json:"offered"`
	OfferedMeasured uint64 `json:"offered_measured"`
	Dropped         uint64 `json:"dropped"`
	Completed       uint64 `json:"completed"`
	TransportErrors uint64 `json:"transport_errors"`
	// Shed counts 429 responses across both windows; Mismatches counts
	// byte-identity violations (always 0).
	Shed       uint64 `json:"shed"`
	Mismatches uint64 `json:"mismatches"`

	// MeasureSeconds is the measurement wall time; AchievedRPS the
	// measurement-window completion rate.
	MeasureSeconds float64 `json:"measure_seconds"`
	AchievedRPS    float64 `json:"achieved_rps"`

	Endpoints []EndpointReport `json:"endpoints"`
}

// shot is one scheduled arrival.
type shot struct {
	idx  int
	warm bool
}

// Run executes one load-generation run and reports what happened.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	arrival := cfg.Arrival
	if arrival == "" {
		arrival = ArrivalPoisson
	}
	if arrival != ArrivalPoisson && arrival != ArrivalConstant && arrival != ArrivalClosed {
		return nil, fmt.Errorf("loadgen: unknown arrival process %q", arrival)
	}
	if arrival != ArrivalClosed && cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop arrivals need a positive -rate")
	}
	if cfg.MaxRequests <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: need a measurement duration or a request cap")
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 64
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	var totalWeight int
	states := make([]*endpointState, len(mix))
	for i, e := range mix {
		if e.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: mix entry %q needs a positive weight", e.Endpoint)
		}
		if e.Distinct <= 0 {
			e.Distinct = 1
		}
		totalWeight += e.Weight
		st := &endpointState{
			entry:  e,
			path:   endpointPath(e.Endpoint),
			label:  "POST " + endpointPath(e.Endpoint),
			golden: map[int][32]byte{},
			bodies: make([][]byte, e.Distinct),
		}
		for v := range st.bodies {
			body, err := buildBody(e, v)
			if err != nil {
				return nil, err
			}
			st.bodies[v] = body
		}
		states[i] = st
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        clients,
			MaxIdleConnsPerHost: clients,
			IdleConnTimeout:     30 * time.Second,
		}}
	}

	queue := make(chan shot, clients)
	var wg sync.WaitGroup
	rep := &Report{Arrival: arrival, Rate: cfg.Rate, Clients: clients, Seed: cfg.Seed}
	var completed, shed, transport atomic.Uint64

	worker := func() {
		defer wg.Done()
		for sh := range queue {
			st, variant := pickShot(sh.idx, states, totalWeight)
			target := cfg.Targets[sh.idx%len(cfg.Targets)]
			reqCtx := ctx
			var cancel context.CancelFunc
			if cfg.Timeout > 0 {
				reqCtx, cancel = context.WithTimeout(ctx, cfg.Timeout)
			}
			status, dur, err := issue(reqCtx, client, target+st.path, st, variant)
			if cancel != nil {
				cancel()
			}
			if err != nil {
				st.transportErrors.Add(1)
				transport.Add(1)
				continue
			}
			completed.Add(1)
			if status == http.StatusTooManyRequests {
				shed.Add(1)
			}
			if sh.warm {
				st.warmup.Observe(status, dur)
			} else {
				st.measured.Observe(status, dur)
			}
		}
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go worker()
	}

	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	start := time.Now()
	warmupEnd := start.Add(cfg.Warmup)
	end := warmupEnd.Add(cfg.Duration)
	next := start
	var offered, offeredMeasured, dropped uint64
	var measureStart time.Time

arrivals:
	for idx := 0; ; idx++ {
		if cfg.MaxRequests > 0 && idx >= cfg.MaxRequests {
			break
		}
		now := time.Now()
		if cfg.MaxRequests <= 0 && !now.Before(end) {
			break
		}
		if ctx.Err() != nil {
			break
		}
		warm := now.Before(warmupEnd)
		if !warm && measureStart.IsZero() {
			measureStart = now
		}
		sh := shot{idx: idx, warm: warm}
		if arrival == ArrivalClosed {
			select {
			case queue <- sh:
			case <-ctx.Done():
				break arrivals
			}
			offered++
			if !warm {
				offeredMeasured++
			}
			continue
		}
		// Open loop: never wait for a client. A full queue means the pool
		// is saturated; the arrival is dropped and counted — but it was
		// still one *scheduled* arrival, so the pacing below advances to
		// the next schedule slot either way. (Skipping the pacing on a
		// drop would turn a saturated pool into a busy loop offering
		// millions of phantom arrivals.)
		select {
		case queue <- sh:
		default:
			dropped++
		}
		offered++
		if !warm {
			offeredMeasured++
		}
		gap := 1 / cfg.Rate
		if arrival == ArrivalPoisson {
			gap = rng.ExpFloat64() / cfg.Rate
		}
		next = next.Add(time.Duration(gap * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
	}
	close(queue)
	wg.Wait()
	if measureStart.IsZero() {
		measureStart = warmupEnd
	}
	measure := time.Since(measureStart).Seconds()

	rep.Offered = offered
	rep.OfferedMeasured = offeredMeasured
	rep.Dropped = dropped
	rep.Completed = completed.Load()
	rep.TransportErrors = transport.Load()
	rep.Shed = shed.Load()
	rep.MeasureSeconds = measure
	for _, st := range states {
		er := endpointReport(st)
		rep.Mismatches += er.Mismatches
		rep.Endpoints = append(rep.Endpoints, er)
		rep.AchievedRPS += float64(er.Requests)
	}
	if measure > 0 {
		rep.AchievedRPS /= measure
	} else {
		rep.AchievedRPS = 0
	}
	sort.Slice(rep.Endpoints, func(i, j int) bool { return rep.Endpoints[i].Endpoint < rep.Endpoints[j].Endpoint })
	return rep, nil
}

// pickShot maps an arrival index to its endpoint family and body variant,
// both deterministic functions of the index alone: the family round-robins
// the weighted mix and the variant cycles the family's distinct bodies.
func pickShot(idx int, states []*endpointState, totalWeight int) (*endpointState, int) {
	slot := idx % totalWeight
	cycle := idx / totalWeight
	for _, st := range states {
		if slot < st.entry.Weight {
			return st, (cycle*st.entry.Weight + slot) % st.entry.Distinct
		}
		slot -= st.entry.Weight
	}
	return states[len(states)-1], 0 // unreachable: slot < totalWeight
}

// issue sends one request and verifies byte identity of 200 bodies: the
// first 200 for a variant becomes golden; every later 200 must hash equal.
func issue(ctx context.Context, client *http.Client, url string, st *endpointState, variant int) (status int, dur time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(st.bodies[variant]))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, time.Since(t0), err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	dur = time.Since(t0)
	if err != nil {
		return 0, dur, err
	}
	if resp.StatusCode == http.StatusOK {
		sum := sha256.Sum256(body)
		st.mu.Lock()
		golden, seen := st.golden[variant]
		if !seen {
			st.golden[variant] = sum
		}
		st.mu.Unlock()
		if seen && golden != sum {
			st.mismatches.Add(1)
		}
	}
	return resp.StatusCode, dur, nil
}

// endpointReport snapshots one family's counters into its report block.
func endpointReport(st *endpointState) EndpointReport {
	er := EndpointReport{
		Endpoint:        st.label,
		Requests:        st.measured.Count(),
		RequestsTotal:   st.measured.Count() + st.warmup.Count(),
		Status:          map[string]uint64{},
		TransportErrors: st.transportErrors.Load(),
		Mismatches:      st.mismatches.Load(),
	}
	var errored uint64
	for code, n := range st.measured.StatusCounts() {
		er.Status[strconv.Itoa(code)] = n
		if (code < 200 || code > 299) && code != http.StatusTooManyRequests {
			errored += n
		}
	}
	if er.Requests > 0 {
		er.ErrorRate = float64(errored) / float64(er.Requests)
	}
	h := st.measured.Latency()
	er.P50Ms = float64(h.Quantile(0.5)) / float64(time.Millisecond)
	er.P99Ms = float64(h.Quantile(0.99)) / float64(time.Millisecond)
	er.P999Ms = float64(h.Quantile(0.999)) / float64(time.Millisecond)
	return er
}

// Verify checks the invariants a healthy run must satisfy: every response
// is 2xx or 429, nothing hit transport errors, and no 200 body deviated
// from its first-seen bytes.
func (r *Report) Verify() error {
	if r.TransportErrors > 0 {
		return fmt.Errorf("loadgen: %d requests got no HTTP response", r.TransportErrors)
	}
	if r.Mismatches > 0 {
		return fmt.Errorf("loadgen: %d responses deviated from the first-seen bytes for their request", r.Mismatches)
	}
	for _, ep := range r.Endpoints {
		for code, n := range ep.Status {
			c, _ := strconv.Atoi(code)
			if (c < 200 || c > 299) && c != http.StatusTooManyRequests {
				return fmt.Errorf("loadgen: %s answered %d requests with status %s", ep.Endpoint, n, code)
			}
		}
	}
	return nil
}

// countRe matches the per-endpoint histogram count lines of the server's
// /metrics page.
var countRe = regexp.MustCompile(`^ulba_http_request_duration_seconds_count\{endpoint="([^"]+)"\} (\d+)$`)

// ScrapeEndpointCounts parses a /metrics page into endpoint -> histogram
// count — the server-side per-endpoint request totals.
func ScrapeEndpointCounts(r io.Reader) (map[string]uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	counts := map[string]uint64{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		m := countRe.FindSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.ParseUint(string(m[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: malformed metrics line %q", line)
		}
		counts[string(m[1])] = n
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("loadgen: no ulba_http_request_duration_seconds_count series in the metrics page")
	}
	return counts, nil
}

// VerifyServerCounts cross-checks this report against a /metrics scrape
// from the (single) server the run targeted: for every endpoint the run
// touched, the server's histogram count must equal the responses the
// generator observed — the "histograms sum to observed requests"
// invariant. Only sound when the generator was the server's only client.
func (r *Report) VerifyServerCounts(counts map[string]uint64) error {
	for _, ep := range r.Endpoints {
		if ep.RequestsTotal == 0 {
			continue
		}
		got, ok := counts[ep.Endpoint]
		if !ok {
			return fmt.Errorf("loadgen: server metrics have no histogram for %s", ep.Endpoint)
		}
		if got != ep.RequestsTotal {
			return fmt.Errorf("loadgen: %s: server histogram count %d != %d observed responses", ep.Endpoint, got, ep.RequestsTotal)
		}
	}
	return nil
}

// FindMaxRate ramps the offered rate geometrically (x2 per stage, then one
// bisection refinement) and returns the highest rate the target sustained,
// with the report of that stage. A stage is sustained when nothing errored
// or mismatched, sheds stayed under maxShedFrac of completions, at least
// 90% of the measurement window's arrivals completed (comparing against
// realized rather than nominal arrivals, so Poisson noise cancels), and
// the generator itself kept offering at least 80% of the nominal rate —
// when it cannot, the bottleneck is the generator and ramping further
// would report a rate nobody offered.
func FindMaxRate(ctx context.Context, base Config, startRate float64, stage time.Duration, maxShedFrac float64) (float64, *Report, error) {
	if startRate <= 0 {
		startRate = 50
	}
	run := func(rate float64) (*Report, bool, error) {
		cfg := base
		cfg.Arrival = ArrivalPoisson
		cfg.Rate = rate
		cfg.Duration = stage
		cfg.MaxRequests = 0
		rep, err := Run(ctx, cfg)
		if err != nil {
			return nil, false, err
		}
		var measured uint64
		for _, ep := range rep.Endpoints {
			measured += ep.Requests
		}
		offeredRate := 0.0
		if rep.MeasureSeconds > 0 {
			offeredRate = float64(rep.OfferedMeasured) / rep.MeasureSeconds
		}
		ok := rep.Verify() == nil &&
			float64(rep.Shed) <= maxShedFrac*math.Max(1, float64(rep.Completed)) &&
			float64(measured) >= 0.9*float64(rep.OfferedMeasured) &&
			offeredRate >= 0.8*rate
		return rep, ok, nil
	}
	var bestRate float64
	var bestRep *Report
	rate := startRate
	for i := 0; i < 12; i++ {
		rep, ok, err := run(rate)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			break
		}
		bestRate, bestRep = rate, rep
		rate *= 2
	}
	if bestRep == nil {
		return 0, nil, fmt.Errorf("loadgen: target did not sustain the starting rate %.0f/s", startRate)
	}
	// One refinement step between the last sustained rate and the doubled
	// rate that failed (or was never tried).
	mid := bestRate * 1.5
	if rep, ok, err := run(mid); err == nil && ok {
		bestRate, bestRep = mid, rep
	}
	return bestRate, bestRep, nil
}
