package loadgen

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBuildBodyDeterministic pins the byte-identity premise of the
// generator: equal (family, variant, size) render equal bytes, and
// distinct variants render distinct bytes (distinct cache keys).
func TestBuildBodyDeterministic(t *testing.T) {
	for _, e := range DefaultMix() {
		seen := map[string]int{}
		for v := 0; v < e.Distinct; v++ {
			a, err := buildBody(e, v)
			if err != nil {
				t.Fatalf("%s variant %d: %v", e.Endpoint, v, err)
			}
			b, err := buildBody(e, v)
			if err != nil || string(a) != string(b) {
				t.Fatalf("%s variant %d not deterministic", e.Endpoint, v)
			}
			if prev, dup := seen[string(a)]; dup {
				t.Fatalf("%s variants %d and %d share a body", e.Endpoint, prev, v)
			}
			seen[string(a)] = v
		}
	}
	if _, err := buildBody(MixEntry{Endpoint: "nope"}, 0); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}

// TestPickShotWeights drives one full weight cycle through pickShot and
// checks each family receives exactly its weight share, with variants
// cycling through the family's distinct bodies.
func TestPickShotWeights(t *testing.T) {
	states := []*endpointState{
		{entry: MixEntry{Endpoint: "a", Weight: 3, Distinct: 2}},
		{entry: MixEntry{Endpoint: "b", Weight: 1, Distinct: 1}},
	}
	total := 4
	counts := map[string]int{}
	variants := map[string]map[int]bool{"a": {}, "b": {}}
	for idx := 0; idx < 8*total; idx++ {
		st, v := pickShot(idx, states, total)
		counts[st.entry.Endpoint]++
		variants[st.entry.Endpoint][v] = true
		if v < 0 || v >= st.entry.Distinct {
			t.Fatalf("variant %d out of range for %s", v, st.entry.Endpoint)
		}
	}
	if counts["a"] != 24 || counts["b"] != 8 {
		t.Fatalf("weight shares = %v, want a:24 b:8", counts)
	}
	if len(variants["a"]) != 2 {
		t.Fatalf("family a used variants %v, want both of 2", variants["a"])
	}
}

// staticHandler serves a deterministic JSON body derived from the request
// bytes — a stand-in ulba server for accounting tests.
func staticHandler(t *testing.T, requests *atomic.Uint64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		body, _ := io.ReadAll(r.Body)
		sum := sha256.Sum256(body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"sum\":%q}\n", fmt.Sprintf("%x", sum))
	})
}

// TestRunClosedAccounting runs the closed loop against a stub server: a
// fixed request cap, every arrival completed, nothing dropped or lost.
func TestRunClosedAccounting(t *testing.T) {
	var requests atomic.Uint64
	ts := httptest.NewServer(staticHandler(t, &requests))
	defer ts.Close()

	const n = 120
	rep, err := Run(context.Background(), Config{
		Targets:     []string{ts.URL},
		Arrival:     ArrivalClosed,
		Clients:     8,
		MaxRequests: n,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != n || rep.Completed != n || rep.Dropped != 0 || rep.TransportErrors != 0 {
		t.Fatalf("accounting = offered %d completed %d dropped %d transport %d, want %d/%d/0/0",
			rep.Offered, rep.Completed, rep.Dropped, rep.TransportErrors, n, n)
	}
	if got := requests.Load(); got != n {
		t.Fatalf("server saw %d requests, want %d", got, n)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	var perEndpoint uint64
	for _, ep := range rep.Endpoints {
		perEndpoint += ep.RequestsTotal
	}
	if perEndpoint != n {
		t.Fatalf("endpoint totals sum to %d, want %d", perEndpoint, n)
	}
}

// TestRunOpenLoopDropsNeverBlock saturates a deliberately slow server with
// a high constant arrival rate and a tiny client pool: the open loop must
// drop excess arrivals rather than slow down, and the books must balance.
func TestRunOpenLoopDropsNeverBlock(t *testing.T) {
	var requests atomic.Uint64
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		time.Sleep(20 * time.Millisecond)
		io.Copy(io.Discard, r.Body)
		fmt.Fprintln(w, `{}`)
	})
	ts := httptest.NewServer(slow)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Targets:     []string{ts.URL},
		Arrival:     ArrivalConstant,
		Rate:        2000,
		Clients:     4,
		MaxRequests: 400,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatal("open loop never dropped despite a saturated pool")
	}
	if rep.Offered != rep.Dropped+rep.Completed+rep.TransportErrors {
		t.Fatalf("books do not balance: %+v", rep)
	}
}

// TestMismatchDetection feeds the verifier a server that changes its
// answer: the second 200 for the same request must count as a mismatch.
func TestMismatchDetection(t *testing.T) {
	var n atomic.Uint64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprintf(w, "{\"n\":%d}\n", n.Add(1))
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Targets:     []string{ts.URL},
		Arrival:     ArrivalClosed,
		Clients:     1,
		MaxRequests: 20,
		Seed:        3,
		Mix:         []MixEntry{{Endpoint: "sweep", Weight: 1, Distinct: 1, Size: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches == 0 {
		t.Fatal("nondeterministic server produced no mismatches")
	}
	if err := rep.Verify(); err == nil || !strings.Contains(err.Error(), "deviated") {
		t.Fatalf("Verify = %v, want byte-identity failure", err)
	}
}

// TestScrapeEndpointCounts parses a metrics page fragment.
func TestScrapeEndpointCounts(t *testing.T) {
	page := strings.Join([]string{
		`# TYPE ulba_http_request_duration_seconds histogram`,
		`ulba_http_request_duration_seconds_bucket{endpoint="POST /v1/sweep",le="0.001"} 3`,
		`ulba_http_request_duration_seconds_count{endpoint="POST /v1/sweep"} 41`,
		`ulba_http_request_duration_seconds_count{endpoint="GET /v1/stats"} 7`,
		`ulba_requests_total 99`,
	}, "\n")
	counts, err := ScrapeEndpointCounts(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if counts["POST /v1/sweep"] != 41 || counts["GET /v1/stats"] != 7 || len(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := ScrapeEndpointCounts(strings.NewReader("nothing here")); err == nil {
		t.Fatal("empty page accepted")
	}
}

// TestVerifyServerCounts checks both directions of the histogram
// cross-check.
func TestVerifyServerCounts(t *testing.T) {
	rep := &Report{Endpoints: []EndpointReport{
		{Endpoint: "POST /v1/sweep", RequestsTotal: 10},
		{Endpoint: "POST /v1/runtime", RequestsTotal: 0},
	}}
	if err := rep.VerifyServerCounts(map[string]uint64{"POST /v1/sweep": 10}); err != nil {
		t.Fatalf("exact match rejected: %v", err)
	}
	if err := rep.VerifyServerCounts(map[string]uint64{"POST /v1/sweep": 11}); err == nil {
		t.Fatal("count drift accepted")
	}
	if err := rep.VerifyServerCounts(map[string]uint64{}); err == nil {
		t.Fatal("missing series accepted")
	}
}

// TestRunValidation rejects the configurations that cannot measure.
func TestRunValidation(t *testing.T) {
	cases := []Config{
		{},
		{Targets: []string{"http://x"}, Arrival: "warp", Duration: time.Second},
		{Targets: []string{"http://x"}, Arrival: ArrivalPoisson, Duration: time.Second},
		{Targets: []string{"http://x"}, Arrival: ArrivalClosed},
		{Targets: []string{"http://x"}, Arrival: ArrivalClosed, MaxRequests: 1,
			Mix: []MixEntry{{Endpoint: "sweep", Weight: 0}}},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
