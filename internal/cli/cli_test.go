package cli

import (
	"context"
	"testing"

	"ulba"
	"ulba/internal/simulate"
)

func TestConfigurePlanner(t *testing.T) {
	pl := ConfigurePlanner(ulba.PeriodicPlanner{}, 7, 0, 0)
	if got := pl.(ulba.PeriodicPlanner).Every; got != 7 {
		t.Errorf("periodic Every = %d, want 7", got)
	}
	pl = ConfigurePlanner(ulba.AnnealPlanner{}, 0, 500, 9)
	an := pl.(ulba.AnnealPlanner)
	if an.Steps != 500 || an.Seed != 9 {
		t.Errorf("anneal configured as %+v", an)
	}
	if pl = ConfigurePlanner(ulba.SigmaPlusPlanner{}, 7, 500, 9); pl.Name() != "sigma+" {
		t.Errorf("sigma+ planner not passed through: %v", pl.Name())
	}
}

func TestConfigureTrigger(t *testing.T) {
	tr := ConfigureTrigger(ulba.PeriodicTrigger{}, 5, 0)
	if got := tr.(ulba.PeriodicTrigger).Every; got != 5 {
		t.Errorf("periodic Every = %d, want 5", got)
	}
	if tr = ConfigureTrigger(ulba.NeverTrigger{}, 5, 0.4); tr.Name() != "never" {
		t.Errorf("never trigger not passed through: %v", tr.Name())
	}
	tr = ConfigureTrigger(ulba.WLITrigger{Threshold: 0.25}, 5, 0.4)
	if got := tr.(ulba.WLITrigger).Threshold; got != 0.4 {
		t.Errorf("wli Threshold = %g, want 0.4", got)
	}
	// A non-positive flag value keeps the registry default.
	tr = ConfigureTrigger(ulba.WLITrigger{Threshold: 0.25}, 5, 0)
	if got := tr.(ulba.WLITrigger).Threshold; got != 0.25 {
		t.Errorf("wli Threshold = %g, want the 0.25 default", got)
	}
}

// The sweep-backed Fig. 3 driver must reproduce simulate.RunFig3 exactly on
// the default planner: same generator order, same evaluations.
func TestRunFig3SweepMatchesSimulate(t *testing.T) {
	const n, grid, seed = 5, 11, uint64(4)
	planner, err := ulba.NewPlanner("sigma+")
	if err != nil {
		t.Fatal(err)
	}
	visits := 0
	got, err := RunFig3Sweep(context.Background(), planner, n, grid, seed, 2,
		func(float64, int, ulba.Comparison) { visits++ })
	if err != nil {
		t.Fatal(err)
	}
	want := simulate.RunFig3(simulate.Fig3Config{
		InstancesPerBucket: n, AlphaGridSize: grid, Seed: seed, Workers: 2,
	})
	if len(got) != len(want) {
		t.Fatalf("%d buckets, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Fraction != want[i].Fraction || got[i].Gains != want[i].Gains ||
			got[i].MeanBestAlpha != want[i].MeanBestAlpha {
			t.Errorf("bucket %d diverged:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if visits != n*len(want) {
		t.Errorf("visit called %d times, want %d", visits, n*len(want))
	}
}
