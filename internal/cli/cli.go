// Package cli holds the policy-selection and experiment-driving helpers the
// cmd/ binaries share: configuring registry-built planners and triggers from
// flag values, and the Fig. 3 sweep loop over the public Sweep engine.
package cli

import (
	"context"
	"fmt"

	"ulba"
	"ulba/internal/instance"
	"ulba/internal/simulate"
)

// ConfigurePlanner applies the flag-level knobs to a registry-built planner:
// the interval for the periodic planner, the proposal budget and seed for
// the annealing planner. Other planners pass through unchanged.
func ConfigurePlanner(pl ulba.Planner, period, annealSteps int, seed uint64) ulba.Planner {
	switch p := pl.(type) {
	case ulba.PeriodicPlanner:
		p.Every = period
		return p
	case ulba.AnnealPlanner:
		p.Steps = annealSteps
		p.Seed = seed
		return p
	default:
		return pl
	}
}

// ConfigureTrigger applies the flag-level knobs to a registry-built trigger:
// the interval for the periodic trigger. Other triggers pass through
// unchanged.
func ConfigureTrigger(t ulba.Trigger, period int) ulba.Trigger {
	if pt, ok := t.(ulba.PeriodicTrigger); ok {
		pt.Every = period
		return pt
	}
	return t
}

// RunFig3Sweep drives the Fig. 3 experiment through the public Sweep
// engine: for each Table II overloading-fraction bucket it samples
// instancesPerBucket instances (sequentially from one generator, matching
// the paper driver's order) and evaluates them under the given planner.
// visit is called for every instance in input order; pass nil to skip.
// The default sigma+ planner keeps the sweep on the paper's exact
// evaluation path; any other planner re-plans every instance.
func RunFig3Sweep(ctx context.Context, planner ulba.Planner, instancesPerBucket, alphaGrid int,
	seed uint64, workers int, visit func(frac float64, i int, c ulba.Comparison)) ([]simulate.Fig3Bucket, error) {

	opts := []ulba.Option{ulba.WithWorkers(workers), ulba.WithAlphaGrid(alphaGrid)}
	if planner.Name() != "sigma+" {
		opts = append(opts, ulba.WithPlanner(planner))
	}
	sweep, err := ulba.NewSweep(opts...)
	if err != nil {
		return nil, err
	}
	gen := instance.NewGenerator(seed)
	buckets := make([]simulate.Fig3Bucket, 0, len(instance.Fig3Buckets))
	for _, frac := range instance.Fig3Buckets {
		params := make([]ulba.ModelParams, instancesPerBucket)
		for i := range params {
			params[i] = gen.SampleAt(frac)
		}
		sum, comps, err := sweep.Run(ctx, params)
		if err != nil {
			return nil, fmt.Errorf("bucket %.3f: %w", frac, err)
		}
		gains := make([]float64, len(comps))
		for i, c := range comps {
			gains[i] = c.Gain
			if visit != nil {
				visit(frac, i, c)
			}
		}
		buckets = append(buckets, simulate.Fig3Bucket{
			Fraction:      frac,
			Gains:         sum.Gains,
			MeanBestAlpha: sum.MeanBestAlpha,
			RawGains:      gains,
		})
	}
	return buckets, nil
}
