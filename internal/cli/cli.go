// Package cli holds the policy-selection and experiment-driving helpers the
// cmd/ binaries share: configuring registry-built planners and triggers from
// flag values, and the Fig. 3 sweep loop over the public Sweep engine.
package cli

import (
	"context"
	"fmt"
	"os"

	"ulba"
	"ulba/internal/instance"
	"ulba/internal/simulate"
)

// ConfigurePlanner applies the flag-level knobs to a registry-built planner:
// the interval for the periodic planner, the proposal budget and seed for
// the annealing planner. Other planners pass through unchanged.
func ConfigurePlanner(pl ulba.Planner, period, annealSteps int, seed uint64) ulba.Planner {
	switch p := pl.(type) {
	case ulba.PeriodicPlanner:
		p.Every = period
		return p
	case ulba.AnnealPlanner:
		p.Steps = annealSteps
		p.Seed = seed
		return p
	default:
		return pl
	}
}

// ConfigureTrigger applies the flag-level knobs to a registry-built trigger:
// the interval for the periodic trigger, the firing threshold for the wli
// trigger (non-positive keeps the registry default). Other triggers pass
// through unchanged.
func ConfigureTrigger(t ulba.Trigger, period int, wliThreshold float64) ulba.Trigger {
	switch tr := t.(type) {
	case ulba.PeriodicTrigger:
		tr.Every = period
		return tr
	case ulba.WLITrigger:
		if wliThreshold > 0 {
			tr.Threshold = wliThreshold
		}
		return tr
	default:
		return t
	}
}

// RunFig3Sweep drives the Fig. 3 experiment through the public Sweep
// engine: for each Table II overloading-fraction bucket it samples
// instancesPerBucket instances (sequentially from one generator, matching
// the paper driver's order) and evaluates them under the given planner.
// visit is called for every instance in input order; pass nil to skip.
// The default sigma+ planner keeps the sweep on the paper's exact
// evaluation path; any other planner re-plans every instance.
func RunFig3Sweep(ctx context.Context, planner ulba.Planner, instancesPerBucket, alphaGrid int,
	seed uint64, workers int, visit func(frac float64, i int, c ulba.Comparison)) ([]simulate.Fig3Bucket, error) {

	opts := []ulba.Option{ulba.WithWorkers(workers), ulba.WithAlphaGrid(alphaGrid)}
	if planner.Name() != "sigma+" {
		opts = append(opts, ulba.WithPlanner(planner))
	}
	sweep, err := ulba.NewSweep(opts...)
	if err != nil {
		return nil, err
	}
	gen := instance.NewGenerator(seed)
	buckets := make([]simulate.Fig3Bucket, 0, len(instance.Fig3Buckets))
	for _, frac := range instance.Fig3Buckets {
		params := make([]ulba.ModelParams, instancesPerBucket)
		for i := range params {
			params[i] = gen.SampleAt(frac)
		}
		sum, comps, err := sweep.Run(ctx, params)
		if err != nil {
			return nil, fmt.Errorf("bucket %.3f: %w", frac, err)
		}
		gains := make([]float64, len(comps))
		for i, c := range comps {
			gains[i] = c.Gain
			if visit != nil {
				visit(frac, i, c)
			}
		}
		buckets = append(buckets, simulate.Fig3Bucket{
			Fraction:      frac,
			Gains:         sum.Gains,
			MeanBestAlpha: sum.MeanBestAlpha,
			RawGains:      gains,
		})
	}
	return buckets, nil
}

// ConfigureWorkload applies the flag-level knobs to a registry-built
// workload: the seed for the generator workloads, and a replacement
// recording for the trace workload when traceFile is non-empty. Workloads
// without a seed knob pass through unchanged.
func ConfigureWorkload(w ulba.Workload, seed uint64, traceFile string) (ulba.Workload, error) {
	switch wl := w.(type) {
	case ulba.StationaryWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.LinearWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.ExponentialWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.BurstyWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.OutlierWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.MiniFEWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.AMRWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.TargetImbalanceWorkload:
		wl.Seed = seed
		return wl, nil
	case ulba.TraceWorkload:
		if traceFile == "" {
			return wl, nil
		}
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ulba.LoadTraceWorkload(f)
	default:
		return w, nil
	}
}

// WarmupDisabled mirrors the experiment builders' warmup rule for CLI
// paths that drive raw run configurations: the static baseline must stay
// free of LB calls, and a schedule replay already encodes its (possibly
// absent) first step, so neither gets the forced warmup call.
func WarmupDisabled(t ulba.Trigger) bool {
	switch t.(type) {
	case ulba.NeverTrigger, ulba.ScheduleTrigger:
		return true
	default:
		return false
	}
}

// BuildAssessmentScenarios samples n assessment scenario columns from the
// seed: the same pinned SampleSynthScenarios sequence BuildScenarios draws,
// expressed as scenario specs so every assessment criterion constructs its
// own runs over one shared column set. The trace workload has no seed knob,
// so its columns replay the registry default recording.
func BuildAssessmentScenarios(seed uint64, n int) []ulba.AssessmentScenario {
	scens := instance.NewGenerator(seed).SampleSynthScenarios(ulba.WorkloadNames(), n)
	out := make([]ulba.AssessmentScenario, len(scens))
	for i, sc := range scens {
		spec := &ulba.WorkloadSpec{Name: sc.Workload}
		if sc.Workload != "trace" {
			spec.Seed = sc.Seed
		}
		out[i] = ulba.AssessmentScenario{P: sc.P, Iterations: sc.Iterations, Workload: spec}
	}
	return out
}

// BuildScenarios samples n runtime scenarios (cycling every registered
// workload) from the seed and turns them into ready-to-run
// RuntimeExperiments under the default degradation trigger. It is the
// bridge the runtime sweep drivers (the benchmark harness, the ulba-runtime
// sweep mode, the golden worker-invariance test) share: the whole pinned
// sampling sequence lives here, so every driver runs the exact same
// scenario set for a given seed.
func BuildScenarios(seed uint64, n int) ([]*ulba.RuntimeExperiment, []instance.SynthScenario, error) {
	scens := instance.NewGenerator(seed).SampleSynthScenarios(ulba.WorkloadNames(), n)
	exps := make([]*ulba.RuntimeExperiment, len(scens))
	for i, sc := range scens {
		w, err := ulba.NewWorkload(sc.Workload)
		if err != nil {
			return nil, nil, err
		}
		w, err = ConfigureWorkload(w, sc.Seed, "")
		if err != nil {
			return nil, nil, err
		}
		exps[i], err = ulba.NewRuntime(sc.P, ulba.WithWorkload(w),
			ulba.WithIterations(sc.Iterations), ulba.WithWorkers(1))
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %d (%s): %w", i, sc.Workload, err)
		}
	}
	return exps, scens, nil
}
