// Package simulate drives the paper's synthetic experiments on the analytic
// model: the validation of the sigma+ upper bound against simulated
// annealing (Fig. 2) and the theoretical comparison of ULBA with the
// standard LB method as a function of the percentage of overloading PEs
// (Fig. 3). All runs are deterministic given a seed and parallelize over
// instances with a bounded worker pool.
package simulate

import (
	"context"
	"runtime"
	"sync"

	"ulba/internal/anneal"
	"ulba/internal/instance"
	"ulba/internal/model"
	"ulba/internal/schedule"
	"ulba/internal/stats"
)

// Comparison is the outcome of evaluating one instance under both methods.
type Comparison struct {
	Params    model.Params
	StdTime   float64 // standard method on its Menon/sigma+(alpha=0) schedule
	ULBATime  float64 // ULBA at the best alpha on its own sigma+ schedule
	BestAlpha float64
	// Gain is the fractional improvement of ULBA over the standard
	// method: (StdTime - ULBATime) / StdTime. Non-negative by
	// construction whenever the alpha grid contains 0.
	Gain float64
}

// AlphaGrid returns n alpha values uniformly spread over [0, 1] inclusive,
// matching the paper's "100 values of alpha uniformly distributed in the
// range [0, 1]". It always contains 0, so the best-alpha ULBA can never lose
// to the standard method.
func AlphaGrid(n int) []float64 {
	if n < 2 {
		return []float64{0}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n-1)
	}
	return out
}

// StandardTime evaluates the standard method: alpha = 0, LB steps every
// Menon tau (equivalently sigma+ at alpha = 0), Eq. 2 in Eqs. 3-4. It runs
// on the allocation-free incremental evaluator; the result is bit-identical
// to materializing the schedule and evaluating it.
func StandardTime(p model.Params) float64 {
	var ev schedule.Evaluator
	return ev.TotalTimeStd(p.WithAlpha(0))
}

// ULBATimeAt evaluates ULBA at one alpha: LB steps every sigma+, Eq. 5 in
// Eqs. 3-4, on the incremental evaluator.
func ULBATimeAt(p model.Params, alpha float64) float64 {
	var ev schedule.Evaluator
	return ev.TotalTimeULBA(p.WithAlpha(alpha))
}

// BestAlpha scans the alpha grid and returns the alpha minimizing the ULBA
// total time, with that time. Grid points are pruned incrementally (see
// schedule.Evaluator.BestAlphaIncremental); the result is exactly that of a
// full scan, first minimum winning ties.
func BestAlpha(p model.Params, grid []float64) (alpha, best float64) {
	var ev schedule.Evaluator
	return ev.BestAlphaIncremental(p, grid)
}

// Compare evaluates one instance under both methods with the given alpha
// grid.
func Compare(p model.Params, grid []float64) Comparison {
	var ev schedule.Evaluator
	return CompareWith(&ev, p, grid)
}

// CompareWith is Compare on a caller-supplied evaluator. The evaluation
// itself is allocation-free and stateless; taking the evaluator explicitly
// keeps its ownership per worker goroutine (an Evaluator is not safe for
// concurrent use once its scratch state — schedule.Evaluator.SigmaPlus —
// is involved). It is the per-instance kernel of the public Sweep fast
// path.
func CompareWith(ev *schedule.Evaluator, p model.Params, grid []float64) Comparison {
	std := ev.TotalTimeStd(p.WithAlpha(0))
	a, ub := ev.BestAlphaIncremental(p, grid)
	return Comparison{
		Params:    p,
		StdTime:   std,
		ULBATime:  ub,
		BestAlpha: a,
		Gain:      (std - ub) / std,
	}
}

// Fig3Config parameterizes the Fig. 3 sweep.
type Fig3Config struct {
	Buckets            []float64 // fractions of overloading PEs; default instance.Fig3Buckets
	InstancesPerBucket int       // paper: 1000
	AlphaGridSize      int       // paper: 100
	Seed               uint64
	Workers            int // default GOMAXPROCS
}

// Fig3Bucket is one box of the Fig. 3 box plot.
type Fig3Bucket struct {
	Fraction      float64       // N/P
	Gains         stats.FiveNum // distribution of percentage gains (0..1 fractions)
	MeanBestAlpha float64
	RawGains      []float64 // per-instance gains, for rendering
}

// RunFig3 reproduces the Fig. 3 experiment: for each percentage of
// overloading PEs, sample instances from Table II (with N pinned), evaluate
// the standard method and best-of-grid ULBA, and summarize the gains.
func RunFig3(cfg Fig3Config) []Fig3Bucket {
	if cfg.Buckets == nil {
		cfg.Buckets = instance.Fig3Buckets
	}
	if cfg.InstancesPerBucket <= 0 {
		cfg.InstancesPerBucket = 1000
	}
	if cfg.AlphaGridSize <= 0 {
		cfg.AlphaGridSize = 100
	}
	grid := AlphaGrid(cfg.AlphaGridSize)

	out := make([]Fig3Bucket, len(cfg.Buckets))
	gen := instance.NewGenerator(cfg.Seed)
	for bi, frac := range cfg.Buckets {
		// Sample instances sequentially for determinism, evaluate in
		// parallel.
		params := make([]model.Params, cfg.InstancesPerBucket)
		for i := range params {
			params[i] = gen.SampleAt(frac)
		}
		comps := parallelMap(cfg.Workers, params, func(p model.Params) Comparison {
			return Compare(p, grid)
		})
		gains := make([]float64, len(comps))
		var alphaSum float64
		for i, c := range comps {
			gains[i] = c.Gain
			alphaSum += c.BestAlpha
		}
		out[bi] = Fig3Bucket{
			Fraction:      frac,
			Gains:         stats.Summarize(gains),
			MeanBestAlpha: alphaSum / float64(len(comps)),
			RawGains:      gains,
		}
	}
	return out
}

// Fig2Config parameterizes the Fig. 2 experiment.
type Fig2Config struct {
	Instances   int // paper: 1000 (defaults to 200 for tractability)
	AnnealSteps int // annealing proposals per instance
	Seed        uint64
	Workers     int
}

// Fig2Result summarizes the sigma+ versus simulated-annealing comparison.
type Fig2Result struct {
	// Gains holds, per instance, the relative gain of the sigma+ schedule
	// over the annealed schedule: (T_anneal - T_sigma) / T_anneal.
	// Negative values mean the heuristic search found a better schedule
	// than the analytic upper bound.
	Gains      []float64
	Best       float64 // most positive gain (paper: +1.57%)
	Worst      float64 // most negative gain (paper: -5.58%)
	Mean       float64 // paper: -0.83%
	BetterFrac float64 // fraction of instances where sigma+ beat annealing
}

// RunFig2 reproduces the Fig. 2 experiment: on each Table II instance,
// compare load balancing every sigma+ iterations against a simulated
// annealing search over all 2^gamma LB schedules (the heuristic of Section
// III-B), both evaluated with Eq. 5 in Eqs. 3-4.
func RunFig2(cfg Fig2Config) Fig2Result {
	if cfg.Instances <= 0 {
		cfg.Instances = 200
	}
	if cfg.AnnealSteps <= 0 {
		cfg.AnnealSteps = 20000
	}
	gen := instance.NewGenerator(cfg.Seed)
	type job struct {
		p    model.Params
		seed uint64
	}
	jobs := make([]job, cfg.Instances)
	for i := range jobs {
		jobs[i] = job{p: gen.Sample(), seed: cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15}
	}
	gains := parallelMap(cfg.Workers, jobs, func(j job) float64 {
		sigmaTime := ULBATimeAt(j.p, j.p.Alpha)
		annealed := AnnealSchedule(j.p, cfg.AnnealSteps, j.seed)
		annealTime := schedule.TotalTimeULBA(j.p, annealed)
		return (annealTime - sigmaTime) / annealTime
	})
	res := Fig2Result{Gains: gains}
	res.Best, _ = maxOf(gains)
	res.Worst, _ = minOf(gains)
	res.Mean = stats.Mean(gains)
	better := 0
	for _, g := range gains {
		if g > 0 {
			better++
		}
	}
	res.BetterFrac = float64(better) / float64(len(gains))
	return res
}

// AnnealSchedule searches for a near-optimal LB schedule for the instance
// with simulated annealing over the boolean state space of Section III-B
// (one flag per iteration, flip moves), starting from the empty schedule.
func AnnealSchedule(p model.Params, steps int, seed uint64) schedule.Schedule {
	energy := func(flags []bool) float64 {
		return schedule.TotalTimeULBA(p, schedule.FromBools(flags))
	}
	initial := make([]bool, p.Gamma)
	res := anneal.MinimizeBools(anneal.Config{Steps: steps, Seed: seed}, initial, energy)
	return schedule.FromBools(res.Best)
}

// ParallelMap applies f to every element of in with at most workers
// goroutines, preserving input order in the output. workers <= 0 selects
// GOMAXPROCS. Because each slot is computed independently and written to
// its own index, the result is identical for every worker count — the same
// invariance the public ulba.Sweep engine guarantees for streamed batch
// evaluations. Cancelling the context stops dispatching further work, waits
// for the in-flight calls, and returns ctx.Err() with a nil slice.
func ParallelMap[T, R any](ctx context.Context, workers int, in []T, f func(T) R) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]R, len(in))
	if workers <= 1 {
		for i, v := range in {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = f(v)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = f(in[i])
			}
		}()
	}
	var err error
dispatch:
	for i := range in {
		// Check Err before the send: a select with both cases ready picks
		// randomly, so without this a cancelled (even pre-cancelled)
		// context could keep dispatching work.
		if err = ctx.Err(); err != nil {
			break dispatch
		}
		select {
		case next <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parallelMap is the uncancellable variant used by the fixed-size Fig. 2-3
// experiment drivers; interactive callers go through ulba.Sweep, which
// adds streaming and cancellation on the same worker-pool pattern.
func parallelMap[T, R any](workers int, in []T, f func(T) R) []R {
	out, _ := ParallelMap(context.Background(), workers, in, f)
	return out
}

func maxOf(xs []float64) (float64, int) {
	best, idx := xs[0], 0
	for i, x := range xs {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

func minOf(xs []float64) (float64, int) {
	best, idx := xs[0], 0
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}
