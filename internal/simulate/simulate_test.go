package simulate

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"ulba/internal/instance"
	"ulba/internal/schedule"
)

func TestAlphaGrid(t *testing.T) {
	g := AlphaGrid(100)
	if len(g) != 100 || g[0] != 0 || g[99] != 1 {
		t.Fatalf("grid malformed: len=%d ends=%v,%v", len(g), g[0], g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatal("grid must increase")
		}
	}
	if got := AlphaGrid(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("AlphaGrid(1) = %v", got)
	}
}

func TestCompareGainNonNegative(t *testing.T) {
	gen := instance.NewGenerator(5)
	grid := AlphaGrid(21)
	for i := 0; i < 100; i++ {
		p := gen.Sample()
		c := Compare(p, grid)
		if c.Gain < -1e-12 {
			t.Fatalf("instance %d: ULBA with alpha grid including 0 lost to standard: gain=%g\n%v", i, c.Gain, p)
		}
		if c.ULBATime > c.StdTime*(1+1e-12) {
			t.Fatalf("instance %d: ULBA time exceeds standard: %g > %g", i, c.ULBATime, c.StdTime)
		}
	}
}

func TestStandardTimeMatchesAlphaZeroULBA(t *testing.T) {
	gen := instance.NewGenerator(6)
	for i := 0; i < 50; i++ {
		p := gen.Sample()
		std := StandardTime(p)
		ul := ULBATimeAt(p, 0)
		if math.Abs(std-ul) > 1e-9*std {
			t.Fatalf("alpha=0 ULBA != standard: %g vs %g", ul, std)
		}
	}
}

func TestBestAlphaPicksMinimum(t *testing.T) {
	gen := instance.NewGenerator(7)
	p := gen.Sample()
	grid := AlphaGrid(11)
	a, best := BestAlpha(p, grid)
	for _, g := range grid {
		if tt := ULBATimeAt(p, g); tt < best-1e-12 {
			t.Fatalf("BestAlpha missed alpha=%g (%g < %g at alpha=%g)", g, tt, best, a)
		}
	}
}

func TestRunFig3SmallShape(t *testing.T) {
	cfg := Fig3Config{
		Buckets:            []float64{0.01, 0.20},
		InstancesPerBucket: 40,
		AlphaGridSize:      21,
		Seed:               11,
		Workers:            4,
	}
	buckets := RunFig3(cfg)
	if len(buckets) != 2 {
		t.Fatalf("want 2 buckets, got %d", len(buckets))
	}
	for _, b := range buckets {
		if b.Gains.N != 40 {
			t.Errorf("bucket %v: N = %d, want 40", b.Fraction, b.Gains.N)
		}
		if b.Gains.Min < 0 {
			t.Errorf("bucket %v: negative gain %g", b.Fraction, b.Gains.Min)
		}
		if b.MeanBestAlpha < 0 || b.MeanBestAlpha > 1 {
			t.Errorf("bucket %v: mean alpha %g out of range", b.Fraction, b.MeanBestAlpha)
		}
		if len(b.RawGains) != 40 {
			t.Errorf("raw gains not kept")
		}
	}
	// Paper shape: fewer overloading PEs -> larger gains and larger best
	// alpha. With 40 instances the medians are stable enough.
	if buckets[0].Gains.Median <= buckets[1].Gains.Median {
		t.Errorf("median gain should fall with overloading fraction: %g (1%%) vs %g (20%%)",
			buckets[0].Gains.Median, buckets[1].Gains.Median)
	}
	if buckets[0].MeanBestAlpha <= buckets[1].MeanBestAlpha {
		t.Errorf("mean best alpha should fall with overloading fraction: %g vs %g",
			buckets[0].MeanBestAlpha, buckets[1].MeanBestAlpha)
	}
}

func TestRunFig3Deterministic(t *testing.T) {
	cfg := Fig3Config{Buckets: []float64{0.05}, InstancesPerBucket: 10, AlphaGridSize: 11, Seed: 3, Workers: 3}
	a := RunFig3(cfg)
	b := RunFig3(cfg)
	if a[0].Gains != b[0].Gains || a[0].MeanBestAlpha != b[0].MeanBestAlpha {
		t.Error("Fig3 run is not deterministic under parallelism")
	}
}

func TestRunFig3Defaults(t *testing.T) {
	cfg := Fig3Config{Buckets: []float64{0.1}, InstancesPerBucket: 4, AlphaGridSize: 5, Seed: 1}
	buckets := RunFig3(cfg)
	if len(buckets) != 1 || buckets[0].Gains.N != 4 {
		t.Fatalf("defaults broken: %+v", buckets)
	}
}

func TestAnnealScheduleImprovesOnEmpty(t *testing.T) {
	gen := instance.NewGenerator(21)
	p := gen.Sample()
	// With the Table II cost structure some LB steps are always
	// beneficial over 100 iterations; annealing must find a schedule at
	// least as good as both the empty schedule and not much worse than
	// sigma+.
	empty := schedule.TotalTimeULBA(p, nil)
	annealed := AnnealSchedule(p, 8000, 99)
	annealTime := schedule.TotalTimeULBA(p, annealed)
	if annealTime > empty*(1+1e-12) {
		t.Errorf("annealing ended worse than its empty start: %g > %g", annealTime, empty)
	}
}

func TestRunFig2Small(t *testing.T) {
	cfg := Fig2Config{Instances: 12, AnnealSteps: 4000, Seed: 17, Workers: 4}
	res := RunFig2(cfg)
	if len(res.Gains) != 12 {
		t.Fatalf("want 12 gains, got %d", len(res.Gains))
	}
	if res.Worst > res.Mean || res.Mean > res.Best {
		t.Errorf("summary ordering broken: worst %g mean %g best %g", res.Worst, res.Mean, res.Best)
	}
	// The sigma+ schedule should be competitive: mean within a few
	// percent of the annealed optimum (paper: -0.83%).
	if res.Mean < -0.15 {
		t.Errorf("sigma+ far from annealed optimum: mean gain %g", res.Mean)
	}
	if res.Mean > 0.10 {
		t.Errorf("suspicious: sigma+ hugely better than annealing, mean %g — annealing broken?", res.Mean)
	}
	if res.BetterFrac < 0 || res.BetterFrac > 1 {
		t.Errorf("BetterFrac out of range: %g", res.BetterFrac)
	}
}

func TestRunFig2Deterministic(t *testing.T) {
	cfg := Fig2Config{Instances: 6, AnnealSteps: 2000, Seed: 8, Workers: 3}
	a := RunFig2(cfg)
	b := RunFig2(cfg)
	for i := range a.Gains {
		if a.Gains[i] != b.Gains[i] {
			t.Fatal("Fig2 run is not deterministic under parallelism")
		}
	}
}

func TestParallelMapOrderAndWorkers(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{0, 1, 7, 200} {
		out := parallelMap(workers, in, func(x int) int { return x * x })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if got := parallelMap(4, []int{}, func(x int) int { return x }); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
}

// A context cancelled before ParallelMap starts yields no work at all, on
// both the sequential and the pooled path.
func TestParallelMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := []int{1, 2, 3, 4}
	for _, workers := range []int{1, 3} {
		var calls atomic.Int64
		out, err := ParallelMap(ctx, workers, in, func(x int) int { calls.Add(1); return x })
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Errorf("workers=%d: cancelled map returned a slice: %v", workers, out)
		}
		if n := calls.Load(); n != 0 {
			t.Errorf("workers=%d: %d calls ran under a pre-cancelled context", workers, n)
		}
	}
}

// Cancelling mid-dispatch stops further work, waits for the in-flight
// calls, and returns ctx.Err() with a nil slice.
func TestParallelMapCancelledMidDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make([]int, 1000)
	var started atomic.Int64
	out, err := ParallelMap(ctx, 2, in, func(x int) int {
		if started.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return x
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled map returned a non-nil slice")
	}
	// The dispatch loop stops at the cancellation point: with 2 workers at
	// most a handful of calls can already be in flight or queued, nowhere
	// near the full input. By the time ParallelMap returned it had waited
	// for all of them (started is stable).
	if n := started.Load(); n >= int64(len(in)) {
		t.Errorf("%d of %d calls ran despite mid-dispatch cancellation", n, len(in))
	}
}

// Property: the gain of ULBA at its best alpha is monotone in the richness
// of the alpha grid (a superset grid can only do better).
func TestGridRefinementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := instance.NewGenerator(seed).Sample()
		_, coarse := BestAlpha(p, AlphaGrid(5))
		_, fine := BestAlpha(p, AlphaGrid(9)) // 9-grid contains the 5-grid
		return fine <= coarse*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: standard time is invariant to the instance's alpha field.
func TestStandardIgnoresAlphaProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := instance.NewGenerator(seed).Sample()
		return StandardTime(p) == StandardTime(p.WithAlpha(0.77))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
