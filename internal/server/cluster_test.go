package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ulba/internal/cluster"
	"ulba/internal/engine"
	"ulba/internal/jobs"
)

// testClusterNode is one in-process replica: the Server, its HTTP frontend,
// and its base URL as the other replicas dial it.
type testClusterNode struct {
	srv  *Server
	http *httptest.Server
	url  string
}

// newTestCluster stands up n in-process replicas that can really reach each
// other over HTTP. The URL chicken-and-egg (every node needs the full peer
// list before any server exists) is solved by reserving all listeners
// first. Gossip/steal loops run at test speed; configure applies per-node
// Config tweaks before construction.
func newTestCluster(t *testing.T, n, replication int, configure func(i int, cfg *Config)) []testClusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]testClusterNode, n)
	for i := range nodes {
		cfg := Config{Cluster: &cluster.Options{
			Self:           urls[i],
			Peers:          urls,
			Replication:    replication,
			GossipInterval: 20 * time.Millisecond,
			StealInterval:  20 * time.Millisecond,
		}}
		if configure != nil {
			configure(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewUnstartedServer(srv.Handler())
		hs.Listener.Close()
		hs.Listener = lns[i]
		hs.Start()
		nodes[i] = testClusterNode{srv: srv, http: hs, url: urls[i]}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.http.Close()
			node.srv.Close(context.Background())
		}
	})
	return nodes
}

func postURL(t *testing.T, url, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// goldenRequests is one request per engine endpoint, used to pin the
// cluster's byte-identity contract. clusterGoldenRequests derives the
// served paths from the registry, so registering an engine without a row
// here fails TestClusterGoldenByteIdentity immediately.
var goldenRequests = []struct {
	name, path, body string
}{
	{"experiment", "/v1/experiment", `{"p":8,"alpha":0.3,"compare":true}`},
	{"sweep", "/v1/sweep", `{"sample":{"seed":2019,"n":20},"alpha_grid":11}`},
	{"runtime", "/v1/runtime", `{"p":4,"iterations":40,"workload":{"name":"linear","seed":3},"trigger":{"name":"periodic","every":8}}`},
	{"runtime-sweep", "/v1/runtime-sweep", `{"sample":{"seed":5,"n":3}}`},
	{"assess", "/v1/assess", `{"criteria":[{"trigger":{"name":"degradation"}},{"trigger":{"name":"never"}}],"sample":{"seed":4,"n":2}}`},
}

// clusterGoldenRequests checks goldenRequests against the engine registry
// and returns it: every registered engine must have exactly one row.
func clusterGoldenRequests(t *testing.T) []struct{ name, path, body string } {
	t.Helper()
	rows := map[string]bool{}
	for _, req := range goldenRequests {
		rows[req.name] = true
	}
	for _, d := range engine.Engines() {
		if !rows[d.Type] {
			t.Fatalf("goldenRequests has no row for registered engine %q", d.Type)
		}
		delete(rows, d.Type)
	}
	for stale := range rows {
		t.Fatalf("goldenRequests row %q names no registered engine", stale)
	}
	return goldenRequests
}

// TestClusterGoldenByteIdentity pins the tentpole contract: a 3-replica
// cluster serves byte-identical responses to a standalone server for every
// engine request type, no matter which replica the client dials — forwarded
// or computed locally, every body is the same pure function of its request.
func TestClusterGoldenByteIdentity(t *testing.T) {
	_, standalone := newTestServer(t)
	nodes := newTestCluster(t, 3, 2, nil)
	for _, req := range clusterGoldenRequests(t) {
		resp := post(t, standalone, req.path, req.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: standalone status = %d", req.name, resp.StatusCode)
		}
		want := readAll(t, resp)
		for i, node := range nodes {
			resp := postURL(t, node.url, req.path, req.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s via node %d: status = %d", req.name, i, resp.StatusCode)
			}
			got := readAll(t, resp)
			if string(got) != string(want) {
				t.Errorf("%s via node %d: body differs from standalone\ngot:  %q\nwant: %q", req.name, i, got, want)
			}
			if node := resp.Header.Get(cluster.HeaderNode); node == "" {
				t.Errorf("%s via node %d: missing %s header", req.name, i, cluster.HeaderNode)
			}
		}
	}
}

// TestNodeHeaderAndStats pins the observability surface on a standalone
// server: every response names its node, /v1/stats carries the node block,
// GET /v1/cluster reports unclustered, and the cluster-protocol POSTs are
// refused.
func TestNodeHeaderAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(cluster.HeaderNode); got != standaloneNodeID {
		t.Errorf("%s = %q, want %q", cluster.HeaderNode, got, standaloneNodeID)
	}
	st := decodeBody[Stats](t, resp)
	if st.Node == nil {
		t.Fatal("stats has no node block")
	}
	if st.Node.ID != standaloneNodeID {
		t.Errorf("stats node id = %q, want %q", st.Node.ID, standaloneNodeID)
	}
	if st.Node.Cluster != nil {
		t.Errorf("standalone stats should have no cluster block, got %+v", st.Node.Cluster)
	}

	cresp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	cs := decodeBody[clusterStatusResponse](t, cresp)
	if cs.Clustered || cs.Node != standaloneNodeID {
		t.Errorf("GET /v1/cluster = %+v, want clustered=false node=%s", cs, standaloneNodeID)
	}

	for _, path := range []string{"/v1/cluster/gossip", "/v1/cluster/replicate", "/v1/cluster/steal"} {
		resp := post(t, ts, path, `{}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s on standalone = %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestClusterStatsAndHeader pins the clustered observability surface: node
// IDs are distinct, the stats cluster block sees every peer, and a
// forwarded response names the owner that served it.
func TestClusterStatsAndHeader(t *testing.T) {
	nodes := newTestCluster(t, 3, 2, nil)
	seen := map[string]bool{}
	for i, node := range nodes {
		resp, err := http.Get(node.url + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[Stats](t, resp)
		resp.Body.Close()
		if st.Node == nil || st.Node.Cluster == nil {
			t.Fatalf("node %d stats has no cluster block", i)
		}
		if st.Node.Cluster.Size != 3 || st.Node.Cluster.Replication != 2 {
			t.Errorf("node %d cluster size/replication = %d/%d, want 3/2",
				i, st.Node.Cluster.Size, st.Node.Cluster.Replication)
		}
		if seen[st.Node.ID] {
			t.Errorf("duplicate node id %q", st.Node.ID)
		}
		seen[st.Node.ID] = true
		if got := resp.Header.Get(cluster.HeaderNode); got != st.Node.ID {
			t.Errorf("node %d header %q != stats id %q", i, got, st.Node.ID)
		}
	}
}

// cacheEntries polls a node's cache entry count.
func cacheEntries(node testClusterNode) int {
	return node.srv.Stats().Cache.Entries
}

// TestClusterReplicationSurvivesNodeDeath pins the availability contract:
// a computed result is replicated across its replica set, so killing one
// holder loses nothing — survivors keep serving the identical bytes without
// recomputation being observable to the client.
func TestClusterReplicationSurvivesNodeDeath(t *testing.T) {
	nodes := newTestCluster(t, 3, 2, nil)
	const path, body = "/v1/sweep", `{"sample":{"seed":77,"n":15},"alpha_grid":11}`

	resp := postURL(t, nodes[0].url, path, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	want := readAll(t, resp)

	// Replication is asynchronous: wait until two replicas hold the body.
	deadline := time.Now().Add(5 * time.Second)
	var holders []int
	for time.Now().Before(deadline) {
		holders = holders[:0]
		for i, node := range nodes {
			if cacheEntries(node) > 0 {
				holders = append(holders, i)
			}
		}
		if len(holders) >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(holders) < 2 {
		t.Fatalf("replication never reached 2 nodes (holders %v)", holders)
	}

	// Kill one holder outright: unreachable over HTTP and its loops down,
	// like a kill -9 of the process.
	dead := holders[0]
	nodes[dead].http.Close()
	nodes[dead].srv.Close(context.Background())

	for i, node := range nodes {
		if i == dead {
			continue
		}
		resp := postURL(t, node.url, path, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor %d: status = %d", i, resp.StatusCode)
		}
		got := readAll(t, resp)
		if string(got) != string(want) {
			t.Errorf("survivor %d: body differs after node death", i)
		}
	}
}

// TestClusterStealEndpoint drives the work-stealing protocol end to end,
// with the timing made deterministic in-process: the victim's single worker
// is blocked, a queued job is leased out over /v1/cluster/steal (exactly
// once), the thief computes it through its own engine path, pushes the body
// back, and the victim's queued job completes bit-identically.
func TestClusterStealEndpoint(t *testing.T) {
	nodes := newTestCluster(t, 2, 2, func(i int, cfg *Config) {
		cfg.JobWorkers = 1
		// The loops must not race this test's manual protocol calls.
		cfg.Cluster.GossipInterval = time.Hour
		cfg.Cluster.StealInterval = time.Hour
	})
	victim, thief := nodes[0], nodes[1]

	// Occupy the victim's only worker so the next submission stays queued.
	release := make(chan struct{})
	running := make(chan struct{})
	_, err := victim.srv.manager.Submit("experiment", "block", 1, jobSubmission{}, func(ctx context.Context, j *jobs.Job) error {
		close(running)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer releaseOnce(release)
	<-running

	const jobReq = `{"sample":{"seed":41,"n":10},"alpha_grid":11}`
	resp := postURL(t, victim.url, "/v1/jobs", `{"type":"sweep","request":`+jobReq+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	queued := decodeBody[jobs.Status](t, resp)

	// First steal leases the queued job; the second finds nothing left.
	sresp := postURL(t, victim.url, cluster.PathSteal, `{"from":"n-test"}`)
	stolen := decodeBody[cluster.StealResponse](t, sresp)
	if stolen.Job == nil {
		t.Fatal("steal returned no job")
	}
	if stolen.Job.Type != "sweep" || stolen.Job.Key != queued.Key {
		t.Fatalf("stolen job = %+v, want sweep %s", stolen.Job, queued.Key)
	}
	again := decodeBody[cluster.StealResponse](t, postURL(t, victim.url, cluster.PathSteal, `{"from":"n-test"}`))
	if again.Job != nil {
		t.Fatalf("second steal leased %+v, want nothing (single-flight)", again.Job)
	}

	// The thief computes the stolen submission through its own engine path
	// and pushes the body back, exactly as its steal loop would.
	key, body, err := thief.srv.clusterHooks().RunStolen(context.Background(), stolen.Job.Type, stolen.Job.Request)
	if err != nil {
		t.Fatal(err)
	}
	if key != stolen.Job.Key {
		t.Fatalf("thief computed key %s, want %s", key, stolen.Job.Key)
	}
	req, err := http.NewRequest(http.MethodPost, victim.url+cluster.PathReplicate, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HeaderKey, key)
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("replicate status = %d", rresp.StatusCode)
	}

	// Unblock the worker; the victim's queued job should finish as a cache
	// hit on the pushed body and serve the identical bytes.
	releaseOnce(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(victim.url + "/v1/jobs/" + queued.ID)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[jobs.Status](t, resp)
		resp.Body.Close()
		if st.State == jobs.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err := http.Get(victim.url + "/v1/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	got := readAll(t, res)
	if string(got) != string(body) {
		t.Fatal("victim job result differs from the thief's pushed body")
	}

	vstats := victim.srv.Stats()
	if vstats.Jobs.Stolen != 1 {
		t.Errorf("victim jobs.stolen = %d, want 1", vstats.Jobs.Stolen)
	}
	if vstats.Node.StealsServed != 1 {
		t.Errorf("victim steals_served = %d, want 1", vstats.Node.StealsServed)
	}
	if vstats.Node.ReplicasReceived == 0 {
		t.Error("victim replicas_received = 0, want > 0")
	}
}

// releaseOnce closes ch if it is still open.
func releaseOnce(ch chan struct{}) {
	select {
	case <-ch:
	default:
		close(ch)
	}
}

// TestClusterReplicateValidation pins the replica-admission guards.
func TestClusterReplicateValidation(t *testing.T) {
	nodes := newTestCluster(t, 2, 2, nil)
	cases := []struct {
		name, key, body string
	}{
		{"missing key", "", `{"x":1}`},
		{"short key", "abc123", `{"x":1}`},
		{"non-hex key", strings.Repeat("z", 64), `{"x":1}`},
		{"empty body", strings.Repeat("a", 64), ""},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(http.MethodPost, nodes[0].url+cluster.PathReplicate, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if tc.key != "" {
			req.Header.Set(cluster.HeaderKey, tc.key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestStealQueuedManager unit-tests the lease semantics on the manager
// directly: FIFO order, at-most-once leasing, eligibility filtering, and
// the stolen counter.
func TestStealQueuedManager(t *testing.T) {
	m := jobs.NewManager(1, 0)
	defer m.Close(context.Background())
	release := make(chan struct{})
	running := make(chan struct{})
	defer releaseOnce(release)
	if _, err := m.Submit("blocker", "k-block", 1, nil, func(ctx context.Context, j *jobs.Job) error {
		close(running)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-running
	noop := func(ctx context.Context, j *jobs.Job) error { return nil }
	for i := 0; i < 3; i++ {
		if _, err := m.Submit("sweep", fmt.Sprintf("k%d", i), 1, fmt.Sprintf("meta%d", i), noop); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.QueuedLen(); got != 3 {
		t.Fatalf("QueuedLen = %d, want 3", got)
	}

	// k0 is filtered out (e.g. already cached), so the first steal leases
	// k1, the next k2, then nothing is left.
	eligible := func(key string) bool { return key != "k0" && key != "k-block" }
	typ, key, meta, ok := m.StealQueued(eligible)
	if !ok || typ != "sweep" || key != "k1" || meta != "meta1" {
		t.Fatalf("first steal = %q %q %v %v, want sweep k1 meta1 true", typ, key, meta, ok)
	}
	_, key, _, ok = m.StealQueued(eligible)
	if !ok || key != "k2" {
		t.Fatalf("second steal key = %q ok=%v, want k2 true", key, ok)
	}
	if _, _, _, ok := m.StealQueued(eligible); ok {
		t.Fatal("third steal should find nothing")
	}
	if got := m.Stats().Stolen; got != 2 {
		t.Fatalf("stolen = %d, want 2", got)
	}
}

// TestClusterForwardLoopGuard pins the loop guard: a request already marked
// forwarded is always served locally, so two nodes can never bounce a
// request back and forth.
func TestClusterForwardLoopGuard(t *testing.T) {
	nodes := newTestCluster(t, 3, 1, nil)
	const path, body = "/v1/experiment", `{"p":6,"alpha":0.2}`
	// Send to every node with the forwarded mark set: each must answer
	// itself (node header == its own id), never relay.
	for i, node := range nodes {
		req, err := http.NewRequest(http.MethodPost, node.url+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(cluster.HeaderForwarded, "n-test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Header.Get(cluster.HeaderNode)
		want := nodes[i].srv.nodeID()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got != want {
			t.Errorf("node %d served as %q, want itself (%q)", i, got, want)
		}
	}
}
