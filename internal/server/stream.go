package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ulba"
)

// NDJSON streaming over the engines' Stream machinery. The contract,
// shared by both sweep endpoints:
//
//   - Content-Type is application/x-ndjson; each line is one JSON object,
//     flushed as soon as the engine delivers the result, in completion
//     order. The index field restores input order.
//   - A per-item failure becomes an {"index": i, "error": "..."} line; the
//     stream keeps going, unlike the unary endpoints' lowest-index abort.
//   - The terminal line carries the input-order aggregate — bit-identical
//     to the unary endpoint's summary — when every item succeeded, or an
//     {"error": "..."} count when some failed.
//
// Streaming responses bypass the result cache: their line order depends on
// completion order, so the body is not a deterministic function of the
// request (only the set of lines and the terminal summary are).

// sweepStreamLine is one per-instance line of a streamed /v1/sweep.
type sweepStreamLine struct {
	Index      int              `json:"index"`
	Comparison *ulba.Comparison `json:"comparison,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// sweepStreamTail terminates a streamed /v1/sweep.
type sweepStreamTail struct {
	Summary *ulba.SweepSummary `json:"summary,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// runtimeStreamLine is one per-scenario line of a streamed /v1/runtime-sweep.
type runtimeStreamLine struct {
	Index  int                 `json:"index"`
	Result *ulba.RuntimeResult `json:"result,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// runtimeStreamTail terminates a streamed /v1/runtime-sweep.
type runtimeStreamTail struct {
	Summary *ulba.RuntimeSweepSummary `json:"summary,omitempty"`
	Error   string                    `json:"error,omitempty"`
}

// ndjsonWriter emits one JSON line per Write and flushes it immediately, so
// a consumer sees each result the moment the engine completes it.
type ndjsonWriter struct {
	w     http.ResponseWriter
	flush http.Flusher
	enc   *json.Encoder
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Ulba-Cache", "bypass")
	flush, _ := w.(http.Flusher)
	return &ndjsonWriter{w: w, flush: flush, enc: json.NewEncoder(w)}
}

func (nw *ndjsonWriter) line(v any) {
	nw.enc.Encode(v)
	if nw.flush != nil {
		nw.flush.Flush()
	}
}

// raw emits one precomposed line (no trailing newline) verbatim — the job
// stream path, whose lines were rendered once and replayed from the event
// log.
func (nw *ndjsonWriter) raw(line []byte) {
	nw.w.Write(line)
	nw.w.Write([]byte{'\n'})
	if nw.flush != nil {
		nw.flush.Flush()
	}
}

// streamResults is the shared driver of both streaming endpoints: one
// engine slot for the whole stream, then the per-line contract above. The
// per-endpoint shape is injected: examine splits an engine result into
// (index, value, error), line renders one NDJSON line (value nil on a
// per-item error), and summarize aggregates the collected values for the
// terminal line.
func streamResults[R, V any](w http.ResponseWriter, r *http.Request, s *Server, n int,
	open func(ctx context.Context) <-chan R,
	examine func(R) (index int, value V, err error),
	line func(index int, value *V, errMsg string) any,
	summarize func(values []V) any,
) {
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		writeEngineError(w, err)
		return
	}
	defer s.release()
	s.engineRuns.Add(1)

	nw := newNDJSONWriter(w)
	values := make([]V, n)
	delivered, failed := 0, 0
	for res := range open(ctx) {
		delivered++
		idx, v, err := examine(res)
		if err != nil {
			failed++
			nw.line(line(idx, nil, err.Error()))
			continue
		}
		values[idx] = v
		nw.line(line(idx, &v, ""))
	}
	nw.line(streamTail(ctx, n, delivered, failed, func() any { return summarize(values) }))
}

// streamSweep drives a streamed /v1/sweep.
func streamSweep(w http.ResponseWriter, r *http.Request, s *Server, n int, open func(ctx context.Context) <-chan ulba.SweepResult) {
	streamResults(w, r, s, n, open,
		func(res ulba.SweepResult) (int, ulba.Comparison, error) { return res.Index, res.Comparison, res.Err },
		func(idx int, v *ulba.Comparison, errMsg string) any {
			return sweepStreamLine{Index: idx, Comparison: v, Error: errMsg}
		},
		func(comps []ulba.Comparison) any {
			sum := ulba.SummarizeSweep(comps)
			return sweepStreamTail{Summary: &sum}
		})
}

// streamRuntimeSweep drives a streamed /v1/runtime-sweep.
func streamRuntimeSweep(w http.ResponseWriter, r *http.Request, s *Server, n int, open func(ctx context.Context) <-chan ulba.RuntimeSweepResult) {
	streamResults(w, r, s, n, open,
		func(res ulba.RuntimeSweepResult) (int, ulba.RuntimeResult, error) {
			return res.Index, res.Result, res.Err
		},
		func(idx int, v *ulba.RuntimeResult, errMsg string) any {
			return runtimeStreamLine{Index: idx, Result: v, Error: errMsg}
		},
		func(results []ulba.RuntimeResult) any {
			sum := ulba.SummarizeRuntimeSweep(results)
			return runtimeStreamTail{Summary: &sum}
		})
}

// streamTail picks the terminal line: the input-order summary on full
// success, an error count otherwise. summarize runs only when every item
// landed, so a partial stream can never masquerade as a complete one.
func streamTail(ctx context.Context, n, delivered, failed int, summarize func() any) any {
	switch {
	case failed > 0:
		return errTail(ctx, "%d of %d items failed", failed, n)
	case delivered < n:
		return errTail(ctx, "stream delivered %d of %d items", delivered, n)
	default:
		return summarize()
	}
}

type errorTail struct {
	Error string `json:"error"`
}

func errTail(ctx context.Context, format string, args ...any) errorTail {
	if err := ctx.Err(); err != nil {
		return errorTail{Error: err.Error()}
	}
	return errorTail{Error: fmt.Sprintf(format, args...)}
}
