package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ulba/internal/engine"
)

// NDJSON streaming over the engines' per-unit Batch machinery. The
// contract, shared by every batch engine:
//
//   - Content-Type is application/x-ndjson; each line is one JSON object,
//     flushed as soon as the engine delivers the result, in completion
//     order. The index field restores input order.
//   - A per-item failure becomes an {"index": i, "error": "..."} line; the
//     stream keeps going, unlike the unary endpoints' lowest-index abort.
//   - The terminal line carries the input-order aggregate — bit-identical
//     to the unary endpoint's summary — when every item succeeded, or an
//     {"error": "..."} count when some failed.
//
// Streaming responses bypass the result cache: their line order depends on
// completion order, so the body is not a deterministic function of the
// request (only the set of lines and the terminal summary are).

// ndjsonWriter emits one JSON line per Write and flushes it immediately, so
// a consumer sees each result the moment the engine completes it.
type ndjsonWriter struct {
	w     http.ResponseWriter
	flush http.Flusher
	enc   *json.Encoder
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Ulba-Cache", "bypass")
	flush, _ := w.(http.Flusher)
	return &ndjsonWriter{w: w, flush: flush, enc: json.NewEncoder(w)}
}

func (nw *ndjsonWriter) line(v any) {
	nw.enc.Encode(v)
	if nw.flush != nil {
		nw.flush.Flush()
	}
}

// raw emits one precomposed line (no trailing newline) verbatim — the job
// stream path, whose lines were rendered once and replayed from the event
// log.
func (nw *ndjsonWriter) raw(line []byte) {
	nw.w.Write(line)
	nw.w.Write([]byte{'\n'})
	if nw.flush != nil {
		nw.flush.Flush()
	}
}

// streamBatch drives one prepared batch over the whole index range: one
// engine slot for the whole stream, then the per-line contract above. The
// batch renders its own lines and terminal summary, so this driver is
// engine-agnostic.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, b *engine.Batch) {
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		writeEngineError(w, err)
		return
	}
	defer s.release()
	s.engineRuns.Add(1)

	nw := newNDJSONWriter(w)
	all := make([]int, b.N)
	for i := range all {
		all[i] = i
	}
	delivered, failed := 0, 0
	for u := range b.Open(ctx, all) {
		delivered++
		if u.Err != nil {
			failed++
			nw.line(b.ErrorLine(u.Index, u.Err.Error()))
			continue
		}
		nw.line(b.Line(u.Index))
	}
	nw.line(streamTail(ctx, b.N, delivered, failed, b.Tail))
}

// streamTail picks the terminal line: the input-order summary on full
// success, an error count otherwise. summarize runs only when every item
// landed, so a partial stream can never masquerade as a complete one.
func streamTail(ctx context.Context, n, delivered, failed int, summarize func() any) any {
	switch {
	case failed > 0:
		return errTail(ctx, "%d of %d items failed", failed, n)
	case delivered < n:
		return errTail(ctx, "stream delivered %d of %d items", delivered, n)
	default:
		return summarize()
	}
}

type errorTail struct {
	Error string `json:"error"`
}

func errTail(ctx context.Context, format string, args ...any) errorTail {
	if err := ctx.Err(); err != nil {
		return errorTail{Error: err.Error()}
	}
	return errorTail{Error: fmt.Sprintf(format, args...)}
}
