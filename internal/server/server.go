// Package server is the HTTP/JSON service layer over the four engines of
// package ulba: Experiment, Sweep, RuntimeExperiment, and RuntimeSweep. The
// determinism contract (every result is a pure function of its request)
// makes the engines ideal behind a content-addressed result cache: the
// server canonicalizes each request, hashes it, and serves repeated or
// concurrent identical requests from one computation. Sweep endpoints accept
// batched instance sets and can stream NDJSON results as they complete over
// the engines' existing Stream machinery.
//
// cmd/ulba-serve wraps this package into a deployable binary; API.md is the
// HTTP reference, and the "Service layer" section of DESIGN.md documents the
// cache-key, single-flight, and streaming contracts.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"

	"ulba"
)

// Config parameterizes a Server. The zero value is usable: a 64 MiB cache,
// GOMAXPROCS concurrent engine requests, and 32 MiB request bodies.
type Config struct {
	// CacheBytes is the result cache's byte budget. Negative disables
	// storage (single-flight deduplication still applies); 0 selects the
	// 64 MiB default.
	CacheBytes int64
	// MaxConcurrent bounds how many requests may run engine work at
	// once — the server-level counterpart of WithWorkers, with the same
	// convention: <= 0 selects GOMAXPROCS. Requests beyond the bound
	// queue (respecting their context) rather than erroring.
	MaxConcurrent int
	// MaxBodyBytes bounds a request body; <= 0 selects 32 MiB.
	MaxBodyBytes int64
}

// Server routes the service endpoints and owns the result cache and the
// engine-concurrency limiter. Build it with New; it is safe for concurrent
// use and is typically mounted via Handler.
type Server struct {
	cache   *Cache
	sem     chan struct{}
	mux     *http.ServeMux
	maxBody int64

	requests   atomic.Uint64
	engineRuns atomic.Uint64
}

// New builds a Server from cfg (see Config for the zero-value defaults).
func New(cfg Config) *Server {
	budget := cfg.CacheBytes
	switch {
	case budget == 0:
		budget = 64 << 20
	case budget < 0:
		budget = 0
	}
	workers := cfg.MaxConcurrent
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	s := &Server{
		cache:   NewCache(budget),
		sem:     make(chan struct{}, workers),
		mux:     http.NewServeMux(),
		maxBody: maxBody,
	}
	s.mux.HandleFunc("GET /v1/registries", s.handleRegistries)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/runtime", s.handleRuntime)
	s.mux.HandleFunc("POST /v1/runtime-sweep", s.handleRuntimeSweep)
	return s
}

// Handler returns the root handler serving every endpoint.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		s.mux.ServeHTTP(w, r)
	})
}

// Stats is the service-level counter snapshot behind GET /v1/stats.
type Stats struct {
	Requests   uint64     `json:"requests"`
	EngineRuns uint64     `json:"engine_runs"`
	Cache      CacheStats `json:"cache"`
}

// Stats snapshots the request, engine-run, and cache counters. EngineRuns
// counts actual engine executions: the gap between it and Requests is the
// work the cache and single-flight deduplication saved.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:   s.requests.Load(),
		EngineRuns: s.engineRuns.Load(),
		Cache:      s.cache.Stats(),
	}
}

// acquire claims an engine slot, or gives up when the request dies first.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// writeEngineError maps an engine failure: a dead request context is the
// client's doing (or the server draining), everything else is a 500.
func writeEngineError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// decode strictly parses a request body: unknown fields and trailing data
// are errors, so typos surface as 400s instead of silently evaluating a
// default.
func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid request body: trailing data after the JSON object")
	}
	return nil
}

// cacheKey derives the content address of a canonicalized request:
// endpoint-scoped SHA-256 over its deterministic JSON encoding (struct
// fields marshal in declaration order, so equal requests hash equally).
func cacheKey(endpoint string, canonical any) (string, error) {
	buf, err := json.Marshal(canonical)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(append([]byte(endpoint+"\n"), buf...))
	return fmt.Sprintf("%x", sum), nil
}

// serveCached answers one unary engine request through the cache: compute
// runs at most once per content address across concurrent and repeated
// requests, under an engine slot. compute returns the fully rendered
// response body, so hits and joins are byte-identical to fresh misses.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string, canonical any, compute func(ctx context.Context) (any, error)) {
	key, err := cacheKey(endpoint, canonical)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ctx := r.Context()
	body, outcome, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		if err := s.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		s.engineRuns.Add(1)
		resp, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		buf, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		// The newline is part of the cached body, so hits and joins
		// serve bytes identical to the original miss.
		return append(buf, '\n'), nil
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ulba-Cache", string(outcome))
	w.Write(body)
}

// registriesResponse lists the registered policy and scenario names, the
// exact vocabulary the request specs accept.
type registriesResponse struct {
	Planners  []string `json:"planners"`
	Triggers  []string `json:"triggers"`
	Workloads []string `json:"workloads"`
}

func (s *Server) handleRegistries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(registriesResponse{
		Planners:  ulba.PlannerNames(),
		Triggers:  ulba.TriggerNames(),
		Workloads: ulba.WorkloadNames(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// experimentResponse is the body of POST /v1/experiment. Result (and
// Baseline, with compare) marshal ulba.RunResult as-is; Gain and
// CallsAvoided are the MethodComparison derivations, and
// PredictedTotalTime carries Experiment.PlannedTotalTime for planner-driven
// runs.
type experimentResponse struct {
	Result             ulba.RunResult  `json:"result"`
	Baseline           *ulba.RunResult `json:"baseline,omitempty"`
	Gain               *float64        `json:"gain,omitempty"`
	CallsAvoided       *float64        `json:"calls_avoided,omitempty"`
	PredictedTotalTime *float64        `json:"predicted_total_time,omitempty"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req experimentRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exp, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveCached(w, r, "/v1/experiment", req.canonical(), func(ctx context.Context) (any, error) {
		var resp experimentResponse
		if req.Compare {
			cmp, err := exp.Compare(ctx)
			if err != nil {
				return nil, err
			}
			gain, avoided := cmp.Gain(), cmp.CallsAvoided()
			resp.Result = cmp.Result
			resp.Baseline = &cmp.Baseline
			resp.Gain, resp.CallsAvoided = &gain, &avoided
		} else {
			res, err := exp.Run(ctx)
			if err != nil {
				return nil, err
			}
			resp.Result = res
		}
		if t, ok := exp.PlannedTotalTime(); ok {
			resp.PredictedTotalTime = &t
		}
		return resp, nil
	})
}

// sweepResponse is the body of a non-streamed POST /v1/sweep: exactly
// Sweep.Run's summary and input-ordered comparisons, marshaled as-is.
type sweepResponse struct {
	Summary     ulba.SweepSummary `json:"summary"`
	Comparisons []ulba.Comparison `json:"comparisons"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sweep, n, materialize, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Stream {
		streamSweep(w, r, s, n, func(ctx context.Context) <-chan ulba.SweepResult {
			return sweep.Stream(ctx, materialize())
		})
		return
	}
	s.serveCached(w, r, "/v1/sweep", req.canonical(), func(ctx context.Context) (any, error) {
		summary, comps, err := sweep.Run(ctx, materialize())
		if err != nil {
			return nil, err
		}
		return sweepResponse{Summary: summary, Comparisons: comps}, nil
	})
}

// runtimeResponse is the body of POST /v1/runtime: RuntimeResult marshaled
// as-is plus its two derived figures of merit.
type runtimeResponse struct {
	Result     ulba.RuntimeResult `json:"result"`
	Gain       float64            `json:"gain"`
	Efficiency float64            `json:"efficiency"`
}

func (s *Server) handleRuntime(w http.ResponseWriter, r *http.Request) {
	var req runtimeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exp, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveCached(w, r, "/v1/runtime", req.canonical(), func(ctx context.Context) (any, error) {
		res, err := exp.Run(ctx)
		if err != nil {
			return nil, err
		}
		return runtimeResponse{Result: res, Gain: res.Gain(), Efficiency: res.Efficiency()}, nil
	})
}

// runtimeSweepResponse is the body of a non-streamed POST /v1/runtime-sweep:
// exactly RuntimeSweep.Run's summary and input-ordered results.
type runtimeSweepResponse struct {
	Summary ulba.RuntimeSweepSummary `json:"summary"`
	Results []ulba.RuntimeResult     `json:"results"`
}

func (s *Server) handleRuntimeSweep(w http.ResponseWriter, r *http.Request) {
	var req runtimeSweepRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sweep, n, materialize, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Stream {
		exps, err := materialize()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		streamRuntimeSweep(w, r, s, n, func(ctx context.Context) <-chan ulba.RuntimeSweepResult {
			return sweep.Stream(ctx, exps)
		})
		return
	}
	s.serveCached(w, r, "/v1/runtime-sweep", req.canonical(), func(ctx context.Context) (any, error) {
		exps, err := materialize()
		if err != nil {
			return nil, err
		}
		summary, results, err := sweep.Run(ctx, exps)
		if err != nil {
			return nil, err
		}
		return runtimeSweepResponse{Summary: summary, Results: results}, nil
	})
}
