// Package server is the HTTP/JSON service layer over the registered engines
// of internal/engine (experiment, sweep, runtime, runtime-sweep, assess —
// all built on package ulba). The layer is engine-generic: one handler
// serves every engine's sync endpoint, one job runner serves every engine's
// async path, and the cluster hooks route by content address alone, so a
// new engine costs a registration, not a subsystem. The determinism
// contract (every result is a pure function of its request) makes the
// engines ideal behind a content-addressed result cache: the server
// canonicalizes each request, hashes it, and serves repeated or concurrent
// identical requests from one computation. Batch engines accept instance or
// scenario sets and can stream NDJSON results as they complete.
//
// cmd/ulba-serve wraps this package into a deployable binary; API.md is the
// HTTP reference, and the "Service layer" and "Generic engine core"
// sections of DESIGN.md document the cache-key, single-flight, and
// streaming contracts.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ulba"
	"ulba/internal/cluster"
	"ulba/internal/engine"
	"ulba/internal/jobs"
	"ulba/internal/metrics"
)

// Config parameterizes a Server. The zero value is usable: a 64 MiB cache,
// GOMAXPROCS concurrent engine requests, 32 MiB request bodies, GOMAXPROCS
// job workers, memory-only results, and 1 h job retention.
type Config struct {
	// CacheBytes is the result cache's byte budget. Negative disables
	// storage (single-flight deduplication still applies); 0 selects the
	// 64 MiB default.
	CacheBytes int64
	// MaxConcurrent bounds how many requests may run engine work at
	// once — the server-level counterpart of WithWorkers, with the same
	// convention: <= 0 selects GOMAXPROCS. Requests beyond the bound
	// queue (respecting their context) rather than erroring.
	MaxConcurrent int
	// MaxBodyBytes bounds a request body; <= 0 selects 32 MiB.
	MaxBodyBytes int64

	// MaxInflight bounds how many engine-bound requests may be admitted at
	// once — the load-shedding layer above MaxConcurrent: requests beyond
	// MaxConcurrent queue for an engine slot, requests beyond MaxInflight
	// are answered 429 + Retry-After immediately. Cache hits bypass the
	// bound (they cost no engine time). 0 selects 64x the resolved
	// MaxConcurrent; negative disables shedding.
	MaxInflight int
	// MaxQueuedJobs bounds the job queue depth: submissions beyond it are
	// answered 429 + Retry-After, except submissions whose result is
	// already cached (those jump the queue instead). 0 leaves the queue
	// unbounded.
	MaxQueuedJobs int
	// RetryAfter is the hint sent with every 429, rounded up to whole
	// seconds; 0 selects 1s.
	RetryAfter time.Duration

	// Store, when non-nil, persists rendered response bodies and job
	// checkpoints on disk (cmd/ulba-serve: -store-dir). At startup the
	// store is replayed into the result cache, so identical requests from
	// before a restart are served without recomputation; bodies the LRU
	// evicts are re-read from disk on demand. Nil keeps results in memory
	// only. The server takes ownership: Close closes the store.
	Store *jobs.Store
	// JobWorkers bounds how many jobs run concurrently (<= 0 selects
	// GOMAXPROCS). Job engine work additionally respects MaxConcurrent,
	// like every synchronous request.
	JobWorkers int
	// JobRetention is how long finished jobs stay listable; 0 selects the
	// 1 h default, negative keeps them forever.
	JobRetention time.Duration

	// Cluster, when non-nil, joins this server to a multi-replica cluster
	// (cmd/ulba-serve: -peers/-self/-replication): requests are forwarded
	// to the owner replicas of their content address, completed bodies are
	// replicated across each key's replica set, and idle replicas steal
	// queued jobs from loaded ones. Nil serves standalone; the
	// /v1/cluster/* routes are registered either way.
	Cluster *cluster.Options
}

// Server routes the service endpoints and owns the result cache, the
// persistent store, the job queue, and the engine-concurrency limiter.
// Build it with New; it is safe for concurrent use and is typically
// mounted via Handler. Call Close on shutdown to drain jobs and close the
// store.
type Server struct {
	cache   *Cache
	store   *jobs.Store
	manager *jobs.Manager
	node    *cluster.Node // nil when standalone
	sem     chan struct{}
	mux     *http.ServeMux
	routes  []string
	maxBody int64

	metrics     *metrics.Registry
	maxInflight int    // 0 = unlimited
	retryAfter  string // whole seconds, the Retry-After header value
	inflight    atomic.Int64
	shed        atomic.Uint64

	requests   atomic.Uint64
	engineRuns atomic.Uint64
	seeded     int

	forwardedIn      atomic.Uint64
	replicasReceived atomic.Uint64
	stealsServed     atomic.Uint64
}

// New builds a Server from cfg (see Config for the zero-value defaults).
// The only construction failure is an invalid cluster configuration.
func New(cfg Config) (*Server, error) {
	budget := cfg.CacheBytes
	switch {
	case budget == 0:
		budget = 64 << 20
	case budget < 0:
		budget = 0
	}
	workers := cfg.MaxConcurrent
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	retention := cfg.JobRetention
	switch {
	case retention == 0:
		retention = time.Hour
	case retention < 0:
		retention = 0
	}
	maxInflight := cfg.MaxInflight
	switch {
	case maxInflight == 0:
		maxInflight = 64 * workers
	case maxInflight < 0:
		maxInflight = 0
	}
	retryAfter := cfg.RetryAfter
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	retrySecs := int((retryAfter + time.Second - 1) / time.Second)
	s := &Server{
		cache:       NewCache(budget),
		store:       cfg.Store,
		manager:     jobs.NewManager(cfg.JobWorkers, retention),
		sem:         make(chan struct{}, workers),
		mux:         http.NewServeMux(),
		maxBody:     maxBody,
		metrics:     metrics.NewRegistry(),
		maxInflight: maxInflight,
		retryAfter:  fmt.Sprintf("%d", retrySecs),
	}
	if cfg.MaxQueuedJobs > 0 {
		s.manager.SetQueueLimit(cfg.MaxQueuedJobs)
	}
	if s.store != nil {
		// Disk is the second cache level: warm-load persisted results
		// until the cache budget is full (anything beyond it stays
		// reachable through the fallback), and fall back to a disk read
		// when a key misses the LRU later.
		s.store.Range(func(key string, body []byte) bool {
			if !s.cache.Seed(key, body) {
				return false
			}
			s.seeded++
			return true
		})
		s.cache.fallback = func(key string) ([]byte, bool) {
			body, ok, err := s.store.Get(key)
			return body, ok && err == nil
		}
	}
	if cfg.Cluster != nil {
		node, err := cluster.New(*cfg.Cluster, s.clusterHooks())
		if err != nil {
			s.manager.Close(context.Background())
			return nil, err
		}
		s.node = node
	}
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /v1/registries", s.handleRegistries)
	s.route("GET /v1/stats", s.handleStats)
	// Every registered engine mounts the same generic handler; the
	// registration order is the mount order.
	for _, d := range engine.Engines() {
		s.route("POST "+d.Endpoint, s.handleEngine(d))
	}
	s.route("POST /v1/jobs", s.handleJobSubmit)
	s.route("GET /v1/jobs", s.handleJobList)
	s.route("GET /v1/jobs/{id}", s.handleJobStatus)
	s.route("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.route("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.route("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.route("GET /v1/cluster", s.handleClusterStatus)
	s.route("POST /v1/cluster/gossip", s.handleClusterGossip)
	s.route("POST /v1/cluster/replicate", s.handleClusterReplicate)
	s.route("POST /v1/cluster/steal", s.handleClusterSteal)
	if s.node != nil {
		s.node.Start()
	}
	return s, nil
}

// route registers a handler and records its pattern, so Routes stays the
// single source of truth the documentation drift test pins against. Every
// handler is wrapped with the endpoint's latency/status instrumentation,
// labeled by the pattern itself — sync, jobs, and cluster routes alike.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(s.metrics.Family(pattern), h))
	s.routes = append(s.routes, pattern)
}

// Routes lists every registered endpoint pattern ("METHOD /path") in
// registration order. The docs drift test compares this against the
// endpoint tables of DESIGN.md and API.md.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Close shuts the asynchronous machinery down: no new jobs, queued jobs
// cancelled, running jobs given until ctx expires before their contexts are
// cancelled (their checkpoints persist either way), then the store is
// closed. The HTTP handler itself is stateless — shut the http.Server down
// first, then Close.
func (s *Server) Close(ctx context.Context) error {
	if s.node != nil {
		// Stop the gossip/steal loops (and wait out in-flight replica
		// pushes) before draining jobs, so nothing new arrives mid-drain.
		s.node.Close()
	}
	err := s.manager.Close(ctx)
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Handler returns the root handler serving every endpoint.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		// Every response names its serving node; a relayed response
		// overwrites this with the owner's name in maybeForward.
		w.Header().Set(cluster.HeaderNode, s.nodeID())
		if s.node != nil {
			if from := r.Header.Get(cluster.HeaderFrom); from != "" {
				s.node.Observe(from)
			}
			if r.Header.Get(cluster.HeaderForwarded) != "" {
				s.forwardedIn.Add(1)
			}
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		s.mux.ServeHTTP(w, r)
	})
}

// Stats is the service-level counter snapshot behind GET /v1/stats.
type Stats struct {
	Requests   uint64         `json:"requests"`
	EngineRuns uint64         `json:"engine_runs"`
	Admission  AdmissionStats `json:"admission"`
	Cache      CacheStats     `json:"cache"`
	Jobs       jobs.Stats     `json:"jobs"`
	Store      *StoreStats    `json:"store,omitempty"`
	Node       *NodeStats     `json:"node"`
}

// StoreStats describes the persistent result store, when one is configured.
type StoreStats struct {
	// Entries and Bytes size the on-disk result log.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Seeded is how many stored bodies were replayed into the cache at
	// startup — the restart-survival half of the persistence contract.
	Seeded int `json:"seeded"`
}

// Stats snapshots the request, engine-run, cache, job, and store counters.
// EngineRuns counts actual engine executions: the gap between it and
// Requests is the work the cache, the single-flight deduplication, and the
// persistent store saved.
func (s *Server) Stats() Stats {
	retrySecs, _ := strconv.Atoi(s.retryAfter)
	st := Stats{
		Requests:   s.requests.Load(),
		EngineRuns: s.engineRuns.Load(),
		Admission: AdmissionStats{
			Inflight:          s.inflight.Load(),
			MaxInflight:       s.maxInflight,
			Shed:              s.shed.Load(),
			RetryAfterSeconds: retrySecs,
		},
		Cache: s.cache.Stats(),
		Jobs:  s.manager.Stats(),
	}
	if s.store != nil {
		st.Store = &StoreStats{Entries: s.store.Len(), Bytes: s.store.Bytes(), Seeded: s.seeded}
	}
	st.Node = s.nodeStats()
	return st
}

// acquire claims an engine slot, or gives up when the request dies first.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// writeEngineError maps an engine failure: a dead request context is the
// client's doing (or the server draining), everything else is a 500.
func writeEngineError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// decode strictly parses a request body: unknown fields and trailing data
// are errors, so typos surface as 400s instead of silently evaluating a
// default.
func decode(r *http.Request, into any) error {
	return decodeStrict(r.Body, into)
}

// readBody slurps a request body (already bounded by MaxBytesReader) so the
// engine handlers can both parse it and relay the identical bytes when the
// request forwards to its owner replica.
func readBody(r *http.Request) ([]byte, error) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("invalid request body: %w", err)
	}
	return raw, nil
}

// decodeStrict is decode over any reader — the same rules applied to the
// nested request object of a job submission and the cluster protocol
// bodies. Engine request decoding shares the rule through
// engine.DecodeStrict.
func decodeStrict(rd io.Reader, into any) error {
	return engine.DecodeStrict(rd, into)
}

// render runs one rendering function under an engine slot and persists the
// body it produces. It is the compute leg shared by every cached path —
// synchronous endpoints and jobs alike — so a body always reaches the store
// no matter which surface computed it.
func (s *Server) render(ctx context.Context, key string, render func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	s.engineRuns.Add(1)
	body, err := render(ctx)
	if err != nil {
		return nil, err
	}
	s.persist(key, body)
	return body, nil
}

// persist best-effort writes a rendered body to the store and retires the
// key's checkpoint: once the final body is durable there is no partial
// state left to protect, whichever surface — synchronous endpoint or job —
// computed it. Persistence is an optimization, never a correctness
// requirement — a failed write only costs a future recomputation — so
// errors do not fail the request.
func (s *Server) persist(key string, body []byte) {
	if s.node != nil {
		// Push the freshly computed body to the key's other owners. The
		// push lands through admitReplica, which never re-replicates, so
		// replication cannot cascade.
		s.node.ReplicateAsync(key, body)
	}
	if s.store == nil {
		return
	}
	// Clear the checkpoint only once the body actually is durable: if the
	// Put failed (disk full), the partial state is still the only thing a
	// post-crash resubmission can resume from.
	if err := s.store.Put(key, body); err == nil {
		s.store.ClearCheckpoint(key)
	}
}

// marshalBody renders a response value into its final wire form. The
// trailing newline is part of the body, so hits, joins, store reads, and
// job results all serve bytes identical to the original miss.
func marshalBody(resp any) ([]byte, error) {
	buf, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// computeBody is cache.Do's compute leg for a unary request: engine slot,
// compute, marshal, persist.
func (s *Server) computeBody(ctx context.Context, key string, compute func(ctx context.Context) (any, error)) ([]byte, error) {
	return s.render(ctx, key, func(ctx context.Context) ([]byte, error) {
		resp, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return marshalBody(resp)
	})
}

// handleEngine is the one synchronous handler every registered engine
// mounts: read, decode (strict parse + validation, 400 on failure), then
// either the cached unary path or — for a batch engine asked to stream —
// the NDJSON path. No engine-specific code lives here; the engine's
// Descriptor carries everything the serving layer needs.
func (s *Server) handleEngine(d *engine.Descriptor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw, err := readBody(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		inst, err := d.Decode(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if inst.Stream() {
			b := inst.NewBatch()
			// Materialization failures (server-side sampling) are server
			// bugs, not client errors: 500, before any stream bytes.
			if err := b.Prepare(); err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			// Streams always compute (they bypass the cache), so they
			// always need an admission token, held for the whole stream.
			if !s.admit() {
				s.writeShed(w)
				return
			}
			defer s.releaseAdmission()
			s.streamBatch(w, r, b)
			return
		}
		s.serveCached(w, r, raw, inst)
	}
}

// serveCached answers one unary engine request through the cache: compute
// runs at most once per content address across concurrent and repeated
// requests, under an engine slot. The cached body is fully rendered, so
// hits, joins, and store reads are byte-identical to fresh misses. In a
// cluster, a request whose content address this node does not own is
// relayed to an owner replica first (raw is the exact client body);
// determinism makes the relayed bytes identical to a local computation.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, raw []byte, inst *engine.Instance) {
	key, err := inst.Key()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Hot-key fast path: a body resident in the LRU serves without an
	// admission token, so overload sheds only work that would cost engine
	// time — a saturated server keeps answering its hot keys.
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Ulba-Cache", string(Hit))
		w.Write(body)
		return
	}
	if s.maybeForward(w, r, inst.Endpoint(), key, raw) {
		return
	}
	if !s.admit() {
		s.writeShed(w)
		return
	}
	defer s.releaseAdmission()
	ctx := r.Context()
	body, outcome, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		return s.computeBody(ctx, key, inst.Run)
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ulba-Cache", string(outcome))
	w.Write(body)
}

// registriesResponse lists the registered policy and scenario names — the
// exact vocabulary the request specs accept — plus the engine registry
// itself: the job-submission types, which are also the sync endpoints'
// path suffixes.
type registriesResponse struct {
	Planners  []string `json:"planners"`
	Triggers  []string `json:"triggers"`
	Workloads []string `json:"workloads"`
	Engines   []string `json:"engines"`
}

func (s *Server) handleRegistries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(registriesResponse{
		Planners:  ulba.PlannerNames(),
		Triggers:  ulba.TriggerNames(),
		Workloads: ulba.WorkloadNames(),
		Engines:   engine.TypeNames(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
