package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"testing"

	"ulba"
)

// TestExemplarMatrixGoldenAcrossDeployments drives a planner x trigger
// matrix over the exemplar-derived workloads (minife, amr, target) —
// including heterogeneous-speed variants — and requires one answer
// everywhere: the in-process result is invariant across worker counts
// (1, 4, GOMAXPROCS), and the served body is byte-identical whether the
// request hits a standalone server or any replica of a 3-node cluster.
func TestExemplarMatrixGoldenAcrossDeployments(t *testing.T) {
	workloads := []*ulba.WorkloadSpec{
		{Name: "minife", Seed: 7},
		{Name: "amr", Seed: 7, Levels: 5},
		{Name: "target", Seed: 7, Target: 2},
	}
	policies := []struct {
		name    string
		trigger *ulba.TriggerSpec
		planner *ulba.PlannerSpec
	}{
		{"trigger/degradation", &ulba.TriggerSpec{Name: "degradation"}, nil},
		{"trigger/wli", &ulba.TriggerSpec{Name: "wli", Threshold: 0.2}, nil},
		{"trigger/periodic", &ulba.TriggerSpec{Name: "periodic", Every: 8}, nil},
		{"planner/sigma+", nil, &ulba.PlannerSpec{Name: "sigma+"}},
		{"planner/periodic", nil, &ulba.PlannerSpec{Name: "periodic", Every: 10}},
	}
	speedVariants := []struct {
		name   string
		speeds []float64
	}{
		{"homogeneous", nil},
		{"heterogeneous", []float64{1, 2.5, 1, 4}},
	}

	_, standalone := newTestServer(t)
	nodes := newTestCluster(t, 3, 2, nil)

	for _, w := range workloads {
		for _, pol := range policies {
			for _, sv := range speedVariants {
				name := fmt.Sprintf("%s/%s/%s", w.Name, pol.name, sv.name)
				t.Run(name, func(t *testing.T) {
					req := runtimeRequest{
						P: 4, Iterations: 30,
						Workload: w, Trigger: pol.trigger, Planner: pol.planner,
						Speeds: sv.speeds,
					}
					want := inProcessRuntimeBody(t, req)

					body, err := json.Marshal(req)
					if err != nil {
						t.Fatal(err)
					}
					resp := post(t, standalone, "/v1/runtime", string(body))
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("standalone status = %d: %s", resp.StatusCode, readAll(t, resp))
					}
					if got := readAll(t, resp); !bytes.Equal(got, want) {
						t.Fatalf("standalone body differs from in-process result\ngot:  %s\nwant: %s", got, want)
					}
					for i, node := range nodes {
						resp := postURL(t, node.url, "/v1/runtime", string(body))
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("node %d status = %d: %s", i, resp.StatusCode, readAll(t, resp))
						}
						if got := readAll(t, resp); !bytes.Equal(got, want) {
							t.Fatalf("node %d body differs from in-process result", i)
						}
					}
				})
			}
		}
	}
}

// inProcessRuntimeBody computes the matrix cell through the public
// functional-options API at several worker counts, requires the results to
// be identical, and returns the response body the service must serve for
// it.
func inProcessRuntimeBody(t *testing.T, req runtimeRequest) []byte {
	t.Helper()
	var ref *ulba.RuntimeResult
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		opts := []ulba.Option{ulba.WithIterations(req.Iterations), ulba.WithWorkers(workers)}
		if len(req.Speeds) > 0 {
			opts = append(opts, ulba.WithSpeeds(req.Speeds))
		}
		w, err := req.Workload.Workload()
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, ulba.WithWorkload(w))
		if req.Trigger != nil {
			tr, err := req.Trigger.Trigger()
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, ulba.WithTrigger(tr))
		}
		if req.Planner != nil {
			pl, err := req.Planner.Planner()
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, ulba.WithPlanner(pl))
		}
		exp, err := ulba.NewRuntime(req.P, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = &res
		} else if !reflect.DeepEqual(*ref, res) {
			t.Fatalf("workers=%d result differs from workers=1", workers)
		}
	}
	want, err := json.Marshal(runtimeResponse{Result: *ref, Gain: ref.Gain(), Efficiency: ref.Efficiency()})
	if err != nil {
		t.Fatal(err)
	}
	return append(want, '\n')
}
