package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ulba/internal/cluster"
	"ulba/internal/engine"
	"ulba/internal/jobs"
	"ulba/internal/loadgen"
)

// soakMix is a scaled-down request blend for the in-process soak tests:
// the same three endpoint families as the default mix, small enough that a
// few hundred requests finish quickly even under -race.
func soakMix() []loadgen.MixEntry {
	return []loadgen.MixEntry{
		{Endpoint: "sweep", Weight: 6, Distinct: 8, Size: 20},
		{Endpoint: "runtime", Weight: 3, Distinct: 6, Size: 10},
		{Endpoint: "runtime-sweep", Weight: 1, Distinct: 2, Size: 2},
	}
}

// scrapeCounts fetches a server's /metrics page and returns its
// per-endpoint histogram counts.
func scrapeCounts(t *testing.T, baseURL string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	counts, err := loadgen.ScrapeEndpointCounts(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

// engineEndpoints are the metric labels of the engine routes, derived from
// the registry so the soak accounting covers every engine automatically.
var engineEndpoints = func() map[string]bool {
	m := make(map[string]bool, len(engine.Engines()))
	for _, d := range engine.Engines() {
		m["POST "+d.Endpoint] = true
	}
	return m
}()

// TestSoakStandalone is the tentpole soak against one in-process server:
// a closed-loop run with exact accounting. No request is lost, no body
// deviates, nothing is shed below the limit, the server's per-endpoint
// histogram counts equal the generator's observed responses, and
// single-flight keeps engine runs at exactly the distinct-body count.
func TestSoakStandalone(t *testing.T) {
	srv, ts := newTestServer(t)
	const n = 600
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:     []string{ts.URL},
		Arrival:     loadgen.ArrivalClosed,
		Clients:     32,
		MaxRequests: n,
		Seed:        42,
		Mix:         soakMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if rep.Offered != n || rep.Completed != n || rep.Dropped != 0 || rep.TransportErrors != 0 {
		t.Fatalf("accounting = %+v, want %d offered = completed", rep, n)
	}
	if rep.Shed != 0 {
		t.Fatalf("shed %d requests below the admission limit", rep.Shed)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d byte-identity mismatches", rep.Mismatches)
	}

	counts := scrapeCounts(t, ts.URL)
	if err := rep.VerifyServerCounts(counts); err != nil {
		t.Fatal(err)
	}
	var engineTotal uint64
	for label, c := range counts {
		if engineEndpoints[label] {
			engineTotal += c
		}
	}
	if engineTotal != n {
		t.Fatalf("engine-endpoint histograms sum to %d, want %d", engineTotal, n)
	}

	stats := srv.Stats()
	if stats.Admission.Shed != 0 {
		t.Errorf("server shed counter = %d, want 0", stats.Admission.Shed)
	}
	// 8 + 6 + 2 distinct bodies: single-flight and the cache make every
	// repeat free, so engine runs equal the distinct keys exactly.
	if want := uint64(16); stats.EngineRuns != want {
		t.Errorf("engine runs = %d, want %d (one per distinct body)", stats.EngineRuns, want)
	}
}

// TestSoakOverloadShedsExactly drives a deliberately starved server (one
// admission token, one engine slot) well past capacity: every request is
// still answered (2xx or 429, nothing lost, nothing mis-byte'd), the shed
// requests are exactly the 429s the generator saw, and the histograms
// still account for every response.
func TestSoakOverloadShedsExactly(t *testing.T) {
	srv, err := New(Config{MaxConcurrent: 1, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(context.Background()) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const n = 400
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:     []string{ts.URL},
		Arrival:     loadgen.ArrivalClosed,
		Clients:     16,
		MaxRequests: n,
		Seed:        7,
		Mix:         []loadgen.MixEntry{{Endpoint: "sweep", Weight: 1, Distinct: 64, Size: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n || rep.Offered != n {
		t.Fatalf("closed loop lost requests: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Fatal("16 clients against 1 admission token shed nothing")
	}
	if got := srv.Stats().Admission.Shed; got != rep.Shed {
		t.Fatalf("server shed counter = %d, generator saw %d 429s — shed requests must be exactly the 429s", got, rep.Shed)
	}
	if err := rep.VerifyServerCounts(scrapeCounts(t, ts.URL)); err != nil {
		t.Fatal(err)
	}
}

// TestSoakThousandClients pins the acceptance bar: a thousand concurrent
// clients against one server, every request answered and accounted for.
func TestSoakThousandClients(t *testing.T) {
	srv, ts := newTestServer(t)
	const n, clients = 2000, 1000
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	defer client.CloseIdleConnections()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:     []string{ts.URL},
		Arrival:     loadgen.ArrivalClosed,
		Client:      client,
		Clients:     clients,
		MaxRequests: n,
		Seed:        11,
		Mix:         []loadgen.MixEntry{{Endpoint: "sweep", Weight: 1, Distinct: 4, Size: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if rep.Clients != clients {
		t.Fatalf("ran %d clients, want %d", rep.Clients, clients)
	}
	if rep.Completed != n || rep.Mismatches != 0 {
		t.Fatalf("accounting = %+v, want %d completed, 0 mismatches", rep, n)
	}
	if got := srv.Stats().Admission.Shed; got != rep.Shed {
		t.Fatalf("server shed %d, generator saw %d 429s", got, rep.Shed)
	}
	if err := rep.VerifyServerCounts(scrapeCounts(t, ts.URL)); err != nil {
		t.Fatal(err)
	}
}

// TestSoakCluster soaks a 3-node cluster through every replica at once and
// then balances the cross-node books: the nodes' engine-endpoint histogram
// counts must sum to the generator's completions plus the successful
// forwards (a forwarded request lands in two histograms — the relay's and
// the owner's).
func TestSoakCluster(t *testing.T) {
	nodes := newTestCluster(t, 3, 2, nil)
	urls := make([]string, len(nodes))
	for i, node := range nodes {
		urls[i] = node.url
	}
	const n = 300
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:     urls,
		Arrival:     loadgen.ArrivalClosed,
		Clients:     24,
		MaxRequests: n,
		Seed:        5,
		Mix: []loadgen.MixEntry{
			{Endpoint: "sweep", Weight: 3, Distinct: 8, Size: 10},
			{Endpoint: "runtime", Weight: 1, Distinct: 4, Size: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n || rep.Mismatches != 0 {
		t.Fatalf("accounting = %+v, want %d completed, 0 mismatches", rep, n)
	}

	var histTotal, forwards uint64
	for i, node := range nodes {
		for label, c := range scrapeCounts(t, node.url) {
			if engineEndpoints[label] {
				histTotal += c
			}
		}
		st := node.srv.Stats()
		if st.Node.Cluster == nil {
			t.Fatalf("node %d has no cluster stats", i)
		}
		forwards += st.Node.Cluster.Forwards
		if st.Node.Cluster.ForwardFailures != 0 {
			t.Errorf("node %d had %d forward failures in a stable cluster", i, st.Node.Cluster.ForwardFailures)
		}
	}
	if histTotal != n+forwards {
		t.Fatalf("cluster histograms sum to %d, want %d completed + %d forwards = %d",
			histTotal, n, forwards, n+forwards)
	}
}

// TestSoakClusterChurn kills and restarts a replica while the other two
// keep taking traffic: every response stays byte-identical (the survivors
// absorb failed forwards by computing locally), the forward loop guard
// holds on the restarted node, and the churn leaks no goroutines.
func TestSoakClusterChurn(t *testing.T) {
	// Reserve the three listeners first, so every node knows the full peer
	// list, and keep node 2's address for the same-port restart.
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	mkConfig := func(i int) Config {
		return Config{Cluster: &cluster.Options{
			Self:           urls[i],
			Peers:          urls,
			Replication:    2,
			GossipInterval: 20 * time.Millisecond,
			StealInterval:  20 * time.Millisecond,
		}}
	}
	servers := make([]*Server, 3)
	https := make([]*httptest.Server, 3)
	start := func(i int, ln net.Listener) {
		srv, err := New(mkConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewUnstartedServer(srv.Handler())
		hs.Listener.Close()
		hs.Listener = ln
		hs.Start()
		servers[i], https[i] = srv, hs
	}
	for i := range lns {
		start(i, lns[i])
	}
	t.Cleanup(func() {
		for i := range servers {
			https[i].Close()
			servers[i].Close(context.Background())
		}
	})

	// Warm the cluster up, then take the goroutine baseline the leak check
	// compares against after the kill/restart cycle.
	warm := postURL(t, urls[0], "/v1/sweep", `{"sample":{"seed":9,"n":10},"alpha_grid":11}`)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d", warm.StatusCode)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 16, MaxIdleConnsPerHost: 16}}
	// Mesh the cluster before measuring the baseline: a short pre-soak
	// makes every node open its pooled connections to every peer (gossip,
	// forwards, replication), so the real soak below adds no steady-state
	// connection goroutines the baseline has not already seen.
	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets: urls[:2], Arrival: loadgen.ArrivalClosed, Client: client,
		Clients: 8, MaxRequests: 60, Seed: 99,
		Mix: []loadgen.MixEntry{{Endpoint: "sweep", Weight: 1, Distinct: 6, Size: 10}},
	}); err != nil {
		t.Fatal(err)
	}
	before := settledGoroutines()
	const n = 400
	done := make(chan struct{})
	var rep *loadgen.Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = loadgen.Run(context.Background(), loadgen.Config{
			// Traffic goes to the two survivors only; node 2 participates
			// through forwarding, dies, and comes back mid-run.
			Targets:     urls[:2],
			Arrival:     loadgen.ArrivalClosed,
			Client:      client,
			Clients:     16,
			MaxRequests: n,
			Seed:        13,
			Mix: []loadgen.MixEntry{
				{Endpoint: "sweep", Weight: 3, Distinct: 12, Size: 10},
				{Endpoint: "runtime", Weight: 1, Distinct: 6, Size: 8},
			},
		})
	}()

	// Kill node 2 mid-run — listener closed, loops down, like a kill -9 —
	// then restart it on the same address.
	time.Sleep(150 * time.Millisecond)
	addr := lns[2].Addr().String()
	https[2].Close()
	servers[2].Close(context.Background())
	time.Sleep(100 * time.Millisecond)
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	start(2, ln)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("soak through the churn was not clean: %v", err)
	}
	if rep.Completed != n || rep.Mismatches != 0 {
		t.Fatalf("accounting = %+v, want %d completed, 0 mismatches", rep, n)
	}

	// The forward loop guard must hold on the restarted node: a request
	// already marked forwarded is served locally, never relayed again.
	req, err := http.NewRequest(http.MethodPost, urls[2]+"/v1/experiment", strings.NewReader(`{"p":6,"alpha":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "n-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("restarted node unreachable: %v", err)
	}
	resp.Body.Close()
	if got, want := resp.Header.Get(cluster.HeaderNode), servers[2].nodeID(); got != want {
		t.Errorf("restarted node served as %q, want itself (%q)", got, want)
	}

	// Byte identity across the churned cluster: every node (including the
	// restarted one) serves the same bytes for the warmup request.
	want := readAll(t, postURL(t, urls[0], "/v1/sweep", `{"sample":{"seed":9,"n":10},"alpha_grid":11}`))
	for i := 1; i < 3; i++ {
		got := readAll(t, postURL(t, urls[i], "/v1/sweep", `{"sample":{"seed":9,"n":10},"alpha_grid":11}`))
		if string(got) != string(want) {
			t.Errorf("node %d serves different bytes after the churn", i)
		}
	}

	// No goroutine leak: after idle connections drain, the count returns
	// to the pre-churn baseline (the restarted node's loops replace the
	// dead node's). The slack absorbs scheduler and net poller stragglers.
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= baseline %d + 25 — the churn leaked", runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(50 * time.Millisecond)
	}
}

// settledGoroutines samples runtime.NumGoroutine until the count stops
// falling (five stable samples) and returns the settled value — the leak
// check's way of not counting request goroutines still draining.
func settledGoroutines() int {
	last, stable := runtime.NumGoroutine(), 0
	deadline := time.Now().Add(5 * time.Second)
	for stable < 5 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n < last {
			last, stable = n, 0
		} else {
			stable++
		}
	}
	return last
}

// retryAfterRe is the RFC 9110 delay-seconds form the header must take.
var retryAfterRe = regexp.MustCompile(`^[0-9]+$`)

// TestAdmissionConfig pins the Config resolution rules for the admission
// knobs: defaults, rounding, and the disable conventions.
func TestAdmissionConfig(t *testing.T) {
	cases := []struct {
		name            string
		cfg             Config
		wantMaxInflight int
		wantRetrySecs   int
	}{
		{"defaults", Config{MaxConcurrent: 2}, 128, 1},
		{"explicit limit", Config{MaxInflight: 5, RetryAfter: 3 * time.Second}, 5, 3},
		{"sub-second rounds up", Config{RetryAfter: 1500 * time.Millisecond}, 64 * runtime.GOMAXPROCS(0), 2},
		{"negative disables", Config{MaxInflight: -1}, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			srv, err := New(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close(context.Background())
			st := srv.Stats().Admission
			if st.MaxInflight != c.wantMaxInflight {
				t.Errorf("max inflight = %d, want %d", st.MaxInflight, c.wantMaxInflight)
			}
			if st.RetryAfterSeconds != c.wantRetrySecs {
				t.Errorf("retry-after = %ds, want %ds", st.RetryAfterSeconds, c.wantRetrySecs)
			}
			if !retryAfterRe.MatchString(srv.retryAfter) {
				t.Errorf("Retry-After value %q is not delay-seconds", srv.retryAfter)
			}
		})
	}
}

// TestAdmissionSheds drives the limiter through its boundary with the
// saturation held stable by hand: the engine semaphore is filled from the
// test, so admitted requests block under it while their admission tokens
// stay held. At inflight == limit the next uncached request is shed with
// 429 + Retry-After; a cache hit still passes; no shed request ever
// reaches engine code; and the shed counter equals the 429s served.
func TestAdmissionSheds(t *testing.T) {
	srv, err := New(Config{MaxConcurrent: 1, MaxInflight: 2, RetryAfter: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(context.Background()) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Warm one hot key while the server is idle.
	const hotBody = `{"sample":{"seed":21,"n":10},"alpha_grid":11}`
	if resp := post(t, ts, "/v1/sweep", hotBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d", resp.StatusCode)
	}

	// Fill the only engine slot from the test, then admit two uncached
	// requests: both hold admission tokens, blocked waiting for the slot.
	srv.sem <- struct{}{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"sample":{"seed":%d,"n":10},"alpha_grid":11}`, 100+i)
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("blocked request %d: %v", i, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("blocked request %d finished %d, want 200", i, resp.StatusCode)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.inflight.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, never reached the limit 2", srv.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}

	engineRuns := srv.Stats().EngineRuns // the warmup; the blocked pair has not entered the engine

	// Boundary: inflight == limit, so the next uncached request is shed.
	cases := []struct {
		name, path, body string
	}{
		{"sweep over limit", "/v1/sweep", `{"sample":{"seed":200,"n":10},"alpha_grid":11}`},
		{"runtime over limit", "/v1/runtime", `{"p":4,"iterations":10,"workload":{"name":"linear","seed":1}}`},
		{"stream over limit", "/v1/sweep", `{"sample":{"seed":201,"n":10},"alpha_grid":11,"stream":true}`},
	}
	var sheds uint64
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := post(t, ts, c.path, c.body)
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status = %d, want 429", resp.StatusCode)
			}
			ra := resp.Header.Get("Retry-After")
			if !retryAfterRe.MatchString(ra) {
				t.Fatalf("Retry-After = %q, want delay-seconds", ra)
			}
			if ra != "3" {
				t.Fatalf("Retry-After = %q, want %q (the configured 3s)", ra, "3")
			}
			got := decodeBody[errorResponse](t, resp)
			if !strings.Contains(got.Error, "capacity") {
				t.Errorf("shed error %q does not name the cause", got.Error)
			}
			sheds++
		})
	}

	// A hot key still serves at the limit: the cache-hit fast path takes no
	// admission token, so overload never sheds work the server can answer
	// from memory.
	t.Run("cache hit bypasses the limiter", func(t *testing.T) {
		resp := post(t, ts, "/v1/sweep", hotBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cached request shed at the limit: status = %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Ulba-Cache"); got != "hit" {
			t.Errorf("X-Ulba-Cache = %q, want hit", got)
		}
	})

	// Shed requests never reached engine code, and the shed counter counts
	// exactly the 429s served.
	if got := srv.Stats().EngineRuns; got != engineRuns {
		t.Errorf("engine runs moved %d -> %d across shed requests", engineRuns, got)
	}
	if got := srv.Stats().Admission.Shed; got != sheds {
		t.Errorf("shed counter = %d, want %d (one per 429)", got, sheds)
	}

	// Release the engine; the two admitted requests complete and return
	// their tokens.
	<-srv.sem
	wg.Wait()
	if got := srv.inflight.Load(); got != 0 {
		t.Errorf("inflight = %d after drain, want 0", got)
	}
}

// TestJobsQueueShed pins the asynchronous half of admission control: a full
// job queue sheds cold submissions with 429 + Retry-After, while a
// submission whose result is already cached bypasses the limit entirely.
func TestJobsQueueShed(t *testing.T) {
	srv, err := New(Config{JobWorkers: 1, MaxQueuedJobs: 1, RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(context.Background()) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Occupy the only worker so submissions stay queued.
	release := make(chan struct{})
	running := make(chan struct{})
	if _, err := srv.manager.Submit("experiment", "block", 1, jobSubmission{}, func(ctx context.Context, j *jobs.Job) error {
		close(running)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	defer releaseOnce(release)
	<-running

	// First submission fills the queue (limit 1); the second is shed.
	first := post(t, ts, "/v1/jobs", `{"type":"sweep","request":{"sample":{"seed":300,"n":5},"alpha_grid":11}}`)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", first.StatusCode)
	}
	engineRuns := srv.Stats().EngineRuns
	second := post(t, ts, "/v1/jobs", `{"type":"sweep","request":{"sample":{"seed":301,"n":5},"alpha_grid":11}}`)
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status = %d, want 429", second.StatusCode)
	}
	if ra := second.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q", ra, "2")
	}
	if got := srv.Stats().EngineRuns; got != engineRuns {
		t.Errorf("shed submission reached the engine (runs %d -> %d)", engineRuns, got)
	}

	// A submission whose result is already cached jumps the full queue: it
	// costs a cache read, not engine time, so shedding it would be waste.
	const cachedBody = `{"sample":{"seed":302,"n":5},"alpha_grid":11}`
	sync := post(t, ts, "/v1/sweep", cachedBody)
	if sync.StatusCode != http.StatusOK {
		t.Fatalf("sync compute status = %d", sync.StatusCode)
	}
	want := readAll(t, sync)
	hot := post(t, ts, "/v1/jobs", `{"type":"sweep","request":`+cachedBody+`}`)
	if hot.StatusCode != http.StatusAccepted {
		t.Fatalf("cached submit status = %d, want 202 past the full queue", hot.StatusCode)
	}
	hotStatus := decodeBody[jobs.Status](t, hot)

	releaseOnce(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + hotStatus.ID)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[jobs.Status](t, resp)
		resp.Body.Close()
		if st.State == jobs.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("hot job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot job still %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := http.Get(ts.URL + "/v1/jobs/" + hotStatus.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if got := readAll(t, res); string(got) != string(want) {
		t.Fatal("hot job result differs from the synchronous bytes")
	}

	stats := srv.Stats()
	if stats.Jobs.Shed != 1 {
		t.Errorf("jobs shed = %d, want 1", stats.Jobs.Shed)
	}
	if stats.Jobs.QueueLimit != 1 {
		t.Errorf("jobs queue limit = %d, want 1", stats.Jobs.QueueLimit)
	}
	if stats.Admission.Shed != 1 {
		t.Errorf("admission shed = %d, want 1 (the queue shed is a 429 too)", stats.Admission.Shed)
	}
}
