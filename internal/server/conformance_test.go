package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ulba/internal/engine"
	"ulba/internal/jobs"
)

// The cross-engine conformance harness: one table-driven suite that holds
// every registered engine to the same behavioral contract, so a new engine
// is conformant the moment it registers (and the suite fails loudly if an
// engine registers without a fixture). It replaces the per-engine
// copy-pasted families these properties used to live in — most directly the
// old TestJobBitIdenticalToSync table.
//
// Per engine:
//
//   - cache-key canonicalization: execution knobs (workers, stream) do not
//     change the content address, and the address is stable across a
//     decode -> canonical -> re-encode round trip;
//   - sync-vs-job byte identity: the async result equals the synchronous
//     response bit for bit, computed on separate servers so neither path
//     can borrow the other's cache;
//   - NDJSON framing (batch engines): one line per unit, indices covering
//     the range exactly, bypass header set, terminal summary line last;
//   - checkpoint/resume bit identity (batch engines): a job interrupted
//     mid-run resumes from its checkpoint on a fresh server and still
//     produces the synchronous bytes;
//   - context cancellation: a client abandoning a request leaves the
//     server healthy — the engine slot is released and the next request
//     succeeds.

// conformanceFixture is one engine's test inputs. request must be small
// enough to run under -race; variant must canonicalize identically to
// request (only execution knobs may differ).
type conformanceFixture struct {
	request string
	variant string
	// short skips the compute-heavy legs under -short (the fixture still
	// runs the key-stability leg).
	short bool
}

var conformanceFixtures = map[string]conformanceFixture{
	"experiment": {
		request: `{"p":4,"iterations":25,"method":"ulba","seed":3,"compare":true}`,
		variant: `{"seed":3,"compare":true,"method":"ulba","iterations":25,"p":4,"workers":3}`,
		short:   true, // the erosion run dominates -short budgets
	},
	"sweep": {
		request: `{"sample":{"seed":21,"n":12},"alpha_grid":9}`,
		variant: `{"alpha_grid":9,"sample":{"n":12,"seed":21},"workers":2,"stream":false}`,
	},
	"runtime": {
		request: `{"p":4,"iterations":30,"workload":{"name":"bursty","seed":2},"trigger":{"name":"menon"}}`,
		variant: `{"trigger":{"name":"menon"},"workload":{"seed":2,"name":"bursty"},"iterations":30,"p":4,"workers":5}`,
	},
	"runtime-sweep": {
		request: `{"sample":{"seed":6,"n":3}}`,
		variant: `{"workers":2,"sample":{"seed":6,"n":3},"stream":false}`,
	},
	"assess": {
		request: `{"criteria":[{"trigger":{"name":"degradation"}},{"trigger":{"name":"never"}}],"sample":{"seed":5,"n":2}}`,
		variant: `{"sample":{"n":2,"seed":5},"criteria":[{"trigger":{"name":"degradation"}},{"trigger":{"name":"never"}}],"workers":4}`,
	},
}

// TestConformanceFixturesCoverRegistry fails the build the moment an engine
// registers without joining the conformance table (or a fixture outlives
// its engine).
func TestConformanceFixturesCoverRegistry(t *testing.T) {
	for _, typ := range engine.TypeNames() {
		if _, ok := conformanceFixtures[typ]; !ok {
			t.Errorf("registered engine %q has no conformance fixture", typ)
		}
	}
	for typ := range conformanceFixtures {
		if _, ok := engine.ByType(typ); !ok {
			t.Errorf("conformance fixture %q names no registered engine", typ)
		}
	}
}

// decodeKey decodes raw through the engine registry and returns the
// instance's content address.
func decodeKey(t *testing.T, typ string, raw string) (string, *engine.Instance) {
	t.Helper()
	d, ok := engine.ByType(typ)
	if !ok {
		t.Fatalf("engine %q is not registered", typ)
	}
	inst, err := d.Decode([]byte(raw))
	if err != nil {
		t.Fatalf("decode %q: %v", typ, err)
	}
	key, err := inst.Key()
	if err != nil {
		t.Fatalf("key %q: %v", typ, err)
	}
	return key, inst
}

// TestConformanceCacheKey pins canonicalization for every engine: the
// content address ignores execution knobs and field order, and survives a
// canonical-form re-encode.
func TestConformanceCacheKey(t *testing.T) {
	for typ, fx := range conformanceFixtures {
		t.Run(typ, func(t *testing.T) {
			key, inst := decodeKey(t, typ, fx.request)
			variantKey, _ := decodeKey(t, typ, fx.variant)
			if key != variantKey {
				t.Errorf("variant key %s != request key %s: execution knobs or field order leaked into the content address", variantKey, key)
			}
			canon, err := json.Marshal(inst.Canonical())
			if err != nil {
				t.Fatal(err)
			}
			roundKey, _ := decodeKey(t, typ, string(canon))
			if key != roundKey {
				t.Errorf("canonical round-trip key %s != request key %s", roundKey, key)
			}
			want, err := engine.Key(inst.Endpoint(), inst.Canonical())
			if err != nil {
				t.Fatal(err)
			}
			if key != want {
				t.Errorf("instance key %s != engine.Key %s", key, want)
			}
		})
	}
}

// TestConformanceSyncJobByteIdentity pins the headline determinism
// contract for every engine: the asynchronous result bytes equal the
// synchronous response for the same request.
func TestConformanceSyncJobByteIdentity(t *testing.T) {
	for _, typ := range engine.TypeNames() {
		fx := conformanceFixtures[typ]
		t.Run(typ, func(t *testing.T) {
			if fx.short && testing.Short() {
				t.Skip("compute-heavy fixture in -short mode")
			}
			d, _ := engine.ByType(typ)
			_, syncTS, _ := newStoreServer(t, "", Config{})
			syncResp := post(t, syncTS, d.Endpoint, fx.request)
			if syncResp.StatusCode != http.StatusOK {
				t.Fatalf("sync status = %d: %s", syncResp.StatusCode, readAll(t, syncResp))
			}
			want := readAll(t, syncResp)

			_, jobTS, _ := newStoreServer(t, t.TempDir(), Config{})
			st := submitJob(t, jobTS, typ, fx.request)
			if st.Type != typ || st.Key == "" {
				t.Fatalf("accepted status = %+v", st)
			}
			done := awaitJob(t, jobTS, st.ID)
			if done.State != jobs.StateDone {
				t.Fatalf("job = %+v", done)
			}
			if done.Progress.Completed != done.Progress.Total || done.Progress.Total == 0 {
				t.Fatalf("progress = %+v", done.Progress)
			}
			resp, got := jobResult(t, jobTS, st.ID)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result status = %d", resp.StatusCode)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("job result (%d bytes) is not bit-identical to the synchronous response (%d bytes)", len(got), len(want))
			}
		})
	}
}

// withStream injects "stream": true into a JSON request body.
func withStream(t *testing.T, request string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(request), &m); err != nil {
		t.Fatal(err)
	}
	m["stream"] = true
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestConformanceNDJSONFraming pins the streaming contract for every batch
// engine: bypass header, one line per unit with indices covering the range
// exactly, and a terminal summary line with no error.
func TestConformanceNDJSONFraming(t *testing.T) {
	for _, typ := range engine.TypeNames() {
		fx := conformanceFixtures[typ]
		t.Run(typ, func(t *testing.T) {
			_, inst := decodeKey(t, typ, fx.request)
			if inst.NewBatch() == nil {
				t.Skipf("engine %q is unary: no streaming surface", typ)
			}
			d, _ := engine.ByType(typ)
			_, ts := newTestServer(t)
			resp := post(t, ts, d.Endpoint, withStream(t, fx.request))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("stream status = %d: %s", resp.StatusCode, readAll(t, resp))
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
			}
			if cc := resp.Header.Get("X-Ulba-Cache"); cc != "bypass" {
				t.Errorf("X-Ulba-Cache = %q, want bypass", cc)
			}
			n := inst.Units()
			seen := make(map[int]bool, n)
			var lines []map[string]json.RawMessage
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var m map[string]json.RawMessage
				if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
					t.Fatalf("unparseable NDJSON line %q: %v", sc.Text(), err)
				}
				lines = append(lines, m)
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if len(lines) != n+1 {
				t.Fatalf("stream delivered %d lines, want %d units + 1 tail", len(lines), n)
			}
			for _, m := range lines[:n] {
				if _, bad := m["error"]; bad {
					t.Fatalf("unit line carries an error: %v", m)
				}
				var idx int
				if err := json.Unmarshal(m["index"], &idx); err != nil {
					t.Fatalf("unit line has no index: %v", m)
				}
				if idx < 0 || idx >= n || seen[idx] {
					t.Fatalf("unit index %d out of range or duplicated (n = %d)", idx, n)
				}
				seen[idx] = true
			}
			tail := lines[n]
			if _, bad := tail["error"]; bad {
				t.Fatalf("terminal line carries an error: %v", tail)
			}
			if _, ok := tail["index"]; ok {
				t.Fatalf("terminal line looks like a unit line: %v", tail)
			}
			if len(tail) == 0 {
				t.Fatal("terminal line is empty: no summary")
			}
		})
	}
}

// TestConformanceCheckpointResume pins checkpoint/resume bit identity for
// every batch engine: a job parked mid-run and cancelled resumes its
// remaining units from the checkpoint on a fresh server over the same
// store, and the final bytes equal the uninterrupted synchronous response.
func TestConformanceCheckpointResume(t *testing.T) {
	for _, typ := range engine.TypeNames() {
		fx := conformanceFixtures[typ]
		t.Run(typ, func(t *testing.T) {
			_, inst := decodeKey(t, typ, fx.request)
			if inst.NewBatch() == nil {
				t.Skipf("engine %q is unary: no checkpoint surface", typ)
			}
			d, _ := engine.ByType(typ)
			n := inst.Units()
			holdAfter := n / 2
			if holdAfter < 1 {
				holdAfter = 1
			}

			_, refTS, _ := newStoreServer(t, "", Config{})
			refResp := post(t, refTS, d.Endpoint, fx.request)
			if refResp.StatusCode != http.StatusOK {
				t.Fatalf("reference status = %d", refResp.StatusCode)
			}
			want := readAll(t, refResp)

			// Server A: park the job after holdAfter checkpointed units (the
			// hook blocks until the job's context is cancelled), then cancel
			// and shut down.
			dir := t.TempDir()
			var units atomic.Int32
			hook := func(ctx context.Context) {
				if units.Add(1) >= int32(holdAfter) {
					<-ctx.Done()
				}
			}
			jobUnitHook.Store(&hook)
			defer jobUnitHook.Store(nil)
			_, ts1, shutdown1 := newStoreServer(t, dir, Config{})
			st := submitJob(t, ts1, typ, fx.request)
			deadline := time.Now().Add(60 * time.Second)
			for {
				resp, err := http.Get(ts1.URL + "/v1/jobs/" + st.ID)
				if err != nil {
					t.Fatal(err)
				}
				cur := decodeBody[jobs.Status](t, resp)
				resp.Body.Close()
				if cur.Progress.Completed >= holdAfter && cur.State == jobs.StateRunning {
					break
				}
				if cur.State.Terminal() {
					t.Fatalf("job finished before the interrupt: %+v", cur)
				}
				if time.Now().After(deadline) {
					t.Fatal("no progress before deadline")
				}
				time.Sleep(5 * time.Millisecond)
			}
			req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/jobs/"+st.ID, nil)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			dresp.Body.Close()
			awaitJob(t, ts1, st.ID)
			shutdown1()
			jobUnitHook.Store(nil)

			// Server B: the resubmission resumes from the checkpoint and the
			// final bytes match.
			_, ts2, _ := newStoreServer(t, dir, Config{})
			st2 := submitJob(t, ts2, typ, fx.request)
			done := awaitJob(t, ts2, st2.ID)
			if done.State != jobs.StateDone {
				t.Fatalf("resumed job = %+v", done)
			}
			if done.Progress.Resumed == 0 {
				t.Fatal("resumed job recomputed everything: progress.resumed = 0")
			}
			if done.Progress.Completed != n {
				t.Fatalf("resumed job completed %d of %d", done.Progress.Completed, n)
			}
			resp, got := jobResult(t, ts2, st2.ID)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result status = %d", resp.StatusCode)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("resumed result is not bit-identical to the uninterrupted response")
			}
		})
	}
}

// TestConformanceCancellation pins that an abandoned request leaves the
// server healthy for every engine: after the client walks away mid-stream
// (batch) or mid-compute (unary), the engine slot is released and a fresh
// request on the same server succeeds.
func TestConformanceCancellation(t *testing.T) {
	for _, typ := range engine.TypeNames() {
		fx := conformanceFixtures[typ]
		t.Run(typ, func(t *testing.T) {
			if fx.short && testing.Short() {
				t.Skip("compute-heavy fixture in -short mode")
			}
			d, _ := engine.ByType(typ)
			_, inst := decodeKey(t, typ, fx.request)
			// One engine slot: a leaked slot would deadlock the follow-up.
			srv, err := New(Config{MaxConcurrent: 1})
			if err != nil {
				t.Fatal(err)
			}
			ts := newHTTPServer(t, srv)

			body := fx.request
			if inst.NewBatch() != nil {
				body = withStream(t, body)
			}
			ctx, cancel := context.WithCancel(context.Background())
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+d.Endpoint, strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				// Read at most one line, then abandon the stream.
				br := bufio.NewReader(resp.Body)
				br.ReadString('\n')
				cancel()
				resp.Body.Close()
			} else {
				cancel()
			}

			// The follow-up must acquire the single engine slot: a healthy
			// server released it on cancellation.
			follow := post(t, ts, d.Endpoint, fx.request)
			if follow.StatusCode != http.StatusOK {
				t.Fatalf("follow-up status = %d: %s", follow.StatusCode, readAll(t, follow))
			}
		})
	}
}

// newHTTPServer wraps an already-built Server in an httptest front end.
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})
	return ts
}
