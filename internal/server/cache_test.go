package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func mustDo(t *testing.T, c *Cache, key, val string) Outcome {
	t.Helper()
	body, outcome, err := c.Do(context.Background(), key, func() ([]byte, error) {
		return []byte(val), nil
	})
	if err != nil {
		t.Fatalf("Do(%q): %v", key, err)
	}
	if outcome != Hit && string(body) != val {
		t.Fatalf("Do(%q) = %q, want %q", key, body, val)
	}
	return outcome
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1 << 20)
	if got := mustDo(t, c, "a", "va"); got != Miss {
		t.Fatalf("first Do = %v, want miss", got)
	}
	if got := mustDo(t, c, "a", "ignored"); got != Hit {
		t.Fatalf("second Do = %v, want hit", got)
	}
	body, _, _ := c.Do(context.Background(), "a", func() ([]byte, error) {
		t.Fatal("hit must not recompute")
		return nil, nil
	})
	if string(body) != "va" {
		t.Fatalf("hit body = %q, want the original", body)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 1 entry", s)
	}
}

// TestCacheEviction pins the LRU byte budget: inserting past the budget
// evicts the least-recently-used entries, and touching an entry protects it.
func TestCacheEviction(t *testing.T) {
	entry := entrySize("k0", bytes.Repeat([]byte("x"), 100))
	c := NewCache(3 * entry) // room for exactly three entries
	val := func(i int) string { return string(bytes.Repeat([]byte{byte('a' + i)}, 100)) }
	for i := 0; i < 3; i++ {
		mustDo(t, c, fmt.Sprintf("k%d", i), val(i))
	}
	mustDo(t, c, "k0", val(0)) // touch k0: k1 becomes the LRU victim
	mustDo(t, c, "k3", val(3)) // over budget: evicts k1

	if got := mustDo(t, c, "k1", val(1)); got != Miss {
		t.Errorf("evicted k1 should miss, got %v", got)
	}
	if got := mustDo(t, c, "k0", val(0)); got != Hit {
		t.Errorf("recently used k0 should hit, got %v", got)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Errorf("stats report no evictions: %+v", s)
	}
	if s := c.Stats(); s.Bytes > s.Budget {
		t.Errorf("cache over budget: %d > %d", s.Bytes, s.Budget)
	}
}

// TestCacheOversizedBody checks that a body larger than the whole budget is
// served but never stored.
func TestCacheOversizedBody(t *testing.T) {
	c := NewCache(8)
	mustDo(t, c, "big", "a body much larger than eight bytes")
	if got := mustDo(t, c, "big", "a body much larger than eight bytes"); got != Miss {
		t.Errorf("oversized entry should recompute, got %v", got)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("oversized entry was stored: %+v", s)
	}
}

// TestCacheZeroBudget: storage disabled, single-flight still dedups.
func TestCacheZeroBudget(t *testing.T) {
	c := NewCache(0)
	var computes atomic.Int32
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(context.Background(), "k", func() ([]byte, error) {
				<-gate
				computes.Add(1)
				return []byte("v"), nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got < 1 {
		t.Fatalf("computes = %d", got)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("zero-budget cache stored an entry: %+v", s)
	}
	// Sequential repeats recompute every time: nothing is stored.
	before := computes.Load()
	c.Do(context.Background(), "k", func() ([]byte, error) {
		computes.Add(1)
		return []byte("v"), nil
	})
	if computes.Load() != before+1 {
		t.Error("zero-budget cache served a stored body")
	}
}

// TestCacheLeaderErrorNotShared: a failed computation is not cached and a
// follower retries instead of inheriting the leader's error.
func TestCacheLeaderErrorNotShared(t *testing.T) {
	c := NewCache(1 << 10)
	leaderIn := make(chan struct{})
	leaderFail := make(chan struct{})

	var leaderErr error
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, leaderErr = c.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-leaderFail
			return nil, errors.New("leader died")
		})
	}()
	<-leaderIn // the leader now owns the flight

	var followerBody []byte
	var followerErr error
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		followerBody, _, followerErr = c.Do(context.Background(), "k", func() ([]byte, error) {
			return []byte("recovered"), nil
		})
	}()
	// Fail the leader only once the follower is blocked on its flight, so
	// the retry path (not a plain miss) is what the test exercises.
	for c.Stats().Joins == 0 {
		runtime.Gosched()
	}
	close(leaderFail)
	<-leaderDone
	<-followerDone

	if leaderErr == nil {
		t.Fatal("leader error lost")
	}
	if followerErr != nil {
		t.Fatalf("follower inherited the leader's error: %v", followerErr)
	}
	if string(followerBody) != "recovered" {
		t.Fatalf("follower body = %q, want recovered", followerBody)
	}
	if got := mustDo(t, c, "k", "recovered"); got != Hit {
		t.Errorf("retry result was not cached, got %v", got)
	}
}

// TestCacheWaiterCancellation: a follower whose context dies while waiting
// reports its own context error without disturbing the leader.
func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache(1 << 10)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return []byte("v"), nil
		})
	}()

	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() ([]byte, error) {
		t.Error("cancelled follower must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	<-leaderDone
	if got := mustDo(t, c, "k", "v"); got != Hit {
		t.Errorf("leader result missing after follower cancellation, got %v", got)
	}
}
