package server

import "ulba/internal/engine"

// The request/response wire types moved to internal/engine with the generic
// core; the long-standing server tests predate the move and refer to them
// by their old unexported names. Aliasing here keeps those tests verbatim —
// itself evidence that the refactor changed no wire shape.
type (
	runtimeRequest       = engine.RuntimeRequest
	experimentResponse   = engine.ExperimentResponse
	sweepResponse        = engine.SweepResponse
	runtimeResponse      = engine.RuntimeResponse
	runtimeSweepResponse = engine.RuntimeSweepResponse
	sweepStreamTail      = engine.SweepStreamTail
)
