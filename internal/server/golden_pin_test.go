package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// The refactor pin: testdata/engine_golden holds, for every legacy request
// type, the exact served body and content address captured before the
// engines moved behind the generic engine core. The fixtures were generated
// once from the pre-refactor handlers (ULBA_WRITE_GOLDEN=1 regenerates them,
// which is only legitimate when the serving contract itself changes
// deliberately) and the test asserts the current path reproduces them byte
// for byte — first a guard over the refactor, afterwards a regression pin.

// goldenPinCases are the pinned requests: one per legacy engine type, small
// enough to run in every CI leg while covering the spec knobs (sampling,
// explicit scenarios, planner/trigger/workload configuration, heterogeneous
// speeds).
var goldenPinCases = []struct {
	name     string
	typ      string
	endpoint string
	request  string
}{
	{
		name:     "experiment",
		typ:      "experiment",
		endpoint: "/v1/experiment",
		request:  `{"p":4,"iterations":12,"method":"ulba","seed":3}`,
	},
	{
		name:     "sweep",
		typ:      "sweep",
		endpoint: "/v1/sweep",
		request:  `{"sample":{"seed":7,"n":25},"alpha_grid":17}`,
	},
	{
		name:     "runtime",
		typ:      "runtime",
		endpoint: "/v1/runtime",
		request:  `{"p":4,"iterations":40,"workload":{"name":"amr","seed":7},"trigger":{"name":"wli","threshold":0.2},"speeds":[1,2.5,1,4]}`,
	},
	{
		name:     "runtime-sweep",
		typ:      "runtime-sweep",
		endpoint: "/v1/runtime-sweep",
		request:  `{"scenarios":[{"p":4,"iterations":30,"workload":{"name":"target","seed":9,"target":1.5},"planner":{"name":"periodic","every":5}}],"sample":{"seed":5,"n":3}}`,
	},
}

// goldenPinRecord is the manifest entry pinning one request: its content
// address and the SHA-256 of the served body (the body bytes themselves live
// in the sibling .body file).
type goldenPinRecord struct {
	Endpoint string          `json:"endpoint"`
	Type     string          `json:"type"`
	Request  json.RawMessage `json:"request"`
	Key      string          `json:"key"`
	BodySHA  string          `json:"body_sha256"`
}

// servePinned computes one pinned case on a fresh memory-only server and
// returns the served body plus the content address the server filed it
// under. The key is read from the job-status surface, so the probe works
// identically before and after the engine-core refactor.
func servePinned(t *testing.T, typ, endpoint, request string) (body []byte, key string) {
	t.Helper()
	_, ts := newTestServer(t)
	resp := post(t, ts, endpoint, request)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %d: %s", endpoint, resp.StatusCode, readAll(t, resp))
	}
	body = readAll(t, resp)
	// The result is cached now, so the job finishes as a hit; its accepted
	// status carries the canonical content address.
	st := submitJob(t, ts, typ, request)
	awaitJob(t, ts, st.ID)
	return body, st.Key
}

func TestEngineGoldenPin(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs in -short mode")
	}
	write := os.Getenv("ULBA_WRITE_GOLDEN") != ""
	dir := filepath.Join("testdata", "engine_golden")
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range goldenPinCases {
		t.Run(c.name, func(t *testing.T) {
			manifestPath := filepath.Join(dir, c.name+".json")
			bodyPath := filepath.Join(dir, c.name+".body")
			body, key := servePinned(t, c.typ, c.endpoint, c.request)
			sha := fmt.Sprintf("%x", sha256.Sum256(body))
			if write {
				rec := goldenPinRecord{
					Endpoint: c.endpoint,
					Type:     c.typ,
					Request:  json.RawMessage(c.request),
					Key:      key,
					BodySHA:  sha,
				}
				buf, err := json.MarshalIndent(rec, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(manifestPath, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(bodyPath, body, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d body bytes, key %s)", manifestPath, len(body), key)
				return
			}
			raw, err := os.ReadFile(manifestPath)
			if err != nil {
				t.Fatalf("missing golden fixture (generate with ULBA_WRITE_GOLDEN=1): %v", err)
			}
			var rec goldenPinRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				t.Fatal(err)
			}
			if rec.Key != key {
				t.Errorf("cache key drifted: served under %s, pinned %s", key, rec.Key)
			}
			if sha != rec.BodySHA {
				t.Errorf("body SHA-256 drifted: served %s, pinned %s", sha, rec.BodySHA)
			}
			want, err := os.ReadFile(bodyPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("served body (%d bytes) is not bit-identical to the pinned body (%d bytes)", len(body), len(want))
			}
		})
	}
}
