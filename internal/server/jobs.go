// The asynchronous job surface: POST /v1/jobs accepts any registered engine
// request type and answers immediately with a job id; the job then computes
// through the same content-addressed cache, store, and engine semaphore as
// the synchronous endpoints, so a job's result bytes are bit-identical to
// the synchronous response for the same request — the determinism contract
// extended across time.
//
// Batch-shaped jobs (sweep, runtime-sweep, assess) feed per-unit progress
// from the engines' Batch machinery and append every completed unit to the
// store's checkpoint file for the job's key. The checkpoint lines are
// exactly the NDJSON stream lines, so one format serves three purposes:
// live progress events (GET /v1/jobs/{id}/stream), durable partial state
// (a killed server resumes instead of recomputing), and the resume replay.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"ulba/internal/engine"
	"ulba/internal/jobs"
)

// jobUnitHook, when set, runs after every freshly computed unit a
// batch-shaped job checkpoints. Tests use it to park a job mid-run (until
// its context is cancelled), turning crash/cancel races that would
// otherwise depend on scheduler timing into deterministic sequences.
var jobUnitHook atomic.Pointer[func(ctx context.Context)]

// jobSubmission is the body of POST /v1/jobs: an engine request wrapped
// with its type. Request is the exact body the matching synchronous
// endpoint accepts (stream/workers fields are ignored for the key, as
// always).
type jobSubmission struct {
	Type    string          `json:"type"`
	Request json.RawMessage `json:"request"`
}

// jobTask is a validated submission: the job's content address, its
// declared unit count, the checkpointing runner, and the unary compute leg
// (what GET .../result uses to rebuild a body that fell out of both cache
// and store).
type jobTask struct {
	typ     string
	key     string
	total   int
	compute func(ctx context.Context) (any, error)
	run     jobs.RunFunc
}

// buildJobTask validates a submission against the engine registry into a
// runnable task. Validation errors surface as 400s at submit time, never
// inside the job. A batch engine gets the checkpointing runner; a unary
// engine recomputes whole on restart.
func (s *Server) buildJobTask(sub jobSubmission) (jobTask, error) {
	if len(sub.Request) == 0 {
		return jobTask{}, fmt.Errorf("job submission needs a request object")
	}
	d, ok := engine.ByType(sub.Type)
	if !ok {
		return jobTask{}, fmt.Errorf("unknown job type %q (want %s)", sub.Type, engine.TypeList())
	}
	inst, err := d.Decode(sub.Request)
	if err != nil {
		return jobTask{}, err
	}
	key, err := inst.Key()
	if err != nil {
		return jobTask{}, err
	}
	task := jobTask{typ: sub.Type, key: key, total: inst.Units(), compute: inst.Run}
	if b := inst.NewBatch(); b != nil {
		task.run = s.checkpointedRun(key, func(ctx context.Context, j *jobs.Job) ([]byte, error) {
			return s.batchJobBody(ctx, j, key, b)
		})
		return task, nil
	}
	// Unary engine: the whole computation is one unit, so progress is
	// 0 -> total and there is no checkpoint.
	task.run = func(ctx context.Context, j *jobs.Job) error {
		_, _, err := s.cache.Do(ctx, key, func() ([]byte, error) {
			j.Begin(task.total, 0)
			return s.computeBody(ctx, key, inst.Run)
		})
		return err
	}
	return task, nil
}

// checkpointedRun wraps a checkpoint-aware body renderer as a job runner.
// The computation still goes through cache.Do, so a job whose key is
// already cached (or stored, via the fallback) finishes instantly, and
// identical concurrent submissions — synchronous or jobs — share one
// computation.
func (s *Server) checkpointedRun(key string, body func(ctx context.Context, j *jobs.Job) ([]byte, error)) jobs.RunFunc {
	return func(ctx context.Context, j *jobs.Job) error {
		_, _, err := s.cache.Do(ctx, key, func() ([]byte, error) {
			return s.render(ctx, key, func(ctx context.Context) ([]byte, error) {
				return body(ctx, j)
			})
		})
		return err
	}
}

// batchJobBody renders a batch job's final body: restore checkpointed
// units, report progress, stream the missing indices through the engine,
// checkpoint and emit each fresh result, and on a per-unit error abort the
// job with the lowest-index error among the results delivered (the abort
// cancels the stream, whose remaining delivery is best-effort — unlike the
// synchronous endpoints' guaranteed lowest-index rule). The bytes equal the
// synchronous endpoint's because per-unit evaluation is a pure function of
// the unit, checkpoint lines round-trip exactly, and aggregation is
// input-ordered either way.
func (s *Server) batchJobBody(ctx context.Context, j *jobs.Job, key string, b *engine.Batch) ([]byte, error) {
	if err := b.Prepare(); err != nil {
		return nil, err
	}
	have := make([]bool, b.N)
	resumed := s.restoreCheckpoint(key, have, b.Restore)
	j.Begin(b.N, resumed)
	for i := range have {
		if !have[i] {
			continue
		}
		buf, err := json.Marshal(b.Line(i))
		if err != nil {
			return nil, err
		}
		j.Event(buf)
	}

	var missing []int
	for i := range have {
		if !have[i] {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		// One open append handle for the whole run; checkpointing is
		// best-effort (a failed write only costs recomputation later), so
		// an open error just disables it.
		var cp *jobs.Checkpoint
		if s.store != nil {
			if c, err := s.store.OpenCheckpoint(key); err == nil {
				cp = c
				defer cp.Close()
			}
		}
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		delivered := 0
		var firstErr error
		firstIdx := -1
		for u := range b.Open(runCtx, missing) {
			delivered++
			if u.Err != nil {
				if firstIdx < 0 || u.Index < firstIdx {
					firstErr, firstIdx = u.Err, u.Index
				}
				cancel()
				continue
			}
			if firstErr != nil {
				continue
			}
			buf, err := json.Marshal(b.Line(u.Index))
			if err != nil {
				return nil, err
			}
			if cp != nil {
				cp.Append(buf)
			}
			j.Event(buf)
			j.Advance()
			if hook := jobUnitHook.Load(); hook != nil {
				(*hook)(runCtx)
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if delivered < len(missing) {
			return nil, fmt.Errorf("job delivered %d of %d units", delivered, len(missing))
		}
	}
	resp, err := b.Body()
	if err != nil {
		return nil, err
	}
	// persist (via render) clears the checkpoint once this body lands.
	return marshalBody(resp)
}

// restoreCheckpoint replays key's checkpoint lines through apply (which
// stores the decoded unit and returns its index) and marks the covered
// indices. Unparseable or out-of-range lines are skipped — a checkpoint can
// only help, never wedge a job.
func (s *Server) restoreCheckpoint(key string, have []bool, apply func(raw []byte) (int, bool)) (resumed int) {
	if s.store == nil {
		return 0
	}
	lines, err := s.store.LoadCheckpoint(key)
	if err != nil {
		return 0
	}
	for _, raw := range lines {
		idx, ok := apply(raw)
		if !ok || idx < 0 || idx >= len(have) || have[idx] {
			continue
		}
		have[idx] = true
		resumed++
	}
	return resumed
}

// writeJSON writes one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var sub jobSubmission
	if err := decode(r, &sub); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	task, err := s.buildJobTask(sub)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Hot-key fast path, job flavor: a submission whose result is already
	// cached bypasses the queue-depth limit and jumps the queue — it will
	// finish as a cache hit, so shedding it would reject free work.
	var j *jobs.Job
	if s.cache.Has(task.key) {
		j, err = s.manager.SubmitHot(task.typ, task.key, task.total, sub, task.run)
	} else {
		j, err = s.manager.Submit(task.typ, task.key, task.total, sub, task.run)
	}
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			s.writeShed(w)
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, j.Status())
}

// jobListResponse is the body of GET /v1/jobs.
type jobListResponse struct {
	Jobs []jobs.Status `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	list := s.manager.List()
	if list == nil {
		list = []jobs.Status{}
	}
	writeJSON(w, http.StatusOK, jobListResponse{Jobs: list})
}

// getJob resolves the {id} path segment, writing the 404 itself when the
// job is unknown (or already pruned by retention).
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
	}
	return j, ok
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.manager.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult serves a finished job's body — bit-identical to the
// synchronous endpoint's response for the same request. The body is fetched
// by content address through the same cache/store/compute chain, so even if
// both the LRU and the store have dropped it, the determinism contract lets
// the server recompute the identical bytes on the spot.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case jobs.StateDone:
	case jobs.StateFailed:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("job %s failed: %s", st.ID, st.Error))
		return
	case jobs.StateCancelled:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s was cancelled", st.ID))
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; the result is not ready", st.ID, st.State))
		return
	}
	sub, _ := j.Meta().(jobSubmission)
	task, err := s.buildJobTask(sub)
	if err != nil { // cannot happen: the submission validated at submit time
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ctx := r.Context()
	body, outcome, err := s.cache.Do(ctx, task.key, func() ([]byte, error) {
		return s.computeBody(ctx, task.key, task.compute)
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ulba-Cache", string(outcome))
	w.Write(body)
}

// jobStreamTail terminates a job stream with the job's final state.
type jobStreamTail struct {
	State    jobs.State    `json:"state"`
	Progress jobs.Progress `json:"progress"`
	Error    string        `json:"error,omitempty"`
}

// handleJobStream replays the job's as-completed NDJSON lines and follows
// them live until the job finishes, then emits a terminal state line. The
// lines are exactly the engines' stream lines (index + unit); unary jobs
// have no per-unit lines, so their stream is the terminal line alone.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	nw := newNDJSONWriter(w)
	i := 0
	for {
		lines, st, watch := j.EventsSince(i)
		for _, line := range lines {
			nw.raw(line)
		}
		i += len(lines)
		if st.State.Terminal() {
			nw.line(jobStreamTail{State: st.State, Progress: st.Progress, Error: st.Error})
			return
		}
		select {
		case <-watch:
		case <-r.Context().Done():
			return
		}
	}
}
