package server

import (
	"container/list"
	"context"
	"sync"
)

// Cache is the deterministic result cache of the service: a content-addressed
// map from canonical request keys to fully rendered response bodies, bounded
// by a byte budget with least-recently-used eviction, with single-flight
// deduplication of concurrent identical requests.
//
// The cache is only sound because of the determinism contract (DESIGN.md):
// every engine result is a pure function of its canonicalized request, so a
// cached body is bit-identical to what a fresh computation would produce and
// serving it is unobservable — except in latency and in the hit counters.
type Cache struct {
	// fallback, when non-nil, is consulted on a miss before compute runs —
	// the hook the persistent result store (internal/jobs.Store) hangs off:
	// an entry the LRU evicted is re-read from disk instead of recomputed.
	// Set it before the cache serves traffic; it must be safe for
	// concurrent use.
	fallback func(key string) ([]byte, bool)

	mu       sync.Mutex
	budget   int64
	used     int64
	entries  map[string]*list.Element
	lru      list.List // front = most recently used; values are *cacheEntry
	inflight map[string]*flight

	hits, misses, joins, evictions, storeHits uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-progress computation. Followers block on done; the
// leader fills body/err before closing it.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Outcome reports how a Do call was served, for the X-Ulba-Cache response
// header and the tests that pin cache behavior.
type Outcome string

// Do outcomes.
const (
	// Hit served a stored body without computing.
	Hit Outcome = "hit"
	// Miss computed, and (budget permitting) stored the body.
	Miss Outcome = "miss"
	// Join waited on a concurrent identical request's computation.
	Join Outcome = "join"
	// Store served a body from the persistent result store after the LRU
	// had evicted (or never held) it — no engine work, one disk read.
	Store Outcome = "store"
)

// NewCache builds a cache with the given byte budget. budget <= 0 stores
// nothing: the cache degenerates to pure single-flight deduplication.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:   budget,
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the response body for key, computing it with compute on a miss.
// Concurrent calls with the same key compute once: followers block until the
// leader finishes and share its body (single flight). A leader error is not
// cached and not shared as a verdict — the error may be the leader's own
// (its context cancelled mid-run), so each follower retries the key instead
// of inheriting it; one follower becomes the new leader. Callers must not
// mutate the returned slice.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Outcome, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.hits++
			body := el.Value.(*cacheEntry).body
			c.mu.Unlock()
			return body, Hit, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.joins++
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					return f.body, Join, nil
				}
				if err := ctx.Err(); err != nil {
					return nil, Join, err
				}
				continue // leader failed; retry, possibly as the new leader
			case <-ctx.Done():
				return nil, Join, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		// The persistent store is the second cache level: consult it under
		// the flight (so concurrent identical requests share one disk read
		// too) before paying for a computation.
		if c.fallback != nil {
			if body, ok := c.fallback(key); ok {
				c.mu.Lock()
				delete(c.inflight, key)
				c.storeHits++
				c.store(key, body)
				c.mu.Unlock()
				f.body = body
				close(f.done)
				return body, Store, nil
			}
		}

		c.mu.Lock()
		c.misses++
		c.mu.Unlock()

		f.body, f.err = compute()

		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.store(key, f.body)
		}
		c.mu.Unlock()
		close(f.done)
		return f.body, Miss, f.err
	}
}

// Seed inserts a body without touching the outcome counters — the warm-load
// path: at startup the server replays the persistent store into the cache so
// results computed before a restart are hits, not recomputations. Unlike
// store, Seed never evicts: it reports false once the body does not fit in
// the remaining budget, telling the loader to stop (anything not seeded is
// still reachable through the fallback).
func (c *Cache) Seed(key string, body []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := entrySize(key, body)
	if c.used+size > c.budget {
		return false
	}
	if _, ok := c.entries[key]; ok {
		return true
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
	c.used += size
	return true
}

// Get returns the body stored for key, counting a hit and refreshing its
// recency; a miss moves no counters and consults no fallback. It is the
// hot-key fast path of admission control: a request whose body is already
// resident serves without an admission token, so load shedding never
// rejects work the server can answer from memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).body, true
	}
	return nil, false
}

// Has reports whether key is immediately servable from the LRU — a pure
// peek: no fallback consultation, no counter movement, no recency update.
// The cluster layer uses it to skip forwarding for locally cached keys and
// to keep already computed jobs out of steal responses.
func (c *Cache) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Admit inserts an externally computed body — a replica push from a cluster
// peer. Eviction applies as for store; the outcome counters do not move
// (the replica was never a request).
func (c *Cache) Admit(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(key, body)
}

// store inserts a computed body, evicting least-recently-used entries until
// the budget holds. Bodies larger than the whole budget are not stored.
// Callers hold c.mu.
func (c *Cache) store(key string, body []byte) {
	size := entrySize(key, body)
	if size > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A retry after a failed leader can race another leader for the
		// same key; determinism makes the bodies identical, so keep the
		// stored one.
		c.lru.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.entries, e.key)
		c.used -= entrySize(e.key, e.body)
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
	c.used += size
}

func entrySize(key string, body []byte) int64 {
	return int64(len(key) + len(body))
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Joins     uint64 `json:"single_flight_joins"`
	StoreHits uint64 `json:"store_hits"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget_bytes"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Joins:     c.joins,
		StoreHits: c.storeHits,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.used,
		Budget:    c.budget,
	}
}
