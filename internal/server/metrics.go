// Instrumentation and admission control: every registered route is wrapped
// with a per-endpoint latency/status recorder (internal/metrics), exposed
// in Prometheus text form at GET /metrics; the engine-work paths sit behind
// an inflight admission limiter that sheds excess load with 429 +
// Retry-After instead of queueing without bound. Cache hits bypass the
// limiter entirely — under overload the server sheds only work that would
// cost engine time, never work it can serve from memory.
package server

import (
	"bytes"
	"fmt"
	"net/http"
	"time"

	"ulba/internal/metrics"
)

// statusRecorder captures the response status for the per-endpoint
// counters. It forwards Flush so the NDJSON streaming endpoints keep their
// line-at-a-time delivery through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the endpoint's latency/status family.
// The observation lands after the handler returns, so a /metrics scrape
// never counts itself and a family's histogram count equals the requests
// the endpoint has finished — the invariant the soak harness pins.
func (s *Server) instrument(fam *metrics.Family, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		fam.Observe(rec.status, time.Since(start))
	}
}

// admit claims an admission token for one unit of engine-bound work, or
// reports that the inflight bound is reached. The counter bounds admitted
// work exactly: a request is either counted and admitted or neither.
func (s *Server) admit() bool {
	n := s.inflight.Add(1)
	if s.maxInflight > 0 && n > int64(s.maxInflight) {
		s.inflight.Add(-1)
		return false
	}
	return true
}

func (s *Server) releaseAdmission() { s.inflight.Add(-1) }

// writeShed answers one shed request: 429, a Retry-After hint, and the
// shed counter — the only place the server produces a 429, so shed
// requests are exactly the 429s.
func (s *Server) writeShed(w http.ResponseWriter) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", s.retryAfter)
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("server over capacity; retry after %ss", s.retryAfter))
}

// AdmissionStats is the admission-control block of GET /v1/stats.
type AdmissionStats struct {
	// Inflight is the number of admission tokens currently held;
	// MaxInflight is the bound (0 = unlimited).
	Inflight    int64 `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	// Shed counts requests answered 429 by this server (inflight and
	// job-queue sheds alike).
	Shed uint64 `json:"shed"`
	// RetryAfterSeconds is the hint sent with every 429.
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

// handleMetrics renders the Prometheus text exposition page: per-endpoint
// request counters and latency histograms, then the service-level cache,
// job, store, admission, and cluster counters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer
	s.metrics.WritePrometheus(&b, "ulba_http", "endpoint")

	st := s.Stats()
	metrics.WriteCounter(&b, "ulba_requests_total", st.Requests)
	metrics.WriteCounter(&b, "ulba_engine_runs_total", st.EngineRuns)

	metrics.WriteGauge(&b, "ulba_admission_inflight", float64(st.Admission.Inflight))
	metrics.WriteGauge(&b, "ulba_admission_max_inflight", float64(st.Admission.MaxInflight))
	metrics.WriteCounter(&b, "ulba_admission_shed_total", st.Admission.Shed)

	metrics.WriteCounter(&b, "ulba_cache_hits_total", st.Cache.Hits)
	metrics.WriteCounter(&b, "ulba_cache_misses_total", st.Cache.Misses)
	metrics.WriteCounter(&b, "ulba_cache_joins_total", st.Cache.Joins)
	metrics.WriteCounter(&b, "ulba_cache_store_hits_total", st.Cache.StoreHits)
	metrics.WriteCounter(&b, "ulba_cache_evictions_total", st.Cache.Evictions)
	metrics.WriteGauge(&b, "ulba_cache_entries", float64(st.Cache.Entries))
	metrics.WriteGauge(&b, "ulba_cache_bytes", float64(st.Cache.Bytes))

	metrics.WriteCounter(&b, "ulba_jobs_submitted_total", st.Jobs.Submitted)
	metrics.WriteCounter(&b, "ulba_jobs_stolen_total", st.Jobs.Stolen)
	metrics.WriteCounter(&b, "ulba_jobs_shed_total", st.Jobs.Shed)
	metrics.WriteGauge(&b, "ulba_jobs_queue_limit", float64(st.Jobs.QueueLimit))
	metrics.WriteGauge(&b, "ulba_jobs_queued", float64(st.Jobs.Queued))
	metrics.WriteGauge(&b, "ulba_jobs_running", float64(st.Jobs.Running))

	if st.Store != nil {
		metrics.WriteGauge(&b, "ulba_store_entries", float64(st.Store.Entries))
		metrics.WriteGauge(&b, "ulba_store_bytes", float64(st.Store.Bytes))
	}

	metrics.WriteCounter(&b, "ulba_cluster_forwarded_in_total", st.Node.ForwardedIn)
	metrics.WriteCounter(&b, "ulba_cluster_replicas_received_total", st.Node.ReplicasReceived)
	metrics.WriteCounter(&b, "ulba_cluster_steals_served_total", st.Node.StealsServed)
	if cs := st.Node.Cluster; cs != nil {
		metrics.WriteGauge(&b, "ulba_cluster_size", float64(cs.Size))
		metrics.WriteGauge(&b, "ulba_cluster_live", float64(cs.Live))
		metrics.WriteCounter(&b, "ulba_cluster_forwards_total", cs.Forwards)
		metrics.WriteCounter(&b, "ulba_cluster_forward_failures_total", cs.ForwardFailures)
		metrics.WriteCounter(&b, "ulba_cluster_forwards_shed_total", cs.ForwardsShed)
		metrics.WriteCounter(&b, "ulba_cluster_replicas_sent_total", cs.ReplicasSent)
		metrics.WriteCounter(&b, "ulba_cluster_replica_failures_total", cs.ReplicaFailures)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}
