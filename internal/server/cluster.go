// The cluster surface: the /v1/cluster/* protocol endpoints and the
// request-forwarding leg that sends a client request to the owner replica
// of its content address. The routes are registered on every server —
// clustered or not — so the documentation drift tests pin them; on a
// standalone server the protocol POSTs answer 503 and GET /v1/cluster
// reports clustered:false.
//
// Division of labor with internal/cluster: the cluster package owns
// placement (ring), membership (gossip liveness/load), and the client half
// of the protocol (forward, replicate push, gossip exchange, steal pull);
// this file owns the server half and the glue into the cache, store, job
// manager, and engine path — wired into the node through cluster.Hooks.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"ulba/internal/cluster"
)

// standaloneNodeID names an unclustered server in the X-Ulba-Node header
// and the stats node block: a cluster of one, canonically its own "n0".
const standaloneNodeID = "n0"

// nodeID returns this server's stable node name.
func (s *Server) nodeID() string {
	if s.node == nil {
		return standaloneNodeID
	}
	return s.node.ID()
}

// clusterHooks is the serving-layer half of the cluster contract: load is
// the queued-job depth, and a stolen submission runs through the exact
// cache/engine path a local job would — so the stolen body is byte-identical
// and lands in the thief's cache, store, and the key's replica set.
func (s *Server) clusterHooks() cluster.Hooks {
	return cluster.Hooks{
		Load: func() int { return s.manager.QueuedLen() },
		RunStolen: func(ctx context.Context, typ string, request json.RawMessage) (string, []byte, error) {
			task, err := s.buildJobTask(jobSubmission{Type: typ, Request: request})
			if err != nil {
				return "", nil, err
			}
			body, _, err := s.cache.Do(ctx, task.key, func() ([]byte, error) {
				return s.computeBody(ctx, task.key, task.compute)
			})
			return task.key, body, err
		},
	}
}

// maybeForward relays a unary engine request to the owner of its content
// address and reports whether it wrote the response. It declines (returns
// false, caller serves locally) when the server is standalone, the request
// already forwarded once (loop guard), the local node is in the key's
// replica set, or the body is already cached here. When every live owner
// fails, the request is served locally too — any replica can compute any
// key, so owner failure degrades placement, never availability.
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, endpoint, key string, raw []byte) bool {
	n := s.node
	if n == nil || r.Header.Get(cluster.HeaderForwarded) != "" || n.IsOwner(key) || s.cache.Has(key) {
		return false
	}
	for _, m := range n.Owners(key) {
		if m.Self || !n.Alive(m.Index) {
			continue
		}
		resp, err := n.Forward(r.Context(), m, endpoint, raw)
		if err != nil {
			continue // Forward marked the member dead; try the next owner
		}
		defer resp.Body.Close()
		for _, h := range []string{"Content-Type", "X-Ulba-Cache", cluster.HeaderNode} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return true
	}
	return false
}

// admitReplica stores a peer-pushed body under its content address: into
// the LRU (so the key serves as a hit) and the store (so it survives a
// restart). Determinism makes the push idempotent and conflict-free — any
// two bodies for one key are identical. The push is terminal: a replica
// admission never re-replicates, so a push can never cascade.
func (s *Server) admitReplica(key string, body []byte) {
	s.cache.Admit(key, body)
	if s.store != nil {
		if err := s.store.Put(key, body); err == nil {
			s.store.ClearCheckpoint(key)
		}
	}
}

// isHexKey reports whether k is a well-formed content address (64 hex
// digits of SHA-256).
func isHexKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// errNotClustered answers a cluster-protocol POST on a standalone server.
func (s *Server) errNotClustered(w http.ResponseWriter) bool {
	if s.node != nil {
		return false
	}
	writeError(w, http.StatusServiceUnavailable, fmt.Errorf("this server is not part of a cluster (start with -peers)"))
	return true
}

// clusterStatusResponse is the body of GET /v1/cluster.
type clusterStatusResponse struct {
	Clustered bool           `json:"clustered"`
	Node      string         `json:"node"`
	Cluster   *cluster.Stats `json:"cluster,omitempty"`
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	resp := clusterStatusResponse{Clustered: s.node != nil, Node: s.nodeID()}
	if s.node != nil {
		st := s.node.Stats()
		resp.Cluster = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	if s.errNotClustered(w) {
		return
	}
	var ex cluster.GossipExchange
	if err := decode(r, &ex); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entries := s.node.HandleGossip(ex.From, ex.Entries)
	writeJSON(w, http.StatusOK, cluster.GossipExchange{From: s.node.ID(), Entries: entries})
}

func (s *Server) handleClusterReplicate(w http.ResponseWriter, r *http.Request) {
	if s.errNotClustered(w) {
		return
	}
	key := r.Header.Get(cluster.HeaderKey)
	if !isHexKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing or malformed %s header (want a 64-digit hex content address)", cluster.HeaderKey))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading replica body: %w", err))
		return
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty replica body"))
		return
	}
	s.admitReplica(key, body)
	s.replicasReceived.Add(1)
	writeJSON(w, http.StatusOK, map[string]bool{"stored": true})
}

func (s *Server) handleClusterSteal(w http.ResponseWriter, r *http.Request) {
	if s.errNotClustered(w) {
		return
	}
	var req cluster.StealRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	typ, key, meta, ok := s.manager.StealQueued(func(key string) bool { return !s.cache.Has(key) })
	if !ok {
		writeJSON(w, http.StatusOK, cluster.StealResponse{})
		return
	}
	sub, isSub := meta.(jobSubmission)
	if !isSub { // cannot happen: every submission stashes its jobSubmission
		writeJSON(w, http.StatusOK, cluster.StealResponse{})
		return
	}
	s.stealsServed.Add(1)
	writeJSON(w, http.StatusOK, cluster.StealResponse{Job: &cluster.StolenJob{
		Type:    typ,
		Request: sub.Request,
		Key:     key,
	}})
}

// NodeStats is the node block of GET /v1/stats: this node's identity, the
// server-side cluster counters, and (when clustered) the membership view.
type NodeStats struct {
	ID string `json:"id"`
	// ForwardedIn counts requests that arrived already forwarded by a peer.
	ForwardedIn uint64 `json:"forwarded_in"`
	// ReplicasReceived counts peer-pushed bodies admitted locally.
	ReplicasReceived uint64 `json:"replicas_received"`
	// StealsServed counts queued jobs leased out to work-stealing peers.
	StealsServed uint64 `json:"steals_served"`
	// Cluster is the membership/protocol view; nil on a standalone server.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// nodeStats builds the stats node block.
func (s *Server) nodeStats() *NodeStats {
	ns := &NodeStats{
		ID:               s.nodeID(),
		ForwardedIn:      s.forwardedIn.Load(),
		ReplicasReceived: s.replicasReceived.Load(),
		StealsServed:     s.stealsServed.Load(),
	}
	if s.node != nil {
		st := s.node.Stats()
		ns.Cluster = &st
	}
	return ns
}
