package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ulba/internal/jobs"
)

// newStoreServer builds a server persisting into dir, with its httptest
// front end. Callers own Close (via the returned shutdown func) when they
// need an orderly handover of the store directory.
func newStoreServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	if dir != "" {
		store, err := jobs.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	closed := false
	shutdown := func() {
		if closed {
			return
		}
		closed = true
		ts.Close()
		srv.Close(context.Background())
	}
	t.Cleanup(shutdown)
	return srv, ts, shutdown
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// submitJob posts a submission and returns the accepted status.
func submitJob(t *testing.T, ts *httptest.Server, typ, request string) jobs.Status {
	t.Helper()
	resp := post(t, ts, "/v1/jobs", fmt.Sprintf(`{"type":%q,"request":%s}`, typ, request))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	return decodeBody[jobs.Status](t, resp)
}

// awaitJob polls the status endpoint until the job reaches a terminal
// state.
func awaitJob(t *testing.T, ts *httptest.Server, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[jobs.Status](t, resp)
		resp.Body.Close()
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// jobResult fetches a finished job's result body.
func jobResult(t *testing.T, ts *httptest.Server, id string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp, readAll(t, resp)
}

// The sync-vs-job byte-identity property these files used to pin per
// engine type now lives in the cross-engine conformance harness
// (TestConformanceSyncJobByteIdentity), which derives its table from the
// engine registry instead of a hand-kept list.

// TestJobSubmitValidation pins the submit-time 4xx surface.
func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name    string
		body    string
		errPart string
	}{
		{"unknown type", `{"type":"magic","request":{}}`, "unknown job type"},
		{"missing request", `{"type":"sweep"}`, "needs a request object"},
		{"invalid inner request", `{"type":"sweep","request":{"bogus":1}}`, "bogus"},
		{"inner validation", `{"type":"sweep","request":{}}`, "needs instances, sample, or both"},
		{"unknown envelope field", `{"type":"sweep","request":{},"extra":1}`, "extra"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := post(t, ts, "/v1/jobs", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if got := decodeBody[errorResponse](t, resp); !strings.Contains(got.Error, c.errPart) {
				t.Errorf("error %q does not mention %q", got.Error, c.errPart)
			}
		})
	}
}

// TestJobListAndStats covers the listing order and the stats blocks.
func TestJobListAndStats(t *testing.T) {
	srv, ts, _ := newStoreServer(t, t.TempDir(), Config{})
	st1 := submitJob(t, ts, "sweep", `{"sample":{"seed":1,"n":5},"alpha_grid":11}`)
	awaitJob(t, ts, st1.ID)
	st2 := submitJob(t, ts, "sweep", `{"sample":{"seed":2,"n":5},"alpha_grid":11}`)
	awaitJob(t, ts, st2.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	list := decodeBody[jobListResponse](t, resp)
	if len(list.Jobs) != 2 || list.Jobs[0].ID != st2.ID || list.Jobs[1].ID != st1.ID {
		t.Fatalf("list = %+v, want newest first [%s %s]", list.Jobs, st2.ID, st1.ID)
	}

	stats := srv.Stats()
	if stats.Jobs.Submitted != 2 || stats.Jobs.Done != 2 {
		t.Fatalf("job stats = %+v", stats.Jobs)
	}
	if stats.Store == nil || stats.Store.Entries != 2 {
		t.Fatalf("store stats = %+v", stats.Store)
	}
}

// TestJobResultNotReady pins the /result conflict surface and the cancel
// flow for a queued job.
func TestJobResultStates(t *testing.T) {
	// One engine slot and one job worker: a blocker ahead of a queued job.
	// The unit hook parks the blocker after its first unit (until it is
	// cancelled), so the queued job's conflict surface is probed while the
	// worker is provably occupied — no engine-speed assumptions.
	hook := func(ctx context.Context) { <-ctx.Done() }
	jobUnitHook.Store(&hook)
	defer jobUnitHook.Store(nil)
	_, ts, _ := newStoreServer(t, "", Config{JobWorkers: 1})
	blocker := submitJob(t, ts, "runtime-sweep", `{"sample":{"seed":3,"n":8}}`)
	queued := submitJob(t, ts, "sweep", `{"sample":{"seed":4,"n":5}}`)

	resp, body := jobResult(t, ts, queued.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued result status = %d: %s", resp.StatusCode, body)
	}

	// Cancel the queued job, then the blocker; both settle terminal.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[jobs.Status](t, dresp)
	dresp.Body.Close()
	if st.State != jobs.StateCancelled {
		t.Fatalf("cancelled queued job = %+v", st)
	}
	resp, _ = jobResult(t, ts, queued.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancelled result status = %d", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	final := awaitJob(t, ts, blocker.ID)
	if !final.State.Terminal() {
		t.Fatalf("blocker = %+v", final)
	}

	if resp, _ := jobResult(t, ts, "j999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job result status = %d", resp.StatusCode)
	}
}

// TestJobStream pins the job stream contract: every instance line exactly
// once (indices restore input order), then a terminal state line.
func TestJobStream(t *testing.T) {
	_, ts, _ := newStoreServer(t, "", Config{})
	const n = 12
	st := submitJob(t, ts, "sweep", `{"sample":{"seed":8,"n":12},"alpha_grid":11}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	seen := make(map[int]bool)
	var tail *jobStreamTail
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var line struct {
			Index      *int            `json:"index"`
			Comparison json.RawMessage `json:"comparison"`
			State      jobs.State      `json:"state"`
			Progress   *jobs.Progress  `json:"progress"`
			Error      string          `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		switch {
		case line.State != "":
			if tail != nil {
				t.Fatal("multiple terminal lines")
			}
			tail = &jobStreamTail{State: line.State, Progress: *line.Progress, Error: line.Error}
		default:
			if line.Index == nil || line.Comparison == nil {
				t.Fatalf("unexpected line %q", sc.Text())
			}
			if seen[*line.Index] {
				t.Fatalf("index %d streamed twice", *line.Index)
			}
			seen[*line.Index] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("streamed %d instance lines, want %d", len(seen), n)
	}
	if tail == nil || tail.State != jobs.StateDone || tail.Progress.Completed != n {
		t.Fatalf("terminal line = %+v", tail)
	}
}

// TestRestartServedFromStore pins the persistence acceptance criterion: a
// result computed before a restart is served from the store afterwards —
// warm-loaded into the cache (a hit in the counters) — with zero engine
// runs and bit-identical bytes, for synchronous requests and resubmitted
// jobs alike.
func TestRestartServedFromStore(t *testing.T) {
	dir := t.TempDir()
	const body = `{"sample":{"seed":31,"n":25},"alpha_grid":13}`

	_, ts1, shutdown1 := newStoreServer(t, dir, Config{})
	first := post(t, ts1, "/v1/sweep", body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d", first.StatusCode)
	}
	want := readAll(t, first)
	shutdown1()

	srv2, ts2, _ := newStoreServer(t, dir, Config{})
	if stats := srv2.Stats(); stats.Store == nil || stats.Store.Seeded != 1 {
		t.Fatalf("store stats after restart = %+v", stats.Store)
	}
	second := post(t, ts2, "/v1/sweep", body)
	if got := second.Header.Get("X-Ulba-Cache"); got != "hit" {
		t.Fatalf("post-restart X-Ulba-Cache = %q, want hit", got)
	}
	if got := readAll(t, second); !bytes.Equal(got, want) {
		t.Fatal("post-restart bytes differ from the pre-restart response")
	}

	// A resubmitted identical job finishes without engine work too.
	st := submitJob(t, ts2, "sweep", body)
	done := awaitJob(t, ts2, st.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("resubmitted job = %+v", done)
	}
	_, got := jobResult(t, ts2, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("resubmitted job bytes differ from the pre-restart response")
	}
	stats := srv2.Stats()
	if stats.EngineRuns != 0 {
		t.Fatalf("engine runs after restart = %d, want 0 (everything from the store)", stats.EngineRuns)
	}
	if stats.Cache.Hits < 2 {
		t.Fatalf("cache hits after restart = %d, want >= 2", stats.Cache.Hits)
	}
}

// TestStoreFallbackAfterEviction pins the second cache level: with a cache
// too small to hold the body, a repeated request is served from the store
// (outcome "store"), still without engine work.
func TestStoreFallbackAfterEviction(t *testing.T) {
	dir := t.TempDir()
	// A one-byte budget stores nothing in the LRU but persists on disk.
	srv, ts, _ := newStoreServer(t, dir, Config{CacheBytes: 1})
	const body = `{"sample":{"seed":41,"n":10},"alpha_grid":11}`
	first := post(t, ts, "/v1/sweep", body)
	want := readAll(t, first)
	if runs := srv.Stats().EngineRuns; runs != 1 {
		t.Fatalf("engine runs = %d", runs)
	}

	second := post(t, ts, "/v1/sweep", body)
	if got := second.Header.Get("X-Ulba-Cache"); got != string(Store) {
		t.Fatalf("X-Ulba-Cache = %q, want %q", got, Store)
	}
	if got := readAll(t, second); !bytes.Equal(got, want) {
		t.Fatal("store-served bytes differ")
	}
	stats := srv.Stats()
	if stats.EngineRuns != 1 || stats.Cache.StoreHits != 1 {
		t.Fatalf("stats = engine %d, store hits %d; want 1, 1", stats.EngineRuns, stats.Cache.StoreHits)
	}
}

// TestCrashResume is the crash/restart contract end to end: a server dies
// mid-sweep (simulated by cancelling the job and abandoning the server
// without completing it — the on-disk state is exactly what a kill leaves
// behind, down to the torn tail the store tolerates), a new server opens
// the same directory, and the resubmitted identical request resumes from
// the checkpoint instead of recomputing, finishing with bytes identical to
// an uninterrupted run.
func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	const n = 32
	request := fmt.Sprintf(`{"sample":{"seed":17,"n":%d}}`, n)

	// The uninterrupted reference run, on a memory-only server.
	_, refTS, _ := newStoreServer(t, "", Config{})
	refResp := post(t, refTS, "/v1/runtime-sweep", request)
	want := readAll(t, refResp)

	// Server A: start the job, park it mid-run via the unit hook (after 8
	// checkpointed units it blocks until cancelled — no scheduler timing
	// involved), then "crash".
	const holdAfter = 8
	var units atomic.Int32
	hook := func(ctx context.Context) {
		if units.Add(1) >= holdAfter {
			<-ctx.Done()
		}
	}
	jobUnitHook.Store(&hook)
	defer jobUnitHook.Store(nil)
	_, ts1, shutdown1 := newStoreServer(t, dir, Config{})
	st := submitJob(t, ts1, "runtime-sweep", request)
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts1.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeBody[jobs.Status](t, resp)
		resp.Body.Close()
		if cur.Progress.Completed >= holdAfter && cur.State == jobs.StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before the crash could interrupt it: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	interrupted := awaitJob(t, ts1, st.ID)
	if interrupted.State != jobs.StateCancelled {
		t.Fatalf("interrupted job = %+v", interrupted)
	}
	shutdown1()
	jobUnitHook.Store(nil) // server B's resumed run proceeds unthrottled

	// Server B: the resubmission resumes — some units come from the
	// checkpoint — and the final bytes match the uninterrupted run.
	srv2, ts2, _ := newStoreServer(t, dir, Config{})
	st2 := submitJob(t, ts2, "runtime-sweep", request)
	done := awaitJob(t, ts2, st2.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("resumed job = %+v", done)
	}
	if done.Progress.Resumed == 0 {
		t.Fatal("resumed job recomputed everything: progress.resumed = 0")
	}
	if done.Progress.Completed != n {
		t.Fatalf("resumed job completed %d of %d", done.Progress.Completed, n)
	}
	resp, got := jobResult(t, ts2, st2.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed result is not bit-identical to the uninterrupted run")
	}
	// The checkpoint was consumed and cleared; the final body is stored.
	if stats := srv2.Stats(); stats.Store == nil || stats.Store.Entries != 1 {
		t.Fatalf("store after resume = %+v", srv2.Stats().Store)
	}
}

// TestJobSingleFlightWithSync pins that a job and a concurrent synchronous
// request for the same content address share one computation.
func TestJobSingleFlightWithSync(t *testing.T) {
	srv, ts, _ := newStoreServer(t, "", Config{})
	const body = `{"sample":{"seed":51,"n":300},"alpha_grid":60}`
	st := submitJob(t, ts, "sweep", body)
	syncResp := post(t, ts, "/v1/sweep", body)
	syncBody := readAll(t, syncResp)
	done := awaitJob(t, ts, st.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job = %+v", done)
	}
	_, jobBody := jobResult(t, ts, st.ID)
	if !bytes.Equal(syncBody, jobBody) {
		t.Fatal("job and sync bytes differ")
	}
	if runs := srv.Stats().EngineRuns; runs != 1 {
		t.Fatalf("engine runs = %d, want 1 (shared flight)", runs)
	}
}
