package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ulba"
	"ulba/internal/cli"
	"ulba/internal/engine"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestRegistries(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/registries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	got := decodeBody[registriesResponse](t, resp)
	checks := []struct {
		name string
		got  []string
		want []string
	}{
		{"planners", got.Planners, ulba.PlannerNames()},
		{"triggers", got.Triggers, ulba.TriggerNames()},
		{"workloads", got.Workloads, ulba.WorkloadNames()},
		{"engines", got.Engines, engine.TypeNames()},
	}
	for _, c := range checks {
		if fmt.Sprint(c.got) != fmt.Sprint(c.want) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestRequestValidation pins the 4xx surface: every malformed or
// inconsistent request is rejected before any engine work, with an error
// message naming the problem.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name    string
		path    string
		body    string
		status  int
		errPart string
	}{
		{"malformed json", "/v1/sweep", `{`, 400, "invalid request body"},
		{"unknown field", "/v1/sweep", `{"bogus": 1}`, 400, "bogus"},
		{"trailing data", "/v1/sweep", `{"sample":{"seed":1,"n":2}} garbage`, 400, "invalid request body"},
		{"sweep without inputs", "/v1/sweep", `{}`, 400, "needs instances, sample, or both"},
		{"sweep zero sample", "/v1/sweep", `{"sample":{"seed":1,"n":0}}`, 400, "sample.n must be positive"},
		{"sweep oversized sample", "/v1/sweep", `{"sample":{"seed":1,"n":2000000}}`, 400, "per-request limit"},
		{"sweep bad alpha grid", "/v1/sweep", `{"sample":{"seed":1,"n":2},"alpha_grid":-3}`, 400, "WithAlphaGrid"},
		{"unknown planner", "/v1/sweep", `{"sample":{"seed":1,"n":2},"planner":{"name":"nope"}}`, 400, "unknown planner"},
		{"planner knob mismatch", "/v1/sweep", `{"sample":{"seed":1,"n":2},"planner":{"name":"sigma+","every":5}}`, 400, "no configuration knobs"},
		{"periodic planner bad every", "/v1/sweep", `{"sample":{"seed":1,"n":2},"planner":{"name":"periodic","every":-1}}`, 400, "every > 0"},
		{"experiment bad PE count", "/v1/experiment", `{"p": 0}`, 400, "positive PE count"},
		{"experiment unknown method", "/v1/experiment", `{"p": 4, "method": "magic"}`, 400, "unknown method"},
		{"experiment alpha out of range", "/v1/experiment", `{"p": 4, "alpha": 1.5}`, 400, "out of [0,1]"},
		{"experiment unknown trigger", "/v1/experiment", `{"p": 4, "trigger":{"name":"nope"}}`, 400, "unknown trigger"},
		{"trigger knob mismatch", "/v1/experiment", `{"p": 4, "trigger":{"name":"menon","every":5}}`, 400, "no every knob"},
		{"runtime unknown workload", "/v1/runtime", `{"p": 4, "workload":{"name":"nope"}}`, 400, "unknown workload"},
		{"runtime planner and trigger", "/v1/runtime",
			`{"p": 4, "planner":{"name":"sigma+"}, "trigger":{"name":"menon"}}`, 400, "mutually exclusive"},
		{"runtime planner without model", "/v1/runtime",
			`{"p": 4, "workload":{"name":"bursty"}, "planner":{"name":"sigma+"}}`, 400, "requires WithModel"},
		{"workload rows on generator", "/v1/runtime", `{"p": 4, "workload":{"name":"linear","rows":[[1,2]]}}`, 400, "takes no rows"},
		{"runtime-sweep without inputs", "/v1/runtime-sweep", `{}`, 400, "needs scenarios, sample, or both"},
		{"runtime-sweep bad scenario", "/v1/runtime-sweep", `{"scenarios":[{"p":-1}]}`, 400, "scenario 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := post(t, ts, c.path, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, c.status)
			}
			got := decodeBody[errorResponse](t, resp)
			if !strings.Contains(got.Error, c.errPart) {
				t.Errorf("error %q does not mention %q", got.Error, c.errPart)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sweep status = %d, want 405", resp.StatusCode)
	}
}

// TestSweepGolden pins the service's headline contract: the served sweep
// response is bit-identical to marshaling the in-process Sweep.Run result.
func TestSweepGolden(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts, "/v1/sweep", `{"sample":{"seed":7,"n":50},"alpha_grid":33}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	sweep, err := ulba.NewSweep(ulba.WithAlphaGrid(33))
	if err != nil {
		t.Fatal(err)
	}
	summary, comps, err := sweep.Run(context.Background(), ulba.SampleInstances(7, 50))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(sweepResponse{Summary: summary, Comparisons: comps})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(served.Bytes(), want) {
		t.Fatalf("served sweep response is not bit-identical to the in-process result\nserved: %d bytes\nwant:   %d bytes",
			served.Len(), len(want))
	}
}

// TestRuntimeGolden does the same for one runtime scenario.
func TestRuntimeGolden(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts, "/v1/runtime",
		`{"p":4,"iterations":40,"workload":{"name":"linear","seed":3},"trigger":{"name":"periodic","every":8}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	exp, err := ulba.NewRuntime(4,
		ulba.WithWorkload(ulba.LinearWorkload{Seed: 3}),
		ulba.WithIterations(40),
		ulba.WithTrigger(ulba.PeriodicTrigger{Every: 8}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(runtimeResponse{Result: res, Gain: res.Gain(), Efficiency: res.Efficiency()})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(served.Bytes(), want) {
		t.Fatal("served runtime response is not bit-identical to the in-process result")
	}
}

// TestRuntimeSweepGolden pins the batched scenario endpoint against the
// in-process RuntimeSweep over the same pinned sample.
func TestRuntimeSweepGolden(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts, "/v1/runtime-sweep", `{"sample":{"seed":5,"n":3}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	exps, _, err := cli.BuildScenarios(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := ulba.NewRuntimeSweep()
	if err != nil {
		t.Fatal(err)
	}
	summary, results, err := sweep.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(runtimeSweepResponse{Summary: summary, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(served.Bytes(), want) {
		t.Fatal("served runtime-sweep response is not bit-identical to the in-process result")
	}
}

// TestCacheHitSkipsEngine pins the cache behavior the acceptance criteria
// name: a repeated identical request is a hit, serves identical bytes, and
// does not touch the engine again — even when the repeat varies fields
// excluded from the cache key (workers).
func TestCacheHitSkipsEngine(t *testing.T) {
	srv, ts := newTestServer(t)
	const body = `{"sample":{"seed":11,"n":30},"alpha_grid":21}`

	first := post(t, ts, "/v1/sweep", body)
	if got := first.Header.Get("X-Ulba-Cache"); got != "miss" {
		t.Fatalf("first request X-Ulba-Cache = %q, want miss", got)
	}
	var firstBody bytes.Buffer
	firstBody.ReadFrom(first.Body)
	if runs := srv.Stats().EngineRuns; runs != 1 {
		t.Fatalf("engine runs after first request = %d, want 1", runs)
	}

	second := post(t, ts, "/v1/sweep", `{"sample":{"seed":11,"n":30},"alpha_grid":21,"workers":3}`)
	if got := second.Header.Get("X-Ulba-Cache"); got != "hit" {
		t.Fatalf("second request X-Ulba-Cache = %q, want hit", got)
	}
	var secondBody bytes.Buffer
	secondBody.ReadFrom(second.Body)
	if !bytes.Equal(firstBody.Bytes(), secondBody.Bytes()) {
		t.Fatal("cache hit served different bytes than the original miss")
	}

	stats := srv.Stats()
	if stats.EngineRuns != 1 {
		t.Errorf("engine runs after cached repeat = %d, want 1", stats.EngineRuns)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", stats.Cache.Hits, stats.Cache.Misses)
	}
}

// TestSingleFlight pins the inflight deduplication: concurrent identical
// requests compute once and all receive the same bytes.
func TestSingleFlight(t *testing.T) {
	srv, ts := newTestServer(t)
	const body = `{"sample":{"seed":13,"n":400}}`
	const clients = 8

	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()

	stats := srv.Stats()
	if stats.EngineRuns != 1 {
		t.Errorf("engine runs = %d, want 1 (single flight)", stats.EngineRuns)
	}
	if got := stats.Cache.Hits + stats.Cache.Joins; got != clients-1 {
		t.Errorf("hits + joins = %d, want %d", got, clients-1)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d received different bytes than client 0", i)
		}
	}
}

// TestSweepStream pins the NDJSON contract: one line per instance in
// completion order with indexes covering the input exactly once, and a
// terminal summary line bit-identical to the unary endpoint's summary.
func TestSweepStream(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 20
	resp := post(t, ts, "/v1/sweep", `{"sample":{"seed":3,"n":20},"alpha_grid":11,"stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	seen := make(map[int]bool)
	comps := make([]ulba.Comparison, n)
	var tail sweepStreamTail
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var line struct {
			Index      *int               `json:"index"`
			Comparison *ulba.Comparison   `json:"comparison"`
			Error      string             `json:"error"`
			Summary    *ulba.SweepSummary `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		switch {
		case line.Summary != nil:
			tail.Summary = line.Summary
		case line.Error != "":
			t.Fatalf("unexpected error line: %s", line.Error)
		default:
			if line.Index == nil || line.Comparison == nil {
				t.Fatalf("line %d is neither a result nor a tail: %s", lines, sc.Text())
			}
			if seen[*line.Index] {
				t.Fatalf("index %d delivered twice", *line.Index)
			}
			seen[*line.Index] = true
			comps[*line.Index] = *line.Comparison
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != n+1 {
		t.Fatalf("stream had %d lines, want %d results + 1 summary", lines, n)
	}
	if len(seen) != n {
		t.Fatalf("stream delivered %d distinct indexes, want %d", len(seen), n)
	}
	if tail.Summary == nil {
		t.Fatal("stream ended without a summary line")
	}

	sweep, err := ulba.NewSweep(ulba.WithAlphaGrid(11))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sweep.Run(context.Background(), ulba.SampleInstances(3, n))
	if err != nil {
		t.Fatal(err)
	}
	if *tail.Summary != want {
		t.Errorf("streamed summary %+v != in-process summary %+v", *tail.Summary, want)
	}
	if got := ulba.SummarizeSweep(comps); got != want {
		t.Errorf("re-aggregated streamed results %+v != in-process summary %+v", got, want)
	}
}

// TestRuntimeSweepStream smoke-checks the runtime streaming endpoint:
// every scenario line lands plus the terminal summary.
func TestRuntimeSweepStream(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts, "/v1/runtime-sweep", `{"sample":{"seed":9,"n":3},"stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<22)
	results, summaries := 0, 0
	for sc.Scan() {
		var line struct {
			Result  json.RawMessage `json:"result"`
			Summary json.RawMessage `json:"summary"`
			Error   string          `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Error != "" {
			t.Fatalf("unexpected error line: %s", line.Error)
		}
		if line.Result != nil {
			results++
		}
		if line.Summary != nil {
			summaries++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if results != 3 || summaries != 1 {
		t.Fatalf("stream had %d results and %d summaries, want 3 and 1", results, summaries)
	}
}

// TestExperimentCompare exercises the heaviest endpoint once at tiny scale:
// a served comparison matches the in-process Experiment.Compare.
func TestExperimentCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("erosion run in -short mode")
	}
	_, ts := newTestServer(t)
	resp := post(t, ts, "/v1/experiment",
		`{"p":4,"iterations":30,"method":"ulba","seed":1,"compare":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	exp, err := ulba.New(4, ulba.WithMethod(ulba.ULBA), ulba.WithIterations(30), ulba.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := exp.Compare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gain, avoided := cmp.Gain(), cmp.CallsAvoided()
	want, err := json.Marshal(experimentResponse{
		Result: cmp.Result, Baseline: &cmp.Baseline, Gain: &gain, CallsAvoided: &avoided,
	})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(served.Bytes(), want) {
		t.Fatal("served experiment comparison is not bit-identical to the in-process result")
	}
}

// TestStatsEndpoint checks the counters surface over HTTP.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts, "/v1/sweep", `{"sample":{"seed":2,"n":5}}`)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := decodeBody[Stats](t, resp)
	if got.EngineRuns != 1 || got.Cache.Misses != 1 {
		t.Errorf("stats = %+v, want 1 engine run and 1 miss", got)
	}
}
