// Package experiments defines the reference configurations and drivers that
// regenerate every figure of the paper's evaluation (Section IV): the
// synthetic model studies (Fig. 2 and Fig. 3, via internal/simulate) and the
// erosion-application studies (Fig. 4a, Fig. 4b, Fig. 5, via internal/lb).
//
// The erosion configurations are scaled-down but shape-preserving versions
// of the paper's testbed (see DESIGN.md): the disc-to-stripe geometry ratio,
// the erosion probabilities, alpha, and the z-score threshold match the
// paper; the domain is smaller and the virtual cost model replaces the
// Baobab cluster. Every driver takes the scale as a parameter so the paper's
// full dimensions remain reachable.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ulba/internal/erosion"
	"ulba/internal/instance"
	"ulba/internal/lb"
	"ulba/internal/mpisim"
	"ulba/internal/simulate"
	"ulba/internal/stats"
	"ulba/internal/trace"
)

// Scale selects the size of the erosion experiments.
type Scale struct {
	StripeWidth int
	Height      int
	Radius      int
	Iterations  int
	Seeds       int // number of repetitions; the median is reported (paper: 5)

	// TriggerFactory, when non-nil, replaces the default degradation
	// trigger in every configuration this scale assembles; it is how the
	// CLIs select a trigger by registry name for the Fig. 4 experiments.
	TriggerFactory func() lb.Trigger

	// WarmupLB overrides the forced first LB call (0 keeps the runner's
	// default of iteration 1; negative disables it, e.g. for the static
	// never-trigger baseline).
	WarmupLB int
}

// BenchScale is small enough for go test -bench: one run takes tens of
// milliseconds of real time.
func BenchScale() Scale {
	return Scale{StripeWidth: 96, Height: 200, Radius: 24, Iterations: 60, Seeds: 1}
}

// DefaultScale reproduces the shapes in a few seconds per cell of the
// experiment grid, with the paper's five-run medians.
func DefaultScale() Scale {
	return Scale{StripeWidth: 192, Height: 400, Radius: 48, Iterations: 120, Seeds: 5}
}

// PaperScale is the paper's geometry (1000x1000 stripes, radius 250,
// 450 iterations, 5 runs). Expect long runtimes.
func PaperScale() Scale {
	return Scale{StripeWidth: 1000, Height: 1000, Radius: 250, Iterations: 450, Seeds: 5}
}

// App builds the erosion instance for P PEs with the given number of
// strongly erodible rocks at this scale.
func (s Scale) App(p, rocks int, seed uint64) erosion.Config {
	return erosion.Config{
		P:           p,
		StripeWidth: s.StripeWidth,
		Height:      s.Height,
		Radius:      s.Radius,
		StrongRocks: rocks,
		ProbStrong:  0.4,
		ProbWeak:    0.02,
		Seed:        seed,
		FlopPerUnit: 100,
		CellBytes:   8,
	}
}

// Cost returns the reference cluster cost model: 2 microsecond latency,
// 100 MB/s effective per-byte cost, 1 GFLOPS PEs (the paper's omega).
func Cost() mpisim.CostModel {
	return mpisim.CostModel{Latency: 2e-6, ByteTime: 1e-8, FLOPS: 1e9}
}

// LBConfig assembles the runner configuration for one method at this scale.
func (s Scale) LBConfig(p, rocks int, seed uint64, method lb.Method, alpha float64) lb.Config {
	return lb.Config{
		App:             s.App(p, rocks, seed),
		Iterations:      s.Iterations,
		Cost:            Cost(),
		Method:          method,
		Alpha:           alpha,
		ZThreshold:      3.0,
		IncludeOverhead: true,
		TriggerFactory:  s.TriggerFactory,
		WarmupLB:        s.WarmupLB,
	}
}

// medianRun executes the configuration for each seed and returns the run
// with the median total time, plus all totals.
func (s Scale) medianRun(p, rocks int, method lb.Method, alpha float64) (lb.Result, []float64) {
	type run struct {
		res   lb.Result
		total float64
	}
	runs := make([]run, 0, s.Seeds)
	totals := make([]float64, 0, s.Seeds)
	for seed := 1; seed <= s.Seeds; seed++ {
		res, err := lb.Run(s.LBConfig(p, rocks, uint64(seed), method, alpha))
		if err != nil {
			panic(fmt.Sprintf("experiments: run failed: %v", err))
		}
		runs = append(runs, run{res: res, total: res.TotalTime})
		totals = append(totals, res.TotalTime)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].total < runs[j].total })
	return runs[len(runs)/2].res, totals
}

// Fig4aCell is one bar pair of Fig. 4a: standard versus ULBA for a given
// PE count and number of strongly erodible rocks.
type Fig4aCell struct {
	P, Rocks           int
	StdTime, ULBATime  float64 // median total times, seconds
	StdCalls, ULBACall int     // LB calls of the median runs
	StdUsage, ULBAUse  float64 // mean PE usage of the median runs
	Gain               float64 // (std-ulba)/std
}

// RunFig4a reproduces the Fig. 4a grid: total time of the standard method
// (Zhai trigger) versus ULBA (alpha = 0.4) over PE counts and 1..3 strongly
// erodible rocks, median over seeds.
func RunFig4a(s Scale, ps []int, rocks []int, alpha float64) []Fig4aCell {
	var out []Fig4aCell
	for _, r := range rocks {
		for _, p := range ps {
			std, _ := s.medianRun(p, r, lb.Standard, alpha)
			ul, _ := s.medianRun(p, r, lb.ULBA, alpha)
			out = append(out, Fig4aCell{
				P: p, Rocks: r,
				StdTime: std.TotalTime, ULBATime: ul.TotalTime,
				StdCalls: std.LBCount(), ULBACall: ul.LBCount(),
				StdUsage: std.MeanUsage(), ULBAUse: ul.MeanUsage(),
				Gain: (std.TotalTime - ul.TotalTime) / std.TotalTime,
			})
		}
	}
	return out
}

// RenderFig4a renders the grid as a table comparable to the paper's bars.
func RenderFig4a(cells []Fig4aCell) string {
	tb := trace.NewTable("rocks", "P", "std [s]", "ulba [s]", "gain %", "std LB", "ulba LB", "std usage", "ulba usage")
	for _, c := range cells {
		tb.AddStringRow(
			fmt.Sprintf("%d", c.Rocks),
			fmt.Sprintf("%d", c.P),
			fmt.Sprintf("%.4f", c.StdTime),
			fmt.Sprintf("%.4f", c.ULBATime),
			fmt.Sprintf("%+.2f", c.Gain*100),
			fmt.Sprintf("%d", c.StdCalls),
			fmt.Sprintf("%d", c.ULBACall),
			fmt.Sprintf("%.3f", c.StdUsage),
			fmt.Sprintf("%.3f", c.ULBAUse),
		)
	}
	return tb.String()
}

// Fig4bResult carries the usage traces of one standard/ULBA pair.
type Fig4bResult struct {
	P     int
	Std   lb.Result
	ULBA  lb.Result
	Alpha float64
}

// CallReduction returns the fraction of LB calls ULBA avoided relative to
// the standard method (the paper reports 62.5% on its 32-PE case).
func (r Fig4bResult) CallReduction() float64 {
	if r.Std.LBCount() == 0 {
		return 0
	}
	return 1 - float64(r.ULBA.LBCount())/float64(r.Std.LBCount())
}

// RunFig4b reproduces the Fig. 4b experiment: the average-PE-usage traces of
// both methods on one instance (the paper: 32 PEs, 1 strongly erodible
// rock).
func RunFig4b(s Scale, p int, alpha float64) Fig4bResult {
	std, _ := s.medianRun(p, 1, lb.Standard, alpha)
	ul, _ := s.medianRun(p, 1, lb.ULBA, alpha)
	return Fig4bResult{P: p, Std: std, ULBA: ul, Alpha: alpha}
}

// RenderFig4b renders the two usage traces as sparkline plots with LB
// markers plus the summary line.
func RenderFig4b(r Fig4bResult, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Average PE usage, %d PEs, 1 strongly erodible rock, alpha=%.2f\n", r.P, r.Alpha)
	b.WriteString(trace.UsagePlot(
		fmt.Sprintf("standard: mean usage %.3f, %d LB calls", r.Std.MeanUsage(), r.Std.LBCount()),
		r.Std.Usage, r.Std.LBIters, width))
	b.WriteString(trace.UsagePlot(
		fmt.Sprintf("ULBA:     mean usage %.3f, %d LB calls", r.ULBA.MeanUsage(), r.ULBA.LBCount()),
		r.ULBA.Usage, r.ULBA.LBIters, width))
	fmt.Fprintf(&b, "LB calls avoided by ULBA: %.1f%% (paper: 62.5%%)\n", r.CallReduction()*100)
	return b.String()
}

// Fig5Point is one point of the alpha-tuning study.
type Fig5Point struct {
	P     int
	Alpha float64
	Time  float64 // median total time, seconds
	Calls int
	Usage float64
}

// RunFig5 reproduces Fig. 5: ULBA total time versus alpha with one strongly
// erodible rock, for each PE count.
func RunFig5(s Scale, ps []int, alphas []float64) []Fig5Point {
	var out []Fig5Point
	for _, p := range ps {
		for _, a := range alphas {
			res, _ := s.medianRun(p, 1, lb.ULBA, a)
			out = append(out, Fig5Point{P: p, Alpha: a, Time: res.TotalTime,
				Calls: res.LBCount(), Usage: res.MeanUsage()})
		}
	}
	return out
}

// RenderFig5 renders the sweep as a table grouped by P.
func RenderFig5(points []Fig5Point) string {
	tb := trace.NewTable("P", "alpha", "time [s]", "LB calls", "usage")
	for _, pt := range points {
		tb.AddStringRow(
			fmt.Sprintf("%d", pt.P),
			fmt.Sprintf("%.2f", pt.Alpha),
			fmt.Sprintf("%.4f", pt.Time),
			fmt.Sprintf("%d", pt.Calls),
			fmt.Sprintf("%.3f", pt.Usage),
		)
	}
	return tb.String()
}

// RenderFig2 renders the sigma+ versus simulated-annealing comparison as the
// paper's histogram plus summary statistics.
func RenderFig2(res simulate.Fig2Result) string {
	var b strings.Builder
	lo, hi := res.Worst, res.Best
	if hi <= lo {
		hi = lo + 1e-6
	}
	h := stats.NewHistogram(lo, hi, 16)
	h.AddAll(res.Gains)
	fmt.Fprintf(&b, "Gain of the sigma+ schedule versus the heuristic search (%d instances)\n", len(res.Gains))
	b.WriteString(h.Render(40))
	fmt.Fprintf(&b, "best %+0.2f%%  worst %+0.2f%%  mean %+0.2f%%  (paper: +1.57%% / -5.58%% / -0.83%%)\n",
		res.Best*100, res.Worst*100, res.Mean*100)
	fmt.Fprintf(&b, "sigma+ beat the heuristic on %.1f%% of instances\n", res.BetterFrac*100)
	return b.String()
}

// RenderFig3 renders the gain-versus-overloading-percentage box plots as a
// table (one row per box).
func RenderFig3(buckets []simulate.Fig3Bucket) string {
	tb := trace.NewTable("overloading %", "min %", "q1 %", "median %", "q3 %", "max %", "mean best alpha")
	for _, bk := range buckets {
		g := bk.Gains
		tb.AddStringRow(
			fmt.Sprintf("%.1f", bk.Fraction*100),
			fmt.Sprintf("%.2f", g.Min*100),
			fmt.Sprintf("%.2f", g.Q1*100),
			fmt.Sprintf("%.2f", g.Median*100),
			fmt.Sprintf("%.2f", g.Q3*100),
			fmt.Sprintf("%.2f", g.Max*100),
			fmt.Sprintf("%.2f", bk.MeanBestAlpha),
		)
	}
	return tb.String()
}

// RenderTable1 prints the model parameter glossary (Table I of the paper).
func RenderTable1() string {
	tb := trace.NewTable("name", "description")
	rows := [][2]string{
		{"P", "Number of PEs."},
		{"N", "Number of overloading PEs."},
		{"gamma", "Number of iterations during which the application runs."},
		{"Wtot(i)", "Workload at iteration i; Wtot(0) = initial workload."},
		{"a^", "Average workload increase rate."},
		{"m^", "Workload increase rate (additional to a^) of the most loaded PEs."},
		{"a", "Amount of workload that goes to every PE at each iteration."},
		{"m", "Workload additional to a that goes to the overloading PEs."},
		{"deltaW", "Workload difference between two iterations; deltaW = a*P + m*N."},
		{"alpha", "Fraction of workload to remove from overloading PEs."},
		{"omega", "Speed of every PE."},
		{"C", "Cost of performing a LB step."},
		{"LBp", "Iteration of the previous LB call."},
		{"LBn", "Iteration of the next LB call."},
		{"I", "The set of all the LB intervals."},
	}
	for _, r := range rows {
		tb.AddStringRow(r[0], r[1])
	}
	return tb.String()
}

// RenderTable2 prints the random-instance distributions (Table II) exactly
// as the generator implements them.
func RenderTable2() string {
	tb := trace.NewTable("name", "distribution")
	for _, r := range instance.TableII() {
		tb.AddStringRow(r.Name, r.Distribution)
	}
	return tb.String()
}

// RuntimeScenarioTable returns the header of the runtime scenario section:
// one row per workload, the measured total against the no-LB baseline and
// the perfect-knowledge bound.
func RuntimeScenarioTable() *trace.Table {
	return trace.NewTable("workload", "total [s]", "no-LB [s]", "perfect [s]", "gain %", "eff %", "LB calls", "usage")
}

// AddRuntimeScenarioRow appends one runtime scenario outcome to the table.
// gain and efficiency come from the caller (RuntimeResult.Gain and
// .Efficiency), so the table and any machine-readable output of the same
// run can never disagree on their definition.
func AddRuntimeScenarioRow(tb *trace.Table, name string, tl lb.SynthResult, noLB, perfect, gain, efficiency float64) {
	tb.AddStringRow(
		name,
		fmt.Sprintf("%.4f", tl.TotalTime),
		fmt.Sprintf("%.4f", noLB),
		fmt.Sprintf("%.4f", perfect),
		fmt.Sprintf("%+.2f", gain*100),
		fmt.Sprintf("%.1f", efficiency*100),
		fmt.Sprintf("%d", tl.LBCount()),
		fmt.Sprintf("%.3f", tl.MeanUsage()),
	)
}
