package experiments

import (
	"strings"
	"testing"

	"ulba/internal/simulate"
)

func tinyScale() Scale {
	return Scale{StripeWidth: 64, Height: 120, Radius: 16, Iterations: 40, Seeds: 1}
}

func TestScalesValidate(t *testing.T) {
	for name, s := range map[string]Scale{
		"bench":   BenchScale(),
		"default": DefaultScale(),
		"paper":   PaperScale(),
	} {
		app := s.App(32, 1, 1)
		if err := app.Validate(); err != nil {
			t.Errorf("%s scale app invalid: %v", name, err)
		}
		cfg := s.LBConfig(32, 1, 1, 0, 0.4).Normalized()
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s scale lb config invalid: %v", name, err)
		}
	}
}

func TestRunFig4aShape(t *testing.T) {
	s := tinyScale()
	cells := RunFig4a(s, []int{16}, []int{1, 2}, 0.4)
	if len(cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(cells))
	}
	for _, c := range cells {
		if c.StdTime <= 0 || c.ULBATime <= 0 {
			t.Errorf("cell %+v has non-positive time", c)
		}
		if c.StdCalls < 1 {
			t.Errorf("cell %+v: standard made no LB calls", c)
		}
		if c.StdUsage <= 0 || c.StdUsage > 1 || c.ULBAUse <= 0 || c.ULBAUse > 1 {
			t.Errorf("cell %+v: usage out of range", c)
		}
	}
	out := RenderFig4a(cells)
	if !strings.Contains(out, "gain %") || !strings.Contains(out, "16") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestRunFig4b(t *testing.T) {
	s := tinyScale()
	r := RunFig4b(s, 16, 0.4)
	if len(r.Std.Usage) != s.Iterations || len(r.ULBA.Usage) != s.Iterations {
		t.Fatal("usage traces wrong length")
	}
	if cr := r.CallReduction(); cr < -1 || cr > 1 {
		t.Errorf("call reduction out of range: %v", cr)
	}
	out := RenderFig4b(r, 60)
	if !strings.Contains(out, "standard") || !strings.Contains(out, "ULBA") {
		t.Errorf("render missing labels:\n%s", out)
	}
	if !strings.Contains(out, "usage |") {
		t.Errorf("render missing sparkline:\n%s", out)
	}
}

func TestRunFig5(t *testing.T) {
	s := tinyScale()
	points := RunFig5(s, []int{16}, []float64{0.2, 0.4})
	if len(points) != 2 {
		t.Fatalf("expected 2 points, got %d", len(points))
	}
	for _, p := range points {
		if p.Time <= 0 {
			t.Errorf("point %+v non-positive time", p)
		}
	}
	out := RenderFig5(points)
	if !strings.Contains(out, "0.20") || !strings.Contains(out, "0.40") {
		t.Errorf("render missing alphas:\n%s", out)
	}
}

func TestRenderFig2(t *testing.T) {
	res := simulate.RunFig2(simulate.Fig2Config{Instances: 8, AnnealSteps: 1500, Seed: 5})
	out := RenderFig2(res)
	if !strings.Contains(out, "best") || !strings.Contains(out, "paper") {
		t.Errorf("render missing summary:\n%s", out)
	}
}

func TestRenderFig3(t *testing.T) {
	buckets := simulate.RunFig3(simulate.Fig3Config{
		Buckets: []float64{0.05}, InstancesPerBucket: 10, AlphaGridSize: 5, Seed: 2,
	})
	out := RenderFig3(buckets)
	if !strings.Contains(out, "5.0") || !strings.Contains(out, "median %") {
		t.Errorf("render missing bucket:\n%s", out)
	}
}

func TestRenderTables(t *testing.T) {
	t1 := RenderTable1()
	if !strings.Contains(t1, "alpha") || !strings.Contains(t1, "omega") {
		t.Errorf("Table I incomplete:\n%s", t1)
	}
	t2 := RenderTable2()
	if !strings.Contains(t2, "Uniform") || !strings.Contains(t2, "2048") {
		t.Errorf("Table II incomplete:\n%s", t2)
	}
}

func TestMedianRunDeterministic(t *testing.T) {
	s := tinyScale()
	a, totalsA := s.medianRun(16, 1, 0, 0.4)
	b, totalsB := s.medianRun(16, 1, 0, 0.4)
	if a.TotalTime != b.TotalTime {
		t.Error("median runs differ")
	}
	if len(totalsA) != s.Seeds || len(totalsB) != s.Seeds {
		t.Error("totals length wrong")
	}
}
