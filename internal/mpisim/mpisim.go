// Package mpisim is a simulated distributed-memory message-passing runtime:
// the substrate standing in for MPI in this reproduction (the paper ran on
// an MPI cluster; Go has no MPI ecosystem).
//
// Ranks execute as goroutines and exchange real data through tagged
// mailboxes, so every algorithmic code path (halo exchange, centralized
// gather/broadcast, migration, gossip) actually runs. Time is virtual:
// every rank carries a clock that advances through computation
// (FLOP / FLOPS) and communication (a Hockney latency/bandwidth model), and
// a receive can never complete before the matching send's data has arrived.
// Wall-clock style results (iteration times, LB cost, PE usage) are read off
// the virtual clocks, which makes runs deterministic and independent of the
// host machine and the Go scheduler.
//
// The model is intentionally simple — a fixed per-message latency, a fixed
// per-byte cost, and homogeneous PE speed — because the paper's conclusions
// depend on the relative cost of imbalance versus balancing, not on network
// topology details.
package mpisim

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"
)

// CostModel fixes the virtual-time cost of computation and communication.
type CostModel struct {
	// Latency is the per-message CPU + wire latency in seconds (the alpha
	// of the Hockney model).
	Latency float64
	// ByteTime is the transfer time per byte in seconds (1/bandwidth).
	ByteTime float64
	// FLOPS is the speed of every PE in FLOP per second (the paper's
	// omega; homogeneous by assumption).
	FLOPS float64
}

// DefaultCostModel resembles a commodity cluster node of the paper's era:
// ~2 microseconds message latency, 10 GB/s links, 1 GFLOPS per PE (the
// paper's omega = 1 GFLOPS).
func DefaultCostModel() CostModel {
	return CostModel{Latency: 2e-6, ByteTime: 1e-10, FLOPS: 1e9}
}

// Validate checks the model is physically sensible.
func (c CostModel) Validate() error {
	if c.Latency < 0 || c.ByteTime < 0 {
		return fmt.Errorf("mpisim: negative communication costs: %+v", c)
	}
	if c.FLOPS <= 0 {
		return fmt.Errorf("mpisim: FLOPS must be positive: %+v", c)
	}
	return nil
}

type msgKey struct {
	src, tag int
}

type message struct {
	payload []byte
	availAt float64 // virtual time at which the payload is at the receiver
}

// mailbox holds the pending messages of one rank, keyed by (source, tag),
// each stream FIFO. Sends are buffered (eager protocol), so a send never
// blocks; receives block until a matching message exists.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][]message
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[msgKey][]message)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(key msgKey, msg message) {
	m.mu.Lock()
	m.queues[key] = append(m.queues[key], msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) take(key msgKey) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queues[key]) == 0 {
		m.cond.Wait()
	}
	q := m.queues[key]
	msg := q[0]
	if len(q) == 1 {
		delete(m.queues, key)
	} else {
		m.queues[key] = q[1:]
	}
	return msg
}

// World is one simulated machine: a set of ranks and their mailboxes.
type World struct {
	size  int
	cost  CostModel
	boxes []*mailbox
}

// NewWorld creates a world of size ranks with the given cost model.
// It panics on invalid arguments; misconfiguration is a programming error.
func NewWorld(size int, cost CostModel) *World {
	if size <= 0 {
		panic("mpisim: world size must be positive")
	}
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	w := &World{size: size, cost: cost, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats aggregates the per-rank instrumentation counters. They are
// maintained out-of-band: reading them costs no virtual time.
type Stats struct {
	ComputeTime float64 // seconds spent in Compute
	SendTime    float64 // seconds of send overhead
	RecvTime    float64 // seconds of receive overhead (excluding waiting)
	WaitTime    float64 // seconds idle, waiting for data to arrive
	MsgsSent    int
	BytesSent   int64
}

// Proc is the per-rank handle passed to the SPMD body. A Proc must only be
// used from the goroutine running its rank.
type Proc struct {
	world *World
	rank  int
	clock float64
	stats Stats
}

// Rank returns this PE's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of PEs in the world.
func (p *Proc) Size() int { return p.world.size }

// Clock returns the current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Stats returns a snapshot of the instrumentation counters.
func (p *Proc) Stats() Stats { return p.stats }

// Cost returns the world's cost model.
func (p *Proc) Cost() CostModel { return p.world.cost }

// Compute advances the clock by flops/FLOPS seconds of pure computation.
// Negative amounts are a programming error.
func (p *Proc) Compute(flops float64) {
	if flops < 0 || math.IsNaN(flops) {
		panic(fmt.Sprintf("mpisim: rank %d computing invalid FLOP amount %g", p.rank, flops))
	}
	dt := flops / p.world.cost.FLOPS
	p.clock += dt
	p.stats.ComputeTime += dt
}

// Elapse advances the clock by dt seconds without attributing the time to
// computation (e.g. modeled OS noise in fault-injection tests).
func (p *Proc) Elapse(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("mpisim: rank %d elapsing invalid duration %g", p.rank, dt))
	}
	p.clock += dt
}

// Send delivers data to dst under tag. The payload is copied, so the caller
// may reuse its buffer. Sends are buffered and never block. The sender pays
// one latency of CPU overhead; the data becomes available at the receiver
// after the full latency plus the serialization time.
func (p *Proc) Send(dst, tag int, data []byte) {
	p.SendV(dst, tag, data, len(data))
}

// SendV is Send with an explicit virtual wire size: the cost model charges
// for virtualBytes instead of len(data). Simulated applications use it when
// the in-memory representation is a compressed stand-in for the real
// payload (e.g. one byte per mesh cell standing in for a full CFD cell
// state), so communication costs reflect the modeled system rather than
// the simulation's encoding.
func (p *Proc) SendV(dst, tag int, data []byte, virtualBytes int) {
	if dst < 0 || dst >= p.world.size {
		panic(fmt.Sprintf("mpisim: rank %d sending to invalid rank %d", p.rank, dst))
	}
	if virtualBytes < 0 {
		panic(fmt.Sprintf("mpisim: rank %d sending negative virtual size %d", p.rank, virtualBytes))
	}
	start := p.clock
	cost := p.world.cost
	p.clock += cost.Latency
	p.stats.SendTime += cost.Latency
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(virtualBytes)
	payload := append([]byte(nil), data...)
	p.world.boxes[dst].put(
		msgKey{src: p.rank, tag: tag},
		message{payload: payload, availAt: start + cost.Latency + float64(virtualBytes)*cost.ByteTime},
	)
}

// Recv blocks until a message from src with the given tag is available and
// returns its payload. The receiver waits (idle virtual time) if the data
// has not arrived yet, then pays one latency of CPU overhead.
func (p *Proc) Recv(src, tag int) []byte {
	if src < 0 || src >= p.world.size {
		panic(fmt.Sprintf("mpisim: rank %d receiving from invalid rank %d", p.rank, src))
	}
	msg := p.world.boxes[p.rank].take(msgKey{src: src, tag: tag})
	if msg.availAt > p.clock {
		p.stats.WaitTime += msg.availAt - p.clock
		p.clock = msg.availAt
	}
	cost := p.world.cost
	p.clock += cost.Latency
	p.stats.RecvTime += cost.Latency
	return msg.payload
}

// SendRecv sends to dst and receives from src with the same tag, the
// canonical halo-exchange step. Because sends are buffered, the combined
// operation cannot deadlock even when all ranks call it simultaneously.
func (p *Proc) SendRecv(dst int, sendData []byte, src, tag int) []byte {
	p.Send(dst, tag, sendData)
	return p.Recv(src, tag)
}

// Run executes body as rank goroutines 0..size-1 and waits for all of them.
// It returns the combined errors of all ranks; a panicking rank is reported
// as an error carrying its stack trace. On a non-nil return the world must
// be discarded (mailboxes may hold orphaned messages).
func Run(size int, cost CostModel, body func(p *Proc) error) error {
	w := NewWorld(size, cost)
	return w.Run(body)
}

// Run executes one SPMD program over this world's ranks.
func (w *World) Run(body func(p *Proc) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpisim: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
				}
			}()
			errs[rank] = body(&Proc{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return joinErrors(errs)
		}
	}
	return nil
}

// RunCollect is like Run but also returns the final per-rank clocks and
// stats, which experiment drivers use to compute total wall time
// (max of clocks) and PE usage.
func RunCollect(size int, cost CostModel, body func(p *Proc) error) ([]float64, []Stats, error) {
	w := NewWorld(size, cost)
	clocks := make([]float64, size)
	allStats := make([]Stats, size)
	err := w.Run(func(p *Proc) error {
		defer func() {
			clocks[p.rank] = p.clock
			allStats[p.rank] = p.stats
		}()
		return body(p)
	})
	return clocks, allStats, err
}

func joinErrors(errs []error) error {
	var first error
	n := 0
	for _, e := range errs {
		if e != nil {
			if first == nil {
				first = e
			}
			n++
		}
	}
	if n <= 1 {
		return first
	}
	return fmt.Errorf("%d ranks failed; first: %w", n, first)
}
