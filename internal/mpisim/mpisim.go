// Package mpisim is a simulated distributed-memory message-passing runtime:
// the substrate standing in for MPI in this reproduction (the paper ran on
// an MPI cluster; Go has no MPI ecosystem).
//
// Ranks execute as goroutines and exchange real data through tagged
// mailboxes, so every algorithmic code path (halo exchange, centralized
// gather/broadcast, migration, gossip) actually runs. Time is virtual:
// every rank carries a clock that advances through computation
// (FLOP / FLOPS) and communication (a Hockney latency/bandwidth model), and
// a receive can never complete before the matching send's data has arrived.
// Wall-clock style results (iteration times, LB cost, PE usage) are read off
// the virtual clocks, which makes runs deterministic and independent of the
// host machine and the Go scheduler.
//
// The model is intentionally simple — a fixed per-message latency, a fixed
// per-byte cost, and a single reference PE speed — because the paper's
// conclusions depend on the relative cost of imbalance versus balancing, not
// on network topology details. Heterogeneous clusters (Lastovetsky &
// Szustak's regime, where a deliberately non-uniform partition is the
// optimum) are expressed per rank: SetSpeed scales one rank's compute rate
// relative to the reference FLOPS without touching the network model.
//
// Worlds are reusable: mailbox maps, queue slices, and per-rank Procs
// survive across runs, and AcquireWorld/Release pool them by (size, cost)
// so sweeping thousands of scenarios does not rebuild the machine each
// time. Per-rank buffer freelists (AcquireBuf/ReleaseBuf) plus the
// ownership-transfer SendOwned path let hot loops exchange messages without
// per-message allocations.
package mpisim

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
)

// CostModel fixes the virtual-time cost of computation and communication.
type CostModel struct {
	// Latency is the per-message CPU + wire latency in seconds (the alpha
	// of the Hockney model).
	Latency float64
	// ByteTime is the transfer time per byte in seconds (1/bandwidth).
	ByteTime float64
	// FLOPS is the reference PE speed in FLOP per second (the paper's
	// omega). Every rank runs at FLOPS unless the program scales it with
	// Proc.SetSpeed.
	FLOPS float64
}

// DefaultCostModel resembles a commodity cluster node of the paper's era:
// ~2 microseconds message latency, 10 GB/s links, 1 GFLOPS per PE (the
// paper's omega = 1 GFLOPS).
func DefaultCostModel() CostModel {
	return CostModel{Latency: 2e-6, ByteTime: 1e-10, FLOPS: 1e9}
}

// Validate checks the model is physically sensible.
func (c CostModel) Validate() error {
	if c.Latency < 0 || c.ByteTime < 0 {
		return fmt.Errorf("mpisim: negative communication costs: %+v", c)
	}
	if c.FLOPS <= 0 {
		return fmt.Errorf("mpisim: FLOPS must be positive: %+v", c)
	}
	return nil
}

type msgKey struct {
	src, tag int
}

type message struct {
	payload []byte
	availAt float64 // virtual time at which the payload is at the receiver
}

// msgQueue is the FIFO of one (source, tag) stream, with its own condition
// variable so a delivery wakes only a receiver blocked on this stream. The
// slice is a reusable ring: head marks the first pending message, and when
// the queue drains it rewinds to reuse the same backing array.
type msgQueue struct {
	cond sync.Cond
	msgs []message
	head int
}

// mailbox holds the pending messages of one rank, keyed by (source, tag),
// each stream FIFO. Sends are buffered (eager protocol), so a send never
// blocks; receives block until a matching message exists. Queues are never
// deleted: a mailbox warms up to its program's stream set and then delivers
// without allocating.
type mailbox struct {
	mu     sync.Mutex
	queues map[msgKey]*msgQueue
	// spurious counts wakeup signals issued to a blocked receiver that
	// cannot consume the delivery. Per-stream conditions keep it at zero
	// (only a matching delivery signals the waiter); the diagnostic exists
	// for the wakeup benchmark and regression tests.
	spurious uint64
}

func newMailbox() *mailbox {
	return &mailbox{queues: make(map[msgKey]*msgQueue)}
}

// queue returns the stream for key, creating it on first use.
func (m *mailbox) queue(key msgKey) *msgQueue {
	q := m.queues[key]
	if q == nil {
		q = &msgQueue{}
		q.cond.L = &m.mu
		m.queues[key] = q
	}
	return q
}

func (m *mailbox) put(key msgKey, msg message) {
	m.mu.Lock()
	q := m.queue(key)
	q.msgs = append(q.msgs, msg)
	m.mu.Unlock()
	// Only a receiver blocked on this very stream can be waiting on q.cond,
	// so this wakes exactly the goroutine that can consume the message —
	// no thundering herd across unrelated (src, tag) streams.
	q.cond.Signal()
}

func (m *mailbox) take(key msgKey) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queue(key)
	for q.head == len(q.msgs) {
		q.cond.Wait()
		if q.head == len(q.msgs) {
			m.spurious++
		}
	}
	msg := q.msgs[q.head]
	q.msgs[q.head] = message{}
	q.head++
	if q.head == len(q.msgs) {
		q.head = 0
		q.msgs = q.msgs[:0]
	}
	return msg
}

// reset drops any pending messages and releases their payload references,
// returning every stream to its empty rewound state.
func (m *mailbox) reset() {
	m.mu.Lock()
	for _, q := range m.queues {
		for i := q.head; i < len(q.msgs); i++ {
			q.msgs[i] = message{}
		}
		q.head = 0
		q.msgs = q.msgs[:0]
	}
	m.spurious = 0
	m.mu.Unlock()
}

// World is one simulated machine: a set of ranks and their mailboxes. A
// world is reusable — Run resets the per-rank state, and the mailbox maps,
// queue slices, and per-rank buffer freelists carry over between runs.
type World struct {
	size   int
	cost   CostModel
	boxes  []*mailbox
	procs  []Proc
	errs   []error
	failed bool
}

// NewWorld creates a world of size ranks with the given cost model.
// It panics on invalid arguments; misconfiguration is a programming error.
func NewWorld(size int, cost CostModel) *World {
	if size <= 0 {
		panic("mpisim: world size must be positive")
	}
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	w := &World{
		size:  size,
		cost:  cost,
		boxes: make([]*mailbox, size),
		procs: make([]Proc, size),
		errs:  make([]error, size),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		w.procs[i].world = w
		w.procs[i].rank = i
		w.procs[i].speed = 1
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// worldPools pools reusable worlds by their (size, cost) shape, so sweep
// engines running thousands of same-shaped scenarios reuse the mailbox maps
// and freelists instead of rebuilding them per scenario.
var worldPools sync.Map // worldShape -> *sync.Pool

type worldShape struct {
	size int
	cost CostModel
}

// AcquireWorld returns a reusable world of the given shape, creating one if
// the pool is empty. Pair it with Release when the run completed cleanly.
func AcquireWorld(size int, cost CostModel) *World {
	if p, ok := worldPools.Load(worldShape{size, cost}); ok {
		if w, _ := p.(*sync.Pool).Get().(*World); w != nil {
			return w
		}
	}
	return NewWorld(size, cost)
}

// Release returns the world to the pool for reuse. Mailboxes are drained
// first, so a program that left unconsumed messages behind cannot leak them
// into a later run. A world whose last run failed is discarded instead:
// its goroutines may have stopped mid-protocol.
func (w *World) Release() {
	if w.failed {
		return
	}
	for _, box := range w.boxes {
		box.reset()
	}
	shape := worldShape{w.size, w.cost}
	p, ok := worldPools.Load(shape)
	if !ok {
		p, _ = worldPools.LoadOrStore(shape, &sync.Pool{})
	}
	p.(*sync.Pool).Put(w)
}

// Stats aggregates the per-rank instrumentation counters. They are
// maintained out-of-band: reading them costs no virtual time.
type Stats struct {
	ComputeTime float64 // seconds spent in Compute
	SendTime    float64 // seconds of send overhead
	RecvTime    float64 // seconds of receive overhead (excluding waiting)
	WaitTime    float64 // seconds idle, waiting for data to arrive
	MsgsSent    int
	BytesSent   int64
}

// Proc is the per-rank handle passed to the SPMD body. A Proc must only be
// used from the goroutine running its rank.
type Proc struct {
	world *World
	rank  int
	clock float64
	speed float64 // relative compute speed multiplier; 1 = reference FLOPS
	stats Stats
	bufs  [][]byte   // freelist of wire buffers (AcquireBuf/ReleaseBuf)
	f64   []float64  // scratch for collective partial results
	s1    [1]float64 // scratch for scalar allreduces
}

// reset prepares the Proc for a fresh run, keeping its buffer freelist and
// scratch capacity. The speed returns to the homogeneous default so pooled
// worlds cannot leak one program's heterogeneity into the next run.
func (p *Proc) reset() {
	p.clock = 0
	p.speed = 1
	p.stats = Stats{}
}

// Rank returns this PE's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of PEs in the world.
func (p *Proc) Size() int { return p.world.size }

// Clock returns the current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Stats returns a snapshot of the instrumentation counters.
func (p *Proc) Stats() Stats { return p.stats }

// Cost returns the world's cost model.
func (p *Proc) Cost() CostModel { return p.world.cost }

// AcquireBuf returns an empty buffer from the rank's freelist (nil when the
// freelist is dry; the append-into codecs grow it as needed). Use it for
// payloads handed to SendOwned, and return received pooled payloads with
// ReleaseBuf; steady-state message passing then allocates nothing.
func (p *Proc) AcquireBuf() []byte {
	if n := len(p.bufs); n > 0 {
		b := p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
		return b[:0]
	}
	return nil
}

// ReleaseBuf recycles a buffer into the rank's freelist. The freelist is
// bounded; beyond that, buffers fall back to the garbage collector.
func (p *Proc) ReleaseBuf(b []byte) {
	if cap(b) == 0 || len(p.bufs) >= 64 {
		return
	}
	p.bufs = append(p.bufs, b)
}

// SetSpeed fixes this rank's relative compute speed: subsequent Compute
// calls advance the clock by flops/(FLOPS*speed) seconds. The default is 1
// (homogeneous cluster), and multiplying by exactly 1.0 is a bitwise no-op,
// so homogeneous programs are unaffected. Programs modeling heterogeneous
// clusters call it once at the start of the rank body. Speeds must be
// positive and finite.
func (p *Proc) SetSpeed(speed float64) {
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		panic(fmt.Sprintf("mpisim: rank %d setting invalid speed %g", p.rank, speed))
	}
	p.speed = speed
}

// Speed returns this rank's relative compute speed multiplier.
func (p *Proc) Speed() float64 { return p.speed }

// Compute advances the clock by flops/(FLOPS*speed) seconds of pure
// computation. Negative amounts are a programming error.
func (p *Proc) Compute(flops float64) {
	if flops < 0 || math.IsNaN(flops) {
		panic(fmt.Sprintf("mpisim: rank %d computing invalid FLOP amount %g", p.rank, flops))
	}
	dt := flops / (p.world.cost.FLOPS * p.speed)
	p.clock += dt
	p.stats.ComputeTime += dt
}

// Elapse advances the clock by dt seconds without attributing the time to
// computation (e.g. modeled OS noise in fault-injection tests).
func (p *Proc) Elapse(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("mpisim: rank %d elapsing invalid duration %g", p.rank, dt))
	}
	p.clock += dt
}

// Send delivers data to dst under tag. The payload is copied, so the caller
// may reuse its buffer. Sends are buffered and never block. The sender pays
// one latency of CPU overhead; the data becomes available at the receiver
// after the full latency plus the serialization time.
func (p *Proc) Send(dst, tag int, data []byte) {
	p.SendV(dst, tag, data, len(data))
}

// SendV is Send with an explicit virtual wire size: the cost model charges
// for virtualBytes instead of len(data). Simulated applications use it when
// the in-memory representation is a compressed stand-in for the real
// payload (e.g. one byte per mesh cell standing in for a full CFD cell
// state), so communication costs reflect the modeled system rather than
// the simulation's encoding.
func (p *Proc) SendV(dst, tag int, data []byte, virtualBytes int) {
	p.deliver(dst, tag, append([]byte(nil), data...), virtualBytes)
}

// SendOwned is Send without the defensive copy: ownership of data transfers
// to the receiver, which gets the very same backing array from Recv (and may
// recycle it with ReleaseBuf). The caller must not touch data afterwards.
// Cost semantics are identical to Send.
func (p *Proc) SendOwned(dst, tag int, data []byte) {
	p.deliver(dst, tag, data, len(data))
}

// SendOwnedV is SendOwned with an explicit virtual wire size, the
// ownership-transfer counterpart of SendV.
func (p *Proc) SendOwnedV(dst, tag int, data []byte, virtualBytes int) {
	p.deliver(dst, tag, data, virtualBytes)
}

// deliver implements the shared send path: charge the cost model and hand
// payload (already owned by the message) to the destination mailbox.
func (p *Proc) deliver(dst, tag int, payload []byte, virtualBytes int) {
	if dst < 0 || dst >= p.world.size {
		panic(fmt.Sprintf("mpisim: rank %d sending to invalid rank %d", p.rank, dst))
	}
	if virtualBytes < 0 {
		panic(fmt.Sprintf("mpisim: rank %d sending negative virtual size %d", p.rank, virtualBytes))
	}
	start := p.clock
	cost := p.world.cost
	p.clock += cost.Latency
	p.stats.SendTime += cost.Latency
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(virtualBytes)
	p.world.boxes[dst].put(
		msgKey{src: p.rank, tag: tag},
		message{payload: payload, availAt: start + cost.Latency + float64(virtualBytes)*cost.ByteTime},
	)
}

// Recv blocks until a message from src with the given tag is available and
// returns its payload. The receiver waits (idle virtual time) if the data
// has not arrived yet, then pays one latency of CPU overhead. The payload is
// owned by the receiver; if it came from a pooled SendOwned buffer it may be
// recycled with ReleaseBuf once decoded.
func (p *Proc) Recv(src, tag int) []byte {
	if src < 0 || src >= p.world.size {
		panic(fmt.Sprintf("mpisim: rank %d receiving from invalid rank %d", p.rank, src))
	}
	msg := p.world.boxes[p.rank].take(msgKey{src: src, tag: tag})
	if msg.availAt > p.clock {
		p.stats.WaitTime += msg.availAt - p.clock
		p.clock = msg.availAt
	}
	cost := p.world.cost
	p.clock += cost.Latency
	p.stats.RecvTime += cost.Latency
	return msg.payload
}

// SendRecv sends to dst and receives from src with the same tag, the
// canonical halo-exchange step. Because sends are buffered, the combined
// operation cannot deadlock even when all ranks call it simultaneously.
func (p *Proc) SendRecv(dst int, sendData []byte, src, tag int) []byte {
	p.Send(dst, tag, sendData)
	return p.Recv(src, tag)
}

// SendRecvOwned is SendRecv on the ownership-transfer path: sendData is
// handed over without a copy, and the returned payload is owned by the
// caller (recyclable with ReleaseBuf).
func (p *Proc) SendRecvOwned(dst int, sendData []byte, src, tag int) []byte {
	p.SendOwned(dst, tag, sendData)
	return p.Recv(src, tag)
}

// Run executes body as rank goroutines 0..size-1 and waits for all of them.
// It returns the combined errors of all ranks; a panicking rank is reported
// as an error carrying its stack trace. On a non-nil return the world must
// be discarded (mailboxes may hold orphaned messages).
func Run(size int, cost CostModel, body func(p *Proc) error) error {
	w := NewWorld(size, cost)
	return w.Run(body)
}

// Run executes one SPMD program over this world's ranks, reusing the
// per-rank Procs and mailboxes of any earlier run.
func (w *World) Run(body func(p *Proc) error) error {
	w.failed = false
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		w.errs[r] = nil
		w.procs[r].reset()
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					w.errs[rank] = fmt.Errorf("mpisim: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
				}
			}()
			w.errs[rank] = body(&w.procs[rank])
		}(r)
	}
	wg.Wait()
	for _, err := range w.errs {
		if err != nil {
			w.failed = true
			return joinErrors(w.errs)
		}
	}
	return nil
}

// RunCollect is like Run but also returns the final per-rank clocks and
// stats, which experiment drivers use to compute total wall time
// (max of clocks) and PE usage.
func RunCollect(size int, cost CostModel, body func(p *Proc) error) ([]float64, []Stats, error) {
	w := NewWorld(size, cost)
	return runCollect(w, body)
}

// RunCollectPooled is RunCollect over a pooled reusable world: the sweep
// engines' entry point. The world returns to the pool after a clean run, so
// back-to-back scenarios of the same shape reuse mailboxes, queues, and
// per-rank buffer freelists instead of rebuilding them.
func RunCollectPooled(size int, cost CostModel, body func(p *Proc) error) ([]float64, []Stats, error) {
	w := AcquireWorld(size, cost)
	clocks, allStats, err := runCollect(w, body)
	w.Release()
	return clocks, allStats, err
}

func runCollect(w *World, body func(p *Proc) error) ([]float64, []Stats, error) {
	clocks := make([]float64, w.size)
	allStats := make([]Stats, w.size)
	err := w.Run(func(p *Proc) error {
		defer func() {
			clocks[p.rank] = p.clock
			allStats[p.rank] = p.stats
		}()
		return body(p)
	})
	return clocks, allStats, err
}

// joinErrors combines the per-rank failures: every failing rank's
// diagnostic surfaces, not just the first one.
func joinErrors(errs []error) error {
	var first error
	n := 0
	for _, e := range errs {
		if e != nil {
			if first == nil {
				first = e
			}
			n++
		}
	}
	if n <= 1 {
		return first
	}
	return fmt.Errorf("%d ranks failed: %w", n, errors.Join(errs...))
}
