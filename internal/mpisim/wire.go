package mpisim

import (
	"encoding/binary"
	"math"
)

// Wire encoding helpers. Payloads travel as []byte so the cost model can
// charge for their real size; these helpers give the fixed little-endian
// encodings used across the repository. Each codec has an allocating form
// and an append-into form (suffix -Into) that extends a caller-provided
// buffer — hot loops pair the latter with per-rank scratch or pooled
// buffers (Proc.AcquireBuf) for allocation-free message passing.

// PackFloat64s encodes xs as little-endian IEEE 754 doubles.
func PackFloat64s(xs []float64) []byte {
	return PackFloat64sInto(make([]byte, 0, 8*len(xs)), xs)
}

// PackFloat64sInto appends the encoding of PackFloat64s to dst and returns
// the extended buffer.
func PackFloat64sInto(dst []byte, xs []float64) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// UnpackFloat64s decodes the encoding of PackFloat64s. Trailing partial
// words are a protocol error and panic.
func UnpackFloat64s(b []byte) []float64 {
	return UnpackFloat64sInto(make([]float64, 0, len(b)/8), b)
}

// UnpackFloat64sInto appends the decoded values to dst and returns the
// extended slice; pass scratch[:0] to reuse a buffer across decodes. It
// panics on trailing partial words like UnpackFloat64s.
func UnpackFloat64sInto(dst []float64, b []byte) []float64 {
	if len(b)%8 != 0 {
		panic("mpisim: float64 payload length not a multiple of 8")
	}
	for ; len(b) >= 8; b = b[8:] {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(b)))
	}
	return dst
}

// PackInts encodes xs as little-endian int64s.
func PackInts(xs []int) []byte {
	return PackIntsInto(make([]byte, 0, 8*len(xs)), xs)
}

// PackIntsInto appends the encoding of PackInts to dst and returns the
// extended buffer.
func PackIntsInto(dst []byte, xs []int) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(x)))
	}
	return dst
}

// UnpackInts decodes the encoding of PackInts.
func UnpackInts(b []byte) []int {
	return UnpackIntsInto(make([]int, 0, len(b)/8), b)
}

// UnpackIntsInto appends the decoded values to dst and returns the extended
// slice; it panics on trailing partial words like UnpackInts.
func UnpackIntsInto(dst []int, b []byte) []int {
	if len(b)%8 != 0 {
		panic("mpisim: int payload length not a multiple of 8")
	}
	for ; len(b) >= 8; b = b[8:] {
		dst = append(dst, int(int64(binary.LittleEndian.Uint64(b))))
	}
	return dst
}

// packByteSlices frames a slice of byte slices as
// [count][len0][bytes0][len1][bytes1]... with uint32 headers.
func packByteSlices(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	b := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	b = append(b, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		b = append(b, hdr[:]...)
		b = append(b, p...)
	}
	return b
}

// unpackByteSlices reverses packByteSlices.
func unpackByteSlices(b []byte) [][]byte {
	if len(b) < 4 {
		panic("mpisim: framed payload too short")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Every framed part costs at least its 4-byte length header, so the
	// remaining payload bounds the plausible count. Checking before
	// allocating keeps a corrupt count header from demanding an enormous
	// slice just to panic on the first truncated part.
	if uint64(n) > uint64(len(b)/4) {
		panic("mpisim: framed payload truncated header")
	}
	out := make([][]byte, n)
	for i := range out {
		if len(b) < 4 {
			panic("mpisim: framed payload truncated header")
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			panic("mpisim: framed payload truncated body")
		}
		out[i] = append([]byte(nil), b[:l]...)
		b = b[l:]
	}
	return out
}
