package mpisim

import (
	"encoding/binary"
	"math"
)

// Wire encoding helpers. Payloads travel as []byte so the cost model can
// charge for their real size; these helpers give the fixed little-endian
// encodings used across the repository.

// PackFloat64s encodes xs as little-endian IEEE 754 doubles.
func PackFloat64s(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// UnpackFloat64s decodes the encoding of PackFloat64s. Trailing partial
// words are a protocol error and panic.
func UnpackFloat64s(b []byte) []float64 {
	if len(b)%8 != 0 {
		panic("mpisim: float64 payload length not a multiple of 8")
	}
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// PackInts encodes xs as little-endian int64s.
func PackInts(xs []int) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(int64(x)))
	}
	return b
}

// UnpackInts decodes the encoding of PackInts.
func UnpackInts(b []byte) []int {
	if len(b)%8 != 0 {
		panic("mpisim: int payload length not a multiple of 8")
	}
	xs := make([]int, len(b)/8)
	for i := range xs {
		xs[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return xs
}

// packByteSlices frames a slice of byte slices as
// [count][len0][bytes0][len1][bytes1]... with uint32 headers.
func packByteSlices(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	b := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	b = append(b, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		b = append(b, hdr[:]...)
		b = append(b, p...)
	}
	return b
}

// unpackByteSlices reverses packByteSlices.
func unpackByteSlices(b []byte) [][]byte {
	if len(b) < 4 {
		panic("mpisim: framed payload too short")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	out := make([][]byte, n)
	for i := range out {
		if len(b) < 4 {
			panic("mpisim: framed payload truncated header")
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			panic("mpisim: framed payload truncated body")
		}
		out[i] = append([]byte(nil), b[:l]...)
		b = b[l:]
	}
	return out
}
