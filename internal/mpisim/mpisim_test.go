package mpisim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"ulba/internal/stats"
)

func testCost() CostModel {
	return CostModel{Latency: 1e-6, ByteTime: 1e-9, FLOPS: 1e9}
}

func TestSendRecvPayload(t *testing.T) {
	err := Run(2, testCost(), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 7, []byte("hello"))
			return nil
		}
		got := p.Recv(0, 7)
		if string(got) != "hello" {
			return fmt.Errorf("payload = %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, testCost(), func(p *Proc) error {
		if p.Rank() == 0 {
			buf := []byte{1, 2, 3}
			p.Send(1, 0, buf)
			buf[0] = 99 // must not affect the message
			return nil
		}
		got := p.Recv(0, 0)
		if got[0] != 1 {
			return fmt.Errorf("payload aliased sender buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	const n = 50
	err := Run(2, testCost(), func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, 3, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got := p.Recv(0, 3)
			if got[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsDoNotCross(t *testing.T) {
	err := Run(2, testCost(), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("one"))
			p.Send(1, 2, []byte("two"))
			return nil
		}
		// Receive in reverse tag order: matching must be by tag.
		if got := p.Recv(0, 2); string(got) != "two" {
			return fmt.Errorf("tag 2 = %q", got)
		}
		if got := p.Recv(0, 1); string(got) != "one" {
			return fmt.Errorf("tag 1 = %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockSemantics(t *testing.T) {
	cost := testCost()
	clocks, statsAll, err := RunCollect(2, cost, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(1e6) // 1e6 FLOP at 1e9 FLOPS = 1 ms
			p.Send(1, 0, make([]byte, 1000))
			return nil
		}
		p.Recv(0, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: 1ms compute + latency.
	wantSender := 1e-3 + cost.Latency
	if !close2(clocks[0], wantSender) {
		t.Errorf("sender clock = %v, want %v", clocks[0], wantSender)
	}
	// Receiver: data available at 1ms + latency + 1000*ByteTime, plus its
	// own receive overhead.
	wantRecv := 1e-3 + cost.Latency + 1000*cost.ByteTime + cost.Latency
	if !close2(clocks[1], wantRecv) {
		t.Errorf("receiver clock = %v, want %v", clocks[1], wantRecv)
	}
	if statsAll[0].ComputeTime != 1e-3 {
		t.Errorf("sender compute time = %v", statsAll[0].ComputeTime)
	}
	if statsAll[1].WaitTime <= 0 {
		t.Error("receiver should have waited for the data")
	}
	if statsAll[0].MsgsSent != 1 || statsAll[0].BytesSent != 1000 {
		t.Errorf("sender counters wrong: %+v", statsAll[0])
	}
}

func TestNoTimeTravel(t *testing.T) {
	// A receiver that is "ahead" in virtual time does not move backwards.
	clocks, _, err := RunCollect(2, testCost(), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, []byte{1})
			return nil
		}
		p.Compute(5e6) // receiver is at 5 ms before the data arrives
		p.Recv(0, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if clocks[1] < 5e-3 {
		t.Errorf("receiver clock went backwards: %v", clocks[1])
	}
}

func TestComputePanicsOnNegative(t *testing.T) {
	err := Run(1, testCost(), func(p *Proc) error {
		p.Compute(-1)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("negative Compute should be reported as a panic, got %v", err)
	}
}

func TestInvalidRankPanics(t *testing.T) {
	err := Run(1, testCost(), func(p *Proc) error {
		p.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("sending to invalid rank should fail")
	}
}

func TestErrorPropagation(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(3, testCost(), func(p *Proc) error {
		if p.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestMultipleErrorsJoined(t *testing.T) {
	err := Run(4, testCost(), func(p *Proc) error {
		if p.Rank()%2 == 0 {
			return fmt.Errorf("rank %d failed", p.Rank())
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "2 ranks failed") {
		t.Fatalf("joined error malformed: %v", err)
	}
	// Every failing rank's diagnostic must surface, not just the first.
	for _, want := range []string{"rank 0 failed", "rank 2 failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error lost %q: %v", want, err)
		}
	}
}

func TestMultipleErrorsJoinedIs(t *testing.T) {
	// errors.Is must see through the join to every rank's error.
	sentinels := []error{errors.New("a"), errors.New("b")}
	err := Run(3, testCost(), func(p *Proc) error {
		if p.Rank() < 2 {
			return sentinels[p.Rank()]
		}
		return nil
	})
	for i, s := range sentinels {
		if !errors.Is(err, s) {
			t.Errorf("sentinel %d not reachable through the joined error: %v", i, err)
		}
	}
}

func TestSendRecvRingNoDeadlock(t *testing.T) {
	const size = 16
	err := Run(size, testCost(), func(p *Proc) error {
		right := (p.Rank() + 1) % size
		left := (p.Rank() - 1 + size) % size
		got := p.SendRecv(right, []byte{byte(p.Rank())}, left, 9)
		if got[0] != byte(left) {
			return fmt.Errorf("ring exchange wrong: got %d want %d", got[0], left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() []float64 {
		clocks, _, err := RunCollect(8, testCost(), func(p *Proc) error {
			rng := stats.NewRNG(uint64(p.Rank()))
			for i := 0; i < 20; i++ {
				p.Compute(rng.Uniform(1e3, 1e6))
				p.Barrier()
			}
			x := p.AllreduceSum(float64(p.Rank()))
			p.Compute(x * 100)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return clocks
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clocks differ between identical runs: rank %d %v vs %v", i, a[i], b[i])
		}
	}
}

func TestElapse(t *testing.T) {
	clocks, statsAll, err := RunCollect(1, testCost(), func(p *Proc) error {
		p.Elapse(0.25)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if clocks[0] != 0.25 {
		t.Errorf("clock = %v, want 0.25", clocks[0])
	}
	if statsAll[0].ComputeTime != 0 {
		t.Error("Elapse must not count as compute")
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) should panic")
		}
	}()
	NewWorld(0, testCost())
}

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Errorf("default cost model invalid: %v", err)
	}
	if err := (CostModel{Latency: -1, FLOPS: 1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if err := (CostModel{FLOPS: 0}).Validate(); err == nil {
		t.Error("zero FLOPS accepted")
	}
}

func close2(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: messages of random sizes arrive intact between random ranks.
func TestPayloadIntegrityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		size := 2 + rng.Intn(6)
		n := rng.Intn(2000)
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		src := rng.Intn(size)
		dst := (src + 1 + rng.Intn(size-1)) % size
		ok := true
		var mu sync.Mutex
		err := Run(size, testCost(), func(p *Proc) error {
			switch p.Rank() {
			case src:
				p.Send(dst, 5, payload)
			case dst:
				got := p.Recv(src, 5)
				mu.Lock()
				defer mu.Unlock()
				if len(got) != len(payload) {
					ok = false
					return nil
				}
				for i := range got {
					if got[i] != payload[i] {
						ok = false
						return nil
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSendOwnedTransfersBackingArray(t *testing.T) {
	// A self-exchange keeps sender and receiver on one goroutine, so the
	// identity of the backing array can be checked without a data race.
	err := Run(1, testCost(), func(p *Proc) error {
		buf := []byte{1, 2, 3}
		p.SendOwned(0, 4, buf)
		got := p.Recv(0, 4)
		if &got[0] != &buf[0] {
			return fmt.Errorf("SendOwned copied the payload")
		}
		p.SendOwnedV(0, 5, buf, 1<<20)
		if got := p.Stats().BytesSent; got != 3+1<<20 {
			return fmt.Errorf("SendOwnedV charged %d bytes", got)
		}
		p.Recv(0, 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOwnedRing(t *testing.T) {
	const size = 8
	err := Run(size, testCost(), func(p *Proc) error {
		right := (p.Rank() + 1) % size
		left := (p.Rank() - 1 + size) % size
		buf := append(p.AcquireBuf(), byte(p.Rank()))
		got := p.SendRecvOwned(right, buf, left, 9)
		if got[0] != byte(left) {
			return fmt.Errorf("ring exchange wrong: got %d want %d", got[0], left)
		}
		p.ReleaseBuf(got)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAcquireReleaseBuf(t *testing.T) {
	p := &Proc{}
	if got := p.AcquireBuf(); got != nil {
		t.Fatalf("empty freelist returned %v", got)
	}
	b := make([]byte, 3, 32)
	p.ReleaseBuf(b)
	got := p.AcquireBuf()
	if len(got) != 0 || cap(got) != 32 {
		t.Fatalf("recycled buffer has len %d cap %d", len(got), cap(got))
	}
	p.ReleaseBuf(nil) // zero-capacity buffers are not worth keeping
	if len(p.bufs) != 0 {
		t.Fatal("nil buffer entered the freelist")
	}
	for i := 0; i < 100; i++ {
		p.ReleaseBuf(make([]byte, 1))
	}
	if len(p.bufs) > 64 {
		t.Fatalf("freelist unbounded: %d entries", len(p.bufs))
	}
}

func TestWorldReuseIsDeterministic(t *testing.T) {
	// Two runs over the same world must produce identical clocks: Run must
	// fully reset per-rank state.
	w := NewWorld(4, testCost())
	body := func(p *Proc) error {
		p.Compute(float64(p.Rank()+1) * 1e6)
		p.Barrier()
		p.AllreduceSum(float64(p.Rank()))
		return nil
	}
	run := func() []float64 {
		clocks := make([]float64, 4)
		err := w.Run(func(p *Proc) error {
			defer func() { clocks[p.Rank()] = p.Clock() }()
			return body(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d clock differs across world reuse: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunCollectPooledMatchesRunCollect(t *testing.T) {
	body := func(p *Proc) error {
		p.Compute(float64(p.Rank()+1) * 1e5)
		p.AllreduceMax(p.Clock())
		// Leave an unconsumed message behind: Release must drain it so a
		// pooled world cannot deliver stale state to a later scenario.
		if p.Rank() == 0 {
			p.Send(1, 7, []byte{42})
		}
		return nil
	}
	wantClocks, wantStats, err := RunCollect(3, testCost(), body)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		clocks, statsAll, err := RunCollectPooled(3, testCost(), body)
		if err != nil {
			t.Fatal(err)
		}
		for r := range clocks {
			if clocks[r] != wantClocks[r] || statsAll[r] != wantStats[r] {
				t.Fatalf("pooled run %d diverged at rank %d: %v vs %v", i, r, clocks[r], wantClocks[r])
			}
		}
	}
}

func TestReleaseDropsFailedWorld(t *testing.T) {
	w := AcquireWorld(2, testCost())
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	w.Release()
	if w2 := AcquireWorld(2, testCost()); w2 == w {
		t.Fatal("failed world re-entered the pool")
	}
}

func TestNoSpuriousWakeups(t *testing.T) {
	// Cross-stream traffic with forced interleaving (see the wakeup
	// benchmark) must never wake a receiver that cannot consume.
	w := NewWorld(3, testCost())
	err := w.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			for n := 0; n < 64; n++ {
				p.Send(2, 2, nil)
				p.Send(1, 3, nil)
				p.Recv(1, 4)
			}
			p.Send(2, 1, nil)
		case 1:
			for n := 0; n < 64; n++ {
				p.Recv(0, 3)
				p.Send(0, 4, nil)
			}
		case 2:
			p.Recv(0, 1)
			for n := 0; n < 64; n++ {
				p.Recv(0, 2)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, box := range w.boxes {
		if box.spurious != 0 {
			t.Errorf("rank %d saw %d spurious wakeups", r, box.spurious)
		}
	}
}

func TestSendVNilPayloadChargesVirtualBytes(t *testing.T) {
	// The synthetic runtime runner migrates recomputable state: it sends
	// nil payloads whose cost model still charges the modeled wire size.
	// The receiver must block until the virtual transfer completes and
	// get back an empty (not nil-panicking) payload.
	cost := CostModel{Latency: 1e-6, ByteTime: 1e-9, FLOPS: 1e9}
	const virtual = 1 << 20
	var recvClock float64
	err := Run(2, cost, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.SendV(1, 7, nil, virtual)
			if got := p.Stats().BytesSent; got != virtual {
				return fmt.Errorf("sender charged %d bytes, want %d", got, virtual)
			}
		case 1:
			payload := p.Recv(0, 7)
			if len(payload) != 0 {
				return fmt.Errorf("nil payload arrived as %d bytes", len(payload))
			}
			recvClock = p.Clock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The receive completes no earlier than the full modeled transfer:
	// send latency + serialization, plus the receiver's own latency.
	wantMin := cost.Latency + virtual*cost.ByteTime + cost.Latency
	if recvClock < wantMin {
		t.Fatalf("receiver clock %g beat the modeled transfer time %g", recvClock, wantMin)
	}
}
