package mpisim

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// Fuzz harness for the wire codecs: every decoder either round-trips
// losslessly with its encoder (including the append-into variants) or
// panics on the documented corruption classes — never anything in between.

// mustPanic runs f and reports the panic message, failing the test if f
// returns normally.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not mention %q", rec, want)
		}
	}()
	f()
}

func FuzzFloat64sRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(PackFloat64s([]float64{0, 1.5, -2.25, math.Inf(1)}))
	f.Add([]byte{1, 2, 3}) // partial word: must panic
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b)%8 != 0 {
			mustPanic(t, "not a multiple of 8", func() { UnpackFloat64s(b) })
			mustPanic(t, "not a multiple of 8", func() { UnpackFloat64sInto(nil, b) })
			return
		}
		xs := UnpackFloat64s(b)
		if !bytes.Equal(PackFloat64s(xs), b) {
			t.Fatalf("float64 round trip lost bits: % x", b)
		}
		scratch := make([]float64, 0, len(b)/8)
		into := UnpackFloat64sInto(scratch, b)
		out := PackFloat64sInto(make([]byte, 0, len(b)), into)
		if !bytes.Equal(out, b) {
			t.Fatalf("float64 -Into round trip lost bits: % x", b)
		}
	})
}

func FuzzIntsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(PackInts([]int{0, -1, 1 << 40}))
	f.Add([]byte{9, 9, 9, 9, 9}) // partial word: must panic
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b)%8 != 0 {
			mustPanic(t, "not a multiple of 8", func() { UnpackInts(b) })
			mustPanic(t, "not a multiple of 8", func() { UnpackIntsInto(nil, b) })
			return
		}
		xs := UnpackInts(b)
		if !bytes.Equal(PackInts(xs), b) {
			t.Fatalf("int round trip changed bytes: % x", b)
		}
		if !bytes.Equal(PackIntsInto(nil, UnpackIntsInto(nil, b)), b) {
			t.Fatalf("int -Into round trip changed bytes: % x", b)
		}
	})
}

func FuzzByteSlicesRoundTrip(f *testing.F) {
	f.Add([]byte{})                          // too short: must panic
	f.Add([]byte{0, 0, 0, 0})                // zero parts
	f.Add([]byte{2, 0, 0, 0})                // claims 2 parts, no headers
	f.Add([]byte{1, 0, 0, 0, 9, 0, 0, 0, 1}) // truncated body
	f.Add(packByteSlices([][]byte{nil, {1}, {2, 3, 4}}))
	f.Fuzz(func(t *testing.T, b []byte) {
		parts, err := tryUnpackByteSlices(b)
		if err != "" {
			if !strings.Contains(err, "framed payload") {
				t.Fatalf("unexpected panic class: %v", err)
			}
			return
		}
		// A successful decode re-encodes to a prefix of the input (the
		// framing is self-delimiting; trailing garbage is ignored).
		packed := packByteSlices(parts)
		if len(packed) > len(b) || !bytes.Equal(packed, b[:len(packed)]) {
			t.Fatalf("byte-slice framing round trip diverged: % x vs % x", packed, b)
		}
	})
}

// tryUnpackByteSlices converts the decoder's panic into a string so the
// fuzzer can classify corrupt frames.
func tryUnpackByteSlices(b []byte) (parts [][]byte, panicMsg string) {
	defer func() {
		if rec := recover(); rec != nil {
			parts, panicMsg = nil, rec.(string)
		}
	}()
	return unpackByteSlices(b), ""
}

// TestUnpackByteSlicesBoundsCountFirst is the regression test for the
// untrusted count header: a frame claiming 2^31 parts with a 9-byte body
// must be rejected before the [][]byte allocation is attempted (previously
// it allocated tens of gigabytes just to panic on the first part).
func TestUnpackByteSlicesBoundsCountFirst(t *testing.T) {
	frame := make([]byte, 9)
	binary.LittleEndian.PutUint32(frame, 1<<31)
	mustPanic(t, "truncated header", func() { unpackByteSlices(frame) })
}

// TestPackByteSlicesRoundTrip pins the framing against hand-built parts,
// including empty and nil parts.
func TestPackByteSlicesRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{},
		{nil},
		{{}, {1}, nil, {2, 3, 4, 5}},
	}
	for _, parts := range cases {
		got := unpackByteSlices(packByteSlices(parts))
		if len(got) != len(parts) {
			t.Fatalf("part count %d, want %d", len(got), len(parts))
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				t.Fatalf("part %d = % x, want % x", i, got[i], parts[i])
			}
		}
	}
}
