package mpisim

import (
	"fmt"
	"testing"
	"testing/quick"

	"ulba/internal/stats"
)

// worldSizes exercises powers of two, odd, prime, and singleton sizes.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 17}

func TestBarrierSynchronizesClocks(t *testing.T) {
	for _, size := range worldSizes {
		size := size
		t.Run(fmt.Sprintf("P=%d", size), func(t *testing.T) {
			before := make([]float64, size)
			after := make([]float64, size)
			_, _, err := RunCollect(size, testCost(), func(p *Proc) error {
				// Stagger the ranks: rank r computes r ms.
				p.Compute(float64(p.Rank()) * 1e6)
				before[p.Rank()] = p.Clock()
				p.Barrier()
				after[p.Rank()] = p.Clock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			maxBefore := 0.0
			for _, c := range before {
				if c > maxBefore {
					maxBefore = c
				}
			}
			for r, c := range after {
				if c < maxBefore {
					t.Errorf("rank %d left the barrier at %v before the slowest rank arrived at %v", r, c, maxBefore)
				}
			}
		})
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, size := range worldSizes {
		for root := 0; root < size; root += 1 + size/3 {
			size, root := size, root
			t.Run(fmt.Sprintf("P=%d root=%d", size, root), func(t *testing.T) {
				payload := []byte("broadcast-payload")
				err := Run(size, testCost(), func(p *Proc) error {
					var in []byte
					if p.Rank() == root {
						in = payload
					}
					got := p.Bcast(root, in)
					if string(got) != string(payload) {
						return fmt.Errorf("rank %d got %q", p.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestBcastLogDepth(t *testing.T) {
	// The binomial tree must complete in O(log P) latency, not O(P).
	cost := CostModel{Latency: 1e-3, ByteTime: 0, FLOPS: 1e9}
	const size = 64 // depth 6
	clocks, _, err := RunCollect(size, cost, func(p *Proc) error {
		p.Bcast(0, []byte{42})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	maxClock := 0.0
	for _, c := range clocks {
		if c > maxClock {
			maxClock = c
		}
	}
	// Each hop costs ~2 latencies (send overhead + recv overhead); allow
	// generous slack but far below linear (64 * 1ms).
	if maxClock > 20e-3 {
		t.Errorf("broadcast took %v, want O(log P) ~ 12ms, not O(P) ~ 64ms+", maxClock)
	}
}

func TestGatherCollectsVariableSizes(t *testing.T) {
	for _, size := range worldSizes {
		size := size
		t.Run(fmt.Sprintf("P=%d", size), func(t *testing.T) {
			err := Run(size, testCost(), func(p *Proc) error {
				data := make([]byte, p.Rank()+1)
				for i := range data {
					data[i] = byte(p.Rank())
				}
				parts := p.Gather(0, data)
				if p.Rank() != 0 {
					if parts != nil {
						return fmt.Errorf("non-root got parts")
					}
					return nil
				}
				if len(parts) != size {
					return fmt.Errorf("root got %d parts", len(parts))
				}
				for r, part := range parts {
					if len(part) != r+1 {
						return fmt.Errorf("part %d has length %d", r, len(part))
					}
					for _, b := range part {
						if b != byte(r) {
							return fmt.Errorf("part %d corrupted: %v", r, part)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	const size = 9
	err := Run(size, testCost(), func(p *Proc) error {
		parts := p.Allgather([]byte{byte(p.Rank() * 3)})
		if len(parts) != size {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for r, part := range parts {
			if len(part) != 1 || part[0] != byte(r*3) {
				return fmt.Errorf("rank %d sees bad part %d: %v", p.Rank(), r, part)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumAndMax(t *testing.T) {
	for _, size := range worldSizes {
		size := size
		t.Run(fmt.Sprintf("P=%d", size), func(t *testing.T) {
			wantSum := 0.0
			wantMax := 0.0
			for r := 0; r < size; r++ {
				v := float64(r*r + 1)
				wantSum += v
				if v > wantMax {
					wantMax = v
				}
			}
			err := Run(size, testCost(), func(p *Proc) error {
				v := float64(p.Rank()*p.Rank() + 1)
				sum := p.Reduce(0, []float64{v}, OpSum)
				if p.Rank() == 0 {
					if !close2(sum[0], wantSum) {
						return fmt.Errorf("sum = %v, want %v", sum[0], wantSum)
					}
				} else if sum != nil {
					return fmt.Errorf("non-root received reduce result")
				}
				got := p.AllreduceMax(v)
				if got != wantMax {
					return fmt.Errorf("allreduce max = %v, want %v", got, wantMax)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReduceNonzeroRoot(t *testing.T) {
	const size, root = 6, 4
	err := Run(size, testCost(), func(p *Proc) error {
		res := p.Reduce(root, []float64{1}, OpSum)
		if p.Rank() == root {
			if res[0] != float64(size) {
				return fmt.Errorf("sum = %v, want %v", res[0], size)
			}
		} else if res != nil {
			return fmt.Errorf("non-root %d received result", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceVector(t *testing.T) {
	const size = 5
	err := Run(size, testCost(), func(p *Proc) error {
		vec := []float64{float64(p.Rank()), float64(-p.Rank()), 1}
		got := p.Allreduce(vec, OpSum)
		want := []float64{10, -10, 5} // sum 0..4 = 10
		for i := range want {
			if !close2(got[i], want[i]) {
				return fmt.Errorf("allreduce[%d] = %v, want %v", i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinOp(t *testing.T) {
	const size = 7
	err := Run(size, testCost(), func(p *Proc) error {
		got := p.Allreduce([]float64{float64(p.Rank() + 3)}, OpMin)[0]
		if got != 3 {
			return fmt.Errorf("min = %v, want 3", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Tag reuse across consecutive collectives must not cross-match:
	// run many collectives in a row with rank-dependent timing skew.
	const size = 8
	err := Run(size, testCost(), func(p *Proc) error {
		rng := stats.NewRNG(uint64(p.Rank() + 1))
		for round := 0; round < 30; round++ {
			p.Compute(rng.Uniform(0, 1e5))
			sum := p.AllreduceSum(float64(round))
			if sum != float64(round*size) {
				return fmt.Errorf("round %d: sum = %v", round, sum)
			}
			data := p.Bcast(round%size, []byte{byte(round)})
			if data[0] != byte(round) {
				return fmt.Errorf("round %d: bcast = %v", round, data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScalarShorthands(t *testing.T) {
	err := Run(4, testCost(), func(p *Proc) error {
		if got := p.AllreduceSum(1); got != 4 {
			return fmt.Errorf("AllreduceSum = %v", got)
		}
		if got := p.AllreduceMax(float64(p.Rank())); got != 3 {
			return fmt.Errorf("AllreduceMax = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(sum) equals the sequential sum for random vectors and
// world sizes.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		size := 1 + rng.Intn(12)
		dim := 1 + rng.Intn(8)
		inputs := make([][]float64, size)
		want := make([]float64, dim)
		for r := range inputs {
			inputs[r] = make([]float64, dim)
			for d := range inputs[r] {
				inputs[r][d] = rng.Uniform(-100, 100)
				want[d] += inputs[r][d]
			}
		}
		ok := true
		err := Run(size, testCost(), func(p *Proc) error {
			got := p.Allreduce(inputs[p.Rank()], OpSum)
			for d := range want {
				// Tree order differs from sequential order; allow
				// float tolerance.
				if diff := got[d] - want[d]; diff > 1e-9 || diff < -1e-9 {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWirePackUnpack(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, 1e308, -1e-300}
	if got := UnpackFloat64s(PackFloat64s(xs)); len(got) != len(xs) {
		t.Fatal("float64 round trip length")
	} else {
		for i := range xs {
			if got[i] != xs[i] {
				t.Errorf("float64 round trip [%d]: %v != %v", i, got[i], xs[i])
			}
		}
	}
	is := []int{0, 1, -1, 1 << 40, -(1 << 40)}
	got := UnpackInts(PackInts(is))
	for i := range is {
		if got[i] != is[i] {
			t.Errorf("int round trip [%d]: %v != %v", i, got[i], is[i])
		}
	}
	parts := [][]byte{{1, 2}, nil, {3}}
	rt := unpackByteSlices(packByteSlices(parts))
	if len(rt) != 3 || len(rt[0]) != 2 || len(rt[1]) != 0 || rt[2][0] != 3 {
		t.Errorf("framing round trip broken: %v", rt)
	}
}

func TestWirePanicsOnCorruptPayloads(t *testing.T) {
	for name, f := range map[string]func(){
		"floats":     func() { UnpackFloat64s(make([]byte, 7)) },
		"ints":       func() { UnpackInts(make([]byte, 9)) },
		"frameShort": func() { unpackByteSlices([]byte{1}) },
		"frameBody":  func() { unpackByteSlices([]byte{1, 0, 0, 0, 10, 0, 0, 0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: corrupt payload should panic", name)
				}
			}()
			f()
		}()
	}
}
