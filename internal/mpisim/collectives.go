package mpisim

import "fmt"

// Collective operations. All ranks of the world must call the same
// collectives in the same order (SPMD discipline); tags are drawn from a
// reserved space so collectives never collide with application messages.
//
// Topologies are chosen to match the paper's setting: broadcast and reduce
// use binomial trees (O(log P) depth, like any MPI implementation), while
// gather is linear into the root because the paper's LB technique is
// explicitly *centralized* — its O(P) cost at the root is part of the LB
// cost C the model reasons about.

// Reserved tag space for collectives: applications must use tags below
// collTagBase.
const collTagBase = 1 << 30

// ReduceOp combines src into dst element-wise. Implementations must be
// associative and commutative.
type ReduceOp func(dst, src []float64)

// OpSum adds src into dst.
func OpSum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// OpMax keeps the element-wise maximum in dst.
func OpMax(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// OpMin keeps the element-wise minimum in dst.
func OpMin(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Barrier synchronizes all ranks with a dissemination barrier
// (ceil(log2 P) rounds). After it returns, every rank's clock is at least
// the pre-barrier clock of every other rank: nobody proceeds until the
// slowest PE has arrived, which is exactly how a BSP iteration boundary
// behaves and why iteration time equals the time of the most loaded PE.
func (p *Proc) Barrier() {
	size := p.world.size
	if size == 1 {
		return
	}
	tag := collTagBase + 1
	for k := 1; k < size; k <<= 1 {
		dst := (p.rank + k) % size
		src := (p.rank - k + size) % size
		p.SendRecv(dst, nil, src, tag)
		tag++
	}
}

// Bcast broadcasts data from root along a binomial tree. Every rank must
// call it; the root passes the payload, other ranks pass nil and receive the
// broadcast value as the return.
func (p *Proc) Bcast(root int, data []byte) []byte {
	size := p.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpisim: Bcast with invalid root %d", root))
	}
	if size == 1 {
		return append([]byte(nil), data...)
	}
	const tag = collTagBase + 2
	vrank := (p.rank - root + size) % size
	buf := data
	// Receive once (non-roots), from the highest bit below vrank.
	if vrank != 0 {
		mask := 1
		for mask<<1 <= vrank {
			mask <<= 1
		}
		srcV := vrank - mask
		src := (srcV + root) % size
		buf = p.Recv(src, tag)
	}
	// Forward to children: vrank + mask for masks above own high bit.
	startMask := 1
	for startMask <= vrank {
		startMask <<= 1
	}
	for mask := startMask; vrank+mask < size; mask <<= 1 {
		dstV := vrank + mask
		dst := (dstV + root) % size
		p.Send(dst, tag, buf)
	}
	if p.rank == root {
		return append([]byte(nil), data...)
	}
	return buf
}

// Gather collects every rank's payload at root, indexed by rank. Non-roots
// return nil. The implementation is linear into the root, modeling the
// centralized LB technique of the paper. Payloads may have different sizes.
func (p *Proc) Gather(root int, data []byte) [][]byte {
	size := p.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpisim: Gather with invalid root %d", root))
	}
	const tag = collTagBase + 3
	if p.rank != root {
		p.Send(root, tag, data)
		return nil
	}
	out := make([][]byte, size)
	out[root] = append([]byte(nil), data...)
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		out[r] = p.Recv(r, tag)
	}
	return out
}

// Allgather collects every rank's payload everywhere (gather to rank 0,
// then broadcast of the concatenation).
func (p *Proc) Allgather(data []byte) [][]byte {
	parts := p.Gather(0, data)
	var packed []byte
	if p.rank == 0 {
		packed = packByteSlices(parts)
	}
	packed = p.Bcast(0, packed)
	return unpackByteSlices(packed)
}

// Reduce combines the vals of all ranks with op at root using a binomial
// tree. Non-roots return nil; all callers must pass equal-length slices.
func (p *Proc) Reduce(root int, vals []float64, op ReduceOp) []float64 {
	size := p.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpisim: Reduce with invalid root %d", root))
	}
	acc := append([]float64(nil), vals...)
	if p.reduceInPlace(root, acc, op) {
		return acc
	}
	return nil
}

// reduceInPlace is the engine behind Reduce and AllreduceInPlace: it
// combines the ranks' vals into vals itself along the binomial tree, using
// pooled wire buffers and the rank's float scratch so the steady state
// allocates nothing. It reports whether this rank is the root (and thus
// holds the result).
func (p *Proc) reduceInPlace(root int, vals []float64, op ReduceOp) bool {
	size := p.world.size
	const tag = collTagBase + 4
	vrank := (p.rank - root + size) % size
	// Combine children (vrank + mask) for increasing masks, then send to
	// parent — the mirror image of the broadcast tree.
	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask != 0 {
			// Send partial to parent and stop.
			parent := ((vrank - mask) + root) % size
			p.SendOwned(parent, tag, PackFloat64sInto(p.AcquireBuf(), vals))
			return false
		}
		childV := vrank + mask
		if childV < size {
			child := (childV + root) % size
			payload := p.Recv(child, tag)
			part := UnpackFloat64sInto(p.f64[:0], payload)
			p.f64 = part[:0]
			p.ReleaseBuf(payload)
			if len(part) != len(vals) {
				panic(fmt.Sprintf("mpisim: Reduce length mismatch: %d vs %d", len(part), len(vals)))
			}
			op(vals, part)
		}
	}
	return true
}

// bcastFloat64sInPlace broadcasts root's vals into every rank's vals along
// the binomial tree of Bcast, forwarding pooled byte buffers instead of
// allocating per hop. All ranks must pass equal-length slices.
func (p *Proc) bcastFloat64sInPlace(root int, vals []float64) {
	size := p.world.size
	if size == 1 {
		return
	}
	const tag = collTagBase + 2
	vrank := (p.rank - root + size) % size
	var wire []byte
	if vrank == 0 {
		wire = PackFloat64sInto(p.AcquireBuf(), vals)
	} else {
		mask := 1
		for mask<<1 <= vrank {
			mask <<= 1
		}
		src := ((vrank - mask) + root) % size
		wire = p.Recv(src, tag)
		xs := UnpackFloat64sInto(p.f64[:0], wire)
		p.f64 = xs[:0]
		if len(xs) != len(vals) {
			panic(fmt.Sprintf("mpisim: broadcast length mismatch: %d vs %d", len(xs), len(vals)))
		}
		copy(vals, xs)
	}
	startMask := 1
	for startMask <= vrank {
		startMask <<= 1
	}
	for mask := startMask; vrank+mask < size; mask <<= 1 {
		dst := ((vrank + mask) + root) % size
		p.SendOwned(dst, tag, append(p.AcquireBuf(), wire...))
	}
	p.ReleaseBuf(wire)
}

// AllreduceInPlace combines vals across all ranks with op, leaving the
// result in vals on every rank (reduce to 0, then broadcast). It is the
// allocation-free form of Allreduce: hot loops call it with a per-rank
// scratch slice. The cost and the result bits are identical to Allreduce.
func (p *Proc) AllreduceInPlace(vals []float64, op ReduceOp) {
	p.reduceInPlace(0, vals, op)
	p.bcastFloat64sInPlace(0, vals)
}

// Allreduce combines vals across all ranks with op and returns the result
// on every rank (reduce to 0, then broadcast). The per-iteration max-clock
// synchronization and total-workload sums of the application run on this.
func (p *Proc) Allreduce(vals []float64, op ReduceOp) []float64 {
	out := append([]float64(nil), vals...)
	p.AllreduceInPlace(out, op)
	return out
}

// AllreduceMax is shorthand for a scalar max-Allreduce.
func (p *Proc) AllreduceMax(x float64) float64 {
	p.s1[0] = x
	p.AllreduceInPlace(p.s1[:], OpMax)
	return p.s1[0]
}

// AllreduceSum is shorthand for a scalar sum-Allreduce.
func (p *Proc) AllreduceSum(x float64) float64 {
	p.s1[0] = x
	p.AllreduceInPlace(p.s1[:], OpSum)
	return p.s1[0]
}
