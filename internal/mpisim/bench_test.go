package mpisim

import (
	"fmt"
	"testing"
)

func BenchmarkSendRecvPingPong(b *testing.B) {
	payload := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := Run(2, testCost(), func(p *Proc) error {
			if p.Rank() == 0 {
				p.Send(1, 0, payload)
				p.Recv(1, 1)
			} else {
				p.Recv(0, 0)
				p.Send(0, 1, payload)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, size := range []int{8, 32} {
		b.Run(fmt.Sprintf("P=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := Run(size, testCost(), func(p *Proc) error {
					for r := 0; r < 10; r++ {
						p.AllreduceSum(float64(p.Rank()))
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	const size = 32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := Run(size, testCost(), func(p *Proc) error {
			for r := 0; r < 10; r++ {
				p.Barrier()
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMailboxWakeups measures how often a blocked receiver is woken by
// a delivery it cannot consume: one rank waits for a specific (src, tag)
// stream while its mailbox is flooded with unrelated traffic. With a single
// broadcast condition variable per mailbox every unrelated delivery woke
// the waiter (measured 512.0 spurious-wakeups/op on this scenario); the
// per-stream condition variables wake a waiter only when its own stream has
// data (measured 0).
func BenchmarkMailboxWakeups(b *testing.B) {
	// Rank 2 blocks on stream (0, 1) while rank 0 floods it with unrelated
	// tag-2 traffic; the ping-pong with rank 1 forces rank 0 to yield after
	// every noise message so the waiter genuinely re-parks between
	// deliveries (otherwise a single-core scheduler batches the flood).
	const noise = 512
	w := NewWorld(3, testCost())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(p *Proc) error {
			switch p.Rank() {
			case 0:
				for n := 0; n < noise; n++ {
					p.Send(2, 2, nil)
					p.Send(1, 3, nil)
					p.Recv(1, 4)
				}
				p.Send(2, 1, nil)
			case 1:
				for n := 0; n < noise; n++ {
					p.Recv(0, 3)
					p.Send(0, 4, nil)
				}
			case 2:
				p.Recv(0, 1) // blocks until the matching message, last to arrive
				for n := 0; n < noise; n++ {
					p.Recv(0, 2)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var spurious uint64
	for _, box := range w.boxes {
		spurious += box.spurious
	}
	b.ReportMetric(float64(spurious)/float64(b.N), "spurious-wakeups/op")
}

func BenchmarkGatherBcast(b *testing.B) {
	const size = 32
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := Run(size, testCost(), func(p *Proc) error {
			parts := p.Gather(0, payload)
			var out []byte
			if p.Rank() == 0 {
				out = parts[0]
			}
			p.Bcast(0, out)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
