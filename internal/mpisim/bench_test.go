package mpisim

import (
	"fmt"
	"testing"
)

func BenchmarkSendRecvPingPong(b *testing.B) {
	payload := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := Run(2, testCost(), func(p *Proc) error {
			if p.Rank() == 0 {
				p.Send(1, 0, payload)
				p.Recv(1, 1)
			} else {
				p.Recv(0, 0)
				p.Send(0, 1, payload)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, size := range []int{8, 32} {
		b.Run(fmt.Sprintf("P=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := Run(size, testCost(), func(p *Proc) error {
					for r := 0; r < 10; r++ {
						p.AllreduceSum(float64(p.Rank()))
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	const size = 32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := Run(size, testCost(), func(p *Proc) error {
			for r := 0; r < 10; r++ {
				p.Barrier()
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGatherBcast(b *testing.B) {
	const size = 32
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := Run(size, testCost(), func(p *Proc) error {
			parts := p.Gather(0, payload)
			var out []byte
			if p.Rank() == 0 {
				out = parts[0]
			}
			p.Bcast(0, out)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
