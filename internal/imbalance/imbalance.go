// Package imbalance provides the imbalance-shaping primitives behind the
// exemplar-derived workloads of the public package: 3D box decompositions
// with uneven per-block row counts (miniFE's make_local_matrix /
// imbalance.hpp), refinement-level load weighting and the weighted load
// imbalance metric (GAMER's LB_EstimateLoadImbalance), and random work
// partitions that hit an exact target imbalance (cluster-dlb-benchmarks'
// syntheticslow generator). Everything is deterministic: the same arguments
// always produce the same partition, so scenario runs stay reproducible.
package imbalance

import (
	"fmt"
	"math"
	"sort"

	"ulba/internal/stats"
)

// BoxFactors factors p into three box-decomposition dimensions px*py*pz = p
// that are as close to cubic as possible: the prime factors of p, largest
// first, each multiplied into the currently smallest dimension — the greedy
// rule miniFE-style domain decompositions use. The result is deterministic
// and ordered px >= py >= pz.
func BoxFactors(p int) (px, py, pz int) {
	if p <= 0 {
		panic(fmt.Sprintf("imbalance: box decomposition needs a positive PE count, got %d", p))
	}
	dims := [3]int{1, 1, 1}
	for _, f := range primeFactorsDesc(p) {
		// Multiply into the smallest dimension.
		min := 0
		for i := 1; i < 3; i++ {
			if dims[i] < dims[min] {
				min = i
			}
		}
		dims[min] *= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dims[:])))
	return dims[0], dims[1], dims[2]
}

// primeFactorsDesc returns the prime factorization of n in descending order.
func primeFactorsDesc(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(fs)))
	return fs
}

// splitWidths divides n cells into k contiguous parts as evenly as integer
// arithmetic allows: the first n%k parts get ceil(n/k) cells, the rest get
// floor(n/k). This is the uneven split that makes miniFE's rows-per-proc
// report interesting whenever k does not divide n.
func splitWidths(n, k int) []int {
	w := make([]int, k)
	q, r := n/k, n%k
	for i := range w {
		w[i] = q
		if i < r {
			w[i]++
		}
	}
	return w
}

// BoxRows returns the per-block row (cell) counts of the box decomposition
// of an nx*ny*nz grid over px*py*pz blocks, flattened x-major: block
// (ix, iy, iz) sits at index (ix*py+iy)*pz+iz and owns wx[ix]*wy[iy]*wz[iz]
// cells. The counts always sum to exactly nx*ny*nz (conservation), and they
// differ — the miniFE skew — whenever a dimension is not evenly divisible.
func BoxRows(nx, ny, nz, px, py, pz int) []int {
	if nx < px || ny < py || nz < pz || px <= 0 || py <= 0 || pz <= 0 {
		panic(fmt.Sprintf("imbalance: box %dx%dx%d cannot split over %dx%dx%d blocks",
			nx, ny, nz, px, py, pz))
	}
	wx, wy, wz := splitWidths(nx, px), splitWidths(ny, py), splitWidths(nz, pz)
	rows := make([]int, 0, px*py*pz)
	for ix := 0; ix < px; ix++ {
		for iy := 0; iy < py; iy++ {
			for iz := 0; iz < pz; iz++ {
				rows = append(rows, wx[ix]*wy[iy]*wz[iz])
			}
		}
	}
	return rows
}

// WLI is the brute-force weighted load imbalance of GAMER's
// LB_EstimateLoadImbalance: (max - avg) / avg over the per-rank loads.
// Zero is perfect balance; 1.0 means the busiest rank carries twice the
// average, i.e. half the machine's time is spent waiting. It is the
// reference definition the runtime engines' incremental computation is
// differentially tested against.
func WLI(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	sum, max := 0.0, 0.0
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	avg := sum / float64(len(loads))
	if avg == 0 {
		return 0
	}
	return (max - avg) / avg
}

// LevelWeight returns the relative update weight of a refinement level in
// an AMR hierarchy: 2^level, because each deeper level halves the time step
// and therefore updates twice as often (GAMER's NUpdateLv weighting).
func LevelWeight(level int) float64 {
	if level < 0 || level > 62 {
		panic(fmt.Sprintf("imbalance: refinement level %d out of [0, 62]", level))
	}
	return float64(uint64(1) << uint(level))
}

// FrontLevel returns the refinement level of a patch at position pos in
// [0, 1) when the refinement front is centered at center (same unit circle):
// levels-1 at the center, dropping one level per 1/(2*levels) of circular
// distance, down to 0 on the far side. It is the spatial level assignment
// behind the AMR workload — a moving front concentrates deep (expensive)
// patches on few PE blocks.
func FrontLevel(pos, center float64, levels int) int {
	if levels <= 0 {
		panic(fmt.Sprintf("imbalance: FrontLevel needs at least one level, got %d", levels))
	}
	d := math.Abs(pos - center)
	if d > 0.5 {
		d = 1 - d
	}
	l := levels - 1 - int(math.Floor(d*2*float64(levels)))
	if l < 0 {
		l = 0
	}
	return l
}

// TargetPartition distributes p*mean total work over p ranks such that the
// imbalance max/avg is exactly target, following cluster-dlb-benchmarks'
// syntheticslow generator: the last rank always gets the worst share
// worst = mean*target, and the remaining work spreads randomly below worst.
// Following the exemplar, whichever of the rest and the slack is smaller is
// drawn as sorted uniform cuts (redrawing while any piece exceeds worst),
// which keeps redraws rare at both imbalance extremes. target must lie in
// [1, p] — max/avg cannot exceed the rank count — and mean must be positive.
func TargetPartition(p int, mean, target float64, seed uint64) ([]float64, error) {
	if p <= 0 {
		return nil, fmt.Errorf("imbalance: target partition needs a positive rank count, got %d", p)
	}
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("imbalance: target partition mean = %g must be positive and finite", mean)
	}
	if math.IsNaN(target) || target < 1 || target > float64(p) {
		return nil, fmt.Errorf("imbalance: target imbalance %g not reachable on %d ranks (must be in [1, %d])",
			target, p, p)
	}
	worst := mean * target
	out := make([]float64, p)
	out[p-1] = worst
	if p == 1 {
		return out, nil
	}
	// restWork is what the other p-1 ranks must sum to for the average to
	// come out right; slackWork is their headroom below a full worst share.
	restWork := worst*(float64(p)/target) - worst
	slackWork := worst*float64(p-1) - restWork
	rng := stats.NewRNG(seed ^ 0x74677462616c) // "tgtbal"
	pieces := out[:p-1]
	if restWork < slackWork {
		genPieces(rng, pieces, restWork, worst)
	} else {
		// Near-even targets: drawing the (small) slack and subtracting
		// it from a full share makes oversized pieces unlikely.
		genPieces(rng, pieces, slackWork, worst)
		for i := range pieces {
			pieces[i] = worst - pieces[i]
		}
	}
	return out, nil
}

// genPieces fills out with len(out) non-negative values summing to total,
// none exceeding max: sorted uniform cuts on [0, total], redrawn while any
// piece is too large (the exemplar's gen()). The required feasibility
// total <= len(out)*max holds for both TargetPartition call sites; after a
// bounded number of redraws it falls back to the even split, which is always
// feasible, so the function stays deterministic and total.
func genPieces(rng *stats.RNG, out []float64, total, max float64) {
	m := len(out)
	if total <= 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	cuts := make([]float64, m+1)
	for attempt := 0; attempt < 1000; attempt++ {
		cuts[0] = 0
		cuts[m] = total
		for i := 1; i < m; i++ {
			cuts[i] = rng.Float64() * total
		}
		sort.Float64s(cuts)
		ok := true
		for i := 0; i < m; i++ {
			out[i] = cuts[i+1] - cuts[i]
			if out[i] > max {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
	for i := range out {
		out[i] = total / float64(m)
	}
}
