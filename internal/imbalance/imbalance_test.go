package imbalance

import (
	"math"
	"testing"
)

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestBoxFactorsMultiplyBack(t *testing.T) {
	for p := 1; p <= 256; p++ {
		px, py, pz := BoxFactors(p)
		if px*py*pz != p {
			t.Fatalf("BoxFactors(%d) = %dx%dx%d, product %d", p, px, py, pz, px*py*pz)
		}
		if px < py || py < pz || pz < 1 {
			t.Fatalf("BoxFactors(%d) = %dx%dx%d not ordered descending", p, px, py, pz)
		}
	}
	// Spot-check near-cubic shapes.
	if px, py, pz := BoxFactors(8); px != 2 || py != 2 || pz != 2 {
		t.Fatalf("BoxFactors(8) = %dx%dx%d, want 2x2x2", px, py, pz)
	}
	if px, py, pz := BoxFactors(12); px != 3 || py != 2 || pz != 2 {
		t.Fatalf("BoxFactors(12) = %dx%dx%d, want 3x2x2", px, py, pz)
	}
}

func TestBoxRowsConserveCells(t *testing.T) {
	cases := []struct{ nx, ny, nz, px, py, pz int }{
		{61, 61, 61, 2, 2, 2},
		{61, 59, 47, 4, 2, 2},
		{100, 100, 100, 5, 2, 1},
		{7, 5, 3, 7, 5, 3},
		{64, 64, 64, 4, 4, 4}, // evenly divisible: all blocks equal
	}
	for _, c := range cases {
		rows := BoxRows(c.nx, c.ny, c.nz, c.px, c.py, c.pz)
		if len(rows) != c.px*c.py*c.pz {
			t.Fatalf("BoxRows(%+v): %d blocks, want %d", c, len(rows), c.px*c.py*c.pz)
		}
		sum := 0
		for _, r := range rows {
			if r <= 0 {
				t.Fatalf("BoxRows(%+v): non-positive block %d", c, r)
			}
			sum += r
		}
		if want := c.nx * c.ny * c.nz; sum != want {
			t.Fatalf("BoxRows(%+v): cells sum to %d, want %d (conservation)", c, sum, want)
		}
	}
	// The uneven split must actually skew: 61^3 over 2x2x2 gives 31/30
	// widths, so min and max block differ.
	rows := BoxRows(61, 61, 61, 2, 2, 2)
	min, max := rows[0], rows[0]
	for _, r := range rows {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if min == max {
		t.Fatalf("BoxRows(61^3, 2x2x2): all blocks equal (%d), want skew", min)
	}
}

func TestWLIReferenceValues(t *testing.T) {
	cases := []struct {
		loads []float64
		want  float64
	}{
		{nil, 0},
		{[]float64{5}, 0},
		{[]float64{1, 1, 1, 1}, 0},
		{[]float64{2, 1, 1}, 0.5},  // avg 4/3, (2-4/3)/(4/3)
		{[]float64{0, 0, 0, 4}, 3}, // one rank owns everything
		{[]float64{0, 0, 0, 0}, 0}, // empty machine
	}
	for _, c := range cases {
		if got := WLI(c.loads); !relClose(got, c.want, 1e-12) {
			t.Fatalf("WLI(%v) = %g, want %g", c.loads, got, c.want)
		}
	}
}

func TestLevelWeightDoubles(t *testing.T) {
	for l := 0; l < 10; l++ {
		if got := LevelWeight(l); got != math.Pow(2, float64(l)) {
			t.Fatalf("LevelWeight(%d) = %g", l, got)
		}
	}
}

func TestFrontLevelShape(t *testing.T) {
	const levels = 4
	if got := FrontLevel(0.5, 0.5, levels); got != levels-1 {
		t.Fatalf("level at the center = %d, want %d", got, levels-1)
	}
	if got := FrontLevel(0.0, 0.5, levels); got != 0 {
		t.Fatalf("level at the far side = %d, want 0", got)
	}
	// Circular distance: positions 0.1 and 0.9 are equidistant from 0.
	if a, b := FrontLevel(0.1, 0, levels), FrontLevel(0.9, 0, levels); a != b {
		t.Fatalf("circular symmetry broken: %d vs %d", a, b)
	}
	for pos := 0.0; pos < 1; pos += 0.01 {
		if l := FrontLevel(pos, 0.3, levels); l < 0 || l >= levels {
			t.Fatalf("FrontLevel(%g) = %d out of [0, %d)", pos, l, levels)
		}
	}
}

// checkTargetPartition verifies the two properties of the exemplar
// generator: total work is conserved and the max/avg imbalance equals the
// requested target, both within float tolerance.
func checkTargetPartition(t *testing.T, p int, mean, target float64, seed uint64) {
	t.Helper()
	parts, err := TargetPartition(p, mean, target, seed)
	if err != nil {
		t.Fatalf("TargetPartition(p=%d, target=%g, seed=%d): %v", p, target, seed, err)
	}
	if len(parts) != p {
		t.Fatalf("got %d parts, want %d", len(parts), p)
	}
	sum, max := 0.0, 0.0
	for i, w := range parts {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("part %d = %g invalid (p=%d, target=%g, seed=%d)", i, w, p, target, seed)
		}
		sum += w
		if w > max {
			max = w
		}
	}
	if want := float64(p) * mean; !relClose(sum, want, 1e-9) {
		t.Fatalf("work not conserved: sum %g, want %g (p=%d, target=%g, seed=%d)", sum, want, p, target, seed)
	}
	if got := max / (sum / float64(p)); !relClose(got, target, 1e-9) {
		t.Fatalf("imbalance %g, want exactly %g (p=%d, seed=%d)", got, target, p, seed)
	}
}

func TestTargetPartitionHitsTargetExactly(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 32, 63} {
		targets := []float64{1, 1.01, 1.25, 1.5, 2, float64(p)/2 + 0.5, float64(p)}
		for _, target := range targets {
			if target < 1 || target > float64(p) {
				continue
			}
			for seed := uint64(0); seed < 16; seed++ {
				checkTargetPartition(t, p, 3.5, target, seed)
			}
		}
	}
}

func TestTargetPartitionRejectsImpossible(t *testing.T) {
	cases := []struct {
		p      int
		mean   float64
		target float64
	}{
		{0, 1, 1},
		{-2, 1, 1},
		{4, 0, 1.5},
		{4, -1, 1.5},
		{4, math.NaN(), 1.5},
		{4, 1, 0.5},
		{4, 1, 4.001},
		{4, 1, math.NaN()},
		{1, 1, 1.5}, // one rank can only be perfectly balanced
	}
	for _, c := range cases {
		if _, err := TargetPartition(c.p, c.mean, c.target, 1); err == nil {
			t.Fatalf("TargetPartition(%d, %g, %g) accepted, want error", c.p, c.mean, c.target)
		}
	}
}

// FuzzTargetPartition fuzzes world sizes, targets, and seeds; every
// generated partition must conserve work and hit its target imbalance.
func FuzzTargetPartition(f *testing.F) {
	f.Add(uint8(4), 0.5, uint64(1))
	f.Add(uint8(1), 0.0, uint64(0))
	f.Add(uint8(16), 0.01, uint64(42))
	f.Add(uint8(32), 0.99, uint64(7))
	f.Add(uint8(63), 0.33, uint64(123456789))
	f.Fuzz(func(t *testing.T, p8 uint8, frac float64, seed uint64) {
		p := 1 + int(p8)%64
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			t.Skip()
		}
		// Map frac into [0, 1], then target into the feasible [1, p].
		frac = math.Abs(frac)
		frac -= math.Floor(frac)
		target := 1 + frac*float64(p-1)
		checkTargetPartition(t, p, 2.25, target, seed)
	})
}
