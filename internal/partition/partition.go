// Package partition implements the centralized stripe partitioning technique
// of Section IV-B of the paper: the computational domain is divided into P
// stripes of consecutive columns along the x-axis such that each stripe
// carries (approximately) a prescribed workload. The prescription is either
// the even share (standard LB method) or the ULBA weights of Algorithm 2,
// where each overloading PE keeps only (1 - alpha) of the balanced share and
// the freed workload is spread evenly over the non-overloading PEs.
//
// A 1D recursive-bisection partitioner is included as an ablation
// alternative (the paper cites recursive bisection among classic
// partitioning techniques).
package partition

import (
	"fmt"
	"sort"
)

// Targets computes the per-PE target workloads of Algorithm 2 from the total
// workload and the per-PE alpha values (alpha > 0 marks an overloading PE;
// 0 marks a normal one). Following Section III-C, if at least half of the
// PEs declare themselves overloading, underloading them is
// counter-productive and the even split is used instead (all alphas treated
// as zero).
//
// The returned targets always sum to wtot (workload conservation).
func Targets(wtot float64, alphas []float64) []float64 {
	p := len(alphas)
	if p == 0 {
		return nil
	}
	share := wtot / float64(p)
	out := make([]float64, p)
	n := 0
	for _, a := range alphas {
		if a < 0 || a > 1 {
			panic(fmt.Sprintf("partition: alpha %g out of [0,1]", a))
		}
		if a > 0 {
			n++
		}
	}
	if n == 0 || n >= (p+1)/2 || n == p {
		// Standard method: perfectly even split. The n >= 50% rule is
		// from Section III-C ("it is counter-productive to unload a
		// majority of PEs").
		for i := range out {
			out[i] = share
		}
		return out
	}
	var removed float64
	for i, a := range alphas {
		if a > 0 {
			out[i] = (1 - a) * share
			removed += a * share
		}
	}
	extra := removed / float64(p-n)
	for i, a := range alphas {
		if a == 0 {
			out[i] = share + extra
		}
	}
	return out
}

// EvenTargets returns the perfectly balanced targets of the standard method.
func EvenTargets(wtot float64, p int) []float64 {
	out := make([]float64, p)
	for i := range out {
		out[i] = wtot / float64(p)
	}
	return out
}

// ProportionalTargets returns per-PE targets proportional to the given
// positive speeds: target_i = wtot * speeds_i / sum(speeds). On a
// heterogeneous cluster this is the optimum the even split misses — a PE
// twice as fast should own twice the work (Lastovetsky & Szustak), so the
// deliberately non-uniform partition equalizes compute *time*, not work.
func ProportionalTargets(wtot float64, speeds []float64) []float64 {
	total := 0.0
	for i, s := range speeds {
		if s <= 0 {
			panic(fmt.Sprintf("partition: non-positive speed %g at %d", s, i))
		}
		total += s
	}
	out := make([]float64, len(speeds))
	for i, s := range speeds {
		out[i] = wtot * s / total
	}
	return out
}

// Stripes cuts the columns into len(targets) contiguous stripes whose
// weights track the targets. Boundaries has length P+1 with Boundaries[0]=0
// and Boundaries[P]=len(colWeights); stripe p owns columns
// [Boundaries[p], Boundaries[p+1]).
//
// The cut after stripe p is placed at the column where the cumulative weight
// best approximates the cumulative target, which keeps the error of every
// stripe below one column's weight. Targets are rescaled to the actual total
// weight first, so callers may pass stale totals safely.
func Stripes(colWeights []float64, targets []float64) []int {
	p := len(targets)
	cols := len(colWeights)
	if p == 0 {
		panic("partition: no targets")
	}
	bounds := make([]int, p+1)
	bounds[p] = cols
	if cols == 0 {
		return bounds
	}
	total := 0.0
	cum := make([]float64, cols+1)
	for i, w := range colWeights {
		if w < 0 {
			panic(fmt.Sprintf("partition: negative column weight %g at %d", w, i))
		}
		total += w
		cum[i+1] = total
	}
	tSum := 0.0
	for _, t := range targets {
		if t < 0 {
			panic(fmt.Sprintf("partition: negative target %g", t))
		}
		tSum += t
	}
	scale := 0.0
	if tSum > 0 {
		scale = total / tSum
	}
	tCum := 0.0
	for i := 0; i < p-1; i++ {
		tCum += targets[i] * scale
		// Binary search the cumulative weights for tCum, then choose
		// the neighbor with the smaller error.
		j := sort.SearchFloat64s(cum, tCum)
		if j > 0 && (j > cols || cum[j]-tCum >= tCum-cum[j-1]) {
			j--
		}
		// Keep boundaries monotone and leave at least zero columns.
		if j < bounds[i] {
			j = bounds[i]
		}
		if j > cols {
			j = cols
		}
		bounds[i+1] = j
	}
	return bounds
}

// Validate checks structural boundary invariants.
func Validate(bounds []int, cols int) error {
	if len(bounds) < 2 {
		return fmt.Errorf("partition: boundaries too short: %v", bounds)
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != cols {
		return fmt.Errorf("partition: boundaries must span [0, %d]: %v", cols, bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return fmt.Errorf("partition: boundaries not monotone: %v", bounds)
		}
	}
	return nil
}

// StripeWeights returns the actual weight of each stripe under bounds.
func StripeWeights(colWeights []float64, bounds []int) []float64 {
	p := len(bounds) - 1
	out := make([]float64, p)
	for i := 0; i < p; i++ {
		for c := bounds[i]; c < bounds[i+1]; c++ {
			out[i] += colWeights[c]
		}
	}
	return out
}

// Imbalance returns max/mean - 1 of the stripe weights: 0 for a perfect
// balance. An empty or zero-weight partition reports 0.
func Imbalance(weights []float64) float64 {
	if len(weights) == 0 {
		return 0
	}
	var sum, max float64
	for _, w := range weights {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(weights))
	return max/mean - 1
}

// OwnerOf returns the stripe owning column col under bounds.
func OwnerOf(bounds []int, col int) int {
	if col < 0 || col >= bounds[len(bounds)-1] {
		panic(fmt.Sprintf("partition: column %d outside domain %v", col, bounds))
	}
	// Find the last boundary <= col.
	lo, hi := 0, len(bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if bounds[mid] <= col {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Skip empty stripes: the owner is the stripe whose range contains
	// col, i.e. bounds[lo] <= col < bounds[lo+1].
	for bounds[lo+1] <= col {
		lo++
	}
	return lo
}

// Transfer describes a contiguous column range moving between PEs during
// migration.
type Transfer struct {
	From, To int
	Lo, Hi   int // column range [Lo, Hi)
}

// Transfers computes the migration plan between two partitions of the same
// domain: every column whose owner changes appears in exactly one transfer,
// and transfers are maximal contiguous runs sorted by column. Both
// boundary slices must cover the same number of columns.
func Transfers(oldBounds, newBounds []int) []Transfer {
	cols := oldBounds[len(oldBounds)-1]
	if newBounds[len(newBounds)-1] != cols {
		panic("partition: transfer plans need identical domains")
	}
	var plan []Transfer
	col := 0
	for col < cols {
		from := OwnerOf(oldBounds, col)
		to := OwnerOf(newBounds, col)
		// Extend the run while ownership is stable.
		end := col + 1
		for end < cols && OwnerOf(oldBounds, end) == from && OwnerOf(newBounds, end) == to {
			end++
		}
		if from != to {
			plan = append(plan, Transfer{From: from, To: to, Lo: col, Hi: end})
		}
		col = end
	}
	return plan
}

// EnsureMinCols adjusts boundaries so every stripe owns at least min
// columns, preserving validity. The domain must have at least
// (len(bounds)-1)*min columns. Distributed applications with nearest-
// neighbor halo exchange need this: an empty stripe would break the
// assumption that rank r's left neighbor column lives on rank r-1.
func EnsureMinCols(bounds []int, min int) []int {
	p := len(bounds) - 1
	cols := bounds[p]
	if min <= 0 {
		return append([]int(nil), bounds...)
	}
	if cols < p*min {
		panic(fmt.Sprintf("partition: %d columns cannot give %d stripes %d columns each", cols, p, min))
	}
	out := append([]int(nil), bounds...)
	for i := 1; i < p; i++ { // push right: at least min columns per stripe
		if out[i] < out[i-1]+min {
			out[i] = out[i-1] + min
		}
	}
	for i := p - 1; i >= 1; i-- { // pull back from the right edge
		if out[i] > out[i+1]-min {
			out[i] = out[i+1] - min
		}
	}
	return out
}

// RecursiveBisection splits the columns into p stripes by recursively
// bisecting the weight, the 1D analogue of recursive coordinate bisection.
// Provided as an ablation alternative to Stripes; both produce boundary
// vectors with identical invariants.
func RecursiveBisection(colWeights []float64, p int) []int {
	if p <= 0 {
		panic("partition: need at least one part")
	}
	bounds := make([]int, 0, p+1)
	bounds = append(bounds, 0)
	bisect(colWeights, 0, len(colWeights), p, &bounds)
	return bounds
}

func bisect(w []float64, lo, hi, parts int, bounds *[]int) {
	if parts == 1 {
		*bounds = append(*bounds, hi)
		return
	}
	leftParts := parts / 2
	rightParts := parts - leftParts
	var total float64
	for c := lo; c < hi; c++ {
		total += w[c]
	}
	want := total * float64(leftParts) / float64(parts)
	acc := 0.0
	cut := lo
	for cut < hi && acc+w[cut] <= want {
		acc += w[cut]
		cut++
	}
	// Leave room for the right parts if weights are degenerate.
	if hi-cut < 0 {
		cut = hi
	}
	bisect(w, lo, cut, leftParts, bounds)
	bisect(w, cut, hi, rightParts, bounds)
}
