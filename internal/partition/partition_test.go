package partition

import (
	"math"
	"testing"
	"testing/quick"

	"ulba/internal/stats"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestTargetsEvenWhenNoOverload(t *testing.T) {
	got := Targets(100, []float64{0, 0, 0, 0})
	for _, w := range got {
		if w != 25 {
			t.Fatalf("Targets = %v, want all 25", got)
		}
	}
}

func TestTargetsULBAWeights(t *testing.T) {
	// P=4, one overloading PE with alpha=0.4: it keeps 0.6*share; the
	// other three each gain 0.4*share/3.
	got := Targets(100, []float64{0, 0.4, 0, 0})
	share := 25.0
	if !almostEqual(got[1], 0.6*share, 1e-12) {
		t.Errorf("overloading target = %v, want %v", got[1], 0.6*share)
	}
	extra := 0.4 * share / 3
	for _, i := range []int{0, 2, 3} {
		if !almostEqual(got[i], share+extra, 1e-12) {
			t.Errorf("normal target[%d] = %v, want %v", i, got[i], share+extra)
		}
	}
}

func TestTargetsConserveWorkload(t *testing.T) {
	cases := [][]float64{
		{0, 0, 0},
		{0.5, 0, 0, 0, 0},
		{0.2, 0.9, 0, 0, 0, 0, 0},
		{1, 0, 0},
		{0.3, 0.3, 0.3}, // all overloading: falls back to even
	}
	for _, alphas := range cases {
		got := Targets(123.5, alphas)
		if !almostEqual(stats.Sum(got), 123.5, 1e-9) {
			t.Errorf("alphas %v: targets %v sum to %v, want 123.5", alphas, got, stats.Sum(got))
		}
	}
}

func TestTargetsMajorityRule(t *testing.T) {
	// 2 of 4 overloading = 50%: counter-productive, use even split.
	got := Targets(100, []float64{0.5, 0.5, 0, 0})
	for _, w := range got {
		if w != 25 {
			t.Fatalf("majority rule not applied: %v", got)
		}
	}
	// 1 of 4 (25%) is fine.
	got = Targets(100, []float64{0.5, 0, 0, 0})
	if got[0] != 12.5 {
		t.Errorf("minority overloading should be underloaded: %v", got)
	}
}

func TestTargetsPanicsOnBadAlpha(t *testing.T) {
	for _, bad := range [][]float64{{-0.1, 0}, {1.5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alphas %v should panic", bad)
				}
			}()
			Targets(10, bad)
		}()
	}
}

func TestTargetsEmpty(t *testing.T) {
	if got := Targets(10, nil); got != nil {
		t.Errorf("empty alphas should give nil targets, got %v", got)
	}
}

func TestStripesEvenSplit(t *testing.T) {
	w := make([]float64, 100)
	for i := range w {
		w[i] = 1
	}
	bounds := Stripes(w, EvenTargets(100, 4))
	want := []int{0, 25, 50, 75, 100}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
	if err := Validate(bounds, 100); err != nil {
		t.Fatal(err)
	}
}

func TestStripesWeighted(t *testing.T) {
	// Heavy columns on the left: the left stripe must be narrow.
	w := make([]float64, 10)
	for i := range w {
		if i < 5 {
			w[i] = 9
		} else {
			w[i] = 1
		}
	}
	bounds := Stripes(w, EvenTargets(50, 2))
	// Total 50; even split wants 25 each: cut near column 3 (27 vs 25).
	if bounds[1] < 2 || bounds[1] > 4 {
		t.Errorf("cut at %d, want near 3 (bounds %v)", bounds[1], bounds)
	}
	sw := StripeWeights(w, bounds)
	if !almostEqual(stats.Sum(sw), 50, 1e-12) {
		t.Errorf("stripe weights %v do not conserve total", sw)
	}
}

func TestStripesMatchTargetsWithinOneColumn(t *testing.T) {
	rng := stats.NewRNG(5)
	w := make([]float64, 200)
	maxCol := 0.0
	for i := range w {
		w[i] = rng.Uniform(0, 10)
		if w[i] > maxCol {
			maxCol = w[i]
		}
	}
	targets := []float64{10, 30, 20, 40} // rescaled internally
	bounds := Stripes(w, targets)
	if err := Validate(bounds, 200); err != nil {
		t.Fatal(err)
	}
	total := stats.Sum(w)
	sw := StripeWeights(w, bounds)
	tSum := stats.Sum(targets)
	cumErr := 0.0
	for i := range targets {
		cumErr += sw[i] - targets[i]*total/tSum
		if math.Abs(cumErr) > maxCol {
			t.Errorf("stripe %d cumulative error %v exceeds one column (%v)", i, cumErr, maxCol)
		}
	}
}

func TestStripesZeroTargetGetsNearNothing(t *testing.T) {
	w := []float64{1, 1, 1, 1, 1, 1}
	bounds := Stripes(w, []float64{0, 3, 3})
	sw := StripeWeights(w, bounds)
	if sw[0] > 1 {
		t.Errorf("zero-target stripe got weight %v (bounds %v)", sw[0], bounds)
	}
}

func TestStripesEmptyDomain(t *testing.T) {
	bounds := Stripes(nil, EvenTargets(0, 3))
	if err := Validate(bounds, 0); err != nil {
		t.Fatal(err)
	}
}

func TestStripesPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"noTargets":      func() { Stripes([]float64{1}, nil) },
		"negativeWeight": func() { Stripes([]float64{-1}, []float64{1}) },
		"negativeTarget": func() { Stripes([]float64{1}, []float64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]int{0, 5, 10}, 10); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
	if err := Validate([]int{0, 5}, 10); err == nil {
		t.Error("short coverage accepted")
	}
	if err := Validate([]int{1, 5, 10}, 10); err == nil {
		t.Error("bounds not starting at 0 accepted")
	}
	if err := Validate([]int{0, 7, 5, 10}, 10); err == nil {
		t.Error("non-monotone bounds accepted")
	}
	if err := Validate([]int{0}, 0); err == nil {
		t.Error("single-entry bounds accepted")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{10, 10, 10}); got != 0 {
		t.Errorf("perfect balance imbalance = %v", got)
	}
	if got := Imbalance([]float64{20, 10, 0}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("imbalance = %v, want 1 (max 20 / mean 10)", got)
	}
	if Imbalance(nil) != 0 || Imbalance([]float64{0, 0}) != 0 {
		t.Error("degenerate imbalance should be 0")
	}
}

func TestOwnerOf(t *testing.T) {
	bounds := []int{0, 3, 3, 7, 10} // stripe 1 is empty
	wants := map[int]int{0: 0, 2: 0, 3: 2, 6: 2, 7: 3, 9: 3}
	for col, want := range wants {
		if got := OwnerOf(bounds, col); got != want {
			t.Errorf("OwnerOf(%d) = %d, want %d", col, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-domain column should panic")
		}
	}()
	OwnerOf(bounds, 10)
}

func TestTransfers(t *testing.T) {
	oldB := []int{0, 5, 10}
	newB := []int{0, 3, 10}
	plan := Transfers(oldB, newB)
	// Columns 3..4 move from PE 0 to PE 1.
	if len(plan) != 1 {
		t.Fatalf("plan = %+v, want one transfer", plan)
	}
	tr := plan[0]
	if tr.From != 0 || tr.To != 1 || tr.Lo != 3 || tr.Hi != 5 {
		t.Errorf("transfer = %+v, want {0 1 3 5}", tr)
	}
	// Identical partitions need no transfers.
	if got := Transfers(oldB, oldB); len(got) != 0 {
		t.Errorf("identity plan should be empty, got %+v", got)
	}
}

func TestTransfersCoverEveryMovedColumnOnce(t *testing.T) {
	rng := stats.NewRNG(9)
	for trial := 0; trial < 50; trial++ {
		cols := 30 + rng.Intn(50)
		p := 2 + rng.Intn(6)
		w := make([]float64, cols)
		for i := range w {
			w[i] = rng.Uniform(0.1, 5)
		}
		oldB := Stripes(w, EvenTargets(stats.Sum(w), p))
		//

		alphas := make([]float64, p)
		alphas[rng.Intn(p)] = 0.5
		newB := Stripes(w, Targets(stats.Sum(w), alphas))
		plan := Transfers(oldB, newB)
		covered := make([]int, cols)
		for _, tr := range plan {
			if tr.From == tr.To {
				t.Fatalf("self transfer: %+v", tr)
			}
			for c := tr.Lo; c < tr.Hi; c++ {
				covered[c]++
				if OwnerOf(oldB, c) != tr.From || OwnerOf(newB, c) != tr.To {
					t.Fatalf("transfer %+v mislabels column %d", tr, c)
				}
			}
		}
		for c := 0; c < cols; c++ {
			moved := OwnerOf(oldB, c) != OwnerOf(newB, c)
			if moved && covered[c] != 1 {
				t.Fatalf("moved column %d covered %d times", c, covered[c])
			}
			if !moved && covered[c] != 0 {
				t.Fatalf("static column %d appears in plan", c)
			}
		}
	}
}

func TestTransfersPanicsOnMismatchedDomains(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched domains should panic")
		}
	}()
	Transfers([]int{0, 5}, []int{0, 6})
}

func TestRecursiveBisectionEven(t *testing.T) {
	w := make([]float64, 64)
	for i := range w {
		w[i] = 1
	}
	bounds := RecursiveBisection(w, 4)
	if err := Validate(bounds, 64); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 16, 32, 48, 64}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("RCB bounds = %v, want %v", bounds, want)
		}
	}
}

func TestRecursiveBisectionOddParts(t *testing.T) {
	w := make([]float64, 90)
	for i := range w {
		w[i] = 1
	}
	bounds := RecursiveBisection(w, 3)
	if err := Validate(bounds, 90); err != nil {
		t.Fatal(err)
	}
	sw := StripeWeights(w, bounds)
	if Imbalance(sw) > 0.1 {
		t.Errorf("RCB imbalance %v too high: %v", Imbalance(sw), sw)
	}
}

func TestRecursiveBisectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RCB with p=0 should panic")
		}
	}()
	RecursiveBisection([]float64{1}, 0)
}

// Property: stripes always form a valid partition, conserve the total
// weight, and with even targets keep imbalance below the heaviest column's
// share.
func TestStripesInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		cols := 1 + rng.Intn(300)
		p := 1 + rng.Intn(16)
		w := make([]float64, cols)
		for i := range w {
			w[i] = rng.Uniform(0, 4)
		}
		bounds := Stripes(w, EvenTargets(stats.Sum(w), p))
		if Validate(bounds, cols) != nil {
			return false
		}
		sw := StripeWeights(w, bounds)
		return almostEqual(stats.Sum(sw), stats.Sum(w), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: RecursiveBisection produces valid, conserving partitions too.
func TestRCBInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		cols := 1 + rng.Intn(200)
		p := 1 + rng.Intn(12)
		w := make([]float64, cols)
		for i := range w {
			w[i] = rng.Uniform(0, 4)
		}
		bounds := RecursiveBisection(w, p)
		if Validate(bounds, cols) != nil {
			return false
		}
		sw := StripeWeights(w, bounds)
		return almostEqual(stats.Sum(sw), stats.Sum(w), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEnsureMinCols(t *testing.T) {
	// Stripe 1 is empty, stripe 2 tiny.
	bounds := []int{0, 5, 5, 6, 20}
	out := EnsureMinCols(bounds, 2)
	if err := Validate(out, 20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(out)-1; i++ {
		if out[i+1]-out[i] < 2 {
			t.Fatalf("stripe %d has %d columns: %v", i, out[i+1]-out[i], out)
		}
	}
	// Input is not mutated.
	if bounds[1] != 5 || bounds[2] != 5 {
		t.Error("EnsureMinCols mutated its input")
	}
	// min <= 0 is a copy.
	same := EnsureMinCols(bounds, 0)
	for i := range bounds {
		if same[i] != bounds[i] {
			t.Fatal("min=0 should copy unchanged")
		}
	}
}

func TestEnsureMinColsTightFit(t *testing.T) {
	// Exactly P*min columns: the only valid answer is even.
	bounds := []int{0, 0, 0, 0, 8}
	out := EnsureMinCols(bounds, 2)
	want := []int{0, 2, 4, 6, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("tight fit = %v, want %v", out, want)
		}
	}
}

func TestEnsureMinColsPanicsWhenImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("impossible min should panic")
		}
	}()
	EnsureMinCols([]int{0, 1, 3}, 2)
}

// Property: EnsureMinCols output is always valid with every stripe >= min,
// for feasible inputs.
func TestEnsureMinColsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := 1 + rng.Intn(10)
		min := 1 + rng.Intn(3)
		cols := p*min + rng.Intn(50)
		w := make([]float64, cols)
		for i := range w {
			w[i] = rng.Uniform(0, 3)
		}
		bounds := Stripes(w, EvenTargets(stats.Sum(w), p))
		out := EnsureMinCols(bounds, min)
		if Validate(out, cols) != nil {
			return false
		}
		for i := 0; i < p; i++ {
			if out[i+1]-out[i] < min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
