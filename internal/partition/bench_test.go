package partition

import (
	"testing"

	"ulba/internal/stats"
)

func benchWeights(n int) []float64 {
	rng := stats.NewRNG(1)
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Uniform(50, 500)
	}
	return w
}

func BenchmarkStripes(b *testing.B) {
	w := benchWeights(8192)
	targets := EvenTargets(stats.Sum(w), 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Stripes(w, targets)
	}
}

func BenchmarkTargets(b *testing.B) {
	alphas := make([]float64, 256)
	alphas[7] = 0.4
	alphas[42] = 0.4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Targets(1e9, alphas)
	}
}

func BenchmarkTransfers(b *testing.B) {
	w := benchWeights(8192)
	oldB := Stripes(w, EvenTargets(stats.Sum(w), 64))
	alphas := make([]float64, 64)
	alphas[10] = 0.4
	newB := Stripes(w, Targets(stats.Sum(w), alphas))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Transfers(oldB, newB)
	}
}

func BenchmarkRecursiveBisection(b *testing.B) {
	w := benchWeights(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = RecursiveBisection(w, 64)
	}
}
