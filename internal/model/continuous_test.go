package model

import (
	"testing"
	"testing/quick"
)

func TestContinuousMatchesDiscreteStd(t *testing.T) {
	p := refParams()
	// Discrete sum over one interval of length L with iteration times at
	// t = 0..L-1 versus the continuous integral over [0, L]: the
	// integral of a linear ramp differs from the left Riemann sum by
	// exactly half the total rise plus nothing else.
	const L = 37
	discrete := 0.0
	for tt := 0; tt < L; tt++ {
		discrete += p.StdIterTime(0, tt)
	}
	cont := p.StdIntervalTimeContinuous(0, L)
	rise := (p.M + p.A) * L / p.Omega
	if diff := cont - discrete; diff < 0 || diff > rise {
		t.Errorf("continuous-discrete gap %g outside [0, %g]", diff, rise)
	}
}

func TestContinuousULBABranches(t *testing.T) {
	p := refParams()
	sm, err := p.SigmaMinus(0)
	if err != nil {
		t.Fatal(err)
	}
	// Before the crossing, only the first branch contributes: the value
	// at length sigma- must equal the single-branch formula.
	short := p.ULBAIntervalTimeContinuous(0, float64(sm)/2)
	over := p.Alpha * float64(p.N) / float64(p.P-p.N)
	share := p.W0 / float64(p.P)
	l := float64(sm) / 2
	want := ((1+over)*share*l + p.A*l*l/2) / p.Omega
	if !almostEqual(short, want, 1e-12) {
		t.Errorf("pre-crossing integral = %g, want %g", short, want)
	}
	// The integral is continuous at the crossing.
	eps := 1e-6
	below := p.ULBAIntervalTimeContinuous(0, float64(sm)-eps)
	above := p.ULBAIntervalTimeContinuous(0, float64(sm)+eps)
	if !almostEqual(below, above, 1e-6) {
		t.Errorf("integral discontinuous at sigma-: %g vs %g", below, above)
	}
}

func TestContinuousTotalAccountsLBCost(t *testing.T) {
	p := refParams()
	none := p.TotalTimeContinuous(nil, false)
	one := p.TotalTimeContinuous([]int{50}, false)
	// Adding a mid-run LB with huge C must cost ~C net of savings.
	p2 := p
	p2.C = 1e9
	if got := p2.TotalTimeContinuous([]int{50}, false) - p2.TotalTimeContinuous(nil, false); got < 1e9/2 {
		t.Errorf("LB cost not accounted: %g", got)
	}
	if none <= 0 || one <= 0 {
		t.Error("continuous totals must be positive")
	}
}

func TestContinuousULBANoOverload(t *testing.T) {
	p := refParams()
	p.N = 0
	p.M = 0
	p.DeltaW = p.A * float64(p.P)
	got := p.ULBAIntervalTimeContinuous(0, 10)
	want := p.StdIntervalTimeContinuous(0, 10)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("no-overload ULBA integral %g != std %g", got, want)
	}
}

// Property: for any Table II-like instance and schedule, the continuous and
// discrete totals agree within gamma iterations' worth of ramp rise (the
// Riemann gap), for both methods.
func TestContinuousDiscreteGapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomParams(seed)
		lbIters := []int{p.Gamma / 3, 2 * p.Gamma / 3}
		for _, ulba := range []bool{false, true} {
			var discrete float64
			prev := 0
			intervals := append(append([]int(nil), lbIters...), p.Gamma)
			for k, next := range intervals {
				if k > 0 {
					discrete += p.C
				}
				for tt := 0; tt < next-prev; tt++ {
					if ulba {
						discrete += p.ULBAIterTime(prev, tt)
					} else {
						discrete += p.StdIterTime(prev, tt)
					}
				}
				prev = next
			}
			cont := p.TotalTimeContinuous(lbIters, ulba)
			// The gap per interval is bounded by the rise of the ramp
			// over that interval plus one iteration's base time
			// (branch-crossing rounding).
			bound := (p.M+p.A)*float64(p.Gamma)/p.Omega*3 + 3*p.Wtot(p.Gamma)/(float64(p.P)*p.Omega)
			diff := cont - discrete
			if diff < -bound || diff > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
