package model

// Continuous-time counterparts of the interval sums. The paper notes that
// its Eq. (4) is "a discrete version of the continuous expression proposed
// by Menon et al."; both forms are provided so the discretization error is
// measurable (it is bounded by half of one iteration's time per interval,
// verified by tests).

// StdIntervalTimeContinuous integrates Eq. (2) over an interval of length
// iterations starting right after a LB step at lbp, without the LB cost:
// integral_0^L [Wtot(lbp)/P + (m+a)t] / omega dt.
func (p Params) StdIntervalTimeContinuous(lbp int, length float64) float64 {
	share := p.Wtot(lbp) / float64(p.P)
	return (share*length + (p.M+p.A)*length*length/2) / p.Omega
}

// ULBAIntervalTimeContinuous integrates Eq. (5) over an interval of length
// iterations starting right after a ULBA LB step at lbp, without the LB
// cost. The integrand switches branch at sigma-(lbp).
func (p Params) ULBAIntervalTimeContinuous(lbp int, length float64) float64 {
	share := p.Wtot(lbp) / float64(p.P)
	sm, err := p.SigmaMinus(lbp)
	if err != nil {
		// No overloading PEs: the underloaded branch never ends.
		over := p.Alpha * float64(p.N) / float64(p.P-p.N)
		if p.N == 0 {
			over = 0
		}
		return ((1+over)*share*length + p.A*length*length/2) / p.Omega
	}
	cross := float64(sm)
	over := p.Alpha * float64(p.N) / float64(p.P-p.N)
	if length <= cross {
		return ((1+over)*share*length + p.A*length*length/2) / p.Omega
	}
	first := ((1+over)*share*cross + p.A*cross*cross/2) / p.Omega
	tail := length - cross
	// Second branch, integrated from cross to length:
	// (1-alpha)*share + (m+a)t  for t in [cross, length].
	second := ((1-p.Alpha)*share*tail + (p.M+p.A)*(length*length-cross*cross)/2) / p.Omega
	return first + second
}

// TotalTimeContinuous evaluates a schedule with the continuous interval
// integrals: the sum over intervals of C plus the integral of the
// per-iteration time, using the standard (Eq. 2) or ULBA (Eq. 5) integrand.
// Schedules follow the same convention as package schedule: the listed
// iterations pay C and reset the ramp; the first interval starts free at 0.
func (p Params) TotalTimeContinuous(lbIters []int, ulba bool) float64 {
	total := 0.0
	prev := 0
	intervals := append(append([]int(nil), lbIters...), p.Gamma)
	for k, next := range intervals {
		if k > 0 {
			total += p.C
		}
		length := float64(next - prev)
		if ulba {
			total += p.ULBAIntervalTimeContinuous(prev, length)
		} else {
			total += p.StdIntervalTimeContinuous(prev, length)
		}
		prev = next
	}
	return total
}
