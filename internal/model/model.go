// Package model implements the analytic application model of the paper
// (Sections II and III): the workload evolution of Eq. (1), the per-iteration
// parallel time of the standard load-balancing method (Eq. 2) and of ULBA
// (Eq. 5), the load-balancing interval lower bound sigma- (Eq. 8), the upper
// bound sigma+ obtained from the quadratic Eq. (12), and Menon's optimal
// interval tau = sqrt(2*C*omega/m^) as the alpha = 0 special case.
//
// Conventions. Workloads are measured in FLOP, PE speed omega in FLOP/s, and
// the LB cost C in seconds, so all returned times are in seconds. Iterations
// are indexed from 0, and "t" always denotes the number of iterations elapsed
// since the previous LB step, exactly as in the paper.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Params collects the application parameters of Table I of the paper.
type Params struct {
	P     int     // number of processing elements
	N     int     // number of overloading PEs (0 <= N < P)
	Gamma int     // number of iterations the application runs
	W0    float64 // initial total workload Wtot(0), FLOP
	// DeltaW is the workload difference between consecutive iterations:
	// DeltaW = a*P + m*N (Eq. 1 context).
	DeltaW float64
	A      float64 // workload added to every PE at each iteration, FLOP
	M      float64 // extra workload added to each overloading PE, FLOP
	Alpha  float64 // fraction of the balanced share removed from overloading PEs
	Omega  float64 // PE speed, FLOP/s
	C      float64 // cost of one LB step, seconds
}

// Validate checks the structural constraints the model relies on.
func (p Params) Validate() error {
	switch {
	case p.P <= 0:
		return fmt.Errorf("model: P = %d, must be positive", p.P)
	case p.N < 0 || p.N >= p.P:
		return fmt.Errorf("model: N = %d, must satisfy 0 <= N < P (P=%d)", p.N, p.P)
	case p.Gamma <= 0:
		return fmt.Errorf("model: Gamma = %d, must be positive", p.Gamma)
	case p.W0 < 0:
		return fmt.Errorf("model: W0 = %g, must be non-negative", p.W0)
	case p.A < 0 || p.M < 0:
		return fmt.Errorf("model: a = %g, m = %g, must be non-negative", p.A, p.M)
	case p.Alpha < 0 || p.Alpha > 1:
		return fmt.Errorf("model: alpha = %g, must be in [0, 1]", p.Alpha)
	case p.Omega <= 0:
		return fmt.Errorf("model: omega = %g, must be positive", p.Omega)
	case p.C < 0:
		return fmt.Errorf("model: C = %g, must be non-negative", p.C)
	}
	if want := p.A*float64(p.P) + p.M*float64(p.N); !closeRel(p.DeltaW, want, 1e-6) {
		return fmt.Errorf("model: DeltaW = %g inconsistent with a*P + m*N = %g", p.DeltaW, want)
	}
	return nil
}

// ErrNoOverload is returned by interval computations when m = 0 or N = 0:
// without overloading PEs no imbalance accrues and no LB interval exists
// ("if there is no overloading PE then there is no reason to use ULBA").
var ErrNoOverload = errors.New("model: no overloading PEs (m = 0 or N = 0), intervals are unbounded")

func closeRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// Wtot returns the total workload at iteration i, Eq. (1):
// Wtot(i) = Wtot(0) + i*DeltaW. The workload is conserved globally no matter
// which LB policy runs; policies only move it between PEs.
func (p Params) Wtot(i int) float64 {
	return p.W0 + float64(i)*p.DeltaW
}

// AHat returns the average workload increase rate of Menon et al.:
// a^ = a + m*N/P.
func (p Params) AHat() float64 {
	return p.A + p.M*float64(p.N)/float64(p.P)
}

// MHat returns the workload increase rate, additional to AHat, of the most
// loaded PEs: m^ = m*(P-N)/P. With no overloading PEs (N = 0) nobody
// receives m, so the rate is zero regardless of m.
func (p Params) MHat() float64 {
	if p.N == 0 {
		return 0
	}
	return p.M * float64(p.P-p.N) / float64(p.P)
}

// StdIterTime returns Eq. (2): the parallel time of the t-th iteration after
// a LB step performed at iteration lbp under the standard method, where the
// whole workload was spread evenly and the most loaded PE accumulates
// (m + a) extra FLOP per iteration.
func (p Params) StdIterTime(lbp, t int) float64 {
	return (p.Wtot(lbp)/float64(p.P) + (p.M+p.A)*float64(t)) / p.Omega
}

// ULBAIterTime returns Eq. (5): the parallel time of the t-th iteration after
// a ULBA LB step at iteration lbp. For t <= sigma-(lbp) the non-overloading
// PEs dominate (they received the extra share (1 + alpha*N/(P-N)) * Wtot/P
// and grow at rate a); afterwards the overloading PEs have caught up and
// dominate (they restarted from (1 - alpha) * Wtot/P and grow at rate m + a).
func (p Params) ULBAIterTime(lbp, t int) float64 {
	share := p.Wtot(lbp) / float64(p.P)
	sm, err := p.SigmaMinus(lbp)
	if err != nil {
		// No overloading PEs: everybody grows at rate a forever and the
		// "underloaded" branch never ends.
		sm = math.MaxInt64
	}
	if t <= sm {
		over := p.Alpha * float64(p.N) / float64(p.P-p.N)
		return ((1+over)*share + p.A*float64(t)) / p.Omega
	}
	return ((1-p.Alpha)*share + (p.M+p.A)*float64(t)) / p.Omega
}

// SigmaMinus returns Eq. (8): the number of iterations, after a LB step at
// iteration i, for the overloading PEs to accumulate the same load as the
// others. Before sigma- there is no gain in calling the load balancer again
// because no degradation has built up yet.
func (p Params) SigmaMinus(i int) (int, error) {
	if p.N == 0 || p.M == 0 {
		return 0, ErrNoOverload
	}
	v := (1 + float64(p.N)/float64(p.P-p.N)) * p.Alpha * p.Wtot(i) / (p.M * float64(p.P))
	return int(math.Floor(v)), nil
}

// MenonTau returns the optimal LB interval of Menon et al. [6],
// tau = sqrt(2*C*omega/m^), which is also SigmaPlus at alpha = 0.
func (p Params) MenonTau() (float64, error) {
	mh := p.MHat()
	if mh == 0 {
		return math.Inf(1), ErrNoOverload
	}
	return math.Sqrt(2 * p.C * p.Omega / mh), nil
}

// SigmaPlus returns the LB upper bound of Section III-B for a LB step
// performed at iteration lbp: sigma+(lbp) = sigma-(lbp) + max(tau1, tau2)
// where tau solves the quadratic Eq. (12),
//
//	m^/(2w)*tau^2 - alpha*N*DeltaW/((P-N)*w*P)*tau
//	  - [alpha*N/(P-N) * (Wtot(lbp)+sigma-*DeltaW)/(w*P) + C] = 0.
//
// The returned value is in (fractional) iterations since the LB step.
func (p Params) SigmaPlus(lbp int) (float64, error) {
	mh := p.MHat()
	if mh == 0 || p.N == 0 || p.M == 0 {
		return math.Inf(1), ErrNoOverload
	}
	sm, err := p.SigmaMinus(lbp)
	if err != nil {
		return math.Inf(1), err
	}
	w := p.Omega
	pn := float64(p.P - p.N)
	fp := float64(p.P)
	a2 := mh / (2 * w)
	b2 := -p.Alpha * float64(p.N) * p.DeltaW / (pn * w * fp)
	c2 := -(p.Alpha*float64(p.N)/pn*(p.Wtot(lbp)+float64(sm)*p.DeltaW)/(w*fp) + p.C)
	tau, err := maxQuadraticRoot(a2, b2, c2)
	if err != nil {
		return math.Inf(1), err
	}
	return float64(sm) + tau, nil
}

// maxQuadraticRoot returns the larger real root of a*x^2 + b*x + c = 0.
func maxQuadraticRoot(a, b, c float64) (float64, error) {
	if a == 0 {
		if b == 0 {
			return 0, errors.New("model: degenerate quadratic")
		}
		return -c / b, nil
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, errors.New("model: quadratic has no real roots")
	}
	s := math.Sqrt(disc)
	r1 := (-b + s) / (2 * a)
	r2 := (-b - s) / (2 * a)
	return math.Max(r1, r2), nil
}

// Imbalance cost and overhead — the two sides of the trigger Eq. (9).

// CostImbalance returns Eq. (10): the load-imbalance cost accumulated over
// tau iterations past sigma-, integral of m^*t/omega dt = m^*tau^2/(2*omega),
// in seconds.
func (p Params) CostImbalance(tau float64) float64 {
	return p.MHat() * tau * tau / (2 * p.Omega)
}

// CostOverhead returns Eq. (11): the ULBA overhead over an interval that
// starts at lbp and triggers the next LB at lbp + sigma-(lbp) + tau. It is
// the workload a single non-overloading PE will gather from the overloading
// PEs at that next LB step, expressed in seconds.
func (p Params) CostOverhead(lbp int, tau float64) float64 {
	sm, err := p.SigmaMinus(lbp)
	if err != nil {
		sm = 0
	}
	next := p.Wtot(lbp) + (float64(sm)+tau)*p.DeltaW
	return p.Alpha * float64(p.N) / float64(p.P-p.N) * next / (p.Omega * float64(p.P))
}

// WithAlpha returns a copy of the parameters with a different alpha.
func (p Params) WithAlpha(alpha float64) Params {
	p.Alpha = alpha
	return p
}

// String renders the parameters compactly for logs and experiment tables.
func (p Params) String() string {
	return fmt.Sprintf("P=%d N=%d gamma=%d W0=%.4g dW=%.4g a=%.4g m=%.4g alpha=%.3f omega=%.3g C=%.4g",
		p.P, p.N, p.Gamma, p.W0, p.DeltaW, p.A, p.M, p.Alpha, p.Omega, p.C)
}
