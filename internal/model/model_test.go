package model

import (
	"math"
	"testing"
	"testing/quick"

	"ulba/internal/stats"
)

// refParams builds a representative, hand-checkable instance:
// P=256 PEs, N=25 overloading, 1e9 FLOP/PE initial workload, 10% growth.
func refParams() Params {
	p := Params{
		P:     256,
		N:     25,
		Gamma: 100,
		W0:    2.56e11,
		Omega: 1e9,
		Alpha: 0.5,
	}
	p.DeltaW = 0.1 * p.W0 / float64(p.P) // 1e8
	y := 0.9
	p.A = p.DeltaW * (1 - y) / float64(p.P)
	p.M = p.DeltaW * y / float64(p.N)
	p.C = 0.5 * p.W0 / (float64(p.P) * p.Omega)
	return p
}

func TestValidateAccepts(t *testing.T) {
	if err := refParams().Validate(); err != nil {
		t.Fatalf("reference params invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := refParams()
	cases := map[string]func(*Params){
		"P=0":           func(p *Params) { p.P = 0 },
		"N<0":           func(p *Params) { p.N = -1 },
		"N=P":           func(p *Params) { p.N = p.P },
		"Gamma=0":       func(p *Params) { p.Gamma = 0 },
		"W0<0":          func(p *Params) { p.W0 = -1 },
		"a<0":           func(p *Params) { p.A = -1 },
		"m<0":           func(p *Params) { p.M = -1 },
		"alpha<0":       func(p *Params) { p.Alpha = -0.1 },
		"alpha>1":       func(p *Params) { p.Alpha = 1.1 },
		"omega=0":       func(p *Params) { p.Omega = 0 },
		"C<0":           func(p *Params) { p.C = -1 },
		"DeltaW broken": func(p *Params) { p.DeltaW *= 3 },
	}
	for name, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", name)
		}
	}
}

func TestWtotLinear(t *testing.T) {
	p := refParams()
	if got := p.Wtot(0); got != p.W0 {
		t.Errorf("Wtot(0) = %g, want %g", got, p.W0)
	}
	if got := p.Wtot(10); !almostEqual(got, p.W0+10*p.DeltaW, 1e-12) {
		t.Errorf("Wtot(10) = %g", got)
	}
}

func TestHats(t *testing.T) {
	p := refParams()
	// a^ = a + m*N/P, m^ = m*(P-N)/P, and a^ + m^*... consistency:
	// a^*P + m^*P = a*P + m*N + m*(P-N) = DeltaW + m*(P-N) ... instead
	// check the direct definitions.
	wantA := p.A + p.M*float64(p.N)/float64(p.P)
	wantM := p.M * float64(p.P-p.N) / float64(p.P)
	if !almostEqual(p.AHat(), wantA, 1e-12) {
		t.Errorf("AHat = %g, want %g", p.AHat(), wantA)
	}
	if !almostEqual(p.MHat(), wantM, 1e-12) {
		t.Errorf("MHat = %g, want %g", p.MHat(), wantM)
	}
	// Identity: a^*P = DeltaW.
	if !almostEqual(p.AHat()*float64(p.P), p.DeltaW, 1e-9) {
		t.Errorf("AHat*P = %g, want DeltaW = %g", p.AHat()*float64(p.P), p.DeltaW)
	}
}

func TestStdIterTime(t *testing.T) {
	p := refParams()
	// Right after a LB step the iteration time is the even share.
	want := p.W0 / (float64(p.P) * p.Omega)
	if got := p.StdIterTime(0, 0); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdIterTime(0,0) = %g, want %g", got, want)
	}
	// It grows linearly at rate (m+a)/omega.
	t0 := p.StdIterTime(0, 0)
	t5 := p.StdIterTime(0, 5)
	if !almostEqual(t5-t0, 5*(p.M+p.A)/p.Omega, 1e-12) {
		t.Errorf("std growth rate wrong: %g", t5-t0)
	}
	// A later LB step starts from a larger workload.
	if p.StdIterTime(50, 0) <= p.StdIterTime(0, 0) {
		t.Error("iteration time after later LB step should be larger")
	}
}

func TestULBAIterTimeBranches(t *testing.T) {
	p := refParams()
	sm, err := p.SigmaMinus(0)
	if err != nil {
		t.Fatal(err)
	}
	if sm <= 0 {
		t.Fatalf("sigma- = %d, want positive for alpha=%g", sm, p.Alpha)
	}
	share := p.W0 / float64(p.P)
	// At t = 0 the non-overloading PEs dominate with the inflated share.
	want0 := (1 + p.Alpha*float64(p.N)/float64(p.P-p.N)) * share / p.Omega
	if got := p.ULBAIterTime(0, 0); !almostEqual(got, want0, 1e-12) {
		t.Errorf("ULBAIterTime(0,0) = %g, want %g", got, want0)
	}
	// Before sigma- the slope is a/omega; after it is (m+a)/omega.
	d1 := p.ULBAIterTime(0, 2) - p.ULBAIterTime(0, 1)
	if !almostEqual(d1, p.A/p.Omega, 1e-9) {
		t.Errorf("pre-sigma slope = %g, want %g", d1, p.A/p.Omega)
	}
	d2 := p.ULBAIterTime(0, sm+3) - p.ULBAIterTime(0, sm+2)
	if !almostEqual(d2, (p.M+p.A)/p.Omega, 1e-9) {
		t.Errorf("post-sigma slope = %g, want %g", d2, (p.M+p.A)/p.Omega)
	}
}

func TestULBABranchesCrossNearSigmaMinus(t *testing.T) {
	p := refParams()
	sm, _ := p.SigmaMinus(0)
	share := p.W0 / float64(p.P)
	// The derivation of Eq. (8): at t = sigma- the overloading PEs'
	// projected load equals the non-overloading PEs' load, within one
	// iteration of rounding.
	overAt := func(t float64) float64 { return (1-p.Alpha)*share + (p.M+p.A)*t }
	nonAt := func(t float64) float64 {
		return (1+p.Alpha*float64(p.N)/float64(p.P-p.N))*share + p.A*t
	}
	if overAt(float64(sm)) > nonAt(float64(sm))+p.M {
		t.Errorf("overloading PEs already dominate before sigma-")
	}
	if overAt(float64(sm+1)) < nonAt(float64(sm+1))-p.M {
		t.Errorf("overloading PEs still behind one iteration after sigma-")
	}
}

func TestAlphaZeroReducesToStandard(t *testing.T) {
	p := refParams().WithAlpha(0)
	for lbp := 0; lbp < 60; lbp += 20 {
		for tt := 0; tt < 40; tt++ {
			std := p.StdIterTime(lbp, tt)
			ul := p.ULBAIterTime(lbp, tt)
			if !almostEqual(std, ul, 1e-12) {
				t.Fatalf("alpha=0 mismatch at lbp=%d t=%d: std=%g ulba=%g", lbp, tt, std, ul)
			}
		}
	}
}

func TestSigmaMinusFormula(t *testing.T) {
	p := refParams()
	sm, err := p.SigmaMinus(0)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: (1 + N/(P-N)) * alpha * Wtot / (m * P)
	// = (P/(P-N)) * alpha * W0 / (m * P) = alpha*W0/(m*(P-N)).
	want := math.Floor(p.Alpha * p.W0 / (p.M * float64(p.P-p.N)))
	if float64(sm) != want {
		t.Errorf("SigmaMinus = %d, want %v", sm, want)
	}
}

func TestSigmaMinusNoOverload(t *testing.T) {
	p := refParams()
	p.M = 0
	p.DeltaW = p.A * float64(p.P)
	if _, err := p.SigmaMinus(0); err != ErrNoOverload {
		t.Errorf("expected ErrNoOverload, got %v", err)
	}
	p2 := refParams()
	p2.N = 0
	p2.DeltaW = p2.A * float64(p2.P)
	if _, err := p2.SigmaMinus(0); err != ErrNoOverload {
		t.Errorf("expected ErrNoOverload for N=0, got %v", err)
	}
}

func TestSigmaMinusZeroWhenAlphaZero(t *testing.T) {
	p := refParams().WithAlpha(0)
	sm, err := p.SigmaMinus(0)
	if err != nil {
		t.Fatal(err)
	}
	if sm != 0 {
		t.Errorf("sigma-(alpha=0) = %d, want 0", sm)
	}
}

func TestSigmaPlusReducesToMenonTau(t *testing.T) {
	p := refParams().WithAlpha(0)
	sp, err := p.SigmaPlus(0)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := p.MenonTau()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sp, tau, 1e-9) {
		t.Errorf("sigma+(alpha=0) = %g, want Menon tau = %g", sp, tau)
	}
	// And the closed form sqrt(2*C*omega/m^).
	want := math.Sqrt(2 * p.C * p.Omega / p.MHat())
	if !almostEqual(tau, want, 1e-12) {
		t.Errorf("MenonTau = %g, want %g", tau, want)
	}
}

func TestSigmaPlusExceedsSigmaMinus(t *testing.T) {
	p := refParams()
	sm, _ := p.SigmaMinus(0)
	sp, err := p.SigmaPlus(0)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= float64(sm) {
		t.Errorf("sigma+ = %g must exceed sigma- = %d", sp, sm)
	}
}

func TestSigmaPlusSolvesEq9(t *testing.T) {
	// The tau component of sigma+ must satisfy Eq. (9):
	// CostImbalance(tau) = CostOverhead(lbp, tau) + C.
	p := refParams()
	for _, lbp := range []int{0, 10, 40} {
		sm, _ := p.SigmaMinus(lbp)
		sp, err := p.SigmaPlus(lbp)
		if err != nil {
			t.Fatal(err)
		}
		tau := sp - float64(sm)
		lhs := p.CostImbalance(tau)
		rhs := p.CostOverhead(lbp, tau) + p.C
		if !almostEqual(lhs, rhs, 1e-9) {
			t.Errorf("lbp=%d: Eq.(9) violated: imbalance %g vs overhead+C %g", lbp, lhs, rhs)
		}
	}
}

func TestSigmaPlusNoOverload(t *testing.T) {
	p := refParams()
	p.N = 0
	p.DeltaW = p.A * float64(p.P)
	sp, err := p.SigmaPlus(0)
	if err != ErrNoOverload {
		t.Errorf("expected ErrNoOverload, got %v", err)
	}
	if !math.IsInf(sp, 1) {
		t.Errorf("sigma+ should be +Inf without overload, got %g", sp)
	}
	if _, err := p.MenonTau(); err != ErrNoOverload {
		t.Errorf("MenonTau should fail without overload")
	}
}

func TestSigmaPlusGrowsWithCost(t *testing.T) {
	p := refParams()
	cheap, _ := p.SigmaPlus(0)
	p.C *= 10
	costly, _ := p.SigmaPlus(0)
	if costly <= cheap {
		t.Errorf("more expensive LB should stretch the interval: %g vs %g", costly, cheap)
	}
}

func TestCostOverheadLinearInAlpha(t *testing.T) {
	p := refParams()
	o1 := p.WithAlpha(0.2).CostOverhead(0, 10)
	o2 := p.WithAlpha(0.4).CostOverhead(0, 10)
	// sigma- also depends on alpha, so exact doubling does not hold;
	// but monotonicity must.
	if o2 <= o1 {
		t.Errorf("overhead should grow with alpha: %g vs %g", o1, o2)
	}
	if p.WithAlpha(0).CostOverhead(0, 10) != 0 {
		t.Error("overhead with alpha=0 must be zero")
	}
}

func TestString(t *testing.T) {
	if refParams().String() == "" {
		t.Error("String should not be empty")
	}
}

// Property: sigma- is non-decreasing in the LB iteration (workload grows).
func TestSigmaMinusMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomParams(seed)
		if p.N == 0 || p.M == 0 {
			return true
		}
		prev := -1
		for i := 0; i < p.Gamma; i += 7 {
			sm, err := p.SigmaMinus(i)
			if err != nil {
				return false
			}
			if sm < prev {
				return false
			}
			prev = sm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: for any valid instance the quadratic of Eq. (12) has a positive
// root, so sigma+ is always defined when overloading PEs exist.
func TestSigmaPlusDefinedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomParams(seed)
		if p.N == 0 || p.M == 0 {
			return true
		}
		sp, err := p.SigmaPlus(0)
		if err != nil {
			return false
		}
		sm, _ := p.SigmaMinus(0)
		return sp > float64(sm) && !math.IsNaN(sp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomParams draws a Table II-like instance from a seed. It lives here
// rather than importing internal/instance to keep the dependency direction
// clean (instance depends on model).
func randomParams(seed uint64) Params {
	r := stats.NewRNG(seed)
	ps := []int{256, 512, 1024, 2048}
	p := Params{
		P:     ps[r.Intn(len(ps))],
		Gamma: 100,
		Omega: 1e9,
	}
	p.N = int(float64(p.P) * r.Uniform(0.01, 0.2))
	if p.N < 1 {
		p.N = 1
	}
	p.W0 = r.Uniform(52e7, 1165e7) * float64(p.P)
	p.DeltaW = p.W0 / float64(p.P) * r.Uniform(0.01, 0.3)
	y := r.Uniform(0.8, 1.0)
	p.A = p.DeltaW * (1 - y) / float64(p.P)
	p.M = p.DeltaW * y / float64(p.N)
	p.Alpha = r.Float64()
	p.C = p.W0 / float64(p.P) * r.Uniform(0.1, 3.0) / p.Omega
	return p
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
