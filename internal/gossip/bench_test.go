package gossip

import (
	"testing"

	"ulba/internal/mpisim"
)

func BenchmarkDisseminationRound(b *testing.B) {
	const size = 32
	rounds := Rounds(size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := mpisim.Run(size, testCost(), func(p *mpisim.Proc) error {
			db := NewDB(p.Rank(), size)
			db.Update(p.Rank(), float64(p.Rank()), 0)
			for s := 0; s < rounds; s++ {
				Step(p, db, s, 9)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	entries := make([]Entry, 256)
	for i := range entries {
		entries[i] = Entry{Rank: i, Value: float64(i) * 1.5, Iter: i}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DecodeEntries(EncodeEntries(entries))
	}
}

func BenchmarkZScoreDetection(b *testing.B) {
	db := NewDB(0, 256)
	for r := 0; r < 256; r++ {
		wir := 1.0
		if r == 17 {
			wir = 50
		}
		db.Update(r, wir, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = db.ZScoreOf(17)
	}
}
