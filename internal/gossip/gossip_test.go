package gossip

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"ulba/internal/mpisim"
	"ulba/internal/stats"
)

func testCost() mpisim.CostModel {
	return mpisim.CostModel{Latency: 1e-6, ByteTime: 1e-9, FLOPS: 1e9}
}

func TestDBUpdateFreshnessWins(t *testing.T) {
	db := NewDB(0, 4)
	db.Update(2, 1.0, 5)
	db.Update(2, 2.0, 3) // staler: ignored
	if e, ok := db.Get(2); !ok || e.Value != 1.0 || e.Iter != 5 {
		t.Errorf("stale update overwrote fresher entry: %+v", e)
	}
	db.Update(2, 3.0, 5) // same iteration, larger value: wins
	if e, _ := db.Get(2); e.Value != 3.0 {
		t.Errorf("same-iteration larger value should win: %+v", e)
	}
	db.Update(2, 2.5, 5) // same iteration, smaller value: ignored
	if e, _ := db.Get(2); e.Value != 3.0 {
		t.Errorf("same-iteration smaller value should lose: %+v", e)
	}
	db.Update(2, 4.0, 9)
	if e, _ := db.Get(2); e.Value != 4.0 || e.Iter != 9 {
		t.Errorf("fresher update should win: %+v", e)
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB(1, 3)
	if db.Size() != 3 || db.Self() != 1 {
		t.Error("size/self wrong")
	}
	if db.KnownCount() != 0 {
		t.Error("fresh DB should be empty")
	}
	if _, ok := db.Get(0); ok {
		t.Error("unknown rank should not be gettable")
	}
	if _, ok := db.Get(-1); ok {
		t.Error("invalid rank should not be gettable")
	}
	db.Update(0, 5, 0)
	db.Update(1, 7, 0)
	if db.KnownCount() != 2 {
		t.Errorf("KnownCount = %d", db.KnownCount())
	}
	values := db.Values()
	if len(values) != 2 || values[0] != 5 || values[1] != 7 {
		t.Errorf("Values = %v", values)
	}
	snap := db.Snapshot()
	if len(snap) != 2 || snap[0].Rank != 0 || snap[1].Rank != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestDBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid self should panic")
		}
	}()
	NewDB(5, 3)
}

func TestDBUpdatePanicsOnBadRank(t *testing.T) {
	db := NewDB(0, 2)
	defer func() {
		if recover() == nil {
			t.Error("invalid rank update should panic")
		}
	}()
	db.Update(7, 1, 1)
}

func TestStaleness(t *testing.T) {
	db := NewDB(0, 4)
	if !math.IsInf(db.Staleness(10), 1) {
		t.Error("empty DB staleness should be +Inf")
	}
	db.Update(0, 1, 8)
	db.Update(1, 1, 3)
	if got := db.Staleness(10); got != 7 {
		t.Errorf("Staleness = %v, want 7", got)
	}
}

func TestZScoreOf(t *testing.T) {
	db := NewDB(0, 32)
	for r := 0; r < 32; r++ {
		wir := 1.0
		if r == 5 {
			wir = 10.0
		}
		db.Update(r, wir, 0)
	}
	z, ok := db.ZScoreOf(5)
	if !ok {
		t.Fatal("rank 5 should be known")
	}
	// Single outlier among 32: z = sqrt(31) > 3 (the paper's threshold).
	if z < 3 {
		t.Errorf("outlier z = %v, want > 3", z)
	}
	z0, _ := db.ZScoreOf(0)
	if z0 >= 3 {
		t.Errorf("inlier z = %v, want < 3", z0)
	}
	if _, ok := db.ZScoreOf(99); ok {
		t.Error("unknown rank should report !ok")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []Entry{{Rank: 3, Value: -1.5, Iter: 42}, {Rank: 0, Value: 0, Iter: 0}}
	out := DecodeEntries(EncodeEntries(in))
	if len(out) != len(in) {
		t.Fatal("length mismatch")
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("corrupt payload should panic")
		}
	}()
	DecodeEntries(make([]byte, 5))
}

func TestRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 256: 8}
	for size, want := range cases {
		if got := Rounds(size); got != want {
			t.Errorf("Rounds(%d) = %d, want %d", size, got, want)
		}
	}
}

// After ceil(log2 P) consecutive steps every PE must know every WIR.
func TestFullDisseminationWithinLogRounds(t *testing.T) {
	for _, size := range []int{2, 3, 4, 7, 8, 16, 33} {
		size := size
		t.Run(fmt.Sprintf("P=%d", size), func(t *testing.T) {
			rounds := Rounds(size)
			err := mpisim.Run(size, testCost(), func(p *mpisim.Proc) error {
				db := NewDB(p.Rank(), size)
				db.Update(p.Rank(), float64(p.Rank())*1.5, 0)
				for s := 0; s < rounds; s++ {
					Step(p, db, s, 100)
				}
				if db.KnownCount() != size {
					return fmt.Errorf("rank %d knows %d/%d after %d rounds",
						p.Rank(), db.KnownCount(), size, rounds)
				}
				for r := 0; r < size; r++ {
					e, ok := db.Get(r)
					if !ok || e.Value != float64(r)*1.5 {
						return fmt.Errorf("rank %d has wrong entry for %d: %+v", p.Rank(), r, e)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Dissemination starting at an arbitrary phase still covers everyone within
// one full cycle (subset sums of the offsets are order independent).
func TestDisseminationAnyPhase(t *testing.T) {
	const size = 16
	rounds := Rounds(size)
	for phase := 0; phase < rounds; phase++ {
		phase := phase
		err := mpisim.Run(size, testCost(), func(p *mpisim.Proc) error {
			db := NewDB(p.Rank(), size)
			db.Update(p.Rank(), 1, 0)
			for s := phase; s < phase+rounds; s++ {
				Step(p, db, s, 7)
			}
			if db.KnownCount() != size {
				return fmt.Errorf("phase %d: rank %d knows only %d", phase, p.Rank(), db.KnownCount())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Continuous gossip keeps entries fresh: after k extra iterations in which
// every PE re-measures, no entry is older than the dissemination diameter.
func TestContinuousGossipBoundsStaleness(t *testing.T) {
	const size = 8
	rounds := Rounds(size)
	err := mpisim.Run(size, testCost(), func(p *mpisim.Proc) error {
		db := NewDB(p.Rank(), size)
		const iters = 30
		for i := 0; i < iters; i++ {
			db.Update(p.Rank(), float64(i), i)
			Step(p, db, i, 55)
		}
		stale := db.Staleness(iters - 1)
		if stale > float64(rounds) {
			return fmt.Errorf("rank %d staleness %v exceeds diameter %d", p.Rank(), stale, rounds)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepSingleton(t *testing.T) {
	err := mpisim.Run(1, testCost(), func(p *mpisim.Proc) error {
		db := NewDB(0, 1)
		db.Update(0, 1, 0)
		Step(p, db, 0, 3) // must be a no-op, not a deadlock
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: a database's final state is a pure function of the SET of
// entries it absorbed — independent of arrival order, grouping into
// batches, or duplication. This includes equal-Iter ties (deterministic
// tie-break on the larger value), which the doubling ring produces whenever
// two paths deliver different same-iteration observations; a receive-order-
// dependent merge would let replicas disagree forever.
func TestMergeOrderIndependenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		size := 2 + rng.Intn(10)
		n := 1 + rng.Intn(25)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{
				Rank: rng.Intn(size),
				// A coarse value grid forces equal-Iter ties with both
				// equal and differing values.
				Value: float64(rng.Intn(4)),
				Iter:  rng.Intn(5),
			}
		}

		apply := func(perm []int, batches int) *DB {
			db := NewDB(0, size)
			start := 0
			for b := 0; b < batches; b++ {
				end := start + (n-start)/(batches-b)
				batch := make([]Entry, 0, end-start)
				for _, idx := range perm[start:end] {
					batch = append(batch, entries[idx])
				}
				db.Merge(batch)
				start = end
			}
			return db
		}

		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		want := apply(identity, 1)

		for trial := 0; trial < 4; trial++ {
			perm := append([]int(nil), identity...)
			for i := n - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
			// Duplicate a random prefix to check idempotence too.
			dup := append(append([]int(nil), perm...), perm[:rng.Intn(n)]...)
			db := NewDB(0, size)
			for _, chunk := range [][]int{dup[:len(dup)/2], dup[len(dup)/2:]} {
				batch := make([]Entry, 0, len(chunk))
				for _, idx := range chunk {
					batch = append(batch, entries[idx])
				}
				db.Merge(batch)
			}
			_ = apply(perm, 1+rng.Intn(3))
			for r := 0; r < size; r++ {
				e1, ok1 := want.Get(r)
				e2, ok2 := db.Get(r)
				if ok1 != ok2 || (ok1 && e1 != e2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Merge must ignore out-of-range ranks instead of panicking: a cluster peer
// with a larger peer list must not crash everyone it gossips with.
func TestMergeIgnoresForeignRanks(t *testing.T) {
	db := NewDB(0, 3)
	db.Merge([]Entry{{Rank: 7, Value: 1, Iter: 1}, {Rank: -1, Value: 1, Iter: 1}, {Rank: 2, Value: 4, Iter: 1}})
	if db.KnownCount() != 1 {
		t.Fatalf("KnownCount = %d, want 1", db.KnownCount())
	}
	if e, ok := db.Get(2); !ok || e.Value != 4 {
		t.Errorf("in-range entry lost: %+v ok=%v", e, ok)
	}
}

// Partner must be a paired exchange (dst's src is me) and the union of the
// offsets over one full cycle must cover every nonzero distance — the
// property the log-round dissemination bound rests on.
func TestPartnerSchedule(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		rounds := Rounds(size)
		covered := map[int]bool{}
		for s := 0; s < rounds; s++ {
			for rank := 0; rank < size; rank++ {
				dst, src := Partner(rank, s, size)
				if back, _ := Partner(src, s, size); back != rank {
					t.Fatalf("size %d step %d: rank %d receives from %d whose dst is %d", size, s, rank, src, back)
				}
				if rank == 0 {
					covered[dst] = true
				}
			}
		}
		if size == 1 {
			if dst, src := Partner(0, 0, 1); dst != 0 || src != 0 {
				t.Fatal("singleton partner should be self")
			}
			continue
		}
		for d := 1; d < size; d++ {
			// Offsets are 2^s; subset sums cover every distance, but each
			// single step covers only power-of-two distances. Check the
			// one-step reachability set is exactly the offsets.
			want := false
			for s := 0; s < rounds; s++ {
				if (1<<s)%size == d {
					want = true
				}
			}
			if covered[d] != want {
				t.Errorf("size %d: distance %d covered=%v, want %v", size, d, covered[d], want)
			}
		}
	}
}

// pairTransport is a plain (non-owned) two-rank loopback Transport over
// buffered channels; it exercises StepScratch's copying fallback path,
// which must not assume the substrate takes ownership of the frame.
type pairTransport struct {
	rank int
	ch   *[2]chan []byte
}

func (t pairTransport) Rank() int { return t.rank }
func (t pairTransport) Size() int { return 2 }
func (t pairTransport) SendRecv(dst int, sendData []byte, src, tag int) []byte {
	// The caller retains sendData (plain Transport contract): clone it onto
	// the peer's channel exactly like a real wire would.
	t.ch[dst] <- append([]byte(nil), sendData...)
	return <-t.ch[t.rank]
}

// StepScratch over a plain Transport must reach the same database state as
// the owned path the mpisim-backed tests exercise, while reusing the
// caller's scratch buffers across steps.
func TestStepScratchPlainTransportFallback(t *testing.T) {
	ch := [2]chan []byte{make(chan []byte, 1), make(chan []byte, 1)}
	dbs := [2]*DB{NewDB(0, 2), NewDB(1, 2)}
	done := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			tr := pairTransport{rank: r, ch: &ch}
			var s Scratch
			for i := 0; i < 4; i++ {
				dbs[r].Update(r, float64((r+1)*10+i), i)
				StepScratch(tr, dbs[r], i, 9, &s)
			}
			done <- nil
		}(r)
	}
	for r := 0; r < 2; r++ {
		<-done
	}
	for r := 0; r < 2; r++ {
		for q := 0; q < 2; q++ {
			e, ok := dbs[r].Get(q)
			if !ok || e.Iter != 3 || e.Value != float64((q+1)*10+3) {
				t.Fatalf("rank %d: entry for %d stale or missing: %+v ok=%v", r, q, e, ok)
			}
		}
	}
}

// AppendSnapshot with sufficient capacity must not reallocate, and must
// produce the same entries as Snapshot.
func TestAppendSnapshotReuses(t *testing.T) {
	db := NewDB(0, 8)
	for r := 0; r < 8; r += 2 {
		db.Update(r, float64(r), 1)
	}
	scratch := make([]Entry, 0, 8)
	got := db.AppendSnapshot(scratch)
	if &got[:1][0] != &scratch[:1][0] {
		t.Fatal("AppendSnapshot reallocated despite sufficient capacity")
	}
	want := db.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("AppendSnapshot len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// The -Into codec variants must round-trip through the same wire bytes as
// the allocating forms, reusing caller buffers.
func TestAppendDecodeEntriesInto(t *testing.T) {
	entries := []Entry{{Rank: 0, Value: 1.5, Iter: 3}, {Rank: 5, Value: -2, Iter: 7}}
	wire := EncodeEntries(entries)
	frame := make([]byte, 0, len(wire))
	if got := AppendEntries(frame, entries); string(got) != string(wire) {
		t.Fatal("AppendEntries diverged from EncodeEntries")
	}
	scratch := make([]Entry, 0, 2)
	back := DecodeEntriesInto(scratch, wire)
	if len(back) != 2 || back[0] != entries[0] || back[1] != entries[1] {
		t.Fatalf("DecodeEntriesInto = %+v", back)
	}
	if &back[:1][0] != &scratch[:1][0] {
		t.Fatal("DecodeEntriesInto reallocated despite sufficient capacity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeEntriesInto should panic on corrupt payload")
		}
	}()
	DecodeEntriesInto(nil, wire[:5])
}

// A long gossip loop over the simulated runtime with a reused Scratch must
// disseminate exactly like fresh-allocation Step and, in steady state,
// allocate nothing per step.
func TestStepScratchMatchesStep(t *testing.T) {
	const size = 8
	const iters = 24
	collect := func(useScratch bool) ([]int, error) {
		final := make([]int, size)
		err := mpisim.Run(size, testCost(), func(p *mpisim.Proc) error {
			db := NewDB(p.Rank(), size)
			var s Scratch
			for i := 0; i < iters; i++ {
				db.Update(p.Rank(), float64(p.Rank()*100+i), i)
				if useScratch {
					StepScratch(p, db, i, 42, &s)
				} else {
					Step(p, db, i, 42)
				}
			}
			final[p.Rank()] = db.KnownCount()
			stale := db.Staleness(iters - 1)
			if stale > float64(Rounds(size)) {
				return fmt.Errorf("rank %d staleness %v", p.Rank(), stale)
			}
			return nil
		})
		return final, err
	}
	plain, err := collect(false)
	if err != nil {
		t.Fatal(err)
	}
	scratched, err := collect(true)
	if err != nil {
		t.Fatal(err)
	}
	for r := range plain {
		if plain[r] != scratched[r] {
			t.Fatalf("rank %d: scratch path knows %d, plain path %d", r, scratched[r], plain[r])
		}
	}
}
