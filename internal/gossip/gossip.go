// Package gossip implements the per-PE observation database and the
// dissemination algorithm of Section III-C of the paper: "each PE keeps a
// database that stores the WIR of every PE. Each PE evaluates its WIR and
// propagates it (as well as the most recent WIRs in its database) to the
// other PEs using a dissemination algorithm; one dissemination step is done
// at each iteration to mitigate the overhead due to the WIR communication."
//
// The dissemination pattern is a deterministic doubling ring: at step s each
// rank pushes its whole database to (rank + 2^(s mod ceil(log2 P))) mod P
// and receives from the mirror rank. Because subset sums of the offsets
// {1, 2, 4, ..., 2^(L-1)} cover every distance, any L = ceil(log2 P)
// consecutive steps propagate every entry to every PE, matching the paper's
// observation that entries are still "up to date" a few steps after
// measurement under the principle of persistence.
//
// The package is transport-agnostic: the database plus the partner schedule
// (Partner, Rounds) are pure, and Step runs one dissemination exchange over
// any Transport. The simulated MPI runtime's *mpisim.Proc satisfies
// Transport directly, and internal/cluster reuses the same schedule and
// merge semantics over HTTP for replica membership — one dissemination core,
// two substrates.
//
// Merging is a deterministic join: entries are totally ordered by
// (Iter, Value), so folding any set of observations into a database yields
// the same final state regardless of arrival order, grouping, or
// duplication (the merge is commutative, associative, and idempotent). That
// order-independence is what lets concurrent disseminators — simulated
// ranks or HTTP replicas — converge on one agreed view.
package gossip

import (
	"encoding/binary"
	"fmt"
	"math"

	"ulba/internal/stats"
)

// Entry is one rank's observation — the WIR of a simulated PE, or a cluster
// node's load — stamped with the iteration (heartbeat sequence) at which it
// was measured so merges can keep the freshest value.
type Entry struct {
	Rank  int     `json:"rank"`
	Value float64 `json:"value"`
	Iter  int     `json:"iter"`
}

// supersedes reports whether e wins over old in the deterministic merge
// order: fresher iterations win, and equal iterations are tied by the
// larger value — a total order, so merging is order-independent.
func (e Entry) supersedes(old Entry) bool {
	if e.Iter != old.Iter {
		return e.Iter > old.Iter
	}
	return e.Value > old.Value
}

// DB is the per-rank database of the freshest known observation of every
// rank. It is not safe for concurrent use; callers that share one across
// goroutines (the cluster membership layer) serialize access themselves.
type DB struct {
	self    int
	entries []Entry
	known   []bool
}

// NewDB creates an empty database for a world of size ranks, owned by rank
// self.
func NewDB(self, size int) *DB {
	if self < 0 || self >= size {
		panic(fmt.Sprintf("gossip: self rank %d out of range for size %d", self, size))
	}
	return &DB{
		self:    self,
		entries: make([]Entry, size),
		known:   make([]bool, size),
	}
}

// Size returns the world size the database covers.
func (db *DB) Size() int { return len(db.entries) }

// Self returns the owning rank.
func (db *DB) Self() int { return db.self }

// Update records an observation for rank if it supersedes the stored one
// under the deterministic merge order (fresher iteration wins; equal
// iterations tie-break on the larger value). Updating and merging go through
// the same join, so a database's final state never depends on the order
// observations arrived in.
func (db *DB) Update(rank int, value float64, iter int) {
	if rank < 0 || rank >= len(db.entries) {
		panic(fmt.Sprintf("gossip: update for invalid rank %d", rank))
	}
	e := Entry{Rank: rank, Value: value, Iter: iter}
	if db.known[rank] && !e.supersedes(db.entries[rank]) {
		return
	}
	db.entries[rank] = e
	db.known[rank] = true
}

// Merge folds a batch of entries into the database. Entries for ranks
// outside the world are ignored (a cluster peer with a misconfigured peer
// list must not crash everyone it gossips with).
func (db *DB) Merge(entries []Entry) {
	for _, e := range entries {
		if e.Rank < 0 || e.Rank >= len(db.entries) {
			continue
		}
		db.Update(e.Rank, e.Value, e.Iter)
	}
}

// Get returns the stored entry for rank and whether one exists.
func (db *DB) Get(rank int) (Entry, bool) {
	if rank < 0 || rank >= len(db.entries) {
		return Entry{}, false
	}
	return db.entries[rank], db.known[rank]
}

// KnownCount returns how many ranks have a stored entry.
func (db *DB) KnownCount() int {
	n := 0
	for _, k := range db.known {
		if k {
			n++
		}
	}
	return n
}

// Values returns the values of all known entries, the population used by
// the z-score overload detector.
func (db *DB) Values() []float64 {
	out := make([]float64, 0, len(db.entries))
	for r, k := range db.known {
		if k {
			out = append(out, db.entries[r].Value)
		}
	}
	return out
}

// Snapshot returns all known entries in rank order.
func (db *DB) Snapshot() []Entry {
	return db.AppendSnapshot(make([]Entry, 0, len(db.entries)))
}

// AppendSnapshot appends all known entries in rank order to dst and returns
// the extended slice; pass scratch[:0] to reuse a buffer across steps.
func (db *DB) AppendSnapshot(dst []Entry) []Entry {
	for r, k := range db.known {
		if k {
			dst = append(dst, db.entries[r])
		}
	}
	return dst
}

// Staleness returns the age (in iterations, relative to now) of the oldest
// known entry, or math.Inf(1) if the database is empty.
func (db *DB) Staleness(now int) float64 {
	oldest := math.Inf(1)
	any := false
	worst := 0
	for r, k := range db.known {
		if !k {
			continue
		}
		any = true
		if age := now - db.entries[r].Iter; age > worst {
			worst = age
		}
	}
	if !any {
		return oldest
	}
	return float64(worst)
}

// ZScoreOf returns the z-score of rank's value within the known value
// distribution, and false if the rank is unknown. A PE whose z-score
// exceeds the paper's threshold (3.0) is considered overloading.
func (db *DB) ZScoreOf(rank int) (float64, bool) {
	e, ok := db.Get(rank)
	if !ok {
		return 0, false
	}
	return stats.ZScore(e.Value, db.Values()), true
}

const entryBytes = 24 // rank int64 + value float64 + iter int64

// EncodeEntries serializes entries for the wire.
func EncodeEntries(entries []Entry) []byte {
	return AppendEntries(make([]byte, 0, entryBytes*len(entries)), entries)
}

// AppendEntries appends the wire encoding of entries to dst and returns the
// extended buffer — the allocation-free form of EncodeEntries.
func AppendEntries(dst []byte, entries []Entry) []byte {
	for _, e := range entries {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(e.Rank)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Value))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(e.Iter)))
	}
	return dst
}

// DecodeEntries reverses EncodeEntries; it panics on corrupt payloads.
func DecodeEntries(b []byte) []Entry {
	return DecodeEntriesInto(make([]Entry, 0, len(b)/entryBytes), b)
}

// DecodeEntriesInto appends the decoded entries to dst and returns the
// extended slice; it panics on corrupt payloads like DecodeEntries.
func DecodeEntriesInto(dst []Entry, b []byte) []Entry {
	if len(b)%entryBytes != 0 {
		panic("gossip: corrupt entry payload")
	}
	for ; len(b) >= entryBytes; b = b[entryBytes:] {
		dst = append(dst, Entry{
			Rank:  int(int64(binary.LittleEndian.Uint64(b))),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			Iter:  int(int64(binary.LittleEndian.Uint64(b[16:]))),
		})
	}
	return dst
}

// Rounds returns ceil(log2 size): the number of consecutive dissemination
// steps after which every entry has reached every rank.
func Rounds(size int) int {
	r := 0
	for 1<<r < size {
		r++
	}
	return r
}

// Partner returns the doubling-ring exchange partners of rank at the given
// step: dst is who rank pushes to, src the mirror rank it receives from.
// The offset doubles each step, wrapping after Rounds(size) steps, so any
// Rounds(size) consecutive steps cover every distance. For size 1 both
// partners are rank itself (a self-exchange; Step treats it as a no-op).
func Partner(rank, step, size int) (dst, src int) {
	if size == 1 {
		return rank, rank
	}
	offset := 1 << (step % Rounds(size))
	dst = (rank + offset) % size
	src = (rank - offset%size + size) % size
	return dst, src
}

// Transport is one rank's view of a message-passing substrate: a paired
// push-to-dst / receive-from-src exchange under a tag. *mpisim.Proc
// satisfies it directly (the simulated runtime the paper's algorithm runs
// on); other substrates — an HTTP cluster, a test harness — implement it
// with whatever wire they have.
type Transport interface {
	// Rank is this participant's index in [0, Size).
	Rank() int
	// Size is the number of participants.
	Size() int
	// SendRecv pushes sendData to dst and blocks until the payload sent by
	// src under the same tag has arrived, returning it.
	SendRecv(dst int, sendData []byte, src, tag int) []byte
}

// OwnedTransport is the zero-copy extension of Transport: the exchange
// hands the send buffer over to the substrate and returns a payload the
// caller owns, with pooled buffers on both sides. *mpisim.Proc implements
// it; StepScratch uses it when available to disseminate without per-step
// allocations.
type OwnedTransport interface {
	Transport
	// AcquireBuf returns an empty reusable buffer to encode into.
	AcquireBuf() []byte
	// ReleaseBuf recycles a buffer obtained from SendRecvOwned.
	ReleaseBuf(b []byte)
	// SendRecvOwned is SendRecv with ownership transfer: sendData must not
	// be touched after the call, and the returned payload belongs to the
	// caller.
	SendRecvOwned(dst int, sendData []byte, src, tag int) []byte
}

// Scratch holds the reusable buffers of one rank's dissemination loop.
// The zero value is ready to use.
type Scratch struct {
	entries []Entry
	frame   []byte
}

// Step performs one dissemination step at the given step index over the
// transport: push the whole database to the doubling-ring partner and merge
// what the mirror partner pushed to us. All ranks must call Step with the
// same step index and tag. A world of one rank is a no-op.
func Step(t Transport, db *DB, step int, tag int) {
	StepScratch(t, db, step, tag, nil)
}

// StepScratch is Step with caller-provided scratch buffers: a rank stepping
// every iteration reuses its entry slice and wire frame instead of
// allocating them per step, and over an OwnedTransport the exchange itself
// is allocation-free too. A nil scratch falls back to Step's behavior.
func StepScratch(t Transport, db *DB, step int, tag int, s *Scratch) {
	size := t.Size()
	if size == 1 {
		return
	}
	var local Scratch
	if s == nil {
		s = &local
	}
	dst, src := Partner(t.Rank(), step, size)
	s.entries = db.AppendSnapshot(s.entries[:0])
	if ot, ok := t.(OwnedTransport); ok {
		payload := ot.SendRecvOwned(dst, AppendEntries(ot.AcquireBuf(), s.entries), src, tag)
		s.entries = DecodeEntriesInto(s.entries[:0], payload)
		ot.ReleaseBuf(payload)
	} else {
		s.frame = AppendEntries(s.frame[:0], s.entries)
		payload := t.SendRecv(dst, s.frame, src, tag)
		s.entries = DecodeEntriesInto(s.entries[:0], payload)
	}
	db.Merge(s.entries)
}
