// Package gossip implements the workload-increase-rate (WIR) database and
// the dissemination algorithm of Section III-C of the paper: "each PE keeps
// a database that stores the WIR of every PE. Each PE evaluates its WIR and
// propagates it (as well as the most recent WIRs in its database) to the
// other PEs using a dissemination algorithm; one dissemination step is done
// at each iteration to mitigate the overhead due to the WIR communication."
//
// The dissemination pattern is a deterministic doubling ring: at step s each
// rank pushes its whole database to (rank + 2^(s mod ceil(log2 P))) mod P
// and receives from the mirror rank. Because subset sums of the offsets
// {1, 2, 4, ..., 2^(L-1)} cover every distance, any L = ceil(log2 P)
// consecutive steps propagate every entry to every PE, matching the paper's
// observation that entries are still "up to date" a few steps after
// measurement under the principle of persistence.
package gossip

import (
	"encoding/binary"
	"fmt"
	"math"

	"ulba/internal/mpisim"
	"ulba/internal/stats"
)

// Entry is one PE's WIR observation, stamped with the iteration at which it
// was measured so merges can keep the freshest value.
type Entry struct {
	Rank int
	WIR  float64
	Iter int
}

// DB is the per-PE database of the freshest known WIR of every rank.
type DB struct {
	self    int
	entries []Entry
	known   []bool
}

// NewDB creates an empty database for a world of size ranks, owned by rank
// self.
func NewDB(self, size int) *DB {
	if self < 0 || self >= size {
		panic(fmt.Sprintf("gossip: self rank %d out of range for size %d", self, size))
	}
	return &DB{
		self:    self,
		entries: make([]Entry, size),
		known:   make([]bool, size),
	}
}

// Size returns the world size the database covers.
func (db *DB) Size() int { return len(db.entries) }

// Self returns the owning rank.
func (db *DB) Self() int { return db.self }

// Update records a WIR observation for rank if it is fresher than (or as
// fresh as) the stored one. Same-iteration updates overwrite, so a PE's own
// re-measurement in the same iteration wins.
func (db *DB) Update(rank int, wir float64, iter int) {
	if rank < 0 || rank >= len(db.entries) {
		panic(fmt.Sprintf("gossip: update for invalid rank %d", rank))
	}
	if db.known[rank] && db.entries[rank].Iter > iter {
		return
	}
	db.entries[rank] = Entry{Rank: rank, WIR: wir, Iter: iter}
	db.known[rank] = true
}

// Merge folds a batch of entries into the database, keeping freshest.
func (db *DB) Merge(entries []Entry) {
	for _, e := range entries {
		db.Update(e.Rank, e.WIR, e.Iter)
	}
}

// Get returns the stored entry for rank and whether one exists.
func (db *DB) Get(rank int) (Entry, bool) {
	if rank < 0 || rank >= len(db.entries) {
		return Entry{}, false
	}
	return db.entries[rank], db.known[rank]
}

// KnownCount returns how many ranks have a stored entry.
func (db *DB) KnownCount() int {
	n := 0
	for _, k := range db.known {
		if k {
			n++
		}
	}
	return n
}

// WIRs returns the WIR values of all known entries, the population used by
// the z-score overload detector.
func (db *DB) WIRs() []float64 {
	out := make([]float64, 0, len(db.entries))
	for r, k := range db.known {
		if k {
			out = append(out, db.entries[r].WIR)
		}
	}
	return out
}

// Snapshot returns all known entries.
func (db *DB) Snapshot() []Entry {
	out := make([]Entry, 0, len(db.entries))
	for r, k := range db.known {
		if k {
			out = append(out, db.entries[r])
		}
	}
	return out
}

// Staleness returns the age (in iterations, relative to now) of the oldest
// known entry, or math.Inf(1) if the database is empty.
func (db *DB) Staleness(now int) float64 {
	oldest := math.Inf(1)
	any := false
	worst := 0
	for r, k := range db.known {
		if !k {
			continue
		}
		any = true
		if age := now - db.entries[r].Iter; age > worst {
			worst = age
		}
	}
	if !any {
		return oldest
	}
	return float64(worst)
}

// ZScoreOf returns the z-score of rank's WIR within the known WIR
// distribution, and false if the rank is unknown. A PE whose z-score
// exceeds the paper's threshold (3.0) is considered overloading.
func (db *DB) ZScoreOf(rank int) (float64, bool) {
	e, ok := db.Get(rank)
	if !ok {
		return 0, false
	}
	return stats.ZScore(e.WIR, db.WIRs()), true
}

const entryBytes = 24 // rank int64 + wir float64 + iter int64

// EncodeEntries serializes entries for the wire.
func EncodeEntries(entries []Entry) []byte {
	b := make([]byte, entryBytes*len(entries))
	for i, e := range entries {
		off := i * entryBytes
		binary.LittleEndian.PutUint64(b[off:], uint64(int64(e.Rank)))
		binary.LittleEndian.PutUint64(b[off+8:], math.Float64bits(e.WIR))
		binary.LittleEndian.PutUint64(b[off+16:], uint64(int64(e.Iter)))
	}
	return b
}

// DecodeEntries reverses EncodeEntries; it panics on corrupt payloads.
func DecodeEntries(b []byte) []Entry {
	if len(b)%entryBytes != 0 {
		panic("gossip: corrupt entry payload")
	}
	out := make([]Entry, len(b)/entryBytes)
	for i := range out {
		off := i * entryBytes
		out[i] = Entry{
			Rank: int(int64(binary.LittleEndian.Uint64(b[off:]))),
			WIR:  math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:])),
			Iter: int(int64(binary.LittleEndian.Uint64(b[off+16:]))),
		}
	}
	return out
}

// Rounds returns ceil(log2 size): the number of consecutive dissemination
// steps after which every entry has reached every PE.
func Rounds(size int) int {
	r := 0
	for 1<<r < size {
		r++
	}
	return r
}

// Step performs one dissemination step at the given step index over the
// simulated runtime: push the whole database to the doubling-ring partner
// and merge what the mirror partner pushed to us. All ranks must call Step
// with the same step index and tag. A world of one PE is a no-op.
func Step(p *mpisim.Proc, db *DB, step int, tag int) {
	size := p.Size()
	if size == 1 {
		return
	}
	rounds := Rounds(size)
	offset := 1 << (step % rounds)
	dst := (p.Rank() + offset) % size
	src := (p.Rank() - offset%size + size) % size
	payload := p.SendRecv(dst, EncodeEntries(db.Snapshot()), src, tag)
	db.Merge(DecodeEntries(payload))
}
