package lb

import (
	"fmt"
	"math"

	"ulba/internal/core"
	"ulba/internal/erosion"
	"ulba/internal/gossip"
	"ulba/internal/mpisim"
	"ulba/internal/partition"
	"ulba/internal/stats"
)

// Method selects the load-balancing method under evaluation.
type Method int

// Methods.
const (
	// Standard is the standard LB method with the adaptive trigger of
	// Zhai et al. [7]: even re-distribution whenever the accumulated
	// degradation exceeds the average LB cost.
	Standard Method = iota
	// ULBA additionally underloads the PEs that detect themselves
	// overloading (z-score of WIR above the threshold), per Algorithms
	// 1 and 2.
	ULBA
)

func (m Method) String() string {
	switch m {
	case Standard:
		return "standard"
	case ULBA:
		return "ulba"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// TriggerKind selects when the balancer is invoked.
type TriggerKind int

// Trigger kinds.
const (
	// TriggerDegradation is the paper's adaptive rule (default): the
	// exact accumulated degradation of Zhai et al. [7].
	TriggerDegradation TriggerKind = iota
	// TriggerPeriodic fires every PeriodicInterval iterations.
	TriggerPeriodic
	// TriggerNever disables LB entirely (static baseline).
	TriggerNever
	// TriggerMenon fires at the fitted analytic optimum of Menon et
	// al. [6], tau = sqrt(2*C*omega/m^).
	TriggerMenon
)

// Config parameterizes one application run.
type Config struct {
	App        erosion.Config // the application instance; App.P = number of PEs
	Iterations int            // gamma
	Cost       mpisim.CostModel

	Method        Method
	Alpha         float64 // fixed alpha for ULBA (paper: 0.4)
	AdaptiveAlpha bool    // use the adaptive-alpha extension instead of the fixed value

	ZThreshold float64 // overload detection threshold (default 3.0)
	WIRWindow  int     // WIR regression window (default 8)

	Trigger          TriggerKind
	PeriodicInterval int // for TriggerPeriodic

	// TriggerFactory, when non-nil, overrides Trigger: every rank calls
	// it once to obtain a fresh trigger state machine. This is how
	// user-defined triggers plug into the runner; the factory must
	// return deterministic triggers (LB decisions are collective).
	TriggerFactory func() Trigger

	// WarmupLB is the iteration of the forced first LB call, which
	// seeds the average-LB-cost estimate the adaptive trigger needs.
	// Negative disables the warmup call. Default (0 value) means 1.
	WarmupLB int

	// IncludeOverhead adds the Eq. 11 overhead estimate to the trigger
	// threshold for ULBA, per Section III-C. It has no effect on the
	// standard method (the estimate is zero when no PE requests alpha).
	IncludeOverhead bool

	// UseRCB switches the partitioner to 1D recursive bisection (even
	// split only; ablation of the stripe prefix-sum partitioner).
	// Incompatible with ULBA.
	UseRCB bool

	// PartitionFlopPerCol is the compute charged to the main PE per
	// domain column at each LB step: the centralized stripe technique
	// ("the stripe associated to each PE is computed on a single PE")
	// scans the gathered column weights. The default (0 value) is 64
	// FLOP per column.
	PartitionFlopPerCol float64

	// MigrateFlopPerCell is the compute charged per migrated cell for
	// packing (sender) and unpacking (receiver) of the cell's state
	// during migration. Together with CellBytes it makes part of the LB
	// cost grow with the amount of workload actually moved. The default
	// (0 value) is 64 FLOP per cell, which together with the default
	// CellBytes keeps the cost of moving one cell near one iteration of
	// that cell's compute, as in real mesh codes.
	MigrateFlopPerCell float64

	// RebuildFlopPerCell is the compute every PE pays per local cell
	// after a LB step to rebuild its mesh data structures (reindexing,
	// ghost-layer registration, solver state). It is the fixed,
	// alpha-independent component of the LB cost C — the paper's model
	// treats C as a per-call constant — and in this code base it mirrors
	// work Domain.Rebuild genuinely performs. The default (0 value) is
	// 256 FLOP per cell.
	RebuildFlopPerCell float64

	// OSNoise injects up to this many seconds of uniformly random
	// system noise into every PE at every iteration (deterministic per
	// rank and iteration), modeling the "systemic characteristics" the
	// paper lists among the sources of load imbalance. Zero disables it.
	// All LB decisions remain collective because they derive from
	// allreduced quantities, so noisy runs stay deadlock-free; the noise
	// shows up as lost PE usage and, if large, as spurious trigger
	// firings — which is the point of injecting it.
	OSNoise float64
}

// Normalized returns the config with defaults applied.
func (c Config) Normalized() Config {
	if c.ZThreshold == 0 {
		c.ZThreshold = core.DefaultZThreshold
	}
	if c.WIRWindow == 0 {
		c.WIRWindow = 8
	}
	if c.WarmupLB == 0 {
		c.WarmupLB = 1
	}
	if c.PartitionFlopPerCol == 0 {
		c.PartitionFlopPerCol = 64
	}
	if c.MigrateFlopPerCell == 0 {
		c.MigrateFlopPerCell = 64
	}
	if c.RebuildFlopPerCell == 0 {
		c.RebuildFlopPerCell = 256
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.App.Validate(); err != nil {
		return err
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("lb: Iterations = %d must be positive", c.Iterations)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("lb: Alpha = %g out of [0,1]", c.Alpha)
	}
	if c.Method != Standard && c.Method != ULBA {
		return fmt.Errorf("lb: unknown method %d", c.Method)
	}
	if c.TriggerFactory == nil && c.Trigger == TriggerPeriodic && c.PeriodicInterval <= 0 {
		return fmt.Errorf("lb: periodic trigger needs PeriodicInterval > 0")
	}
	if c.UseRCB && c.Method == ULBA {
		return fmt.Errorf("lb: recursive bisection cannot honor ULBA weights; use the stripe partitioner")
	}
	if c.WarmupLB >= c.Iterations {
		return fmt.Errorf("lb: WarmupLB = %d beyond the run of %d iterations", c.WarmupLB, c.Iterations)
	}
	if c.PartitionFlopPerCol < 0 {
		return fmt.Errorf("lb: PartitionFlopPerCol = %g must be non-negative", c.PartitionFlopPerCol)
	}
	if c.MigrateFlopPerCell < 0 {
		return fmt.Errorf("lb: MigrateFlopPerCell = %g must be non-negative", c.MigrateFlopPerCell)
	}
	if c.RebuildFlopPerCell < 0 {
		return fmt.Errorf("lb: RebuildFlopPerCell = %g must be non-negative", c.RebuildFlopPerCell)
	}
	if c.OSNoise < 0 {
		return fmt.Errorf("lb: OSNoise = %g must be non-negative", c.OSNoise)
	}
	return nil
}

// Result is everything an experiment needs from one run.
type Result struct {
	TotalTime     float64   // final wall time (max virtual clock), seconds
	IterTimes     []float64 // shared per-iteration wall time (excluding LB steps)
	Usage         []float64 // average PE usage per iteration, in [0,1]
	LBIters       []int     // iterations at which the balancer ran
	LBCosts       []float64 // measured cost of each LB step, seconds
	LBOverloading []int     // per LB step: how many PEs submitted alpha > 0
	AvgLBCost     float64   // mean of LBCosts (0 if none)
	Eroded        int       // total rock cells eroded
	FinalWorkload float64   // total fluid weight at the end
	FinalBounds   []int     // final stripe boundaries
	ComputeTime   []float64 // per-rank total compute seconds
}

// LBCount returns the number of LB invocations.
func (r Result) LBCount() int { return len(r.LBIters) }

// MeanUsage returns the run-average PE usage.
func (r Result) MeanUsage() float64 { return stats.Mean(r.Usage) }

// Application message tags (below the collective tag space).
const (
	tagHaloToLeft = iota + 1
	tagHaloToRight
	tagGossip
	tagMigrate
)

// Run executes the erosion application on cfg.App.P simulated PEs under the
// configured method and returns the measured result. Runs are fully
// deterministic: same config, same result.
func Run(cfg Config) (Result, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	app := cfg.App
	p := app.P
	flops := cfg.Cost.FLOPS

	// Out-of-band metric stores; each rank writes disjoint slots.
	iterTimes := make([]float64, cfg.Iterations)
	computeShare := make([]float64, cfg.Iterations) // filled by rank 0 from allreduce
	var lbIters []int
	var lbCosts []float64
	var lbOverloading []int
	var finalBounds []int
	var erodedTotal int
	var finalWorkload float64
	erodedPerRank := make([]int, p)

	clocks, allStats, err := mpisim.RunCollectPooled(p, cfg.Cost, func(proc *mpisim.Proc) error {
		rank := proc.Rank()

		// Initial partition: one stripe (and one rock) per PE, the
		// paper's initial condition. Free of charge: the data starts
		// in place.
		bounds := make([]int, p+1)
		for i := range bounds {
			bounds[i] = i * app.StripeWidth
		}
		dom := erosion.NewDomain(app, bounds[rank], bounds[rank+1])

		det := core.NewDetector(p)
		det.ZThreshold = cfg.ZThreshold
		var policy core.AlphaPolicy = core.FixedAlpha(cfg.Alpha)
		if cfg.AdaptiveAlpha {
			policy = core.DefaultAdaptiveAlpha()
		}
		ctrl := core.NewController(rank, p, cfg.WIRWindow, det, policy)

		var trig Trigger
		if cfg.TriggerFactory != nil {
			trig = cfg.TriggerFactory()
		} else {
			switch cfg.Trigger {
			case TriggerPeriodic:
				trig = &Periodic{K: cfg.PeriodicInterval}
			case TriggerNever:
				trig = Never{}
			case TriggerMenon:
				trig = NewMenonTau()
			default:
				trig = NewDegradation()
			}
		}

		var lbCostAvg stats.Running
		prevMax := 0.0

		// Per-rank scratch reused across all iterations: halo cell
		// columns, the 3-element allreduce payload, and the gossip
		// dissemination buffers. The steady-state loop allocates
		// nothing on the wire paths.
		var haloLeft, haloRight []erosion.Cell
		var red [3]float64
		var gs gossip.Scratch

		for i := 0; i < cfg.Iterations; i++ {
			// Halo exchange (state after iteration i-1). Buffered
			// sends cannot deadlock. One column of cell state goes
			// over the wire in each direction, encoded straight into
			// a pooled buffer whose ownership transfers with the send.
			haloBytes := app.Height * app.WireBytesPerCell()
			if rank > 0 {
				proc.SendOwnedV(rank-1, tagHaloToLeft,
					dom.AppendBoundary(proc.AcquireBuf(), true), haloBytes)
			}
			if rank < p-1 {
				proc.SendOwnedV(rank+1, tagHaloToRight,
					dom.AppendBoundary(proc.AcquireBuf(), false), haloBytes)
			}
			var left, right []erosion.Cell
			if rank < p-1 {
				wire := proc.Recv(rank+1, tagHaloToLeft)
				haloRight = erosion.UnpackHaloInto(haloRight[:0], wire)
				proc.ReleaseBuf(wire)
				if len(haloRight) > 0 {
					right = haloRight
				}
			}
			if rank > 0 {
				wire := proc.Recv(rank-1, tagHaloToRight)
				haloLeft = erosion.UnpackHaloInto(haloLeft[:0], wire)
				proc.ReleaseBuf(wire)
				if len(haloLeft) > 0 {
					left = haloLeft
				}
			}

			// The compute phase of the iteration: cost proportional
			// to the fluid workload owned, plus injected system
			// noise if configured.
			flop := dom.Flop()
			proc.Compute(flop)
			if cfg.OSNoise > 0 {
				proc.Elapse(cfg.OSNoise * stats.HashUniform(app.Seed^0x05, uint64(i), uint64(rank)))
			}
			erodedPerRank[rank] += dom.Step(i, left, right)

			// Monitoring: WIR update and one gossip dissemination
			// step per iteration (Section III-C).
			work := dom.Workload()
			ctrl.Record(i, work)
			gossip.StepScratch(proc, ctrl.DB(), i, tagGossip, &gs)

			// Collective bookkeeping: total workload, overloading
			// count estimate, and the shared iteration clock. The
			// max-allreduce doubles as the BSP iteration barrier.
			myBit := 0.0
			if cfg.Method == ULBA && ctrl.Overloading() {
				myBit = 1
			}
			red[0], red[1], red[2] = work, myBit, flop/flops
			proc.AllreduceInPlace(red[:], mpisim.OpSum)
			totalWork, nEst, computeSum := red[0], red[1], red[2]
			maxClock := proc.AllreduceMax(proc.Clock())
			iterTime := maxClock - prevMax
			prevMax = maxClock
			trig.Observe(iterTime)

			if rank == 0 {
				iterTimes[i] = iterTime
				computeShare[i] = computeSum
			}

			// LB decision: identical on every rank because all the
			// inputs are shared collective results.
			threshold := math.Inf(1)
			if lbCostAvg.N() > 0 {
				threshold = lbCostAvg.Mean()
				if cfg.Method == ULBA && cfg.IncludeOverhead {
					alphaEff := policy.Alpha(p, int(nEst))
					threshold += core.OverheadSeconds(alphaEff, p, int(nEst),
						totalWork*app.FlopPerUnit, flops)
				}
			}
			fire := i == cfg.WarmupLB || trig.ShouldFire(threshold)
			if !fire {
				continue
			}

			// ---- LB step (Algorithm 2, centralized) ----
			alphaMine := 0.0
			if cfg.Method == ULBA {
				alphaMine = ctrl.AlphaForLB()
			}
			newBounds, newDom, nOverloading := callLoadBalancer(proc, dom, bounds, alphaMine, cfg)
			dom = newDom
			bounds = newBounds
			lbEnd := proc.AllreduceMax(proc.Clock())
			cost := lbEnd - maxClock
			lbCostAvg.Add(cost)
			prevMax = lbEnd
			trig.Reset()
			ctrl.AfterLB()
			if rank == 0 {
				lbIters = append(lbIters, i)
				lbCosts = append(lbCosts, cost)
				lbOverloading = append(lbOverloading, nOverloading)
			}
		}

		// Final accounting.
		total := proc.AllreduceSum(dom.Workload())
		if rank == 0 {
			finalWorkload = total
			finalBounds = bounds
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		IterTimes:     iterTimes,
		LBIters:       lbIters,
		LBCosts:       lbCosts,
		LBOverloading: lbOverloading,
		FinalBounds:   finalBounds,
	}
	for _, c := range clocks {
		if c > res.TotalTime {
			res.TotalTime = c
		}
	}
	res.Usage = make([]float64, cfg.Iterations)
	for i := range res.Usage {
		if iterTimes[i] > 0 {
			res.Usage[i] = stats.Clamp(computeShare[i]/(float64(p)*iterTimes[i]), 0, 1)
		}
	}
	if len(lbCosts) > 0 {
		res.AvgLBCost = stats.Mean(lbCosts)
	}
	for _, e := range erodedPerRank {
		erodedTotal += e
	}
	res.Eroded = erodedTotal
	res.FinalWorkload = finalWorkload
	res.ComputeTime = make([]float64, p)
	for r, s := range allStats {
		res.ComputeTime[r] = s.ComputeTime
	}
	return res, nil
}

// callLoadBalancer runs the centralized LB step of Algorithm 2: every PE
// sends its per-column weights and its alpha to the main PE, which computes
// the ULBA targets (with the >= 50% fallback), cuts new stripes, and
// broadcasts them; then columns migrate point-to-point along the
// deterministic transfer plan and each PE rebuilds its domain. The third
// return is the number of PEs that submitted alpha > 0 (known to the main
// PE and broadcast with the partition).
func callLoadBalancer(proc *mpisim.Proc, dom *erosion.Domain, oldBounds []int,
	alpha float64, cfg Config) ([]int, *erosion.Domain, int) {

	p := proc.Size()
	app := dom.Config()
	width := app.Width()

	// Gather [alpha, lo, weights...] on the main PE.
	payload := make([]float64, 0, 2+dom.NumCols())
	payload = append(payload, alpha, float64(dom.Lo()))
	for x := dom.Lo(); x < dom.Hi(); x++ {
		payload = append(payload, dom.ColWeight(x))
	}
	parts := proc.Gather(0, mpisim.PackFloat64s(payload))

	var boundsWire []byte
	if proc.Rank() == 0 {
		colW := make([]float64, width)
		alphas := make([]float64, p)
		nOver := 0
		for r, part := range parts {
			vals := mpisim.UnpackFloat64s(part)
			alphas[r] = vals[0]
			if vals[0] > 0 {
				nOver++
			}
			lo := int(vals[1])
			copy(colW[lo:lo+len(vals)-2], vals[2:])
		}
		total := stats.Sum(colW)
		var newBounds []int
		if cfg.UseRCB {
			newBounds = partition.RecursiveBisection(colW, p)
		} else {
			targets := partition.Targets(total, alphas)
			newBounds = partition.Stripes(colW, targets)
		}
		newBounds = partition.EnsureMinCols(newBounds, 1)
		// The centralized partitioning technique runs on the main PE
		// over the gathered column weights.
		proc.Compute(cfg.PartitionFlopPerCol * float64(width))
		boundsWire = mpisim.PackInts(append([]int{nOver}, newBounds...))
	}
	wire := mpisim.UnpackInts(proc.Bcast(0, boundsWire))
	nOverloading := wire[0]
	newBounds := wire[1:]

	// Migration along the shared deterministic plan: sends first (eager,
	// non-blocking), then receives in plan order. Every migrated cell
	// ships its full modeled state; packing and unpacking cost FLOP
	// proportional to the cells moved.
	plan := partition.Transfers(oldBounds, newBounds)
	for _, tr := range plan {
		if tr.From == proc.Rank() {
			cells := (tr.Hi - tr.Lo) * app.Height
			proc.Compute(0.5 * cfg.MigrateFlopPerCell * float64(cells))
			proc.SendOwnedV(tr.To, tagMigrate,
				dom.AppendRange(proc.AcquireBuf(), tr.Lo, tr.Hi),
				cells*app.WireBytesPerCell())
		}
	}
	received := make(map[int][][]erosion.Cell)
	for _, tr := range plan {
		if tr.To == proc.Rank() {
			wire := proc.Recv(tr.From, tagMigrate)
			received[tr.Lo] = erosion.UnpackCells(wire, app.Height)
			proc.ReleaseBuf(wire)
			cells := (tr.Hi - tr.Lo) * app.Height
			proc.Compute(cfg.MigrateFlopPerCell * float64(cells))
		}
	}
	newDom := dom.Rebuild(newBounds[proc.Rank()], newBounds[proc.Rank()+1], received)
	// Every PE rebuilds its local mesh structures over its (new) range.
	proc.Compute(cfg.RebuildFlopPerCell * float64(newDom.NumCols()) * float64(app.Height))
	return newBounds, newDom, nOverloading
}
