package lb

import (
	"math"
	"testing"

	"ulba/internal/erosion"
	"ulba/internal/mpisim"
)

func testApp(p int) erosion.Config {
	return erosion.Config{
		P:           p,
		StripeWidth: 24,
		Height:      24,
		Radius:      6,
		StrongRocks: 1,
		ProbStrong:  0.4,
		ProbWeak:    0.02,
		Seed:        3,
		FlopPerUnit: 100,
	}
}

func testConfig(p int, m Method) Config {
	return Config{
		App:             testApp(p),
		Iterations:      60,
		Cost:            mpisim.CostModel{Latency: 5e-6, ByteTime: 1e-9, FLOPS: 1e9},
		Method:          m,
		Alpha:           0.4,
		ZThreshold:      2.0, // sqrt(P-1) caps the max z-score; 3.0 needs P >= 11
		IncludeOverhead: true,
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(4, Standard)
	if err := good.Normalized().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := map[string]func(*Config){
		"iters":      func(c *Config) { c.Iterations = 0 },
		"alpha":      func(c *Config) { c.Alpha = 1.5 },
		"method":     func(c *Config) { c.Method = Method(9) },
		"periodic":   func(c *Config) { c.Trigger = TriggerPeriodic; c.PeriodicInterval = 0 },
		"rcbUlba":    func(c *Config) { c.UseRCB = true; c.Method = ULBA },
		"warmupLate": func(c *Config) { c.WarmupLB = 100 },
		"appBroken":  func(c *Config) { c.App.Radius = 0 },
		"costBroken": func(c *Config) { c.Cost.FLOPS = 0 },
	}
	for name, mutate := range bad {
		c := testConfig(4, ULBA).Normalized()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Standard.String() != "standard" || ULBA.String() != "ulba" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should still render")
	}
}

func TestTriggers(t *testing.T) {
	var n Never
	n.Observe(5)
	if n.ShouldFire(0) {
		t.Error("Never fired")
	}
	n.Reset()

	p := &Periodic{K: 3}
	for i := 0; i < 2; i++ {
		p.Observe(1)
	}
	if p.ShouldFire(0) {
		t.Error("Periodic fired early")
	}
	p.Observe(1)
	if !p.ShouldFire(0) {
		t.Error("Periodic did not fire at K")
	}
	p.Reset()
	if p.ShouldFire(0) {
		t.Error("Periodic fired after reset")
	}
}

func TestDegradationTrigger(t *testing.T) {
	d := NewDegradation()
	// Constant iteration times: no degradation.
	for i := 0; i < 10; i++ {
		d.Observe(1.0)
	}
	if d.Value() != 0 {
		t.Errorf("flat series accumulated %v", d.Value())
	}
	if d.ShouldFire(0.5) {
		t.Error("fired without degradation")
	}
	// Growing times accumulate.
	d.Reset()
	for i := 0; i < 10; i++ {
		d.Observe(1.0 + 0.1*float64(i))
	}
	if d.Value() <= 0 {
		t.Errorf("growing series accumulated %v", d.Value())
	}
	if !d.ShouldFire(d.Value() - 1e-9) {
		t.Error("did not fire at threshold")
	}
	// Unknown threshold (no LB cost estimate yet) never fires.
	if d.ShouldFire(math.Inf(1)) || d.ShouldFire(math.NaN()) {
		t.Error("fired with unknown threshold")
	}
	// The median-of-3 smooths a single spike.
	d.Reset()
	d.Observe(1.0)
	d.Observe(5.0) // spike; median(1,5) = 3 -> contributes 2
	before := d.Value()
	d.Reset()
	d.Observe(1.0)
	d.Observe(1.0)
	d.Observe(5.0) // median(1,1,5) = 1 -> contributes 0
	if d.Value() >= before {
		t.Errorf("median smoothing ineffective: %v vs %v", d.Value(), before)
	}
}

func TestRunStandardCompletes(t *testing.T) {
	res, err := Run(testConfig(4, Standard))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Error("no time elapsed")
	}
	if len(res.IterTimes) != 60 || len(res.Usage) != 60 {
		t.Fatalf("trace lengths wrong: %d, %d", len(res.IterTimes), len(res.Usage))
	}
	for i, u := range res.Usage {
		if u <= 0 || u > 1 {
			t.Fatalf("usage[%d] = %v out of (0,1]", i, u)
		}
	}
	if res.LBCount() == 0 {
		t.Error("warmup LB should have fired at least once")
	}
	if res.LBIters[0] != 1 {
		t.Errorf("first LB at %d, want warmup at 1", res.LBIters[0])
	}
	if res.AvgLBCost <= 0 {
		t.Error("LB cost not measured")
	}
	if res.Eroded <= 0 {
		t.Error("no erosion happened")
	}
}

// The physics must be identical across policies (counter-based RNG): the
// same instance run under Standard, ULBA, or sequentially erodes the same
// cells.
func TestPhysicsIndependentOfPolicy(t *testing.T) {
	app := testApp(4)
	iters := 60

	seq := erosion.NewDomain(app, 0, app.Width())
	seqEroded := 0
	for i := 0; i < iters; i++ {
		seqEroded += seq.Step(i, nil, nil)
	}

	std, err := Run(testConfig(4, Standard))
	if err != nil {
		t.Fatal(err)
	}
	ul, err := Run(testConfig(4, ULBA))
	if err != nil {
		t.Fatal(err)
	}
	if std.Eroded != seqEroded || ul.Eroded != seqEroded {
		t.Errorf("eroded cells differ: seq %d, std %d, ulba %d", seqEroded, std.Eroded, ul.Eroded)
	}
	if std.FinalWorkload != seq.Workload() || ul.FinalWorkload != seq.Workload() {
		t.Errorf("final workloads differ: seq %v, std %v, ulba %v",
			seq.Workload(), std.FinalWorkload, ul.FinalWorkload)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(4, ULBA)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.LBCount() != b.LBCount() || a.Eroded != b.Eroded {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
	for i := range a.IterTimes {
		if a.IterTimes[i] != b.IterTimes[i] {
			t.Fatalf("iteration %d time differs", i)
		}
	}
}

// With alpha = 0 ULBA must behave exactly like the standard method: same
// decisions, same partitions, same times.
func TestULBAAlphaZeroEqualsStandard(t *testing.T) {
	cfgStd := testConfig(4, Standard)
	cfgZero := testConfig(4, ULBA)
	cfgZero.Alpha = 0
	std, err := Run(cfgStd)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run(cfgZero)
	if err != nil {
		t.Fatal(err)
	}
	if std.TotalTime != zero.TotalTime {
		t.Errorf("alpha=0 ULBA total %v != standard %v", zero.TotalTime, std.TotalTime)
	}
	if std.LBCount() != zero.LBCount() {
		t.Errorf("LB counts differ: %d vs %d", std.LBCount(), zero.LBCount())
	}
}

func TestNeverTriggerStaticBaseline(t *testing.T) {
	cfg := testConfig(4, Standard)
	cfg.Trigger = TriggerNever
	cfg.WarmupLB = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() != 0 {
		t.Errorf("static baseline performed %d LB calls", res.LBCount())
	}
	// Without LB the final bounds are the initial even stripes.
	for i, b := range res.FinalBounds {
		if b != i*cfg.App.StripeWidth {
			t.Errorf("bounds moved without LB: %v", res.FinalBounds)
			break
		}
	}
}

func TestPeriodicTrigger(t *testing.T) {
	cfg := testConfig(4, Standard)
	cfg.Trigger = TriggerPeriodic
	cfg.PeriodicInterval = 10
	cfg.WarmupLB = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 60 iterations, LB every 10 observed iterations: at 9, 19(=10 after
	// reset), ... roughly 6 calls.
	if res.LBCount() < 4 || res.LBCount() > 7 {
		t.Errorf("periodic LB count = %d (iters %v), want ~6", res.LBCount(), res.LBIters)
	}
}

func TestRCBPartitionerAblation(t *testing.T) {
	cfg := testConfig(4, Standard)
	cfg.UseRCB = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() == 0 || res.TotalTime <= 0 {
		t.Error("RCB run did not progress")
	}
}

// The headline behavioral claim on the application: with one strongly
// erodible rock, ULBA should not lose to the standard method, and it should
// need no more LB calls.
func TestULBACompetitiveWithStandard(t *testing.T) {
	std, err := Run(testConfig(8, Standard))
	if err != nil {
		t.Fatal(err)
	}
	ul, err := Run(testConfig(8, ULBA))
	if err != nil {
		t.Fatal(err)
	}
	if ul.TotalTime > std.TotalTime*1.05 {
		t.Errorf("ULBA total %v much worse than standard %v", ul.TotalTime, std.TotalTime)
	}
	if ul.LBCount() > std.LBCount() {
		t.Errorf("ULBA used more LB calls (%d) than standard (%d)", ul.LBCount(), std.LBCount())
	}
	t.Logf("standard: %.6fs with %d LB calls; ULBA: %.6fs with %d LB calls (gain %.1f%%)",
		std.TotalTime, std.LBCount(), ul.TotalTime, ul.LBCount(),
		100*(std.TotalTime-ul.TotalTime)/std.TotalTime)
}

func TestAdaptiveAlphaRuns(t *testing.T) {
	cfg := testConfig(4, ULBA)
	cfg.AdaptiveAlpha = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || len(res.Usage) != cfg.Iterations {
		t.Error("adaptive-alpha run did not complete properly")
	}
}

func TestWorkloadConservationAcrossMigration(t *testing.T) {
	// Total workload after the run must equal initial fluid + 4*eroded,
	// regardless of how many migrations happened.
	cfg := testConfig(4, ULBA)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app := cfg.App
	ref := erosion.NewDomain(app, 0, app.Width())
	initialFluid := ref.Workload()
	want := initialFluid + 4*float64(res.Eroded)
	if res.FinalWorkload != want {
		t.Errorf("workload not conserved: %v, want %v", res.FinalWorkload, want)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Usage: []float64{0.5, 1}, LBIters: []int{3}}
	if r.LBCount() != 1 {
		t.Error("LBCount wrong")
	}
	if r.MeanUsage() != 0.75 {
		t.Error("MeanUsage wrong")
	}
}

func TestMenonTauTrigger(t *testing.T) {
	m := NewMenonTau()
	// Too few observations: never fires.
	m.Observe(1.0)
	m.Observe(1.1)
	if m.ShouldFire(0.001) {
		t.Error("fired with fewer than 3 observations")
	}
	// Linear growth with slope 0.1 s/iter: tau = sqrt(2*C/slope).
	// With C = 0.2, tau = 2: fires immediately once enough points exist.
	m.Reset()
	for i := 0; i < 5; i++ {
		m.Observe(1.0 + 0.1*float64(i))
	}
	if !m.ShouldFire(0.2) {
		t.Error("should fire past tau with strong growth")
	}
	// With a huge C, tau is far away: no fire.
	if m.ShouldFire(1e6) {
		t.Error("fired long before tau")
	}
	// Flat series: no growth, no fire.
	m.Reset()
	for i := 0; i < 10; i++ {
		m.Observe(1.0)
	}
	if m.ShouldFire(0.001) {
		t.Error("fired on a balanced application")
	}
	// Unknown threshold never fires.
	if m.ShouldFire(math.Inf(1)) || m.ShouldFire(math.NaN()) {
		t.Error("fired with unknown threshold")
	}
}

func TestMenonTriggerIntegration(t *testing.T) {
	cfg := testConfig(8, Standard)
	cfg.Trigger = TriggerMenon
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() == 0 {
		t.Error("Menon trigger never fired (warmup only expected at minimum)")
	}
	// Same physics as ever.
	ref, err := Run(testConfig(8, Standard))
	if err != nil {
		t.Fatal(err)
	}
	if res.Eroded != ref.Eroded {
		t.Errorf("trigger choice changed the physics: %d vs %d", res.Eroded, ref.Eroded)
	}
}

func TestTriggerKindsAllRun(t *testing.T) {
	for _, kind := range []TriggerKind{TriggerDegradation, TriggerPeriodic, TriggerNever, TriggerMenon} {
		cfg := testConfig(4, Standard)
		cfg.Trigger = kind
		if kind == TriggerPeriodic {
			cfg.PeriodicInterval = 15
		}
		if kind == TriggerNever {
			cfg.WarmupLB = -1
		}
		if _, err := Run(cfg); err != nil {
			t.Errorf("trigger %d failed: %v", kind, err)
		}
	}
}

func TestOSNoiseInjection(t *testing.T) {
	base := testConfig(4, ULBA)
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	noisy := base
	// Noise comparable to an iteration's compute: heavy interference.
	noisy.OSNoise = clean.TotalTime / float64(base.Iterations)
	res, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= clean.TotalTime {
		t.Errorf("noise should cost time: %v vs %v", res.TotalTime, clean.TotalTime)
	}
	if res.MeanUsage() >= clean.MeanUsage() {
		t.Errorf("noise should lower usage: %v vs %v", res.MeanUsage(), clean.MeanUsage())
	}
	// Physics untouched by timing noise.
	if res.Eroded != clean.Eroded {
		t.Errorf("noise changed the physics: %d vs %d", res.Eroded, clean.Eroded)
	}
	// Still deterministic.
	res2, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != res2.TotalTime {
		t.Error("noisy runs are not reproducible")
	}
}

func TestOSNoiseValidation(t *testing.T) {
	cfg := testConfig(4, Standard)
	cfg.OSNoise = -1
	if err := cfg.Normalized().Validate(); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestFixedScheduleTrigger(t *testing.T) {
	f := &FixedSchedule{Iters: []int{3, 7}}
	fired := []int{}
	for i := 0; i < 10; i++ {
		f.Observe(0)
		if f.ShouldFire(0.5) {
			fired = append(fired, i)
			f.Reset()
		}
	}
	// Entry k fires at the end of iteration k-1: the balancer runs before
	// iteration k executes, matching the schedule convention.
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 6 {
		t.Errorf("fired at %v, want [2 6]", fired)
	}
}

func TestFixedScheduleSkipsPastEntries(t *testing.T) {
	// Adjacent plan entries covered by one step are collapsed by Reset.
	f := &FixedSchedule{Iters: []int{2, 3}}
	f.Observe(0)
	f.Observe(0)
	f.Observe(0) // seen = 3: both entries reached
	if !f.ShouldFire(0) {
		t.Fatal("should fire at entry 2")
	}
	f.Reset()
	if f.ShouldFire(0) {
		t.Error("entry 3 already covered, must not fire again")
	}
}

func TestTriggerFactoryOverridesKind(t *testing.T) {
	cfg := testConfig(4, Standard)
	cfg.Trigger = TriggerDegradation
	cfg.TriggerFactory = func() Trigger { return Never{} }
	cfg.WarmupLB = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() != 0 {
		t.Errorf("factory-built Never trigger ignored: %d LB calls", res.LBCount())
	}
	// The factory also lifts the PeriodicInterval requirement.
	cfg.Trigger = TriggerPeriodic
	cfg.PeriodicInterval = 0
	if err := cfg.Normalized().Validate(); err != nil {
		t.Errorf("factory config rejected: %v", err)
	}
}

func TestFixedScheduleRunMatchesPlan(t *testing.T) {
	cfg := testConfig(4, ULBA)
	plan := []int{10, 25, 40}
	cfg.TriggerFactory = func() Trigger { return &FixedSchedule{Iters: plan} }
	cfg.WarmupLB = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() != len(plan) {
		t.Fatalf("ran %d LB steps, plan has %d (at %v)", res.LBCount(), len(plan), res.LBIters)
	}
	for i, it := range res.LBIters {
		if it != plan[i]-1 {
			t.Errorf("LB step %d at iteration %d, want %d (before planned iteration %d)",
				i, it, plan[i]-1, plan[i])
		}
	}
}
