package lb

import (
	"reflect"
	"testing"

	"ulba/internal/mpisim"
	"ulba/internal/partition"
)

// rampWeight is a simple drifting weight function: item j starts at 1 and
// the first quarter of the items gain 0.1 per iteration.
func rampWeight(items int) func(int, int) float64 {
	return func(item, iter int) float64 {
		w := 1.0
		if item < items/4 {
			w += 0.1 * float64(iter)
		}
		return w
	}
}

func synthCfg(p, items, iters int) SynthConfig {
	return SynthConfig{
		P:          p,
		Items:      items,
		Iterations: iters,
		Weight:     rampWeight(items),
		Cost:       mpisim.DefaultCostModel(),
	}
}

func TestSynthValidate(t *testing.T) {
	base := synthCfg(4, 64, 50).Normalized()
	cases := []struct {
		name   string
		mutate func(*SynthConfig)
	}{
		{"non-positive P", func(c *SynthConfig) { c.P = 0 }},
		{"fewer items than PEs", func(c *SynthConfig) { c.Items = 3 }},
		{"non-positive iterations", func(c *SynthConfig) { c.Iterations = 0 }},
		{"nil weight", func(c *SynthConfig) { c.Weight = nil }},
		{"bad cost model", func(c *SynthConfig) { c.Cost.FLOPS = 0 }},
		{"negative flop per unit", func(c *SynthConfig) { c.FlopPerUnit = -1 }},
		{"negative item bytes", func(c *SynthConfig) { c.ItemBytes = -1 }},
		{"negative migrate flop", func(c *SynthConfig) { c.MigrateFlopPerItem = -1 }},
		{"negative rebuild flop", func(c *SynthConfig) { c.RebuildFlopPerItem = -1 }},
		{"negative partition flop", func(c *SynthConfig) { c.PartitionFlopPerItem = -1 }},
		{"warmup beyond run", func(c *SynthConfig) { c.WarmupLB = 50 }},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
		if _, err := RunSynth(cfg); err == nil {
			t.Errorf("%s: RunSynth accepted invalid config", tc.name)
		}
	}
}

func TestSynthNormalizedDefaults(t *testing.T) {
	c := SynthConfig{}.Normalized()
	if c.FlopPerUnit != 1e6 || c.ItemBytes != 4096 || c.MigrateFlopPerItem != 1e5 ||
		c.RebuildFlopPerItem != 2e5 || c.PartitionFlopPerItem != 64 || c.WarmupLB != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
}

func TestSynthDeterministicReplay(t *testing.T) {
	cfg := synthCfg(4, 64, 60)
	a, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs disagree:\n%+v\n%+v", a, b)
	}
}

func TestSynthResultShape(t *testing.T) {
	cfg := synthCfg(4, 64, 60)
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 60 || len(res.Usage) != 60 {
		t.Fatalf("timeline lengths: %d iter times, %d usage", len(res.IterTimes), len(res.Usage))
	}
	if res.TotalTime <= 0 {
		t.Fatalf("TotalTime = %g", res.TotalTime)
	}
	sum := 0.0
	for i, it := range res.IterTimes {
		if it <= 0 {
			t.Fatalf("iteration %d time %g not positive", i, it)
		}
		sum += it
	}
	for _, c := range res.LBCosts {
		sum += c
	}
	// The measured segments cover the run up to the last max-clock
	// allreduce; the total additionally includes the trailing collective
	// overhead (microseconds of latency), so it is slightly larger.
	if res.TotalTime < sum || res.TotalTime-sum > 1e-3 {
		t.Fatalf("iteration times + LB costs = %g, total = %g", sum, res.TotalTime)
	}
	for i, u := range res.Usage {
		if u < 0 || u > 1 {
			t.Fatalf("usage[%d] = %g out of [0,1]", i, u)
		}
	}
	if err := partition.Validate(res.FinalBounds, cfg.Items); err != nil {
		t.Fatalf("final bounds invalid: %v", err)
	}
	if len(res.ComputeTime) != cfg.P {
		t.Fatalf("ComputeTime has %d entries, want %d", len(res.ComputeTime), cfg.P)
	}
	if got := res.LBCount(); got != len(res.LBIters) {
		t.Fatalf("LBCount = %d, len(LBIters) = %d", got, len(res.LBIters))
	}
	if res.MeanUsage() <= 0 || res.MeanUsage() > 1 {
		t.Fatalf("MeanUsage = %g", res.MeanUsage())
	}
	if res.AvgLBCost <= 0 {
		t.Fatalf("AvgLBCost = %g with %d LB calls", res.AvgLBCost, res.LBCount())
	}
}

func TestSynthNeverTriggerNoLB(t *testing.T) {
	cfg := synthCfg(4, 64, 60)
	cfg.TriggerFactory = func() Trigger { return Never{} }
	cfg.WarmupLB = -1
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() != 0 {
		t.Fatalf("never trigger balanced %d times", res.LBCount())
	}
	if res.AvgLBCost != 0 {
		t.Fatalf("AvgLBCost = %g without LB calls", res.AvgLBCost)
	}
	// Without balancing the initial even-count split never changes.
	want := make([]int, cfg.P+1)
	for i := range want {
		want[i] = i * cfg.Items / cfg.P
	}
	if !reflect.DeepEqual(res.FinalBounds, want) {
		t.Fatalf("bounds moved without LB: %v", res.FinalBounds)
	}
}

func TestSynthPeriodicTriggerFiresOnSchedule(t *testing.T) {
	cfg := synthCfg(4, 64, 40)
	cfg.TriggerFactory = func() Trigger { return &Periodic{K: 10} }
	cfg.WarmupLB = -1
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The periodic trigger fires after every 10 observed iterations
	// (iteration indices 9, 19, 29, 39).
	want := []int{9, 19, 29, 39}
	if !reflect.DeepEqual(res.LBIters, want) {
		t.Fatalf("periodic LB iterations = %v, want %v", res.LBIters, want)
	}
}

func TestSynthWarmupSeedsAdaptiveTrigger(t *testing.T) {
	cfg := synthCfg(4, 64, 80)
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LBCount() == 0 || res.LBIters[0] != 1 {
		t.Fatalf("expected warmup LB at iteration 1, got %v", res.LBIters)
	}
	// The drifting ramp must keep triggering after the warmup call.
	if res.LBCount() < 2 {
		t.Fatalf("degradation trigger never fired after warmup: %v", res.LBIters)
	}
}

func TestSynthBalancingBeatsNoLBOnDrift(t *testing.T) {
	cfg := synthCfg(8, 128, 100)
	balanced, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noLB := cfg
	noLB.TriggerFactory = func() Trigger { return Never{} }
	noLB.WarmupLB = -1
	static, err := RunSynth(noLB)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.TotalTime >= static.TotalTime {
		t.Fatalf("balancing (%.4fs) did not beat no-LB (%.4fs) on a drifting load",
			balanced.TotalTime, static.TotalTime)
	}
	perfect := PerfectTime(cfg)
	if perfect <= 0 || perfect > balanced.TotalTime || perfect > static.TotalTime {
		t.Fatalf("perfect bound %.4fs not below measured %.4fs / %.4fs",
			perfect, balanced.TotalTime, static.TotalTime)
	}
}

func TestSynthSingleRank(t *testing.T) {
	cfg := synthCfg(1, 16, 30)
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatalf("TotalTime = %g", res.TotalTime)
	}
	if !reflect.DeepEqual(res.FinalBounds, []int{0, 16}) {
		t.Fatalf("single-rank bounds = %v", res.FinalBounds)
	}
}

func TestSynthUnevenItemCounts(t *testing.T) {
	// 67 items over 4 PEs: the initial split and every re-partition must
	// stay a valid cover with at least one item per PE.
	cfg := synthCfg(4, 67, 50)
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(res.FinalBounds, 67); err != nil {
		t.Fatalf("final bounds invalid: %v", err)
	}
	for r := 0; r < 4; r++ {
		if res.FinalBounds[r+1]-res.FinalBounds[r] < 1 {
			t.Fatalf("rank %d left without items: %v", r, res.FinalBounds)
		}
	}
}
